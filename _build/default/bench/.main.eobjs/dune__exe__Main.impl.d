bench/main.ml: Ablations Arg Bech Cmd Cmdliner Experiments List Printexc Printf Term Unix
