bench/main.mli:
