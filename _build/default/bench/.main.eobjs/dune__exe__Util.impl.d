bench/util.ml: Array Buffer Float Hashtbl Printf Scalana Scalana_apps
