(* Ablation benches for the design choices DESIGN.md calls out:
   aggregation strategy, wait-edge pruning, contraction depth,
   comm-record compression and sampling frequency. *)

open Scalana_profile
open Scalana_detect
open Util

let ablation_aggregate () =
  section "Ablation — aggregation strategy for non-scalable detection";
  let pipe = pipeline ~max_np:32 "zeusmp" in
  let psg = Scalana.Static.psg pipe.static in
  List.iter
    (fun strategy ->
      let findings =
        Nonscalable.detect
          ~config:{ Nonscalable.default_config with strategy }
          pipe.crossscale
      in
      let labels =
        List.map
          (fun (f : Nonscalable.finding) ->
            Scalana_psg.Vertex.label (Scalana_psg.Psg.vertex psg f.vertex))
          findings
      in
      let bval_found =
        List.exists
          (fun l -> String.length l >= 4 && String.sub l 0 4 = "bval")
          labels
      in
      Printf.printf "  %-12s -> %d findings, finds bval loop: %b  [%s]\n"
        (Aggregate.strategy_name strategy)
        (List.length findings) bval_found
        (String.concat "; " labels))
    [
      Aggregate.Single 0;
      Aggregate.Mean;
      Aggregate.Median;
      Aggregate.Variance_weighted;
      Aggregate.Kmeans 3;
    ];
  note "the boundary loop runs on 1/4 of the ranks: median-based merging";
  note "hides it (median 0), mean/variance/kmeans surface it — the";
  note "trade-off Section IV-A discusses"

let ablation_pruning () =
  section "Ablation — wait-edge pruning in backtracking";
  List.iter
    (fun name ->
      let pipe = pipeline ~max_np:32 name in
      let _, ppg = Scalana_ppg.Crossscale.largest pipe.crossscale in
      let run prune =
        let visited = Hashtbl.create 64 in
        let steps = ref 0 and hops = ref 0 in
        List.iter
          (fun (f : Abnormal.finding) ->
            let rank =
              match f.ranks with
              | r :: _ -> r
              | [] -> Rootcause.start_rank ppg ~vertex:f.vertex
            in
            let path =
              Backtrack.backtrack
                ~config:{ Backtrack.default_config with prune_non_wait = prune }
                ppg ~visited ~start_rank:rank ~start_vertex:f.vertex
            in
            steps := !steps + List.length path;
            List.iter
              (fun (s : Backtrack.step) ->
                match s.via with Backtrack.Comm_dep _ -> incr hops | _ -> ())
              path)
          pipe.analysis.abnormal;
        (!steps, !hops)
      in
      let ps, ph = run true and us, uh = run false in
      Printf.printf
        "  %-8s pruned: %3d steps / %2d comm hops   unpruned: %3d steps / %2d comm hops\n"
        name ps ph us uh)
    [ "zeusmp"; "lu"; "sst" ];
  note "pruning keeps only comm edges that carried a wait, cutting the";
  note "search space and false positives (Section IV-B)"

let ablation_contraction () =
  section "Ablation — MaxLoopDepth contraction sweep (zeus-mp)";
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let prog = entry.make () in
  let locals = Scalana_psg.Intra.build_all prog in
  let full = Scalana_psg.Inter.build ~locals prog in
  Printf.printf "  %-14s %10s %12s\n" "MaxLoopDepth" "#vertices" "memory";
  List.iter
    (fun depth ->
      let c = Scalana_psg.Contract.run ~max_loop_depth:depth full in
      Printf.printf "  %-14d %10d %12s\n" depth
        (Scalana_psg.Psg.n_vertices c.Scalana_psg.Contract.psg)
        (human_bytes (Scalana_psg.Psg.memory_bytes c.Scalana_psg.Contract.psg)))
    [ 0; 1; 2; 4; 10 ];
  Printf.printf "  (uncontracted: %d vertices)\n" (Scalana_psg.Psg.n_vertices full);
  note "deeper bounds keep more loop structure at higher analysis cost;";
  note "the paper uses MaxLoopDepth=10"

let ablation_compression () =
  section "Ablation — graph-guided communication compression (npb-cg)";
  let entry = Scalana_apps.Registry.find "cg" in
  let prog = entry.make () in
  let static = Scalana.Static.analyze prog in
  let config = { Profiler.default_config with record_prob = 1.0 } in
  let run =
    Scalana.Prof.run
      ~config:{ Scalana.Config.default with record_prob = 1.0 }
      ~cost:entry.cost static ~nprocs:32 ()
  in
  ignore config;
  let comm = run.Scalana.Prof.data.Profdata.comm in
  Printf.printf "  raw communication records : %d (%s)\n"
    comm.Scalana_profile.Commrec.raw_records
    (human_bytes (Commrec.uncompressed_bytes comm));
  Printf.printf "  compressed (graph-guided) : %d p2p + %d coll (%s)\n"
    (Commrec.n_p2p comm) (Commrec.n_coll comm)
    (human_bytes (Commrec.storage_bytes comm));
  let ratio =
    float_of_int (Commrec.uncompressed_bytes comm)
    /. float_of_int (max 1 (Commrec.storage_bytes comm))
  in
  Printf.printf "  compression ratio         : %.0fx\n" ratio;
  note "repeated iterations reuse the same (vertex, peer, tag, size)";
  note "tuple, so records fold (Section III-B2)"

let ablation_sampling () =
  section "Ablation — sampling frequency vs overhead and sample count";
  let entry = Scalana_apps.Registry.find "cg" in
  let prog = entry.make () in
  Printf.printf "  %-8s %12s %12s\n" "freq(Hz)" "overhead" "samples";
  List.iter
    (fun freq ->
      let static = Scalana.Static.analyze prog in
      let config = { Scalana.Config.default with sampling_freq = freq } in
      let run =
        Scalana.Prof.run ~config ~cost:entry.cost ~measure_overhead:true static
          ~nprocs:16 ()
      in
      let ovh =
        match Scalana.Prof.overhead_percent run with Some p -> p | None -> 0.0
      in
      Printf.printf "  %-8.0f %11.2f%% %12d\n" freq ovh
        run.Scalana.Prof.data.Profdata.total_samples)
    [ 50.0; 100.0; 200.0; 400.0; 800.0 ];
  note "the paper fixes 200 Hz (same as HPCToolkit) as the accuracy/";
  note "overhead trade-off"

let all : (string * (unit -> unit)) list =
  [
    ("ablation_aggregate", ablation_aggregate);
    ("ablation_pruning", ablation_pruning);
    ("ablation_contraction", ablation_contraction);
    ("ablation_compression", ablation_compression);
    ("ablation_sampling", ablation_sampling);
  ]
