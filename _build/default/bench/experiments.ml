(* One harness per table/figure of the paper's evaluation (Section VI).

   Each function regenerates the corresponding rows/series on the
   simulated substrate and prints the paper's reference numbers next to
   them.  Absolute values differ (simulator vs Tianhe-2/Gorgon); the
   shape — who wins, by what order, where the loss comes from — is the
   reproduction target (see EXPERIMENTS.md). *)

open Scalana_mlang
open Scalana_runtime
open Util

let max_np = ref 128

(* Shared tool-comparison sweep, cached per program. *)
let sweep_cache : (string, (int * Scalana.Experiment.measurement list) list) Hashtbl.t =
  Hashtbl.create 8

let sweep name =
  match Hashtbl.find_opt sweep_cache name with
  | Some s -> s
  | None ->
      let entry = Scalana_apps.Registry.find name in
      let scales = scales_for entry ~max_np:!max_np in
      let s =
        List.map
          (fun nprocs ->
            ( nprocs,
              Scalana.Experiment.tool_comparison ~cost:entry.cost
                (entry.make ()) ~nprocs ))
          scales
      in
      Hashtbl.replace sweep_cache name s;
      s

let find_tool ms k =
  List.find (fun (m : Scalana.Experiment.measurement) -> m.tool = k) ms

(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table I — NPB-CG, 128 processes: overhead and storage per tool";
  let ms = List.assoc (min 128 !max_np) (sweep "cg") in
  Printf.printf "  %-28s %12s %12s\n" "Tool" "Overhead" "Storage";
  List.iter
    (fun (m : Scalana.Experiment.measurement) ->
      Printf.printf "  %-28s %11.2f%% %12s\n"
        (Scalana.Experiment.tool_name m.tool)
        m.overhead_pct (human_bytes m.storage_bytes))
    ms;
  paper "Scalasca 25.3%% / 6.77 GB; HPCToolkit 8.41%% / 11.45 MB;";
  paper "ScalAna 3.53%% / 314 KB   (CG class C, 128 procs)";
  note "shape target: tracing >> profiling >= ScalAna on both axes"

let fig2 () =
  section "Fig. 2 — injected delay in one process of NPB-CG";
  let entry = Scalana_apps.Registry.find "cg" in
  let prog = entry.make () in
  let spmv_loc = ref Loc.none in
  Ast.iter_program
    (fun s ->
      match s.Ast.node with
      | Ast.Comp { label = Some "spmv"; _ } -> spmv_loc := s.Ast.loc
      | _ -> ())
    prog;
  let inject = Inject.create [ Inject.delay ~ranks:[ 4 ] ~loc:!spmv_loc 1.0 ] in
  let pipe = Scalana.Pipeline.run ~cost:entry.cost ~inject ~scales:[ 8 ] prog in
  Printf.printf "  injected: +1s per iteration on rank 4 at %s\n"
    (Loc.to_string !spmv_loc);
  List.iteri
    (fun idx (c : Scalana_detect.Rootcause.cause) ->
      Printf.printf "  cause #%d: %s @%s (culprit ranks %s)\n" (idx + 1)
        c.cause_label
        (Loc.to_string c.cause_loc)
        (String.concat "," (List.map string_of_int c.culprit_ranks)))
    pipe.analysis.causes;
  (match pipe.analysis.causes with
  | c :: _ ->
      Printf.printf "  backtracking path:\n    %s\n"
        (Fmt.str "%a" (Scalana_detect.Backtrack.pp_path (Scalana.Static.psg pipe.static))
           c.example_path)
  | [] -> ());
  paper "the red vertex of process 4 is identified through a path";
  paper "traversing different processes (Fig. 2c)"

let fig4 () =
  section "Fig. 4 — PSG generation stages (Fig. 3 toy program)";
  let b = Builder.create ~file:"fig3.mmp" ~name:"fig3-toy" () in
  let open Expr.Infix in
  Builder.param b "n" 1000;
  Builder.func b "foo" (fun () ->
      [
        Builder.branch b
          ~cond:(rank % i 2 = i 0)
          ~else_:(fun () -> [ Builder.recv b ~src:(rank - i 1) ~bytes:(i 64) () ])
          (fun () -> [ Builder.send b ~dest:(rank + i 1) ~bytes:(i 64) () ]);
      ]);
  Builder.func b "main" (fun () ->
      [
        Builder.loop b ~label:"loop1" ~var:"ii" ~count:(p "n") (fun () ->
            [
              Builder.comp b ~label:"a_fill" ~flops:(p "n") ~mem:(p "n") ();
              Builder.loop b ~label:"loop1_1" ~var:"j" ~count:(v "ii") (fun () ->
                  [ Builder.comp b ~label:"sum" ~flops:(p "n") ~mem:(p "n") () ]);
              Builder.loop b ~label:"loop1_2" ~var:"k" ~count:(v "ii") (fun () ->
                  [ Builder.comp b ~label:"product" ~flops:(p "n") ~mem:(p "n") () ]);
              Builder.call b "foo";
              Builder.bcast b ~bytes:(i 8) ();
            ]);
      ]);
  let prog = Builder.program b in
  let locals = Scalana_psg.Intra.build_all prog in
  Hashtbl.iter
    (fun name local ->
      Printf.printf "  local PSG of %-6s: %d vertices\n" name
        (Scalana_psg.Psg.n_vertices local))
    locals;
  let full = Scalana_psg.Inter.build ~locals prog in
  Printf.printf "  complete PSG (inter-procedural): %d vertices\n"
    (Scalana_psg.Psg.n_vertices full);
  let c1 = Scalana_psg.Contract.run ~max_loop_depth:1 full in
  Printf.printf "  contracted PSG (MaxLoopDepth=1): %d vertices\n"
    (Scalana_psg.Psg.n_vertices c1.Scalana_psg.Contract.psg);
  Fmt.pr "%a" Scalana_psg.Psg.pp c1.Scalana_psg.Contract.psg;
  paper "Fig. 4(c): Loop1.1/Loop1.2 merge into a Comp when MaxLoopDepth=1"

let fig7 () =
  section "Fig. 7 — problematic-vertex examples (zeus-mp data)";
  let pipe = pipeline ~max_np:(min 32 !max_np) "zeusmp" in
  let psg = Scalana.Static.psg pipe.static in
  Printf.printf "  (a) non-scalable vertex: aggregated time vs process count\n";
  (match pipe.analysis.nonscalable with
  | f :: _ ->
      let v = Scalana_psg.Psg.vertex psg f.vertex in
      Printf.printf "      vertex %s @%s (slope %+.2f)\n"
        (Scalana_psg.Vertex.label v)
        (Loc.to_string v.Scalana_psg.Vertex.loc)
        f.slope;
      List.iter
        (fun (np, t) -> Printf.printf "      np=%4d  time=%8.4fs\n" np t)
        f.series
  | [] -> print_endline "      (none detected)");
  Printf.printf "  (b) abnormal vertex: per-rank times at the largest scale\n";
  (match pipe.analysis.abnormal with
  | f :: _ ->
      let v = Scalana_psg.Psg.vertex psg f.vertex in
      let _, ppg = Scalana_ppg.Crossscale.largest pipe.crossscale in
      let times = Scalana_ppg.Ppg.times_across_ranks ppg ~vertex:f.vertex in
      Printf.printf "      vertex %s: [%s]\n"
        (Scalana_psg.Vertex.label v)
        (bars times);
      Printf.printf "      deviating ranks: %s\n"
        (String.concat "," (List.map string_of_int f.ranks))
  | [] -> print_endline "      (none detected)");
  paper "(a) one vertex's time does not decrease like the others;";
  paper "(b) some ranks take much longer at the same vertex"

let fig8 () =
  section "Fig. 6/8 — PPG with performance data and backtracking (8 ranks)";
  let pipe = pipeline ~max_np:8 "zeusmp" in
  let _, ppg = Scalana_ppg.Crossscale.largest pipe.crossscale in
  Printf.printf "  PPG: %d PSG vertices x 8 ranks, %d comm-dependence entries\n"
    (Scalana_psg.Psg.n_vertices (Scalana.Static.psg pipe.static))
    (Scalana_ppg.Ppg.n_comm_edges ppg);
  Printf.printf "  problematic vertices: %d non-scalable, %d abnormal\n"
    (List.length pipe.analysis.nonscalable)
    (List.length pipe.analysis.abnormal);
  (match pipe.analysis.paths with
  | path :: _ ->
      Printf.printf "  one backtracking path (red line of Fig. 8):\n    %s\n"
        (Fmt.str "%a"
           (Scalana_detect.Backtrack.pp_path (Scalana.Static.psg pipe.static))
           path)
  | [] -> ());
  paper "backtracking connects abnormal vertices across processes 0,2,4"

let table2 () =
  section "Table II — code size and PSG vertices per program";
  Printf.printf "  %s\n" Scalana_psg.Stats.header;
  let ratios = ref [] in
  List.iter
    (fun (e : Scalana_apps.Registry.entry) ->
      let static = Scalana.Static.analyze (e.make ()) in
      Printf.printf "  %s\n" (Scalana_psg.Stats.row static.stats);
      ratios := Scalana_psg.Stats.contraction_ratio static.stats :: !ratios)
    Scalana_apps.Registry.all;
  let mean =
    List.fold_left ( +. ) 0.0 !ratios /. float_of_int (List.length !ratios)
  in
  Printf.printf "  mean contraction: %.0f%% of vertices removed\n" (100.0 *. mean);
  paper "graph contraction removes 68%% of vertices on average;";
  paper "Comp+MPI make up >73%% of contracted vertices";
  note "our MiniMPI sources are skeletal, so absolute KLoc/vertex counts";
  note "are smaller; Zeus-MP is the largest program, as in the paper"

let table3 () =
  section "Table III — static (compile-time) overhead per program";
  Printf.printf "  %-10s %8s\n" "Program" "Ovd(%)";
  List.iter
    (fun (e : Scalana_apps.Registry.entry) ->
      let pct = Scalana.Static.static_overhead ~repeat:2 (e.make ()) in
      Printf.printf "  %-10s %8.2f\n" e.name pct)
    Scalana_apps.Registry.all;
  paper "0.28%% to 3.01%%, 0.89%% on average (vs LLVM compilation)";
  note "base compile modeled as parse+validate+150 CFG/dominance/loop passes"

let fig10 () =
  section "Fig. 10 — mean runtime overhead, 4..128 processes (no I/O)";
  Printf.printf "  %-10s %22s %22s %22s\n" "Program" "Scalasca-like"
    "HPCToolkit-like" "ScalAna";
  let grand = Hashtbl.create 4 in
  List.iter
    (fun (e : Scalana_apps.Registry.entry) ->
      let per_tool = Hashtbl.create 4 in
      List.iter
        (fun (_, ms) ->
          List.iter
            (fun (m : Scalana.Experiment.measurement) ->
              let l = try Hashtbl.find per_tool m.tool with Not_found -> [] in
              Hashtbl.replace per_tool m.tool (m.overhead_pct :: l))
            ms)
        (sweep e.name);
      let mean k =
        let l = try Hashtbl.find per_tool k with Not_found -> [] in
        let m = List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l)) in
        let g = try Hashtbl.find grand k with Not_found -> [] in
        Hashtbl.replace grand k (m :: g);
        m
      in
      Printf.printf "  %-10s %21.2f%% %21.2f%% %21.2f%%\n" e.name
        (mean Scalana.Experiment.Tracing_tool)
        (mean Scalana.Experiment.Callpath_tool)
        (mean Scalana.Experiment.Scalana_tool))
    Scalana_apps.Registry.all;
  let gmean k =
    let l = try Hashtbl.find grand k with Not_found -> [] in
    List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l))
  in
  Printf.printf "  %-10s %21.2f%% %21.2f%% %21.2f%%\n" "MEAN"
    (gmean Scalana.Experiment.Tracing_tool)
    (gmean Scalana.Experiment.Callpath_tool)
    (gmean Scalana.Experiment.Scalana_tool);
  paper "ScalAna 0.72-9.73%%, mean 3.52%%; much lower than Scalasca";
  paper "(and 1.73%% mean at 2,048 procs on Tianhe-2)"

let fig11 () =
  section "Fig. 11 — storage cost at the largest scale per tool";
  Printf.printf "  %-10s %14s %14s %14s\n" "Program" "Scalasca-like"
    "HPCToolkit-like" "ScalAna";
  List.iter
    (fun (e : Scalana_apps.Registry.entry) ->
      let s = sweep e.name in
      let np, ms = List.nth s (List.length s - 1) in
      let g k = (find_tool ms k).Scalana.Experiment.storage_bytes in
      Printf.printf "  %-10s %14s %14s %14s  (np=%d)\n" e.name
        (human_bytes (g Scalana.Experiment.Tracing_tool))
        (human_bytes (g Scalana.Experiment.Callpath_tool))
        (human_bytes (g Scalana.Experiment.Scalana_tool))
        np)
    Scalana_apps.Registry.all;
  paper "ScalAna needs kilobytes where Scalasca needs MB..GB";
  paper "(and 4.72 MB mean for NPB at 2,048 procs)"

let table4 () =
  section "Table IV — post-mortem detection cost at the largest scale";
  Printf.printf "  %-10s %10s %10s\n" "Program" "Cost(s)" "Causes";
  List.iter
    (fun (e : Scalana_apps.Registry.entry) ->
      let pipe = pipeline ~max_np:!max_np e.name in
      Printf.printf "  %-10s %10.3f %10d\n" e.name pipe.detect_seconds
        (List.length pipe.analysis.causes))
    Scalana_apps.Registry.all;
  paper "0.29 s (EP) to 11.81 s (Zeus-MP) on 128 processes;";
  paper "up to 8.44%% of program execution time"

(* --- case studies --- *)

let speedup_rows name ~baseline_np ~scales =
  let entry = Scalana_apps.Registry.find name in
  let rows =
    Scalana.Experiment.speedup ~cost:entry.cost ~make:entry.make ~baseline_np
      ~scales ()
  in
  Printf.printf "  %-6s %12s %12s %14s\n" "np" "base" "optimized" "improvement";
  List.iter
    (fun (r : Scalana.Experiment.speedup_row) ->
      Printf.printf "  %-6d %11.2fx %11.2fx %13.1f%%\n" r.sp_nprocs
        r.base_speedup r.opt_speedup r.improvement_pct)
    rows

let fig12 () =
  section "Fig. 12 + case VI-D.1 — Zeus-MP: backtracking and optimization";
  let pipe = pipeline ~max_np:(min 128 !max_np) "zeusmp" in
  print_string pipe.report;
  Printf.printf "\n  strong-scaling speedup (own baseline at np=4):\n";
  speedup_rows "zeusmp" ~baseline_np:4
    ~scales:[ 4; 16; 64; min 128 !max_np ];
  paper "allreduce at nudt.F:361 detected; backtracking through waitalls";
  paper "at nudt.F:227/269/328 identifies the LOOP at bval3d.F:155;";
  paper "fix: +9.55%% at 128 (Gorgon), +9.96%% at 2,048 (Tianhe-2)"

let fig13 () =
  section "Fig. 13 — Zeus-MP: runtime and storage overhead per tool";
  Printf.printf "  %-6s | %-24s | %-24s\n" "np" "overhead %" "storage";
  Printf.printf "  %-6s | %7s %8s %7s | %8s %8s %7s\n" "" "trace" "callpath"
    "scalana" "trace" "callpath" "scalana";
  List.iter
    (fun (np, ms) ->
      let g k = find_tool ms k in
      let tr = g Scalana.Experiment.Tracing_tool
      and cp = g Scalana.Experiment.Callpath_tool
      and sa = g Scalana.Experiment.Scalana_tool in
      Printf.printf "  %-6d | %7.2f %8.2f %7.2f | %8s %8s %7s\n" np
        tr.overhead_pct cp.overhead_pct sa.overhead_pct
        (human_bytes tr.storage_bytes)
        (human_bytes cp.storage_bytes)
        (human_bytes sa.storage_bytes))
    (sweep "zeusmp");
  paper "ScalAna 1.85%% / HPCToolkit 2.01%% mean overhead; Scalasca 40.89%%";
  paper "at 64 procs; 20 MB (ScalAna) vs 28.26 GB (Scalasca traces)"

let fig14 () =
  section "Fig. 14 + case VI-D.2 — SST: backtracking and optimization";
  let pipe = pipeline ~max_np:(min 32 !max_np) "sst" in
  print_string pipe.report;
  Printf.printf "\n  strong-scaling speedup (own baseline at np=4):\n";
  speedup_rows "sst" ~baseline_np:4 ~scales:[ 4; 8; 16; 32 ];
  paper "allreduce at rankSyncSerialSkip.cc:235 -> waitall at :217 ->";
  paper "LOOP in RequestGenCPU::handleEvent (mirandaCPU.cc:247);";
  paper "fix (array -> map): 1.20x -> 1.56x at 32 procs (+73.12%%)"

let per_vertex_counter name ~label ~metric ~nprocs ~optimized =
  let entry = Scalana_apps.Registry.find name in
  let prog = entry.make ~optimized () in
  let static = Scalana.Static.analyze prog in
  let run = Scalana.Prof.run ~cost:entry.cost static ~nprocs () in
  let vertex =
    List.find
      (fun v ->
        match v.Scalana_psg.Vertex.kind with
        | Scalana_psg.Vertex.Comp { label = Some l; _ } -> String.equal l label
        | _ -> false)
      (Scalana_psg.Psg.find_all Scalana_psg.Vertex.is_comp
         (Scalana.Static.psg static))
  in
  Array.init nprocs (fun rank ->
      match
        Scalana_profile.Profdata.vector_opt run.Scalana.Prof.data ~rank
          ~vertex:vertex.Scalana_psg.Vertex.id
      with
      | Some v -> Pmu.get metric v.Scalana_profile.Perfvec.pmu
      | None -> 0.0)

let fig15 () =
  section "Fig. 15 — SST: per-rank TOT_INS of the handleEvent loop (32 procs)";
  let base =
    per_vertex_counter "sst" ~label:"satisfyDependency" ~metric:Pmu.Tot_ins
      ~nprocs:32 ~optimized:false
  in
  let opt =
    per_vertex_counter "sst" ~label:"satisfyDependency" ~metric:Pmu.Tot_ins
      ~nprocs:32 ~optimized:true
  in
  Printf.printf "  original : [%s] max=%.3g spread=%.1fx\n" (bars base)
    (Array.fold_left Float.max 0.0 base)
    (spread base);
  Printf.printf "  optimized: [%s] max=%.3g spread=%.1fx\n" (bars opt)
    (Array.fold_left Float.max 0.0 opt)
    (spread opt);
  let mx b = Array.fold_left Float.max 0.0 b in
  Printf.printf "  TOT_INS reduction: %.2f%%\n"
    (100.0 *. (1.0 -. (mx opt /. mx base)));
  paper "99.92%% TOT_INS reduction, counts balanced after the fix"

let fig16 () =
  section "Fig. 16 — Nekbone: per-rank counters of the dgemm loop (32 procs)";
  let get metric optimized =
    per_vertex_counter "nekbone" ~label:"dgemm" ~metric ~nprocs:32 ~optimized
  in
  let lst = get Pmu.Tot_lst_ins false and lst' = get Pmu.Tot_lst_ins true in
  let cyc = get Pmu.Tot_cyc false and cyc' = get Pmu.Tot_cyc true in
  Printf.printf "  TOT_LST_INS original : [%s] spread=%.2fx\n" (bars lst)
    (spread lst);
  Printf.printf "  TOT_CYC     original : [%s] spread=%.2fx\n" (bars cyc)
    (spread cyc);
  Printf.printf "  TOT_LST_INS optimized: [%s] spread=%.2fx\n" (bars lst')
    (spread lst');
  Printf.printf "  TOT_CYC     optimized: [%s] spread=%.2fx\n" (bars cyc')
    (spread cyc');
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
  Printf.printf "  TOT_LST_INS reduction: %.2f%%\n"
    (100.0 *. (1.0 -. (mean lst' /. mean lst)));
  let var a =
    let m = mean a in
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a
    /. float_of_int (Array.length a)
  in
  Printf.printf "  TOT_CYC variance reduction: %.2f%%\n"
    (100.0 *. (1.0 -. (var cyc' /. Float.max (var cyc) 1e-9)));
  Printf.printf "\n  strong-scaling speedup (own baseline at np=4):\n";
  speedup_rows "nekbone" ~baseline_np:4
    ~scales:[ 4; 16; 32; 64; min 128 !max_np ];
  paper "TOT_LST_INS equal across ranks, TOT_CYC diverges; fix: -89.78%%";
  paper "loads, -94.03%% cycle variance; speedup 31.95x -> 51.96x at 64"

(* The paper's Tianhe-2 rows: NPB with 2,048 processes under the ScalAna
   tool only (no cross-tool comparison was possible there either). *)
let tianhe () =
  section "Tianhe-scale — NPB at 2,048 processes under ScalAna";
  Printf.printf "  %-10s %8s %12s %12s
" "Program" "np" "overhead" "storage";
  let os = ref [] and ss = ref [] in
  List.iter
    (fun name ->
      let entry = Scalana_apps.Registry.find name in
      let nprocs = if entry.square_scales then 1024 else 2048 in
      let static = Scalana.Static.analyze (entry.make ()) in
      let run =
        Scalana.Prof.run ~cost:entry.cost ~measure_overhead:true static ~nprocs ()
      in
      let ovh =
        match Scalana.Prof.overhead_percent run with Some p -> p | None -> 0.0
      in
      let bytes = Scalana_profile.Profdata.storage_bytes run.Scalana.Prof.data in
      os := ovh :: !os;
      ss := bytes :: !ss;
      Printf.printf "  %-10s %8d %11.2f%% %12s
" name nprocs ovh
        (human_bytes bytes))
    [ "bt"; "cg"; "ep"; "ft"; "mg"; "sp"; "lu"; "is" ];
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  Printf.printf "  mean overhead: %.2f%%   mean storage: %s
" (mean !os)
    (human_bytes
       (List.fold_left ( + ) 0 !ss / List.length !ss));
  paper "1.73%% mean runtime overhead and 4.72 MB mean storage for the";
  paper "NPB suite with 2,048 processes on Tianhe-2"

(* Critical-path extension: agrees with backtracking on the planted
   pathologies. *)
let critpath () =
  section "Extension — critical-path analysis (zeus-mp, 16 ranks)";
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let tr = Scalana_baselines.Tracer.create () in
  let cfg =
    Exec.config ~nprocs:16 ~cost:entry.cost
      ~tools:[ Scalana_baselines.Tracer.tool tr ] ()
  in
  ignore (Exec.run ~cfg (entry.make ()));
  let cp = Scalana_detect.Critpath.analyze (Scalana_baselines.Tracer.events tr) in
  Printf.printf "  critical path: %.3fs over %d segments
" cp.total
    (List.length cp.segments);
  List.iter
    (fun (loc, s) -> Printf.printf "  %-44s %8.3fs
" loc s)
    (Scalana_detect.Critpath.top ~n:6 cp);
  note "the hsmoc volume work bounds the runtime at this scale, but the";
  note "quarter-rank boundary updates already sit on the chain — the same";
  note "code backtracking blames for the scaling loss at larger scales"

let all : (string * (unit -> unit)) list =
  [
    ("table1", table1);
    ("fig2", fig2);
    ("fig4", fig4);
    ("fig7", fig7);
    ("fig8", fig8);
    ("table2", table2);
    ("table3", table3);
    ("fig10", fig10);
    ("fig11", fig11);
    ("table4", table4);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("tianhe", tianhe);
    ("critpath", critpath);
  ]
