(* Shared helpers for the experiment harness. *)

let section title =
  Printf.printf "\n==================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==================================================\n%!"

let paper fmt = Printf.printf ("  paper:    " ^^ fmt ^^ "\n%!")
let note fmt = Printf.printf ("  note:     " ^^ fmt ^^ "\n%!")

let human_bytes b =
  let f = float_of_int b in
  if f >= 1e9 then Printf.sprintf "%.2f GB" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2f MB" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.2f KB" (f /. 1e3)
  else Printf.sprintf "%d B" b

let spread a =
  let mx = Array.fold_left Float.max 0.0 a in
  let mn = Array.fold_left Float.min infinity a in
  if mn > 0.0 then mx /. mn else infinity

(* Sparkline-style rendering of a per-rank array, for the Fig. 15/16
   plots in a terminal. *)
let bars ?(width = 64) a =
  let n = Array.length a in
  let mx = Array.fold_left Float.max 1e-12 a in
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '@' |] in
  let buf = Buffer.create width in
  let step = max 1 (n / width) in
  let i = ref 0 in
  while !i < n do
    let stop = min n (!i + step) in
    let chunk = ref 0.0 in
    for j = !i to stop - 1 do
      chunk := Float.max !chunk a.(j)
    done;
    let level =
      int_of_float (!chunk /. mx *. float_of_int (Array.length glyphs - 1))
    in
    Buffer.add_char buf glyphs.(max 0 (min (Array.length glyphs - 1) level));
    i := stop
  done;
  Buffer.contents buf

let scales_for (entry : Scalana_apps.Registry.entry) ~max_np =
  Scalana_apps.Registry.scales entry ~min_np:4 ~max_np

(* One profiled pipeline per program is expensive; cache per (name, scales). *)
let pipeline_cache : (string, Scalana.Pipeline.t) Hashtbl.t = Hashtbl.create 8

let pipeline ?(max_np = 32) name =
  let key = Printf.sprintf "%s@%d" name max_np in
  match Hashtbl.find_opt pipeline_cache key with
  | Some p -> p
  | None ->
      let entry = Scalana_apps.Registry.find name in
      let scales = scales_for entry ~max_np in
      let p =
        Scalana.Pipeline.run ~cost:entry.cost ~scales (entry.make ())
      in
      Hashtbl.replace pipeline_cache key p;
      p
