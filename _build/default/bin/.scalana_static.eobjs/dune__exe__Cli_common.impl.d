bin/cli_common.ml: Arg Cmd Cmdliner Filename Fun Parser Printf Scalana Scalana_apps Scalana_mlang Scalana_runtime String Validate
