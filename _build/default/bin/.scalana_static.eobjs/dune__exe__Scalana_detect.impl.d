bin/scalana_detect.ml: Cli_common Cmd Cmdliner Printf Scalana Term
