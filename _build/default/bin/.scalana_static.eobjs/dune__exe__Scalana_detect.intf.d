bin/scalana_detect.mli:
