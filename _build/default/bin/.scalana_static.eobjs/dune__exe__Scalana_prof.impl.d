bin/scalana_prof.ml: Arg Cli_common Cmd Cmdliner List Printf Scalana Scalana_apps Scalana_profile Scalana_runtime String Term
