bin/scalana_prof.mli:
