bin/scalana_static.ml: Arg Cli_common Cmd Cmdliner Fmt Printf Scalana Scalana_psg Term
