bin/scalana_static.mli:
