bin/scalana_viewer.ml: Arg Cli_common Cmd Cmdliner Printf Scalana Term
