bin/scalana_viewer.mli:
