examples/delay_injection.ml: Array Ast Exec Fmt Inject List Loc Printf Scalana Scalana_apps Scalana_detect Scalana_mlang Scalana_runtime String
