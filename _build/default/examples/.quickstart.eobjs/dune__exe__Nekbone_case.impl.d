examples/nekbone_case.ml: Array List Pmu Printf Scalana Scalana_apps Scalana_profile Scalana_psg Scalana_runtime
