examples/nekbone_case.mli:
