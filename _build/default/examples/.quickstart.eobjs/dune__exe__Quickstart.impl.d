examples/quickstart.ml: List Printf Scalana Scalana_mlang
