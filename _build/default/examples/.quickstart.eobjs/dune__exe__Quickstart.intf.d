examples/quickstart.mli:
