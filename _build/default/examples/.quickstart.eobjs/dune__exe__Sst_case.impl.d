examples/sst_case.ml: Array Float List Pmu Printf Scalana Scalana_apps Scalana_profile Scalana_psg Scalana_runtime
