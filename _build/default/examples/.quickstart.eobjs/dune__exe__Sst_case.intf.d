examples/sst_case.mli:
