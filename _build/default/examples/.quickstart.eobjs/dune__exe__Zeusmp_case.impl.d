examples/zeusmp_case.ml: List Printf Scalana Scalana_apps String
