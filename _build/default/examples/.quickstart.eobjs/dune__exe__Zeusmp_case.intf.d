examples/zeusmp_case.mli:
