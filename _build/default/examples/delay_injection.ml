(* The paper's motivating example (Fig. 2): inject a delay into one
   process of NPB-CG and watch it surface at other processes' waits —
   then let backtracking find the true origin.

     dune exec examples/delay_injection.exe                            *)

open Scalana_mlang
open Scalana_runtime

let () =
  let entry = Scalana_apps.Registry.find "cg" in
  let prog = entry.make () in
  (* target the spmv computation on rank 4, as in Fig. 2 *)
  let spmv_loc = ref Loc.none in
  Ast.iter_program
    (fun s ->
      match s.Ast.node with
      | Ast.Comp { label = Some "spmv"; _ } -> spmv_loc := s.Ast.loc
      | _ -> ())
    prog;
  Printf.printf "injecting +1s per iteration on rank 4 at %s\n\n"
    (Loc.to_string !spmv_loc);
  let inject = Inject.create [ Inject.delay ~ranks:[ 4 ] ~loc:!spmv_loc 1.0 ] in

  (* effect on raw runs: everyone else's wait time inflates *)
  let bare cfg_inject =
    Exec.run
      ~cfg:(Exec.config ~nprocs:8 ~cost:entry.cost ~inject:cfg_inject ())
      prog
  in
  let clean = bare Inject.empty and delayed = bare inject in
  Printf.printf "elapsed: clean %.2fs -> delayed %.2fs\n" clean.Exec.elapsed
    delayed.Exec.elapsed;
  Printf.printf "rank 0 wait: %.2fs -> %.2fs (delay propagates)\n"
    clean.Exec.wait_seconds.(0) delayed.Exec.wait_seconds.(0);
  Printf.printf "rank 4 wait: %.2fs -> %.2fs (the culprit never waits)\n\n"
    clean.Exec.wait_seconds.(4) delayed.Exec.wait_seconds.(4);

  (* ScalAna finds the origin, not the symptoms *)
  let pipe = Scalana.Pipeline.run ~cost:entry.cost ~inject ~scales:[ 8 ] prog in
  (match pipe.analysis.causes with
  | c :: _ ->
      Printf.printf "root cause: %s @%s, culprit ranks = %s\n" c.cause_label
        (Loc.to_string c.cause_loc)
        (String.concat "," (List.map string_of_int c.culprit_ranks));
      Printf.printf "backtracking path:\n  %s\n"
        (Fmt.str "%a"
           (Scalana_detect.Backtrack.pp_path (Scalana.Static.psg pipe.static))
           c.example_path)
  | [] -> print_endline "no cause found (unexpected)");
  print_newline ();
  print_endline
    "paper: tracing this scenario produced >250 GB of traces; ScalAna's";
  print_endline "PPG identifies the red vertex of process 4 directly"
