(* Case study VI-D.3: Nekbone.

   The spectral-element CG solver's dgemm loop retires the same
   load/store count on every rank, but some cores serve memory slower
   (heterogeneous cost model), so TOT_CYC diverges and the gather-scatter
   MPI_Waitall absorbs the difference.  The efficient-BLAS fix removes
   ~90% of the loads, which also hides the core-speed variance.

     dune exec examples/nekbone_case.exe                               *)

open Scalana_runtime

let dgemm_counters ~optimized ~nprocs =
  let entry = Scalana_apps.Registry.find "nekbone" in
  let prog = entry.make ~optimized () in
  let static = Scalana.Static.analyze prog in
  let run = Scalana.Prof.run ~cost:entry.cost static ~nprocs () in
  let vertex =
    List.find
      (fun v ->
        match v.Scalana_psg.Vertex.kind with
        | Scalana_psg.Vertex.Comp { label = Some "dgemm"; _ } -> true
        | _ -> false)
      (Scalana_psg.Psg.find_all Scalana_psg.Vertex.is_comp
         (Scalana.Static.psg static))
  in
  Array.init nprocs (fun rank ->
      match
        Scalana_profile.Profdata.vector_opt run.Scalana.Prof.data ~rank
          ~vertex:vertex.Scalana_psg.Vertex.id
      with
      | Some v ->
          ( v.Scalana_profile.Perfvec.pmu.Pmu.tot_lst_ins,
            v.Scalana_profile.Perfvec.pmu.Pmu.tot_cyc )
      | None -> (0.0, 0.0))

let () =
  let entry = Scalana_apps.Registry.find "nekbone" in
  let scales = [ 4; 8; 16; 32; 64 ] in
  let pipe = Scalana.Pipeline.run ~cost:entry.cost ~scales (entry.make ()) in
  print_string pipe.report;

  Printf.printf "\n-- PMU evidence (Fig. 16): dgemm loop, 32 ranks --\n";
  let base = dgemm_counters ~optimized:false ~nprocs:32 in
  let opt = dgemm_counters ~optimized:true ~nprocs:32 in
  Printf.printf "%5s %14s %14s | %14s %14s\n" "rank" "LST (base)" "CYC (base)"
    "LST (opt)" "CYC (opt)";
  Array.iteri
    (fun rank (lst, cyc) ->
      if rank < 8 || (cyc > 0.0 && rank mod 8 = 0) then
        let lst', cyc' = opt.(rank) in
        Printf.printf "%5d %14.0f %14.0f | %14.0f %14.0f\n" rank lst cyc lst'
          cyc')
    base;
  let var a =
    let m = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a
    /. float_of_int (Array.length a)
  in
  let cyc_base = Array.map snd base and cyc_opt = Array.map snd opt in
  let lst_base = Array.map fst base and lst_opt = Array.map fst opt in
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
  Printf.printf "TOT_LST_INS reduction: %.1f%% (paper: 89.78%%)\n"
    (100.0 *. (1.0 -. (mean lst_opt /. mean lst_base)));
  Printf.printf "TOT_CYC variance reduction: %.1f%% (paper: 94.03%%)\n"
    (100.0 *. (1.0 -. (var cyc_opt /. var cyc_base)));

  Printf.printf "\n-- optimization: efficient BLAS --\n";
  let rows =
    Scalana.Experiment.speedup ~cost:entry.cost ~make:entry.make ~baseline_np:4
      ~scales ()
  in
  List.iter
    (fun (r : Scalana.Experiment.speedup_row) ->
      Printf.printf "np=%2d  base %6.2fx  optimized %6.2fx  (+%.1f%%)\n"
        r.sp_nprocs r.base_speedup r.opt_speedup r.improvement_pct)
    rows;
  print_newline ();
  print_endline
    "paper: MPI_Waitall at comm.h:243 non-scalable; root cause the dgemm";
  print_endline
    "LOOP at blas.f:8941; fix lifts 64-proc speedup 31.95x -> 51.96x"
