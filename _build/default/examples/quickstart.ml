(* Quickstart: write a MiniMPI program (here as concrete syntax), run the
   full ScalAna pipeline on it, and read the root-cause report.

   The program has a planted load imbalance: rank 0 executes an extra
   "imbalanced_work" loop before every barrier, so the other ranks wait.
   ScalAna should point at that loop, not at the barrier where the time
   shows up.

     dune exec examples/quickstart.exe                                *)

let source =
  {|program "quickstart"
param n = 40000000
param steps = 12

func solve() {
  comp label "stencil" flops=6 * $n / np mem=3 * $n / np ints=0 locality=0.85;
  sendrecv dest=(rank + 1) % np stag=0 sbytes=8192 src=(rank - 1 + np) % np rtag=0 rbytes=8192;
}

func main() {
  comp label "init" flops=$n / np mem=$n / np ints=0 locality=0.9;
  bcast root=0 bytes=64;
  loop t = $steps label "timestep" {
    call solve();
    if rank == 0 {
      loop j = 24 label "imbalanced_work" {
        comp label "extra" flops=1200000 mem=600000 ints=0 locality=0.8;
      }
    }
    barrier;
  }
  allreduce bytes=8;
}
|}

let () =
  (* 1. parse and validate (what scalana-static does for a file) *)
  let program = Scalana_mlang.Parser.parse ~file:"quickstart.mmp" source in
  Scalana_mlang.Validate.run_exn program;
  Printf.printf "parsed %S: %d statements\n" program.pname
    (Scalana_mlang.Ast.stmt_count program);

  (* 2. the whole pipeline: static PSG, profiled runs at several job
     scales, PPG construction, detection, backtracking *)
  let pipe = Scalana.Pipeline.run ~scales:[ 2; 4; 8; 16 ] program in

  (* 3. the report a user would read *)
  print_newline ();
  print_string pipe.report;

  (* 4. and the viewer's source window for the top cause *)
  match pipe.analysis.causes with
  | [] -> print_endline "no causes found (unexpected for this demo)"
  | c :: _ ->
      Printf.printf "\nTop root cause is %s at %s — the planted loop:\n"
        c.cause_label
        (Scalana_mlang.Loc.to_string c.cause_loc);
      List.iter print_endline
        (Scalana_mlang.Pretty.snippet ~context:2 program c.cause_loc)
