(* Case study VI-D.2: SST.

   The discrete-event simulator's handleEvent loop scans a
   pendingRequests array whose length grows with the peer count, so
   per-event cost grows with np and differs across ranks.  ScalAna's
   backtracking walks from the exchange allreduce through the waitall to
   that loop; the per-rank TOT_INS counters justify the array -> map fix.

     dune exec examples/sst_case.exe                                   *)

open Scalana_runtime

let per_rank_tot_ins ~optimized ~nprocs =
  let entry = Scalana_apps.Registry.find "sst" in
  let prog = entry.make ~optimized () in
  let static = Scalana.Static.analyze prog in
  let run = Scalana.Prof.run ~cost:entry.cost static ~nprocs () in
  let vertex =
    List.find
      (fun v ->
        match v.Scalana_psg.Vertex.kind with
        | Scalana_psg.Vertex.Comp { label = Some "satisfyDependency"; _ } ->
            true
        | _ -> false)
      (Scalana_psg.Psg.find_all Scalana_psg.Vertex.is_comp
         (Scalana.Static.psg static))
  in
  Array.init nprocs (fun rank ->
      match
        Scalana_profile.Profdata.vector_opt run.Scalana.Prof.data ~rank
          ~vertex:vertex.Scalana_psg.Vertex.id
      with
      | Some v -> v.Scalana_profile.Perfvec.pmu.Pmu.tot_ins
      | None -> 0.0)

let () =
  let entry = Scalana_apps.Registry.find "sst" in
  let scales = [ 4; 8; 16; 32 ] in
  let pipe = Scalana.Pipeline.run ~cost:entry.cost ~scales (entry.make ()) in
  print_string pipe.report;

  Printf.printf "\n-- PMU evidence (Fig. 15): per-rank TOT_INS of the loop --\n";
  let base = per_rank_tot_ins ~optimized:false ~nprocs:32 in
  let opt = per_rank_tot_ins ~optimized:true ~nprocs:32 in
  Array.iteri
    (fun rank v ->
      if rank < 8 then
        Printf.printf "rank %2d: original %12.0f   optimized %12.0f\n" rank v
          opt.(rank))
    base;
  let mx a = Array.fold_left Float.max 0.0 a in
  Printf.printf "max TOT_INS: %.3g -> %.3g (%.2f%% reduction)\n" (mx base)
    (mx opt)
    (100.0 *. (1.0 -. (mx opt /. mx base)));

  Printf.printf "\n-- optimization: pendingRequests array -> indexed map --\n";
  let rows =
    Scalana.Experiment.speedup ~cost:entry.cost ~make:entry.make ~baseline_np:4
      ~scales ()
  in
  List.iter
    (fun (r : Scalana.Experiment.speedup_row) ->
      Printf.printf "np=%2d  base %5.2fx  optimized %5.2fx  (+%.1f%%)\n"
        r.sp_nprocs r.base_speedup r.opt_speedup r.improvement_pct)
    rows;
  print_newline ();
  print_endline
    "paper: root cause LOOP in RequestGenCPU::handleEvent (mirandaCPU.cc:247);";
  print_endline
    "fix reduces TOT_INS by 99.92% and lifts 32-proc speedup 1.20x -> 1.56x"
