(* Case study VI-D.1: Zeus-MP.

   Reproduces the paper's diagnosis end-to-end: the MPI_Allreduce in nudt
   is non-scalable; backtracking through the non-blocking halo waitalls
   identifies the boundary-value loops (the bval3d.F:155 analogue) that
   only a quarter of the ranks execute.  Then applies the paper's fix
   (multi-threading the boundary loops) and reports the improvement.

     dune exec examples/zeusmp_case.exe                                *)

let () =
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let scales = [ 4; 8; 16; 32; 64 ] in
  Printf.printf "profiling zeus-mp at scales %s...\n%!"
    (String.concat "," (List.map string_of_int scales));
  let pipe = Scalana.Pipeline.run ~cost:entry.cost ~scales (entry.make ()) in
  print_string pipe.report;

  (* the paper's speedup comparison, each variant against its own np=4 *)
  Printf.printf "\n-- optimization: OpenMP threads in the boundary loops --\n";
  let rows =
    Scalana.Experiment.speedup ~cost:entry.cost ~make:entry.make ~baseline_np:4
      ~scales ()
  in
  Printf.printf "%6s %12s %12s %14s\n" "np" "base" "optimized" "improvement";
  List.iter
    (fun (r : Scalana.Experiment.speedup_row) ->
      Printf.printf "%6d %11.2fx %11.2fx %13.1f%%\n" r.sp_nprocs r.base_speedup
        r.opt_speedup r.improvement_pct)
    rows;
  print_newline ();
  print_endline
    "paper: root cause LOOP at bval3d.F:155 behind the allreduce at";
  print_endline
    "nudt.F:361 via waitalls at nudt.F:227/269/328; fix improves 128-proc";
  print_endline "runs by 9.55% (Gorgon) and 2,048-proc runs by 9.96% (Tianhe-2)"
