lib/apps/adi.ml: Builder Common Expr Scalana_mlang
