lib/apps/adi.mli: Scalana_mlang
