lib/apps/common.ml: Builder Expr Scalana_mlang Stdlib
