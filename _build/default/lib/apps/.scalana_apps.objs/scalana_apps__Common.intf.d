lib/apps/common.mli: Ast Builder Expr Scalana_mlang
