lib/apps/nekbone_like.ml: Builder Common Expr Scalana_mlang
