lib/apps/nekbone_like.mli: Scalana_mlang
