lib/apps/npb_bt.ml: Adi
