lib/apps/npb_bt.mli: Scalana_mlang
