lib/apps/npb_cg.ml: Builder Common Expr Scalana_mlang
