lib/apps/npb_cg.mli: Scalana_mlang
