lib/apps/npb_ep.ml: Builder Common Expr Scalana_mlang
