lib/apps/npb_ep.mli: Scalana_mlang
