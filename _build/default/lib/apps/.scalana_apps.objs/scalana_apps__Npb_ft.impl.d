lib/apps/npb_ft.ml: Builder Common Expr Scalana_mlang
