lib/apps/npb_ft.mli: Scalana_mlang
