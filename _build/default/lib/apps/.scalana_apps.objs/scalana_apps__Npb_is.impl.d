lib/apps/npb_is.ml: Builder Common Expr Scalana_mlang
