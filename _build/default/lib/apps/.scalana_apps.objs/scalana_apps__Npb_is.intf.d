lib/apps/npb_is.mli: Scalana_mlang
