lib/apps/npb_lu.ml: Builder Common Expr Scalana_mlang
