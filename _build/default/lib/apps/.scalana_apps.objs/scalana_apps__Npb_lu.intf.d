lib/apps/npb_lu.mli: Scalana_mlang
