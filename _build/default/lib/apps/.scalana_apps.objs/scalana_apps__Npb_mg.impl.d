lib/apps/npb_mg.ml: Builder Common Expr Scalana_mlang
