lib/apps/npb_mg.mli: Scalana_mlang
