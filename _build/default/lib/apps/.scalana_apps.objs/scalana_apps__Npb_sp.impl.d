lib/apps/npb_sp.ml: Adi
