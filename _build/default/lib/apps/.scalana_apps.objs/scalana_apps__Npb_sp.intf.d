lib/apps/npb_sp.mli: Scalana_mlang
