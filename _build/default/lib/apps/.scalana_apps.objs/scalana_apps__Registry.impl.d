lib/apps/registry.ml: Ast Costmodel List Nekbone_like Npb_bt Npb_cg Npb_ep Npb_ft Npb_is Npb_lu Npb_mg Npb_sp Printf Scalana_mlang Scalana_runtime Sst_like String Zeusmp_like
