lib/apps/registry.mli: Ast Costmodel Scalana_mlang Scalana_runtime
