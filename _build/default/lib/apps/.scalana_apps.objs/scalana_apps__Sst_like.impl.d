lib/apps/sst_like.ml: Builder Common Expr Scalana_mlang
