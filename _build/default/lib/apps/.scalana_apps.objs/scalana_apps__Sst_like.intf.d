lib/apps/sst_like.mli: Scalana_mlang
