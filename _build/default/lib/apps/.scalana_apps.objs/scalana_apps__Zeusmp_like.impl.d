lib/apps/zeusmp_like.ml: Builder Common Expr Scalana_mlang
