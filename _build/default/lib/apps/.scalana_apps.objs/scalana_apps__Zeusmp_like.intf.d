lib/apps/zeusmp_like.mli: Scalana_mlang
