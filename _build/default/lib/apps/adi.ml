(* Shared generator for the BT/SP ADI solvers: a sqrt(np) x sqrt(np)
   logical process grid with per-direction line solves and face exchanges.
   Ranks outside the square grid (when np is not a perfect square) skip
   the grid phases but join the collectives, mirroring how the real codes
   restrict the process count.  BT and SP differ in their solver weight
   and message sizes. *)

open Scalana_mlang
open Expr.Infix

type flavor = {
  name : string;
  file : string;
  solve_flops : int;  (* per-point flop weight of one line solve *)
  solve_mem : int;
  face_bytes : int;
  niter : int;
}

let bt =
  {
    name = "npb-bt";
    file = "npb_bt.mmp";
    solve_flops = 38;
    solve_mem = 16;
    face_bytes = 800_000;
    niter = 20;
  }

let sp =
  {
    name = "npb-sp";
    file = "npb_sp.mmp";
    solve_flops = 18;
    solve_mem = 11;
    face_bytes = 1_400_000;
    niter = 25;
  }

(* One direction of the ADI sweep: forward elimination with a face
   exchange, then back substitution with the reverse exchange. *)
let solve_dir b fl ~dir ~fwd ~bwd =
  let body () =
    [
      Builder.comp b
        ~label:(dir ^ "_forward")
        ~locality:0.88
        ~flops:(i fl.solve_flops * p "n3" / np / i 2)
        ~mem:(i fl.solve_mem * p "n3" / np / i 2)
        ();
      Builder.sendrecv b ~dest:fwd
        ~sbytes:(i fl.face_bytes / isqrt np)
        ~src:bwd
        ~rbytes:(i fl.face_bytes / isqrt np)
        ();
      Builder.comp b
        ~label:(dir ^ "_backsub")
        ~locality:0.88
        ~flops:(i fl.solve_flops * p "n3" / np / i 2)
        ~mem:(i fl.solve_mem * p "n3" / np / i 2)
        ();
      Builder.sendrecv b ~dest:bwd ~stag:(i 1)
        ~sbytes:(i fl.face_bytes / isqrt np)
        ~src:fwd ~rtag:(i 1)
        ~rbytes:(i fl.face_bytes / isqrt np)
        ();
    ]
  in
  body

let make fl ?(optimized = false) () =
  ignore optimized;
  let b = Builder.create ~file:fl.file ~name:fl.name () in
  Builder.param b "n3" 120_000_000;
  Builder.param b "niter" fl.niter;
  let q = isqrt np in
  let row = v "row" and col = v "col" in
  let x_fwd = (row * q) + ((col + i 1) % q)
  and x_bwd = (row * q) + ((col - i 1 + q) % q)
  and y_fwd = (((row + i 1) % q) * q) + col
  and y_bwd = (((row - i 1 + q) % q) * q) + col in
  Builder.func b "adi_step" (fun () ->
      [
        Builder.let_ b "row" (rank / q);
        Builder.let_ b "col" (rank % q);
        Builder.comp b ~label:"compute_rhs" ~locality:0.85
          ~flops:(i 12 * p "n3" / np)
          ~mem:(i 6 * p "n3" / np)
          ();
        Builder.loop b ~label:"x_solve" ~var:"xs" ~count:(i 1) (fun () ->
            solve_dir b fl ~dir:"x" ~fwd:x_fwd ~bwd:x_bwd ());
        Builder.loop b ~label:"y_solve" ~var:"ys" ~count:(i 1) (fun () ->
            solve_dir b fl ~dir:"y" ~fwd:y_fwd ~bwd:y_bwd ());
        Builder.comp b ~label:"z_solve" ~locality:0.86
          ~flops:(i fl.solve_flops * p "n3" / np)
          ~mem:(i fl.solve_mem * p "n3" / np)
          ();
        Builder.comp b ~label:"add" ~locality:0.92
          ~flops:(i 3 * p "n3" / np)
          ~mem:(i 4 * p "n3" / np)
          ();
      ]);
  Builder.func b "main" (fun () ->
      Common.setup_phase b ~name:"setup" ~work:(p "n3" / np / i 64) ()
      @ [
        Builder.comp b ~label:"initialize" ~locality:0.85
          ~flops:(p "n3" / np / i 4)
          ~mem:(p "n3" / np / i 2)
          ();
        Builder.bcast b ~bytes:(i 64) ();
        Builder.loop b ~label:"adi_iter" ~var:"it" ~count:(p "niter") (fun () ->
            [
              Builder.branch b
                ~cond:(rank < q * q)
                (fun () -> [ Builder.call b "adi_step" ]);
              Builder.allreduce b ~bytes:(i 40);
            ]);
        Builder.allreduce b ~bytes:(i 40);
      ]);
  Builder.program b
