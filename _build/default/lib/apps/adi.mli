(** Shared generator for the BT/SP ADI solvers on a sqrt(np) x sqrt(np)
    process grid; ranks outside the grid join only the collectives. *)

type flavor = {
  name : string;
  file : string;
  solve_flops : int;
  solve_mem : int;
  face_bytes : int;
  niter : int;
}

val bt : flavor
val sp : flavor
val make : flavor -> ?optimized:bool -> unit -> Scalana_mlang.Ast.program
