(* Shared communication skeletons for the MiniMPI workloads. *)

open Scalana_mlang
open Expr.Infix

(* Bidirectional halo exchange with the ring neighbours (periodic). *)
let ring_halo b ~bytes () =
  [
    Builder.sendrecv b
      ~dest:((rank + i 1) % np)
      ~sbytes:bytes
      ~src:((rank - i 1 + np) % np)
      ~rbytes:bytes ();
    Builder.sendrecv b
      ~dest:((rank - i 1 + np) % np)
      ~stag:(i 1) ~sbytes:bytes
      ~src:((rank + i 1) % np)
      ~rtag:(i 1) ~rbytes:bytes ();
  ]

(* Non-blocking halo with explicit requests and a trailing waitall — the
   Zeus-MP/Nekbone communication shape. [tag] disambiguates phases. *)
let nonblocking_halo b ?(tag = 0) ~bytes () =
  [
    Builder.irecv b
      ~src:((rank - i 1 + np) % np)
      ~tag:(i tag) ~bytes ~req:"hr0" ();
    Builder.irecv b
      ~src:((rank + i 1) % np)
      ~tag:(i Stdlib.(tag + 1))
      ~bytes ~req:"hr1" ();
    Builder.isend b
      ~dest:((rank + i 1) % np)
      ~tag:(i tag) ~bytes ~req:"hs0" ();
    Builder.isend b
      ~dest:((rank - i 1 + np) % np)
      ~tag:(i Stdlib.(tag + 1))
      ~bytes ~req:"hs1" ();
    Builder.waitall b ~reqs:[ "hr0"; "hr1"; "hs0"; "hs1" ];
  ]

(* Recursive-doubling exchange across the hypercube: log2(np) rounds of
   sendrecv with partner rank xor 2^k (the NPB-CG transpose shape). *)
let hypercube_exchange b ?label ~bytes () =
  Builder.loop b ?label ~var:"k" ~count:(log2 np) (fun () ->
      [
        Builder.sendrecv b
          ~dest:(rank lxor (i 1 lsl v "k"))
          ~sbytes:bytes
          ~src:(rank lxor (i 1 lsl v "k"))
          ~rbytes:bytes ();
      ])

(* A realistic allocation/initialization/diagnostics phase, as real codes
   carry before their solver loops: several adjacent small computation
   statements (contraction merges them), MPI-free branches (contraction
   drops them) and small nested loops (kept up to MaxLoopDepth).  [work]
   should be a cheap per-rank expression — the phase adds structure, not
   runtime.  This is where the paper's "68% of vertices removed" comes
   from: most static structure carries no measurable work. *)
let setup_phase b ~name ~work () =
  let comp label denom =
    Builder.comp b ~label:(name ^ "_" ^ label) ~locality:0.95
      ~flops:(work / i denom) ~mem:(work / i denom) ()
  in
  [
    comp "alloc" 64;
    comp "zero" 32;
    comp "coeffs" 64;
    comp "tables" 64;
    Builder.branch b
      ~cond:(rank = i 0)
      ~else_:(fun () -> [ comp "recv_params" 256 ])
      (fun () ->
        [
          comp "read_deck" 128;
          Builder.loop b ~label:(name ^ "_echo") ~var:"d" ~count:(i 3)
            (fun () -> [ comp "echo" 512 ]);
        ]);
    Builder.loop b ~label:(name ^ "_grid") ~var:"gx" ~count:(i 2) (fun () ->
        [
          Builder.loop b ~label:(name ^ "_grid_y") ~var:"gy" ~count:(i 2)
            (fun () -> [ comp "metric" 64; comp "jacobian" 64 ]);
          comp "stitch" 128;
        ]);
    Builder.branch b
      ~cond:(rank % i 2 = i 0)
      (fun () -> [ comp "pad_even" 256 ]);
    comp "rng_streams" 128;
    comp "halo_buffers" 128;
    comp "mpi_datatypes" 256;
    comp "timer_init" 512;
    comp "banner" 512;
    comp "checksum" 128;
    comp "warmup" 64;
    Builder.branch b
      ~cond:(np > i 1)
      (fun () -> [ comp "topology" 256; comp "neighbor_map" 256 ]);
    comp "barrier_skew" 512;
  ]
