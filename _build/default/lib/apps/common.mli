(** Shared communication skeletons and program phases for the MiniMPI
    workloads. *)

open Scalana_mlang

(** Bidirectional sendrecv with the ring neighbours (periodic). *)
val ring_halo : Builder.t -> bytes:Expr.t -> unit -> Ast.stmt list

(** Non-blocking halo with explicit requests and a trailing waitall (the
    Zeus-MP/Nekbone shape). [tag] disambiguates phases. *)
val nonblocking_halo :
  Builder.t -> ?tag:int -> bytes:Expr.t -> unit -> Ast.stmt list

(** log2(np) rounds of sendrecv with partner [rank xor 2^k] (the NPB-CG
    transpose shape). *)
val hypercube_exchange :
  Builder.t -> ?label:string -> bytes:Expr.t -> unit -> Ast.stmt

(** A realistic allocation/initialization/diagnostics phase: adjacent
    small computations, MPI-free branches and shallow nested loops — the
    structure graph contraction removes in real codes. *)
val setup_phase :
  Builder.t -> name:string -> work:Expr.t -> unit -> Ast.stmt list
