(* Nekbone analogue (Section VI-D3).

   Conjugate-gradient iterations of a spectral-element Helmholtz solve:
   the matrix-free operator is a dgemm loop over local elements
   (blas.f:8941 analogue), followed by the gather-scatter neighbour
   exchange whose MPI_Waitall (comm.h:243 analogue) absorbs the
   imbalance, and dot-product allreduces.

   The planted defect follows the paper: per-core memory speed differs
   (run this program with a heterogeneous {!Scalana_runtime.Costmodel}),
   so ranks retire the same load/store count in different times —
   TOT_LST_INS equal, TOT_CYC spread (Fig. 16).  [optimized] is the
   paper's fix: an efficient BLAS that cuts loads ~90%, which both speeds
   the loop up and hides the core-speed variance. *)

open Scalana_mlang
open Expr.Infix

let make ?(optimized = false) () =
  let b = Builder.create ~file:"nekbone.mmp" ~name:"nekbone" () in
  Builder.param b "nelt" 16_384;  (* spectral elements, total *)
  Builder.param b "ework" 120_000;  (* flops per element solve *)
  Builder.param b "niter" 50;
  Builder.param b "gsbytes" 80_000;
  let mem_per_elt =
    if optimized then p "ework" / i 8 (* blocked BLAS: ~90% fewer loads *)
    else p "ework" + (p "ework" / i 4)
  in
  let locality = if optimized then 0.97 else 0.85 in
  Builder.func b "ax" (fun () ->
      [
        Builder.loop b ~label:"dgemm_loop" ~var:"e"
          ~count:(max_ (i 1) (p "nelt" / np))
          (fun () ->
            [
              Builder.comp b ~label:"dgemm" ~locality
                ~flops:(i 2 * p "ework")
                ~mem:mem_per_elt ();
            ]);
        Builder.comp b ~label:"local_grad" ~locality:0.975
          ~flops:(p "nelt" / np * p "ework" / i 2)
          ~mem:(p "nelt" / np * p "ework" / i 4)
          ();
      ]);
  Builder.func b "gs_op" (fun () ->
      (* gather-scatter with the ring neighbours; comm_wait@comm.h:243 *)
      Common.nonblocking_halo b ~tag:5 ~bytes:(p "gsbytes") ()
      @ [
          Builder.comp b ~label:"gs_local" ~locality:0.975
            ~flops:(p "gsbytes" / i 4)
            ~mem:(p "gsbytes" / i 4)
            ();
        ]);
  Builder.func b "main" (fun () ->
      Common.setup_phase b ~name:"setup" ~work:(p "nelt" * i 100 / np) ()
      @ [
        Builder.comp b ~label:"setup_mesh" ~locality:0.97
          ~flops:(p "nelt" / np * i 40_000)
          ~mem:(p "nelt" / np * i 20_000)
          ();
        Builder.bcast b ~bytes:(i 96) ();
        Builder.loop b ~label:"cg_iter" ~var:"it" ~count:(p "niter") (fun () ->
            [
              Builder.call b "ax";
              Builder.call b "gs_op";
              Builder.allreduce b ~bytes:(i 8);
              Builder.comp b ~label:"axpy" ~locality:0.975
                ~flops:(p "nelt" / np * i 20_000)
                ~mem:(p "nelt" / np * i 30_000)
                ();
              Builder.allreduce b ~bytes:(i 8);
            ]);
        Builder.allreduce b ~bytes:(i 8);
      ]);
  Builder.program b

let root_cause_label = "dgemm_loop"
let symptom_label = "MPI_Waitall"
