(** Nekbone analogue (case study VI-D.3): a dgemm loop whose load/store
    count is equal across ranks while cycles diverge on heterogeneous
    cores (run with {!Scalana_runtime.Costmodel.heterogeneous});
    [optimized] is the paper's efficient-BLAS fix. *)

val make : ?optimized:bool -> unit -> Scalana_mlang.Ast.program
val root_cause_label : string
val symptom_label : string
