(* NPB BT analogue (block-tridiagonal ADI); see Adi. *)
let make = Adi.make Adi.bt
