(* NPB EP analogue: embarrassingly parallel random-number kernel; almost
   pure computation, a handful of small reductions at the end. *)

open Scalana_mlang
open Expr.Infix

let make ?(optimized = false) () =
  ignore optimized;
  let b = Builder.create ~file:"npb_ep.mmp" ~name:"npb-ep" () in
  Builder.param b "m" 36_000_000_000;
  Builder.param b "blocks" 16;
  Builder.func b "main" (fun () ->
      Common.setup_phase b ~name:"setup" ~work:(p "m" / np / i 4096) ()
      @ [
        Builder.bcast b ~bytes:(i 32) ();
        Builder.loop b ~label:"gauss_blocks" ~var:"blk" ~count:(p "blocks")
          (fun () ->
            [
              Builder.comp b ~label:"vranlc" ~locality:0.99
                ~flops:(i 2 * p "m" / (np * p "blocks"))
                ~mem:(p "m" / (np * p "blocks"))
                ();
              Builder.comp b ~label:"pairs_test" ~locality:0.97
                ~flops:(i 3 * p "m" / (np * p "blocks"))
                ~mem:(p "m" / (np * p "blocks"))
                ();
            ]);
        Builder.allreduce b ~bytes:(i 8);
        Builder.allreduce b ~bytes:(i 80);
      ]);
  Builder.program b
