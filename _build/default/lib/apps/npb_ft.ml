(* NPB FT analogue: 3-D FFT with an all-to-all transpose each iteration. *)

open Scalana_mlang
open Expr.Infix

let make ?(optimized = false) () =
  ignore optimized;
  let b = Builder.create ~file:"npb_ft.mmp" ~name:"npb-ft" () in
  Builder.param b "ntotal" 130_000_000;  (* grid points *)
  Builder.param b "niter" 20;
  Builder.func b "fft_xy" (fun () ->
      [
        Builder.comp b ~label:"fft_x" ~locality:0.9
          ~flops:(i 20 * p "ntotal" / np)
          ~mem:(i 4 * p "ntotal" / np)
          ();
        Builder.comp b ~label:"fft_y" ~locality:0.88
          ~flops:(i 20 * p "ntotal" / np)
          ~mem:(i 4 * p "ntotal" / np)
          ();
      ]);
  Builder.func b "transpose" (fun () ->
      [
        Builder.comp b ~label:"pack" ~locality:0.7
          ~flops:(p "ntotal" / np)
          ~mem:(i 2 * p "ntotal" / np)
          ();
        Builder.alltoall b ~bytes:(i 16 * p "ntotal" / (np * np));
        Builder.comp b ~label:"unpack" ~locality:0.7
          ~flops:(p "ntotal" / np)
          ~mem:(i 2 * p "ntotal" / np)
          ();
      ]);
  Builder.func b "main" (fun () ->
      Common.setup_phase b ~name:"setup" ~work:(p "ntotal" / np / i 64) ()
      @ [
        Builder.comp b ~label:"init_ue" ~locality:0.85
          ~flops:(i 4 * p "ntotal" / np)
          ~mem:(i 2 * p "ntotal" / np)
          ();
        Builder.bcast b ~bytes:(i 48) ();
        Builder.loop b ~label:"ft_iter" ~var:"it" ~count:(p "niter") (fun () ->
            [
              Builder.call b "fft_xy";
              Builder.call b "transpose";
              Builder.comp b ~label:"fft_z" ~locality:0.88
                ~flops:(i 20 * p "ntotal" / np)
                ~mem:(i 4 * p "ntotal" / np)
                ();
              Builder.comp b ~label:"checksum" ~locality:0.95
                ~flops:(p "ntotal" / np / i 16)
                ~mem:(p "ntotal" / np / i 16)
                ();
              Builder.allreduce b ~bytes:(i 16);
            ]);
      ]);
  Builder.program b
