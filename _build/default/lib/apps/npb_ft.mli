(** NPB FT analogue; see the implementation header for the communication
    skeleton and any planted behaviour. *)

val make : ?optimized:bool -> unit -> Scalana_mlang.Ast.program
