(* NPB IS analogue: integer bucket sort — cache-hostile key counting, a
   bucket-size allreduce and an all-to-all key redistribution. *)

open Scalana_mlang
open Expr.Infix

let make ?(optimized = false) () =
  ignore optimized;
  let b = Builder.create ~file:"npb_is.mmp" ~name:"npb-is" () in
  Builder.param b "nkeys" 540_000_000;
  Builder.param b "nbuckets" 1024;
  Builder.param b "niter" 10;
  Builder.func b "rank_keys" (fun () ->
      [
        Builder.comp b ~label:"count_buckets" ~locality:0.55
          ~flops:(i 2 * p "nkeys" / np)
          ~mem:(i 3 * p "nkeys" / np)
          ();
        Builder.allreduce b ~bytes:(i 4 * p "nbuckets");
        Builder.alltoall b ~bytes:(i 4 * p "nkeys" / (np * np));
        Builder.comp b ~label:"local_rank" ~locality:0.6
          ~flops:(i 2 * p "nkeys" / np)
          ~mem:(i 2 * p "nkeys" / np)
          ();
      ]);
  Builder.func b "main" (fun () ->
      Common.setup_phase b ~name:"setup" ~work:(p "nkeys" / np / i 64) ()
      @ [
        Builder.comp b ~label:"create_seq" ~locality:0.9
          ~flops:(i 3 * p "nkeys" / np)
          ~mem:(p "nkeys" / np)
          ();
        Builder.loop b ~label:"is_iter" ~var:"it" ~count:(p "niter") (fun () ->
            [ Builder.call b "rank_keys" ]);
        Builder.comp b ~label:"full_verify" ~locality:0.7
          ~flops:(p "nkeys" / np)
          ~mem:(i 2 * p "nkeys" / np)
          ();
        Builder.allreduce b ~bytes:(i 8);
      ]);
  Builder.program b
