(* NPB LU analogue: SSOR with wavefront pipelining.

   Each sweep is chunked into [nk] wavefront slabs: a rank receives the
   slab boundary from its predecessor, relaxes its block, and forwards to
   the successor — so rank r works on slab k while rank r+1 still works
   on slab k-1, giving the classic pipeline fill/drain behaviour (and its
   scaling limit as np approaches nk). *)

open Scalana_mlang
open Expr.Infix

let make ?(optimized = false) () =
  ignore optimized;
  let b = Builder.create ~file:"npb_lu.mmp" ~name:"npb-lu" () in
  Builder.param b "n3" 120_000_000;
  Builder.param b "pencil" 30_000;  (* per-slab boundary bytes *)
  Builder.param b "nk" 48;  (* wavefront slabs per sweep *)
  Builder.param b "niter" 20;
  let sweep ~name ~label ~from_prev ~tagbase =
    Builder.func b name (fun () ->
        [
          Builder.loop b ~label:(name ^ "_wavefront") ~var:"k" ~count:(p "nk")
            (fun () ->
              [
                Builder.branch b
                  ~cond:(if from_prev then rank > i 0 else rank < np - i 1)
                  (fun () ->
                    [
                      Builder.recv b
                        ~src:(if from_prev then rank - i 1 else rank + i 1)
                        ~tag:(i tagbase + v "k")
                        ~bytes:(p "pencil") ();
                    ]);
                Builder.comp b ~label ~locality:0.87
                  ~flops:(i 25 * p "n3" / np / (i 2 * p "nk"))
                  ~mem:(i 12 * p "n3" / np / (i 2 * p "nk"))
                  ();
                Builder.branch b
                  ~cond:(if from_prev then rank < np - i 1 else rank > i 0)
                  (fun () ->
                    [
                      Builder.send b
                        ~dest:(if from_prev then rank + i 1 else rank - i 1)
                        ~tag:(i tagbase + v "k")
                        ~bytes:(p "pencil") ();
                    ]);
              ]);
        ])
  in
  sweep ~name:"lower_sweep" ~label:"jacld_blts" ~from_prev:true ~tagbase:100;
  sweep ~name:"upper_sweep" ~label:"jacu_buts" ~from_prev:false ~tagbase:300;
  Builder.func b "main" (fun () ->
      Common.setup_phase b ~name:"setup" ~work:(p "n3" / np / i 64) ()
      @ [
        Builder.comp b ~label:"setbv" ~locality:0.85
          ~flops:(p "n3" / np / i 8)
          ~mem:(p "n3" / np / i 4)
          ();
        Builder.bcast b ~bytes:(i 56) ();
        Builder.loop b ~label:"ssor_iter" ~var:"it" ~count:(p "niter") (fun () ->
            [
              Builder.call b "lower_sweep";
              Builder.call b "upper_sweep";
              Builder.comp b ~label:"rhs_update" ~locality:0.84
                ~flops:(i 8 * p "n3" / np)
                ~mem:(i 5 * p "n3" / np)
                ();
              Builder.allreduce b ~bytes:(i 40);
            ]);
        Builder.allreduce b ~bytes:(i 40);
      ]);
  Builder.program b
