(* NPB MG analogue: multigrid V-cycles — per-level smoothing whose work
   shrinks 8x per level while the halo exchange shrinks only 4x, the
   classic surface-to-volume communication shape. *)

open Scalana_mlang
open Expr.Infix

let make ?(optimized = false) () =
  ignore optimized;
  let b = Builder.create ~file:"npb_mg.mmp" ~name:"npb-mg" () in
  Builder.param b "n3" 360_000_000;  (* fine-grid points *)
  Builder.param b "face" 4_000_000;  (* fine-grid face bytes *)
  Builder.param b "nlevels" 5;
  Builder.param b "niter" 16;
  Builder.func b "smooth" ~params:[ "lvl" ] (fun () ->
      [
        Builder.comp b ~label:"psinv" ~locality:0.82
          ~flops:((i 15 * p "n3" / np) asr (i 3 * v "lvl"))
          ~mem:((i 8 * p "n3" / np) asr (i 3 * v "lvl"))
          ();
      ]
      @ Common.ring_halo b ~bytes:(max_ (i 1024) ((p "face" / np) asr (i 2 * v "lvl"))) ());
  Builder.func b "residual" ~params:[ "lvl" ] (fun () ->
      [
        Builder.comp b ~label:"resid" ~locality:0.8
          ~flops:((i 13 * p "n3" / np) asr (i 3 * v "lvl"))
          ~mem:((i 7 * p "n3" / np) asr (i 3 * v "lvl"))
          ();
      ]
      @ Common.ring_halo b ~bytes:(max_ (i 1024) ((p "face" / np) asr (i 2 * v "lvl"))) ());
  Builder.func b "vcycle" (fun () ->
      [
        Builder.loop b ~label:"down_sweep" ~var:"lvl" ~count:(p "nlevels")
          (fun () ->
            [
              Builder.call b "residual" ~args:[ ("lvl", v "lvl") ];
              Builder.comp b ~label:"rprj3" ~locality:0.78
                ~flops:((i 4 * p "n3" / np) asr (i 3 * v "lvl"))
                ~mem:((i 3 * p "n3" / np) asr (i 3 * v "lvl"))
                ();
            ]);
        Builder.loop b ~label:"up_sweep" ~var:"ulvl" ~count:(p "nlevels")
          (fun () ->
            [
              Builder.comp b ~label:"interp" ~locality:0.8
                ~flops:
                  ((i 5 * p "n3" / np) asr (i 3 * (p "nlevels" - i 1 - v "ulvl")))
                ~mem:
                  ((i 3 * p "n3" / np) asr (i 3 * (p "nlevels" - i 1 - v "ulvl")))
                ();
              Builder.call b "smooth"
                ~args:[ ("lvl", p "nlevels" - i 1 - v "ulvl") ];
            ]);
      ]);
  Builder.func b "main" (fun () ->
      Common.setup_phase b ~name:"setup" ~work:(p "n3" / np / i 64) ()
      @ [
        Builder.comp b ~label:"zero_init" ~locality:0.9
          ~flops:(p "n3" / np / i 4)
          ~mem:(p "n3" / np / i 2)
          ();
        Builder.bcast b ~bytes:(i 40) ();
        Builder.loop b ~label:"mg_iter" ~var:"it" ~count:(p "niter") (fun () ->
            [
              Builder.call b "vcycle";
              Builder.allreduce b ~bytes:(i 8);
            ]);
        Builder.allreduce b ~bytes:(i 8);
      ]);
  Builder.program b
