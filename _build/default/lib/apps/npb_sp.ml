(* NPB SP analogue (scalar-pentadiagonal ADI); see Adi. *)
let make = Adi.make Adi.sp
