(** Registry of the evaluated programs (the paper's Table II roster). *)

open Scalana_mlang
open Scalana_runtime

type entry = {
  name : string;
  description : string;
  make : ?optimized:bool -> unit -> Ast.program;
  cost : Costmodel.t;  (** recommended machine model *)
  square_scales : bool;  (** BT/SP-style sqrt(np) process grids *)
  has_optimized : bool;
}

val all : entry list
val names : string list

(** Raises [Invalid_argument] for unknown names. *)
val find : string -> entry

(** Job scales within [min_np, max_np]: powers of two, or powers of four
    for square-grid programs. *)
val scales : entry -> min_np:int -> max_np:int -> int list
