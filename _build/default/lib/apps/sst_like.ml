(* SST analogue (Section VI-D2).

   A conservative parallel discrete-event simulation: each step every
   rank drains its event queue, then synchronizes in
   RankSyncSerialSkip::exchange (point-to-point waitall followed by an
   allreduce).  The planted defect reproduces the paper's diagnosis: the
   handleEvent loop (mirandaCPU.cc:247 analogue) scans a pendingRequests
   *array* whose length grows with the number of peers, so per-event cost
   grows ~linearly with np (killing speedup) and differs across ranks
   (total instruction counts spread ~16x, Fig. 15).

   [optimized] is the paper's fix — an indexed map instead of the array
   scan: per-event cost drops to ~log(np) and is balanced across ranks. *)

open Scalana_mlang
open Expr.Infix

let make ?(optimized = false) () =
  let b = Builder.create ~file:"sst.mmp" ~name:"sst" () in
  Builder.param b "events" 6_000_000;  (* simulated events per step, total *)
  Builder.param b "scan" 12;  (* work per pending-request touch *)
  Builder.param b "nsteps" 24;
  Builder.param b "linkbytes" 60_000;
  (* pendingRequests length seen by one event: grows with peers for the
     array version, log for the map version; the array version also
     varies by rank (different components map to different ranks) *)
  let pending_cost =
    if optimized then p "scan" * (i 2 * log2 np + i 2)
    else p "scan" * min_ np (i 64) * (i 1 + (rank * i 37) % i 16) / i 8
  in
  Builder.func b "handle_event" (fun () ->
      [
        Builder.loop b ~label:"handleEvent_loop" ~var:"e" ~count:(i 40)
          (fun () ->
            [
              (* one chunk of events; cost folds the pendingRequests scan *)
              Builder.comp b ~label:"satisfyDependency" ~locality:0.72
                ~flops:(p "events" / np / i 40 * i 2)
                ~mem:(p "events" / np / i 40 * pending_cost / i 4)
                ();
            ]);
        (* serial global event-ordering bookkeeping: does not shrink
           with the process count (the "most events need to be executed
           sequentially" property the paper observes) *)
        Builder.comp b ~label:"clock_advance" ~locality:0.88
          ~flops:(i 2 * p "events")
          ~mem:(i 7 * p "events")
          ();
      ]);
  Builder.func b "exchange" (fun () ->
      (* rankSyncSerialSkip.cc:217 analogue *)
      Common.nonblocking_halo b ~tag:10 ~bytes:(p "linkbytes") ()
      @ [
          Builder.comp b ~label:"deserialize" ~locality:0.8
            ~flops:(p "linkbytes" / i 4)
            ~mem:(p "linkbytes" / i 8)
            ();
          (* rankSyncSerialSkip.cc:235 analogue *)
          Builder.allreduce b ~bytes:(i 8);
        ]);
  Builder.func b "main" (fun () ->
      Common.setup_phase b ~name:"setup" ~work:(p "events" / np / i 16) ()
      @ [
        Builder.comp b ~label:"build_graph" ~locality:0.8
          ~flops:(p "events" / np)
          ~mem:(p "events" / np / i 2)
          ();
        Builder.bcast b ~bytes:(i 128) ();
        Builder.loop b ~label:"sim_loop" ~var:"step" ~count:(p "nsteps")
          (fun () ->
            [ Builder.call b "handle_event"; Builder.call b "exchange" ]);
        Builder.allreduce b ~bytes:(i 16);
      ]);
  Builder.program b

let root_cause_label = "handleEvent_loop"
let symptom_label = "MPI_Allreduce"
