(** SST analogue (case study VI-D.2): the handleEvent loop scans a
    pendingRequests array that grows with the peer count; [optimized] is
    the paper's array -> indexed-map fix. *)

val make : ?optimized:bool -> unit -> Scalana_mlang.Ast.program
val root_cause_label : string
val symptom_label : string
