(* Zeus-MP analogue (Section VI-D1).

   A 3-D MHD timestep loop: source-step force/Lorentz updates, the
   cache-hostile hsmoc transport loops, and the nudt timestep reduction
   fed by three boundary-value routines with non-blocking halo exchanges.
   The planted scaling loss mirrors the paper's diagnosis: the
   boundary-value loops (bval*_loop, the analogue of bval3d.F:155) run
   only on a quarter of the ranks and their work does not shrink with the
   process count, so the delay propagates through the nudt waitalls
   (nudt.F:227/269/328) into the MPI_Allreduce (nudt.F:361).

   [optimized] applies the paper's two fixes: OpenMP multi-threading of
   the boundary loops (8 threads) and loop tiling / scalar promotion in
   hsmoc (fewer loads, better locality). *)

open Scalana_mlang
open Expr.Infix

let busy_cond = rank % i 4 = i 0

let make ?(optimized = false) () =
  let b = Builder.create ~file:"zeusmp.mmp" ~name:"zeus-mp" () in
  Builder.param b "n3" 38_000_000;  (* volume grid work per field *)
  Builder.param b "jn" 64;  (* boundary loop trips *)
  Builder.param b "bwork" 13_000;  (* per-trip boundary work *)
  Builder.param b "nsteps" 20;
  Builder.param b "halo" 300_000;  (* halo bytes at np=1 *)
  (* the optimized variant multi-threads the boundary loops (8 threads) *)
  let threaded e = if optimized then Expr.Bin (Expr.Div, e, Expr.Int 8) else e in
  let hsmoc_locality = if optimized then 0.64 else 0.62 in
  let hsmoc_mem_scale = 3 in
  (* One boundary-value routine per velocity component, as in bval3d.F *)
  let bval name =
    Builder.func b name (fun () ->
        [
          Builder.branch b ~cond:busy_cond (fun () ->
              [
                Builder.loop b
                  ~label:(name ^ "_loop")
                  ~var:"j" ~count:(p "jn")
                  (fun () ->
                    [
                      Builder.comp b
                        ~label:(name ^ "_update")
                        ~locality:0.75
                        ~flops:(threaded (p "bwork"))
                        ~mem:(threaded (i 2 * p "bwork"))
                        ();
                    ]);
              ]);
          Builder.comp b ~label:(name ^ "_edges") ~locality:0.9
            ~flops:(i 20_000) ~mem:(i 30_000) ();
        ])
  in
  bval "bvalv1";
  bval "bvalv2";
  bval "bvalv3";
  Builder.func b "nudt" (fun () ->
      [ Builder.call b "bvalv1" ]
      @ Common.nonblocking_halo b ~tag:20 ~bytes:(p "halo" / isqrt np) ()
      @ [
          Builder.comp b ~label:"courant_v1" ~locality:0.82
            ~flops:(i 2 * p "n3" / np / i 8)
            ~mem:(p "n3" / np / i 8)
            ();
          Builder.call b "bvalv2";
        ]
      @ Common.nonblocking_halo b ~tag:30 ~bytes:(p "halo" / isqrt np) ()
      @ [
          Builder.comp b ~label:"courant_v2" ~locality:0.82
            ~flops:(i 2 * p "n3" / np / i 8)
            ~mem:(p "n3" / np / i 8)
            ();
          Builder.call b "bvalv3";
        ]
      @ Common.nonblocking_halo b ~tag:40 ~bytes:(p "halo" / isqrt np) ()
      @ [
          Builder.comp b ~label:"courant_min" ~locality:0.9
            ~flops:(p "n3" / np / i 16)
            ~mem:(p "n3" / np / i 32)
            ();
          Builder.allreduce b ~bytes:(i 8);  (* the nudt.F:361 analogue *)
        ]);
  let hsmoc_loop name =
    Builder.loop b ~label:name ~var:"s" ~count:(i 4) (fun () ->
        [
          Builder.comp b ~label:(name ^ "_body") ~locality:hsmoc_locality
            ~flops:(i 2 * p "n3" / np / i 4)
            ~mem:(i hsmoc_mem_scale * p "n3" / np / i 4)
            ();
        ])
  in
  Builder.func b "hsmoc" (fun () ->
      [ hsmoc_loop "hsmoc_665" ]
      @ Common.nonblocking_halo b ~tag:50 ~bytes:(p "halo" / isqrt np) ()
      @ [ hsmoc_loop "hsmoc_841"; hsmoc_loop "hsmoc_1041" ]
      @ Common.nonblocking_halo b ~tag:60 ~bytes:(p "halo" / isqrt np) ());
  Builder.func b "forces" (fun () ->
      [
        Builder.comp b ~label:"gravity_pressure" ~locality:0.88
          ~flops:(i 5 * p "n3" / np)
          ~mem:(i 2 * p "n3" / np)
          ();
      ]
      @ Common.nonblocking_halo b ~tag:70 ~bytes:(p "halo" / isqrt np) ());
  Builder.func b "lorentz" (fun () ->
      [
        Builder.comp b ~label:"lorentz_update" ~locality:0.86
          ~flops:(i 4 * p "n3" / np)
          ~mem:(i 2 * p "n3" / np)
          ();
      ]);
  Builder.func b "main" (fun () ->
      Common.setup_phase b ~name:"ggen" ~work:(p "n3" / np / i 64) ()
      @ Common.setup_phase b ~name:"mstart" ~work:(p "n3" / np / i 128) ()
      @ [
        Builder.comp b ~label:"setup_grid" ~locality:0.9
          ~flops:(p "n3" / np / i 4)
          ~mem:(p "n3" / np / i 4)
          ();
        Builder.bcast b ~bytes:(i 256) ();
        Builder.loop b ~label:"timestep" ~var:"step" ~count:(p "nsteps")
          (fun () ->
            [
              Builder.call b "forces";
              Builder.call b "lorentz";
              Builder.call b "hsmoc";
              Builder.call b "nudt";
            ]);
        Builder.allreduce b ~bytes:(i 8);
      ]);
  Builder.program b

(* Locations the case study asserts against. *)
let root_cause_labels = [ "bvalv1_loop"; "bvalv2_loop"; "bvalv3_loop" ]
let symptom_label = "MPI_Allreduce"
