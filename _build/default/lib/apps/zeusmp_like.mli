(** Zeus-MP analogue (case study VI-D.1): boundary-value loops executed by
    a quarter of the ranks propagate through non-blocking halo waitalls
    into the timestep allreduce. [optimized] applies the paper's fixes. *)

val busy_cond : Scalana_mlang.Expr.t

val make : ?optimized:bool -> unit -> Scalana_mlang.Ast.program

(** Labels the case study asserts against. *)
val root_cause_labels : string list

val symptom_label : string
