lib/baselines/callprof.ml: Array Cct Float Instrument List Pmu Scalana_mlang Scalana_runtime
