lib/baselines/callprof.mli: Cct Instrument Scalana_mlang Scalana_runtime
