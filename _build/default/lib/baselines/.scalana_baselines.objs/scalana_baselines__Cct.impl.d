lib/baselines/cct.ml: Array Float Hashtbl List Loc Pmu Scalana_mlang Scalana_runtime String
