lib/baselines/cct.mli: Hashtbl Loc Pmu Scalana_mlang Scalana_runtime
