lib/baselines/replay.ml: Fmt Hashtbl List Loc Scalana_mlang Tracer
