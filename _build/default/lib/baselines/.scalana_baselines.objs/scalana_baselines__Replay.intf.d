lib/baselines/replay.mli: Fmt Loc Scalana_mlang Tracer
