lib/baselines/trace_io.ml: Fun List Loc Printf Scalana_mlang String Tracer
