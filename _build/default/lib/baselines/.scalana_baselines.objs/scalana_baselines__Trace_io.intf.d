lib/baselines/trace_io.mli: Tracer
