lib/baselines/tracer.ml: Ast Instrument List Loc Option Scalana_mlang Scalana_runtime
