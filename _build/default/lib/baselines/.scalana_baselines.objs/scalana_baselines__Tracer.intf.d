lib/baselines/tracer.mli: Instrument Loc Scalana_mlang Scalana_runtime
