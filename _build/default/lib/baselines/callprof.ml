(* Call-path profiling baseline (the HPCToolkit role).

   Timer sampling with full stack unwinding attributes time to calling
   contexts; the report ranks contexts by time and flags non-scaling or
   imbalanced ones.  It exposes bottleneck *points* (an MPI_Waitall, a
   hot loop) but performs no dependence analysis, so distinguishing the
   causal root among them is left to the human — the comparison axis the
   paper draws in Section VI-D. *)

open Scalana_runtime

type config = {
  freq : float;
  per_sample_cost : float;  (* includes full unwind, slightly above ScalAna *)
}

let default_config = { freq = 200.0; per_sample_cost = 400.0e-6 }

type t = {
  cfg : config;
  cct : Cct.t;
  next_tick : float array;
  mutable total_samples : int;
  mutable elapsed : float;
}

let create ?(config = default_config) ~nprocs () =
  {
    cfg = config;
    cct = Cct.create ~nprocs;
    next_tick = Array.make nprocs (1.0 /. config.freq);
    total_samples = 0;
    elapsed = 0.0;
  }

let ticks t ~rank ~start ~stop =
  let period = 1.0 /. t.cfg.freq in
  if t.next_tick.(rank) < start then t.next_tick.(rank) <- start;
  let n = ref 0 in
  while t.next_tick.(rank) < stop do
    incr n;
    t.next_tick.(rank) <- t.next_tick.(rank) +. period
  done;
  !n

let on_interval t (ctx : Instrument.ctx) ~stop activity =
  let n = ticks t ~rank:ctx.rank ~start:ctx.time ~stop in
  if n = 0 then 0.0
  else begin
    t.total_samples <- t.total_samples + n;
    let node =
      Cct.find_or_add t.cct ~rank:ctx.rank ~callpath:ctx.callpath ~loc:ctx.loc
    in
    let period = 1.0 /. t.cfg.freq in
    let est = float_of_int n *. period in
    node.Cct.time <- node.Cct.time +. est;
    node.samples <- node.samples + n;
    (match activity with
    | Instrument.Compute { pmu; _ } ->
        let duration = stop -. ctx.time in
        let frac = if duration > 0.0 then est /. duration else 1.0 in
        node.pmu <- Pmu.add node.pmu (Pmu.scale frac pmu)
    | Instrument.Mpi_span { wait_seconds; _ } ->
        node.is_mpi <- true;
        node.wait <- node.wait +. Float.min wait_seconds est);
    (* wait-span samples overlap blocked time; only compute samples
       perturb the run (see Profiler.on_interval) *)
    match activity with
    | Instrument.Compute _ -> float_of_int n *. t.cfg.per_sample_cost
    | Instrument.Mpi_span _ -> 0.0
  end

let tool t =
  {
    (Instrument.nil "callprof") with
    on_interval = (fun ctx ~stop act -> on_interval t ctx ~stop act);
    on_run_end = (fun ~nprocs:_ ~elapsed -> t.elapsed <- elapsed);
  }

let cct t = t.cct
let storage_bytes t = Cct.storage_bytes t.cct

type hotspot = {
  hs_loc : Scalana_mlang.Loc.t;
  hs_time : float;
  hs_is_mpi : bool;
  hs_imbalance : float;  (* max/min across ranks *)
}

(* Flat hotspot list: the tool's answer to "where does time go".  No
   dependence links — by design. *)
let hotspots ?(top = 10) t =
  let nprocs = Array.length (t.cct : Cct.t).per_rank in
  let merged = Cct.merge t.cct in
  let spots =
    List.map
      (fun (m : Cct.merged) ->
        {
          hs_loc = m.m_loc;
          hs_time = m.m_time;
          hs_is_mpi = m.m_is_mpi;
          hs_imbalance =
            (* ranks that never sampled the context count as zero time *)
            (if m.m_ranks < nprocs && m.m_max_time > 0.0 then infinity
             else if m.m_min_time > 0.0 then m.m_max_time /. m.m_min_time
             else if m.m_max_time > 0.0 then infinity
             else 1.0);
        })
      merged
    |> List.sort (fun a b -> compare b.hs_time a.hs_time)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take top spots
