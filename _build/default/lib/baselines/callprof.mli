(** Call-path profiling baseline (the HPCToolkit role): timer sampling
    with full unwinding into a CCT; reports bottleneck points (hot
    contexts, imbalance) without dependence analysis. *)

open Scalana_runtime

type config = { freq : float; per_sample_cost : float }

val default_config : config

type t

val create : ?config:config -> nprocs:int -> unit -> t
val tool : t -> Instrument.t
val cct : t -> Cct.t
val storage_bytes : t -> int

type hotspot = {
  hs_loc : Scalana_mlang.Loc.t;
  hs_time : float;
  hs_is_mpi : bool;
  hs_imbalance : float;  (** max/min across ranks; infinite when some
                             ranks never execute the context *)
}

(** Top contexts by time — symptoms, deliberately without causality. *)
val hotspots : ?top:int -> t -> hotspot list
