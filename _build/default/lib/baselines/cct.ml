(* Calling-context tree for the call-path profiling baseline.

   Nodes are keyed by (call path, location); each holds inclusive sampled
   time and counters per rank, as hpcrun's per-process measurement files
   do.  Merging across ranks supports the top-down report. *)

open Scalana_mlang
open Scalana_runtime

type node = {
  cct_loc : Loc.t;
  cct_callpath : Loc.t list;
  mutable time : float;
  mutable samples : int;
  mutable pmu : Pmu.t;
  mutable wait : float;
  mutable is_mpi : bool;
}

type t = { per_rank : (string, node) Hashtbl.t array }

let create ~nprocs = { per_rank = Array.init nprocs (fun _ -> Hashtbl.create 64) }

let key callpath loc =
  String.concat ">" (List.map Loc.to_string callpath) ^ "@" ^ Loc.to_string loc

let find_or_add t ~rank ~callpath ~loc =
  let tbl = t.per_rank.(rank) in
  let k = key callpath loc in
  match Hashtbl.find_opt tbl k with
  | Some n -> n
  | None ->
      let n =
        {
          cct_loc = loc;
          cct_callpath = callpath;
          time = 0.0;
          samples = 0;
          pmu = Pmu.zero;
          wait = 0.0;
          is_mpi = false;
        }
      in
      Hashtbl.add tbl k n;
      n

let n_nodes t =
  Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 t.per_rank

(* hpcrun measurement-file model: node record plus metric pages. *)
let bytes_per_node = 256
let storage_bytes t = n_nodes t * bytes_per_node

type merged = {
  m_loc : Loc.t;
  m_callpath : Loc.t list;
  m_time : float;
  m_wait : float;
  m_is_mpi : bool;
  m_ranks : int;
  m_max_time : float;
  m_min_time : float;
}

(* Merge per-rank nodes by calling context. *)
let merge t =
  let acc : (string, Loc.t * Loc.t list * float ref * float ref * bool ref
                     * int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 128
  in
  Array.iter
    (fun tbl ->
      Hashtbl.iter
        (fun k (n : node) ->
          let _, _, time, wait, is_mpi, ranks, maxt, mint =
            match Hashtbl.find_opt acc k with
            | Some e -> e
            | None ->
                let e =
                  ( n.cct_loc,
                    n.cct_callpath,
                    ref 0.0,
                    ref 0.0,
                    ref false,
                    ref 0,
                    ref neg_infinity,
                    ref infinity )
                in
                Hashtbl.add acc k e;
                e
          in
          time := !time +. n.time;
          wait := !wait +. n.wait;
          is_mpi := !is_mpi || n.is_mpi;
          incr ranks;
          maxt := Float.max !maxt n.time;
          mint := Float.min !mint n.time)
        tbl)
    t.per_rank;
  Hashtbl.fold
    (fun _ (loc, callpath, time, wait, is_mpi, ranks, maxt, mint) out ->
      {
        m_loc = loc;
        m_callpath = callpath;
        m_time = !time;
        m_wait = !wait;
        m_is_mpi = !is_mpi;
        m_ranks = !ranks;
        m_max_time = !maxt;
        m_min_time = !mint;
      }
      :: out)
    acc []
