(** Calling-context tree for the call-path profiling baseline: per-rank
    nodes keyed by (call path, location) with sampled metrics, plus a
    cross-rank merge for top-down reports. *)

open Scalana_mlang
open Scalana_runtime

type node = {
  cct_loc : Loc.t;
  cct_callpath : Loc.t list;
  mutable time : float;
  mutable samples : int;
  mutable pmu : Pmu.t;
  mutable wait : float;
  mutable is_mpi : bool;
}

type t = { per_rank : (string, node) Hashtbl.t array }

val create : nprocs:int -> t
val find_or_add : t -> rank:int -> callpath:Loc.t list -> loc:Loc.t -> node
val n_nodes : t -> int
val bytes_per_node : int
val storage_bytes : t -> int

type merged = {
  m_loc : Loc.t;
  m_callpath : Loc.t list;
  m_time : float;
  m_wait : float;
  m_is_mpi : bool;
  m_ranks : int;  (** ranks holding this context *)
  m_max_time : float;
  m_min_time : float;
}

val merge : t -> merged list
