(* Post-mortem wait-state analysis over a full trace — the automatic part
   of the Scalasca workflow (late-sender / wait-at-collective
   classification by trace replay).  It surfaces where time is lost, but
   unlike ScalAna's backtracking it does not chain dependences back to
   the originating computation. *)

open Scalana_mlang

type wait_class = Late_sender | Wait_at_collective | Self_wait

type wait_state = {
  ws_loc : Loc.t;
  ws_class : wait_class;
  mutable total_wait : float;
  mutable occurrences : int;
  mutable ranks : int list;  (* ranks observed waiting, deduped *)
}

let class_name = function
  | Late_sender -> "late-sender"
  | Wait_at_collective -> "wait-at-collective"
  | Self_wait -> "self-wait"

let analyze ?(epsilon = 20.0e-6) (events : Tracer.event list) =
  let tbl : (string * string, wait_state) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (ev : Tracer.event) ->
      match ev.ev_kind with
      | Tracer.Mpi_event { wait; peers; collective; _ } when wait > epsilon ->
          let cls =
            if collective then Wait_at_collective
            else if peers <> [] then Late_sender
            else Self_wait
          in
          let key = (Loc.to_string ev.ev_loc, class_name cls) in
          let ws =
            match Hashtbl.find_opt tbl key with
            | Some ws -> ws
            | None ->
                let ws =
                  {
                    ws_loc = ev.ev_loc;
                    ws_class = cls;
                    total_wait = 0.0;
                    occurrences = 0;
                    ranks = [];
                  }
                in
                Hashtbl.add tbl key ws;
                ws
          in
          ws.total_wait <- ws.total_wait +. wait;
          ws.occurrences <- ws.occurrences + 1;
          if not (List.mem ev.ev_rank ws.ranks) then
            ws.ranks <- ev.ev_rank :: ws.ranks
      | Tracer.Mpi_event _ | Tracer.Comp_region _ -> ())
    events;
  Hashtbl.fold (fun _ ws acc -> ws :: acc) tbl []
  |> List.sort (fun a b -> compare b.total_wait a.total_wait)

let pp_state ppf ws =
  Fmt.pf ppf "%-24s %-18s wait=%8.4fs n=%6d ranks=%d"
    (Loc.to_string ws.ws_loc) (class_name ws.ws_class) ws.total_wait
    ws.occurrences (List.length ws.ranks)

let report ?epsilon events ~top =
  let states = analyze ?epsilon events in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take top states
