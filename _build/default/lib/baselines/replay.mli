(** Post-mortem wait-state analysis over a full trace — the automatic
    part of the Scalasca workflow: late-sender / wait-at-collective
    classification by replay. Surfaces where time is lost, without
    chaining dependences back to the originating computation. *)

open Scalana_mlang

type wait_class = Late_sender | Wait_at_collective | Self_wait

type wait_state = {
  ws_loc : Loc.t;
  ws_class : wait_class;
  mutable total_wait : float;
  mutable occurrences : int;
  mutable ranks : int list;
}

val class_name : wait_class -> string

(** All wait states above [epsilon] seconds, largest total first. *)
val analyze : ?epsilon:float -> Tracer.event list -> wait_state list

val pp_state : wait_state Fmt.t
val report : ?epsilon:float -> Tracer.event list -> top:int -> wait_state list
