(* Textual trace files — a miniature OTF: one record per line, so traces
   survive the process that produced them and the wait-state replay and
   critical-path analyses can run post-mortem, as Scalasca's do.

   Format (tab-separated):
     C <rank> <time> <dur> <file> <line> <callpath> <label>
     M <rank> <time> <dur> <file> <line> <callpath> <name> <wait> \
       <collective:0|1> <late_rank|-1> <peers: r@file:line;...>
   The callpath is a ';'-separated list of file:line call sites ('-' when
   empty). *)

open Scalana_mlang

exception Malformed of { line_no : int; msg : string }

let string_of_loc loc = Printf.sprintf "%s:%d" (Loc.file loc) (Loc.line loc)

let loc_of_string ~line_no s =
  match String.rindex_opt s ':' with
  | None -> raise (Malformed { line_no; msg = "bad location " ^ s })
  | Some i -> (
      let file = String.sub s 0 i in
      let l = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt l with
      | Some line -> Loc.v ~file ~line
      | None -> raise (Malformed { line_no; msg = "bad location " ^ s }))

let string_of_callpath = function
  | [] -> "-"
  | cp -> String.concat ";" (List.map string_of_loc cp)

let callpath_of_string ~line_no = function
  | "-" -> []
  | s -> List.map (loc_of_string ~line_no) (String.split_on_char ';' s)

let write_event oc (ev : Tracer.event) =
  match ev.ev_kind with
  | Tracer.Comp_region { label } ->
      Printf.fprintf oc "C\t%d\t%.9f\t%.9f\t%s\t%s\t%s\n" ev.ev_rank ev.ev_time
        ev.ev_duration
        (string_of_loc ev.ev_loc)
        (string_of_callpath ev.ev_callpath)
        (match label with Some l -> l | None -> "-")
  | Tracer.Mpi_event { name; wait; peers; collective; last_arrival_rank } ->
      let peers_s =
        match peers with
        | [] -> "-"
        | l ->
            String.concat ";"
              (List.map
                 (fun (r, loc) -> Printf.sprintf "%d@%s" r (string_of_loc loc))
                 l)
      in
      Printf.fprintf oc "M\t%d\t%.9f\t%.9f\t%s\t%s\t%s\t%.9f\t%d\t%d\t%s\n"
        ev.ev_rank ev.ev_time ev.ev_duration
        (string_of_loc ev.ev_loc)
        (string_of_callpath ev.ev_callpath)
        name wait
        (if collective then 1 else 0)
        (match last_arrival_rank with Some r -> r | None -> -1)
        peers_s

let save ~path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (write_event oc) events)

let parse_line ~line_no line =
  let fields = String.split_on_char '\t' line in
  let fail msg = raise (Malformed { line_no; msg }) in
  let int s = match int_of_string_opt s with Some i -> i | None -> fail ("bad int " ^ s) in
  let flt s =
    match float_of_string_opt s with Some f -> f | None -> fail ("bad float " ^ s)
  in
  match fields with
  | [ "C"; rank; time; dur; loc; cp; label ] ->
      {
        Tracer.ev_rank = int rank;
        ev_time = flt time;
        ev_duration = flt dur;
        ev_loc = loc_of_string ~line_no loc;
        ev_callpath = callpath_of_string ~line_no cp;
        ev_kind =
          Tracer.Comp_region
            { label = (if label = "-" then None else Some label) };
      }
  | [ "M"; rank; time; dur; loc; cp; name; wait; coll; late; peers ] ->
      let peers =
        if peers = "-" then []
        else
          List.map
            (fun p ->
              match String.index_opt p '@' with
              | None -> fail ("bad peer " ^ p)
              | Some i ->
                  ( int (String.sub p 0 i),
                    loc_of_string ~line_no
                      (String.sub p (i + 1) (String.length p - i - 1)) ))
            (String.split_on_char ';' peers)
      in
      {
        Tracer.ev_rank = int rank;
        ev_time = flt time;
        ev_duration = flt dur;
        ev_loc = loc_of_string ~line_no loc;
        ev_callpath = callpath_of_string ~line_no cp;
        ev_kind =
          Tracer.Mpi_event
            {
              name;
              wait = flt wait;
              peers;
              collective = int coll = 1;
              last_arrival_rank = (if int late < 0 then None else Some (int late));
            };
      }
  | _ -> fail "unrecognized record"

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc line_no =
        match input_line ic with
        | line when String.trim line = "" -> go acc (line_no + 1)
        | line -> go (parse_line ~line_no line :: acc) (line_no + 1)
        | exception End_of_file -> List.rev acc
      in
      go [] 1)
