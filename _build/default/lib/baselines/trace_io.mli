(** Textual trace files (a miniature OTF): persist tracer events so the
    wait-state replay and critical-path analyses can run post-mortem. *)

exception Malformed of { line_no : int; msg : string }

val save : path:string -> Tracer.event list -> unit

(** Raises {!Malformed} on corrupt input. *)
val load : path:string -> Tracer.event list
