(* Tracing baseline (the Scalasca/Vampir role).

   Logs an enter/exit event pair for every region (computation block or
   MPI call) on every rank, with matched-peer payloads for receives.
   Every event costs wrapper time on the traced process and a fixed
   number of trace-buffer bytes, which is where the paper's
   gigabytes-of-traces and tens-of-percent overheads come from.  Events
   are retained in memory (up to [keep_limit]) for the post-mortem
   wait-state replay in {!Replay}. *)

open Scalana_mlang
open Scalana_runtime

type event_kind =
  | Comp_region of { label : string option }
  | Mpi_event of {
      name : string;
      wait : float;
      peers : (int * Loc.t) list;  (* matched sender rank/site *)
      collective : bool;
      last_arrival_rank : int option;
    }

type event = {
  ev_rank : int;
  ev_time : float;
  ev_duration : float;
  ev_loc : Loc.t;
  ev_callpath : Loc.t list;
  ev_kind : event_kind;
}

type config = {
  per_event_cost : float;  (* seconds charged per logged event *)
  bytes_per_event : int;
  ins_per_region : float;
      (* granularity of compiler instrumentation: one traced region per
         this many retired instructions inside a computation block.  Our
         Comp statements are coarse (whole solver phases); a tracing tool
         with automatic compiler instrumentation logs the many small
         functions inside them, which is where gigabyte traces and
         tens-of-percent overheads come from. *)
  keep_limit : int;  (* max events retained for replay; counting continues *)
}

let default_config =
  {
    per_event_cost = 1.2e-6;
    bytes_per_event = 40;
    ins_per_region = 2000.0;
    keep_limit = 2_000_000;
  }

type t = {
  cfg : config;
  mutable events : event list;  (* newest first *)
  mutable n_events : int;  (* raw records incl. sub-regions *)
  mutable n_regions : int;  (* region events offered for retention *)
  mutable n_kept : int;
  mutable bytes : int;
  mutable elapsed : float;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    events = [];
    n_events = 0;
    n_regions = 0;
    n_kept = 0;
    bytes = 0;
    elapsed = 0.0;
  }

(* Each region contributes an enter and an exit record. *)
let log t ev ~records =
  let n = 2 + records in
  t.n_events <- t.n_events + n;
  t.n_regions <- t.n_regions + 1;
  t.bytes <- t.bytes + (n * t.cfg.bytes_per_event);
  if t.n_kept < t.cfg.keep_limit then begin
    t.events <- ev :: t.events;
    t.n_kept <- t.n_kept + 1
  end;
  float_of_int n *. t.cfg.per_event_cost

let on_interval t (ctx : Instrument.ctx) ~stop activity =
  match activity with
  | Instrument.Compute { label; pmu } ->
      (* sub-regions the compiler instrumentation would log inside this
         computation block; capped per region, modeling the Score-P-style
         filtering of hot tiny functions every tracing guide prescribes *)
      let sub =
        min 40_000
          (int_of_float (pmu.Scalana_runtime.Pmu.tot_ins /. t.cfg.ins_per_region))
      in
      log t
        {
          ev_rank = ctx.rank;
          ev_time = ctx.time;
          ev_duration = stop -. ctx.time;
          ev_loc = ctx.loc;
          ev_callpath = ctx.callpath;
          ev_kind = Comp_region { label };
        }
        ~records:(2 * sub)
  | Instrument.Mpi_span _ ->
      (* MPI regions are logged from on_mpi_exit, which carries peers. *)
      0.0

let on_mpi_exit t (ctx : Instrument.ctx) (info : Instrument.mpi_exit) =
  let peers =
    List.map
      (fun (d : Instrument.peer_dep) -> (d.peer_rank, d.peer_loc))
      info.deps
  in
  log t
    {
      ev_rank = ctx.rank;
      ev_time = info.enter_time;
      ev_duration = info.exit_time -. info.enter_time;
      ev_loc = ctx.loc;
      ev_callpath = ctx.callpath;
      ev_kind =
        Mpi_event
          {
            name = Ast.mpi_name info.call;
            wait = info.wait_seconds;
            peers;
            collective = info.collective <> None;
            last_arrival_rank =
              Option.map
                (fun (c : Instrument.collective_info) -> c.last_arrival_rank)
                info.collective;
          };
    }
    ~records:(List.length info.deps)

let tool t =
  {
    (Instrument.nil "tracer") with
    on_interval = (fun ctx ~stop act -> on_interval t ctx ~stop act);
    on_mpi_exit = (fun ctx info -> on_mpi_exit t ctx info);
    on_run_end = (fun ~nprocs:_ ~elapsed -> t.elapsed <- elapsed);
  }

let events t = List.rev t.events
let n_events t = t.n_events
let storage_bytes t = t.bytes
let truncated t = t.n_regions > t.n_kept
