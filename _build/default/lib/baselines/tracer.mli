(** Tracing baseline (the Scalasca/Vampir role): logs every region with
    peer payloads, charges per-event wrapper time, and accounts trace
    bytes — including the sub-regions a compiler-instrumented tracer
    would log inside coarse computation blocks. *)

open Scalana_mlang
open Scalana_runtime

type event_kind =
  | Comp_region of { label : string option }
  | Mpi_event of {
      name : string;
      wait : float;
      peers : (int * Loc.t) list;
      collective : bool;
      last_arrival_rank : int option;
    }

type event = {
  ev_rank : int;
  ev_time : float;
  ev_duration : float;
  ev_loc : Loc.t;
  ev_callpath : Loc.t list;
  ev_kind : event_kind;
}

type config = {
  per_event_cost : float;
  bytes_per_event : int;
  ins_per_region : float;
      (** instrumentation granularity: one traced sub-region per this
          many retired instructions inside a computation block *)
  keep_limit : int;  (** events retained in memory for {!Replay} *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t
val tool : t -> Instrument.t

(** Retained events in chronological order of logging. *)
val events : t -> event list

val n_events : t -> int
val storage_bytes : t -> int

(** True when the retained list was capped by [keep_limit]. *)
val truncated : t -> bool
