lib/cfg/callgraph.ml: Ast Hashtbl List Loc Scalana_mlang String
