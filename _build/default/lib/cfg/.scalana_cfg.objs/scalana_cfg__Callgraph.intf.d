lib/cfg/callgraph.mli: Ast Loc Scalana_mlang
