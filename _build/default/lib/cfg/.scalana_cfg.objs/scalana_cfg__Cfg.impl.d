lib/cfg/cfg.ml: Array Ast Expr Fmt List Printf Scalana_mlang
