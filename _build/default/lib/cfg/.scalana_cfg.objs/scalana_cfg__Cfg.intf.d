lib/cfg/cfg.mli: Ast Expr Fmt Scalana_mlang
