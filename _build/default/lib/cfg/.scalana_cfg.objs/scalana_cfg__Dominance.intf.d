lib/cfg/dominance.mli: Cfg
