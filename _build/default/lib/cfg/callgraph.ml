(* Program call graph (PCG) for MiniMPI programs.

   Nodes are function names; edges record direct calls and the statically
   visible candidate sets of indirect calls.  Recursion is detected via
   Tarjan SCCs; the inter-procedural PSG pass uses [topo_order] (on the
   SCC condensation) and [is_recursive] to decide which calls to inline
   and which to turn into cycles, exactly as Section III-A prescribes. *)

open Scalana_mlang

type edge_kind = Direct | Indirect

type edge = {
  caller : string;
  callee : string;
  kind : edge_kind;
  site : Loc.t;
}

type t = {
  program : Ast.program;
  names : string list;
  edges : edge list;
  sccs : string list list;  (* Tarjan SCCs in reverse topological order *)
  scc_of : (string, int) Hashtbl.t;
}

let collect_edges (program : Ast.program) =
  let edges = ref [] in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_stmts
        (fun s ->
          match s.node with
          | Ast.Call { callee; _ } ->
              edges :=
                { caller = f.fname; callee; kind = Direct; site = s.loc }
                :: !edges
          | Ast.Icall { targets; _ } ->
              List.iter
                (fun callee ->
                  edges :=
                    { caller = f.fname; callee; kind = Indirect; site = s.loc }
                    :: !edges)
                targets
          | Ast.Comp _ | Ast.Loop _ | Ast.Branch _ | Ast.Mpi _ | Ast.Let _ ->
              ())
        f.fbody)
    program.funcs;
  List.rev !edges

(* Tarjan's strongly connected components. *)
let tarjan names succ =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succ v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if String.equal w v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) names;
  (* Tarjan emits SCCs in reverse topological order of the condensation. *)
  List.rev !sccs

let build (program : Ast.program) =
  let names = List.map (fun (f : Ast.func) -> f.fname) program.funcs in
  let edges = collect_edges program in
  let succ v =
    List.filter_map
      (fun e -> if String.equal e.caller v then Some e.callee else None)
      edges
    |> List.sort_uniq String.compare
  in
  let sccs = tarjan names succ in
  let scc_of = Hashtbl.create 16 in
  List.iteri
    (fun i members -> List.iter (fun m -> Hashtbl.replace scc_of m i) members)
    sccs;
  { program; names; edges; sccs; scc_of }

let edges t = t.edges

let callees t name =
  List.filter (fun e -> String.equal e.caller name) t.edges

let callers t name =
  List.filter (fun e -> String.equal e.callee name) t.edges

(* A function is recursive when its SCC has >1 member or it calls itself. *)
let is_recursive t name =
  match Hashtbl.find_opt t.scc_of name with
  | None -> false
  | Some i ->
      (match List.nth_opt t.sccs i with
      | Some [ _ ] ->
          List.exists
            (fun e -> String.equal e.caller name && String.equal e.callee name)
            t.edges
      | Some _ -> true
      | None -> false)

let in_same_scc t a b =
  match (Hashtbl.find_opt t.scc_of a, Hashtbl.find_opt t.scc_of b) with
  | Some i, Some j -> i = j
  | _ -> false

(* Functions reachable from main (direct and indirect edges). *)
let reachable t =
  let visited = Hashtbl.create 16 in
  let rec go v =
    if not (Hashtbl.mem visited v) then begin
      Hashtbl.replace visited v ();
      List.iter (fun e -> go e.callee) (callees t v)
    end
  in
  go t.program.main;
  List.filter (Hashtbl.mem visited) t.names

(* Callee-first order (reverse topological order of the condensation),
   flattened; members of one SCC stay adjacent. *)
let topo_order t = List.concat t.sccs

let scc_count t = List.length t.sccs
