(** Program call graph (PCG): direct and indirect call edges, recursion
    detection via Tarjan SCCs, reachability from main. *)

open Scalana_mlang

type edge_kind = Direct | Indirect

type edge = {
  caller : string;
  callee : string;
  kind : edge_kind;
  site : Loc.t;
}

type t

val build : Ast.program -> t
val edges : t -> edge list
val callees : t -> string -> edge list
val callers : t -> string -> edge list
val is_recursive : t -> string -> bool
val in_same_scc : t -> string -> string -> bool

(** Functions reachable from the program's main. *)
val reachable : t -> string list

(** Callee-first flattening of the SCC condensation. *)
val topo_order : t -> string list

val scc_count : t -> int
