(* Control-flow graph lowering for MiniMPI functions.

   This is the IR-level substrate the paper's intra-procedural pass walks:
   structured statements are lowered to basic blocks with explicit
   terminators; loops produce the classic preheader / header / body /
   latch / exit shape with a back edge, branches produce diamonds.  Each
   block remembers the AST construct that generated it (provenance), and
   the dominance/natural-loop analyses recover the same structure from the
   raw graph — the test suite checks they agree. *)

open Scalana_mlang

type node_id = int

type terminator =
  | Jump of node_id
  | Cond of { cond : Expr.t; on_true : node_id; on_false : node_id }
  | Ret

type origin =
  | Plain
  | Loop_header of Ast.stmt
  | Loop_latch of Ast.stmt
  | Branch_cond of Ast.stmt

type block = {
  id : node_id;
  stmts : Ast.stmt list;  (* straight-line statements only *)
  term : terminator;
  origin : origin;
}

type t = {
  fname : string;
  entry : node_id;
  exit_ : node_id;
  blocks : block array;
}

(* --- construction --- *)

type builder = {
  mutable nodes : (Ast.stmt list ref * terminator option ref * origin) array;
  mutable len : int;
}

let new_block ?(origin = Plain) b =
  let cell = (ref [], ref None, origin) in
  if b.len = Array.length b.nodes then begin
    let bigger = Array.make (max 8 (2 * b.len)) cell in
    Array.blit b.nodes 0 bigger 0 b.len;
    b.nodes <- bigger
  end;
  b.nodes.(b.len) <- cell;
  b.len <- b.len + 1;
  b.len - 1

let add_stmt b id s =
  let stmts, _, _ = b.nodes.(id) in
  stmts := s :: !stmts

let set_term b id t =
  let _, term, _ = b.nodes.(id) in
  match !term with
  | Some _ -> invalid_arg "Cfg: terminator already set"
  | None -> term := Some t

(* Lower a statement list into the graph, starting in block [cur];
   returns the block control falls out into. *)
let rec lower_stmts b cur stmts =
  List.fold_left (lower_stmt b) cur stmts

and lower_stmt b cur (s : Ast.stmt) =
  match s.node with
  | Ast.Comp _ | Ast.Mpi _ | Ast.Call _ | Ast.Icall _ | Ast.Let _ ->
      add_stmt b cur s;
      cur
  | Ast.Loop l ->
      let header = new_block ~origin:(Loop_header s) b in
      let body = new_block b in
      let latch = new_block ~origin:(Loop_latch s) b in
      let exit_ = new_block b in
      set_term b cur (Jump header);
      set_term b header
        (Cond { cond = l.count; on_true = body; on_false = exit_ });
      let body_end = lower_stmts b body l.body in
      set_term b body_end (Jump latch);
      set_term b latch (Jump header);
      exit_
  | Ast.Branch br ->
      let cond_block = new_block ~origin:(Branch_cond s) b in
      set_term b cur (Jump cond_block);
      let then_start = new_block b in
      let else_start = new_block b in
      let join = new_block b in
      set_term b cond_block
        (Cond { cond = br.cond; on_true = then_start; on_false = else_start });
      let then_end = lower_stmts b then_start br.then_ in
      set_term b then_end (Jump join);
      let else_end = lower_stmts b else_start br.else_ in
      set_term b else_end (Jump join);
      join

let of_func (f : Ast.func) =
  let b = { nodes = [||]; len = 0 } in
  let entry = new_block b in
  let last = lower_stmts b entry f.fbody in
  set_term b last Ret;
  let blocks =
    Array.init b.len (fun id ->
        let stmts, term, origin = b.nodes.(id) in
        let term =
          match !term with
          | Some t -> t
          | None -> invalid_arg "Cfg: unterminated block"
        in
        { id; stmts = List.rev !stmts; term; origin })
  in
  { fname = f.fname; entry; exit_ = last; blocks }

(* --- graph accessors --- *)

let n_blocks t = Array.length t.blocks
let block t id = t.blocks.(id)

let successors t id =
  match t.blocks.(id).term with
  | Jump n -> [ n ]
  | Cond { on_true; on_false; _ } -> [ on_true; on_false ]
  | Ret -> []

let predecessors t =
  let preds = Array.make (n_blocks t) [] in
  Array.iter
    (fun blk ->
      List.iter (fun s -> preds.(s) <- blk.id :: preds.(s)) (successors t blk.id))
    t.blocks;
  Array.map List.rev preds

(* Reverse postorder from the entry; unreachable blocks are absent. *)
let reverse_postorder t =
  let visited = Array.make (n_blocks t) false in
  let order = ref [] in
  let rec dfs id =
    if not visited.(id) then begin
      visited.(id) <- true;
      List.iter dfs (successors t id);
      order := id :: !order
    end
  in
  dfs t.entry;
  !order

let edge_count t =
  Array.fold_left (fun acc blk -> acc + List.length (successors t blk.id)) 0 t.blocks

let pp ppf t =
  Fmt.pf ppf "cfg %s: entry=%d exit=%d@." t.fname t.entry t.exit_;
  Array.iter
    (fun blk ->
      let term =
        match blk.term with
        | Jump n -> Printf.sprintf "jump %d" n
        | Cond { on_true; on_false; _ } ->
            Printf.sprintf "cond -> %d | %d" on_true on_false
        | Ret -> "ret"
      in
      Fmt.pf ppf "  b%d [%d stmts] %s@." blk.id (List.length blk.stmts) term)
    t.blocks
