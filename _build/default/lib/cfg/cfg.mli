(** Control-flow graphs for MiniMPI functions: structured statements are
    lowered to basic blocks with explicit terminators (loops become
    header/body/latch/exit with a back edge, branches become diamonds). *)

open Scalana_mlang

type node_id = int

type terminator =
  | Jump of node_id
  | Cond of { cond : Expr.t; on_true : node_id; on_false : node_id }
  | Ret

(** Which AST construct generated a block (provenance for structure
    recovery checks). *)
type origin =
  | Plain
  | Loop_header of Ast.stmt
  | Loop_latch of Ast.stmt
  | Branch_cond of Ast.stmt

type block = {
  id : node_id;
  stmts : Ast.stmt list;
  term : terminator;
  origin : origin;
}

type t = {
  fname : string;
  entry : node_id;
  exit_ : node_id;
  blocks : block array;
}

val of_func : Ast.func -> t
val n_blocks : t -> int
val block : t -> node_id -> block
val successors : t -> node_id -> node_id list
val predecessors : t -> node_id list array

(** Reverse postorder from the entry (unreachable blocks omitted). *)
val reverse_postorder : t -> node_id list

val edge_count : t -> int
val pp : t Fmt.t
