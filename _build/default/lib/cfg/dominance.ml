(* Dominator analysis (Cooper–Harvey–Kennedy iterative algorithm).

   Used by {!Loops} to find back edges (an edge n -> h is a back edge iff
   h dominates n), which recovers loop structure from the raw CFG. *)

type t = {
  idom : int array;  (* immediate dominator; entry maps to itself; -1 = unreachable *)
  rpo_index : int array;  (* position in reverse postorder; -1 = unreachable *)
}

let compute (cfg : Cfg.t) =
  let n = Cfg.n_blocks cfg in
  let rpo = Cfg.reverse_postorder cfg in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i id -> rpo_index.(id) <- i) rpo;
  let preds = Cfg.predecessors cfg in
  let idom = Array.make n (-1) in
  idom.(cfg.entry) <- cfg.entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        if id <> cfg.entry then begin
          let processed =
            List.filter (fun p -> idom.(p) >= 0) preds.(id)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(id) <> new_idom then begin
                idom.(id) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  { idom; rpo_index }

let idom t id = if t.idom.(id) = id then None else Some t.idom.(id)
let is_reachable t id = t.idom.(id) >= 0

(* [dominates t a b]: does [a] dominate [b]?  Walk up the dominator tree
   from [b]. *)
let dominates t a b =
  if not (is_reachable t b) then false
  else begin
    let rec climb x = if x = a then true else if t.idom.(x) = x then false else climb t.idom.(x) in
    climb b
  end

let dominator_tree t =
  let n = Array.length t.idom in
  let children = Array.make n [] in
  for id = 0 to n - 1 do
    let p = t.idom.(id) in
    if p >= 0 && p <> id then children.(p) <- id :: children.(p)
  done;
  Array.map List.rev children
