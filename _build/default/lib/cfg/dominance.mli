(** Dominator analysis over a {!Cfg.t} (Cooper–Harvey–Kennedy). *)

type t

val compute : Cfg.t -> t

(** Immediate dominator; [None] for the entry block. *)
val idom : t -> Cfg.node_id -> Cfg.node_id option

val is_reachable : t -> Cfg.node_id -> bool

(** [dominates t a b] — does [a] dominate [b]? Reflexive. *)
val dominates : t -> Cfg.node_id -> Cfg.node_id -> bool

(** Children lists of the dominator tree, indexed by block id. *)
val dominator_tree : t -> Cfg.node_id list array
