(* Natural-loop detection from back edges.

   An edge latch -> header is a back edge when the header dominates the
   latch; the loop body is every block that reaches the latch without
   passing through the header.  Nesting depth is recovered by counting
   enclosing headers — this mirrors how a compiler identifies the loops
   that ScalAna turns into PSG Loop vertices. *)

type loop = {
  header : Cfg.node_id;
  latch : Cfg.node_id;
  body : Cfg.node_id list;  (* includes header and latch *)
  depth : int;  (* 1 = outermost *)
}

type t = { loops : loop list }

let back_edges cfg dom =
  let edges = ref [] in
  Array.iter
    (fun (blk : Cfg.block) ->
      List.iter
        (fun succ ->
          if Dominance.dominates dom succ blk.id then
            edges := (blk.id, succ) :: !edges)
        (Cfg.successors cfg blk.id))
    cfg.Cfg.blocks;
  List.rev !edges

let natural_loop cfg ~header ~latch =
  let preds = Cfg.predecessors cfg in
  let in_loop = Hashtbl.create 16 in
  Hashtbl.replace in_loop header ();
  let rec walk id =
    if not (Hashtbl.mem in_loop id) then begin
      Hashtbl.replace in_loop id ();
      List.iter walk preds.(id)
    end
  in
  walk latch;
  Hashtbl.fold (fun id () acc -> id :: acc) in_loop [] |> List.sort compare

let compute cfg =
  let dom = Dominance.compute cfg in
  let raw =
    List.map
      (fun (latch, header) ->
        { header; latch; body = natural_loop cfg ~header ~latch; depth = 0 })
      (back_edges cfg dom)
  in
  (* depth = number of loops whose body strictly contains this header,
     plus one. *)
  let depth_of l =
    1
    + List.length
        (List.filter
           (fun other ->
             other.header <> l.header && List.mem l.header other.body)
           raw)
  in
  { loops = List.map (fun l -> { l with depth = depth_of l }) raw }

let loops t = t.loops
let count t = List.length t.loops

let max_depth t =
  List.fold_left (fun acc l -> max acc l.depth) 0 t.loops

let headers t = List.map (fun l -> l.header) t.loops
