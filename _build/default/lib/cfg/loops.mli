(** Natural-loop detection over a {!Cfg.t} from dominance back edges. *)

type loop = {
  header : Cfg.node_id;
  latch : Cfg.node_id;
  body : Cfg.node_id list;  (** sorted; includes header and latch *)
  depth : int;  (** 1 = outermost *)
}

type t

val compute : Cfg.t -> t
val loops : t -> loop list
val count : t -> int
val max_depth : t -> int
val headers : t -> Cfg.node_id list
