lib/core/artifact.ml: Array Filename Fun List Marshal Printf Prof Static String Sys
