lib/core/artifact.mli: Prof Static
