lib/core/config.ml: Scalana_detect Scalana_profile
