lib/core/config.mli: Scalana_detect Scalana_profile
