lib/core/experiment.ml: Ast Callprof Config Costmodel Exec Hashtbl List Network Prof Scalana_baselines Scalana_mlang Scalana_profile Scalana_runtime Static Tracer
