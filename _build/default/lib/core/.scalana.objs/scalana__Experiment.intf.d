lib/core/experiment.mli: Ast Config Costmodel Network Scalana_mlang Scalana_runtime
