lib/core/htmlreport.mli: Pipeline
