lib/core/pipeline.ml: Ast Config Costmodel Crossscale Inject List Network Prof Report Rootcause Scalana_detect Scalana_mlang Scalana_ppg Scalana_runtime Static Unix
