lib/core/pipeline.mli: Ast Config Costmodel Crossscale Inject Loc Network Prof Rootcause Scalana_detect Scalana_mlang Scalana_ppg Scalana_runtime Static
