lib/core/prof.ml: Config Costmodel Exec Index Inject Inter List Network Profdata Profiler Psg Scalana_profile Scalana_psg Scalana_runtime Static Vertex
