lib/core/prof.mli: Config Costmodel Exec Inject Instrument Network Profdata Scalana_profile Scalana_runtime Static
