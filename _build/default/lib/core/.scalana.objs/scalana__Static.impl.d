lib/core/static.ml: Ast Callgraph Cfg Contract Dominance Hashtbl Index Inter Intra List Loops Parser Pretty Psg Scalana_cfg Scalana_mlang Scalana_psg Stats String Unix Validate
