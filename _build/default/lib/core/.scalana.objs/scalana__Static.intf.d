lib/core/static.mli: Ast Contract Hashtbl Index Psg Scalana_mlang Scalana_psg Stats
