lib/core/viewer.ml: Buffer List Loc Pipeline Pretty Printf Scalana_detect Scalana_mlang Static
