lib/core/viewer.mli: Pipeline
