(* On-disk session artifacts.

   The three user-facing steps of Section V are separate executables
   (scalana-static, scalana-prof, scalana-detect); a session directory
   carries the static artifact and one profile per job scale between
   them.  Serialization is OCaml Marshal over plain data. *)

type session = {
  static : Static.t;
  mutable runs : (int * Prof.run) list;
}

let magic = "SCALANA1"

let save_value path v =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc v [])

let load_value path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if not (String.equal m magic) then
        failwith (path ^ ": not a ScalAna artifact");
      Marshal.from_channel ic)

let static_path dir = Filename.concat dir "session.static"
let run_path dir nprocs = Filename.concat dir (Printf.sprintf "run_%04d.prof" nprocs)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    failwith (dir ^ " exists and is not a directory")

let save_static dir (static : Static.t) =
  ensure_dir dir;
  save_value (static_path dir) static

let load_static dir : Static.t = load_value (static_path dir)

let save_run dir (run : Prof.run) =
  ensure_dir dir;
  save_value (run_path dir run.Prof.nprocs) run;
  (* the static artifact may have been refined by this run *)
  ()

let load_runs dir : (int * Prof.run) list =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun f ->
         if Filename.check_suffix f ".prof" then begin
           let run : Prof.run = load_value (Filename.concat dir f) in
           Some (run.Prof.nprocs, run)
         end
         else None)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let load_session dir =
  { static = load_static dir; runs = load_runs dir }
