(** On-disk session artifacts shared by the scalana-static / -prof /
    -detect executables (Marshal over plain data). *)

type session = { static : Static.t; mutable runs : (int * Prof.run) list }

val save_value : string -> 'a -> unit

(** Raises [Failure] when the file does not carry the artifact magic. *)
val load_value : string -> 'a

val save_static : string -> Static.t -> unit
val load_static : string -> Static.t
val save_run : string -> Prof.run -> unit
val load_runs : string -> (int * Prof.run) list
val load_session : string -> session
