(** Standalone HTML rendering of a finished pipeline — the Fig. 9 viewer
    as a self-contained file with root causes, backtracking paths, source
    snippets and per-rank SVG bar charts. *)

val render : Pipeline.t -> string
val write : Pipeline.t -> path:string -> unit
