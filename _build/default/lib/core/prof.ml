(* ScalAna-prof: run an instrumented program at one job scale.

   Runs the simulator with the ScalAna tool attached, then applies the
   runtime refinements to the static artifact: indirect-call resolutions
   are spliced into the contracted PSG and indexed, so later runs and the
   detector see the refined graph (Section III-B3). *)

open Scalana_psg
open Scalana_runtime
open Scalana_profile

type run = {
  nprocs : int;
  data : Profdata.t;
  result : Exec.result;
  baseline_elapsed : float option;  (* same run, no tools *)
}

let overhead_percent r =
  match r.baseline_elapsed with
  | Some base when base > 0.0 ->
      Some (100.0 *. (r.result.Exec.elapsed -. base) /. base)
  | _ -> None

let apply_refinements (static : Static.t) (data : Profdata.t) =
  List.iter
    (fun (res : Profdata.icall_resolution) ->
      match
        (Psg.vertex_opt (Static.psg static) res.callsite_vertex
          : Vertex.t option)
      with
      | Some { Vertex.kind = Vertex.Callsite { callee = None; _ }; _ } -> (
          match
            Inter.refine_indirect (Static.psg static) ~locals:static.locals
              ~callsite:res.callsite_vertex ~target:res.target
          with
          | Some sub_root ->
              Index.index_contracted_subtree static.index sub_root
          | None -> ())
      | Some _ | None -> ())
    (Profdata.icall_resolutions data)

let run ?(config = Config.default) ?(cost = Costmodel.default)
    ?(net = Network.default) ?(inject = Inject.empty) ?(params = [])
    ?(measure_overhead = false) ?(extra_tools = []) (static : Static.t)
    ~nprocs () =
  let profiler =
    Profiler.create
      ~config:(Config.profiler_config config)
      ~index:static.Static.index ~nprocs ()
  in
  let mk_cfg tools =
    Exec.config ~nprocs ~params ~cost ~net ~inject ~tools ()
  in
  let baseline_elapsed =
    if measure_overhead then begin
      let r = Exec.run ~cfg:(mk_cfg []) static.Static.program in
      Some r.Exec.elapsed
    end
    else None
  in
  let result =
    Exec.run
      ~cfg:(mk_cfg (Profiler.tool profiler :: extra_tools))
      static.Static.program
  in
  let data = Profiler.data profiler in
  apply_refinements static data;
  { nprocs; data; result; baseline_elapsed }
