(** ScalAna-prof: run an instrumented program at one job scale and apply
    the runtime refinements (indirect-call splicing) to the static
    artifact. *)

open Scalana_runtime
open Scalana_profile

type run = {
  nprocs : int;
  data : Profdata.t;
  result : Exec.result;
  baseline_elapsed : float option;  (** same run without tools *)
}

(** Available when the run was made with [~measure_overhead:true]. *)
val overhead_percent : run -> float option

(** Splice observed indirect-call targets into the contracted PSG and
    refresh the index (done automatically by {!run}). *)
val apply_refinements : Static.t -> Profdata.t -> unit

val run :
  ?config:Config.t ->
  ?cost:Costmodel.t ->
  ?net:Network.t ->
  ?inject:Inject.t ->
  ?params:(string * int) list ->
  ?measure_overhead:bool ->
  ?extra_tools:Instrument.t list ->
  Static.t ->
  nprocs:int ->
  unit ->
  run
