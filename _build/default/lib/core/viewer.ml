(* ScalAna-viewer: terminal rendering of a finished pipeline — the GUI of
   Fig. 9 flattened to text.  The upper window (root-cause vertices and
   calling paths) comes from the detection report; the lower window shows
   the source snippet of a selected cause. *)

open Scalana_mlang

let show ?(snippet_context = 2) (pipeline : Pipeline.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf pipeline.Pipeline.report;
  Buffer.add_string buf "\n=== source view ===\n";
  List.iteri
    (fun i (c : Scalana_detect.Rootcause.cause) ->
      Buffer.add_string buf
        (Printf.sprintf "\n[%d] %s @%s\n" (i + 1) c.cause_label
           (Loc.to_string c.cause_loc));
      List.iter
        (fun line ->
          Buffer.add_string buf ("  " ^ line);
          Buffer.add_char buf '\n')
        (Pretty.snippet ~context:snippet_context
           pipeline.Pipeline.static.Static.program c.cause_loc))
    pipeline.Pipeline.analysis.causes;
  Buffer.contents buf

(* One-line summary per cause, for quick assertions and logs. *)
let summary (pipeline : Pipeline.t) =
  List.map
    (fun (c : Scalana_detect.Rootcause.cause) ->
      Printf.sprintf "%s@%s" c.cause_label (Loc.to_string c.cause_loc))
    pipeline.Pipeline.analysis.causes
