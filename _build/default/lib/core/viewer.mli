(** ScalAna-viewer: terminal rendering of a finished pipeline — the
    Fig. 9 GUI flattened to text (report + source windows). *)

val show : ?snippet_context:int -> Pipeline.t -> string

(** One line per cause, for logs and assertions. *)
val summary : Pipeline.t -> string list
