lib/detect/abnormal.ml: Aggregate Array Float Fmt List Ppg Printf Scalana_mlang Scalana_ppg Scalana_profile Scalana_psg Seq
