lib/detect/abnormal.mli: Fmt Scalana_ppg Scalana_psg
