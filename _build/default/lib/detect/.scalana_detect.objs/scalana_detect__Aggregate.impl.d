lib/detect/aggregate.ml: Array Printf
