lib/detect/aggregate.mli:
