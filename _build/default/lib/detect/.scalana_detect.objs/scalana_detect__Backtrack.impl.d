lib/detect/backtrack.ml: Fmt Hashtbl List Ppg Printf Psg Scalana_mlang Scalana_ppg Scalana_psg Vertex
