lib/detect/backtrack.mli: Fmt Hashtbl Scalana_ppg Scalana_psg
