lib/detect/critpath.ml: Float Fmt Hashtbl List Loc Printf Scalana_baselines Scalana_mlang Tracer
