lib/detect/critpath.mli: Fmt Loc Scalana_baselines Scalana_mlang
