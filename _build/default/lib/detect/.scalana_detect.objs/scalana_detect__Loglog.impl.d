lib/detect/loglog.ml: List
