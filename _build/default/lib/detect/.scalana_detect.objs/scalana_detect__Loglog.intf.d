lib/detect/loglog.mli:
