lib/detect/nonscalable.ml: Aggregate Array Crossscale Fmt List Loglog Ppg Scalana_mlang Scalana_ppg Scalana_psg
