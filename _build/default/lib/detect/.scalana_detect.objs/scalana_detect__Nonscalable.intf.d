lib/detect/nonscalable.mli: Aggregate Fmt Loglog Scalana_ppg Scalana_psg
