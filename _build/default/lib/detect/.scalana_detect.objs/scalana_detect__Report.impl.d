lib/detect/report.ml: Abnormal Backtrack Buffer Fmt List Nonscalable Printf Psg Rootcause Scalana_mlang Scalana_psg String Vertex
