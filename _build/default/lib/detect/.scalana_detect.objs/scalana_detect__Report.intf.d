lib/detect/report.mli: Format Rootcause Scalana_mlang Scalana_psg
