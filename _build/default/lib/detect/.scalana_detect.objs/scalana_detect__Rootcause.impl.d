lib/detect/rootcause.ml: Abnormal Aggregate Array Backtrack Crossscale Float Hashtbl List Nonscalable Option Ppg Psg Scalana_mlang Scalana_ppg Scalana_psg Vertex
