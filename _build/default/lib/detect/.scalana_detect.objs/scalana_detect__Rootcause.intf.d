lib/detect/rootcause.mli: Abnormal Backtrack Nonscalable Scalana_mlang Scalana_ppg
