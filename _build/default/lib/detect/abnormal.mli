(** Abnormal vertex detection (Section IV-A): at one job scale, flag
    vertices whose time on some ranks deviates from the median by more
    than [abnorm_thd] (paper default 1.3); vertices executed by a
    minority of ranks (median zero) are the load-imbalance shape. *)

type finding = {
  vertex : int;
  ranks : int list;  (** the deviating ranks *)
  max_time : float;
  median_time : float;
  ratio : float;  (** max / median; infinite when the median is zero *)
}

type config = { abnorm_thd : float; min_seconds : float }

val default_config : config

val detect_vertex :
  ?config:config -> Scalana_ppg.Ppg.t -> vertex:int -> finding option

val detect : ?config:config -> Scalana_ppg.Ppg.t -> finding list
val pp_finding : Scalana_psg.Psg.t -> finding Fmt.t
