(* Critical-path analysis over a full trace — the extension the paper's
   related work points at (Chen & Clapp's critical-path candidates).

   The trace is a DAG: events of one rank are ordered sequentially, and
   each receive-like event depends on its matched sends.  The critical
   path is the longest dependence chain ending at the last event; time a
   location contributes to that chain (excluding waiting, which is slack
   by definition) indicates where optimization shortens the run.

   ScalAna's backtracking answers "who caused this wait"; critical-path
   analysis answers "which code bounds the total runtime" — the two
   agree on the planted pathologies, which the test suite checks. *)

open Scalana_mlang
open Scalana_baselines

type segment = {
  seg_loc : Loc.t;
  seg_rank : int;
  seg_label : string;  (* comp label or MPI name *)
  seg_seconds : float;  (* non-waiting time on the critical path *)
}

type t = {
  total : float;  (* end-to-end critical path length *)
  segments : segment list;  (* chronological *)
  by_location : (string * float) list;  (* aggregated, largest first *)
}

(* Reconstruct per-rank event sequences (events arrive per rank in
   chronological logging order). *)
let per_rank_events events =
  let tbl : (int, Tracer.event list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (ev : Tracer.event) ->
      match Hashtbl.find_opt tbl ev.ev_rank with
      | Some l -> l := ev :: !l
      | None -> Hashtbl.add tbl ev.ev_rank (ref [ ev ]))
    events;
  Hashtbl.fold (fun rank l acc -> (rank, List.rev !l) :: acc) tbl []

let label_of (ev : Tracer.event) =
  match ev.ev_kind with
  | Tracer.Comp_region { label = Some l } -> l
  | Tracer.Comp_region { label = None } -> "comp"
  | Tracer.Mpi_event { name; _ } -> name

let wait_of (ev : Tracer.event) =
  match ev.ev_kind with
  | Tracer.Mpi_event { wait; _ } -> wait
  | Tracer.Comp_region _ -> 0.0

(* Walk backwards from the event finishing last: at a receive-like event
   that waited, the chain crosses to the sender (the matched peer active
   at that moment); otherwise it continues to the rank's previous event.
   Peers are identified by (rank, location); we jump to the peer's last
   event at that location finishing before our end time. *)
let analyze ?(hop_epsilon = 1e-4) (events : Tracer.event list) =
  let by_rank = per_rank_events events in
  let arr_of rank = List.assoc_opt rank by_rank in
  let last_event =
    List.fold_left
      (fun best (ev : Tracer.event) ->
        match best with
        | None -> Some ev
        | Some b ->
            if ev.ev_time +. ev.ev_duration > b.Tracer.ev_time +. b.ev_duration
            then Some ev
            else best)
      None events
  in
  match last_event with
  | None -> { total = 0.0; segments = []; by_location = [] }
  | Some final ->
      let segments = ref [] in
      let budget = ref 200_000 in
      let visited : (int * float, unit) Hashtbl.t = Hashtbl.create 1024 in
      let rec walk ?prev rank (before : float) =
        decr budget;
        if !budget <= 0 then ()
        else
          match arr_of rank with
          | None -> ()
          | Some evs -> (
              (* latest event of [rank] ending at or before [before],
                 excluding the event we just came from (zero-duration
                 events would otherwise loop) *)
              let ev =
                List.fold_left
                  (fun best (e : Tracer.event) ->
                    let fin = e.ev_time +. e.ev_duration in
                    if
                      fin <= before +. 1e-12
                      && (match prev with Some p -> p != e | None -> true)
                    then
                      match best with
                      | None -> Some e
                      | Some b ->
                          if fin > b.Tracer.ev_time +. b.ev_duration then Some e
                          else best
                    else best)
                  None evs
              in
              match ev with
              | None -> ()
              | Some ev when Hashtbl.mem visited (rank, ev.ev_time) -> ()
              | Some ev ->
                  Hashtbl.replace visited (rank, ev.ev_time) ();
                  let wait = wait_of ev in
                  let own = Float.max 0.0 (ev.ev_duration -. wait) in
                  if own > 0.0 then
                    segments :=
                      {
                        seg_loc = ev.ev_loc;
                        seg_rank = rank;
                        seg_label = label_of ev;
                        seg_seconds = own;
                      }
                      :: !segments;
                  ignore wait;
                  (match ev.ev_kind with
                  | Tracer.Mpi_event { wait; peers = (peer, _) :: _; _ }
                    when wait > hop_epsilon ->
                      (* the wait was bounded by the peer's progress *)
                      walk ~prev:ev peer (ev.ev_time +. ev.ev_duration)
                  | Tracer.Mpi_event
                      { wait; collective = true; last_arrival_rank = Some late; _ }
                    when wait > hop_epsilon && late <> rank ->
                      walk ~prev:ev late (ev.ev_time +. ev.ev_duration)
                  | _ ->
                      (* no binding remote dependence: the chain continues
                         with whatever this rank did before this event *)
                      walk ~prev:ev rank
                        (ev.ev_time +. Float.min ev.ev_duration 1e-12)))
      in
      walk final.ev_rank (final.ev_time +. final.ev_duration +. 1e-9);
      let segs = !segments in
      let agg : (string, float) Hashtbl.t = Hashtbl.create 32 in
      List.iter
        (fun s ->
          let k = Printf.sprintf "%s@%s" s.seg_label (Loc.to_string s.seg_loc) in
          Hashtbl.replace agg k
            ((try Hashtbl.find agg k with Not_found -> 0.0) +. s.seg_seconds))
        segs;
      let by_location =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) agg []
        |> List.sort (fun (_, a) (_, b) -> compare b a)
      in
      {
        total = List.fold_left (fun acc s -> acc +. s.seg_seconds) 0.0 segs;
        segments = segs;
        by_location;
      }

let top ?(n = 5) t =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take n t.by_location

let pp ppf t =
  Fmt.pf ppf "critical path: %.4fs over %d segments@." t.total
    (List.length t.segments);
  List.iter
    (fun (loc, s) -> Fmt.pf ppf "  %-40s %8.4fs@." loc s)
    (top ~n:8 t)
