(** Critical-path analysis over a full trace (the Chen & Clapp-style
    extension the paper's related work discusses): the longest dependence
    chain through per-rank event sequences and message/collective edges,
    aggregated by source location.

    Complements backtracking: backtracking explains *who caused a wait*;
    the critical path shows *which code bounds the runtime*. *)

open Scalana_mlang

type segment = {
  seg_loc : Loc.t;
  seg_rank : int;
  seg_label : string;
  seg_seconds : float;  (** non-waiting time on the chain *)
}

type t = {
  total : float;
  segments : segment list;
  by_location : (string * float) list;  (** aggregated, largest first *)
}

(** [hop_epsilon] (default 0.1 ms) is the smallest wait treated as a
    binding remote dependence. *)
val analyze : ?hop_epsilon:float -> Scalana_baselines.Tracer.event list -> t
val top : ?n:int -> t -> (string * float) list
val pp : t Fmt.t
