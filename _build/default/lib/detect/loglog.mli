(** Log–log model fitting: ordinary least squares on
    [log T = a + b log P]; the slope is a vertex's changing rate as the
    job scale grows. *)

type fit = { intercept : float; slope : float; r2 : float; n : int }

(** Points with non-positive values are dropped; fewer than two valid
    points yield a zero fit with [n < 2]. *)
val fit : (int * float) list -> fit

val predict : fit -> int -> float

(** -1: time halves when the process count doubles. *)
val ideal_strong_scaling_slope : float
