(** Textual root-cause report: ranked causes with calling paths and
    source snippets (the viewer of Fig. 9 rendered for a terminal). *)

val pp_cause :
  psg:Scalana_psg.Psg.t ->
  ?program:Scalana_mlang.Ast.program ->
  Format.formatter ->
  int * Rootcause.cause ->
  unit

val render :
  ?program:Scalana_mlang.Ast.program ->
  Rootcause.analysis ->
  psg:Scalana_psg.Psg.t ->
  string
