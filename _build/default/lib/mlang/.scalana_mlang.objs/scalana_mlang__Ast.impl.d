lib/mlang/ast.ml: Expr List Loc String
