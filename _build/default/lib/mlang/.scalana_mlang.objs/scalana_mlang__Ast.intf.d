lib/mlang/ast.mli: Expr Loc
