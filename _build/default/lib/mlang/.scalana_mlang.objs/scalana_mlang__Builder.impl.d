lib/mlang/builder.ml: Ast Expr List Loc
