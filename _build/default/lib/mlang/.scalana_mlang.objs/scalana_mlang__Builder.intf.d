lib/mlang/builder.mli: Ast Expr
