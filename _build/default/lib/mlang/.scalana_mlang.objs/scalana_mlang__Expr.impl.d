lib/mlang/expr.ml: Fmt Int List String
