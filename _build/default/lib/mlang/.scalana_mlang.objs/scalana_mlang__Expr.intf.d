lib/mlang/expr.mli: Fmt
