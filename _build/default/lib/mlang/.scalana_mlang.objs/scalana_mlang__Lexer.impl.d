lib/mlang/lexer.ml: Buffer Fmt List Printf String
