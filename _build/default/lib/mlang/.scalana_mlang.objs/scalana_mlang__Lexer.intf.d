lib/mlang/lexer.mli:
