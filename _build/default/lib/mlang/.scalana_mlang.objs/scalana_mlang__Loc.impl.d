lib/mlang/loc.ml: Fmt Hashtbl Int Printf String
