lib/mlang/loc.mli: Fmt
