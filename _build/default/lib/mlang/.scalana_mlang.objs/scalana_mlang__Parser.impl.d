lib/mlang/parser.ml: Array Ast Expr Fmt Lexer List Loc Printexc Printf String
