lib/mlang/pretty.ml: Array Ast Buffer Expr Fmt List Loc Printf String
