lib/mlang/pretty.mli: Ast Fmt Loc
