lib/mlang/validate.ml: Ast Expr Fmt Hashtbl List Loc String
