lib/mlang/validate.mli: Ast Fmt Loc
