(* Combinator DSL for constructing MiniMPI programs in OCaml.

   The builder assigns monotonically increasing line numbers as statements
   are created, so a program written with the DSL gets stable, source-like
   locations: a loop header occupies one line, its body the following
   lines, and the closing brace one more.  Workloads (lib/apps) are
   written against this module. *)

type t = {
  file : string;
  pname : string;
  mutable next_line : int;
  mutable params : (string * int) list;
  mutable funcs : Ast.func list;
}

let create ?(params = []) ~file ~name () =
  { file; pname = name; next_line = 1; params; funcs = [] }

let fresh_loc b =
  let line = b.next_line in
  b.next_line <- line + 1;
  Loc.v ~file:b.file ~line

(* A closing brace consumes a line, keeping nested bodies source-like. *)
let close_brace b = b.next_line <- b.next_line + 1

let param b name value = b.params <- b.params @ [ (name, value) ]

let stmt b node = { Ast.loc = fresh_loc b; node }

let comp b ?label ?ints ?locality ~flops ~mem () =
  stmt b (Ast.Comp (Ast.workload ?label ?ints ?locality ~flops ~mem ()))

let loop b ?label ~var ~count body =
  let loc = fresh_loc b in
  let stmts = body () in
  close_brace b;
  { Ast.loc; node = Ast.Loop { var; count; body = stmts; label } }

let branch b ~cond ?(else_ = fun () -> []) then_ =
  let loc = fresh_loc b in
  let then_stmts = then_ () in
  close_brace b;
  let else_stmts = else_ () in
  (match else_stmts with [] -> () | _ -> close_brace b);
  { Ast.loc; node = Ast.Branch { cond; then_ = then_stmts; else_ = else_stmts } }

let call b ?(args = []) callee = stmt b (Ast.Call { callee; args })
let icall b ~selector targets = stmt b (Ast.Icall { selector; targets })
let let_ b var value = stmt b (Ast.Let { var; value })

let default_tag = Expr.Int 0

let send b ~dest ?(tag = default_tag) ~bytes () =
  stmt b (Ast.Mpi (Ast.Send { dest; tag; bytes }))

let peer_of_opt = function None -> Ast.Any_source | Some e -> Ast.Peer e
let tag_of_opt = function None -> Ast.Any_tag | Some e -> Ast.Tag e

let recv b ?src ?tag ~bytes () =
  stmt b (Ast.Mpi (Ast.Recv { src = peer_of_opt src; tag = tag_of_opt tag; bytes }))

let isend b ~dest ?(tag = default_tag) ~bytes ~req () =
  stmt b (Ast.Mpi (Ast.Isend { dest; tag; bytes; req }))

let irecv b ?src ?tag ~bytes ~req () =
  stmt b
    (Ast.Mpi (Ast.Irecv { src = peer_of_opt src; tag = tag_of_opt tag; bytes; req }))

let wait b ~req = stmt b (Ast.Mpi (Ast.Wait { req }))
let waitall b ~reqs = stmt b (Ast.Mpi (Ast.Waitall { reqs }))

let sendrecv b ~dest ?(stag = default_tag) ~sbytes ?src ?rtag ~rbytes () =
  stmt b
    (Ast.Mpi
       (Ast.Sendrecv
          {
            dest;
            stag;
            sbytes;
            src = peer_of_opt src;
            rtag = tag_of_opt rtag;
            rbytes;
          }))

let barrier b = stmt b (Ast.Mpi Ast.Barrier)

let bcast b ?(root = Expr.Int 0) ~bytes () =
  stmt b (Ast.Mpi (Ast.Bcast { root; bytes }))

let reduce b ?(root = Expr.Int 0) ~bytes () =
  stmt b (Ast.Mpi (Ast.Reduce { root; bytes }))

let allreduce b ~bytes = stmt b (Ast.Mpi (Ast.Allreduce { bytes }))
let alltoall b ~bytes = stmt b (Ast.Mpi (Ast.Alltoall { bytes }))
let allgather b ~bytes = stmt b (Ast.Mpi (Ast.Allgather { bytes }))

let func b ?(params = []) name body =
  let floc = fresh_loc b in
  let fbody = body () in
  close_brace b;
  b.funcs <- b.funcs @ [ { Ast.fname = name; fparams = params; fbody; floc } ]

(* Final location assignment.

   OCaml evaluates list literals in unspecified (typically right-to-left)
   order, so the lines handed out while the DSL thunks run are not
   reliable.  [relocate] renumbers every statement in source order with
   the exact line accounting {!Pretty} uses (one line per simple
   statement, header + body + closing brace for blocks, a "} else {"
   line between branch arms), so rendered sources align with locations
   with no padding. *)
let relocate (p : Ast.program) =
  let line = ref 1 in
  let fresh () =
    let l = !line in
    incr line;
    Loc.v ~file:p.file ~line:l
  in
  let skip () = incr line in
  let rec stmt (s : Ast.stmt) =
    let loc = fresh () in
    let node =
      match s.Ast.node with
      | Ast.Loop l ->
          let body = stmts l.body in
          skip ();
          Ast.Loop { l with body }
      | Ast.Branch b ->
          let then_ = stmts b.then_ in
          skip ();
          let else_ = stmts b.else_ in
          if b.else_ <> [] then skip ();
          Ast.Branch { b with then_; else_ }
      | (Ast.Comp _ | Ast.Call _ | Ast.Icall _ | Ast.Mpi _ | Ast.Let _) as n ->
          n
    in
    { Ast.loc; node }
  and stmts l = List.map stmt l in
  let func (f : Ast.func) =
    let floc = fresh () in
    let fbody = stmts f.fbody in
    skip ();
    { f with Ast.floc; fbody }
  in
  (* the program header and each param line precede the functions *)
  skip ();
  List.iter (fun _ -> skip ()) p.params;
  { p with Ast.funcs = List.map func p.funcs }

let program ?(main = "main") b =
  relocate
    {
      Ast.pname = b.pname;
      file = b.file;
      params = b.params;
      funcs = b.funcs;
      main;
    }
