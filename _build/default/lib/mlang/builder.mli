(** Combinator DSL for constructing MiniMPI programs with stable,
    source-like line numbers. Statements receive consecutive lines in
    creation order; loop/branch/function bodies are passed as thunks so
    the header line precedes the body lines. *)

type t

val create :
  ?params:(string * int) list -> file:string -> name:string -> unit -> t

(** Append a problem-size parameter with its default value. *)
val param : t -> string -> int -> unit

val comp :
  t ->
  ?label:string ->
  ?ints:Expr.t ->
  ?locality:float ->
  flops:Expr.t ->
  mem:Expr.t ->
  unit ->
  Ast.stmt

val loop :
  t ->
  ?label:string ->
  var:string ->
  count:Expr.t ->
  (unit -> Ast.stmt list) ->
  Ast.stmt

val branch :
  t ->
  cond:Expr.t ->
  ?else_:(unit -> Ast.stmt list) ->
  (unit -> Ast.stmt list) ->
  Ast.stmt

val call : t -> ?args:(string * Expr.t) list -> string -> Ast.stmt
val icall : t -> selector:Expr.t -> string list -> Ast.stmt
val let_ : t -> string -> Expr.t -> Ast.stmt
val send : t -> dest:Expr.t -> ?tag:Expr.t -> bytes:Expr.t -> unit -> Ast.stmt

(** [src]/[tag] default to wildcards (any source / any tag). *)
val recv : t -> ?src:Expr.t -> ?tag:Expr.t -> bytes:Expr.t -> unit -> Ast.stmt

val isend :
  t -> dest:Expr.t -> ?tag:Expr.t -> bytes:Expr.t -> req:string -> unit -> Ast.stmt

val irecv :
  t -> ?src:Expr.t -> ?tag:Expr.t -> bytes:Expr.t -> req:string -> unit -> Ast.stmt

val wait : t -> req:string -> Ast.stmt
val waitall : t -> reqs:string list -> Ast.stmt

val sendrecv :
  t ->
  dest:Expr.t ->
  ?stag:Expr.t ->
  sbytes:Expr.t ->
  ?src:Expr.t ->
  ?rtag:Expr.t ->
  rbytes:Expr.t ->
  unit ->
  Ast.stmt

val barrier : t -> Ast.stmt
val bcast : t -> ?root:Expr.t -> bytes:Expr.t -> unit -> Ast.stmt
val reduce : t -> ?root:Expr.t -> bytes:Expr.t -> unit -> Ast.stmt
val allreduce : t -> bytes:Expr.t -> Ast.stmt
val alltoall : t -> bytes:Expr.t -> Ast.stmt
val allgather : t -> bytes:Expr.t -> Ast.stmt

(** Register a function; body statements are created inside the thunk. *)
val func : t -> ?params:string list -> string -> (unit -> Ast.stmt list) -> unit

(** Finalize the program. [main] defaults to ["main"]. *)
val program : ?main:string -> t -> Ast.program
