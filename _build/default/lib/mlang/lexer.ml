(* Hand-written lexer for MiniMPI concrete syntax.

   Keywords are not distinguished from identifiers here; the parser
   matches on identifier spellings.  '//' and '#' start line comments. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | EQUALS
  | DOLLAR
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | CARET
  | BANG
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | ANDAND
  | OROR
  | SHL
  | SHR
  | EOF

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | FLOAT f -> Printf.sprintf "float %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | EQUALS -> "'='"
  | DOLLAR -> "'$'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | CARET -> "'^'"
  | BANG -> "'!'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQEQ -> "'=='"
  | NE -> "'!='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | SHL -> "'<<'"
  | SHR -> "'>>'"
  | EOF -> "end of input"

exception Lex_error of { line : int; msg : string }

let lex_error ~line fmt =
  Fmt.kstr (fun msg -> raise (Lex_error { line; msg })) fmt

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
}

let create src = { src; pos = 0; line = 1 }
let peek_char t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

let advance t =
  (match peek_char t with Some '\n' -> t.line <- t.line + 1 | _ -> ());
  t.pos <- t.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws t =
  match peek_char t with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance t;
      skip_ws t
  | Some '#' ->
      skip_line t;
      skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
      skip_line t;
      skip_ws t
  | _ -> ()

and skip_line t =
  match peek_char t with
  | Some '\n' | None -> ()
  | Some _ ->
      advance t;
      skip_line t

let lex_ident t =
  let start = t.pos in
  while (match peek_char t with Some c -> is_ident_char c | None -> false) do
    advance t
  done;
  String.sub t.src start (t.pos - start)

let lex_number t =
  let start = t.pos in
  while (match peek_char t with Some c -> is_digit c | None -> false) do
    advance t
  done;
  let is_float =
    match peek_char t with
    | Some '.' when t.pos + 1 < String.length t.src && is_digit t.src.[t.pos + 1]
      ->
        advance t;
        while (match peek_char t with Some c -> is_digit c | None -> false) do
          advance t
        done;
        true
    | _ -> false
  in
  let text = String.sub t.src start (t.pos - start) in
  if is_float then FLOAT (float_of_string text) else INT (int_of_string text)

let lex_string t =
  let line = t.line in
  advance t;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char t with
    | None -> lex_error ~line "unterminated string literal"
    | Some '"' -> advance t
    | Some '\\' ->
        advance t;
        (match peek_char t with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some c -> Buffer.add_char buf c
        | None -> lex_error ~line "unterminated escape");
        advance t;
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance t;
        go ()
  in
  go ();
  Buffer.contents buf

(* Returns the next token with the line it starts on. *)
let next t =
  skip_ws t;
  let line = t.line in
  let tok =
    match peek_char t with
    | None -> EOF
    | Some c when is_ident_start c -> IDENT (lex_ident t)
    | Some c when is_digit c -> lex_number t
    | Some '"' -> STRING (lex_string t)
    | Some c ->
        let two expected tok_two tok_one =
          advance t;
          if peek_char t = Some expected then (
            advance t;
            tok_two)
          else tok_one
        in
        (match c with
        | '(' -> advance t; LPAREN
        | ')' -> advance t; RPAREN
        | '{' -> advance t; LBRACE
        | '}' -> advance t; RBRACE
        | ',' -> advance t; COMMA
        | ';' -> advance t; SEMI
        | '$' -> advance t; DOLLAR
        | '+' -> advance t; PLUS
        | '-' -> advance t; MINUS
        | '*' -> advance t; STAR
        | '/' -> advance t; SLASH
        | '%' -> advance t; PERCENT
        | '^' -> advance t; CARET
        | '=' -> two '=' EQEQ EQUALS
        | '!' -> two '=' NE BANG
        | '<' -> (
            advance t;
            match peek_char t with
            | Some '=' -> advance t; LE
            | Some '<' -> advance t; SHL
            | _ -> LT)
        | '>' -> (
            advance t;
            match peek_char t with
            | Some '=' -> advance t; GE
            | Some '>' -> advance t; SHR
            | _ -> GT)
        | '&' -> (
            advance t;
            match peek_char t with
            | Some '&' -> advance t; ANDAND
            | _ -> lex_error ~line "expected '&&'")
        | '|' -> (
            advance t;
            match peek_char t with
            | Some '|' -> advance t; OROR
            | _ -> lex_error ~line "expected '||'")
        | c -> lex_error ~line "unexpected character %C" c)
  in
  (tok, line)

let tokenize src =
  let t = create src in
  let rec go acc =
    match next t with
    | (EOF, line) -> List.rev ((EOF, line) :: acc)
    | tok -> go (tok :: acc)
  in
  go []
