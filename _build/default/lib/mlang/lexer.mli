(** Lexer for MiniMPI concrete syntax. Keywords are plain identifiers;
    the parser matches their spellings. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | EQUALS
  | DOLLAR
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | CARET
  | BANG
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | ANDAND
  | OROR
  | SHL
  | SHR
  | EOF

exception Lex_error of { line : int; msg : string }

val token_name : token -> string

(** Tokenize a whole source, each token paired with its 1-based line.
    The final element is always [EOF]. *)
val tokenize : string -> (token * int) list
