(* Source locations for MiniMPI programs.

   Every statement of a MiniMPI program carries a location; the whole
   analysis pipeline (PSG vertices, PPG vertices, root-cause reports)
   refers back to these, mirroring ScalAna's "report line numbers back to
   the programmer" contract. *)

type t = { file : string; line : int }

let v ~file ~line = { file; line }
let none = { file = "<builtin>"; line = 0 }
let file t = t.file
let line t = t.line
let equal a b = String.equal a.file b.file && Int.equal a.line b.line
let compare a b =
  match String.compare a.file b.file with
  | 0 -> Int.compare a.line b.line
  | c -> c

let hash t = Hashtbl.hash (t.file, t.line)
let to_string t = Printf.sprintf "%s:%d" t.file t.line
let pp ppf t = Fmt.string ppf (to_string t)
