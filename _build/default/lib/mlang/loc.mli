(** Source locations for MiniMPI programs. *)

type t = { file : string; line : int }

val v : file:string -> line:int -> t

(** Location used for synthesized nodes that have no source position. *)
val none : t

val file : t -> string
val line : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_string : t -> string
val pp : t Fmt.t
