(* Recursive-descent parser for MiniMPI concrete syntax.

   Grammar (field order in statements is fixed, matching Pretty's output):

     program  ::= 'program' STRING param* func*
     param    ::= 'param' IDENT '=' ['-'] INT
     func     ::= 'func' IDENT '(' [IDENT {',' IDENT}] ')' '{' stmt* '}'
     stmt     ::= 'let' IDENT '=' expr ';'
                | 'loop' IDENT '=' expr ['label' STRING] '{' stmt* '}'
                | 'if' expr '{' stmt* '}' ['else' '{' stmt* '}']
                | 'comp' ['label' STRING] 'flops' '=' expr 'mem' '=' expr
                         'ints' '=' expr 'locality' '=' number ';'
                | 'call' IDENT '(' [IDENT '=' expr {',' ...}] ')' ';'
                | 'icall' 'sel' '=' expr '(' IDENT {',' IDENT} ')' ';'
                | mpi ';'
     expr     ::= precedence-climbing over || && cmp ^ shift +- */% unary
     primary  ::= INT | 'rank' | 'np' | '$' IDENT | IDENT
                | 'min'|'max' '(' expr ',' expr ')' | '(' expr ')'  *)

exception Parse_error of { line : int; msg : string }

let parse_error ~line fmt =
  Fmt.kstr (fun msg -> raise (Parse_error { line; msg })) fmt

let error_to_string = function
  | Parse_error { line; msg } -> Printf.sprintf "line %d: %s" line msg
  | Lexer.Lex_error { line; msg } -> Printf.sprintf "line %d: %s" line msg
  | e -> Printexc.to_string e

type st = {
  toks : (Lexer.token * int) array;
  mutable pos : int;
  file : string;
}

let peek st = fst st.toks.(st.pos)
let peek_line st = snd st.toks.(st.pos)
let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let next st =
  let tok = peek st in
  advance st;
  tok

let expect st tok =
  let got = peek st in
  if got = tok then advance st
  else
    parse_error ~line:(peek_line st) "expected %s but found %s"
      (Lexer.token_name tok) (Lexer.token_name got)

let ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | got ->
      parse_error ~line:(peek_line st) "expected identifier, found %s"
        (Lexer.token_name got)

let keyword st kw =
  let line = peek_line st in
  let s = ident st in
  if not (String.equal s kw) then
    parse_error ~line "expected %S, found %S" kw s

let string_lit st =
  match peek st with
  | Lexer.STRING s ->
      advance st;
      s
  | got ->
      parse_error ~line:(peek_line st) "expected string literal, found %s"
        (Lexer.token_name got)

let int_lit st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      n
  | Lexer.MINUS ->
      advance st;
      (match peek st with
      | Lexer.INT n ->
          advance st;
          -n
      | got ->
          parse_error ~line:(peek_line st) "expected integer, found %s"
            (Lexer.token_name got))
  | got ->
      parse_error ~line:(peek_line st) "expected integer, found %s"
        (Lexer.token_name got)

let number st =
  match peek st with
  | Lexer.FLOAT f ->
      advance st;
      f
  | Lexer.INT n ->
      advance st;
      float_of_int n
  | got ->
      parse_error ~line:(peek_line st) "expected number, found %s"
        (Lexer.token_name got)

(* --- expressions, precedence climbing --- *)

let rec expr st = or_expr st

and or_expr st =
  let rec go lhs =
    match peek st with
    | Lexer.OROR ->
        advance st;
        go (Expr.Bin (Expr.Or, lhs, and_expr st))
    | _ -> lhs
  in
  go (and_expr st)

and and_expr st =
  let rec go lhs =
    match peek st with
    | Lexer.ANDAND ->
        advance st;
        go (Expr.Bin (Expr.And, lhs, cmp_expr st))
    | _ -> lhs
  in
  go (cmp_expr st)

and cmp_expr st =
  let lhs = xor_expr st in
  let op =
    match peek st with
    | Lexer.LT -> Some Expr.Lt
    | Lexer.LE -> Some Expr.Le
    | Lexer.GT -> Some Expr.Gt
    | Lexer.GE -> Some Expr.Ge
    | Lexer.EQEQ -> Some Expr.Eq
    | Lexer.NE -> Some Expr.Ne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Expr.Bin (op, lhs, xor_expr st)

and xor_expr st =
  let rec go lhs =
    match peek st with
    | Lexer.CARET ->
        advance st;
        go (Expr.Bin (Expr.Xor, lhs, shift_expr st))
    | _ -> lhs
  in
  go (shift_expr st)

and shift_expr st =
  let rec go lhs =
    match peek st with
    | Lexer.SHL ->
        advance st;
        go (Expr.Bin (Expr.Shl, lhs, add_expr st))
    | Lexer.SHR ->
        advance st;
        go (Expr.Bin (Expr.Shr, lhs, add_expr st))
    | _ -> lhs
  in
  go (add_expr st)

and add_expr st =
  let rec go lhs =
    match peek st with
    | Lexer.PLUS ->
        advance st;
        go (Expr.Bin (Expr.Add, lhs, mul_expr st))
    | Lexer.MINUS ->
        advance st;
        go (Expr.Bin (Expr.Sub, lhs, mul_expr st))
    | _ -> lhs
  in
  go (mul_expr st)

and mul_expr st =
  let rec go lhs =
    match peek st with
    | Lexer.STAR ->
        advance st;
        go (Expr.Bin (Expr.Mul, lhs, unary_expr st))
    | Lexer.SLASH ->
        advance st;
        go (Expr.Bin (Expr.Div, lhs, unary_expr st))
    | Lexer.PERCENT ->
        advance st;
        go (Expr.Bin (Expr.Mod, lhs, unary_expr st))
    | _ -> lhs
  in
  go (unary_expr st)

and unary_expr st =
  match peek st with
  | Lexer.MINUS ->
      advance st;
      Expr.Neg (unary_expr st)
  | Lexer.BANG ->
      advance st;
      Expr.Not (unary_expr st)
  | _ -> primary st

and primary st =
  match next st with
  | Lexer.INT n -> Expr.Int n
  | Lexer.DOLLAR -> Expr.Param (ident st)
  | Lexer.LPAREN ->
      let e = expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.IDENT "rank" -> Expr.Rank
  | Lexer.IDENT "np" -> Expr.Nprocs
  | Lexer.IDENT (("log2" | "isqrt") as f) when peek st = Lexer.LPAREN ->
      expect st Lexer.LPAREN;
      let a = expr st in
      expect st Lexer.RPAREN;
      if f = "log2" then Expr.Log2 a else Expr.Isqrt a
  | Lexer.IDENT (("min" | "max") as f) when peek st = Lexer.LPAREN ->
      expect st Lexer.LPAREN;
      let a = expr st in
      expect st Lexer.COMMA;
      let b = expr st in
      expect st Lexer.RPAREN;
      Expr.Bin ((if f = "min" then Expr.Min else Expr.Max), a, b)
  | Lexer.IDENT v -> Expr.Var v
  | got ->
      parse_error ~line:(peek_line st) "expected expression, found %s"
        (Lexer.token_name got)

(* --- statement fields --- *)

let field st name =
  keyword st name;
  expect st Lexer.EQUALS;
  expr st

let peer_field st name =
  keyword st name;
  expect st Lexer.EQUALS;
  match peek st with
  | Lexer.IDENT "any" ->
      advance st;
      Ast.Any_source
  | _ -> Ast.Peer (expr st)

let tag_field st name =
  keyword st name;
  expect st Lexer.EQUALS;
  match peek st with
  | Lexer.IDENT "any" ->
      advance st;
      Ast.Any_tag
  | _ -> Ast.Tag (expr st)

let req_field st name =
  keyword st name;
  expect st Lexer.EQUALS;
  ident st

let opt_label st =
  match peek st with
  | Lexer.IDENT "label" ->
      advance st;
      Some (string_lit st)
  | _ -> None

let ident_list st =
  expect st Lexer.LPAREN;
  let rec go acc =
    match peek st with
    | Lexer.RPAREN ->
        advance st;
        List.rev acc
    | Lexer.COMMA ->
        advance st;
        go acc
    | _ -> go (ident st :: acc)
  in
  go []

(* --- statements --- *)

let loc_of st line = Loc.v ~file:st.file ~line

let rec stmts_until_rbrace st =
  let rec go acc =
    match peek st with
    | Lexer.RBRACE ->
        advance st;
        List.rev acc
    | Lexer.EOF -> parse_error ~line:(peek_line st) "unexpected end of input"
    | _ -> go (stmt st :: acc)
  in
  go []

and block st =
  expect st Lexer.LBRACE;
  stmts_until_rbrace st

and stmt st =
  let line = peek_line st in
  let loc = loc_of st line in
  let kw = ident st in
  let node =
    match kw with
    | "let" ->
        let var = ident st in
        expect st Lexer.EQUALS;
        let value = expr st in
        expect st Lexer.SEMI;
        Ast.Let { var; value }
    | "loop" ->
        let var = ident st in
        expect st Lexer.EQUALS;
        let count = expr st in
        let label = opt_label st in
        let body = block st in
        Ast.Loop { var; count; body; label }
    | "if" ->
        let cond = expr st in
        let then_ = block st in
        let else_ =
          match peek st with
          | Lexer.IDENT "else" ->
              advance st;
              block st
          | _ -> []
        in
        Ast.Branch { cond; then_; else_ }
    | "comp" ->
        let label = opt_label st in
        let flops = field st "flops" in
        let mem = field st "mem" in
        let ints = field st "ints" in
        keyword st "locality";
        expect st Lexer.EQUALS;
        let locality = number st in
        expect st Lexer.SEMI;
        Ast.Comp { label; flops; mem; ints; locality }
    | "call" ->
        let callee = ident st in
        expect st Lexer.LPAREN;
        let rec args acc =
          match peek st with
          | Lexer.RPAREN ->
              advance st;
              List.rev acc
          | Lexer.COMMA ->
              advance st;
              args acc
          | _ ->
              let name = ident st in
              expect st Lexer.EQUALS;
              let e = expr st in
              args ((name, e) :: acc)
        in
        let args = args [] in
        expect st Lexer.SEMI;
        Ast.Call { callee; args }
    | "icall" ->
        let selector = field st "sel" in
        let targets = ident_list st in
        expect st Lexer.SEMI;
        Ast.Icall { selector; targets }
    | "send" ->
        let dest = field st "dest" in
        let tag = field st "tag" in
        let bytes = field st "bytes" in
        expect st Lexer.SEMI;
        Ast.Mpi (Ast.Send { dest; tag; bytes })
    | "recv" ->
        let src = peer_field st "src" in
        let tag = tag_field st "tag" in
        let bytes = field st "bytes" in
        expect st Lexer.SEMI;
        Ast.Mpi (Ast.Recv { src; tag; bytes })
    | "isend" ->
        let dest = field st "dest" in
        let tag = field st "tag" in
        let bytes = field st "bytes" in
        let req = req_field st "req" in
        expect st Lexer.SEMI;
        Ast.Mpi (Ast.Isend { dest; tag; bytes; req })
    | "irecv" ->
        let src = peer_field st "src" in
        let tag = tag_field st "tag" in
        let bytes = field st "bytes" in
        let req = req_field st "req" in
        expect st Lexer.SEMI;
        Ast.Mpi (Ast.Irecv { src; tag; bytes; req })
    | "wait" ->
        let req = req_field st "req" in
        expect st Lexer.SEMI;
        Ast.Mpi (Ast.Wait { req })
    | "waitall" ->
        keyword st "reqs";
        expect st Lexer.EQUALS;
        let reqs = ident_list st in
        expect st Lexer.SEMI;
        Ast.Mpi (Ast.Waitall { reqs })
    | "sendrecv" ->
        let dest = field st "dest" in
        let stag = field st "stag" in
        let sbytes = field st "sbytes" in
        let src = peer_field st "src" in
        let rtag = tag_field st "rtag" in
        let rbytes = field st "rbytes" in
        expect st Lexer.SEMI;
        Ast.Mpi (Ast.Sendrecv { dest; stag; sbytes; src; rtag; rbytes })
    | "barrier" ->
        expect st Lexer.SEMI;
        Ast.Mpi Ast.Barrier
    | "bcast" ->
        let root = field st "root" in
        let bytes = field st "bytes" in
        expect st Lexer.SEMI;
        Ast.Mpi (Ast.Bcast { root; bytes })
    | "reduce" ->
        let root = field st "root" in
        let bytes = field st "bytes" in
        expect st Lexer.SEMI;
        Ast.Mpi (Ast.Reduce { root; bytes })
    | "allreduce" ->
        let bytes = field st "bytes" in
        expect st Lexer.SEMI;
        Ast.Mpi (Ast.Allreduce { bytes })
    | "alltoall" ->
        let bytes = field st "bytes" in
        expect st Lexer.SEMI;
        Ast.Mpi (Ast.Alltoall { bytes })
    | "allgather" ->
        let bytes = field st "bytes" in
        expect st Lexer.SEMI;
        Ast.Mpi (Ast.Allgather { bytes })
    | other -> parse_error ~line "unknown statement keyword %S" other
  in
  { Ast.loc; node }

let func st =
  let line = peek_line st in
  keyword st "func";
  let floc = loc_of st line in
  let fname = ident st in
  let fparams = ident_list st in
  let fbody = block st in
  { Ast.fname; fparams; fbody; floc }

let parse ?(file = "<string>") src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0; file } in
  keyword st "program";
  let pname = string_lit st in
  let rec params acc =
    match peek st with
    | Lexer.IDENT "param" ->
        advance st;
        let name = ident st in
        expect st Lexer.EQUALS;
        let value = int_lit st in
        params ((name, value) :: acc)
    | _ -> List.rev acc
  in
  let params = params [] in
  let rec funcs acc =
    match peek st with
    | Lexer.EOF -> List.rev acc
    | _ -> funcs (func st :: acc)
  in
  let funcs = funcs [] in
  { Ast.pname; file; params; funcs; main = "main" }

let parse_result ?file src =
  match parse ?file src with
  | p -> Ok p
  | exception ((Parse_error _ | Lexer.Lex_error _) as e) ->
      Error (error_to_string e)
