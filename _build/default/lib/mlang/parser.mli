(** Recursive-descent parser for MiniMPI concrete syntax (the grammar is
    documented at the top of the implementation; {!Pretty.render} emits
    exactly this syntax). *)

exception Parse_error of { line : int; msg : string }

val error_to_string : exn -> string

(** [parse ~file src] parses a whole program. Statement locations use
    [file] and the 1-based source line. Raises {!Parse_error} or
    {!Lexer.Lex_error}. *)
val parse : ?file:string -> string -> Ast.program

val parse_result : ?file:string -> string -> (Ast.program, string) result
