(* Canonical concrete-syntax renderer for MiniMPI.

   [render] emits the syntax accepted by {!Parser}, so
   [render (Parser.parse (render p)) = render p] — the round-trip property
   tested in the suite.  [snippet] extracts the few lines of the statement
   at a location, which is what the viewer shows under a diagnosed root
   cause (the paper's Fig. 9 lower window). *)

let pp_peer ppf = function
  | Ast.Any_source -> Fmt.string ppf "any"
  | Ast.Peer e -> Expr.pp ppf e

let pp_tag ppf = function
  | Ast.Any_tag -> Fmt.string ppf "any"
  | Ast.Tag e -> Expr.pp ppf e

let pp_mpi ppf call =
  match call with
  | Ast.Send { dest; tag; bytes } ->
      Fmt.pf ppf "send dest=%a tag=%a bytes=%a;" Expr.pp dest Expr.pp tag
        Expr.pp bytes
  | Ast.Recv { src; tag; bytes } ->
      Fmt.pf ppf "recv src=%a tag=%a bytes=%a;" pp_peer src pp_tag tag Expr.pp
        bytes
  | Ast.Isend { dest; tag; bytes; req } ->
      Fmt.pf ppf "isend dest=%a tag=%a bytes=%a req=%s;" Expr.pp dest Expr.pp
        tag Expr.pp bytes req
  | Ast.Irecv { src; tag; bytes; req } ->
      Fmt.pf ppf "irecv src=%a tag=%a bytes=%a req=%s;" pp_peer src pp_tag tag
        Expr.pp bytes req
  | Ast.Wait { req } -> Fmt.pf ppf "wait req=%s;" req
  | Ast.Waitall { reqs } ->
      Fmt.pf ppf "waitall reqs=(%s);" (String.concat ", " reqs)
  | Ast.Sendrecv { dest; stag; sbytes; src; rtag; rbytes } ->
      Fmt.pf ppf "sendrecv dest=%a stag=%a sbytes=%a src=%a rtag=%a rbytes=%a;"
        Expr.pp dest Expr.pp stag Expr.pp sbytes pp_peer src pp_tag rtag
        Expr.pp rbytes
  | Ast.Barrier -> Fmt.string ppf "barrier;"
  | Ast.Bcast { root; bytes } ->
      Fmt.pf ppf "bcast root=%a bytes=%a;" Expr.pp root Expr.pp bytes
  | Ast.Reduce { root; bytes } ->
      Fmt.pf ppf "reduce root=%a bytes=%a;" Expr.pp root Expr.pp bytes
  | Ast.Allreduce { bytes } -> Fmt.pf ppf "allreduce bytes=%a;" Expr.pp bytes
  | Ast.Alltoall { bytes } -> Fmt.pf ppf "alltoall bytes=%a;" Expr.pp bytes
  | Ast.Allgather { bytes } -> Fmt.pf ppf "allgather bytes=%a;" Expr.pp bytes

let pp_label ppf = function
  | None -> ()
  | Some l -> Fmt.pf ppf " label %S" l

(* Rendering tracks the emitted line number so statements land exactly on
   [Loc.line stmt.loc] when the program came from {!Builder} — blank lines
   are inserted to pad, which keeps reports and rendered sources aligned. *)
type out = { buf : Buffer.t; mutable line : int }

let emit out ~indent s =
  Buffer.add_string out.buf (String.make (2 * indent) ' ');
  Buffer.add_string out.buf s;
  Buffer.add_char out.buf '\n';
  out.line <- out.line + 1

let pad_to out target_line =
  while out.line < target_line do
    Buffer.add_char out.buf '\n';
    out.line <- out.line + 1
  done

let stmt_line (s : Ast.stmt) = Loc.line s.loc

let rec emit_stmt out ~indent (s : Ast.stmt) =
  pad_to out (stmt_line s);
  match s.node with
  | Ast.Comp w ->
      let label = Fmt.str "%a" pp_label w.label in
      emit out ~indent
        (Fmt.str "comp%s flops=%a mem=%a ints=%a locality=%g;" label Expr.pp
           w.flops Expr.pp w.mem Expr.pp w.ints w.locality)
  | Ast.Loop l ->
      emit out ~indent
        (Fmt.str "loop %s = %a%a {" l.var Expr.pp l.count pp_label l.label);
      List.iter (emit_stmt out ~indent:(indent + 1)) l.body;
      emit out ~indent "}"
  | Ast.Branch b ->
      emit out ~indent (Fmt.str "if %a {" Expr.pp b.cond);
      List.iter (emit_stmt out ~indent:(indent + 1)) b.then_;
      if b.else_ = [] then emit out ~indent "}"
      else begin
        emit out ~indent "} else {";
        List.iter (emit_stmt out ~indent:(indent + 1)) b.else_;
        emit out ~indent "}"
      end
  | Ast.Call { callee; args } ->
      let arg (n, e) = Printf.sprintf "%s=%s" n (Expr.to_string e) in
      emit out ~indent
        (Fmt.str "call %s(%s);" callee (String.concat ", " (List.map arg args)))
  | Ast.Icall { selector; targets } ->
      emit out ~indent
        (Fmt.str "icall sel=%a (%s);" Expr.pp selector
           (String.concat ", " targets))
  | Ast.Mpi call -> emit out ~indent (Fmt.str "%a" pp_mpi call)
  | Ast.Let { var; value } ->
      emit out ~indent (Fmt.str "let %s = %a;" var Expr.pp value)

let emit_func out (f : Ast.func) =
  pad_to out (Loc.line f.floc);
  emit out ~indent:0
    (Fmt.str "func %s(%s) {" f.fname (String.concat ", " f.fparams));
  List.iter (emit_stmt out ~indent:1) f.fbody;
  emit out ~indent:0 "}"

let render (p : Ast.program) =
  let out = { buf = Buffer.create 4096; line = 1 } in
  emit out ~indent:0 (Fmt.str "program %S" p.pname);
  List.iter
    (fun (name, value) ->
      emit out ~indent:0 (Fmt.str "param %s = %d" name value))
    p.params;
  List.iter (emit_func out) p.funcs;
  Buffer.contents out.buf

let render_lines p = String.split_on_char '\n' (render p)

let snippet ?(context = 1) p loc =
  let lines = Array.of_list (render_lines p) in
  let n = Array.length lines in
  let target = Loc.line loc in
  if target < 1 || target > n then []
  else begin
    let lo = max 1 (target - context) and hi = min n (target + context) in
    let acc = ref [] in
    for i = hi downto lo do
      if i >= 1 && i <= n then
        acc := Fmt.str "%4d | %s" i lines.(i - 1) :: !acc
    done;
    !acc
  end
