(** Canonical concrete-syntax renderer for MiniMPI programs.

    The output parses back with {!Parser}, and statements are emitted on
    exactly the line recorded in their location (blank-line padding), so
    rendered sources line up with analysis reports. *)

val render : Ast.program -> string
val render_lines : Ast.program -> string list

(** [snippet p loc] returns the rendered source lines around [loc],
    prefixed with line numbers — the viewer's code window. *)
val snippet : ?context:int -> Ast.program -> Loc.t -> string list

val pp_mpi : Ast.mpi_call Fmt.t
val pp_peer : Ast.peer Fmt.t
val pp_tag : Ast.tag Fmt.t
