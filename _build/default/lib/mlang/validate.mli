(** Well-formedness checks for MiniMPI programs: unresolved or mis-typed
    calls, unbound variables/parameters, dangling request handles,
    out-of-range localities. *)

type error = { loc : Loc.t; msg : string }

val pp_error : error Fmt.t
val error_to_string : error -> string
val run : Ast.program -> (unit, error list) result

(** Raises [Invalid_argument] with all messages when validation fails. *)
val run_exn : Ast.program -> unit
