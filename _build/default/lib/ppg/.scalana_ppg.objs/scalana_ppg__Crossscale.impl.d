lib/ppg/crossscale.ml: Hashtbl List Ppg Profdata Scalana_profile Scalana_psg
