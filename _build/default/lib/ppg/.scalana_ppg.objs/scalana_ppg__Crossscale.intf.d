lib/ppg/crossscale.mli: Ppg Profdata Scalana_profile Scalana_psg
