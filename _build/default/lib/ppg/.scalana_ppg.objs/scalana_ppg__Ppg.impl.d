lib/ppg/ppg.ml: Array Commrec Hashtbl List Perfvec Profdata Psg Scalana_profile Scalana_psg
