lib/ppg/ppg.mli: Hashtbl Perfvec Profdata Psg Scalana_profile Scalana_psg
