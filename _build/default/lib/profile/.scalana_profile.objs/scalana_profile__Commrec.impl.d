lib/profile/commrec.ml: Float Hashtbl
