lib/profile/commrec.mli: Hashtbl
