lib/profile/perfvec.ml: Hashtbl Pmu Scalana_runtime
