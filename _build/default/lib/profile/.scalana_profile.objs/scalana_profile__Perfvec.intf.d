lib/profile/perfvec.mli: Hashtbl Pmu Scalana_runtime
