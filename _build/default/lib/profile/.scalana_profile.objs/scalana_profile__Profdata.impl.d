lib/profile/profdata.ml: Array Commrec Hashtbl List Perfvec
