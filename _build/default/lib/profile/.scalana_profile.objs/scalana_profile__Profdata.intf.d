lib/profile/profdata.mli: Commrec Hashtbl Perfvec
