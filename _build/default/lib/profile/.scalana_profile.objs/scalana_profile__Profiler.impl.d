lib/profile/profiler.ml: Array Commrec Index Instrument List Perfvec Pmu Profdata Random Scalana_psg Scalana_runtime
