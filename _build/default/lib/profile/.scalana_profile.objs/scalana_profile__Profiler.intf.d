lib/profile/profiler.mli: Index Instrument Profdata Scalana_psg Scalana_runtime
