(* Per-vertex performance vectors (Section III-B1).

   One vector per (rank, contracted-PSG vertex): estimated execution time
   (from sampling), sampled hardware counters, exact accumulated MPI wait
   time and invocation counts. *)

open Scalana_runtime

type t = {
  mutable time : float;  (* estimated seconds attributed by sampling *)
  mutable samples : int;
  mutable pmu : Pmu.t;
  mutable wait : float;  (* exact accumulated wait seconds *)
  mutable calls : int;  (* MPI invocations at this vertex *)
}

let create () =
  { time = 0.0; samples = 0; pmu = Pmu.zero; wait = 0.0; calls = 0 }

let add_sampled v ~time ~samples ~pmu =
  v.time <- v.time +. time;
  v.samples <- v.samples + samples;
  v.pmu <- Pmu.add v.pmu pmu

let add_wait v ~wait =
  v.wait <- v.wait +. wait;
  v.calls <- v.calls + 1

(* Serialized size model: vertex id + 5 floats + 2 ints, packed. *)
let bytes_per_vector = 24

type per_rank = (int, t) Hashtbl.t

let rank_table () : per_rank = Hashtbl.create 64

let find_or_add (tbl : per_rank) vid =
  match Hashtbl.find_opt tbl vid with
  | Some v -> v
  | None ->
      let v = create () in
      Hashtbl.add tbl vid v;
      v

let merge_into ~(dst : t) (src : t) =
  dst.time <- dst.time +. src.time;
  dst.samples <- dst.samples + src.samples;
  dst.pmu <- Pmu.add dst.pmu src.pmu;
  dst.wait <- dst.wait +. src.wait;
  dst.calls <- dst.calls + src.calls
