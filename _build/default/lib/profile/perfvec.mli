(** Per-vertex performance vectors (Section III-B1): sampled execution
    time and counters, exact MPI wait time and invocation counts, one per
    (rank, contracted-PSG vertex). *)

open Scalana_runtime

type t = {
  mutable time : float;  (** estimated seconds attributed by sampling *)
  mutable samples : int;
  mutable pmu : Pmu.t;
  mutable wait : float;  (** exact accumulated wait seconds *)
  mutable calls : int;  (** MPI invocations at this vertex *)
}

val create : unit -> t
val add_sampled : t -> time:float -> samples:int -> pmu:Pmu.t -> unit
val add_wait : t -> wait:float -> unit

(** Serialized size model for storage accounting. *)
val bytes_per_vector : int

type per_rank = (int, t) Hashtbl.t

val rank_table : unit -> per_rank
val find_or_add : per_rank -> int -> t
val merge_into : dst:t -> t -> unit
