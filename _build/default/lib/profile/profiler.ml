(* The ScalAna runtime tool: PAPI-style timer sampling plus PMPI-style
   interposition with random-sampling instrumentation and graph-guided
   compression.  Plugs into the simulator through {!Scalana_runtime.Instrument}
   and fills a {!Profdata.t}. *)

open Scalana_psg
open Scalana_runtime

type config = {
  freq : float;  (* sampling frequency, Hz (paper: 200) *)
  per_sample_cost : float;  (* seconds per interrupt + unwind *)
  record_prob : float;  (* random-sampling instrumentation threshold *)
  per_record_cost : float;  (* seconds to append one comm record *)
  per_call_cost : float;  (* seconds of fixed wrapper cost per MPI call *)
  wait_epsilon : float;  (* a wait above this marks the edge as waiting *)
  seed : int;
}

let default_config =
  {
    freq = 200.0;
    per_sample_cost = 150.0e-6;
    record_prob = 0.5;
    per_record_cost = 5.0e-6;
    per_call_cost = 0.5e-6;
    wait_epsilon = 20.0e-6;
    seed = 42;
  }

type t = {
  cfg : config;
  index : Index.t;
  data : Profdata.t;
  next_tick : float array;  (* per rank *)
  rngs : Random.State.t array;  (* per rank, deterministic *)
}

let create ?(config = default_config) ~index ~nprocs () =
  {
    cfg = config;
    index;
    data = Profdata.create ~nprocs;
    next_tick = Array.make nprocs (1.0 /. config.freq);
    rngs =
      Array.init nprocs (fun r ->
          Random.State.make [| config.seed; r; 0x5ca1 |]);
  }

let data t = t.data

(* Count sampling ticks inside [start, stop) for [rank]; ticks skipped by
   clock jumps (tool overhead) are dropped, as a real timer would. *)
let ticks t ~rank ~start ~stop =
  let period = 1.0 /. t.cfg.freq in
  if t.next_tick.(rank) < start then t.next_tick.(rank) <- start;
  let n = ref 0 in
  while t.next_tick.(rank) < stop do
    incr n;
    t.next_tick.(rank) <- t.next_tick.(rank) +. period
  done;
  !n

let resolve t (ctx : Instrument.ctx) =
  Index.find t.index ~callpath:ctx.callpath ~loc:ctx.loc

let on_interval t (ctx : Instrument.ctx) ~stop activity =
  let n = ticks t ~rank:ctx.rank ~start:ctx.time ~stop in
  if n = 0 then 0.0
  else begin
    let period = 1.0 /. t.cfg.freq in
    let est_time = float_of_int n *. period in
    t.data.total_samples <- t.data.total_samples + n;
    (match resolve t ctx with
    | None -> t.data.unattributed_samples <- t.data.unattributed_samples + n
    | Some vid ->
        let v = Profdata.vector t.data ~rank:ctx.rank ~vertex:vid in
        let duration = stop -. ctx.time in
        (* attribute counter deltas at the sampling rate: pmu-rate of the
           span times the sampled time — unbiased like PAPI's interrupt
           deltas, regardless of span length *)
        let pmu =
          match activity with
          | Instrument.Compute { pmu; _ } when duration > 0.0 ->
              Pmu.scale (est_time /. duration) pmu
          | Instrument.Compute { pmu; _ } -> pmu
          | Instrument.Mpi_span _ -> Pmu.zero
        in
        Perfvec.add_sampled v ~time:est_time ~samples:n ~pmu);
    (* Samples landing inside an MPI wait overlap the blocked time: the
       interrupt handler runs while the process would be idle, so it does
       not extend the critical path.  Only compute-span samples perturb
       the run (charging them on waits compounds exponentially along
       pipeline dependence chains). *)
    match activity with
    | Instrument.Compute _ -> float_of_int n *. t.cfg.per_sample_cost
    | Instrument.Mpi_span _ -> 0.0
  end

let on_mpi_exit t (ctx : Instrument.ctx) (info : Instrument.mpi_exit) =
  t.data.mpi_calls_seen <- t.data.mpi_calls_seen + 1;
  let overhead = ref t.cfg.per_call_cost in
  (match resolve t ctx with
  | None -> ()
  | Some vid -> (
      let v = Profdata.vector t.data ~rank:ctx.rank ~vertex:vid in
      Perfvec.add_wait v ~wait:info.wait_seconds;
      (* random-sampling instrumentation: record parameters only when the
         draw falls below the threshold (Section III-B2) *)
      let record =
        Random.State.float t.rngs.(ctx.rank) 1.0 < t.cfg.record_prob
      in
      if record then
        match info.collective with
        | Some c ->
            t.data.records_taken <- t.data.records_taken + 1;
            overhead := !overhead +. t.cfg.per_record_cost;
            Commrec.record_coll t.data.comm ~vertex:vid
              ~last_arrival_rank:c.last_arrival_rank
        | None ->
            List.iter
              (fun (d : Instrument.peer_dep) ->
                match
                  Index.find t.index ~callpath:d.peer_callpath ~loc:d.peer_loc
                with
                | None -> ()
                | Some send_vid ->
                    t.data.records_taken <- t.data.records_taken + 1;
                    overhead := !overhead +. t.cfg.per_record_cost;
                    let key =
                      {
                        Commrec.recv_rank = ctx.rank;
                        recv_vertex = vid;
                        send_rank = d.peer_rank;
                        send_vertex = send_vid;
                        tag = d.dep_tag;
                        bytes = d.dep_bytes;
                      }
                    in
                    Commrec.record_p2p t.data.comm ~key
                      ~waited:(info.wait_seconds > t.cfg.wait_epsilon)
                      ~wait_seconds:info.wait_seconds)
              info.deps));
  !overhead

let on_icall t (ctx : Instrument.ctx) ~target =
  (match resolve t ctx with
  | Some vid -> Profdata.record_icall t.data ~callsite_vertex:vid ~target
  | None -> ());
  t.cfg.per_call_cost

let tool t =
  {
    (Instrument.nil "scalana") with
    on_interval = (fun ctx ~stop act -> on_interval t ctx ~stop act);
    on_mpi_exit = (fun ctx info -> on_mpi_exit t ctx info);
    on_icall = (fun ctx ~target -> on_icall t ctx ~target);
    on_run_end =
      (fun ~nprocs:_ ~elapsed -> t.data.elapsed <- elapsed);
  }
