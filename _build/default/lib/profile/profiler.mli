(** The ScalAna runtime tool: PAPI-style timer sampling plus PMPI-style
    interposition with random-sampling instrumentation and graph-guided
    compression. *)

open Scalana_psg
open Scalana_runtime

type config = {
  freq : float;  (** sampling frequency in Hz (paper: 200) *)
  per_sample_cost : float;  (** seconds per interrupt + unwind *)
  record_prob : float;  (** random-sampling instrumentation threshold *)
  per_record_cost : float;
  per_call_cost : float;  (** fixed wrapper cost per MPI call *)
  wait_epsilon : float;  (** waits above this mark the edge as waiting *)
  seed : int;
}

val default_config : config
type t

val create : ?config:config -> index:Index.t -> nprocs:int -> unit -> t
val data : t -> Profdata.t

(** The {!Instrument.t} hook record to attach to a simulator run. *)
val tool : t -> Instrument.t
