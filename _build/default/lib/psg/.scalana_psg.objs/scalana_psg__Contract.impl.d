lib/psg/contract.ml: Hashtbl List Psg Vertex
