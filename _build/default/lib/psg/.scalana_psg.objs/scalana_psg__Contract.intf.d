lib/psg/contract.mli: Hashtbl Psg
