lib/psg/index.ml: Buffer Contract Hashtbl List Loc Psg Scalana_mlang Vertex
