lib/psg/index.mli: Contract Loc Psg Scalana_mlang
