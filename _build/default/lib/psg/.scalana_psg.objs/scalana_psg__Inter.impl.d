lib/psg/inter.ml: Ast Hashtbl Intra List Psg Scalana_mlang String Vertex
