lib/psg/inter.mli: Ast Hashtbl Psg Scalana_mlang
