lib/psg/intra.ml: Array Ast Cfg Hashtbl List Loops Printf Psg Scalana_cfg Scalana_mlang Vertex
