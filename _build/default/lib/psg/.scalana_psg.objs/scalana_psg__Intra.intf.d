lib/psg/intra.mli: Ast Hashtbl Psg Scalana_mlang
