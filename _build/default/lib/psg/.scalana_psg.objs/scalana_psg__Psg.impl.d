lib/psg/psg.ml: Fmt Hashtbl List String Vertex
