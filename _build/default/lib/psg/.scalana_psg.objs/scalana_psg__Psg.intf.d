lib/psg/psg.mli: Fmt Loc Scalana_mlang Vertex
