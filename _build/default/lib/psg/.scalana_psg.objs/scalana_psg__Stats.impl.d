lib/psg/stats.ml: Fmt Printf Psg Vertex
