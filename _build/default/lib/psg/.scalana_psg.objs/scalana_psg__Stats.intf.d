lib/psg/stats.mli: Fmt Psg
