lib/psg/vertex.ml: Ast Fmt Loc Printf Scalana_mlang String
