(* PSG contraction (Section III-A).

   Rules, in the paper's order of priority:
   - every MPI vertex and every control structure containing one is kept;
   - structures without MPI keep only loops (loop iterations may dominate
     compute time), bounded by [max_loop_depth] nesting; branches without
     MPI collapse into Comp vertices;
   - consecutive Comp siblings merge into one larger Comp.

   The result maps every original vertex to the contracted vertex that
   absorbed it, which is what runtime attribution uses. *)

type result = {
  psg : Psg.t;
  orig_to_new : (int, int) Hashtbl.t;
}

let default_max_loop_depth = 10

(* Add a Comp under [parent], merging with the previous sibling when that
   sibling is also a Comp. Returns the vertex id the original maps to. *)
let add_comp dst ~parent ~loc ~func ~callpath ~label ~merged =
  match Psg.last_child dst parent with
  | Some prev_id -> (
      let prev = Psg.vertex dst prev_id in
      match prev.Vertex.kind with
      | Vertex.Comp { label = prev_label; merged = prev_merged } ->
          let label = match prev_label with Some _ -> prev_label | None -> label in
          Psg.set_kind dst prev_id
            (Vertex.Comp { label; merged = prev_merged + merged });
          prev_id
      | _ ->
          Psg.add_vertex dst ~parent ~kind:(Vertex.Comp { label; merged })
            ~loc ~func ~callpath)
  | None ->
      Psg.add_vertex dst ~parent ~kind:(Vertex.Comp { label; merged })
        ~loc ~func ~callpath

let run ?(max_loop_depth = default_max_loop_depth) (src : Psg.t) =
  let dst = Psg.create () in
  let orig_to_new = Hashtbl.create 256 in
  let map_subtree orig_id new_id =
    List.iter
      (fun o -> Hashtbl.replace orig_to_new o new_id)
      (Psg.subtree_vertices src orig_id)
  in
  let rec walk ~dst_parent ~depth orig_id =
    let v = Psg.vertex src orig_id in
    let copy kind =
      let id =
        Psg.add_vertex dst ~parent:dst_parent ~kind ~loc:v.loc ~func:v.func
          ~callpath:v.callpath
      in
      Hashtbl.replace orig_to_new orig_id id;
      id
    in
    let collapse ~label =
      let merged = List.length (Psg.subtree_vertices src orig_id) in
      let id =
        add_comp dst ~parent:dst_parent ~loc:v.loc ~func:v.func
          ~callpath:v.callpath ~label ~merged
      in
      map_subtree orig_id id
    in
    match v.Vertex.kind with
    | Vertex.Root _ -> invalid_arg "Contract: nested Root"
    | Vertex.Mpi _ -> ignore (copy v.kind)
    | Vertex.Callsite _ ->
        let id = copy v.kind in
        List.iter (walk ~dst_parent:id ~depth) (Psg.children src orig_id)
    | Vertex.Comp { label; merged } ->
        let id =
          add_comp dst ~parent:dst_parent ~loc:v.loc ~func:v.func
            ~callpath:v.callpath ~label ~merged
        in
        Hashtbl.replace orig_to_new orig_id id
    | Vertex.Branch ->
        if Psg.subtree_has_mpi src orig_id then begin
          let id = copy v.kind in
          List.iter (walk ~dst_parent:id ~depth) (Psg.children src orig_id)
        end
        else begin
          (* MPI-free branch: the structure is dropped but loops inside
             are preserved ("we only preserve Loop") — hoist children *)
          Hashtbl.replace orig_to_new orig_id dst_parent;
          List.iter (walk ~dst_parent ~depth) (Psg.children src orig_id)
        end
    | Vertex.Loop { var; label; depth = _ } ->
        if Psg.subtree_has_mpi src orig_id then begin
          let id = copy (Vertex.Loop { var; label; depth = depth + 1 }) in
          List.iter
            (walk ~dst_parent:id ~depth:(depth + 1))
            (Psg.children src orig_id)
        end
        else if depth + 1 > max_loop_depth then collapse ~label
        else begin
          let id = copy (Vertex.Loop { var; label; depth = depth + 1 }) in
          List.iter
            (walk ~dst_parent:id ~depth:(depth + 1))
            (Psg.children src orig_id)
        end
  in
  let src_root = Psg.root src in
  let root_v = Psg.vertex src src_root in
  let new_root =
    Psg.add_root dst
      ~func:(match root_v.Vertex.kind with Vertex.Root f -> f | _ -> root_v.func)
      ~loc:root_v.loc
  in
  Hashtbl.replace orig_to_new src_root new_root;
  List.iter (walk ~dst_parent:new_root ~depth:0) (Psg.children src src_root);
  (* carry cycle edges over when both endpoints survived *)
  Psg.iter
    (fun v ->
      match Psg.cycle_target src v.Vertex.id with
      | Some entry -> (
          match
            ( Hashtbl.find_opt orig_to_new v.Vertex.id,
              Hashtbl.find_opt orig_to_new entry )
          with
          | Some c, Some e -> Psg.add_cycle_edge dst ~callsite:c ~entry:e
          | _ -> ())
      | None -> ())
    src;
  { psg = dst; orig_to_new }

let new_id result orig = Hashtbl.find_opt result.orig_to_new orig
