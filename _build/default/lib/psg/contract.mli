(** PSG contraction: keep MPI vertices and the control structures around
    them, keep loops up to [max_loop_depth], collapse MPI-free branches,
    merge consecutive Comp vertices. *)

type result = {
  psg : Psg.t;  (** the contracted graph *)
  orig_to_new : (int, int) Hashtbl.t;
      (** maps every original vertex to the vertex that absorbed it *)
}

val default_max_loop_depth : int

(** [run ?max_loop_depth psg] contracts a complete PSG.
    [max_loop_depth] defaults to the paper's evaluation setting (10). *)
val run : ?max_loop_depth:int -> Psg.t -> result

val new_id : result -> int -> int option
