(* Attribution index: map a dynamic (call path, source location) pair to
   the contracted-PSG vertex that owns it.

   The runtime walks statements with a dynamic call path (the list of
   call-site locations on the stack).  For statements whose expansion
   exists in the PSG the lookup is exact; samples inside recursive
   re-entries fold onto the first expansion (call paths are truncated
   frame by frame), and samples inside not-yet-refined indirect calls
   attribute to the callsite vertex itself. *)

open Scalana_mlang

type t = {
  tbl : (string, int) Hashtbl.t;
  contracted : Psg.t;
}

let key callpath loc =
  let buf = Buffer.create 64 in
  List.iter
    (fun l ->
      Buffer.add_string buf (Loc.to_string l);
      Buffer.add_char buf '>')
    callpath;
  Buffer.add_string buf (Loc.to_string loc);
  Buffer.contents buf

let build ~(full : Psg.t) ~(contraction : Contract.result) =
  let tbl = Hashtbl.create 1024 in
  Psg.iter
    (fun v ->
      match Contract.new_id contraction v.Vertex.id with
      | Some nid ->
          let k = key v.callpath v.loc in
          if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k nid
      | None -> ())
    full;
  { tbl; contracted = contraction.psg }

(* Refresh after indirect-call refinement added vertices to the
   contracted graph itself: index the new vertices directly. *)
let index_contracted_subtree t root_id =
  List.iter
    (fun id ->
      let v = Psg.vertex t.contracted id in
      let k = key v.Vertex.callpath v.loc in
      if not (Hashtbl.mem t.tbl k) then Hashtbl.add t.tbl k id)
    (Psg.subtree_vertices t.contracted root_id)

let rec find t ~callpath ~loc =
  match Hashtbl.find_opt t.tbl (key callpath loc) with
  | Some id -> Some id
  | None -> (
      (* Fold recursive frames / unresolved indirect frames: retry with
         the innermost frame as the target location. *)
      match List.rev callpath with
      | [] -> None
      | innermost :: rest_rev ->
          let shorter = List.rev rest_rev in
          (match Hashtbl.find_opt t.tbl (key shorter innermost) with
          | Some id -> Some id
          | None -> find t ~callpath:shorter ~loc))

let exact t ~callpath ~loc = Hashtbl.find_opt t.tbl (key callpath loc)
let size t = Hashtbl.length t.tbl
