(** Attribution index from dynamic (call path, location) pairs to
    contracted-PSG vertices, with fallbacks for recursive re-entries and
    unresolved indirect calls. *)

open Scalana_mlang

type t

val build : full:Psg.t -> contraction:Contract.result -> t

(** Index vertices added to the contracted graph by indirect-call
    refinement (subtree rooted at the spliced Root vertex). *)
val index_contracted_subtree : t -> int -> unit

(** [find t ~callpath ~loc] — contracted vertex owning [loc] under
    [callpath]; falls back frame-by-frame for recursion/indirect calls. *)
val find : t -> callpath:Loc.t list -> loc:Loc.t -> int option

(** Exact lookup, no fallback. *)
val exact : t -> callpath:Loc.t list -> loc:Loc.t -> int option

val size : t -> int
