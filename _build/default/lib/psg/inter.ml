(* Inter-procedural analysis: combine local PSGs into the complete PSG.

   Top-down traversal from main (following the program call graph):
   direct, non-recursive calls are replaced by a fresh copy of the
   callee's local PSG with the callpath extended by the call-site
   location; recursive calls are kept as Callsite vertices with a cycle
   edge back to the enclosing expansion; indirect calls are kept
   unresolved and refined from runtime records ([refine_indirect]), as
   Section III-B3 describes. *)

open Scalana_mlang

let local locals name =
  match Hashtbl.find_opt locals name with
  | Some l -> l
  | None -> raise (Ast.Unknown_function name)

(* Copy the body of [src_parent] (in local PSG [src]) under [dst_parent]
   in [dst], expanding direct calls.  [stack] holds
   (function-name, expansion-anchor) pairs for the open expansions. *)
let rec copy_body dst locals ~stack ~callpath ~src ~src_parent ~dst_parent =
  List.iter
    (fun cid ->
      let v = Psg.vertex src cid in
      match v.Vertex.kind with
      | Vertex.Callsite { callee = Some callee; _ } -> (
          match List.assoc_opt callee stack with
          | Some entry ->
              (* Recursive call: keep the vertex, close the cycle. *)
              let id =
                Psg.add_vertex dst ~parent:dst_parent
                  ~kind:
                    (Vertex.Callsite
                       {
                         callee = Some callee;
                         targets = [ callee ];
                         recursive = true;
                       })
                  ~loc:v.loc ~func:v.func ~callpath
              in
              Psg.add_cycle_edge dst ~callsite:id ~entry
          | None ->
              let callee_src = local locals callee in
              copy_body dst locals
                ~stack:((callee, dst_parent) :: stack)
                ~callpath:(callpath @ [ v.loc ])
                ~src:callee_src
                ~src_parent:(Psg.root callee_src)
                ~dst_parent)
      | Vertex.Callsite { callee = None; targets; recursive } ->
          ignore
            (Psg.add_vertex dst ~parent:dst_parent
               ~kind:(Vertex.Callsite { callee = None; targets; recursive })
               ~loc:v.loc ~func:v.func ~callpath)
      | kind ->
          let id =
            Psg.add_vertex dst ~parent:dst_parent ~kind ~loc:v.loc ~func:v.func
              ~callpath
          in
          copy_body dst locals ~stack ~callpath ~src ~src_parent:cid
            ~dst_parent:id)
    (Psg.children src src_parent)

let build ?locals (program : Ast.program) =
  let locals =
    match locals with Some l -> l | None -> Intra.build_all program
  in
  let dst = Psg.create () in
  let main = Ast.main_func program in
  let root = Psg.add_root dst ~func:main.fname ~loc:main.floc in
  let src = local locals main.fname in
  copy_body dst locals
    ~stack:[ (main.fname, root) ]
    ~callpath:[] ~src ~src_parent:(Psg.root src) ~dst_parent:root;
  dst

(* Runtime refinement: splice [target]'s expansion under an indirect
   callsite once profiling has observed the call.  Idempotent per
   (callsite, target). *)
let refine_indirect psg ~locals ~callsite ~target =
  let v = Psg.vertex psg callsite in
  match v.Vertex.kind with
  | Vertex.Callsite { callee = None; targets; recursive } ->
      let already_spliced =
        List.exists
          (fun cid ->
            match (Psg.vertex psg cid).Vertex.kind with
            | Vertex.Root f -> String.equal f target
            | _ -> false)
          (Psg.children psg callsite)
      in
      if already_spliced then None
      else begin
        let src = local locals target in
        let callpath = v.callpath @ [ v.loc ] in
        let sub_root =
          Psg.add_vertex psg ~parent:callsite ~kind:(Vertex.Root target)
            ~loc:(Psg.vertex src (Psg.root src)).loc ~func:target ~callpath
        in
        copy_body psg locals
          ~stack:[ (target, sub_root) ]
          ~callpath ~src ~src_parent:(Psg.root src) ~dst_parent:sub_root;
        if not (List.mem target targets) then
          Psg.set_kind psg callsite
            (Vertex.Callsite
               { callee = None; targets = targets @ [ target ]; recursive });
        Some sub_root
      end
  | _ -> invalid_arg "refine_indirect: not an unresolved callsite"
