(** Inter-procedural analysis: expand local PSGs into the complete PSG
    from main; recursive calls become cycle edges, indirect calls stay
    unresolved until {!refine_indirect}. *)

open Scalana_mlang

val build : ?locals:(string, Psg.t) Hashtbl.t -> Ast.program -> Psg.t

(** Splice [target]'s expansion under an unresolved indirect callsite
    (runtime refinement of Section III-B3). Returns the root of the
    spliced subtree, or [None] when this (callsite, target) pair was
    already spliced. Raises [Invalid_argument] if [callsite] is not an
    unresolved indirect callsite. *)
val refine_indirect :
  Psg.t ->
  locals:(string, Psg.t) Hashtbl.t ->
  callsite:int ->
  target:string ->
  int option
