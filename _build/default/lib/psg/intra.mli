(** Intra-procedural analysis: local PSG per function. *)

open Scalana_mlang

val build : Ast.func -> Psg.t

(** Local PSGs for every function, keyed by name. *)
val build_all : Ast.program -> (string, Psg.t) Hashtbl.t

(** Validate the local PSG against CFG dominance/natural-loop analyses:
    Loop vertices must match natural loops, Branch vertices must match
    conditional blocks. *)
val crosscheck : Ast.func -> (unit, string) result
