(** PSG statistics: the columns of the paper's Table II. *)

type t = {
  program : string;
  kloc : float;
  vbc : int;  (** vertices before contraction *)
  vac : int;  (** vertices after contraction *)
  loops : int;
  branches : int;
  comps : int;
  mpis : int;
  calls : int;
}

val of_psgs :
  program:string -> lines:int -> full:Psg.t -> contracted:Psg.t -> t

(** Fraction of vertices removed by contraction (paper: 68% on average). *)
val contraction_ratio : t -> float

val header : string
val row : t -> string
val pp : t Fmt.t
