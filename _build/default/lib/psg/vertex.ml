(* PSG vertices.

   The paper groups vertices into Branch, Loop, Function call, Comp and
   MPI; Root anchors a (sub)graph.  A vertex remembers the source
   location it came from and the inline chain (call-site locations from
   main) created by the inter-procedural expansion, so runtime samples can
   be attributed call-path-sensitively. *)

open Scalana_mlang

type kind =
  | Root of string  (* function name the subtree came from *)
  | Loop of { var : string; label : string option; depth : int }
  | Branch
  | Comp of { label : string option; merged : int }
      (* [merged] counts how many original Comp/collapsed vertices this
         vertex absorbed during contraction (1 = untouched) *)
  | Mpi of Ast.mpi_call
  | Callsite of { callee : string option; targets : string list; recursive : bool }
      (* kept (not inlined) call: indirect call with candidate [targets],
         or a recursive call back to [callee] *)

type t = {
  id : int;
  kind : kind;
  loc : Loc.t;
  func : string;  (* enclosing function (provenance) *)
  callpath : Loc.t list;  (* call-site locations, outermost first *)
}

let kind_name = function
  | Root _ -> "Root"
  | Loop _ -> "Loop"
  | Branch -> "Branch"
  | Comp _ -> "Comp"
  | Mpi _ -> "MPI"
  | Callsite _ -> "Call"

let is_mpi v = match v.kind with Mpi _ -> true | _ -> false
let is_comp v = match v.kind with Comp _ -> true | _ -> false
let is_loop v = match v.kind with Loop _ -> true | _ -> false
let is_branch v = match v.kind with Branch -> true | _ -> false
let is_root v = match v.kind with Root _ -> true | _ -> false
let is_callsite v = match v.kind with Callsite _ -> true | _ -> false

let is_collective v =
  match v.kind with Mpi c -> Ast.is_collective c | _ -> false

let label v =
  match v.kind with
  | Root f -> Printf.sprintf "root(%s)" f
  | Loop { label = Some l; _ } -> Printf.sprintf "loop %s" l
  | Loop { var; _ } -> Printf.sprintf "loop %s" var
  | Branch -> "branch"
  | Comp { label = Some l; _ } -> l
  | Comp _ -> "comp"
  | Mpi c -> Ast.mpi_name c
  | Callsite { callee = Some c; recursive; _ } ->
      if recursive then Printf.sprintf "call %s (recursive)" c
      else Printf.sprintf "call %s" c
  | Callsite { targets; _ } ->
      Printf.sprintf "icall {%s}" (String.concat "," targets)

let pp ppf v =
  Fmt.pf ppf "#%d %s @%a [%s]" v.id (label v) Loc.pp v.loc v.func
