lib/runtime/comm.ml: Array Ast Buffer Float Fmt Hashtbl List Loc Network Printf Scalana_mlang
