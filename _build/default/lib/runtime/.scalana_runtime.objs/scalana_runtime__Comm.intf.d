lib/runtime/comm.mli: Ast Hashtbl Loc Network Scalana_mlang
