lib/runtime/costmodel.ml: Ast Expr Pmu Scalana_mlang
