lib/runtime/costmodel.mli: Ast Expr Pmu Scalana_mlang
