lib/runtime/exec.ml: Array Ast Comm Costmodel Effect Expr Float Fmt Hashtbl Heap Inject Instrument List Loc Network Pmu Printf Scalana_mlang String
