lib/runtime/exec.mli: Ast Costmodel Inject Instrument Loc Network Pmu Scalana_mlang
