lib/runtime/heap.ml: Array
