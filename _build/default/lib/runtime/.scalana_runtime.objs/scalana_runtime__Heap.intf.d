lib/runtime/heap.mli:
