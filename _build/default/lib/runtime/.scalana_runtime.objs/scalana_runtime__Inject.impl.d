lib/runtime/inject.ml: Hashtbl List Loc Scalana_mlang
