lib/runtime/inject.mli: Loc Scalana_mlang
