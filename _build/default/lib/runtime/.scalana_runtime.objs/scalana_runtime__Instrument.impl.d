lib/runtime/instrument.ml: Ast Loc Pmu Scalana_mlang
