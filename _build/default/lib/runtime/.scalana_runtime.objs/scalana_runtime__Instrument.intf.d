lib/runtime/instrument.mli: Ast Loc Pmu Scalana_mlang
