lib/runtime/network.ml: Scalana_mlang
