lib/runtime/network.mli: Scalana_mlang
