lib/runtime/pmu.ml: Fmt
