lib/runtime/pmu.mli: Fmt
