(* Message matching and collective synchronization.

   Implements the standard MPI two-queue model per receiver (posted
   receives vs unexpected messages) with tag/source wildcards and
   non-overtaking order, an eager/rendezvous protocol switch, and
   sequence-numbered collective instances with full-synchronization cost
   semantics.  The [on_complete] callback lets the scheduler wake blocked
   processes the moment a request completes. *)

open Scalana_mlang

type message = {
  msg_src : int;
  msg_dst : int;
  msg_tag : int;
  msg_bytes : int;
  send_seq : int;
  send_time : float;
  mutable arrival : float;  (* infinity until scheduled (rendezvous) *)
  send_loc : Loc.t;
  send_callpath : Loc.t list;
  eager : bool;
  mutable sender_req : request option;  (* completed on match (rendezvous) *)
}

and request = {
  req_id : int;
  req_rank : int;
  req_kind : [ `Send | `Recv ];
  post_time : float;
  want_src : int option;  (* None = MPI_ANY_SOURCE *)
  want_tag : int option;  (* None = MPI_ANY_TAG *)
  req_bytes : int;
  req_loc : Loc.t;
  req_callpath : Loc.t list;
  mutable completed : bool;
  mutable completion : float;
  mutable matched : message option;
}

type coll = {
  coll_seq : int;
  coll_kind : Ast.mpi_call;
  coll_bytes : int;
  mutable arrivals : (int * float) list;
  mutable finished : bool;
  mutable start_time : float;
  mutable finish_time : float;
  mutable last_arrival_rank : int;
}

type t = {
  net : Network.t;
  nprocs : int;
  unexpected : message list ref array;  (* per destination, send order *)
  posted : request list ref array;  (* per receiver, post order *)
  colls : (int, coll) Hashtbl.t;  (* by sequence number *)
  mutable msg_seq : int;
  mutable req_seq : int;
  mutable on_complete : request -> unit;
  mutable messages_sent : int;
  mutable bytes_sent : float;
}

let create ~net ~nprocs =
  {
    net;
    nprocs;
    unexpected = Array.init nprocs (fun _ -> ref []);
    posted = Array.init nprocs (fun _ -> ref []);
    colls = Hashtbl.create 64;
    msg_seq = 0;
    req_seq = 0;
    on_complete = (fun _ -> ());
    messages_sent = 0;
    bytes_sent = 0.0;
  }

let set_on_complete t f = t.on_complete <- f

let complete t req ~at =
  req.completed <- true;
  req.completion <- at;
  t.on_complete req

let matches (req : request) (msg : message) =
  (match req.want_src with None -> true | Some s -> s = msg.msg_src)
  && match req.want_tag with None -> true | Some tg -> tg = msg.msg_tag

(* Join a message with a posted receive and complete both sides. *)
let consume t (req : request) (msg : message) =
  req.matched <- Some msg;
  if msg.eager then
    (* transfer was already in flight; the receive sees it at arrival *)
    complete t req ~at:(Float.max req.post_time msg.arrival)
  else begin
    (* rendezvous: transfer starts when both sides are ready *)
    let start = Float.max req.post_time msg.send_time in
    let arrival = start +. Network.transfer_time t.net msg.msg_bytes in
    msg.arrival <- arrival;
    (match msg.sender_req with
    | Some sreq when not sreq.completed -> complete t sreq ~at:arrival
    | _ -> ());
    complete t req ~at:arrival
  end

let fresh_req t = t.req_seq <- t.req_seq + 1; t.req_seq

(* Post a send at [time]; returns the sender-side request (already
   completed for eager messages). *)
let send t ~src ~dst ~tag ~bytes ~time ~loc ~callpath =
  if dst < 0 || dst >= t.nprocs then
    Fmt.invalid_arg "send to rank %d outside 0..%d (%s)" dst (t.nprocs - 1)
      (Loc.to_string loc);
  t.msg_seq <- t.msg_seq + 1;
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent +. float_of_int bytes;
  let eager = Network.is_eager t.net bytes in
  let msg =
    {
      msg_src = src;
      msg_dst = dst;
      msg_tag = tag;
      msg_bytes = bytes;
      send_seq = t.msg_seq;
      send_time = time;
      arrival =
        (if eager then time +. Network.transfer_time t.net bytes else infinity);
      send_loc = loc;
      send_callpath = callpath;
      eager;
      sender_req = None;
    }
  in
  let sreq =
    {
      req_id = fresh_req t;
      req_rank = src;
      req_kind = `Send;
      post_time = time;
      want_src = None;
      want_tag = None;
      req_bytes = bytes;
      req_loc = loc;
      req_callpath = callpath;
      completed = eager;
      completion = (if eager then time else infinity);
      matched = Some msg;
    }
  in
  msg.sender_req <- Some sreq;
  (* match against posted receives of the destination, FIFO *)
  let rec try_match acc = function
    | [] ->
        t.unexpected.(dst) := !(t.unexpected.(dst)) @ [ msg ];
        List.rev acc
    | req :: rest ->
        if matches req msg then begin
          consume t req msg;
          List.rev_append acc rest
        end
        else try_match (req :: acc) rest
  in
  t.posted.(dst) := try_match [] !(t.posted.(dst));
  sreq

(* Post a receive at [time]; returns the request (already completed when
   a matching unexpected message was waiting). *)
let post_recv t ~rank ~src ~tag ~bytes ~time ~loc ~callpath =
  (match src with
  | Some s when s < 0 || s >= t.nprocs ->
      Fmt.invalid_arg "recv from rank %d outside 0..%d (%s)" s (t.nprocs - 1)
        (Loc.to_string loc)
  | _ -> ());
  let req =
    {
      req_id = fresh_req t;
      req_rank = rank;
      req_kind = `Recv;
      post_time = time;
      want_src = src;
      want_tag = tag;
      req_bytes = bytes;
      req_loc = loc;
      req_callpath = callpath;
      completed = false;
      completion = infinity;
      matched = None;
    }
  in
  let rec try_match acc = function
    | [] ->
        t.posted.(rank) := !(t.posted.(rank)) @ [ req ];
        List.rev acc
    | msg :: rest ->
        if matches req msg then begin
          consume t req msg;
          List.rev_append acc rest
        end
        else try_match (msg :: acc) rest
  in
  t.unexpected.(rank) := try_match [] !(t.unexpected.(rank));
  req

(* Register arrival of [rank] at the [seq]-th collective call. Returns
   the instance; when this arrival is the last one the instance is
   finalized (start/finish times set, [finished] = true). *)
let coll_arrive t ~seq ~rank ~time ~kind ~bytes =
  let c =
    match Hashtbl.find_opt t.colls seq with
    | Some c ->
        if Ast.mpi_name c.coll_kind <> Ast.mpi_name kind then
          Fmt.invalid_arg
            "collective mismatch at sequence %d: rank %d calls %s, others %s"
            seq rank (Ast.mpi_name kind)
            (Ast.mpi_name c.coll_kind);
        c
    | None ->
        let c =
          {
            coll_seq = seq;
            coll_kind = kind;
            coll_bytes = bytes;
            arrivals = [];
            finished = false;
            start_time = 0.0;
            finish_time = 0.0;
            last_arrival_rank = -1;
          }
        in
        Hashtbl.replace t.colls seq c;
        c
  in
  c.arrivals <- (rank, time) :: c.arrivals;
  if List.length c.arrivals = t.nprocs then begin
    let last_rank, start =
      List.fold_left
        (fun ((_, bt) as best) ((_, at) as a) -> if at > bt then a else best)
        (-1, neg_infinity) c.arrivals
    in
    c.start_time <- start;
    c.finish_time <-
      start +. Network.collective_time t.net ~nprocs:t.nprocs ~bytes kind;
    c.last_arrival_rank <- last_rank;
    c.finished <- true
  end;
  c

let pending_summary t =
  let buf = Buffer.create 128 in
  Array.iteri
    (fun rank posted ->
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "  rank %d: recv posted at %s (src=%s tag=%s)\n"
               rank (Loc.to_string r.req_loc)
               (match r.want_src with Some s -> string_of_int s | None -> "any")
               (match r.want_tag with Some s -> string_of_int s | None -> "any")))
        !posted)
    t.posted;
  Array.iteri
    (fun rank msgs ->
      List.iter
        (fun m ->
          Buffer.add_string buf
            (Printf.sprintf "  rank %d: unconsumed msg from %d tag %d (%s)\n"
               rank m.msg_src m.msg_tag (Loc.to_string m.send_loc)))
        !msgs)
    t.unexpected;
  Buffer.contents buf
