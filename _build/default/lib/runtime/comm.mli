(** Message matching and collective synchronization: the standard MPI
    two-queue model per receiver (posted receives vs unexpected messages)
    with tag/source wildcards and non-overtaking order, eager/rendezvous
    protocols, and sequence-numbered fully-synchronizing collectives. *)

open Scalana_mlang

type message = {
  msg_src : int;
  msg_dst : int;
  msg_tag : int;
  msg_bytes : int;
  send_seq : int;
  send_time : float;
  mutable arrival : float;  (** infinity until scheduled (rendezvous) *)
  send_loc : Loc.t;
  send_callpath : Loc.t list;
  eager : bool;
  mutable sender_req : request option;
}

and request = {
  req_id : int;
  req_rank : int;
  req_kind : [ `Send | `Recv ];
  post_time : float;
  want_src : int option;  (** [None] = MPI_ANY_SOURCE *)
  want_tag : int option;  (** [None] = MPI_ANY_TAG *)
  req_bytes : int;
  req_loc : Loc.t;
  req_callpath : Loc.t list;
  mutable completed : bool;
  mutable completion : float;
  mutable matched : message option;
}

type coll = {
  coll_seq : int;
  coll_kind : Ast.mpi_call;
  coll_bytes : int;
  mutable arrivals : (int * float) list;
  mutable finished : bool;
  mutable start_time : float;
  mutable finish_time : float;
  mutable last_arrival_rank : int;
}

type t = {
  net : Network.t;
  nprocs : int;
  unexpected : message list ref array;
  posted : request list ref array;
  colls : (int, coll) Hashtbl.t;
  mutable msg_seq : int;
  mutable req_seq : int;
  mutable on_complete : request -> unit;
  mutable messages_sent : int;
  mutable bytes_sent : float;
}

val create : net:Network.t -> nprocs:int -> t

(** Install the scheduler callback fired whenever a request completes. *)
val set_on_complete : t -> (request -> unit) -> unit

(** Post a send; the returned request is already completed for eager
    messages. Raises [Invalid_argument] on an out-of-range destination. *)
val send :
  t ->
  src:int ->
  dst:int ->
  tag:int ->
  bytes:int ->
  time:float ->
  loc:Loc.t ->
  callpath:Loc.t list ->
  request

(** Post a receive; already completed when a matching unexpected message
    was waiting. *)
val post_recv :
  t ->
  rank:int ->
  src:int option ->
  tag:int option ->
  bytes:int ->
  time:float ->
  loc:Loc.t ->
  callpath:Loc.t list ->
  request

(** Register [rank]'s arrival at its [seq]-th collective; the last
    arrival finalizes the instance (start/finish set, [finished] true).
    Raises [Invalid_argument] on mismatched collective kinds. *)
val coll_arrive :
  t -> seq:int -> rank:int -> time:float -> kind:Ast.mpi_call -> bytes:int -> coll

(** Human-readable dump of pending receives/messages, for deadlock
    reports. *)
val pending_summary : t -> string
