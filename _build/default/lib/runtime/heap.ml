(* Minimal binary min-heap on (float priority, int payload), used by the
   scheduler to pick the runnable process with the smallest local clock. *)

type t = {
  mutable keys : float array;
  mutable vals : int array;
  mutable size : int;
}

let create () = { keys = Array.make 16 0.0; vals = Array.make 16 0; size = 0 }
let is_empty t = t.size = 0
let length t = t.size

let grow t =
  if t.size = Array.length t.keys then begin
    let n = 2 * t.size in
    let keys = Array.make n 0.0 and vals = Array.make n 0 in
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.vals 0 vals 0 t.size;
    t.keys <- keys;
    t.vals <- vals
  end

let swap t i j =
  let k = t.keys.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.vals.(j) <- v

let push t key value =
  grow t;
  let i = ref t.size in
  t.keys.(!i) <- key;
  t.vals.(!i) <- value;
  t.size <- t.size + 1;
  while !i > 0 && t.keys.((!i - 1) / 2) > t.keys.(!i) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) and value = t.vals.(0) in
    t.size <- t.size - 1;
    t.keys.(0) <- t.keys.(t.size);
    t.vals.(0) <- t.vals.(t.size);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && t.keys.(l) < t.keys.(!smallest) then smallest := l;
      if r < t.size && t.keys.(r) < t.keys.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        swap t !i !smallest;
        i := !smallest
      end
      else continue_ := false
    done;
    Some (key, value)
  end
