(** Binary min-heap on (float key, int payload); the scheduler's ready
    queue. *)

type t

val create : unit -> t
val is_empty : t -> bool
val length : t -> int
val push : t -> float -> int -> unit
val pop : t -> (float * int) option
