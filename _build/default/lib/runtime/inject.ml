(* Fault/delay injection.

   The paper's motivating example (Fig. 2) manually injects a delay into
   one process of NPB-CG; this module reproduces that and supports the
   ablation tests: a rule adds wall time (and optionally busy cycles) when
   a given rank executes a given source location. *)

open Scalana_mlang

type rule = {
  ranks : int list option;  (* None = every rank *)
  loc : Loc.t option;  (* None = any Comp statement *)
  seconds : float;
  every : int;  (* apply on every n-th execution of the site; 1 = always *)
}

type t = { rules : rule list; counters : (int * int, int) Hashtbl.t }

let empty = { rules = []; counters = Hashtbl.create 1 }

let delay ?ranks ?loc ?(every = 1) seconds =
  { ranks; loc; seconds; every }

let create rules = { rules; counters = Hashtbl.create 64 }

let rule_applies rule ~rank ~loc =
  (match rule.ranks with None -> true | Some rs -> List.mem rank rs)
  && match rule.loc with None -> true | Some l -> Loc.equal l loc

(* Extra seconds to charge when [rank] executes the statement at [loc].
   Stateful: honours [every]. *)
let extra t ~rank ~loc =
  let rule_index = ref (-1) in
  List.fold_left
    (fun acc rule ->
      incr rule_index;
      if rule_applies rule ~rank ~loc then begin
        let key = (rank, !rule_index) in
        let n = (try Hashtbl.find t.counters key with Not_found -> 0) + 1 in
        Hashtbl.replace t.counters key n;
        if n mod rule.every = 0 then acc +. rule.seconds else acc
      end
      else acc)
    0.0 t.rules

let is_empty t = t.rules = []
