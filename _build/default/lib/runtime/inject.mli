(** Delay injection (the Fig. 2 experiment): add wall time when a given
    rank executes a given source location. *)

open Scalana_mlang

type rule

type t

val empty : t

(** [delay ?ranks ?loc ?every seconds] — a rule adding [seconds] when one
    of [ranks] (default: all) executes [loc] (default: any computation),
    on every [every]-th execution (default 1). *)
val delay : ?ranks:int list -> ?loc:Loc.t -> ?every:int -> float -> rule

val create : rule list -> t

(** Extra seconds to charge for this execution; stateful ([every]). *)
val extra : t -> rank:int -> loc:Loc.t -> float

val is_empty : t -> bool
