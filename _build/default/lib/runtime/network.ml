(* Interconnect model.

   Point-to-point transfers follow a latency/bandwidth (Hockney) model
   with an eager/rendezvous switch; collectives use the standard
   log-P tree / dissemination cost shapes.  The absolute constants are
   InfiniBand-class, matching the paper's Gorgon testbed flavor. *)

type t = {
  latency : float;  (* seconds, per message *)
  bandwidth : float;  (* bytes per second *)
  eager_threshold : int;  (* bytes; above this, rendezvous protocol *)
  send_overhead : float;  (* local CPU seconds to post a send *)
  recv_overhead : float;  (* local CPU seconds to complete a receive *)
}

let default =
  {
    latency = 1.5e-6;
    bandwidth = 10e9;
    eager_threshold = 64 * 1024;
    send_overhead = 0.3e-6;
    recv_overhead = 0.3e-6;
  }

let transfer_time t bytes =
  t.latency +. (float_of_int (max 0 bytes) /. t.bandwidth)

let is_eager t bytes = bytes <= t.eager_threshold

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  if n <= 1 then 0 else go 0 1

(* Cost of a collective once all ranks have arrived. *)
let collective_time t ~nprocs ~bytes kind =
  let lg = float_of_int (log2_ceil nprocs) in
  let n = float_of_int (max 1 (nprocs - 1)) in
  let b = float_of_int (max 0 bytes) in
  match (kind : Scalana_mlang.Ast.mpi_call) with
  | Barrier -> lg *. t.latency
  | Bcast _ | Reduce _ -> lg *. (t.latency +. (b /. t.bandwidth))
  | Allreduce _ -> 2.0 *. lg *. (t.latency +. (b /. t.bandwidth))
  | Allgather _ -> (lg *. t.latency) +. (n *. b /. t.bandwidth)
  | Alltoall _ -> n *. (t.latency +. (b /. t.bandwidth))
  | Send _ | Recv _ | Isend _ | Irecv _ | Wait _ | Waitall _ | Sendrecv _ ->
      invalid_arg "Network.collective_time: not a collective"
