(** Interconnect model: latency/bandwidth point-to-point transfers with an
    eager/rendezvous switch, and log-P collective cost shapes. *)

type t = {
  latency : float;  (** seconds per message *)
  bandwidth : float;  (** bytes per second *)
  eager_threshold : int;  (** bytes; larger messages use rendezvous *)
  send_overhead : float;  (** local CPU seconds to post a send *)
  recv_overhead : float;  (** local CPU seconds to complete a receive *)
}

val default : t

(** End-to-end transfer time of one message. *)
val transfer_time : t -> int -> float

val is_eager : t -> int -> bool
val log2_ceil : int -> int

(** Cost of a collective once all ranks arrived. Raises
    [Invalid_argument] for point-to-point operations. *)
val collective_time :
  t -> nprocs:int -> bytes:int -> Scalana_mlang.Ast.mpi_call -> float
