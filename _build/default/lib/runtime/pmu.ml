(* Hardware performance-counter model (the PAPI substrate).

   Counters are the ones the paper's case studies read: total retired
   instructions (TOT_INS), load/store instructions (TOT_LST_INS), total
   cycles (TOT_CYC) and cache misses.  Counts derive deterministically
   from workload descriptors via {!Costmodel}. *)

type t = {
  tot_ins : float;
  tot_lst_ins : float;
  tot_cyc : float;
  cache_miss : float;
  fp_ins : float;
}

let zero =
  { tot_ins = 0.0; tot_lst_ins = 0.0; tot_cyc = 0.0; cache_miss = 0.0; fp_ins = 0.0 }

let add a b =
  {
    tot_ins = a.tot_ins +. b.tot_ins;
    tot_lst_ins = a.tot_lst_ins +. b.tot_lst_ins;
    tot_cyc = a.tot_cyc +. b.tot_cyc;
    cache_miss = a.cache_miss +. b.cache_miss;
    fp_ins = a.fp_ins +. b.fp_ins;
  }

let scale k a =
  {
    tot_ins = k *. a.tot_ins;
    tot_lst_ins = k *. a.tot_lst_ins;
    tot_cyc = k *. a.tot_cyc;
    cache_miss = k *. a.cache_miss;
    fp_ins = k *. a.fp_ins;
  }

let is_zero a = a.tot_ins = 0.0 && a.tot_cyc = 0.0 && a.tot_lst_ins = 0.0

type metric = Tot_ins | Tot_lst_ins | Tot_cyc | Cache_miss | Fp_ins

let metric_name = function
  | Tot_ins -> "TOT_INS"
  | Tot_lst_ins -> "TOT_LST_INS"
  | Tot_cyc -> "TOT_CYC"
  | Cache_miss -> "CACHE_MISS"
  | Fp_ins -> "FP_INS"

let get m t =
  match m with
  | Tot_ins -> t.tot_ins
  | Tot_lst_ins -> t.tot_lst_ins
  | Tot_cyc -> t.tot_cyc
  | Cache_miss -> t.cache_miss
  | Fp_ins -> t.fp_ins

let all_metrics = [ Tot_ins; Tot_lst_ins; Tot_cyc; Cache_miss; Fp_ins ]

let pp ppf t =
  Fmt.pf ppf "ins=%.0f lst=%.0f cyc=%.0f miss=%.0f fp=%.0f" t.tot_ins
    t.tot_lst_ins t.tot_cyc t.cache_miss t.fp_ins
