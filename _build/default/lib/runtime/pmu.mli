(** Hardware performance-counter model (the PAPI substrate): retired
    instruction classes, cycles and cache misses, derived from workload
    descriptors by {!Costmodel}. *)

type t = {
  tot_ins : float;
  tot_lst_ins : float;
  tot_cyc : float;
  cache_miss : float;
  fp_ins : float;
}

val zero : t
val add : t -> t -> t
val scale : float -> t -> t
val is_zero : t -> bool

type metric = Tot_ins | Tot_lst_ins | Tot_cyc | Cache_miss | Fp_ins

val metric_name : metric -> string
val get : metric -> t -> float
val all_metrics : metric list
val pp : t Fmt.t
