test/test_apps.ml: Alcotest Array Ast Exec Float List Pmu Registry Scalana_apps Scalana_mlang Scalana_runtime Testutil Validate
