test/test_baselines.ml: Alcotest Builder Callprof Cct Exec Expr Filename List Loc Replay Scalana Scalana_apps Scalana_baselines Scalana_detect Scalana_mlang Scalana_runtime Testutil Trace_io Tracer
