test/test_cfg.ml: Alcotest Array Ast Builder Callgraph Cfg Dominance Expr List Loops Scalana_apps Scalana_cfg Scalana_mlang Scalana_psg String Testutil
