test/test_core.ml: Alcotest Ast Builder Filename Inject List Loc Option Scalana Scalana_apps Scalana_detect Scalana_mlang Scalana_profile Scalana_psg Scalana_runtime Str String Sys Testutil Unix
