test/test_mlang.ml: Alcotest Array Ast Builder Expr Lexer List Loc Parser Pretty Printf QCheck2 Scalana_apps Scalana_mlang Str String Testutil Validate
