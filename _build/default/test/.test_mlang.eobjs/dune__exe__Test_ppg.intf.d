test/test_ppg.mli:
