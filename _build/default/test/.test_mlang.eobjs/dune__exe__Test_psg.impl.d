test/test_psg.ml: Alcotest Ast Builder Contract Expr Hashtbl Index Inter Intra List Loc Psg QCheck2 Scalana_apps Scalana_mlang Scalana_psg Stats String Testutil Vertex
