test/test_psg.mli:
