test/test_runtime.ml: Alcotest Array Ast Builder Costmodel Exec Expr Heap Inject List Loc Network Pmu Printf QCheck2 Scalana_mlang Scalana_runtime Stdlib Testutil Validate
