test/testutil.ml: Alcotest Array Builder Expr List QCheck2 QCheck_alcotest Scalana_mlang Scalana_profile Scalana_psg Scalana_runtime String
