(* Tests for the workload suite: every registry program validates, builds
   a PSG, runs deadlock-free at several scales, and the case-study apps
   carry their planted pathologies. *)

open Scalana_mlang
open Scalana_runtime
open Scalana_apps
open Testutil

let test_registry_complete () =
  check_int "eleven programs" 11 (List.length Registry.all);
  Alcotest.(check (slist string compare))
    "names"
    [ "bt"; "cg"; "ep"; "ft"; "mg"; "sp"; "lu"; "is"; "sst"; "nekbone"; "zeusmp" ]
    Registry.names;
  match Registry.find "nosuch" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_all_validate () =
  List.iter
    (fun (e : Registry.entry) ->
      Validate.run_exn (e.make ());
      if e.has_optimized then Validate.run_exn (e.make ~optimized:true ()))
    Registry.all

let test_all_run_small () =
  List.iter
    (fun (e : Registry.entry) ->
      let nprocs = if e.square_scales then 4 else 8 in
      let r = run ~nprocs ~cost:e.cost (e.make ()) in
      check_bool (e.name ^ " finishes") true (r.Exec.elapsed > 0.0);
      check_bool (e.name ^ " has events") true (r.Exec.events > 0))
    Registry.all

let test_scales_helper () =
  let cg = Registry.find "cg" in
  Alcotest.(check (list int))
    "powers of two" [ 4; 8; 16; 32 ]
    (Registry.scales cg ~min_np:4 ~max_np:32);
  let bt = Registry.find "bt" in
  Alcotest.(check (list int))
    "powers of four" [ 4; 16; 64 ]
    (Registry.scales bt ~min_np:4 ~max_np:64)

let test_communication_skeletons () =
  (* static check: the expected MPI mix appears in each program *)
  let has_op name prog op =
    let found =
      List.exists (fun (_, c) -> Ast.mpi_name c = op) (Ast.mpi_calls prog)
    in
    check_bool (name ^ " has " ^ op) true found
  in
  has_op "cg" ((Registry.find "cg").make ()) "MPI_Sendrecv";
  has_op "cg" ((Registry.find "cg").make ()) "MPI_Allreduce";
  has_op "ft" ((Registry.find "ft").make ()) "MPI_Alltoall";
  has_op "mg" ((Registry.find "mg").make ()) "MPI_Sendrecv";
  has_op "lu" ((Registry.find "lu").make ()) "MPI_Send";
  has_op "lu" ((Registry.find "lu").make ()) "MPI_Recv";
  has_op "is" ((Registry.find "is").make ()) "MPI_Alltoall";
  has_op "zeusmp" ((Registry.find "zeusmp").make ()) "MPI_Waitall";
  has_op "zeusmp" ((Registry.find "zeusmp").make ()) "MPI_Irecv";
  has_op "nekbone" ((Registry.find "nekbone").make ()) "MPI_Waitall";
  has_op "sst" ((Registry.find "sst").make ()) "MPI_Allreduce"

let test_ep_is_compute_bound () =
  let e = Registry.find "ep" in
  let r = run ~nprocs:8 ~cost:e.cost (e.make ()) in
  let comp = Array.fold_left ( +. ) 0.0 r.Exec.comp_seconds in
  let mpi = Array.fold_left ( +. ) 0.0 r.Exec.mpi_seconds in
  check_bool "compute dominates" true (comp > 20.0 *. mpi)

let test_zeusmp_imbalance () =
  let e = Registry.find "zeusmp" in
  let r = run ~nprocs:8 ~cost:e.cost (e.make ()) in
  (* busy ranks (0,4) wait less than idle ranks *)
  check_bool "idle rank waits more" true
    (r.Exec.wait_seconds.(1) > 2.0 *. r.Exec.wait_seconds.(0));
  (* the optimized variant is faster *)
  let ropt = run ~nprocs:8 ~cost:e.cost (e.make ~optimized:true ()) in
  check_bool "optimized faster" true (ropt.Exec.elapsed < r.Exec.elapsed)

let test_sst_ins_imbalance_and_fix () =
  (* Fig. 15 shows the per-rank TOT_INS of the handleEvent loop (the
     paper's observation is at 32 ranks, where the O(np) array scan
     dominates per-event cost) *)
  let e = Registry.find "sst" in
  let ins =
    per_vertex_pmu ~cost:e.cost ~nprocs:32 ~label:"satisfyDependency"
      (e.make ())
    |> Array.map (fun p -> p.Pmu.tot_ins)
  in
  let mx = Array.fold_left Float.max 0.0 ins in
  let mn = Array.fold_left Float.min infinity ins in
  check_bool "ins imbalance" true (mx > 1.5 *. mn);
  let ins' =
    per_vertex_pmu ~cost:e.cost ~nprocs:32 ~label:"satisfyDependency"
      (e.make ~optimized:true ())
    |> Array.map (fun p -> p.Pmu.tot_ins)
  in
  let mx' = Array.fold_left Float.max 0.0 ins' in
  let mn' = Array.fold_left Float.min infinity ins' in
  check_bool "fix balances TOT_INS" true (mx' /. Float.max mn' 1.0 < 1.6);
  (* the fix removes the bulk of the scan instructions (paper: -99.92%) *)
  check_bool "fix reduces TOT_INS" true (mx' < 0.2 *. mx)

let test_nekbone_cyc_variance_and_fix () =
  (* Fig. 16 shows per-rank TOT_LST_INS and TOT_CYC of the dgemm loop *)
  let e = Registry.find "nekbone" in
  let pmu = per_vertex_pmu ~cost:e.cost ~nprocs:32 ~label:"dgemm" (e.make ()) in
  let lst = Array.map (fun p -> p.Pmu.tot_lst_ins) pmu in
  let cyc = Array.map (fun p -> p.Pmu.tot_cyc) pmu in
  let spread a =
    let mx = Array.fold_left Float.max 0.0 a in
    let mn = Array.fold_left Float.min infinity a in
    mx /. mn
  in
  (* Fig. 16: load/store counts equal across ranks, cycles diverge *)
  check_bool "TOT_LST balanced" true (spread lst < 1.3);
  check_bool "TOT_CYC spread" true (spread cyc > 1.3);
  let pmu' =
    per_vertex_pmu ~cost:e.cost ~nprocs:32 ~label:"dgemm"
      (e.make ~optimized:true ())
  in
  let lst' = Array.map (fun p -> p.Pmu.tot_lst_ins) pmu' in
  let cyc' = Array.map (fun p -> p.Pmu.tot_cyc) pmu' in
  (* the BLAS fix removes ~90% of the dgemm loads (paper: -89.78%) *)
  check_bool "TOT_LST drops" true (lst'.(0) < 0.2 *. lst.(0));
  check_bool "CYC variance shrinks" true
    (spread cyc' < 1.0 +. ((spread cyc -. 1.0) /. 2.0))

let test_lu_pipeline_waits () =
  let e = Registry.find "lu" in
  let r = run ~nprocs:8 ~cost:e.cost (e.make ()) in
  (* pipeline fill: downstream ranks wait for the wavefront *)
  check_bool "waits exist" true
    (Array.fold_left ( +. ) 0.0 r.Exec.wait_seconds > 0.0)

let test_bt_sp_square_grids () =
  List.iter
    (fun name ->
      let e = Registry.find name in
      check_bool (name ^ " square") true e.square_scales;
      (* runs at a perfect square *)
      let r = run ~nprocs:16 ~cost:e.cost (e.make ()) in
      check_bool (name ^ " finishes") true (r.Exec.elapsed > 0.0);
      (* and at a non-square count (inactive ranks still join collectives) *)
      let r8 = run ~nprocs:8 ~cost:e.cost (e.make ()) in
      check_bool (name ^ " non-square ok") true (r8.Exec.elapsed > 0.0))
    [ "bt"; "sp" ]

let test_strong_scaling_sanity () =
  (* doubling processes must not slow any app down *)
  List.iter
    (fun name ->
      let e = Registry.find name in
      let t4 = (run ~nprocs:4 ~cost:e.cost (e.make ())).Exec.elapsed in
      let t16 = (run ~nprocs:16 ~cost:e.cost (e.make ())).Exec.elapsed in
      check_bool (name ^ " scales") true (t16 <= t4 *. 1.05))
    [ "cg"; "ep"; "ft"; "mg"; "is"; "lu"; "zeusmp"; "nekbone"; "sst" ]

let test_hypercube_partner_symmetry () =
  (* CG's transpose exchange pairs ranks symmetrically: messages balance *)
  let e = Registry.find "cg" in
  let r = run ~nprocs:16 ~cost:e.cost (e.make ()) in
  (* every rank sends log2(16)=4 messages per conj_grad call *)
  check_bool "messages multiple of ranks" true (r.Exec.messages mod 16 = 0)

let () =
  Alcotest.run "apps"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "all validate" `Quick test_all_validate;
          Alcotest.test_case "all run" `Quick test_all_run_small;
          Alcotest.test_case "scales helper" `Quick test_scales_helper;
        ] );
      ( "skeletons",
        [
          Alcotest.test_case "communication mix" `Quick
            test_communication_skeletons;
          Alcotest.test_case "hypercube symmetry" `Quick
            test_hypercube_partner_symmetry;
          Alcotest.test_case "bt/sp grids" `Quick test_bt_sp_square_grids;
        ] );
      ( "pathologies",
        [
          Alcotest.test_case "ep compute bound" `Quick test_ep_is_compute_bound;
          Alcotest.test_case "zeusmp imbalance" `Quick test_zeusmp_imbalance;
          Alcotest.test_case "sst TOT_INS (fig 15)" `Quick
            test_sst_ins_imbalance_and_fix;
          Alcotest.test_case "nekbone TOT_CYC (fig 16)" `Quick
            test_nekbone_cyc_variance_and_fix;
          Alcotest.test_case "lu pipeline waits" `Quick test_lu_pipeline_waits;
        ] );
      ( "scaling",
        [ Alcotest.test_case "strong scaling sanity" `Quick test_strong_scaling_sanity ] );
    ]
