(* Tests for the baseline tools: the Scalasca-like tracer (with wait-state
   replay) and the HPCToolkit-like call-path profiler. *)

open Scalana_mlang
open Scalana_runtime
open Scalana_baselines
open Testutil

let delayed_barrier_program ?(work = 60_000_000) () =
  let open Expr.Infix in
  let b = Builder.create ~file:"db.mmp" ~name:"db" () in
  Builder.func b "main" (fun () ->
      [
        Builder.loop b ~label:"steps" ~var:"s" ~count:(i 5) (fun () ->
            [
              Builder.branch b
                ~cond:(rank = i 0)
                (fun () ->
                  [
                    Builder.comp b ~label:"slow_loop" ~flops:(i work)
                      ~mem:(i work / i 2) ();
                  ]);
              Builder.comp b ~label:"balanced" ~flops:(i 1_000_000)
                ~mem:(i 500_000) ();
              Builder.barrier b;
            ]);
      ]);
  Builder.program b

let late_sender_program () =
  let open Expr.Infix in
  let b = Builder.create ~file:"ls.mmp" ~name:"ls" () in
  Builder.func b "main" (fun () ->
      [
        Builder.branch b
          ~cond:(rank = i 0)
          ~else_:(fun () ->
            [ Builder.recv b ~src:(i 0) ~tag:(i 1) ~bytes:(i 64) () ])
          (fun () ->
            [
              Builder.comp b ~label:"late" ~flops:(i 50_000_000)
                ~mem:(i 20_000_000) ();
              Builder.send b ~dest:(i 1) ~tag:(i 1) ~bytes:(i 64) ();
            ]);
      ]);
  Builder.program b

(* --- tracer --- *)

let test_tracer_counts_and_bytes () =
  let tr = Tracer.create () in
  let prog = ring_program ~niter:5 () in
  ignore (run ~nprocs:4 ~tools:[ Tracer.tool tr ] prog);
  check_bool "events logged" true (Tracer.n_events tr > 0);
  check_int "bytes = events x 40" (Tracer.n_events tr * 40)
    (Tracer.storage_bytes tr);
  check_bool "not truncated" true (not (Tracer.truncated tr))

let test_tracer_truncation () =
  let config = { Tracer.default_config with keep_limit = 3 } in
  let tr = Tracer.create ~config () in
  let prog = ring_program ~niter:5 () in
  ignore (run ~nprocs:4 ~tools:[ Tracer.tool tr ] prog);
  check_bool "truncated" true (Tracer.truncated tr);
  check_int "kept only 3" 3 (List.length (Tracer.events tr))

let test_tracer_sub_regions () =
  (* a bigger computation produces more traced sub-regions (bytes) *)
  let run_with work =
    let tr = Tracer.create () in
    ignore (run ~nprocs:2 ~tools:[ Tracer.tool tr ] (ring_program ~niter:2 ~work ()));
    Tracer.storage_bytes tr
  in
  check_bool "storage grows with work" true
    (run_with 10_000_000 > run_with 10_000)

let test_tracer_overhead_charged () =
  let prog = ring_program ~niter:20 ~work:2_000_000 () in
  let bare = run ~nprocs:4 prog in
  let tr = Tracer.create () in
  let traced = run ~nprocs:4 ~tools:[ Tracer.tool tr ] prog in
  check_bool "tracing slows the run" true
    (traced.Exec.elapsed > bare.Exec.elapsed)

(* --- replay --- *)

let test_replay_late_sender () =
  let tr = Tracer.create () in
  ignore (run ~nprocs:2 ~tools:[ Tracer.tool tr ] (late_sender_program ()));
  let states = Replay.analyze (Tracer.events tr) in
  check_bool "found states" true (states <> []);
  let top = List.hd states in
  check_bool "late sender class" true (top.Replay.ws_class = Replay.Late_sender);
  check_bool "wait positive" true (top.Replay.total_wait > 0.001)

let test_replay_collective_wait () =
  let tr = Tracer.create () in
  ignore (run ~nprocs:4 ~tools:[ Tracer.tool tr ] (delayed_barrier_program ()));
  let states = Replay.analyze (Tracer.events tr) in
  let colls =
    List.filter
      (fun ws -> ws.Replay.ws_class = Replay.Wait_at_collective)
      states
  in
  check_bool "collective waits found" true (colls <> []);
  let ws = List.hd colls in
  (* three of four ranks wait for rank 0 *)
  check_int "waiting ranks" 3 (List.length ws.Replay.ranks)

let test_replay_quiet_program () =
  let tr = Tracer.create () in
  ignore (run ~nprocs:4 ~tools:[ Tracer.tool tr ] (ring_program ~niter:3 ()));
  let states = Replay.report (Tracer.events tr) ~top:5 in
  (* balanced ring: nothing waits appreciably *)
  List.iter
    (fun ws ->
      check_bool "small waits only" true (ws.Replay.total_wait < 0.05))
    states

(* --- cct / callprof --- *)

let test_cct_nodes_and_merge () =
  let cp = Callprof.create ~nprocs:4 () in
  let prog = delayed_barrier_program () in
  ignore (run ~nprocs:4 ~tools:[ Callprof.tool cp ] prog);
  let cct = Callprof.cct cp in
  check_bool "nodes exist" true (Cct.n_nodes cct > 0);
  check_int "storage" (Cct.n_nodes cct * Cct.bytes_per_node)
    (Cct.storage_bytes cct);
  let merged = Cct.merge cct in
  check_bool "merged nonempty" true (merged <> []);
  (* merged entries never report more ranks than exist *)
  List.iter
    (fun (m : Cct.merged) ->
      check_bool "ranks bounded" true (m.Cct.m_ranks >= 1 && m.Cct.m_ranks <= 4))
    merged

let test_callprof_finds_bottleneck_points () =
  let cp = Callprof.create ~nprocs:4 () in
  let prog = delayed_barrier_program () in
  ignore (run ~nprocs:4 ~tools:[ Callprof.tool cp ] prog);
  let spots = Callprof.hotspots ~top:5 cp in
  check_bool "hotspots found" true (spots <> []);
  (* the slow loop and the barrier both appear: symptoms, no causality *)
  let time_of_mpi =
    List.exists (fun (h : Callprof.hotspot) -> h.hs_is_mpi) spots
  in
  let has_comp =
    List.exists (fun (h : Callprof.hotspot) -> not h.hs_is_mpi) spots
  in
  check_bool "MPI symptom listed" true time_of_mpi;
  check_bool "compute point listed" true has_comp;
  (* imbalance of the rank-0-only loop is visible *)
  let imbalanced =
    List.exists (fun (h : Callprof.hotspot) -> h.hs_imbalance > 2.0) spots
  in
  check_bool "imbalance surfaced" true imbalanced

let test_callprof_overhead_charged () =
  let prog = ring_program ~niter:20 ~work:2_000_000 () in
  let bare = run ~nprocs:4 prog in
  let cp = Callprof.create ~nprocs:4 () in
  let profiled = run ~nprocs:4 ~tools:[ Callprof.tool cp ] prog in
  check_bool "profiling slows the run" true
    (profiled.Exec.elapsed > bare.Exec.elapsed)

(* --- cross-tool ordering (Table I property) --- *)

let test_overhead_and_storage_ordering () =
  let entry = Scalana_apps.Registry.find "cg" in
  let prog = entry.make () in
  let ms = Scalana.Experiment.tool_comparison ~cost:entry.cost prog ~nprocs:16 in
  let find k =
    List.find (fun (m : Scalana.Experiment.measurement) -> m.tool = k) ms
  in
  let tr = find Scalana.Experiment.Tracing_tool in
  let cp = find Scalana.Experiment.Callpath_tool in
  let sa = find Scalana.Experiment.Scalana_tool in
  check_bool "tracing storage dominates" true
    (tr.storage_bytes > 10 * cp.storage_bytes
    && tr.storage_bytes > 10 * sa.storage_bytes);
  check_bool "tracing overhead largest" true
    (tr.overhead_pct > cp.overhead_pct && tr.overhead_pct > sa.overhead_pct);
  check_bool "scalana cheapest" true (sa.overhead_pct <= cp.overhead_pct)


(* --- trace files --- *)

let test_trace_io_roundtrip () =
  let tr = Tracer.create () in
  ignore (run ~nprocs:4 ~tools:[ Tracer.tool tr ] (delayed_barrier_program ()));
  let events = Tracer.events tr in
  let path = Filename.temp_file "scalana" ".trace" in
  Trace_io.save ~path events;
  let loaded = Trace_io.load ~path in
  check_int "same count" (List.length events) (List.length loaded);
  (* replay gives identical wait states on the reloaded trace *)
  let ws1 = Replay.analyze events and ws2 = Replay.analyze loaded in
  check_int "same wait states" (List.length ws1) (List.length ws2);
  List.iter2
    (fun a b ->
      check_string "same loc" (Loc.to_string a.Replay.ws_loc)
        (Loc.to_string b.Replay.ws_loc);
      Testutil.close "same wait" a.Replay.total_wait b.Replay.total_wait)
    ws1 ws2;
  (* and the critical path agrees too *)
  let cp1 = Scalana_detect.Critpath.analyze events in
  let cp2 = Scalana_detect.Critpath.analyze loaded in
  Testutil.close ~eps:1e-6 "same critical path" cp1.Scalana_detect.Critpath.total
    cp2.Scalana_detect.Critpath.total

let test_trace_io_malformed () =
  let path = Filename.temp_file "scalana" ".trace" in
  let oc = open_out path in
  output_string oc "C\t0\tnot_a_float\t0.1\tx:1\t-\tfoo\n";
  close_out oc;
  match Trace_io.load ~path with
  | _ -> Alcotest.fail "expected Malformed"
  | exception Trace_io.Malformed { line_no = 1; _ } -> ()

let () =
  Alcotest.run "baselines"
    [
      ( "tracer",
        [
          Alcotest.test_case "counts and bytes" `Quick
            test_tracer_counts_and_bytes;
          Alcotest.test_case "truncation" `Quick test_tracer_truncation;
          Alcotest.test_case "sub-region volume" `Quick test_tracer_sub_regions;
          Alcotest.test_case "overhead charged" `Quick
            test_tracer_overhead_charged;
        ] );
      ( "replay",
        [
          Alcotest.test_case "late sender" `Quick test_replay_late_sender;
          Alcotest.test_case "wait at collective" `Quick
            test_replay_collective_wait;
          Alcotest.test_case "quiet program" `Quick test_replay_quiet_program;
        ] );
      ( "callprof",
        [
          Alcotest.test_case "cct nodes and merge" `Quick
            test_cct_nodes_and_merge;
          Alcotest.test_case "bottleneck points, no causality" `Quick
            test_callprof_finds_bottleneck_points;
          Alcotest.test_case "overhead charged" `Quick
            test_callprof_overhead_charged;
        ] );
      ( "trace-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_io_roundtrip;
          Alcotest.test_case "malformed input" `Quick test_trace_io_malformed;
        ] );
      ( "comparison",
        [
          Alcotest.test_case "Table I ordering" `Quick
            test_overhead_and_storage_ordering;
        ] );
    ]
