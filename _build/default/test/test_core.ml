(* Tests for the core facade: static analysis step, profiled runs,
   pipeline, artifacts, experiments, viewer and the Fig. 2 delay
   injection scenario. *)

open Scalana_mlang
open Scalana_runtime
open Testutil

let test_static_analyze () =
  let prog = fig3_program () in
  let static = Scalana.Static.analyze prog in
  check_bool "psg nonempty" true
    (Scalana_psg.Psg.n_vertices (Scalana.Static.psg static) > 0);
  check_bool "stats consistent" true
    (static.stats.Scalana_psg.Stats.vbc >= static.stats.Scalana_psg.Stats.vac)

let test_static_rejects_invalid () =
  let b = Builder.create ~file:"bad.mmp" ~name:"bad" () in
  Builder.func b "main" (fun () -> [ Builder.call b "ghost" ]);
  let prog = Builder.program b in
  match Scalana.Static.analyze prog with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_static_overhead_measurable () =
  let prog = (Scalana_apps.Registry.find "cg").make () in
  let pct = Scalana.Static.static_overhead ~repeat:1 prog in
  check_bool "positive" true (pct > 0.0);
  check_bool "below base compile" true (pct < 100.0)

let test_prof_run_and_overhead () =
  let entry = Scalana_apps.Registry.find "cg" in
  let static = Scalana.Static.analyze (entry.make ()) in
  let run =
    Scalana.Prof.run ~cost:entry.cost ~measure_overhead:true static ~nprocs:8 ()
  in
  check_int "nprocs" 8 run.nprocs;
  (match Scalana.Prof.overhead_percent run with
  | Some pct ->
      check_bool "overhead in a sane band" true (pct > 0.0 && pct < 25.0)
  | None -> Alcotest.fail "overhead requested but missing");
  check_bool "samples collected" true (run.data.total_samples > 0)

let test_prof_refines_indirect () =
  let static = Scalana.Static.analyze (recursion_program ()) in
  let before = Scalana_psg.Psg.n_vertices (Scalana.Static.psg static) in
  let _run = Scalana.Prof.run static ~nprocs:4 () in
  let after = Scalana_psg.Psg.n_vertices (Scalana.Static.psg static) in
  check_bool "PSG refined with runtime targets" true (after > before)

let test_pipeline_end_to_end () =
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~scales:[ 4; 8; 16 ] (entry.make ())
  in
  check_int "three runs" 3 (List.length pipe.runs);
  check_bool "detect cost measured" true (pipe.detect_seconds >= 0.0);
  check_bool "report nonempty" true (String.length pipe.report > 100);
  check_bool "root causes found" true (pipe.analysis.causes <> [])

let test_fig2_injected_delay () =
  (* the motivating example: a delay planted in one process of NPB-CG is
     traced back to that rank's computation *)
  let entry = Scalana_apps.Registry.find "cg" in
  let prog = entry.make () in
  (* find the spmv comp's source line to target the injection *)
  let spmv_loc = ref None in
  Ast.iter_program
    (fun s ->
      match s.Ast.node with
      | Ast.Comp { label = Some "spmv"; _ } -> spmv_loc := Some s.Ast.loc
      | _ -> ())
    prog;
  let loc = Option.get !spmv_loc in
  let inject = Inject.create [ Inject.delay ~ranks:[ 4 ] ~loc 1.0 ] in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~inject ~scales:[ 8 ] prog
  in
  (* the abnormal detector flags the injected rank at the spmv vertex *)
  let hit =
    List.exists
      (fun (f : Scalana_detect.Abnormal.finding) ->
        let v = Scalana_psg.Psg.vertex (Scalana.Static.psg pipe.static) f.vertex in
        Loc.equal v.Scalana_psg.Vertex.loc loc && List.mem 4 f.ranks)
      pipe.analysis.abnormal
  in
  check_bool "injected rank flagged at spmv" true hit;
  (* and a root-cause path terminates on rank 4 *)
  check_bool "a cause blames rank 4" true
    (List.exists
       (fun (c : Scalana_detect.Rootcause.cause) ->
         List.mem 4 c.culprit_ranks)
       pipe.analysis.causes)


let test_pipeline_accessors () =
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~scales:[ 4; 8 ] (entry.make ())
  in
  let locs = Scalana.Pipeline.root_cause_locs pipe in
  let labels = Scalana.Pipeline.root_cause_labels pipe in
  check_int "locs match labels" (List.length locs) (List.length labels);
  List.iter
    (fun loc ->
      check_string "locs point into the program" "zeusmp.mmp" (Loc.file loc))
    locs

let test_param_override () =
  (* runtime parameter overrides shrink the run proportionally *)
  let entry = Scalana_apps.Registry.find "ep" in
  let prog = entry.make () in
  let t_full = Scalana.Experiment.bare_elapsed prog ~nprocs:4 in
  let t_small =
    Scalana.Experiment.bare_elapsed ~params:[ ("m", 9_000_000_000) ] prog
      ~nprocs:4
  in
  check_bool "override shrinks the run" true
    (t_small < 0.5 *. t_full && t_small > 0.1 *. t_full)

let test_artifact_roundtrip () =
  let dir = Filename.temp_file "scalana" "" in
  Sys.remove dir;
  let entry = Scalana_apps.Registry.find "cg" in
  let static = Scalana.Static.analyze (entry.make ()) in
  Scalana.Artifact.save_static dir static;
  let run = Scalana.Prof.run ~cost:entry.cost static ~nprocs:4 () in
  Scalana.Artifact.save_run dir run;
  let run8 = Scalana.Prof.run ~cost:entry.cost static ~nprocs:8 () in
  Scalana.Artifact.save_run dir run8;
  let session = Scalana.Artifact.load_session dir in
  check_int "two runs" 2 (List.length session.runs);
  Alcotest.(check (list int))
    "sorted scales" [ 4; 8 ]
    (List.map fst session.runs);
  check_bool "program preserved" true
    (String.equal session.static.program.pname "npb-cg");
  (* detection works on the reloaded session *)
  let pipe = Scalana.Pipeline.detect session.static session.runs in
  check_bool "report renders" true (String.length pipe.report > 0)

let test_artifact_bad_magic () =
  let f = Filename.temp_file "scalana" ".static" in
  let oc = open_out f in
  output_string oc "NOTSCALANA";
  close_out oc;
  match (Scalana.Artifact.load_value f : Scalana.Static.t) with
  | _ -> Alcotest.fail "expected failure"
  | exception _ -> ()

let test_config_mapping () =
  let c = { Scalana.Config.default with abnorm_thd = 2.0; sampling_freq = 97.0 } in
  let ab = Scalana.Config.ab_config c in
  check_float "thd" 2.0 ab.Scalana_detect.Abnormal.abnorm_thd;
  let pc = Scalana.Config.profiler_config c in
  check_float "freq" 97.0 pc.Scalana_profile.Profiler.freq

let test_experiment_speedup_rows () =
  let entry = Scalana_apps.Registry.find "sst" in
  let rows =
    Scalana.Experiment.speedup ~cost:entry.cost ~make:entry.make ~baseline_np:4
      ~scales:[ 4; 16 ] ()
  in
  check_int "two rows" 2 (List.length rows);
  let r0 = List.hd rows in
  close "baseline speedup 1" 1.0 r0.Scalana.Experiment.base_speedup;
  close "baseline opt speedup 1" 1.0 r0.opt_speedup;
  let r1 = List.nth rows 1 in
  (* the array->map fix improves SST at scale (the paper's 73%@32) *)
  check_bool "improvement positive" true (r1.improvement_pct > 10.0);
  check_bool "opt scales better" true (r1.opt_speedup > r1.base_speedup)

let test_viewer_renders () =
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~scales:[ 4; 8 ] (entry.make ())
  in
  let text = Scalana.Viewer.show pipe in
  check_bool "has source view" true
    (try
       ignore (Str.search_forward (Str.regexp_string "source view") text 0);
       true
     with Not_found -> false);
  check_bool "summary lines" true (Scalana.Viewer.summary pipe <> [])

let test_mean_overhead_ordering () =
  let entry = Scalana_apps.Registry.find "mg" in
  let means =
    Scalana.Experiment.mean_overhead ~cost:entry.cost (entry.make ())
      ~scales:[ 4; 8 ]
  in
  let get k = List.assoc k means in
  check_bool "tracing most expensive" true
    (get Scalana.Experiment.Tracing_tool > get Scalana.Experiment.Scalana_tool);
  check_bool "scalana cheap" true (get Scalana.Experiment.Scalana_tool < 10.0)


let test_html_report () =
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~scales:[ 4; 8 ] (entry.make ())
  in
  let html = Scalana.Htmlreport.render pipe in
  let has needle =
    try
      ignore (Str.search_forward (Str.regexp_string needle) html 0);
      true
    with Not_found -> false
  in
  check_bool "is html" true (has "<!doctype html>");
  check_bool "has svg bars" true (has "<svg");
  check_bool "has causes" true (has "Root causes");
  check_bool "mentions bval" true (has "bval");
  (* escaping: raw angle brackets from expressions must not survive *)
  check_bool "escaped" true (not (has "1 << k"));
  let path = Filename.temp_file "scalana" ".html" in
  Scalana.Htmlreport.write pipe ~path;
  check_bool "file written" true (Sys.file_exists path && (Unix.stat path).Unix.st_size > 1000)

let () =
  Alcotest.run "core"
    [
      ( "static",
        [
          Alcotest.test_case "analyze" `Quick test_static_analyze;
          Alcotest.test_case "rejects invalid" `Quick test_static_rejects_invalid;
          Alcotest.test_case "overhead measurable" `Slow
            test_static_overhead_measurable;
        ] );
      ( "prof",
        [
          Alcotest.test_case "run and overhead" `Quick test_prof_run_and_overhead;
          Alcotest.test_case "refines indirect calls" `Quick
            test_prof_refines_indirect;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "end to end" `Quick test_pipeline_end_to_end;
          Alcotest.test_case "fig2 injected delay" `Quick
            test_fig2_injected_delay;
          Alcotest.test_case "accessors" `Quick test_pipeline_accessors;
          Alcotest.test_case "param override" `Quick test_param_override;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "roundtrip" `Quick test_artifact_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_artifact_bad_magic;
        ] );
      ( "config",
        [ Alcotest.test_case "mapping" `Quick test_config_mapping ] );
      ( "experiment",
        [
          Alcotest.test_case "speedup rows" `Quick test_experiment_speedup_rows;
          Alcotest.test_case "mean overhead ordering" `Slow
            test_mean_overhead_ordering;
        ] );
      ( "viewer",
        [
          Alcotest.test_case "renders" `Quick test_viewer_renders;
          Alcotest.test_case "html report" `Quick test_html_report;
        ] );
    ]
