(* Tests for PPG construction and the cross-scale container. *)

open Scalana_mlang
open Scalana_psg
open Scalana_runtime
open Scalana_profile
open Scalana_ppg
open Testutil

let profile ?(nprocs = 4) ?(record_prob = 1.0) prog =
  let locals = Intra.build_all prog in
  let full = Inter.build ~locals prog in
  let contraction = Contract.run full in
  let index = Index.build ~full ~contraction in
  let config = { Profiler.default_config with record_prob } in
  let profiler = Profiler.create ~config ~index ~nprocs () in
  let cfg = Exec.config ~nprocs ~tools:[ Profiler.tool profiler ] () in
  ignore (Exec.run ~cfg prog);
  (contraction.Contract.psg, Profiler.data profiler)

(* late-sender chain: rank r+1 waits on rank r's send *)
let chain_program () =
  let open Expr.Infix in
  let b = Builder.create ~file:"chain.mmp" ~name:"chain" () in
  Builder.func b "main" (fun () ->
      [
        Builder.loop b ~label:"steps" ~var:"s" ~count:(i 6) (fun () ->
            [
              Builder.branch b
                ~cond:(rank = i 0)
                (fun () ->
                  [
                    Builder.comp b ~label:"origin" ~flops:(i 40_000_000)
                      ~mem:(i 15_000_000) ();
                  ]);
              Builder.branch b
                ~cond:(rank > i 0)
                (fun () ->
                  [
                    Builder.recv b ~src:(rank - i 1) ~tag:(i 1)
                      ~bytes:(i 4096) ();
                  ]);
              Builder.branch b
                ~cond:(rank < np - i 1)
                (fun () ->
                  [
                    Builder.send b ~dest:(rank + i 1) ~tag:(i 1)
                      ~bytes:(i 4096) ();
                  ]);
              Builder.allreduce b ~bytes:(i 8);
            ]);
      ]);
  Builder.program b

let test_ppg_comm_edges () =
  let psg, data = profile (chain_program ()) in
  let ppg = Ppg.build ~psg data in
  check_bool "edges exist" true (Ppg.n_comm_edges ppg > 0);
  (* rank 2's recv has an incoming edge from rank 1 *)
  let recv_vertex =
    List.find
      (fun v ->
        match v.Vertex.kind with
        | Vertex.Mpi (Ast.Recv _) -> true
        | _ -> false)
      (Psg.find_all Vertex.is_mpi psg)
  in
  let edges = Ppg.incoming_edges ppg ~rank:2 ~vertex:recv_vertex.Vertex.id in
  check_bool "rank2 incoming" true (edges <> []);
  List.iter
    (fun (e : Ppg.comm_edge) -> check_int "sender is rank 1" 1 e.send_rank)
    edges

let test_ppg_waiting_edges_filter () =
  let psg, data = profile (chain_program ()) in
  let ppg = Ppg.build ~psg data in
  let recv_vertex =
    List.find
      (fun v ->
        match v.Vertex.kind with Vertex.Mpi (Ast.Recv _) -> true | _ -> false)
      (Psg.find_all Vertex.is_mpi psg)
  in
  (* rank 1 waits on rank 0's origin delay: critical edge present *)
  (match Ppg.critical_edge ppg ~rank:1 ~vertex:recv_vertex.Vertex.id with
  | Some e ->
      check_int "from rank 0" 0 e.Ppg.send_rank;
      check_bool "waited" true e.Ppg.has_wait
  | None -> Alcotest.fail "rank 1 should have a waiting edge");
  (* waiting_edges is a subset of incoming_edges *)
  let all = Ppg.incoming_edges ppg ~rank:1 ~vertex:recv_vertex.Vertex.id in
  let waiting = Ppg.waiting_edges ppg ~rank:1 ~vertex:recv_vertex.Vertex.id in
  check_bool "subset" true (List.length waiting <= List.length all)

let test_ppg_coll_late_rank () =
  let psg, data = profile (chain_program ()) in
  let ppg = Ppg.build ~psg data in
  let allreduce =
    List.find
      (fun v ->
        match v.Vertex.kind with
        | Vertex.Mpi (Ast.Allreduce _) -> true
        | _ -> false)
      (Psg.find_all Vertex.is_mpi psg)
  in
  match Ppg.coll_late_rank ppg ~vertex:allreduce.Vertex.id with
  | Some late -> check_int "last rank arrives last" 3 late
  | None -> Alcotest.fail "no collective record"

let test_ppg_times () =
  let psg, data = profile (chain_program ()) in
  let ppg = Ppg.build ~psg data in
  let origin =
    List.find
      (fun v ->
        match v.Vertex.kind with
        | Vertex.Comp { label = Some "origin"; _ } -> true
        | _ -> false)
      (Psg.find_all Vertex.is_comp psg)
  in
  let times = Ppg.times_across_ranks ppg ~vertex:origin.Vertex.id in
  check_bool "rank0 dominates" true
    (times.(0) > times.(1) && times.(0) > times.(2) && times.(0) > times.(3));
  check_bool "total positive" true (Ppg.total_time ppg > 0.0)

let test_crossscale () =
  let prog = chain_program () in
  let psg, d4 = profile ~nprocs:4 prog in
  let _, d8 = profile ~nprocs:8 prog in
  let cs = Crossscale.create ~psg [ (8, d8); (4, d4) ] in
  Alcotest.(check (list int)) "scales sorted" [ 4; 8 ] (Crossscale.scales cs);
  let n, _ = Crossscale.largest cs in
  check_int "largest" 8 n;
  check_bool "ppg at 4 exists" true (Crossscale.ppg_at cs ~nprocs:4 <> None);
  check_bool "ppg at 16 missing" true (Crossscale.ppg_at cs ~nprocs:16 = None);
  let touched = Crossscale.touched_vertices cs in
  check_bool "touched nonempty" true (touched <> []);
  (* series per vertex has one entry per scale with per-rank arrays *)
  let v = List.hd touched in
  let series = Crossscale.series cs ~vertex:v in
  check_int "two points" 2 (List.length series);
  List.iter
    (fun (n, arr) -> check_int "array width" n (Array.length arr))
    series

let () =
  Alcotest.run "ppg"
    [
      ( "build",
        [
          Alcotest.test_case "comm edges" `Quick test_ppg_comm_edges;
          Alcotest.test_case "waiting edges" `Quick
            test_ppg_waiting_edges_filter;
          Alcotest.test_case "collective late rank" `Quick
            test_ppg_coll_late_rank;
          Alcotest.test_case "per-rank times" `Quick test_ppg_times;
        ] );
      ("crossscale", [ Alcotest.test_case "container" `Quick test_crossscale ]);
    ]
