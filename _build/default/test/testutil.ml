(* Shared fixtures and helpers for the test suites. *)

open Scalana_mlang

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let close ?(eps = 1e-6) msg expected actual =
  if abs_float (expected -. actual) > eps *. (1.0 +. abs_float expected) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

(* A small ring program: one compute block and a bidirectional shift per
   iteration, then an allreduce. *)
let ring_program ?(niter = 10) ?(work = 100_000) () =
  let open Expr.Infix in
  let b = Builder.create ~file:"ring.mmp" ~name:"ring" () in
  Builder.param b "w" work;
  Builder.param b "niter" niter;
  Builder.func b "main" (fun () ->
      [
        Builder.loop b ~label:"iter" ~var:"it" ~count:(p "niter") (fun () ->
            [
              Builder.comp b ~label:"work" ~flops:(p "w") ~mem:(p "w") ();
              Builder.sendrecv b
                ~dest:((rank + i 1) % np)
                ~sbytes:(i 4096)
                ~src:((rank - i 1 + np) % np)
                ~rbytes:(i 4096) ();
            ]);
        Builder.allreduce b ~bytes:(i 8);
      ]);
  Builder.program b

(* Functions, a branch, nested loops, an MPI pair — the Fig. 3 example. *)
let fig3_program () =
  let open Expr.Infix in
  let b = Builder.create ~file:"fig3.mmp" ~name:"fig3" () in
  Builder.param b "n" 1000;
  Builder.func b "foo" (fun () ->
      [
        Builder.branch b
          ~cond:(rank % i 2 = i 0)
          ~else_:(fun () ->
            [ Builder.recv b ~src:(rank - i 1) ~tag:(i 7) ~bytes:(i 64) () ])
          (fun () ->
            [ Builder.send b ~dest:(rank + i 1) ~tag:(i 7) ~bytes:(i 64) () ]);
      ]);
  Builder.func b "main" (fun () ->
      [
        Builder.loop b ~label:"loop1" ~var:"i" ~count:(p "n" / i 100) (fun () ->
            [
              Builder.comp b ~label:"a_init" ~flops:(p "n") ~mem:(p "n") ();
              Builder.loop b ~label:"loop1_1" ~var:"j" ~count:(i 4) (fun () ->
                  [ Builder.comp b ~label:"sum" ~flops:(p "n") ~mem:(p "n") () ]);
              Builder.loop b ~label:"loop1_2" ~var:"k" ~count:(i 4) (fun () ->
                  [ Builder.comp b ~label:"prod" ~flops:(p "n") ~mem:(p "n") () ]);
              Builder.call b "foo";
              Builder.bcast b ~bytes:(i 8) ();
            ]);
      ]);
  Builder.program b

(* Recursive and indirect calls for call-graph / PSG tests. *)
let recursion_program () =
  let open Expr.Infix in
  let b = Builder.create ~file:"rec.mmp" ~name:"rec" () in
  Builder.func b "alpha" (fun () ->
      [ Builder.comp b ~label:"alpha_work" ~flops:(i 1000) ~mem:(i 100) () ]);
  Builder.func b "beta" (fun () ->
      [ Builder.comp b ~label:"beta_work" ~flops:(i 2000) ~mem:(i 200) () ]);
  Builder.func b "walk" ~params:[ "d" ] (fun () ->
      [
        Builder.comp b ~label:"walk_work" ~flops:(i 500) ~mem:(i 50) ();
        Builder.branch b
          ~cond:(v "d" > i 0)
          (fun () -> [ Builder.call b "walk" ~args:[ ("d", v "d" - i 1) ] ]);
      ]);
  Builder.func b "main" (fun () ->
      [
        Builder.call b "walk" ~args:[ ("d", i 3) ];
        Builder.icall b ~selector:(rank % i 2) [ "alpha"; "beta" ];
        Builder.barrier b;
      ]);
  Builder.program b

let run ?(nprocs = 4) ?inject ?cost ?tools program =
  let cfg =
    Scalana_runtime.Exec.config ~nprocs ?inject ?cost ?tools ()
  in
  Scalana_runtime.Exec.run ~cfg program

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Per-rank PMU of the (unique) comp vertex carrying [label], measured by
   a profiled run — the view the paper's Fig. 15/16 plots show. *)
let per_vertex_pmu ?cost ?(nprocs = 8) ~label prog =
  let locals = Scalana_psg.Intra.build_all prog in
  let full = Scalana_psg.Inter.build ~locals prog in
  let contraction = Scalana_psg.Contract.run full in
  let index = Scalana_psg.Index.build ~full ~contraction in
  let profiler = Scalana_profile.Profiler.create ~index ~nprocs () in
  let cfg =
    Scalana_runtime.Exec.config ~nprocs ?cost
      ~tools:[ Scalana_profile.Profiler.tool profiler ] ()
  in
  ignore (Scalana_runtime.Exec.run ~cfg prog);
  let data = Scalana_profile.Profiler.data profiler in
  let vertex =
    List.find
      (fun v ->
        match v.Scalana_psg.Vertex.kind with
        | Scalana_psg.Vertex.Comp { label = Some l; _ } -> String.equal l label
        | _ -> false)
      (Scalana_psg.Psg.find_all
         (fun v -> Scalana_psg.Vertex.is_comp v)
         contraction.Scalana_psg.Contract.psg)
  in
  Array.init nprocs (fun rank ->
      match
        Scalana_profile.Profdata.vector_opt data ~rank
          ~vertex:vertex.Scalana_psg.Vertex.id
      with
      | Some v -> v.Scalana_profile.Perfvec.pmu
      | None -> Scalana_runtime.Pmu.zero)
