(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation plus the ablation benches, then runs the Bechamel
   micro-benchmarks.

     dune exec bench/main.exe                 # everything (4..128 procs)
     dune exec bench/main.exe -- --fast       # cap sweeps at 32 procs
     dune exec bench/main.exe -- --only fig12 --only table2
     dune exec bench/main.exe -- --list                          *)

open Cmdliner

let experiments = Experiments.all @ Ablations.all @ Parallel.all

let run only fast no_bech list_only =
  if list_only then begin
    List.iter (fun (name, _) -> print_endline name) experiments;
    print_endline "bechamel"
  end
  else begin
    Experiments.max_np := (if fast then 32 else 128);
    let wanted name = only = [] || List.mem name only in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (name, fn) ->
        if wanted name then begin
          try fn ()
          with e ->
            Printf.printf "  !! %s failed: %s\n%!" name (Printexc.to_string e)
        end)
      experiments;
    if (not no_bech) && wanted "bechamel" then begin
      try Microbench.run ()
      with e ->
        Printf.printf "  !! bechamel failed: %s\n%!" (Printexc.to_string e)
    end;
    Printf.printf "\nTotal bench wall time: %.1fs\n"
      (Unix.gettimeofday () -. t0)
  end

let only_arg =
  Arg.(
    value & opt_all string []
    & info [ "only" ] ~docv:"ID"
        ~doc:"Run only the given experiment (repeatable). See --list.")

let fast_arg =
  Arg.(value & flag & info [ "fast" ] ~doc:"Cap process sweeps at 32 ranks.")

let no_bech_arg =
  Arg.(value & flag & info [ "no-bechamel" ] ~doc:"Skip micro-benchmarks.")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.")

let cmd =
  Cmd.v
    (Cmd.info "scalana-bench"
       ~doc:"Regenerate every table and figure of the ScalAna paper")
    Term.(const run $ only_arg $ fast_arg $ no_bech_arg $ list_arg)

let () = exit (Cmd.eval cmd)
