(* Bechamel micro-benchmarks: one Test.make per table/figure, timing the
   analysis kernel that regenerates it (the experiment harnesses above
   print the actual rows; these measure how fast the kernels run). *)

open Bechamel
open Toolkit

let make_tests () =
  let zeus = Util.pipeline ~max_np:32 "zeusmp" in
  let psg = Scalana.Static.psg zeus.Scalana.Pipeline.static in
  let _, ppg = Scalana_ppg.Crossscale.largest zeus.crossscale in
  let cg_entry = Scalana_apps.Registry.find "cg" in
  let cg_prog = cg_entry.make () in
  let fig3 = (Scalana_apps.Registry.find "mg").make () in
  let data =
    match zeus.runs with
    | (_, r) :: _ -> r.Scalana.Prof.data
    | [] -> assert false
  in
  [
    Test.make ~name:"table1_storage_accounting"
      (Staged.stage (fun () -> Scalana_profile.Profdata.storage_bytes data));
    Test.make ~name:"fig2_injected_run_np8"
      (Staged.stage (fun () ->
           let inject =
             Scalana_runtime.Inject.create
               [ Scalana_runtime.Inject.delay ~ranks:[ 1 ] 0.001 ]
           in
           let cfg =
             Scalana_runtime.Exec.config ~nprocs:8 ~cost:cg_entry.cost ~inject ()
           in
           (Scalana_runtime.Exec.run ~cfg cg_prog).Scalana_runtime.Exec.elapsed));
    Test.make ~name:"fig4_psg_intra_inter"
      (Staged.stage (fun () ->
           let locals = Scalana_psg.Intra.build_all fig3 in
           Scalana_psg.Psg.n_vertices (Scalana_psg.Inter.build ~locals fig3)));
    Test.make ~name:"fig7_loglog_fits"
      (Staged.stage (fun () ->
           List.iter
             (fun vertex ->
               let series =
                 List.map
                   (fun (n, a) ->
                     (n, Scalana_detect.Aggregate.apply Scalana_detect.Aggregate.Mean a))
                   (Scalana_ppg.Crossscale.series zeus.crossscale ~vertex)
               in
               ignore (Scalana_detect.Loglog.fit series))
             (Scalana_ppg.Crossscale.touched_vertices zeus.crossscale)));
    Test.make ~name:"fig8_ppg_build"
      (Staged.stage (fun () -> Scalana_ppg.Ppg.build ~psg data));
    Test.make ~name:"table2_psg_contract"
      (Staged.stage (fun () ->
           let full = Scalana_psg.Inter.build ((Scalana_apps.Registry.find "zeusmp").make ()) in
           Scalana_psg.Psg.n_vertices
             (Scalana_psg.Contract.run full).Scalana_psg.Contract.psg));
    Test.make ~name:"table3_base_compile"
      (Staged.stage (fun () -> Scalana.Static.base_compile ~passes:5 cg_prog));
    Test.make ~name:"fig10_profiled_run_np8"
      (Staged.stage (fun () ->
           let static = Scalana.Static.analyze cg_prog in
           (Scalana.Prof.run ~cost:cg_entry.cost static ~nprocs:8 ())
             .Scalana.Prof.result.Scalana_runtime.Exec.elapsed));
    Test.make ~name:"fig11_tracer_run_np8"
      (Staged.stage (fun () ->
           let tr = Scalana_baselines.Tracer.create () in
           let cfg =
             Scalana_runtime.Exec.config ~nprocs:8 ~cost:cg_entry.cost
               ~tools:[ Scalana_baselines.Tracer.tool tr ] ()
           in
           ignore (Scalana_runtime.Exec.run ~cfg cg_prog);
           Scalana_baselines.Tracer.storage_bytes tr));
    Test.make ~name:"table4_detection"
      (Staged.stage (fun () ->
           Scalana_detect.Rootcause.analyze zeus.crossscale));
    Test.make ~name:"fig12_backtracking"
      (Staged.stage (fun () ->
           match zeus.analysis.nonscalable with
           | f :: _ ->
               let visited = Hashtbl.create 64 in
               let rank =
                 Scalana_detect.Rootcause.start_rank ppg ~vertex:f.vertex
               in
               List.length
                 (Scalana_detect.Backtrack.backtrack ppg ~visited
                    ~start_rank:rank ~start_vertex:f.vertex)
           | [] -> 0));
    Test.make ~name:"fig13_tool_comparison_np8"
      (Staged.stage (fun () ->
           List.length
             (Scalana.Experiment.tool_comparison ~cost:cg_entry.cost cg_prog
                ~nprocs:8)));
    Test.make ~name:"fig14_abnormal_detection"
      (Staged.stage (fun () -> List.length (Scalana_detect.Abnormal.detect ppg)));
    Test.make ~name:"fig15_counter_extraction"
      (Staged.stage (fun () ->
           Scalana_profile.Profdata.touched_vertices data
           |> List.map (fun v -> Scalana_profile.Profdata.across_ranks data ~vertex:v)));
    (* 1 vs N domains over the same end-to-end pipeline: the wall-time
       ratio of these two rows is the multicore speedup *)
    Test.make ~name:"pipeline_parallel_speedup_domains1"
      (Staged.stage (fun () ->
           let config =
             { Scalana.Config.default with analysis_domains = 1 }
           in
           (Scalana.Pipeline.run ~config ~cost:cg_entry.cost
              ~scales:[ 4; 8; 16 ] cg_prog)
             .Scalana.Pipeline.detect_seconds));
    Test.make ~name:"pipeline_parallel_speedup_domains4"
      (Staged.stage (fun () ->
           let config =
             { Scalana.Config.default with analysis_domains = 4 }
           in
           (Scalana.Pipeline.run ~config ~cost:cg_entry.cost
              ~scales:[ 4; 8; 16 ] cg_prog)
             .Scalana.Pipeline.detect_seconds));
    Test.make ~name:"fig16_kmeans_merge"
      (Staged.stage (fun () ->
           List.iter
             (fun vertex ->
               ignore
                 (Scalana_detect.Aggregate.apply (Scalana_detect.Aggregate.Kmeans 3)
                    (Scalana_ppg.Ppg.times_across_ranks ppg ~vertex)))
             (Scalana_profile.Profdata.touched_vertices data)));
  ]
  (* the simulator engine's two hot structures, at the scales the
     zero-allocation rework targets: a full ring of posted-recv/send
     matches through the per-rank queues, and a fill+drain of the
     scheduler's ready heap *)
  @ List.concat_map
      (fun np ->
        [
          Test.make ~name:(Printf.sprintf "engine_match_queue_np%d" np)
            (Staged.stage (fun () ->
                 let open Scalana_runtime in
                 let comm = Comm.create ~net:Network.default ~nprocs:np in
                 let loc = Scalana_mlang.Loc.none in
                 for r = 0 to np - 1 do
                   ignore
                     (Comm.post_recv comm ~rank:r ~src:((r + 1) mod np) ~tag:7
                        ~bytes:64 ~time:0.0 ~loc ~callpath:[])
                 done;
                 for r = 0 to np - 1 do
                   ignore
                     (Comm.send comm ~src:r ~dst:((r - 1 + np) mod np) ~tag:7
                        ~bytes:64 ~time:0.0 ~loc ~callpath:[])
                 done;
                 comm.Scalana_runtime.Comm.messages_sent));
          Test.make ~name:(Printf.sprintf "engine_sched_heap_np%d" np)
            (Staged.stage (fun () ->
                 let open Scalana_runtime in
                 let h = Heap.create ~capacity:np () in
                 for r = 0 to np - 1 do
                   Heap.push h (float_of_int ((r * 7) mod 64)) r
                 done;
                 let rec drain n =
                   if Heap.pop_val h >= 0 then drain (n + 1) else n
                 in
                 drain 0));
        ])
      [ 256; 1024; 4096 ]

let run () =
  Util.section "Bechamel micro-benchmarks (one per table/figure kernel)";
  let tests = Test.make_grouped ~name:"scalana" (make_tests ()) in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let instance = Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      let ns =
        match Analyze.OLS.estimates r with
        | Some (t :: _) -> t
        | _ -> nan
      in
      Printf.printf "  %-40s %12.1f ns/run\n" name ns)
    (List.sort compare rows)
