(* Multicore-analysis bench: end-to-end pipeline wall time with the
   sequential path (1 domain) vs the domain-pool path (N domains) on the
   zeusmp case, written to BENCH_pipeline.json so the perf trajectory is
   tracked across PRs.  A third, observability-enabled run breaks the
   wall time down per pipeline phase (docs/observability.md) and the
   per-phase totals ride along in the same JSON.

   The detection output is asserted byte-identical between the two runs
   before any number is reported — a speedup that changes the answer
   would be worthless. *)

let domains = 4

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_with ~entry ~scales d =
  let config = { Scalana.Config.default with analysis_domains = d } in
  timed (fun () ->
      Scalana.Pipeline.run ~config
        ~cost:(entry : Scalana_apps.Registry.entry).cost ~scales
        (entry.make ()))

let write_json ~path ~program ~scales ~seq_s ~par_s ~phases =
  let phase_rows =
    String.concat ",\n"
      (List.map
         (fun (name, calls, total) ->
           Printf.sprintf
             "    %S: { \"calls\": %d, \"total_seconds\": %.6f }" name calls
             total)
         phases)
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"pipeline_parallel_speedup\",\n\
    \  \"program\": %S,\n\
    \  \"scales\": [%s],\n\
    \  \"analysis_domains\": %d,\n\
    \  \"recommended_domain_count\": %d,\n\
    \  \"sequential_seconds\": %.6f,\n\
    \  \"parallel_seconds\": %.6f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"phases\": {\n%s\n  }\n\
     }\n"
    program
    (String.concat ", " (List.map string_of_int scales))
    domains
    (Domain.recommended_domain_count ())
    seq_s par_s
    (if par_s > 0.0 then seq_s /. par_s else 0.0)
    phase_rows;
  close_out oc

let pipeline_parallel () =
  Util.section
    (Printf.sprintf "Pipeline speedup: 1 domain vs %d (zeusmp, end-to-end)"
       domains);
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let scales = Util.scales_for entry ~max_np:32 in
  let seq, seq_s = run_with ~entry ~scales 1 in
  let par, par_s = run_with ~entry ~scales domains in
  if not (String.equal seq.Scalana.Pipeline.report par.Scalana.Pipeline.report)
  then failwith "parallel report differs from sequential report";
  Printf.printf "  sequential (1 domain):  %8.3fs\n" seq_s;
  Printf.printf "  parallel   (%d domains): %8.3fs\n" domains par_s;
  Printf.printf "  speedup:                %8.2fx  (on %d hardware core%s)\n"
    (if par_s > 0.0 then seq_s /. par_s else 0.0)
    (Domain.recommended_domain_count ())
    (if Domain.recommended_domain_count () = 1 then "" else "s");
  Util.note "reports byte-identical across both runs";
  (* a third run with the span collector on attributes the parallel wall
     time to pipeline phases; the instrumented run is never the one the
     speedup numbers come from *)
  Scalana_obs.Obs.enable ();
  let _, _ = run_with ~entry ~scales domains in
  Scalana_obs.Obs.disable ();
  let phases = Scalana_obs.Obs.phase_summary () in
  List.iteri
    (fun i (name, calls, total) ->
      if i < 6 then
        Printf.printf "  phase %-26s %4d calls %8.3fs\n" name calls total)
    phases;
  write_json ~path:"BENCH_pipeline.json" ~program:"zeusmp" ~scales ~seq_s
    ~par_s ~phases;
  Printf.printf "  wrote BENCH_pipeline.json (%d phases)\n%!"
    (List.length phases)

let all : (string * (unit -> unit)) list =
  [ ("pipeline_parallel_speedup", pipeline_parallel) ]
