(* Multicore-analysis and engine-throughput benches, both written to
   BENCH_pipeline.json so the perf trajectory is tracked across PRs.

   [pipeline_parallel]: end-to-end pipeline wall time with the
   sequential path (1 domain) vs the domain-pool path (N domains) on the
   zeusmp case.  A third, observability-enabled run breaks the wall time
   down per pipeline phase (docs/observability.md) and the per-phase
   totals ride along in the same JSON.  The detection output is asserted
   byte-identical between the two runs before any number is reported — a
   speedup that changes the answer would be worthless.

   [engine_throughput]: raw simulator events/second on the cg-weak
   extreme-scale workload (docs/performance.md), the metric the
   zero-allocation engine rework targets.  Each scale point carries the
   pre-rework engine's measurement as its baseline. *)

let domains = 4

(* cg-weak sweep points; CI's perf-smoke budget covers the full list
   (the np=4096 point simulates ~600k events in well under a minute) *)
let engine_scales = [ 256; 1024; 4096 ]

(* events/second of the engine before the struct-of-arrays rework
   (list-based matching queues, per-proc records), same workload, same
   machine class — the floor the rework is measured against *)
let engine_baseline = function
  | 256 -> 1_165_046.0
  | 1024 -> 515_529.0
  | 4096 -> 304_060.0
  | 16384 -> 106_361.0
  | _ -> nan

(* cg-weak scale points for the PPG memory sweep; np=65536 is the point
   the columnar store exists for (ROADMAP "Columnar PPG" item) *)
let ppg_scales = [ 4096; 16384; 65536 ]

(* live words retained and build seconds of the boxed, Hashtbl-backed
   pre-rework Ppg.build on the same cg-weak profiles — the floor the
   columnar store is measured against (same machine class) *)
let ppg_baseline = function
  | 4096 -> (580_631, 0.020)
  | 16384 -> (2_632_895, 0.143)
  | 65536 -> (11_709_074, 1.089)
  | _ -> (0, nan)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_with ~entry ~scales d =
  let config = { Scalana.Config.default with analysis_domains = d } in
  timed (fun () ->
      Scalana.Pipeline.run ~config
        ~cost:(entry : Scalana_apps.Registry.entry).cost ~scales
        (entry.make ()))

(* Results land in these refs so a lone `--only` run still writes a
   complete JSON for whatever it measured. *)
type speedup_data = {
  scales : int list;
  seq_s : float;
  par_s : float;
  phases : (string * int * float) list;
}

type engine_row = { np : int; events : int; wall_s : float }

type ppg_row = {
  mnp : int;  (* scale point *)
  profile_s : float;  (* Prof.run wall at this scale *)
  build_s : float;  (* Ppg.build wall *)
  live_words : int;  (* GC live words retained by the store *)
  ppg_bytes : int;  (* the store's own storage estimate *)
  profile_live_words : int;  (* boxed profile the run ingested into *)
  profdata_bytes : int;  (* its serialized-artifact size, for context *)
}

(* end-to-end profile -> detect pipeline at the largest scale *)
type e2e_row = {
  e_np : int;
  e_scales : int list;
  e_wall_s : float;
  e_ppg_bytes : int;  (* columnar stores across all scales *)
}

(* ledger append + load + self-diff walls over an n-entry history *)
type history_data = {
  hist_entries : int;
  append_s : float;  (* total wall of the n appends *)
  load_s : float;  (* one load of the full ledger *)
  hdiff_s : float;  (* one compare_summaries over the cg summary *)
}

let speedup_results : speedup_data option ref = ref None
let engine_results : engine_row list ref = ref []
let ppg_results : ppg_row list ref = ref []
let e2e_result : e2e_row option ref = ref None
let history_results : history_data option ref = ref None

let write_bench_json () =
  let oc = open_out "BENCH_pipeline.json" in
  let sections = ref [] in
  let add fmt = Printf.ksprintf (fun s -> sections := s :: !sections) fmt in
  (match !speedup_results with
  | None -> ()
  | Some d ->
      let phase_rows =
        String.concat ",\n"
          (List.map
             (fun (name, calls, total) ->
               Printf.sprintf
                 "    %S: { \"calls\": %d, \"total_seconds\": %.6f }" name
                 calls total)
             d.phases)
      in
      add
        "  \"bench\": \"pipeline_parallel_speedup\",\n\
        \  \"program\": \"zeusmp\",\n\
        \  \"scales\": [%s],\n\
        \  \"analysis_domains\": %d,\n\
        \  \"recommended_domain_count\": %d,\n\
        \  \"sequential_seconds\": %.6f,\n\
        \  \"parallel_seconds\": %.6f,\n\
        \  \"speedup\": %.3f,\n\
        \  \"phases\": {\n%s\n  }"
        (String.concat ", " (List.map string_of_int d.scales))
        domains
        (Domain.recommended_domain_count ())
        d.seq_s d.par_s
        (if d.par_s > 0.0 then d.seq_s /. d.par_s else 0.0)
        phase_rows);
  (match !engine_results with
  | [] -> ()
  | rows ->
      let row r =
        let evs = float_of_int r.events /. r.wall_s in
        Printf.sprintf
          "    { \"np\": %d, \"events\": %d, \"wall_seconds\": %.3f, \
           \"events_per_second\": %.0f, \
           \"baseline_events_per_second\": %.0f, \"speedup\": %.2f }"
          r.np r.events r.wall_s evs (engine_baseline r.np)
          (evs /. engine_baseline r.np)
      in
      add
        "  \"engine\": {\n\
        \  \"bench\": \"engine_events_per_second\",\n\
        \  \"program\": \"cg-weak\",\n\
        \  \"sweep\": [\n%s\n  ]\n  }"
        (String.concat ",\n" (List.map row rows)));
  (match !ppg_results with
  | [] -> ()
  | rows ->
      let row r =
        let base_words, base_s = ppg_baseline r.mnp in
        Printf.sprintf
          "    { \"np\": %d, \"profile_seconds\": %.3f, \
           \"build_seconds\": %.4f, \"live_words\": %d, \
           \"ppg_bytes\": %d, \"profile_live_words\": %d, \
           \"profdata_bytes\": %d, \
           \"baseline_live_words\": %d, \"baseline_build_seconds\": %.4f }"
          r.mnp r.profile_s r.build_s r.live_words r.ppg_bytes
          r.profile_live_words r.profdata_bytes base_words base_s
      in
      let e2e =
        match !e2e_result with
        | None -> ""
        | Some e ->
            Printf.sprintf
              ",\n\
              \  \"analysis_np%d\": { \"scales\": [%s], \
               \"wall_seconds\": %.3f, \"ppg_bytes\": %d }"
              e.e_np
              (String.concat ", " (List.map string_of_int e.e_scales))
              e.e_wall_s e.e_ppg_bytes
      in
      add
        "  \"ppg\": {\n\
        \  \"bench\": \"ppg_memory\",\n\
        \  \"program\": \"cg-weak\",\n\
        \  \"sweep\": [\n%s\n  ]%s\n  }"
        (String.concat ",\n" (List.map row rows))
        e2e);
  (match !history_results with
  | None -> ()
  | Some h ->
      add
        "  \"history\": {\n\
        \  \"bench\": \"history_ledger\",\n\
        \  \"program\": \"cg\",\n\
        \  \"entries\": %d,\n\
        \  \"append_seconds\": %.6f,\n\
        \  \"append_seconds_per_entry\": %.9f,\n\
        \  \"load_seconds\": %.6f,\n\
        \  \"diff_seconds\": %.6f\n  }"
        h.hist_entries h.append_s
        (h.append_s /. float_of_int h.hist_entries)
        h.load_s h.hdiff_s);
  Printf.fprintf oc "{\n%s\n}\n" (String.concat ",\n" (List.rev !sections));
  close_out oc

let pipeline_parallel () =
  Util.section
    (Printf.sprintf "Pipeline speedup: 1 domain vs %d (zeusmp, end-to-end)"
       domains);
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let scales = Util.scales_for entry ~max_np:32 in
  let seq, seq_s = run_with ~entry ~scales 1 in
  let par, par_s = run_with ~entry ~scales domains in
  if not (String.equal seq.Scalana.Pipeline.report par.Scalana.Pipeline.report)
  then failwith "parallel report differs from sequential report";
  Printf.printf "  sequential (1 domain):  %8.3fs\n" seq_s;
  Printf.printf "  parallel   (%d domains): %8.3fs\n" domains par_s;
  Printf.printf "  speedup:                %8.2fx  (on %d hardware core%s)\n"
    (if par_s > 0.0 then seq_s /. par_s else 0.0)
    (Domain.recommended_domain_count ())
    (if Domain.recommended_domain_count () = 1 then "" else "s");
  Util.note "reports byte-identical across both runs";
  (* a third run with the span collector on attributes the parallel wall
     time to pipeline phases; the instrumented run is never the one the
     speedup numbers come from *)
  Scalana_obs.Obs.enable ();
  let _, _ = run_with ~entry ~scales domains in
  Scalana_obs.Obs.disable ();
  let phases = Scalana_obs.Obs.phase_summary () in
  List.iteri
    (fun i (name, calls, total) ->
      if i < 6 then
        Printf.printf "  phase %-26s %4d calls %8.3fs\n" name calls total)
    phases;
  speedup_results := Some { scales; seq_s; par_s; phases };
  write_bench_json ();
  Printf.printf "  wrote BENCH_pipeline.json (%d phases)\n%!"
    (List.length phases)

let engine_throughput () =
  Util.section "Engine throughput: cg-weak events/second (raw Exec.run)";
  let entry = Scalana_apps.Registry.find "cg-weak" in
  let rows =
    List.map
      (fun np ->
        let cfg = Scalana_runtime.Exec.config ~nprocs:np ~cost:entry.cost () in
        let prog = entry.make () in
        let r, wall_s = timed (fun () -> Scalana_runtime.Exec.run ~cfg prog) in
        let row = { np; events = r.Scalana_runtime.Exec.events; wall_s } in
        Printf.printf
          "  np=%-6d %9d events %8.3fs  %10.0f ev/s  (baseline %8.0f, %.1fx)\n%!"
          np row.events wall_s
          (float_of_int row.events /. wall_s)
          (engine_baseline np)
          (float_of_int row.events /. wall_s /. engine_baseline np);
        row)
      engine_scales
  in
  engine_results := rows;
  write_bench_json ();
  Printf.printf "  wrote BENCH_pipeline.json (engine sweep, %d scales)\n%!"
    (List.length rows)

(* Live words the process retains across [f] — both compacts are
   essential: the first settles the pre-state, the second drops every
   temporary [f] allocated, so the delta is what [f]'s result pins. *)
let retained f =
  Gc.compact ();
  let before = (Gc.stat ()).Gc.live_words in
  let r, wall = timed f in
  Gc.compact ();
  let after = (Gc.stat ()).Gc.live_words in
  (r, wall, after - before)

let ppg_memory () =
  Util.section "PPG memory: cg-weak store footprint per scale";
  let entry = Scalana_apps.Registry.find "cg-weak" in
  let rows =
    List.map
      (fun np ->
        let prog = entry.Scalana_apps.Registry.make () in
        let static = Scalana.Static.analyze prog in
        let r, profile_s, profile_live_words =
          retained (fun () ->
              Scalana.Prof.run ~cost:entry.cost static ~nprocs:np ())
        in
        let data = r.Scalana.Prof.data in
        let ppg, build_s, live_words =
          retained (fun () ->
              Scalana_ppg.Ppg.build ~psg:(Scalana.Static.psg static) data)
        in
        let ppg_bytes = Scalana_ppg.Ppg.storage_bytes ppg in
        let base_words, base_s = ppg_baseline np in
        Printf.printf
          "  np=%-6d profile %7.3fs  build %7.4fs  %9d live words  %8.1f MB \
           store  (baseline %9d words, %.4fs)\n\
           %!"
          np profile_s build_s live_words
          (float_of_int ppg_bytes /. 1e6)
          base_words base_s;
        ignore (Sys.opaque_identity ppg);
        {
          mnp = np;
          profile_s;
          build_s;
          live_words;
          ppg_bytes;
          profile_live_words;
          profdata_bytes = Scalana_profile.Profdata.storage_bytes data;
        })
      ppg_scales
  in
  ppg_results := rows;
  (* end-to-end: the full profile -> detect pipeline with np=65536 as the
     largest scale point, the run the ROADMAP item exists for *)
  let e_np = List.fold_left max 0 ppg_scales in
  let pipe, e_wall_s =
    timed (fun () ->
        Scalana.Pipeline.run ~cost:entry.cost ~scales:ppg_scales
          (entry.Scalana_apps.Registry.make ()))
  in
  let e_ppg_bytes = Scalana.Pipeline.ppg_storage_bytes pipe in
  Printf.printf
    "  end-to-end analysis (scales %s): %8.3fs  %8.1f MB of PPG columns\n%!"
    (String.concat "," (List.map string_of_int ppg_scales))
    e_wall_s
    (float_of_int e_ppg_bytes /. 1e6);
  e2e_result := Some { e_np; e_scales = ppg_scales; e_wall_s; e_ppg_bytes };
  write_bench_json ();
  Printf.printf "  wrote BENCH_pipeline.json (ppg sweep, %d scales)\n%!"
    (List.length rows)

let history_ledger () =
  Util.section "History ledger: append/load/diff walls (cg, 50 entries)";
  let entry = Scalana_apps.Registry.find "cg" in
  let pipe, analyze_s =
    timed (fun () ->
        Scalana.Pipeline.run ~cost:entry.cost ~scales:[ 4; 8; 16 ]
          (entry.make ()))
  in
  Printf.printf "  pipeline (analysis input):        %8.3fs\n%!" analyze_s;
  let n = 50 in
  let path = Filename.temp_file "scalana_bench_history" ".jsonl" in
  Sys.remove path;
  let row =
    Scalana.Pipeline.history_entry ~commit:"bench000" ~label:"bench" pipe
  in
  let (), append_s =
    timed (fun () ->
        for i = 0 to n - 1 do
          (* distinct timestamps, as a real ledger would accumulate *)
          Scalana_obs.History.append ~path
            { row with Scalana_obs.History.h_time = float_of_int i }
        done)
  in
  let loaded, load_s = timed (fun () -> Scalana_obs.History.load ~path) in
  assert (List.length loaded.Scalana_obs.History.entries = n);
  assert (loaded.Scalana_obs.History.dropped = 0);
  let summary = Scalana.Pipeline.diff_summary ~label:"bench" pipe in
  let diff, hdiff_s =
    timed (fun () ->
        Scalana_detect.Diff.compare_summaries ~base:summary ~cand:summary ())
  in
  assert (not (Scalana_detect.Diff.has_regressions diff));
  Sys.remove path;
  Printf.printf
    "  append x%-3d %8.3fs total (%7.1f us/entry)\n\
    \  load        %8.3fs (%d rows, 0 dropped)\n\
    \  self-diff   %8.3fs (%d vertices aligned)\n\
     %!"
    n append_s
    (append_s /. float_of_int n *. 1e6)
    load_s n hdiff_s diff.Scalana_detect.Diff.n_unchanged;
  history_results := Some { hist_entries = n; append_s; load_s; hdiff_s };
  write_bench_json ();
  Printf.printf "  wrote BENCH_pipeline.json (history ledger)\n%!"

let all : (string * (unit -> unit)) list =
  [
    ("pipeline_parallel_speedup", pipeline_parallel);
    ("engine_throughput", engine_throughput);
    ("ppg_memory", ppg_memory);
    ("history", history_ledger);
  ]
