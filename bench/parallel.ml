(* Multicore-analysis and engine-throughput benches, both written to
   BENCH_pipeline.json so the perf trajectory is tracked across PRs.

   [pipeline_parallel]: end-to-end pipeline wall time with the
   sequential path (1 domain) vs the domain-pool path (N domains) on the
   zeusmp case.  A third, observability-enabled run breaks the wall time
   down per pipeline phase (docs/observability.md) and the per-phase
   totals ride along in the same JSON.  The detection output is asserted
   byte-identical between the two runs before any number is reported — a
   speedup that changes the answer would be worthless.

   [engine_throughput]: raw simulator events/second on the cg-weak
   extreme-scale workload (docs/performance.md), the metric the
   zero-allocation engine rework targets.  Each scale point carries the
   pre-rework engine's measurement as its baseline. *)

let domains = 4

(* cg-weak sweep points; CI's perf-smoke budget covers the full list
   (the np=4096 point simulates ~600k events in well under a minute) *)
let engine_scales = [ 256; 1024; 4096 ]

(* events/second of the engine before the struct-of-arrays rework
   (list-based matching queues, per-proc records), same workload, same
   machine class — the floor the rework is measured against *)
let engine_baseline = function
  | 256 -> 1_165_046.0
  | 1024 -> 515_529.0
  | 4096 -> 304_060.0
  | 16384 -> 106_361.0
  | _ -> nan

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run_with ~entry ~scales d =
  let config = { Scalana.Config.default with analysis_domains = d } in
  timed (fun () ->
      Scalana.Pipeline.run ~config
        ~cost:(entry : Scalana_apps.Registry.entry).cost ~scales
        (entry.make ()))

(* Results land in these refs so a lone `--only` run still writes a
   complete JSON for whatever it measured. *)
type speedup_data = {
  scales : int list;
  seq_s : float;
  par_s : float;
  phases : (string * int * float) list;
}

type engine_row = { np : int; events : int; wall_s : float }

let speedup_results : speedup_data option ref = ref None
let engine_results : engine_row list ref = ref []

let write_bench_json () =
  let oc = open_out "BENCH_pipeline.json" in
  let sections = ref [] in
  let add fmt = Printf.ksprintf (fun s -> sections := s :: !sections) fmt in
  (match !speedup_results with
  | None -> ()
  | Some d ->
      let phase_rows =
        String.concat ",\n"
          (List.map
             (fun (name, calls, total) ->
               Printf.sprintf
                 "    %S: { \"calls\": %d, \"total_seconds\": %.6f }" name
                 calls total)
             d.phases)
      in
      add
        "  \"bench\": \"pipeline_parallel_speedup\",\n\
        \  \"program\": \"zeusmp\",\n\
        \  \"scales\": [%s],\n\
        \  \"analysis_domains\": %d,\n\
        \  \"recommended_domain_count\": %d,\n\
        \  \"sequential_seconds\": %.6f,\n\
        \  \"parallel_seconds\": %.6f,\n\
        \  \"speedup\": %.3f,\n\
        \  \"phases\": {\n%s\n  }"
        (String.concat ", " (List.map string_of_int d.scales))
        domains
        (Domain.recommended_domain_count ())
        d.seq_s d.par_s
        (if d.par_s > 0.0 then d.seq_s /. d.par_s else 0.0)
        phase_rows);
  (match !engine_results with
  | [] -> ()
  | rows ->
      let row r =
        let evs = float_of_int r.events /. r.wall_s in
        Printf.sprintf
          "    { \"np\": %d, \"events\": %d, \"wall_seconds\": %.3f, \
           \"events_per_second\": %.0f, \
           \"baseline_events_per_second\": %.0f, \"speedup\": %.2f }"
          r.np r.events r.wall_s evs (engine_baseline r.np)
          (evs /. engine_baseline r.np)
      in
      add
        "  \"engine\": {\n\
        \  \"bench\": \"engine_events_per_second\",\n\
        \  \"program\": \"cg-weak\",\n\
        \  \"sweep\": [\n%s\n  ]\n  }"
        (String.concat ",\n" (List.map row rows)));
  Printf.fprintf oc "{\n%s\n}\n" (String.concat ",\n" (List.rev !sections));
  close_out oc

let pipeline_parallel () =
  Util.section
    (Printf.sprintf "Pipeline speedup: 1 domain vs %d (zeusmp, end-to-end)"
       domains);
  let entry = Scalana_apps.Registry.find "zeusmp" in
  let scales = Util.scales_for entry ~max_np:32 in
  let seq, seq_s = run_with ~entry ~scales 1 in
  let par, par_s = run_with ~entry ~scales domains in
  if not (String.equal seq.Scalana.Pipeline.report par.Scalana.Pipeline.report)
  then failwith "parallel report differs from sequential report";
  Printf.printf "  sequential (1 domain):  %8.3fs\n" seq_s;
  Printf.printf "  parallel   (%d domains): %8.3fs\n" domains par_s;
  Printf.printf "  speedup:                %8.2fx  (on %d hardware core%s)\n"
    (if par_s > 0.0 then seq_s /. par_s else 0.0)
    (Domain.recommended_domain_count ())
    (if Domain.recommended_domain_count () = 1 then "" else "s");
  Util.note "reports byte-identical across both runs";
  (* a third run with the span collector on attributes the parallel wall
     time to pipeline phases; the instrumented run is never the one the
     speedup numbers come from *)
  Scalana_obs.Obs.enable ();
  let _, _ = run_with ~entry ~scales domains in
  Scalana_obs.Obs.disable ();
  let phases = Scalana_obs.Obs.phase_summary () in
  List.iteri
    (fun i (name, calls, total) ->
      if i < 6 then
        Printf.printf "  phase %-26s %4d calls %8.3fs\n" name calls total)
    phases;
  speedup_results := Some { scales; seq_s; par_s; phases };
  write_bench_json ();
  Printf.printf "  wrote BENCH_pipeline.json (%d phases)\n%!"
    (List.length phases)

let engine_throughput () =
  Util.section "Engine throughput: cg-weak events/second (raw Exec.run)";
  let entry = Scalana_apps.Registry.find "cg-weak" in
  let rows =
    List.map
      (fun np ->
        let cfg = Scalana_runtime.Exec.config ~nprocs:np ~cost:entry.cost () in
        let prog = entry.make () in
        let r, wall_s = timed (fun () -> Scalana_runtime.Exec.run ~cfg prog) in
        let row = { np; events = r.Scalana_runtime.Exec.events; wall_s } in
        Printf.printf
          "  np=%-6d %9d events %8.3fs  %10.0f ev/s  (baseline %8.0f, %.1fx)\n%!"
          np row.events wall_s
          (float_of_int row.events /. wall_s)
          (engine_baseline np)
          (float_of_int row.events /. wall_s /. engine_baseline np);
        row)
      engine_scales
  in
  engine_results := rows;
  write_bench_json ();
  Printf.printf "  wrote BENCH_pipeline.json (engine sweep, %d scales)\n%!"
    (List.length rows)

let all : (string * (unit -> unit)) list =
  [
    ("pipeline_parallel_speedup", pipeline_parallel);
    ("engine_throughput", engine_throughput);
  ]
