(* Shared cmdliner fragments for the scalana-* executables. *)

open Cmdliner
open Scalana_mlang

(* Exit codes shared by every scalana-* executable (documented in
   README.md): 0 success, 1 findings reported, 2 bad input or corrupt
   artifact, 3 internal error. *)
let exit_ok = 0
let exit_findings = 1
let exit_bad_input = 2
let exit_internal = 3

(* Wrap a CLI body: user-caused failures (bad flags, unparsable sources,
   missing or damaged artifacts) exit 2 with a one-line message; anything
   unexpected exits 3 so scripts can tell our bugs from their inputs. *)
let run_cli body =
  let bad msg =
    Printf.eprintf "scalana: error: %s\n%!" msg;
    exit_bad_input
  in
  try body () with
  | Scalana.Artifact.Error e -> bad (Scalana.Artifact.error_message e)
  | Parser.Parse_error { line; msg } ->
      bad (Printf.sprintf "parse error at line %d: %s" line msg)
  | Lexer.Lex_error { line; msg } ->
      bad (Printf.sprintf "lex error at line %d: %s" line msg)
  | Failure msg | Invalid_argument msg | Sys_error msg -> bad msg
  | e ->
      Printf.eprintf "scalana: internal error: %s\n%!" (Printexc.to_string e);
      exit_internal

let load_program ~program_name ~file =
  match (program_name, file) with
  | Some name, None ->
      let entry = Scalana_apps.Registry.find name in
      (entry.make (), entry.cost)
  | None, Some path ->
      let ic = open_in path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let prog = Parser.parse ~file:(Filename.basename path) src in
      Validate.run_exn prog;
      (prog, Scalana_runtime.Costmodel.default)
  | Some _, Some _ -> failwith "give either --program or --file, not both"
  | None, None -> failwith "one of --program or --file is required"

(* Resolve a session program back to its registry entry (if it is a
   built-in), searching every roster: Table II, extreme-scale and
   elastic. *)
let registry_entry (program : Ast.program) =
  List.find_opt
    (fun (e : Scalana_apps.Registry.entry) ->
      String.equal e.name program.Ast.pname
      || String.equal ("npb-" ^ e.name) program.Ast.pname)
    Scalana_apps.Registry.(all @ extreme @ elastic)

(* Built-in workloads carry their preferred machine model; any
   re-simulation of a session program (profiling, timeline replay) must
   run under the same model the stored profiles were collected with. *)
let registry_cost (program : Ast.program) =
  match registry_entry program with
  | Some e -> e.cost
  | None -> Scalana_runtime.Costmodel.default

(* Elastic built-ins declare a membership plan; profiling such a program
   must run the epoch driver so stored profiles carry the membership
   timeline the detection step expects. *)
let registry_elastic_plan (program : Ast.program) =
  match registry_entry program with
  | Some e -> e.elastic_plan
  | None -> None

let program_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "p"; "program" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Built-in workload to analyze (one of: %s)."
             (String.concat ", " Scalana_apps.Registry.names)))

let file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "f"; "file" ] ~docv:"SRC.mmp" ~doc:"MiniMPI source file to analyze.")

let session_arg =
  Arg.(
    value
    & opt string "scalana-session"
    & info [ "s"; "session" ] ~docv:"DIR"
        ~doc:"Session directory carrying artifacts between steps.")

let max_loop_depth_arg =
  Arg.(
    value
    & opt int Scalana.Config.default.max_loop_depth
    & info [ "max-loop-depth" ] ~docv:"N"
        ~doc:"PSG contraction bound on nested loop depth (MaxLoopDepth).")

let abnorm_thd_arg =
  Arg.(
    value
    & opt float Scalana.Config.default.abnorm_thd
    & info [ "abnorm-thd" ] ~docv:"X"
        ~doc:"Abnormal-vertex deviation threshold (AbnormThd).")

let domains_arg =
  Arg.(
    value
    & opt int Scalana.Config.default.analysis_domains
    & info [ "j"; "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for the analysis fan-outs (PPG builds, log-log \
           fits); 1 forces the sequential path.  Results are identical \
           either way.")

let exits =
  Cmd.Exit.info exit_ok ~doc:"on success."
  :: Cmd.Exit.info exit_findings ~doc:"when findings are reported."
  :: Cmd.Exit.info exit_bad_input
       ~doc:"on bad input or a corrupt/missing artifact."
  :: Cmd.Exit.info exit_internal ~doc:"on an internal error."
  :: Cmd.Exit.defaults
