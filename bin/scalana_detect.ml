(* scalana-detect: offline step — build PPGs from the session's profiles,
   detect problematic vertices and backtrack to root causes. *)

open Cmdliner

let run session abnorm_thd domains follow_def_use =
  let s = Scalana.Artifact.load_session session in
  if s.runs = [] then failwith "session has no profiles; run scalana-prof first";
  let config =
    {
      Scalana.Config.default with
      abnorm_thd;
      analysis_domains = domains;
      follow_def_use;
    }
  in
  let pipeline = Scalana.Pipeline.detect ~config s.static s.runs in
  print_string pipeline.report;
  Printf.printf "\npost-mortem detection cost: %.3fs (%d domain%s)\n"
    pipeline.detect_seconds domains
    (if domains = 1 then "" else "s")

let follow_def_use_arg =
  Arg.(
    value & flag
    & info [ "follow-def-use" ]
        ~doc:
          "Backtrack along the explicit def-use data-dependence edges where \
           available instead of sibling order (default: the paper's \
           Algorithm 1).")

let cmd =
  Cmd.v
    (Cmd.info "scalana-detect"
       ~doc:"Scaling-loss detection and root-cause backtracking (offline)")
    Term.(
      const run $ Cli_common.session_arg $ Cli_common.abnorm_thd_arg
      $ Cli_common.domains_arg $ follow_def_use_arg)

let () = exit (Cmd.eval cmd)
