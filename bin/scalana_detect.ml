(* scalana-detect: offline step — build PPGs from the session's profiles,
   detect problematic vertices and backtrack to root causes. *)

open Cmdliner

let run session abnorm_thd domains =
  let s = Scalana.Artifact.load_session session in
  if s.runs = [] then failwith "session has no profiles; run scalana-prof first";
  let config =
    { Scalana.Config.default with abnorm_thd; analysis_domains = domains }
  in
  let pipeline = Scalana.Pipeline.detect ~config s.static s.runs in
  print_string pipeline.report;
  Printf.printf "\npost-mortem detection cost: %.3fs (%d domain%s)\n"
    pipeline.detect_seconds domains
    (if domains = 1 then "" else "s")

let cmd =
  Cmd.v
    (Cmd.info "scalana-detect"
       ~doc:"Scaling-loss detection and root-cause backtracking (offline)")
    Term.(
      const run $ Cli_common.session_arg $ Cli_common.abnorm_thd_arg
      $ Cli_common.domains_arg)

let () = exit (Cmd.eval cmd)
