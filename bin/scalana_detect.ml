(* scalana-detect: offline step — build PPGs from the session's profiles,
   detect problematic vertices and backtrack to root causes.

   Exit codes: 0 clean run with no root causes, 1 root causes found,
   2 bad input or damaged artifacts (the report still renders, over what
   was salvaged), 3 internal error. *)

open Cmdliner

let run session abnorm_thd domains follow_def_use =
  Cli_common.run_cli @@ fun () ->
  let s = Scalana.Artifact.load_session session in
  List.iter
    (fun i ->
      Printf.eprintf "scalana: warning: %s\n%!" (Scalana.Artifact.issue_message i))
    s.issues;
  if s.runs = [] then failwith "session has no profiles; run scalana-prof first";
  let config =
    {
      Scalana.Config.default with
      abnorm_thd;
      analysis_domains = domains;
      follow_def_use;
    }
  in
  let pipeline = Scalana.Pipeline.detect_session ~config s in
  print_string pipeline.report;
  Printf.printf "\npost-mortem detection cost: %.3fs (%d domain%s)\n"
    pipeline.detect_seconds domains
    (if domains = 1 then "" else "s");
  (* damaged inputs dominate the exit code: a degraded verdict must not
     pass for a clean one in CI *)
  if Scalana.Pipeline.degraded pipeline then Cli_common.exit_bad_input
  else if pipeline.analysis.causes <> [] then Cli_common.exit_findings
  else Cli_common.exit_ok

let follow_def_use_arg =
  Arg.(
    value & flag
    & info [ "follow-def-use" ]
        ~doc:
          "Backtrack along the explicit def-use data-dependence edges where \
           available instead of sibling order (default: the paper's \
           Algorithm 1).")

let cmd =
  Cmd.v
    (Cmd.info "scalana-detect" ~exits:Cli_common.exits
       ~doc:"Scaling-loss detection and root-cause backtracking (offline)")
    Term.(
      const run $ Cli_common.session_arg $ Cli_common.abnorm_thd_arg
      $ Cli_common.domains_arg $ follow_def_use_arg)

let () = exit (Cmd.eval' cmd)
