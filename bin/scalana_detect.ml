(* scalana-detect: offline step — build PPGs from the session's profiles,
   detect problematic vertices and backtrack to root causes.

   Exit codes: 0 clean run with no root causes, 1 root causes found,
   2 bad input or damaged artifacts (the report still renders, over what
   was salvaged), 3 internal error. *)

open Cmdliner

let run session abnorm_thd domains follow_def_use static_crosscheck elastic
    trace metrics_out wait_states rank_trace timeline_np history history_label
    history_file =
  Cli_common.run_cli @@ fun () ->
  (* observability on before the session loads, so artifact salvage work
     is on the trace too; the report then carries a pipeline-cost section *)
  if trace <> None || metrics_out <> None then Scalana_obs.Obs.enable ();
  let history_on = history || history_label <> None in
  (* prior ledger entries load before detection so the report can render
     its trend section; this run's own row is appended afterwards *)
  let prior =
    if history_on then begin
      let loaded = Scalana_obs.History.load ~path:history_file in
      if loaded.Scalana_obs.History.dropped > 0 then
        Printf.eprintf
          "scalana: warning: %d damaged history line%s skipped in %s\n%!"
          loaded.Scalana_obs.History.dropped
          (if loaded.Scalana_obs.History.dropped = 1 then "" else "s")
          history_file;
      loaded.Scalana_obs.History.entries
    end
    else []
  in
  let s = Scalana.Artifact.load_session session in
  List.iter
    (fun i ->
      Printf.eprintf "scalana: warning: %s\n%!" (Scalana.Artifact.issue_message i))
    s.issues;
  if s.runs = [] then failwith "session has no profiles; run scalana-prof first";
  let config =
    {
      Scalana.Config.default with
      abnorm_thd;
      analysis_domains = domains;
      follow_def_use;
      static_crosscheck;
      elastic;
    }
  in
  let timeline =
    if wait_states || rank_trace <> None then begin
      (* re-simulate deterministically at the requested scale (default:
         the session's largest) with the timeline recorder attached *)
      let nprocs =
        match timeline_np with
        | Some n ->
            if n <= 0 then failwith "--timeline-np must be positive";
            n
        | None -> List.fold_left (fun acc (n, _) -> max acc n) 1 s.runs
      in
      let cost = Cli_common.registry_cost s.static.Scalana.Static.program in
      Some (Scalana.Pipeline.rank_timeline ~config ~cost s.static ~nprocs)
    end
    else None
  in
  let pipeline =
    Scalana.Pipeline.detect_session ~config ?timeline ~history:prior s
  in
  print_string pipeline.report;
  Printf.printf "\npost-mortem detection cost: %.3fs (%d domain%s)\n"
    pipeline.detect_seconds domains
    (if domains = 1 then "" else "s");
  if history_on then begin
    let entry =
      Scalana.Pipeline.history_entry ?label:history_label pipeline
    in
    Scalana_obs.History.append ~path:history_file entry;
    Printf.eprintf "scalana: history entry appended to %s (%d entries)\n%!"
      history_file
      (List.length prior + 1)
  end;
  (match trace with
  | Some path ->
      Scalana_obs.Obs.export_trace ~path;
      Printf.eprintf
        "scalana: trace written to %s (open in Perfetto / about:tracing)\n%!"
        path
  | None -> ());
  (match metrics_out with
  | Some path ->
      (* .prom selects the scrapeable OpenMetrics text format; anything
         else keeps the JSON dump *)
      if Filename.check_suffix path ".prom" then begin
        Scalana_obs.Obs.export_openmetrics ~path;
        Printf.eprintf "scalana: OpenMetrics written to %s\n%!" path
      end
      else begin
        Scalana_obs.Obs.export_metrics ~path;
        Printf.eprintf "scalana: metrics written to %s\n%!" path
      end
  | None -> ());
  (match (rank_trace, timeline) with
  | Some path, Some tl ->
      Scalana_profile.Timeline.export_trace
        ~psg:(Scalana.Static.psg s.static) ~path tl;
      Printf.eprintf
        "scalana: rank trace written to %s (open in Perfetto / \
         about:tracing)\n\
         %!"
        path
  | _ -> ());
  (* damaged inputs dominate the exit code: a degraded verdict must not
     pass for a clean one in CI *)
  if Scalana.Pipeline.degraded pipeline then Cli_common.exit_bad_input
  else if pipeline.analysis.causes <> [] then Cli_common.exit_findings
  else Cli_common.exit_ok

let follow_def_use_arg =
  Arg.(
    value & flag
    & info [ "follow-def-use" ]
        ~doc:
          "Backtrack along the explicit def-use data-dependence edges where \
           available instead of sibling order (default: the paper's \
           Algorithm 1).")

let static_crosscheck_arg =
  Arg.(
    value & flag
    & info [ "static-crosscheck" ]
        ~doc:
          "Cross-check each non-scalable vertex's fitted slope against \
           the symbolic communication model evaluated at the session's \
           scales: agreements annotate the ranking \
           ($(b,[predicted O(p), ... — confirmed])) and raise root-cause \
           confidence; divergences are listed as model mismatches.")

let elastic_arg =
  Arg.(
    value & flag
    & info [ "elastic" ]
        ~doc:
          "Render the elastic-execution evidence stored with the profiles: \
           a membership-timeline section per scale (epochs, effective \
           process counts) and the recovery-protocol costs \
           (detect/agree/repartition, recovery-stall attribution).  \
           Sessions whose runs carry no membership changes render \
           byte-identically with or without this flag.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Trace the pipeline's own phases and write a Chrome trace_event \
           JSON to $(docv) (open in Perfetto or about:tracing; one track \
           per analysis domain).  Also adds a pipeline-cost section to the \
           report.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the pipeline's self-metrics (counters, gauges, duration \
           histograms, per-phase totals) to $(docv): OpenMetrics/Prometheus \
           text when $(docv) ends in $(b,.prom), JSON otherwise.")

let history_arg =
  Arg.(
    value & flag
    & info [ "history" ]
        ~doc:
          "Append a commit-stamped summary row of this detect run (label, \
           scales, top-k vertex slopes, wait totals, quality flags) to the \
           history ledger, and render a trend section over the prior \
           entries when there are any.")

let history_label_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "history-label" ] ~docv:"LABEL"
        ~doc:"Label stored with the history row (implies --history).")

let history_file_arg =
  Arg.(
    value
    & opt string Scalana_obs.History.default_path
    & info [ "history-file" ] ~docv:"FILE"
        ~doc:"History ledger path (JSONL, one CRC-guarded row per line).")

let wait_states_arg =
  Arg.(
    value & flag
    & info [ "wait-states" ]
        ~doc:
          "Replay a per-rank timeline (re-simulated deterministically at \
           the session's largest scale, or --timeline-np) and append a \
           wait-state section to the report: blocked time attributed per \
           PSG vertex and rank as late-sender / late-receiver / \
           collective-imbalance.")

let rank_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rank-trace" ] ~docv:"FILE"
        ~doc:
          "Write the per-rank application timeline as Chrome trace_event \
           JSON to $(docv): one track per rank, one flow arrow per matched \
           message (open in Perfetto or about:tracing; loads alongside a \
           --trace file without id collisions).  Implies the timeline \
           replay of --wait-states.")

let timeline_np_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeline-np" ] ~docv:"N"
        ~doc:
          "Scale of the timeline replay (default: the largest scale \
           profiled in the session).")

let cmd =
  Cmd.v
    (Cmd.info "scalana-detect" ~exits:Cli_common.exits
       ~doc:"Scaling-loss detection and root-cause backtracking (offline)")
    Term.(
      const run $ Cli_common.session_arg $ Cli_common.abnorm_thd_arg
      $ Cli_common.domains_arg $ follow_def_use_arg $ static_crosscheck_arg
      $ elastic_arg $ trace_arg $ metrics_out_arg $ wait_states_arg
      $ rank_trace_arg $ timeline_np_arg $ history_arg $ history_label_arg
      $ history_file_arg)

let () = exit (Cmd.eval' cmd)
