(* scalana-diff: compare two detect sessions vertex by vertex and flag
   regressions — the CI half of cross-session observability.

   Both sessions are loaded, analysed, and summarised per vertex (slope,
   time, wait, coverage); the summaries are aligned structurally and
   classified against the thresholds.

   Exit codes: 0 clean (no regressions), 1 regressions found, 2 bad or
   degraded input (either session damaged or fault-degraded — a
   regression verdict over degraded data must not gate a CI lane as if
   it were clean), 3 internal error. *)

open Cmdliner
module Diff = Scalana_detect.Diff

let load_summary ~config ~wait_states dir =
  let s = Scalana.Artifact.load_session dir in
  List.iter
    (fun i ->
      Printf.eprintf "scalana: warning: %s\n%!"
        (Scalana.Artifact.issue_message i))
    s.issues;
  if s.runs = [] then
    failwith
      (Printf.sprintf "%s: session has no profiles; run scalana-prof first"
         dir);
  let timeline =
    if wait_states then begin
      let nprocs = List.fold_left (fun acc (n, _) -> max acc n) 1 s.runs in
      let cost = Cli_common.registry_cost s.static.Scalana.Static.program in
      Some (Scalana.Pipeline.rank_timeline ~config ~cost s.static ~nprocs)
    end
    else None
  in
  let pipe = Scalana.Pipeline.detect_session ~config ?timeline s in
  Scalana.Pipeline.diff_summary ~label:dir pipe

let run base cand abnorm_thd domains wait_states slope_tol time_tol wait_tol
    min_fraction trace metrics_out =
  Cli_common.run_cli @@ fun () ->
  if trace <> None || metrics_out <> None then Scalana_obs.Obs.enable ();
  let config =
    { Scalana.Config.default with abnorm_thd; analysis_domains = domains }
  in
  let base_summary = load_summary ~config ~wait_states base in
  let cand_summary = load_summary ~config ~wait_states cand in
  let thresholds = { Diff.slope_tol; time_tol; wait_tol; min_fraction } in
  let diff =
    Diff.compare_summaries ~thresholds ~base:base_summary ~cand:cand_summary
      ()
  in
  print_string (Fmt.str "%a" Diff.pp diff);
  (* the diff's own cost (diff.summarize / diff.compare spans included),
     with the same layout as the report's pipeline-cost section *)
  if Scalana_obs.Obs.enabled () then
    print_string
      (Fmt.str "%a" Scalana_detect.Report.pp_phase_costs
         (Scalana_obs.Obs.phase_summary ()));
  (match trace with
  | Some path ->
      Scalana_obs.Obs.export_trace ~path;
      Printf.eprintf
        "scalana: trace written to %s (open in Perfetto / about:tracing)\n%!"
        path
  | None -> ());
  (match metrics_out with
  | Some path ->
      if Filename.check_suffix path ".prom" then begin
        Scalana_obs.Obs.export_openmetrics ~path;
        Printf.eprintf "scalana: OpenMetrics written to %s\n%!" path
      end
      else begin
        Scalana_obs.Obs.export_metrics ~path;
        Printf.eprintf "scalana: metrics written to %s\n%!" path
      end
  | None -> ());
  (* degraded inputs dominate, as in scalana-detect: a regression (or a
     clean verdict) computed over fault-damaged data is not trustworthy *)
  if diff.Diff.degraded then Cli_common.exit_bad_input
  else if Diff.has_regressions diff then Cli_common.exit_findings
  else Cli_common.exit_ok

let base_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BASE" ~doc:"Baseline session directory.")

let cand_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"CAND" ~doc:"Candidate session directory to compare.")

let wait_states_arg =
  Arg.(
    value & flag
    & info [ "wait-states" ]
        ~doc:
          "Replay both sessions' rank timelines and include per-vertex \
           wait-class attribution in the summaries.")

let slope_tol_arg =
  Arg.(
    value
    & opt float Diff.default_thresholds.Diff.slope_tol
    & info [ "slope-tol" ] ~docv:"X"
        ~doc:
          "Absolute log-log slope increase above which an aligned vertex \
           counts as regressed (strict: a delta exactly at $(docv) is \
           benign).")

let time_tol_arg =
  Arg.(
    value
    & opt float Diff.default_thresholds.Diff.time_tol
    & info [ "time-tol" ] ~docv:"X"
        ~doc:
          "Relative growth of a vertex's largest-scale time above which it \
           counts as regressed (0.25 = +25%).")

let wait_tol_arg =
  Arg.(
    value
    & opt float Diff.default_thresholds.Diff.wait_tol
    & info [ "wait-tol" ] ~docv:"X"
        ~doc:"Relative growth of a vertex's sampled wait that regresses it.")

let min_fraction_arg =
  Arg.(
    value
    & opt float Diff.default_thresholds.Diff.min_fraction
    & info [ "min-fraction" ] ~docv:"X"
        ~doc:
          "Ignore vertices below this share of total time on both sides \
           (noise floor).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Trace the diff's own phases (session analysis, summarize, \
           compare) and write a Chrome trace_event JSON to $(docv); also \
           prints the pipeline-cost section.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write self-metrics to $(docv): OpenMetrics/Prometheus text when \
           $(docv) ends in $(b,.prom), JSON otherwise.")

let cmd =
  Cmd.v
    (Cmd.info "scalana-diff" ~exits:Cli_common.exits
       ~doc:
         "Cross-session regression diff: align two sessions' PSG vertices \
          and classify slope/time/wait deltas")
    Term.(
      const run $ base_arg $ cand_arg $ Cli_common.abnorm_thd_arg
      $ Cli_common.domains_arg $ wait_states_arg $ slope_tol_arg
      $ time_tol_arg $ wait_tol_arg $ min_fraction_arg $ trace_arg
      $ metrics_out_arg)

let () = exit (Cmd.eval' cmd)
