(* scalana-lint: run the static scaling-loss linter over a program and
   print the findings.  Exits 1 when findings exist (for CI use), 0 when
   the program is clean.  --json emits the machine-readable form:

     { "program": "...",
       "findings": [ { "rule": "...", "file": "...", "line": N,
                       "func": "...", "message": "..." }, ... ],
       "count": N }

   with findings in the same source-location order as the text report. *)

open Cmdliner

let parse_rule s =
  List.find_opt (fun r -> String.equal (Lint.rule_name r) s) Lint.all_rules

let json_report program_name findings =
  let open Scalana_obs.Obs.Json in
  Obj
    [
      ("program", Str program_name);
      ( "findings",
        Arr
          (List.map
             (fun (f : Lint.finding) ->
               Obj
                 [
                   ("rule", Str (Lint.rule_name f.Lint.rule));
                   ("file", Str f.Lint.loc.Scalana_mlang.Loc.file);
                   ("line", Num (float_of_int f.Lint.loc.Scalana_mlang.Loc.line));
                   ("func", Str f.Lint.func);
                   ("message", Str f.Lint.msg);
                 ])
             findings) );
      ("count", Num (float_of_int (List.length findings)));
    ]

let run program_name file rules quiet json =
  Cli_common.run_cli @@ fun () ->
  let program, _cost = Cli_common.load_program ~program_name ~file in
  let selected =
    match rules with
    | [] -> Lint.all_rules
    | names ->
        List.map
          (fun n ->
            match parse_rule n with
            | Some r -> r
            | None ->
                failwith
                  (Printf.sprintf "unknown rule %S (known: %s)" n
                     (String.concat ", " (List.map Lint.rule_name Lint.all_rules))))
          names
  in
  let findings =
    List.filter (fun (f : Lint.finding) -> List.mem f.rule selected)
      (Lint.run program)
  in
  if json then
    print_endline
      (Scalana_obs.Obs.Json.to_string
         (json_report program.Scalana_mlang.Ast.pname findings))
  else if not quiet then Fmt.pr "%a" Lint.pp_report findings;
  if findings = [] then Cli_common.exit_ok else Cli_common.exit_findings

let rules_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "r"; "rule" ] ~docv:"RULE"
        ~doc:
          (Printf.sprintf
             "Run only this rule (repeatable).  Known rules: %s."
             (String.concat ", " (List.map Lint.rule_name Lint.all_rules))))

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ] ~doc:"Suppress output; only the exit code.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit the findings as a JSON object \
           $(i,{program, findings: [{rule, file, line, func, message}], \
           count}) instead of text.  The exit code is unchanged.")

let cmd =
  Cmd.v
    (Cmd.info "scalana-lint" ~exits:Cli_common.exits
       ~doc:"Static scaling-loss linter (exit 1 on findings)")
    Term.(
      const run $ Cli_common.program_arg $ Cli_common.file_arg $ rules_arg
      $ quiet_arg $ json_arg)

let () = exit (Cmd.eval' cmd)
