(* scalana-prof: runtime step — execute the (simulated) program at one
   job scale with the ScalAna profiler attached and add the profile to
   the session. *)

open Cmdliner

let run session nprocs freq measure_overhead inject_delay inject_ranks
    inject_every =
  Cli_common.run_cli @@ fun () ->
  let static = Scalana.Artifact.load_static session in
  let entry_cost = Cli_common.registry_cost static.Scalana.Static.program in
  let config = { Scalana.Config.default with sampling_freq = freq } in
  (* deterministic perturbation of this one run: every computation (on
     the selected ranks) takes [--inject-delay] extra seconds, so a
     session profiled with it regresses reproducibly against a clean
     one — the seeded-fault half of a scalana-diff regression gate *)
  let inject =
    match inject_delay with
    | None -> Scalana_runtime.Inject.empty
    | Some d ->
        if d < 0.0 then failwith "--inject-delay must be non-negative";
        let ranks =
          match inject_ranks with [] -> None | ranks -> Some ranks
        in
        Scalana_runtime.Inject.create
          [ Scalana_runtime.Inject.delay ?ranks ~every:inject_every d ]
  in
  let run =
    (* elastic built-ins run the epoch driver: ranks leave/join per the
       registry plan and the stored profile carries the membership
       timeline *)
    match Cli_common.registry_elastic_plan static.Scalana.Static.program with
    | Some plan ->
        Scalana.Prof.run_elastic ~config ~cost:entry_cost ~plan static ~nprocs
          ()
    | None ->
        Scalana.Prof.run ~config ~cost:entry_cost ~inject ~measure_overhead
          static ~nprocs ()
  in
  Scalana.Artifact.save_run session run;
  (* re-save the static artifact: indirect-call refinement mutates it *)
  Scalana.Artifact.save_static session static;
  Printf.printf "np=%d elapsed=%.4fs samples=%d mpi_calls=%d storage=%dB\n"
    nprocs run.result.elapsed run.data.total_samples run.data.mpi_calls_seen
    (Scalana_profile.Profdata.storage_bytes run.data);
  (match Scalana.Prof.overhead_percent run with
  | Some pct -> Printf.printf "runtime overhead: %.2f%%\n" pct
  | None -> ());
  Cli_common.exit_ok

let np_arg =
  Arg.(
    value & opt int 8
    & info [ "n"; "np" ] ~docv:"N" ~doc:"Number of simulated MPI processes.")

let freq_arg =
  Arg.(
    value
    & opt float Scalana.Config.default.sampling_freq
    & info [ "freq" ] ~docv:"HZ" ~doc:"Sampling frequency.")

let overhead_arg =
  Arg.(
    value & flag
    & info [ "measure-overhead" ]
        ~doc:"Also run uninstrumented and report the overhead percentage.")

let inject_delay_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "inject-delay" ] ~docv:"SEC"
        ~doc:
          "Deterministically delay every computation by $(docv) seconds \
           during this profiling run (on the --inject-ranks ranks, every \
           --inject-every executions).  The stored profile regresses \
           reproducibly against a clean session — the seeded-fault input \
           of a $(b,scalana-diff) regression gate.")

let inject_ranks_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "inject-ranks" ] ~docv:"R,S,..."
        ~doc:"Ranks --inject-delay applies to (default: all).")

let inject_every_arg =
  Arg.(
    value & opt int 1
    & info [ "inject-every" ] ~docv:"K"
        ~doc:"Apply --inject-delay on every $(docv)-th execution.")

let cmd =
  Cmd.v
    (Cmd.info "scalana-prof" ~exits:Cli_common.exits
       ~doc:"Sampling-based profiling run (runtime)")
    Term.(
      const run $ Cli_common.session_arg $ np_arg $ freq_arg $ overhead_arg
      $ inject_delay_arg $ inject_ranks_arg $ inject_every_arg)

let () = exit (Cmd.eval' cmd)
