(* scalana-static: compile-time step — build and contract the PSG, store
   it in the session directory, print Table II-style statistics (now
   including the def-use dataflow counts).  With --lint, also run the
   static scaling-loss linter and exit 1 on findings. *)

open Cmdliner

let run program_name file session max_loop_depth dump predict lint =
  Cli_common.run_cli @@ fun () ->
  let program, _cost = Cli_common.load_program ~program_name ~file in
  let static = Scalana.Static.analyze ~max_loop_depth program in
  Scalana.Artifact.save_static session static;
  print_endline Scalana_psg.Stats.header;
  print_endline (Scalana_psg.Stats.row static.stats);
  Printf.printf "contraction removed %.0f%% of vertices\n"
    (100.0 *. Scalana_psg.Stats.contraction_ratio static.stats);
  Printf.printf "session written to %s\n" session;
  if dump then begin
    print_endline "-- contracted PSG --";
    Fmt.pr "%a@." Scalana_psg.Psg.pp (Scalana.Static.psg static)
  end;
  if predict then
    Fmt.pr "%a" Scalana_cfg.Commcost.render static.Scalana.Static.commcost;
  if lint then begin
    let findings = Lint.run program in
    print_endline "-- static lint --";
    Fmt.pr "%a" Lint.pp_report findings;
    if findings = [] then Cli_common.exit_ok else Cli_common.exit_findings
  end
  else Cli_common.exit_ok

let dump_arg =
  Arg.(value & flag & info [ "dump-psg" ] ~doc:"Print the contracted PSG.")

let predict_arg =
  Arg.(
    value & flag
    & info [ "predict" ]
        ~doc:
          "Print the symbolic communication-complexity predictions: \
           per-statement scaling classes, message counts, byte volumes, \
           destination expressions, and per-function communication \
           patterns and matrices.")

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:"Run the static scaling-loss linter too; exit 1 on findings.")

let cmd =
  Cmd.v
    (Cmd.info "scalana-static" ~exits:Cli_common.exits
       ~doc:"Static PSG construction (compile time)")
    Term.(
      const run $ Cli_common.program_arg $ Cli_common.file_arg
      $ Cli_common.session_arg $ Cli_common.max_loop_depth_arg $ dump_arg
      $ predict_arg $ lint_arg)

let () = exit (Cmd.eval' cmd)
