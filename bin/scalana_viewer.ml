(* scalana-viewer: render the detection result with source snippets (the
   text rendering of the Fig. 9 GUI).  Exits 0 on success, 2 on a
   missing or corrupt session. *)

open Cmdliner

let run session context html timeline timeline_np static_crosscheck elastic =
  Cli_common.run_cli @@ fun () ->
  let s = Scalana.Artifact.load_session session in
  List.iter
    (fun i ->
      Printf.eprintf "scalana: warning: %s\n%!" (Scalana.Artifact.issue_message i))
    s.issues;
  if s.runs = [] then failwith "session has no profiles; run scalana-prof first";
  let tl =
    if timeline then begin
      let nprocs =
        match timeline_np with
        | Some n ->
            if n <= 0 then failwith "--timeline-np must be positive";
            n
        | None -> List.fold_left (fun acc (n, _) -> max acc n) 1 s.runs
      in
      let cost = Cli_common.registry_cost s.static.Scalana.Static.program in
      Some (Scalana.Pipeline.rank_timeline ~cost s.static ~nprocs)
    end
    else None
  in
  let config = { Scalana.Config.default with static_crosscheck; elastic } in
  let pipeline = Scalana.Pipeline.detect_session ~config ?timeline:tl s in
  (match html with
  | Some path ->
      Scalana.Htmlreport.write pipeline ~path;
      Printf.printf "HTML report written to %s\n" path
  | None ->
      if timeline then print_string (Scalana.Viewer.show_timeline pipeline)
      else
        print_string (Scalana.Viewer.show ~snippet_context:context pipeline));
  Cli_common.exit_ok

let context_arg =
  Arg.(
    value & opt int 2
    & info [ "context" ] ~docv:"N" ~doc:"Source snippet context lines.")

let html_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "html" ] ~docv:"FILE"
        ~doc:"Write a standalone HTML report instead of text output.")

let timeline_arg =
  Arg.(
    value & flag
    & info [ "timeline" ]
        ~doc:
          "Show the per-rank application timeline as ASCII rows ('=' \
           compute, 'M' MPI, 'w' wait) instead of the root-cause view; \
           with --html, the report gains the wait-state section.")

let timeline_np_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeline-np" ] ~docv:"N"
        ~doc:
          "Scale of the timeline replay (default: the largest scale \
           profiled in the session).")

let static_crosscheck_arg =
  Arg.(
    value & flag
    & info [ "static-crosscheck" ]
        ~doc:
          "Cross-check the static complexity predictions against the \
           measured log-log fits; the report (text and HTML) gains the \
           cross-check annotations and section.")

let elastic_arg =
  Arg.(
    value & flag
    & info [ "elastic" ]
        ~doc:
          "Render the elastic-execution evidence stored with the profiles \
           (membership timelines, recovery-protocol costs); the \
           --timeline rows additionally tag ranks that left, joined or \
           were stranded.  Non-elastic sessions render byte-identically \
           with or without this flag.")

let cmd =
  Cmd.v
    (Cmd.info "scalana-viewer" ~exits:Cli_common.exits
       ~doc:"Root-cause source viewer")
    Term.(
      const run $ Cli_common.session_arg $ context_arg $ html_arg
      $ timeline_arg $ timeline_np_arg $ static_crosscheck_arg $ elastic_arg)

let () = exit (Cmd.eval' cmd)
