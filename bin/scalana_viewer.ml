(* scalana-viewer: render the detection result with source snippets (the
   text rendering of the Fig. 9 GUI).  Exits 0 on success, 2 on a
   missing or corrupt session. *)

open Cmdliner

let run session context html =
  Cli_common.run_cli @@ fun () ->
  let s = Scalana.Artifact.load_session session in
  List.iter
    (fun i ->
      Printf.eprintf "scalana: warning: %s\n%!" (Scalana.Artifact.issue_message i))
    s.issues;
  if s.runs = [] then failwith "session has no profiles; run scalana-prof first";
  let pipeline = Scalana.Pipeline.detect_session s in
  (match html with
  | Some path ->
      Scalana.Htmlreport.write pipeline ~path;
      Printf.printf "HTML report written to %s\n" path
  | None -> print_string (Scalana.Viewer.show ~snippet_context:context pipeline));
  Cli_common.exit_ok

let context_arg =
  Arg.(
    value & opt int 2
    & info [ "context" ] ~docv:"N" ~doc:"Source snippet context lines.")

let html_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "html" ] ~docv:"FILE"
        ~doc:"Write a standalone HTML report instead of text output.")

let cmd =
  Cmd.v
    (Cmd.info "scalana-viewer" ~exits:Cli_common.exits
       ~doc:"Root-cause source viewer")
    Term.(const run $ Cli_common.session_arg $ context_arg $ html_arg)

let () = exit (Cmd.eval' cmd)
