(* Fault tolerance end to end: kill a rank mid-run, truncate a profile
   on disk, and watch the pipeline degrade instead of dying — the report
   still lands on Zeus-MP's planted boundary-value loops, now with a
   data-quality section quantifying what was lost.

     dune exec examples/fault_tolerance.exe                            *)

open Scalana_runtime
open Scalana_detect

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let entry = Scalana_apps.Registry.find "zeusmp" in

  (* --- 1. a rank dies halfway through the job --- *)
  section "rank kill at half progress";
  let half = Scalana.Experiment.bare_elapsed ~cost:entry.cost (entry.make ()) ~nprocs:8 *. 0.5 in
  Printf.printf "killing rank 3 after %.3fs of simulated time\n" half;
  let faults = Faults.plan [ Faults.kill_rank ~rank:3 ~after:half () ] in
  let pipe =
    Scalana.Pipeline.run ~cost:entry.cost ~faults ~scales:[ 4; 8; 16 ]
      (entry.make ())
  in
  List.iter
    (fun (r : Quality.run_issue) ->
      Printf.printf "  np=%d: killed ranks {%s}, stranded {%s}, %d attempt(s)\n"
        r.Quality.ri_nprocs
        (String.concat "," (List.map string_of_int r.Quality.ri_killed))
        (String.concat "," (List.map string_of_int r.Quality.ri_stranded))
        r.Quality.ri_attempts)
    pipe.quality.Quality.run_issues;
  Printf.printf "  rank coverage: %.1f%%\n"
    (100.0 *. pipe.quality.Quality.rank_coverage);
  (match pipe.analysis.causes with
  | c :: _ ->
      Printf.printf "  root cause still found: %s @%s\n" c.Rootcause.cause_label
        (Scalana_mlang.Loc.to_string c.Rootcause.cause_loc)
  | [] -> print_endline "  (no cause ranked over the surviving ranks)");

  (* --- 2. a profile file is truncated on disk --- *)
  section "artifact truncation and salvage";
  let dir = Filename.temp_file "scalana-ft" "" in
  Sys.remove dir;
  let static = Scalana.Static.analyze (entry.make ()) in
  Scalana.Artifact.save_static dir static;
  List.iter
    (fun nprocs ->
      Scalana.Artifact.save_run dir
        (Scalana.Prof.run ~cost:entry.cost static ~nprocs ()))
    [ 4; 8; 16 ];
  let victim = Scalana.Artifact.run_path dir 16 in
  Printf.printf "truncating %s to 100 bytes (a writer died mid-record)\n"
    (Filename.basename victim);
  Faults.truncate_file victim ~at_byte:100;
  let session = Scalana.Artifact.load_session dir in
  List.iter
    (fun i -> Printf.printf "  salvage: %s\n" (Scalana.Artifact.issue_message i))
    session.issues;
  let pipe2 = Scalana.Pipeline.detect_session session in
  Printf.printf "  detection ran over surviving scales: %s\n"
    (String.concat ", " (List.map (fun (n, _) -> string_of_int n) pipe2.runs));

  (* --- 3. the degraded report announces itself --- *)
  section "degraded report";
  print_string pipe2.report;
  Printf.printf
    "\nclean inputs produce byte-identical reports with no data-quality \
     section;\nsee docs/robustness.md for the format and fault taxonomy\n"
