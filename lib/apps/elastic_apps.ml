(* Elastic workloads: programs whose iteration range is parameterized
   ([iter_lo], [iter_hi]) so an elastic session can run each membership
   epoch as its own slice of the same AST.  One unified program ⇒ one
   PSG ⇒ epoch profiles of different communicator sizes merge onto the
   same vertices.

   Everything here is np-safe at *any* process count — a shrink leaves a
   non-power-of-two communicator behind, so the exchanges are ring
   halos, never hypercubes ([rank lxor 2^k] can exceed a shrunk np). *)

open Scalana_mlang
open Scalana_runtime
open Expr.Infix

(* CG solver with a mid-run shrink: rank 1 fails at the iteration-6
   boundary and the surviving communicator finishes the solve.  Same
   skeleton as NPB CG, with the transpose exchange replaced by a ring
   halo so the epoch after the shrink (np = nominal - 1, usually odd)
   is still well-formed. *)
let make_cg_shrink ?(optimized = false) () =
  ignore optimized;
  let b = Builder.create ~file:"cg_shrink.mmp" ~name:"cg-shrink" () in
  Builder.param b "na" 40_000_000;
  Builder.param b "nz" 640_000_000;
  Builder.param b "iter_lo" 0;
  Builder.param b "iter_hi" 12;
  Builder.func b "conj_grad" (fun () ->
      [
        Builder.comp b ~label:"spmv" ~locality:0.86
          ~flops:(i 2 * p "nz" / np)
          ~mem:(i 3 * p "nz" / np)
          ();
      ]
      @ Common.ring_halo b ~bytes:(i 8 * p "na" / np) ()
      @ [
          Builder.comp b ~label:"axpy" ~locality:0.94
            ~flops:(i 6 * p "na" / np)
            ~mem:(i 9 * p "na" / np)
            ();
          Builder.allreduce b ~bytes:(i 8);
          Builder.comp b ~label:"p_update" ~locality:0.95
            ~flops:(i 2 * p "na" / np)
            ~mem:(i 3 * p "na" / np)
            ();
          Builder.allreduce b ~bytes:(i 8);
        ]);
  Builder.func b "main" (fun () ->
      Common.setup_phase b ~name:"setup" ~work:(p "na" / np / i 4) ()
      @ [
          Builder.comp b ~label:"init" ~locality:0.8
            ~flops:(p "na" / np)
            ~mem:(i 2 * p "na" / np)
            ();
          Builder.bcast b ~bytes:(i 64) ();
          Builder.loop b ~label:"cg_iter" ~var:"it"
            ~count:(p "iter_hi" - p "iter_lo")
            (fun () -> [ Builder.call b "conj_grad" ]);
          Builder.allreduce b ~bytes:(i 8);
        ]);
  Builder.program b

(* rank 1 dies entering iteration 6 of 12; its partition is
   repartitioned over the survivors *)
let cg_shrink_plan =
  Elastic.plan ~total_iters:12 ~state_bytes:2_097_152
    [ Elastic.shrink_at ~iter:6 ~rank:1 ]

(* Halo stencil with a mid-run grow: two fresh ranks join at the
   iteration-6 rebalance point, receive migrated slabs, and the stencil
   continues on the enlarged ring.  The halo surface is constant per
   rank while the interior shrinks with np — the classic
   surface-to-volume scaling loss, now measured across two memberships. *)
let make_halo_grow ?(optimized = false) () =
  ignore optimized;
  let b = Builder.create ~file:"halo_grow.mmp" ~name:"halo-grow" () in
  Builder.param b "cells" 50_000_000;
  Builder.param b "halo_bytes" 65_536;
  Builder.param b "iter_lo" 0;
  Builder.param b "iter_hi" 12;
  Builder.func b "step" (fun () ->
      [
        Builder.comp b ~label:"stencil" ~locality:0.9
          ~flops:(i 8 * p "cells" / np)
          ~mem:(i 5 * p "cells" / np)
          ();
      ]
      @ Common.nonblocking_halo b ~bytes:(p "halo_bytes") ()
      @ [
          Builder.comp b ~label:"boundary" ~locality:0.7
            ~flops:(i 16 * p "halo_bytes")
            ~mem:(i 4 * p "halo_bytes")
            ();
          Builder.allreduce b ~bytes:(i 8);
        ]);
  Builder.func b "main" (fun () ->
      Common.setup_phase b ~name:"setup" ~work:(p "cells" / np / i 8) ()
      @ [
          Builder.bcast b ~bytes:(i 64) ();
          Builder.loop b ~label:"time_step" ~var:"it"
            ~count:(p "iter_hi" - p "iter_lo")
            (fun () -> [ Builder.call b "step" ]);
          Builder.allreduce b ~bytes:(i 8);
        ]);
  Builder.program b

(* two ranks join at the iteration-6 rebalance point *)
let halo_grow_plan =
  Elastic.plan ~total_iters:12 ~state_bytes:1_048_576
    [ Elastic.grow_at ~iter:6 ~ranks:2 ]
