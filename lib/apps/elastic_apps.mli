(** Elastic workloads: iteration-sliced programs ([iter_lo]/[iter_hi]
    parameters) with their membership plans, for sessions where ranks
    leave or join mid-run.  All exchanges are ring-shaped so any
    post-shrink communicator size is well-formed. *)

open Scalana_mlang
open Scalana_runtime

(** CG solver; rank 1 fails at the iteration-6 boundary. *)
val make_cg_shrink : ?optimized:bool -> unit -> Ast.program

val cg_shrink_plan : Elastic.plan

(** Halo stencil; two fresh ranks join at the iteration-6 rebalance
    point. *)
val make_halo_grow : ?optimized:bool -> unit -> Ast.program

val halo_grow_plan : Elastic.plan
