(* NPB CG analogue: conjugate-gradient iterations with a sparse
   matrix-vector product, recursive-doubling partition exchange and dot
   product allreduces — the communication skeleton of Fig. 2. *)

open Scalana_mlang
open Expr.Infix

(* Weak-scaled variant: the per-rank partition is pinned by [na_rank] /
   [nz_rank] and the global problem grows with the job, so per-rank work
   and exchange volume stay constant while the collective and hypercube
   depths grow with log2(np).  This is the extreme-scale smoke workload:
   the event count per rank is nearly scale-invariant, which makes
   events/second at np=4096..16384 a clean engine-throughput metric. *)
let make_weak ?(optimized = false) () =
  ignore optimized;
  let b = Builder.create ~file:"npb_cg_weak.mmp" ~name:"npb-cg-weak" () in
  Builder.param b "na_rank" 100_000;
  Builder.param b "nz_rank" 1_600_000;
  Builder.param b "niter" 6;
  Builder.func b "conj_grad" (fun () ->
      [
        Builder.comp b ~label:"spmv" ~locality:0.86
          ~flops:(i 2 * p "nz_rank")
          ~mem:(i 3 * p "nz_rank")
          ();
        Common.hypercube_exchange b ~label:"transpose_exchange"
          ~bytes:(i 8 * p "na_rank")
          ();
        Builder.comp b ~label:"axpy" ~locality:0.94
          ~flops:(i 6 * p "na_rank")
          ~mem:(i 9 * p "na_rank")
          ();
        Builder.allreduce b ~bytes:(i 8);
        Builder.comp b ~label:"p_update" ~locality:0.95
          ~flops:(i 2 * p "na_rank")
          ~mem:(i 3 * p "na_rank")
          ();
        Builder.allreduce b ~bytes:(i 8);
      ]);
  Builder.func b "main" (fun () ->
      Common.setup_phase b ~name:"setup" ~work:(p "na_rank" / i 4) ()
      @ [
        Builder.comp b ~label:"init" ~locality:0.8
          ~flops:(p "na_rank")
          ~mem:(i 2 * p "na_rank")
          ();
        Builder.bcast b ~bytes:(i 64) ();
        Builder.loop b ~label:"cg_iter" ~var:"it" ~count:(p "niter") (fun () ->
            [ Builder.call b "conj_grad" ]);
        Builder.allreduce b ~bytes:(i 8);
      ]);
  Builder.program b

let make ?(optimized = false) () =
  ignore optimized;
  let b = Builder.create ~file:"npb_cg.mmp" ~name:"npb-cg" () in
  Builder.param b "na" 40_000_000;
  Builder.param b "nz" 640_000_000;
  Builder.param b "niter" 30;
  Builder.func b "conj_grad" (fun () ->
      [
        Builder.comp b ~label:"spmv" ~locality:0.86
          ~flops:(i 2 * p "nz" / np)
          ~mem:(i 3 * p "nz" / np)
          ();
        Common.hypercube_exchange b ~label:"transpose_exchange"
          ~bytes:(i 8 * p "na" / np)
          ();
        Builder.comp b ~label:"axpy" ~locality:0.94
          ~flops:(i 6 * p "na" / np)
          ~mem:(i 9 * p "na" / np)
          ();
        Builder.allreduce b ~bytes:(i 8);
        Builder.comp b ~label:"p_update" ~locality:0.95
          ~flops:(i 2 * p "na" / np)
          ~mem:(i 3 * p "na" / np)
          ();
        Builder.allreduce b ~bytes:(i 8);
      ]);
  Builder.func b "main" (fun () ->
      Common.setup_phase b ~name:"setup" ~work:(p "na" / np / i 4) ()
      @ [
        Builder.comp b ~label:"init" ~locality:0.8
          ~flops:(p "na" / np)
          ~mem:(i 2 * p "na" / np)
          ();
        Builder.bcast b ~bytes:(i 64) ();
        Builder.loop b ~label:"cg_iter" ~var:"it" ~count:(p "niter") (fun () ->
            [ Builder.call b "conj_grad" ]);
        Builder.allreduce b ~bytes:(i 8);
      ]);
  Builder.program b
