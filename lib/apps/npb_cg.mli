(** NPB CG analogue; see the implementation header for the communication
    skeleton and any planted behaviour. *)

val make : ?optimized:bool -> unit -> Scalana_mlang.Ast.program

(** Weak-scaled variant: per-rank partition size is constant
    ([na_rank]/[nz_rank] params), global size grows with np.  Used by the
    extreme-scale engine benchmarks and the CI perf-smoke job. *)
val make_weak : ?optimized:bool -> unit -> Scalana_mlang.Ast.program
