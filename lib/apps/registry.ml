(* Registry of all evaluated programs (the paper's Table II roster). *)

open Scalana_mlang
open Scalana_runtime

type entry = {
  name : string;
  description : string;
  make : ?optimized:bool -> unit -> Ast.program;
  cost : Costmodel.t;
  square_scales : bool;  (* BT/SP-style sqrt(np) process grids *)
  has_optimized : bool;
  elastic_plan : Elastic.plan option;  (* membership plan, elastic apps *)
}

let entry ?(cost = Costmodel.default) ?(square_scales = false)
    ?(has_optimized = false) ?elastic_plan name description make =
  { name; description; make; cost; square_scales; has_optimized; elastic_plan }

let all =
  [
    entry "bt" "NPB BT: block-tridiagonal ADI on a square process grid"
      Npb_bt.make ~square_scales:true;
    entry "cg" "NPB CG: conjugate gradient with hypercube exchange"
      Npb_cg.make;
    entry "ep" "NPB EP: embarrassingly parallel" Npb_ep.make;
    entry "ft" "NPB FT: 3-D FFT with all-to-all transpose" Npb_ft.make;
    entry "mg" "NPB MG: multigrid V-cycle with per-level halos" Npb_mg.make;
    entry "sp" "NPB SP: scalar-pentadiagonal ADI on a square process grid"
      Npb_sp.make ~square_scales:true;
    entry "lu" "NPB LU: SSOR with wavefront pipeline" Npb_lu.make;
    entry "is" "NPB IS: integer bucket sort" Npb_is.make;
    entry "sst" "SST-like parallel discrete-event simulator" Sst_like.make
      ~has_optimized:true;
    entry "nekbone" "Nekbone-like spectral-element CG solver"
      Nekbone_like.make
      ~cost:(Costmodel.heterogeneous ())
      ~has_optimized:true;
    entry "zeusmp" "Zeus-MP-like 3-D MHD code" Zeusmp_like.make
      ~has_optimized:true;
  ]

let names = List.map (fun e -> e.name) all

(* Extreme-scale entries: weak-scaled workloads whose per-rank event
   count is nearly constant, meant for np=4096..16384 engine throughput
   runs (bench scale sweep, CI perf-smoke).  Kept out of [all] so the
   Table II roster, the golden reports and the lint calibration stay the
   paper's eleven programs. *)
let extreme =
  [
    entry "cg-weak"
      "NPB CG, weak-scaled: constant per-rank partition, np=4096+ smoke"
      Npb_cg.make_weak;
  ]

let extreme_names = List.map (fun e -> e.name) extreme

(* Elastic entries: iteration-sliced programs paired with membership
   plans (ranks leave / join mid-run).  Kept out of [all] for the same
   reason as [extreme]: the Table II roster and the original golden
   reports stay the paper's eleven programs. *)
let elastic =
  [
    entry "cg-shrink"
      "CG solver over a ring; rank 1 fails at the iteration-6 boundary"
      Elastic_apps.make_cg_shrink
      ~elastic_plan:Elastic_apps.cg_shrink_plan;
    entry "halo-grow"
      "halo stencil; two ranks join at the iteration-6 rebalance point"
      Elastic_apps.make_halo_grow
      ~elastic_plan:Elastic_apps.halo_grow_plan;
  ]

let elastic_names = List.map (fun e -> e.name) elastic

let find name =
  match
    List.find_opt
      (fun e -> String.equal e.name name)
      (all @ extreme @ elastic)
  with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "unknown program %S (known: %s)" name
           (String.concat ", " names))

(* Job scales for an entry within [min_np, max_np]: powers of two, or
   powers of four for square-grid programs. *)
let scales e ~min_np ~max_np =
  let rec go acc n =
    if n > max_np then List.rev acc
    else go (n :: acc) (if e.square_scales then n * 4 else n * 2)
  in
  go [] (max min_np (if e.square_scales then 4 else 2))
