(** Registry of the evaluated programs (the paper's Table II roster). *)

open Scalana_mlang
open Scalana_runtime

type entry = {
  name : string;
  description : string;
  make : ?optimized:bool -> unit -> Ast.program;
  cost : Costmodel.t;  (** recommended machine model *)
  square_scales : bool;  (** BT/SP-style sqrt(np) process grids *)
  has_optimized : bool;
  elastic_plan : Elastic.plan option;
      (** membership plan of an elastic app ([None] for fixed apps);
          profiling tools run these sessions via
          {!Scalana_runtime.Elastic} epochs *)
}

val all : entry list
val names : string list

(** Extreme-scale entries (weak-scaled, np=4096+ engine smoke); kept out
    of [all] so the Table II roster and golden reports stay the paper's
    eleven programs.  [find] resolves these too. *)
val extreme : entry list

val extreme_names : string list

(** Elastic entries (iteration-sliced programs with membership plans);
    kept out of [all] like [extreme].  [find] resolves these too. *)
val elastic : entry list

val elastic_names : string list

(** Searches [all], then [extreme], then [elastic]; raises
    [Invalid_argument] for unknown names. *)
val find : string -> entry

(** Job scales within [min_np, max_np]: powers of two, or powers of four
    for square-grid programs. *)
val scales : entry -> min_np:int -> max_np:int -> int list
