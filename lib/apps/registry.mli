(** Registry of the evaluated programs (the paper's Table II roster). *)

open Scalana_mlang
open Scalana_runtime

type entry = {
  name : string;
  description : string;
  make : ?optimized:bool -> unit -> Ast.program;
  cost : Costmodel.t;  (** recommended machine model *)
  square_scales : bool;  (** BT/SP-style sqrt(np) process grids *)
  has_optimized : bool;
}

val all : entry list
val names : string list

(** Extreme-scale entries (weak-scaled, np=4096+ engine smoke); kept out
    of [all] so the Table II roster and golden reports stay the paper's
    eleven programs.  [find] resolves these too. *)
val extreme : entry list

val extreme_names : string list

(** Searches [all] then [extreme]; raises [Invalid_argument] for unknown
    names. *)
val find : string -> entry

(** Job scales within [min_np, max_np]: powers of two, or powers of four
    for square-grid programs. *)
val scales : entry -> min_np:int -> max_np:int -> int list
