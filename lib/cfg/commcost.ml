(* Static communication-cost analysis.

   Two cooperating interpreters over the MiniMPI AST derive, for every
   communication statement, its symbolic message count, per-message byte
   volume, destination-rank expression, and a scaling class:

   - a *symbolic* abstract interpreter (domain: [Symbolic]) propagates
     invocation counts interprocedurally over the [Callgraph] (argument
     bindings joined across call sites, Top on recursion) and evaluates
     per-statement execution counts from the natural-loop trip counts
     ([Symbolic.block_counts] over the CFG, refined by an AST walk that
     also tracks [let] bindings);
   - a *concrete* per-rank walker executes the program at a few probe
     scales to resolve what the polynomial domain cannot (rank
     arithmetic: xor partners, mod rings, grid neighbours), measuring
     each statement's network pressure so its scaling exponent can be
     recovered by {!Symbolic.fit_exponents}.

   Network pressure of a statement at scale [p] is its per-rank message
   count weighted by ring distance (dilation) for point-to-point
   operations, and by the standard tree/dissemination depths for
   collectives — the load the statement places on the interconnect.  A
   hypercube exchange sends only log2(p) messages per rank, but their
   distances sum to Theta(p): class O(p), which is exactly why such
   transposes stop scaling. *)

open Scalana_mlang

(* Model constants mirroring Network.default.  The cfg library sits
   below the runtime, so the two values are duplicated here; the
   crosscheck only compares log-log slopes, for which the absolute
   constants cancel. *)
let model_latency = 1.5e-6
let model_bandwidth = 10e9

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  if n <= 1 then 0 else go 0 1

let ring_dist np a b =
  let d = (b - a + np) mod np in
  min d (np - d)

(* ------------------------------------------------------------------ *)
(* Concrete per-rank walker                                            *)
(* ------------------------------------------------------------------ *)

exception Out_of_fuel

type walk = {
  w_prog : Ast.program;
  w_np : int;
  mutable w_fuel : int;
  mutable w_exact : bool;
  mutable w_stack : string list;
  w_prune : (Loc.t, bool) Hashtbl.t;
  w_on_mpi :
    func:string -> loc:Loc.t -> rank:int -> eval:(Expr.t -> int) ->
    Ast.mpi_call -> unit;
}

let default_fuel = 300_000

(* A loop whose body performs no communication, calls nothing and binds
   no variables is invisible to every consumer below: skip it instead of
   iterating a 10^8-trip compute kernel. *)
let rec subtree_effectful w stmts = List.exists (stmt_effectful w) stmts

and stmt_effectful w (st : Ast.stmt) =
  match st.Ast.node with
  | Ast.Mpi _ | Ast.Call _ | Ast.Icall _ | Ast.Let _ -> true
  | Ast.Comp _ -> false
  | Ast.Loop l -> (
      match Hashtbl.find_opt w.w_prune st.Ast.loc with
      | Some v -> v
      | None ->
          let v = subtree_effectful w l.Ast.body in
          Hashtbl.replace w.w_prune st.Ast.loc v;
          v)
  | Ast.Branch b -> (
      match Hashtbl.find_opt w.w_prune st.Ast.loc with
      | Some v -> v
      | None ->
          let v = subtree_effectful w b.then_ || subtree_effectful w b.else_ in
          Hashtbl.replace w.w_prune st.Ast.loc v;
          v)

(* Variable slots are function-scoped and mutable, as in the runtime:
   a [let] or loop variable stays bound after its block ends. *)
let bind vars var v =
  let rec go = function
    | [] -> [ (var, v) ]
    | (n, _) :: rest when String.equal n var -> (n, v) :: rest
    | kv :: rest -> kv :: go rest
  in
  go vars

let rec exec_stmts w fname rank vars stmts =
  List.iter (exec_stmt w fname rank vars) stmts

and exec_stmt w fname rank vars (st : Ast.stmt) =
  if w.w_fuel <= 0 then begin
    w.w_exact <- false;
    raise Out_of_fuel
  end;
  w.w_fuel <- w.w_fuel - 1;
  let eval e =
    Expr.eval
      (Expr.env ~rank ~nprocs:w.w_np ~params:w.w_prog.Ast.params ~vars:!vars)
      e
  in
  match st.Ast.node with
  | Ast.Comp _ -> ()
  | Ast.Let { var; value } -> (
      match eval value with
      | v -> vars := bind !vars var v
      | exception Expr.Eval_error _ -> w.w_exact <- false)
  | Ast.Mpi c -> w.w_on_mpi ~func:fname ~loc:st.Ast.loc ~rank ~eval c
  | Ast.Loop l ->
      if stmt_effectful w st then (
        match eval l.Ast.count with
        | exception Expr.Eval_error _ -> w.w_exact <- false
        | n ->
            for iv = 0 to n - 1 do
              vars := bind !vars l.Ast.var iv;
              exec_stmts w fname rank vars l.Ast.body
            done)
  | Ast.Branch b -> (
      match eval b.cond with
      | exception Expr.Eval_error _ -> w.w_exact <- false
      | c -> exec_stmts w fname rank vars (if c <> 0 then b.then_ else b.else_))
  | Ast.Call { callee; args } -> (
      match Ast.find_func_opt w.w_prog callee with
      | None -> w.w_exact <- false
      | Some f ->
          let bound =
            List.filter_map
              (fun (name, e) ->
                match eval e with
                | v -> Some (name, v)
                | exception Expr.Eval_error _ ->
                    w.w_exact <- false;
                    None)
              args
          in
          exec_call w rank f bound)
  | Ast.Icall { selector; targets } -> (
      match eval selector with
      | exception Expr.Eval_error _ -> w.w_exact <- false
      | sel -> (
          let n = List.length targets in
          if n = 0 then w.w_exact <- false
          else
            let idx = ((sel mod n) + n) mod n in
            match Ast.find_func_opt w.w_prog (List.nth targets idx) with
            | None -> w.w_exact <- false
            | Some f -> exec_call w rank f []))

and exec_call w rank (f : Ast.func) bound =
  if List.mem f.Ast.fname w.w_stack || List.length w.w_stack > 32 then
    w.w_exact <- false
  else begin
    w.w_stack <- f.Ast.fname :: w.w_stack;
    Fun.protect
      ~finally:(fun () -> w.w_stack <- List.tl w.w_stack)
      (fun () -> exec_stmts w f.Ast.fname rank (ref bound) f.Ast.fbody)
  end

(* Runs every rank (or the given subset) through the program; returns
   whether the walk covered it exactly (no eval errors, unresolved calls
   or exhausted fuel). *)
let walk_program ?(fuel = default_fuel) ?ranks prog ~nprocs ~on_mpi =
  let w =
    {
      w_prog = prog;
      w_np = nprocs;
      w_fuel = fuel;
      w_exact = true;
      w_stack = [];
      w_prune = Hashtbl.create 32;
      w_on_mpi = on_mpi;
    }
  in
  let ranks =
    match ranks with Some rs -> rs | None -> List.init nprocs Fun.id
  in
  (match Ast.find_func_opt prog prog.Ast.main with
  | None -> w.w_exact <- false
  | Some main ->
      List.iter
        (fun rank ->
          w.w_fuel <- fuel;
          w.w_stack <- [];
          try exec_call w rank main [] with Out_of_fuel -> ())
        ranks);
  w.w_exact

(* ------------------------------------------------------------------ *)
(* Symbolic interprocedural propagation                                *)
(* ------------------------------------------------------------------ *)

type finfo = {
  mutable fi_inv : Symbolic.t;  (* symbolic invocations per program run *)
  mutable fi_ctx : (string * Symbolic.t) list;  (* formal bindings *)
}

(* AST walk of one function: per-statement count multiplier (product of
   enclosing trip counts) and the symbolic variable environment in scope
   — [let]s included, loop variables bound to their trip counts.  This
   refines the CFG/dominance counts (which cannot see [let]s) and
   supplies the environments for byte/destination expressions. *)
let scan_function prog ctx (f : Ast.func) =
  let mults = Hashtbl.create 32 in
  let envs = Hashtbl.create 32 in
  let comm = ref [] in
  let rec go vars mult stmts = ignore (List.fold_left (step mult) vars stmts)
  and step mult vars (st : Ast.stmt) =
    Hashtbl.replace mults st.Ast.loc mult;
    Hashtbl.replace envs st.Ast.loc vars;
    let env = Symbolic.env ~params:prog.Ast.params ~vars in
    match st.Ast.node with
    | Ast.Comp _ | Ast.Call _ | Ast.Icall _ -> vars
    | Ast.Let { var; value } -> (var, Symbolic.of_expr env value) :: vars
    | Ast.Mpi c ->
        comm := (st, c) :: !comm;
        vars
    | Ast.Loop l ->
        let trip = Symbolic.of_expr env l.Ast.count in
        go ((l.Ast.var, trip) :: vars) (Symbolic.mul mult trip) l.Ast.body;
        vars
    | Ast.Branch b ->
        go vars mult b.then_;
        go vars mult b.else_;
        vars
  in
  go ctx Symbolic.one f.Ast.fbody;
  (mults, envs, List.rev !comm)

(* Per-invocation execution count of the statement at [loc]: the
   CFG/loop-nest count when the domain could express it, the AST-walk
   multiplier otherwise. *)
let count_at_loc cfg_counts scan_mults loc =
  match Hashtbl.find_opt cfg_counts loc with
  | Some c when not (Symbolic.is_top c) -> c
  | cfg -> (
      match Hashtbl.find_opt scan_mults loc with
      | Some m -> m
      | None -> ( match cfg with Some c -> c | None -> Symbolic.top))

let cfg_loc_counts prog ctx (f : Ast.func) =
  let env = Symbolic.env ~params:prog.Ast.params ~vars:ctx in
  let cfg = Cfg.of_func f in
  let counts = Symbolic.block_counts env cfg in
  let tbl = Hashtbl.create 32 in
  Array.iter
    (fun (b : Cfg.block) ->
      (match b.Cfg.origin with
      | Cfg.Loop_header st | Cfg.Branch_cond st ->
          Hashtbl.replace tbl st.Ast.loc counts.(b.Cfg.id)
      | Cfg.Plain | Cfg.Loop_latch _ -> ());
      List.iter
        (fun (st : Ast.stmt) -> Hashtbl.replace tbl st.Ast.loc counts.(b.Cfg.id))
        b.Cfg.stmts)
    cfg.Cfg.blocks;
  tbl

let ctx_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && Symbolic.equal v1 v2)
       a b

(* Fixpoint over the SCC condensation, caller-first.  Invocation counts
   are recomputed from callers each pass (sums must not accumulate);
   argument bindings are joined.  Recursive functions and their contexts
   widen to Top immediately, so only the acyclic part iterates and the
   pass count is bounded by the condensation depth. *)
let interproc prog =
  let cg = Callgraph.build prog in
  let reach =
    List.filter (fun n -> Ast.find_func_opt prog n <> None)
      (Callgraph.reachable cg)
  in
  let infos = Hashtbl.create 16 in
  List.iter
    (fun name ->
      let f = Ast.find_func prog name in
      let is_main = String.equal name prog.Ast.main in
      let init = if is_main then Symbolic.top else Symbolic.zero in
      Hashtbl.replace infos name
        {
          fi_inv = (if is_main then Symbolic.one else Symbolic.zero);
          fi_ctx = List.map (fun v -> (v, init)) f.Ast.fparams;
        })
    reach;
  let caller_first = List.rev (Callgraph.topo_order cg) in
  let order = List.filter (fun n -> Hashtbl.mem infos n) caller_first in
  let site_tables = Hashtbl.create 16 in
  let tables_of name =
    match Hashtbl.find_opt site_tables name with
    | Some t -> t
    | None ->
        let f = Ast.find_func prog name in
        let info = Hashtbl.find infos name in
        let cfg_counts = cfg_loc_counts prog info.fi_ctx f in
        let mults, envs, comm = scan_function prog info.fi_ctx f in
        let t = (cfg_counts, mults, envs, comm) in
        Hashtbl.replace site_tables name t;
        t
  in
  let site_count caller loc =
    let cfg_counts, mults, _, _ = tables_of caller in
    count_at_loc cfg_counts mults loc
  in
  let pass () =
    Hashtbl.reset site_tables;
    let changed = ref false in
    List.iter
      (fun name ->
        let info = Hashtbl.find infos name in
        (* invocations: recomputed from the callers *)
        let base =
          if String.equal name prog.Ast.main then Symbolic.one
          else Symbolic.zero
        in
        let inv =
          List.fold_left
            (fun acc (e : Callgraph.edge) ->
              match Hashtbl.find_opt infos e.Callgraph.caller with
              | None -> acc
              | Some ci ->
                  if Symbolic.is_zero ci.fi_inv then acc
                  else if Callgraph.in_same_scc cg e.Callgraph.caller name then
                    Symbolic.add acc Symbolic.top
                  else
                    Symbolic.add acc
                      (Symbolic.mul ci.fi_inv
                         (site_count e.Callgraph.caller e.Callgraph.site)))
            base (Callgraph.callers cg name)
        in
        let inv =
          if Callgraph.is_recursive cg name && not (Symbolic.is_zero inv) then
            Symbolic.top
          else inv
        in
        if not (Symbolic.equal inv info.fi_inv) then begin
          info.fi_inv <- inv;
          changed := true
        end;
        (* argument bindings: joined into the callees *)
        if not (Symbolic.is_zero info.fi_inv) then
          List.iter
            (fun (e : Callgraph.edge) ->
              match Hashtbl.find_opt infos e.Callgraph.callee with
              | None -> ()
              | Some ti ->
                  let recursive =
                    Callgraph.in_same_scc cg name e.Callgraph.callee
                  in
                  let supplied =
                    match Ast.stmt_at prog e.Callgraph.site with
                    | Some { Ast.node = Ast.Call { args; _ }; _ } -> args
                    | _ -> []
                  in
                  let _, _, envs, _ = tables_of name in
                  let vars =
                    match Hashtbl.find_opt envs e.Callgraph.site with
                    | Some vs -> vs
                    | None -> info.fi_ctx
                  in
                  let env = Symbolic.env ~params:prog.Ast.params ~vars in
                  let ctx' =
                    List.map
                      (fun (formal, old) ->
                        let v =
                          if recursive then Symbolic.top
                          else
                            match List.assoc_opt formal supplied with
                            | Some e -> Symbolic.of_expr env e
                            | None -> Symbolic.top  (* unbound at runtime *)
                        in
                        (formal, Symbolic.join old v))
                      ti.fi_ctx
                  in
                  if not (ctx_equal ctx' ti.fi_ctx) then begin
                    ti.fi_ctx <- ctx';
                    changed := true
                  end)
            (Callgraph.callees cg name))
      order;
    !changed
  in
  let rec run n = if pass () && n < 16 then run (n + 1) in
  run 0;
  Hashtbl.reset site_tables;
  (infos, order, tables_of)

(* ------------------------------------------------------------------ *)
(* Probing: network pressure at a few scales                           *)
(* ------------------------------------------------------------------ *)

(* Per-rank dilation weight of one dynamic execution. *)
let pressure_weight ~np ~rank ~eval (c : Ast.mpi_call) =
  let lg = float_of_int (log2_ceil np) in
  let hop dest = float_of_int (ring_dist np rank (eval dest)) in
  match c with
  | Ast.Send { dest; _ } | Ast.Isend { dest; _ } | Ast.Sendrecv { dest; _ } ->
      hop dest
  | Ast.Recv _ | Ast.Irecv _ | Ast.Wait _ | Ast.Waitall _ ->
      0.0  (* the sending side carries the dilation *)
  | Ast.Barrier | Ast.Bcast _ | Ast.Reduce _ -> lg
  | Ast.Allreduce _ -> 2.0 *. lg
  | Ast.Allgather _ | Ast.Alltoall _ -> float_of_int (max 1 (np - 1))

(* Hockney/tree model time of one dynamic execution, matching the
   simulator's Network shapes so the fitted model slope is comparable
   with the measured one. *)
let model_time ~np ~eval (c : Ast.mpi_call) =
  let lg = float_of_int (log2_ceil np) in
  let n = float_of_int (max 1 (np - 1)) in
  let b e = float_of_int (max 0 (eval e)) /. model_bandwidth in
  match c with
  | Ast.Send { bytes; _ } | Ast.Isend { bytes; _ }
  | Ast.Recv { bytes; _ } | Ast.Irecv { bytes; _ } ->
      model_latency +. b bytes
  | Ast.Sendrecv { sbytes; rbytes; _ } -> model_latency +. b sbytes +. b rbytes
  | Ast.Wait _ | Ast.Waitall _ -> 0.0
  | Ast.Barrier -> lg *. model_latency
  | Ast.Bcast { bytes; _ } | Ast.Reduce { bytes; _ } ->
      lg *. (model_latency +. b bytes)
  | Ast.Allreduce { bytes } -> 2.0 *. lg *. (model_latency +. b bytes)
  | Ast.Allgather { bytes } -> (lg *. model_latency) +. (n *. b bytes)
  | Ast.Alltoall { bytes } -> n *. (model_latency +. b bytes)

type probe = {
  pr_cost : (string * Loc.t, float array) Hashtbl.t;  (* per-rank pressure *)
  pr_np : int;
  pr_nranks : int;  (* ranks actually walked *)
}

(* Pressure is a per-rank mean, so large probe scales are walked on an
   evenly-strided subset of ranks: rank-symmetric idioms (hypercube
   rounds, shifted rings, grid halos) contribute the same mean, and the
   probe cost stays bounded as the scales grow instead of scaling with
   their sum.  The channel audit and the comm matrices still walk every
   rank — they need the full channel sets, not an average. *)
let probe_rank_cap = 16

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* The stride must be coprime with np: a divisor stride on a row-major
   process grid samples a single column (e.g. stride 16 on a 16-wide
   grid hits only col 0, whose wraparound halo partner is the far edge),
   skewing the mean.  A coprime stride sweeps both grid dimensions. *)
let probe_ranks np =
  if np <= probe_rank_cap then List.init np Fun.id
  else
    let rec coprime s = if gcd s np = 1 then s else coprime (s + 1) in
    let stride = coprime (np / probe_rank_cap) in
    List.init probe_rank_cap (fun i -> i * stride mod np)

let probe_scale prog np =
  let ranks = probe_ranks np in
  let pr =
    { pr_cost = Hashtbl.create 64; pr_np = np; pr_nranks = List.length ranks }
  in
  let imprecise = ref false in
  let exact =
    walk_program prog ~nprocs:np ~ranks
      ~on_mpi:(fun ~func ~loc ~rank ~eval c ->
        let key = (func, loc) in
        let arr =
          match Hashtbl.find_opt pr.pr_cost key with
          | Some a -> a
          | None ->
              let a = Array.make np 0.0 in
              Hashtbl.replace pr.pr_cost key a;
              a
        in
        let wt =
          try pressure_weight ~np ~rank ~eval c
          with Expr.Eval_error _ ->
            imprecise := true;
            1.0
        in
        arr.(rank) <- arr.(rank) +. wt)
  in
  (pr, exact && not !imprecise)

(* Mean pressure per rank: robust against the lone wraparound rank of a
   ring-embedded grid inflating an otherwise-constant halo pattern. *)
let probe_samples probes key =
  List.map
    (fun pr ->
      let v =
        match Hashtbl.find_opt pr.pr_cost key with
        | None -> 0.0
        | Some arr ->
            Array.fold_left ( +. ) 0.0 arr /. float_of_int (max 1 pr.pr_nranks)
      in
      (pr.pr_np, v))
    probes

(* ------------------------------------------------------------------ *)
(* Communication matrices and pattern classification                   *)
(* ------------------------------------------------------------------ *)

let collect_matrices prog np =
  let matrices = Hashtbl.create 8 in
  let colls = Hashtbl.create 8 in
  let exact =
    walk_program prog ~nprocs:np ~on_mpi:(fun ~func ~loc:_ ~rank ~eval c ->
        let record dest =
          match eval dest with
          | d when d >= 0 && d < np && d <> rank ->
              let m =
                match Hashtbl.find_opt matrices func with
                | Some m -> m
                | None ->
                    let m = Array.make_matrix np np 0 in
                    Hashtbl.replace matrices func m;
                    m
              in
              m.(rank).(d) <- m.(rank).(d) + 1
          | _ -> ()
          | exception Expr.Eval_error _ -> ()
        in
        match c with
        | Ast.Send { dest; _ } | Ast.Isend { dest; _ }
        | Ast.Sendrecv { dest; _ } ->
            record dest
        | Ast.Recv _ | Ast.Irecv _ | Ast.Wait _ | Ast.Waitall _ -> ()
        | Ast.Barrier | Ast.Bcast _ | Ast.Reduce _ | Ast.Allreduce _
        | Ast.Allgather _ | Ast.Alltoall _ ->
            let seen =
              match Hashtbl.find_opt colls func with
              | Some s -> s
              | None ->
                  let s = Hashtbl.create 4 in
                  Hashtbl.replace colls func s;
                  s
            in
            Hashtbl.replace seen (Ast.mpi_name c) ())
  in
  (matrices, colls, exact)

let classify_pattern ~np pairs coll_names =
  if pairs = [] then
    if
      List.exists
        (fun c -> String.equal c "MPI_Alltoall" || String.equal c "MPI_Allgather")
        coll_names
    then "all-to-all"
    else if
      List.exists
        (fun c -> String.equal c "MPI_Bcast" || String.equal c "MPI_Reduce")
        coll_names
    then "root-centralized"
    else if coll_names <> [] then "collective"
    else "none"
  else
    let dist (s, d) = ring_dist np s d in
    let q = int_of_float (Float.round (sqrt (float_of_int np))) in
    if List.for_all (fun (sd, _) -> dist sd = 1) pairs then "ring"
    else if List.for_all (fun (sd, _) -> dist sd <= q) pairs then
      "nearest-neighbor"
    else if
      List.exists
        (fun r -> List.for_all (fun ((s, d), _) -> s = r || d = r) pairs)
        (List.init np Fun.id)
    then "root-centralized"
    else begin
      let partners = Array.make np 0 in
      List.iter (fun ((s, _), _) -> partners.(s) <- partners.(s) + 1) pairs;
      let senders = List.sort_uniq compare (List.map (fun ((s, _), _) -> s) pairs) in
      if List.for_all (fun s -> partners.(s) >= np - 1) senders then
        "all-to-all"
      else
        let count sd = match List.assoc_opt sd pairs with Some c -> c | None -> 0 in
        if List.for_all (fun ((s, d), c) -> count (d, s) = c) pairs then
          "transpose"
        else "irregular"
    end

let matrix_pairs m =
  let np = Array.length m in
  let pairs = ref [] in
  for s = np - 1 downto 0 do
    for d = np - 1 downto 0 do
      if m.(s).(d) > 0 then pairs := ((s, d), m.(s).(d)) :: !pairs
    done
  done;
  !pairs

(* ------------------------------------------------------------------ *)
(* Facts and analysis results                                          *)
(* ------------------------------------------------------------------ *)

type fact = {
  cc_func : string;
  cc_loc : Loc.t;
  cc_op : string;
  cc_msgs : Symbolic.t;
  cc_bytes : Symbolic.t;
  cc_dest : string option;
  cc_cls : Symbolic.cls;
}

type pred = {
  pred_label : string;
  pred_a : float;
  pred_b : float;
  pred_known : bool;
  pred_msgs : string;
  pred_bytes : string;
  pred_dest : string option;
  pred_pattern : string;
}

type t = {
  t_prog : Ast.program;
  t_exact : bool;
  t_facts : fact list;
  t_inv : (string * Symbolic.t) list;
  t_counts : (string * Loc.t, Symbolic.t) Hashtbl.t;
  t_patterns : (string * string) list;
  t_matrices : (string * int array array) list;
  t_matrix_np : int;
}

let bytes_expr (c : Ast.mpi_call) =
  match c with
  | Ast.Send { bytes; _ } | Ast.Isend { bytes; _ }
  | Ast.Recv { bytes; _ } | Ast.Irecv { bytes; _ }
  | Ast.Bcast { bytes; _ } | Ast.Reduce { bytes; _ }
  | Ast.Allreduce { bytes } | Ast.Alltoall { bytes }
  | Ast.Allgather { bytes } ->
      Some bytes
  | Ast.Sendrecv { sbytes; _ } -> Some sbytes
  | Ast.Wait _ | Ast.Waitall _ | Ast.Barrier -> None

let dest_expr (c : Ast.mpi_call) =
  match c with
  | Ast.Send { dest; _ } | Ast.Isend { dest; _ } | Ast.Sendrecv { dest; _ } ->
      Some dest
  | _ -> None

let default_probe_scales = [ 16; 64; 256 ]
let default_matrix_np = 16

let analyze ?(probe_scales = default_probe_scales)
    ?(matrix_np = default_matrix_np) prog =
  let infos, order, tables_of = interproc prog in
  let probes, probe_exact =
    List.fold_left
      (fun (ps, ex) np ->
        let pr, e = probe_scale prog np in
        (pr :: ps, ex && e))
      ([], true) probe_scales
  in
  let probes = List.rev probes in
  let matrices_tbl, colls_tbl, matrix_exact = collect_matrices prog matrix_np in
  let exact = probe_exact && matrix_exact in
  (* program order for stable output *)
  let funcs_in_order =
    List.filter (fun (f : Ast.func) -> Hashtbl.mem infos f.Ast.fname)
      prog.Ast.funcs
  in
  let counts = Hashtbl.create 64 in
  let facts = ref [] in
  List.iter
    (fun (f : Ast.func) ->
      let info = Hashtbl.find infos f.Ast.fname in
      let cfg_counts, mults, envs, comm = tables_of f.Ast.fname in
      Hashtbl.iter
        (fun loc _ ->
          let per_inv = count_at_loc cfg_counts mults loc in
          Hashtbl.replace counts (f.Ast.fname, loc)
            (Symbolic.mul info.fi_inv per_inv))
        mults;
      List.iter
        (fun ((st : Ast.stmt), c) ->
          let loc = st.Ast.loc in
          let vars =
            match Hashtbl.find_opt envs loc with
            | Some vs -> vs
            | None -> info.fi_ctx
          in
          let env = Symbolic.env ~params:prog.Ast.params ~vars in
          let msgs =
            Symbolic.mul info.fi_inv (count_at_loc cfg_counts mults loc)
          in
          let bytes =
            match bytes_expr c with
            | None -> Symbolic.zero
            | Some e -> Symbolic.of_expr env e
          in
          let samples = probe_samples probes (f.Ast.fname, loc) in
          let cls =
            if not exact then Symbolic.Unknown
            else if List.for_all (fun (_, v) -> v <= 1e-12) samples then
              Symbolic.Cls { a = 0.0; b = 0.0 }
            else begin
              (* pressure that grows <1.5x across a 16x scale range is a
                 finite-size ripple (grid wraparound), not growth *)
              let vs = List.filter_map
                  (fun (_, v) -> if v > 0.0 then Some v else None) samples
              in
              let mx = List.fold_left Float.max neg_infinity vs in
              let mn = List.fold_left Float.min infinity vs in
              if mx /. mn < 1.5 then Symbolic.Cls { a = 0.0; b = 0.0 }
              else
                match Symbolic.fit_exponents samples with
                | Some cls -> cls
                | None -> Symbolic.Unknown
            end
          in
          facts :=
            {
              cc_func = f.Ast.fname;
              cc_loc = loc;
              cc_op = Ast.mpi_name c;
              cc_msgs = msgs;
              cc_bytes = bytes;
              cc_dest = Option.map Expr.to_string (dest_expr c);
              cc_cls = cls;
            }
            :: !facts)
        comm)
    funcs_in_order;
  let facts = List.rev !facts in
  let patterns =
    List.filter_map
      (fun (f : Ast.func) ->
        let name = f.Ast.fname in
        let pairs =
          match Hashtbl.find_opt matrices_tbl name with
          | Some m -> matrix_pairs m
          | None -> []
        in
        let coll_names =
          match Hashtbl.find_opt colls_tbl name with
          | Some s -> List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) s [])
          | None -> []
        in
        if pairs = [] && coll_names = [] then None
        else Some (name, classify_pattern ~np:matrix_np pairs coll_names))
      funcs_in_order
  in
  let matrices =
    List.filter_map
      (fun (f : Ast.func) ->
        Option.map
          (fun m -> (f.Ast.fname, m))
          (Hashtbl.find_opt matrices_tbl f.Ast.fname))
      funcs_in_order
  in
  let inv =
    List.filter_map
      (fun name ->
        Option.map (fun i -> (name, i.fi_inv)) (Hashtbl.find_opt infos name))
      order
  in
  {
    t_prog = prog;
    t_exact = exact;
    t_facts = facts;
    t_inv = inv;
    t_counts = counts;
    t_patterns = patterns;
    t_matrices = matrices;
    t_matrix_np = matrix_np;
  }

let facts t = t.t_facts
let exact t = t.t_exact
let invocations t = t.t_inv
let patterns t = t.t_patterns
let matrices t = t.t_matrices
let matrix_np t = t.t_matrix_np

let find_fact t ~func ~loc =
  List.find_opt
    (fun f -> String.equal f.cc_func func && Loc.equal f.cc_loc loc)
    t.t_facts

let count_at t ~func ~loc = Hashtbl.find_opt t.t_counts (func, loc)

let pred_of_cls cls ~msgs ~bytes ~dest ~pattern =
  let a, b, known =
    match (cls : Symbolic.cls) with
    | Symbolic.Cls { a; b } -> (a, b, true)
    | Symbolic.Unknown -> (0.0, 0.0, false)
  in
  {
    pred_label = Symbolic.cls_label cls;
    pred_a = a;
    pred_b = b;
    pred_known = known;
    pred_msgs = msgs;
    pred_bytes = bytes;
    pred_dest = dest;
    pred_pattern = pattern;
  }

let pred_of_fact t f =
  let pattern =
    match List.assoc_opt f.cc_func t.t_patterns with Some p -> p | None -> ""
  in
  pred_of_cls f.cc_cls
    ~msgs:(Symbolic.to_string f.cc_msgs)
    ~bytes:(Symbolic.to_string f.cc_bytes)
    ~dest:f.cc_dest ~pattern

let count_pred count =
  pred_of_cls (Symbolic.cls_of count)
    ~msgs:(Symbolic.to_string count)
    ~bytes:"" ~dest:None ~pattern:""

(* ------------------------------------------------------------------ *)
(* Model-time series for the dynamic crosscheck                        *)
(* ------------------------------------------------------------------ *)

let model_series prog ~scales =
  let acc = Hashtbl.create 64 in
  let order = ref [] in
  let exact =
    List.fold_left
      (fun ex np ->
        let e =
          walk_program prog ~nprocs:np ~on_mpi:(fun ~func ~loc ~rank:_ ~eval c ->
              let t = try model_time ~np ~eval c with Expr.Eval_error _ -> 0.0 in
              let key = (func, loc) in
              match Hashtbl.find_opt acc key with
              | Some tbl ->
                  let cur =
                    match Hashtbl.find_opt tbl np with Some v -> v | None -> 0.0
                  in
                  Hashtbl.replace tbl np (cur +. t)
              | None ->
                  let tbl = Hashtbl.create 4 in
                  Hashtbl.replace tbl np t;
                  Hashtbl.replace acc key tbl;
                  order := key :: !order)
        in
        ex && e)
      true scales
  in
  let series =
    List.rev_map
      (fun key ->
        let tbl = Hashtbl.find acc key in
        let points =
          List.map
            (fun np ->
              let total =
                match Hashtbl.find_opt tbl np with Some v -> v | None -> 0.0
              in
              (np, total /. float_of_int np))  (* mean per rank *)
            scales
        in
        (key, points))
      !order
  in
  (exact, series)

(* ------------------------------------------------------------------ *)
(* Channel audit for the interprocedural lints                         *)
(* ------------------------------------------------------------------ *)

type audit = {
  au_nprocs : int;
  au_exact : bool;
  au_sends : ((int * int * int) * (int * Loc.t * string)) list;
      (* (src, dst, tag) -> count, a contributing site *)
  au_recvs : ((int * int option * int option) * (int * Loc.t * string)) list;
      (* (dst, src?, tag?) -> count; None = wildcard *)
  au_colls : ((string * Loc.t) * (string * int array)) list;
      (* (func, loc) -> op name, per-rank execution counts *)
}

let audit prog ~nprocs =
  let sends = Hashtbl.create 64 in
  let recvs = Hashtbl.create 64 in
  let colls = Hashtbl.create 16 in
  let imprecise = ref false in
  let bump tbl key loc func =
    match Hashtbl.find_opt tbl key with
    | Some (n, l, f) -> Hashtbl.replace tbl key (n + 1, l, f)
    | None -> Hashtbl.replace tbl key (1, loc, func)
  in
  let exact =
    walk_program prog ~nprocs ~on_mpi:(fun ~func ~loc ~rank ~eval c ->
        let ev e = try Some (eval e) with Expr.Eval_error _ -> imprecise := true; None in
        let send dest tag =
          match (ev dest, ev tag) with
          | Some d, Some t when d >= 0 && d < nprocs ->
              bump sends (rank, d, t) loc func
          | _ -> imprecise := true
        in
        let recv (src : Ast.peer) (tag : Ast.tag) =
          let s =
            match src with
            | Ast.Any_source -> Some None
            | Ast.Peer e -> (
                match ev e with
                | Some v when v >= 0 && v < nprocs -> Some (Some v)
                | _ -> None)
          in
          let t =
            match tag with
            | Ast.Any_tag -> Some None
            | Ast.Tag e -> (
                match ev e with Some v -> Some (Some v) | None -> None)
          in
          match (s, t) with
          | Some s, Some t -> bump recvs (rank, s, t) loc func
          | _ -> imprecise := true
        in
        match c with
        | Ast.Send { dest; tag; _ } | Ast.Isend { dest; tag; _ } ->
            send dest tag
        | Ast.Recv { src; tag; _ } | Ast.Irecv { src; tag; _ } -> recv src tag
        | Ast.Sendrecv { dest; stag; src; rtag; _ } ->
            send dest stag;
            recv src rtag
        | Ast.Wait _ | Ast.Waitall _ -> ()
        | Ast.Barrier | Ast.Bcast _ | Ast.Reduce _ | Ast.Allreduce _
        | Ast.Allgather _ | Ast.Alltoall _ -> (
            let key = (func, loc) in
            match Hashtbl.find_opt colls key with
            | Some (_, arr) -> arr.(rank) <- arr.(rank) + 1
            | None ->
                let arr = Array.make nprocs 0 in
                arr.(rank) <- 1;
                Hashtbl.replace colls key (Ast.mpi_name c, arr)))
  in
  let dump tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  {
    au_nprocs = nprocs;
    au_exact = exact && not !imprecise;
    au_sends = List.sort compare (dump sends);
    au_recvs = List.sort compare (dump recvs);
    au_colls =
      List.sort
        (fun ((f1, l1), _) ((f2, l2), _) ->
          match String.compare f1 f2 with 0 -> Loc.compare l1 l2 | c -> c)
        (dump colls);
  }

(* ------------------------------------------------------------------ *)
(* Rendering (the `scalana-static --predict` section)                  *)
(* ------------------------------------------------------------------ *)

let render ppf t =
  Fmt.pf ppf "-- static predictions --@.";
  Fmt.pf ppf "symbolic model%s@."
    (if t.t_exact then "" else " (approximate: program not fully analyzable)");
  Fmt.pf ppf "@.invocations per run:@.";
  List.iter
    (fun (name, inv) -> Fmt.pf ppf "  %-24s %s@." name (Symbolic.to_string inv))
    t.t_inv;
  Fmt.pf ppf "@.communication statements:@.";
  Fmt.pf ppf "  %-14s %-14s %-12s %-18s %-18s %s@." "FUNC" "OP" "CLASS" "MSGS"
    "BYTES/MSG" "DEST";
  List.iter
    (fun f ->
      Fmt.pf ppf "  %-14s %-14s %-12s %-18s %-18s %s@." f.cc_func f.cc_op
        (Symbolic.cls_label f.cc_cls)
        (Symbolic.to_string f.cc_msgs)
        (Symbolic.to_string f.cc_bytes)
        (match f.cc_dest with Some d -> d | None -> "-"))
    t.t_facts;
  if t.t_patterns <> [] then begin
    Fmt.pf ppf "@.communication patterns:@.";
    List.iter
      (fun (name, pat) -> Fmt.pf ppf "  %-24s %s@." name pat)
      t.t_patterns
  end;
  List.iter
    (fun (name, m) ->
      Fmt.pf ppf "@.comm matrix (np=%d) %s:@." t.t_matrix_np name;
      Array.iter
        (fun row ->
          Fmt.string ppf " ";
          Array.iter
            (fun c ->
              if c = 0 then Fmt.pf ppf " %4s" "." else Fmt.pf ppf " %4d" c)
            row;
          Fmt.pf ppf "@.")
        m)
    t.t_matrices
