(** Static communication-cost analysis.

    Derives, for every communication statement of a MiniMPI program, its
    symbolic message count, per-message byte volume, destination-rank
    expression, and a scaling class — by combining a symbolic abstract
    interpreter (interprocedural invocation counts over {!Callgraph},
    loop trip counts via {!Symbolic.block_counts}, Top on recursion)
    with a concrete per-rank walker that probes a few scales to resolve
    rank arithmetic the polynomial domain cannot express.

    The scaling class measures *network pressure*: per-rank messages
    weighted by ring distance (dilation) for point-to-point traffic and
    by tree/dissemination depth for collectives.  A hypercube transpose
    is O(p) under this metric even though each rank sends only log2(p)
    messages — the load it places on the interconnect is what stops
    scaling. *)

open Scalana_mlang

(** {1 Per-statement facts} *)

type fact = {
  cc_func : string;  (** enclosing function *)
  cc_loc : Loc.t;
  cc_op : string;  (** MPI operation name *)
  cc_msgs : Symbolic.t;  (** symbolic executions per program run *)
  cc_bytes : Symbolic.t;  (** symbolic per-message payload *)
  cc_dest : string option;  (** destination-rank expression, rendered *)
  cc_cls : Symbolic.cls;  (** network-pressure scaling class *)
}

(** Plain-data prediction attached to PSG vertices (marshal-safe). *)
type pred = {
  pred_label : string;  (** e.g. ["O(p)"] *)
  pred_a : float;  (** power of p *)
  pred_b : float;  (** power of log p *)
  pred_known : bool;  (** false when the class is unknown *)
  pred_msgs : string;
  pred_bytes : string;
  pred_dest : string option;
  pred_pattern : string;  (** enclosing function's comm pattern; may be "" *)
}

type t

val analyze : ?probe_scales:int list -> ?matrix_np:int -> Ast.program -> t
(** Runs the full analysis.  [probe_scales] (default [[16; 64; 256]])
    are the scales the concrete walker measures network pressure at;
    [matrix_np] (default 16) is the scale of the communication
    matrices.  Pressure is a per-rank mean, so scales beyond 16 ranks
    are probed on an evenly-strided subset of 16 ranks — rank-symmetric
    idioms give the same mean and the static step stays cheap relative
    to base compilation (Table III); the {!audit} and the matrices
    always walk every rank. *)

val facts : t -> fact list
(** In program order. *)

val exact : t -> bool
(** False when the concrete walker hit unanalyzable constructs
    (recursion, unresolved calls, fuel exhaustion); classes degrade to
    [Unknown] in that case. *)

val invocations : t -> (string * Symbolic.t) list
(** Symbolic invocation counts of reachable functions, callers first. *)

val patterns : t -> (string * string) list
(** Per-function communication pattern: ["ring"], ["nearest-neighbor"],
    ["transpose"], ["root-centralized"], ["all-to-all"], ["collective"],
    ["irregular"] or ["none"].  Functions without communication are
    omitted. *)

val matrices : t -> (string * int array array) list
(** Per-function point-to-point message matrices at {!matrix_np}. *)

val matrix_np : t -> int
val find_fact : t -> func:string -> loc:Loc.t -> fact option

val count_at : t -> func:string -> loc:Loc.t -> Symbolic.t option
(** Symbolic executions per program run of any statement (invocation
    count times loop-nest count) — used to classify non-MPI vertices. *)

val pred_of_fact : t -> fact -> pred
val count_pred : Symbolic.t -> pred

val render : Format.formatter -> t -> unit
(** The [scalana-static --predict] section: invocation table,
    per-statement complexity table, patterns and matrices. *)

(** {1 Dynamic crosscheck support} *)

val model_series :
  Ast.program ->
  scales:int list ->
  bool * ((string * Loc.t) * (int * float) list) list
(** Per-statement mean per-rank model time (Hockney latency/bandwidth
    for point-to-point, tree/dissemination shapes for collectives,
    constants mirroring the simulator's interconnect) at the given
    scales.  Fitting these points with {!Loglog} yields the slope the
    static model predicts for the measured one.  The boolean is the
    exactness of the walks. *)

val classify_pattern :
  np:int -> ((int * int) * int) list -> string list -> string
(** [classify_pattern ~np pairs collectives] names the pattern of a
    point-to-point pair multiset (plus collective op names) — exposed
    for tests. *)

(** {1 Channel audit for the interprocedural lints} *)

type audit = {
  au_nprocs : int;
  au_exact : bool;  (** rules must not fire when false *)
  au_sends : ((int * int * int) * (int * Loc.t * string)) list;
      (** (src, dst, tag) -> count, site, function *)
  au_recvs : ((int * int option * int option) * (int * Loc.t * string)) list;
      (** (dst, src?, tag?) -> count; [None] is a wildcard *)
  au_colls : ((string * Loc.t) * (string * int array)) list;
      (** (func, loc) -> op name, per-rank execution counts *)
}

val audit : Ast.program -> nprocs:int -> audit
(** One concrete walk at [nprocs], recording every posted send, receive
    and collective execution. *)

(** {1 Model constants} *)

val model_latency : float
val model_bandwidth : float
