(* Generic iterative dataflow over CFGs.

   A classic worklist solver: the client supplies a join-semilattice of
   facts and a per-block transfer function; the solver propagates facts
   forward (from the entry, over successor edges) or backward (from the
   exit, over predecessor edges) until a fixed point.  Blocks are seeded
   in reverse postorder (postorder for backward problems), which reaches
   the fixed point in a handful of sweeps on the reducible graphs
   {!Cfg.of_func} produces.  {!Defuse} instantiates it with reaching
   definitions and live variables. *)

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val bottom : t  (* initial fact everywhere; must be a join identity *)
  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Solver (L : LATTICE) = struct
  type result = {
    input : L.t array;  (* fact entering each block (in its direction) *)
    output : L.t array;  (* fact leaving each block *)
    iterations : int;  (* worklist pops until the fixed point *)
  }

  let solve ~direction ?(entry_fact = L.bottom) ~transfer (cfg : Cfg.t) =
    let n = Cfg.n_blocks cfg in
    let preds = Cfg.predecessors cfg in
    (* [prevs id] are the blocks whose output joins into [id]'s input;
       [nexts id] are the blocks to requeue when [id]'s output changes. *)
    let prevs, nexts, boundary, order =
      match direction with
      | Forward ->
          ( (fun id -> preds.(id)),
            Cfg.successors cfg,
            cfg.Cfg.entry,
            Cfg.reverse_postorder cfg )
      | Backward ->
          ( Cfg.successors cfg,
            (fun id -> preds.(id)),
            cfg.Cfg.exit_,
            List.rev (Cfg.reverse_postorder cfg) )
    in
    let input = Array.make n L.bottom in
    let output = Array.make n L.bottom in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let push id =
      if not queued.(id) then begin
        queued.(id) <- true;
        Queue.add id queue
      end
    in
    List.iter push order;
    let iterations = ref 0 in
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      queued.(id) <- false;
      incr iterations;
      let in_fact =
        List.fold_left
          (fun acc p -> L.join acc output.(p))
          (if id = boundary then entry_fact else L.bottom)
          (prevs id)
      in
      input.(id) <- in_fact;
      let out_fact = transfer id in_fact in
      if not (L.equal out_fact output.(id)) then begin
        output.(id) <- out_fact;
        List.iter push (nexts id)
      end
    done;
    { input; output; iterations = !iterations }
end
