(** Generic iterative dataflow over {!Cfg.t}: a worklist solver with a
    pluggable join-semilattice and per-block transfer function, running
    forward (entry → successors) or backward (exit → predecessors).
    {!Defuse} instantiates it with reaching definitions and live
    variables. *)

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val bottom : t
  (** Initial fact everywhere; must be a join identity. *)

  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Solver (L : LATTICE) : sig
  type result = {
    input : L.t array;  (** fact entering each block (in its direction) *)
    output : L.t array;  (** fact leaving each block *)
    iterations : int;
        (** worklist pops until the fixed point — bounded by
            [n_blocks × lattice height] on any terminating instance, and
            close to [n_blocks] on reducible graphs thanks to the
            reverse-postorder seeding *)
  }

  (** [solve ~direction ~transfer cfg] iterates [transfer id input] to a
      fixed point.  [entry_fact] seeds the boundary block (the entry for
      forward problems, the exit for backward ones); default
      [L.bottom]. *)
  val solve :
    direction:direction ->
    ?entry_fact:L.t ->
    transfer:(Cfg.node_id -> L.t -> L.t) ->
    Cfg.t ->
    result
end
