(* Definitions and uses of MiniMPI names, and the dataflow instances
   built on them.

   Two namespaces matter to the static analyses: scalar bindings (loop
   variables, [let] bindings, function parameters — all referenced as
   [Expr.Var]) and MPI request handles ([Isend]/[Irecv] define a handle,
   [Wait]/[Waitall] use it).  Program parameters ([Expr.Param]) are
   compile-time constants and carry no dataflow.

   On top of the per-statement extraction this module instantiates
   {!Dataflow} twice — reaching definitions (forward) and live variables
   (backward) — and distills the forward solution into per-function
   def-use chains, the substrate of the PSG data-dependence edges
   ({!Scalana_psg.Datadep}) and of the never-waited-request lint. *)

open Scalana_mlang

type sym = Var of string | Req of string

let sym_name = function Var v -> v | Req r -> "&" ^ r
let compare_sym (a : sym) (b : sym) = compare a b

let expr_uses e = List.map (fun v -> Var v) (Expr.free_vars e)

let peer_uses = function Ast.Any_source -> [] | Ast.Peer e -> expr_uses e
let tag_uses = function Ast.Any_tag -> [] | Ast.Tag e -> expr_uses e

let mpi_uses = function
  | Ast.Send { dest; tag; bytes } ->
      expr_uses dest @ expr_uses tag @ expr_uses bytes
  | Ast.Recv { src; tag; bytes } ->
      peer_uses src @ tag_uses tag @ expr_uses bytes
  | Ast.Isend { dest; tag; bytes; req = _ } ->
      expr_uses dest @ expr_uses tag @ expr_uses bytes
  | Ast.Irecv { src; tag; bytes; req = _ } ->
      peer_uses src @ tag_uses tag @ expr_uses bytes
  | Ast.Wait { req } -> [ Req req ]
  | Ast.Waitall { reqs } -> List.map (fun r -> Req r) reqs
  | Ast.Sendrecv { dest; stag; sbytes; src; rtag; rbytes } ->
      expr_uses dest @ expr_uses stag @ expr_uses sbytes @ peer_uses src
      @ tag_uses rtag @ expr_uses rbytes
  | Ast.Barrier -> []
  | Ast.Bcast { root; bytes } | Ast.Reduce { root; bytes } ->
      expr_uses root @ expr_uses bytes
  | Ast.Allreduce { bytes } | Ast.Alltoall { bytes } | Ast.Allgather { bytes }
    ->
      expr_uses bytes

let mpi_defs = function
  | Ast.Isend { req; _ } | Ast.Irecv { req; _ } -> [ Req req ]
  | Ast.Send _ | Ast.Recv _ | Ast.Wait _ | Ast.Waitall _ | Ast.Sendrecv _
  | Ast.Barrier | Ast.Bcast _ | Ast.Reduce _ | Ast.Allreduce _
  | Ast.Alltoall _ | Ast.Allgather _ ->
      []

(* Statement-level view, as the AST walkers (linter) consume it: a Loop
   defines its induction variable and uses its trip count; a Branch uses
   its condition. *)
let stmt_uses (s : Ast.stmt) =
  match s.node with
  | Ast.Comp w -> expr_uses w.flops @ expr_uses w.mem @ expr_uses w.ints
  | Ast.Loop l -> expr_uses l.count
  | Ast.Branch b -> expr_uses b.cond
  | Ast.Call { args; _ } -> List.concat_map (fun (_, e) -> expr_uses e) args
  | Ast.Icall { selector; _ } -> expr_uses selector
  | Ast.Mpi c -> mpi_uses c
  | Ast.Let { value; _ } -> expr_uses value

let stmt_defs (s : Ast.stmt) =
  match s.node with
  | Ast.Let { var; _ } -> [ Var var ]
  | Ast.Loop l -> [ Var l.var ]
  | Ast.Mpi c -> mpi_defs c
  | Ast.Comp _ | Ast.Branch _ | Ast.Call _ | Ast.Icall _ -> []

(* --- block-level events --- *)

(* One def/use event per statement, in block execution order; a block's
   terminator condition (loop trip count, branch condition) contributes a
   trailing event anchored at the originating statement's location.  The
   loop-variable definition lives in the header event, after the
   trip-count uses, so it flows into the body but not into the count. *)
type event = { eloc : Loc.t; euses : sym list; edefs : sym list }

let dedup syms =
  List.fold_left
    (fun acc s -> if List.mem s acc then acc else s :: acc)
    [] syms
  |> List.rev

let block_events (cfg : Cfg.t) id =
  let b = Cfg.block cfg id in
  let of_stmt (s : Ast.stmt) =
    { eloc = s.loc; euses = dedup (stmt_uses s); edefs = dedup (stmt_defs s) }
  in
  let base = List.map of_stmt b.Cfg.stmts in
  match (b.Cfg.term, b.Cfg.origin) with
  | Cfg.Cond _, Cfg.Loop_header s ->
      base @ [ of_stmt s ]  (* count uses, then the loop-var def *)
  | Cfg.Cond _, Cfg.Branch_cond s -> base @ [ of_stmt s ]
  | (Cfg.Jump _ | Cfg.Ret | Cfg.Cond _), _ -> base

(* --- reaching definitions --- *)

module Def = struct
  type t = sym * Loc.t

  let compare (s1, l1) (s2, l2) =
    match compare_sym s1 s2 with 0 -> Loc.compare l1 l2 | c -> c
end

module DefSet = Set.Make (Def)

module Reaching = struct
  module S = Dataflow.Solver (struct
    type t = DefSet.t

    let bottom = DefSet.empty
    let equal = DefSet.equal
    let join = DefSet.union
  end)

  let kill_gen facts { eloc; edefs; _ } =
    List.fold_left
      (fun acc d ->
        DefSet.add (d, eloc)
          (DefSet.filter (fun (s, _) -> compare_sym s d <> 0) acc))
      facts edefs

  (* Definitions reaching each block entry.  Function parameters are
     defined at the function's own location. *)
  let compute (f : Ast.func) (cfg : Cfg.t) =
    let entry_fact =
      List.fold_left
        (fun acc p -> DefSet.add (Var p, f.floc) acc)
        DefSet.empty f.fparams
    in
    S.solve ~direction:Dataflow.Forward ~entry_fact
      ~transfer:(fun id facts ->
        List.fold_left kill_gen facts (block_events cfg id))
      cfg
end

(* --- live variables --- *)

module SymSet = Set.Make (struct
  type t = sym

  let compare = compare_sym
end)

module Live = struct
  module S = Dataflow.Solver (struct
    type t = SymSet.t

    let bottom = SymSet.empty
    let equal = SymSet.equal
    let join = SymSet.union
  end)

  type t = { result : S.result }

  let compute (cfg : Cfg.t) =
    let result =
      S.solve ~direction:Dataflow.Backward
        ~transfer:(fun id live ->
          List.fold_left
            (fun acc { euses; edefs; _ } ->
              SymSet.union
                (List.fold_left (fun a d -> SymSet.remove d a) acc edefs)
                (SymSet.of_list euses))
            live
            (List.rev (block_events cfg id)))
        cfg
    in
    { result }

  let live_in t id = SymSet.elements t.result.S.output.(id)
  let live_out t id = SymSet.elements t.result.S.input.(id)
end

(* --- def-use chains --- *)

module Chains = struct
  type t = {
    func : string;
    uses : (Loc.t, (sym * Loc.t list) list) Hashtbl.t;
        (* statement location -> used syms with their reaching def sites *)
    defs : (sym * Loc.t) list;  (* every def site, source order *)
    n_uses : int;
  }

  let of_func (f : Ast.func) =
    let cfg = Cfg.of_func f in
    let reaching = Reaching.compute f cfg in
    let uses = Hashtbl.create 64 in
    let defs = ref [] in
    let n_uses = ref 0 in
    Array.iter
      (fun (b : Cfg.block) ->
        let facts = ref reaching.Reaching.S.input.(b.Cfg.id) in
        List.iter
          (fun ev ->
            let at_loc =
              List.map
                (fun s ->
                  incr n_uses;
                  let sites =
                    DefSet.fold
                      (fun (ds, dl) acc ->
                        if compare_sym ds s = 0 then dl :: acc else acc)
                      !facts []
                    |> List.sort Loc.compare
                  in
                  (s, sites))
                ev.euses
            in
            if at_loc <> [] then begin
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt uses ev.eloc)
              in
              Hashtbl.replace uses ev.eloc (prev @ at_loc)
            end;
            List.iter (fun d -> defs := (d, ev.eloc) :: !defs) ev.edefs;
            facts := Reaching.kill_gen !facts ev)
          (block_events cfg b.Cfg.id))
      cfg.Cfg.blocks;
    let param_defs = List.map (fun p -> (Var p, f.floc)) f.fparams in
    {
      func = f.fname;
      uses;
      defs = param_defs @ List.rev !defs;
      n_uses = !n_uses;
    }

  let uses_at t loc = Option.value ~default:[] (Hashtbl.find_opt t.uses loc)

  let defs_reaching t ~loc sym =
    List.concat_map
      (fun (s, sites) -> if compare_sym s sym = 0 then sites else [])
      (uses_at t loc)

  let all_defs t = t.defs
  let n_defs t = List.length t.defs
  let n_uses t = t.n_uses

  (* Def sites never reached by any use of their symbol — for request
     handles, an [Isend]/[Irecv] that is never waited on. *)
  let unused_defs t =
    let used = Hashtbl.create 64 in
    Hashtbl.iter
      (fun _ at_loc ->
        List.iter
          (fun (s, sites) ->
            List.iter (fun site -> Hashtbl.replace used (s, site) ()) sites)
          at_loc)
      t.uses;
    List.filter (fun d -> not (Hashtbl.mem used d)) t.defs
end
