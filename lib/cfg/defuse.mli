(** Definitions and uses of MiniMPI names, with the two {!Dataflow}
    instances built on them: reaching definitions (distilled into
    per-function def-use chains) and live variables.

    Two namespaces carry dataflow: scalar bindings (loop variables, [let]
    bindings, function parameters — all referenced through [Expr.Var])
    and MPI request handles ([Isend]/[Irecv] define a handle,
    [Wait]/[Waitall] use it).  Program parameters ([Expr.Param]) are
    compile-time constants and are excluded. *)

open Scalana_mlang

type sym =
  | Var of string  (** loop variable, [let] binding or function parameter *)
  | Req of string  (** MPI request handle *)

val sym_name : sym -> string
(** Display form; request handles are prefixed with ["&"]. *)

val compare_sym : sym -> sym -> int

val mpi_uses : Ast.mpi_call -> sym list
val mpi_defs : Ast.mpi_call -> sym list

val stmt_uses : Ast.stmt -> sym list
(** Symbols a statement reads, shallowly: a [Loop] uses its trip count, a
    [Branch] its condition; bodies are not entered. *)

val stmt_defs : Ast.stmt -> sym list
(** Symbols a statement writes: [Let] and [Loop] bind their variable,
    [Isend]/[Irecv] their request handle. *)

(** Def-use chains of one function, computed from the reaching-definitions
    solution.  Definition sites are identified by [(sym, Loc.t)]; function
    parameters are defined at the function's own location. *)
module Chains : sig
  type t

  val of_func : Ast.func -> t

  val uses_at : t -> Loc.t -> (sym * Loc.t list) list
  (** Symbols used by the statement at [loc], each with the sorted
      definition sites reaching that use (several when control flow
      merges). *)

  val defs_reaching : t -> loc:Loc.t -> sym -> Loc.t list
  (** Definition sites of [sym] reaching its use at [loc]. *)

  val all_defs : t -> (sym * Loc.t) list
  (** Every definition site, source order, parameters first. *)

  val unused_defs : t -> (sym * Loc.t) list
  (** Definition sites no use is reached by — for request handles, an
      [Isend]/[Irecv] that is never waited on. *)

  val n_defs : t -> int
  val n_uses : t -> int
end

(** Live variables (backward dataflow): a symbol is live when some path
    reaches a use before any redefinition. *)
module Live : sig
  type t

  val compute : Cfg.t -> t

  val live_in : t -> Cfg.node_id -> sym list
  (** Symbols live on entry to a block. *)

  val live_out : t -> Cfg.node_id -> sym list
  (** Symbols live on exit from a block. *)
end
