(* Symbolic scaling polynomials.

   The abstract domain of the static communication-complexity analysis:
   a value is a sum of monomials [c * p^a * log2(p)^b] in the process
   count [p], or Top when the program computes something the domain
   cannot follow (rank arithmetic, unbound variables, data-dependent
   divisions, recursion).  The app's size parameters are compile-time
   constants of a MiniMPI program, so they fold into the coefficients;
   [p] is the only symbol.  Fractional exponents are allowed —
   [isqrt(np)] process grids produce p^0.5.

   Widening keeps the representation small: polynomials are truncated to
   their [max_terms] leading monomials (exponent-lexicographic order),
   which preserves the dominant term and therefore the complexity
   class.  Joins (Min/Max, merging branch arms) take the term-wise upper
   bound, so every derived count is an over-approximation. *)

open Scalana_mlang

type mono = { coeff : float; p_exp : float; log_exp : float }
type t = Poly of mono list | Top  (* Poly [] is zero *)

let max_terms = 8
let top = Top
let zero = Poly []
let is_top = function Top -> true | Poly _ -> false
let is_zero = function Poly [] -> true | _ -> false

(* Exponent-lexicographic order, dominant first. *)
let cmp_mono a b =
  match compare b.p_exp a.p_exp with
  | 0 -> compare b.log_exp a.log_exp
  | c -> c

let norm monos =
  let merged = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let key = (m.p_exp, m.log_exp) in
      let c = try Hashtbl.find merged key with Not_found -> 0.0 in
      Hashtbl.replace merged key (c +. m.coeff))
    monos;
  let kept =
    Hashtbl.fold
      (fun (p_exp, log_exp) coeff acc ->
        if Float.abs coeff < 1e-12 then acc
        else { coeff; p_exp; log_exp } :: acc)
      merged []
    |> List.sort cmp_mono
  in
  (* widening: drop trailing (asymptotically dominated) terms *)
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  Poly (take max_terms kept)

let const c =
  if Float.abs c < 1e-12 then zero
  else Poly [ { coeff = c; p_exp = 0.0; log_exp = 0.0 } ]

let one = const 1.0
let p = Poly [ { coeff = 1.0; p_exp = 1.0; log_exp = 0.0 } ]
let log_p = Poly [ { coeff = 1.0; p_exp = 0.0; log_exp = 1.0 } ]

let mono ~coeff ~p_exp ~log_exp =
  if Float.abs coeff < 1e-12 then zero else Poly [ { coeff; p_exp; log_exp } ]

let add a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Poly xs, Poly ys -> norm (xs @ ys)

let neg = function
  | Top -> Top
  | Poly xs -> Poly (List.map (fun m -> { m with coeff = -.m.coeff }) xs)

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | Poly [], _ | _, Poly [] -> zero  (* 0 * Top = 0: Top counts are >= 0 *)
  | Top, _ | _, Top -> Top
  | Poly xs, Poly ys ->
      norm
        (List.concat_map
           (fun x ->
             List.map
               (fun y ->
                 {
                   coeff = x.coeff *. y.coeff;
                   p_exp = x.p_exp +. y.p_exp;
                   log_exp = x.log_exp +. y.log_exp;
                 })
               ys)
           xs)

(* Division is exact only by a single monomial; anything else widens. *)
let div a b =
  match (a, b) with
  | _, Poly [] -> Top
  | Top, _ | _, Top -> Top
  | Poly xs, Poly [ d ] ->
      norm
        (List.map
           (fun x ->
             {
               coeff = x.coeff /. d.coeff;
               p_exp = x.p_exp -. d.p_exp;
               log_exp = x.log_exp -. d.log_exp;
             })
           xs)
  | Poly _, Poly _ -> Top

let dominant = function
  | Top -> None
  | Poly [] -> None
  | Poly (m :: _) -> Some m

(* Join = least upper bound used for Min/Max and branch merging: the
   term-wise maximum of the two polynomials (coefficients of matching
   exponents joined by max, unmatched terms kept). *)
let join a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Poly xs, Poly ys ->
      let tbl = Hashtbl.create 8 in
      let feed ms =
        List.iter
          (fun m ->
            let key = (m.p_exp, m.log_exp) in
            let c = try Hashtbl.find tbl key with Not_found -> neg_infinity in
            Hashtbl.replace tbl key (Float.max c m.coeff))
          ms
      in
      feed xs;
      feed ys;
      norm
        (Hashtbl.fold
           (fun (p_exp, log_exp) coeff acc -> { coeff; p_exp; log_exp } :: acc)
           tbl [])

let equal a b =
  match (a, b) with
  | Top, Top -> true
  | Poly xs, Poly ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun x y ->
             Float.abs (x.coeff -. y.coeff) <= 1e-9 *. (1.0 +. Float.abs x.coeff)
             && x.p_exp = y.p_exp && x.log_exp = y.log_exp)
           xs ys
  | Top, Poly _ | Poly _, Top -> false

let log2f v = if v <= 1.0 then 0.0 else log v /. log 2.0

(* Numeric value at a concrete scale (Top has none). *)
let eval t ~nprocs =
  match t with
  | Top -> None
  | Poly xs ->
      let pf = float_of_int (max 1 nprocs) in
      let lg = log2f pf in
      Some
        (List.fold_left
           (fun acc m ->
             acc +. (m.coeff *. Float.pow pf m.p_exp *. Float.pow lg m.log_exp))
           0.0 xs)

(* --- complexity classes --- *)

type cls = Cls of { a : float; b : float } | Unknown

let cls_of t =
  match dominant t with
  | None when is_zero t -> Cls { a = 0.0; b = 0.0 }
  | None -> Unknown
  | Some m -> Cls { a = m.p_exp; b = m.log_exp }

let fmt_exp x =
  if Float.is_integer x then string_of_int (int_of_float x)
  else Printf.sprintf "%g" x

let cls_label = function
  | Unknown -> "O(?)"
  | Cls { a; b } ->
      let pterm =
        if a = 0.0 then ""
        else if a = 1.0 then "p"
        else if a = 0.5 then "sqrt(p)"
        else if a = -1.0 then "1/p"
        else Printf.sprintf "p^%s" (fmt_exp a)
      in
      let lterm =
        if b = 0.0 then ""
        else if b = 1.0 then "log p"
        else Printf.sprintf "log^%s p" (fmt_exp b)
      in
      let body =
        match (pterm, lterm) with
        | "", "" -> "1"
        | s, "" | "", s -> s
        | ps, ls -> ps ^ " " ^ ls
      in
      "O(" ^ body ^ ")"

let cls_compare x y =
  match (x, y) with
  | Unknown, Unknown -> 0
  | Unknown, Cls _ -> 1  (* unknown sorts above every bound *)
  | Cls _, Unknown -> -1
  | Cls { a = xa; b = xb }, Cls { a = ya; b = yb } -> compare (xa, xb) (ya, yb)

let cls_equal x y = cls_compare x y = 0

(* --- exponent fitting ---

   Recover (a, b) of c*p^a*log^b(p) from samples at probe scales: for
   each candidate log power b, divide it out and fit the slope a by
   least squares on log/log axes; keep the (a, b) with the smallest
   residual, preferring lower b on ties.  Exponents snap to the halves
   grid the MiniMPI idioms produce (isqrt grids: 0.5; hypercubes: log). *)

let snap_grid = [ -2.0; -1.5; -1.0; -0.5; 0.0; 0.5; 1.0; 1.5; 2.0; 2.5; 3.0 ]

let snap a =
  let best =
    List.fold_left
      (fun (bs, bd) g ->
        let d = Float.abs (a -. g) in
        if d < bd then (g, d) else (bs, bd))
      (a, 0.2) snap_grid
  in
  fst best

let fit_exponents samples =
  let samples = List.filter (fun (_, y) -> y > 0.0) samples in
  if List.length samples < 2 then None
  else begin
    let eval_b b =
      let pts =
        List.map
          (fun (np, y) ->
            let pf = float_of_int np in
            let lg = Float.max 1.0 (log2f pf) in
            (log pf, log (y /. Float.pow lg b)))
          samples
      in
      let n = float_of_int (List.length pts) in
      let sx = List.fold_left (fun s (x, _) -> s +. x) 0.0 pts in
      let sy = List.fold_left (fun s (_, y) -> s +. y) 0.0 pts in
      let sxx = List.fold_left (fun s (x, _) -> s +. (x *. x)) 0.0 pts in
      let sxy = List.fold_left (fun s (x, y) -> s +. (x *. y)) 0.0 pts in
      let denom = (n *. sxx) -. (sx *. sx) in
      if Float.abs denom < 1e-12 then None
      else begin
        let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
        let icept = (sy -. (slope *. sx)) /. n in
        let resid =
          List.fold_left
            (fun s (x, y) ->
              let e = y -. (icept +. (slope *. x)) in
              s +. (e *. e))
            0.0 pts
        in
        Some (slope, resid)
      end
    in
    let candidates =
      List.filter_map
        (fun b ->
          Option.map (fun (slope, resid) -> (b, slope, resid)) (eval_b b))
        [ 0.0; 1.0; 2.0 ]
    in
    match candidates with
    | [] -> None
    | first :: rest ->
        let b, slope, _ =
          List.fold_left
            (fun (bb, bs, br) (b, s, r) ->
              (* a lower log power wins unless the higher one fits
                 measurably (5%) better *)
              if r < br *. 0.95 then (b, s, r) else (bb, bs, br))
            first rest
        in
        Some (Cls { a = snap slope; b })
  end

(* --- symbolic evaluation of MiniMPI expressions --- *)

type env = { params : (string * int) list; vars : (string * t) list }

let env ~params ~vars = { params; vars }

let rec of_expr env (e : Expr.t) =
  match e with
  | Expr.Int n -> const (float_of_int n)
  | Expr.Nprocs -> p
  | Expr.Rank -> Top  (* rank-dependent: not a function of the scale *)
  | Expr.Param s -> (
      match List.assoc_opt s env.params with
      | Some v -> const (float_of_int v)
      | None -> Top)
  | Expr.Var v -> (
      match List.assoc_opt v env.vars with Some t -> t | None -> Top)
  | Expr.Neg a -> neg (of_expr env a)
  | Expr.Not _ -> Top
  | Expr.Bin (op, a, b) -> of_binop env op a b
  | Expr.Log2 a -> sym_log2 (of_expr env a)
  | Expr.Isqrt a -> sym_isqrt (of_expr env a)

and of_binop env op a b =
  let va () = of_expr env a in
  let vb () = of_expr env b in
  match (op : Expr.binop) with
  | Expr.Add -> add (va ()) (vb ())
  | Expr.Sub -> sub (va ()) (vb ())
  | Expr.Mul -> mul (va ()) (vb ())
  | Expr.Div -> div (va ()) (vb ())
  | Expr.Shl -> (
      (* a * 2^b when the shift amount is a constant *)
      match vb () with
      | Poly [ { coeff; p_exp = 0.0; log_exp = 0.0 } ] ->
          mul (va ()) (const (Float.pow 2.0 coeff))
      | _ -> Top)
  | Expr.Shr -> (
      match vb () with
      | Poly [ { coeff; p_exp = 0.0; log_exp = 0.0 } ] ->
          div (va ()) (const (Float.pow 2.0 coeff))
      | _ -> Top)
  | Expr.Min | Expr.Max ->
      (* upper bound of either arm: sound for counts in both cases *)
      join (va ()) (vb ())
  | Expr.Mod | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge | Expr.Eq | Expr.Ne
  | Expr.And | Expr.Or | Expr.Xor ->
      Top

(* log2(c * p^a * log^b p) ~ a*log2(p) + log2(c): keep the terms the
   domain can express, widen the log-log remainder away. *)
and sym_log2 = function
  | Top -> Top
  | Poly [] -> zero
  | Poly (m :: _) ->
      (* the log of the dominant monomial bounds the log of the sum (up
         to an additive constant the classes ignore) *)
      if m.log_exp > 0.0 && m.p_exp = 0.0 then Top  (* log(log p) *)
      else begin
        let const_part =
          if m.coeff >= 1.0 then const (log2f m.coeff) else zero
        in
        if m.p_exp > 0.0 then
          add (mono ~coeff:m.p_exp ~p_exp:0.0 ~log_exp:1.0) const_part
        else const_part
      end

and sym_isqrt = function
  | Top -> Top
  | Poly [] -> zero
  | Poly (m :: _) ->
      (* sqrt of the dominant monomial bounds isqrt of the sum *)
      mono
        ~coeff:(Float.sqrt (Float.abs m.coeff))
        ~p_exp:(m.p_exp /. 2.0) ~log_exp:(m.log_exp /. 2.0)

(* --- per-block symbolic execution counts --- *)

(* Trip-count expression of a loop, recovered from the header block's
   provenance. *)
let header_trip (cfg : Cfg.t) (l : Loops.loop) =
  match (Cfg.block cfg l.Loops.header).Cfg.origin with
  | Cfg.Loop_header { Ast.node = Ast.Loop lp; _ } -> Some lp
  | _ -> None

(* Symbolic executions of every block for one invocation of the
   function: the product of the trip counts of the enclosing natural
   loops (detected via dominance back edges).  Loop variables are bound
   to their trip count — an upper bound on the values they take — so
   inner trip counts like [loop j < n] stay finite.  Blocks whose trip
   count the domain cannot express get Top. *)
let block_counts env (cfg : Cfg.t) =
  let loops = Loops.loops (Loops.compute cfg) in
  (* outermost loops first, so inner trip counts see outer bindings *)
  let by_depth = List.sort (fun a b -> compare a.Loops.depth b.Loops.depth) loops in
  let trips = Hashtbl.create 8 in
  let var_env = ref env.vars in
  List.iter
    (fun (l : Loops.loop) ->
      match header_trip cfg l with
      | None -> Hashtbl.replace trips l.Loops.header Top
      | Some lp ->
          let t = of_expr { env with vars = !var_env } lp.Ast.count in
          Hashtbl.replace trips l.Loops.header t;
          var_env := (lp.Ast.var, t) :: !var_env)
    by_depth;
  let n = Cfg.n_blocks cfg in
  let counts = Array.make n one in
  List.iter
    (fun (l : Loops.loop) ->
      let trip =
        match Hashtbl.find_opt trips l.Loops.header with
        | Some t -> t
        | None -> Top
      in
      List.iter
        (fun id -> counts.(id) <- mul counts.(id) trip)
        l.Loops.body)
    loops;
  counts

(* --- printing --- *)

let pp_mono ppf m =
  let parts = ref [] in
  if m.log_exp <> 0.0 then
    parts :=
      (if m.log_exp = 1.0 then "log p"
       else Printf.sprintf "log^%s p" (fmt_exp m.log_exp))
      :: !parts;
  if m.p_exp <> 0.0 then
    parts :=
      (if m.p_exp = 1.0 then "p" else Printf.sprintf "p^%s" (fmt_exp m.p_exp))
      :: !parts;
  let symbols = String.concat " " !parts in
  if symbols = "" then Fmt.pf ppf "%g" m.coeff
  else if Float.abs (m.coeff -. 1.0) < 1e-9 then Fmt.string ppf symbols
  else Fmt.pf ppf "%g %s" m.coeff symbols

let pp ppf = function
  | Top -> Fmt.string ppf "T"
  | Poly [] -> Fmt.string ppf "0"
  | Poly ms ->
      List.iteri
        (fun i m ->
          if i > 0 then Fmt.string ppf (if m.coeff >= 0.0 then " + " else " ");
          pp_mono ppf m)
        ms

let to_string = Fmt.to_to_string pp
