(** Symbolic scaling polynomials: the abstract domain of the static
    communication-complexity analysis.

    A value is a sum of monomials [c * p^a * log2(p)^b] in the process
    count [p] (app size parameters fold into the coefficients), or
    [Top] when the program computes something the domain cannot follow
    (rank arithmetic, unbound variables, non-monomial division).  All
    derived counts are upper bounds: joins take term-wise maxima and
    widening truncates to the leading monomials, preserving the
    dominant term and hence the complexity class. *)

open Scalana_mlang

type mono = { coeff : float; p_exp : float; log_exp : float }
type t = Poly of mono list | Top  (** [Poly []] is zero *)

val top : t
val zero : t
val one : t
val const : float -> t
val p : t
(** The process count. *)

val log_p : t
val mono : coeff:float -> p_exp:float -> log_exp:float -> t
val is_top : t -> bool
val is_zero : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Exact only when the divisor is a single monomial; widens to [Top]
    otherwise. *)

val join : t -> t -> t
(** Least upper bound: term-wise maxima (used for Min/Max and for
    merging branch arms). *)

val equal : t -> t -> bool

val dominant : t -> mono option
(** Leading (asymptotically dominant) monomial. *)

val eval : t -> nprocs:int -> float option
(** Numeric value at a concrete scale; [None] for [Top]. *)

(** {1 Complexity classes} *)

type cls = Cls of { a : float; b : float } | Unknown
(** The class [O(p^a log^b p)]; [Unknown] abstracts [Top]. *)

val cls_of : t -> cls
val cls_label : cls -> string
(** ["O(1)"], ["O(log p)"], ["O(sqrt(p))"], ["O(p)"], ["O(p log p)"],
    ["O(p^2)"], ... — ["O(?)"] for [Unknown]. *)

val cls_compare : cls -> cls -> int
(** Orders by asymptotic growth; [Unknown] sorts above every bound. *)

val cls_equal : cls -> cls -> bool

val snap : float -> float
(** Snap a fitted exponent to the halves grid MiniMPI idioms produce
    (within 0.2); farther values are kept as measured. *)

val fit_exponents : (int * float) list -> cls option
(** Recover [O(p^a log^b p)] from positive samples at probe scales:
    least squares for [a] with [b] chosen from {0,1,2} by residual,
    exponents snapped via {!snap}.  [None] with fewer than two positive
    samples. *)

(** {1 Symbolic evaluation} *)

type env = { params : (string * int) list; vars : (string * t) list }

val env : params:(string * int) list -> vars:(string * t) list -> env

val of_expr : env -> Expr.t -> t
(** Abstract evaluation of a MiniMPI expression.  [Rank], unbound
    variables, and operators outside the domain (mod, comparisons,
    xor) evaluate to [Top]; [Min]/[Max] join; [log2]/[isqrt] of a
    monomial stay symbolic. *)

val block_counts : env -> Cfg.t -> t array
(** Symbolic executions of every CFG block for one invocation of the
    function: the product of the trip counts of the enclosing natural
    loops ({!Loops} on dominance back edges), loop variables bound to
    their trip counts as upper bounds. *)

val pp : t Fmt.t
val to_string : t -> string
