(* On-disk session artifacts.

   The three user-facing steps of Section V are separate executables
   (scalana-static, scalana-prof, scalana-detect); a session directory
   carries the static artifact and one profile per job scale between
   them.

   Durable format (v2): production runs fill disks and die mid-write, so
   raw Marshal is wrapped in a versioned, checksummed record stream:

     header  = "SCALANA2" (8 bytes) ++ format version (1 byte)
     record  = payload length (4-byte big-endian)
            ++ CRC-32 of payload (4-byte big-endian)
            ++ payload (Marshal of one value)

   Writers append one record per run, so a profile file carries every
   save of its scale and the newest intact record wins.  The salvage
   reader walks the stream and recovers the valid prefix of a truncated
   or bit-flipped file, reporting what was lost as a typed {!error}
   instead of crashing the whole analysis. *)

type session = {
  static : Static.t;
  mutable runs : (int * Prof.run) list;
  issues : issue list;  (* artifact damage found while loading *)
}

and error =
  | Missing of { path : string }
  | Bad_magic of { path : string }
  | Bad_version of { path : string; version : int }
  | Truncated of { path : string; records_ok : int; at_byte : int }
  | Checksum_mismatch of { path : string; record : int }
  | Decode_failure of { path : string; record : int; reason : string }
  | Empty of { path : string }

and issue = { issue_path : string; kept : int; error : error }

exception Error of error

let error_path = function
  | Missing { path }
  | Bad_magic { path }
  | Bad_version { path; _ }
  | Truncated { path; _ }
  | Checksum_mismatch { path; _ }
  | Decode_failure { path; _ }
  | Empty { path } ->
      path

let error_detail = function
  | Missing _ -> "no such artifact"
  | Bad_magic _ -> "not a ScalAna artifact"
  | Bad_version { version; _ } ->
      Printf.sprintf "unsupported artifact format version %d" version
  | Truncated { records_ok; at_byte; _ } ->
      Printf.sprintf "truncated at byte %d (%d intact record%s before it)"
        at_byte records_ok
        (if records_ok = 1 then "" else "s")
  | Checksum_mismatch { record; _ } ->
      Printf.sprintf "checksum mismatch in record %d" record
  | Decode_failure { record; reason; _ } ->
      Printf.sprintf "record %d does not decode (%s)" record reason
  | Empty _ -> "no intact records"

let error_message e = error_path e ^ ": " ^ error_detail e

let issue_message i =
  Printf.sprintf "%s (%d record%s salvaged)" (error_message i.error) i.kept
    (if i.kept = 1 then "" else "s")

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Scalana.Artifact.Error: " ^ error_message e)
    | _ -> None)

let magic = "SCALANA2"
let format_version = 2
let header_bytes = String.length magic + 1

(* --- CRC-32 (IEEE 802.3, the zlib polynomial) --- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* --- writers --- *)

let write_header oc =
  output_string oc magic;
  output_byte oc format_version

let write_record oc v =
  let payload = Marshal.to_string v [] in
  Scalana_obs.Obs.Metrics.incr ~by:(8 + String.length payload)
    "artifact.bytes_written";
  output_binary_int oc (String.length payload);
  output_binary_int oc (crc32 payload);
  output_string oc payload

let save_value path v =
  Scalana_obs.Obs.with_span
    ~args:[ ("path", Filename.basename path) ]
    "artifact.write"
  @@ fun () ->
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      write_header oc;
      write_record oc v)

let append_value path v =
  Scalana_obs.Obs.with_span
    ~args:[ ("path", Filename.basename path) ]
    "artifact.write"
  @@ fun () ->
  (* an empty pre-created file still needs its header *)
  let has_header =
    Sys.file_exists path
    &&
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> in_channel_length ic > 0)
  in
  if not has_header then save_value path v
  else begin
    let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> write_record oc v)
  end

(* --- salvage reader --- *)

type 'a salvage = { values : 'a list; damage : error option }

(* Walk the record stream, keeping every intact record; the first sign of
   damage (short read, bad checksum, undecodable payload) stops the walk
   and is reported — the valid prefix survives. *)
let read_stream_body path : 'a salvage =
  if not (Sys.file_exists path) then
    { values = []; damage = Some (Missing { path }) }
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        if len < header_bytes then
          let prefix = really_input_string ic (min len (String.length magic)) in
          if String.equal prefix (String.sub magic 0 (String.length prefix))
          then
            { values = []; damage = Some (Truncated { path; records_ok = 0; at_byte = len }) }
          else { values = []; damage = Some (Bad_magic { path }) }
        else begin
          let m = really_input_string ic (String.length magic) in
          if not (String.equal m magic) then
            { values = []; damage = Some (Bad_magic { path }) }
          else begin
            let version = input_byte ic in
            if version <> format_version then
              { values = []; damage = Some (Bad_version { path; version }) }
            else begin
              let rec loop acc n pos =
                if pos = len then { values = List.rev acc; damage = None }
                else if len - pos < 8 then
                  {
                    values = List.rev acc;
                    damage = Some (Truncated { path; records_ok = n; at_byte = pos });
                  }
                else begin
                  let plen = input_binary_int ic in
                  let crc = input_binary_int ic land 0xFFFFFFFF in
                  if plen < 0 || pos + 8 + plen > len then
                    {
                      values = List.rev acc;
                      damage =
                        Some (Truncated { path; records_ok = n; at_byte = pos });
                    }
                  else begin
                    let payload = really_input_string ic plen in
                    if crc32 payload <> crc then
                      {
                        values = List.rev acc;
                        damage = Some (Checksum_mismatch { path; record = n });
                      }
                    else
                      match Marshal.from_string payload 0 with
                      | v -> loop (v :: acc) (n + 1) (pos + 8 + plen)
                      | exception e ->
                          {
                            values = List.rev acc;
                            damage =
                              Some
                                (Decode_failure
                                   {
                                     path;
                                     record = n;
                                     reason = Printexc.to_string e;
                                   });
                          }
                  end
                end
              in
              loop [] 0 header_bytes
            end
          end
        end)
  end

(* Observable wrapper: bytes read, salvage counts and one span per file
   walked.  Disabled (the default) it is the body, verbatim. *)
let read_stream path : 'a salvage =
  let module Obs = Scalana_obs.Obs in
  if not (Obs.enabled ()) then read_stream_body path
  else
    Obs.with_span ~args:[ ("path", Filename.basename path) ] "artifact.read"
    @@ fun () ->
    let s = read_stream_body path in
    let bytes =
      match Unix.stat path with
      | st -> st.Unix.st_size
      | exception Unix.Unix_error _ -> 0
    in
    Obs.Metrics.incr "artifact.reads";
    Obs.Metrics.incr ~by:bytes "artifact.bytes_read";
    (match s.damage with
    | Some _ ->
        Obs.Metrics.incr "artifact.damaged_files";
        Obs.Metrics.incr ~by:(List.length s.values) "artifact.salvaged_records"
    | None -> ());
    s

(* Strict single-value read: the first record, or a typed {!Error}. *)
let load_value path =
  match read_stream path with
  | { values = v :: _; _ } -> v
  | { values = []; damage = Some e } -> raise (Error e)
  | { values = []; damage = None } -> raise (Error (Empty { path }))

let static_path dir = Filename.concat dir "session.static"
let run_path dir nprocs = Filename.concat dir (Printf.sprintf "run_%04d.prof" nprocs)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    failwith (dir ^ " exists and is not a directory")

let save_static dir (static : Static.t) =
  ensure_dir dir;
  save_value (static_path dir) static

let load_static dir : Static.t = load_value (static_path dir)

(* Profiles append: re-profiling a scale adds a record, and the newest
   intact one wins at load time. *)
let save_run dir (run : Prof.run) =
  ensure_dir dir;
  append_value (run_path dir run.Prof.nprocs) run

let rec last = function [ x ] -> Some x | _ :: rest -> last rest | [] -> None

(* Load every profile, salvaging what damaged files still carry.  A file
   whose magic matches but whose payload fails to decode is surfaced as
   an issue naming the file — never silently dropped, never a crash. *)
let load_runs_salvage dir =
  let runs = ref [] and issues = ref [] in
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.iter (fun f ->
         if Filename.check_suffix f ".prof" then begin
           let path = Filename.concat dir f in
           let s : Prof.run salvage = read_stream path in
           (match s.damage with
           | Some error ->
               issues :=
                 { issue_path = path; kept = List.length s.values; error }
                 :: !issues
           | None ->
               if s.values = [] then
                 issues :=
                   { issue_path = path; kept = 0; error = Empty { path } }
                   :: !issues);
           match last s.values with
           | Some run -> runs := (run.Prof.nprocs, run) :: !runs
           | None -> ()
         end);
  ( List.sort (fun (a, _) (b, _) -> compare a b) !runs,
    List.rev !issues )

let load_runs dir : (int * Prof.run) list =
  let runs, issues = load_runs_salvage dir in
  List.iter
    (fun i -> Printf.eprintf "scalana: warning: %s\n%!" (issue_message i))
    issues;
  runs

let load_session dir =
  let runs, issues = load_runs_salvage dir in
  { static = load_static dir; runs; issues }
