(** On-disk session artifacts shared by the scalana-static / -prof /
    -detect executables.

    Format v2 wraps [Marshal] payloads in a durable record stream:
    ["SCALANA2"] magic + version byte, then per record a 4-byte
    big-endian payload length, a 4-byte big-endian CRC-32 and the
    payload.  Runs are appended record-by-record, and the salvage
    reader recovers the valid prefix of a truncated or corrupted file,
    reporting damage as a typed {!error}. *)

type session = {
  static : Static.t;
  mutable runs : (int * Prof.run) list;
  issues : issue list;  (** artifact damage found while loading *)
}

and error =
  | Missing of { path : string }
  | Bad_magic of { path : string }
  | Bad_version of { path : string; version : int }
  | Truncated of { path : string; records_ok : int; at_byte : int }
  | Checksum_mismatch of { path : string; record : int }
  | Decode_failure of { path : string; record : int; reason : string }
  | Empty of { path : string }

and issue = { issue_path : string; kept : int; error : error }

exception Error of error

val error_path : error -> string
val error_detail : error -> string

(** [error_path ^ ": " ^ error_detail]. *)
val error_message : error -> string

val issue_message : issue -> string

val magic : string
val format_version : int

(** CRC-32 (IEEE 802.3 / zlib polynomial) of a string. *)
val crc32 : string -> int

(** [save_value path v]: write header plus one record (truncates). *)
val save_value : string -> 'a -> unit

(** [append_value path v]: append one record, creating the file (with
    header) if needed. *)
val append_value : string -> 'a -> unit

(** First record of the stream.  Raises {!Error} on missing, foreign,
    truncated or corrupt files. *)
val load_value : string -> 'a

type 'a salvage = {
  values : 'a list;  (** the intact record prefix *)
  damage : error option;  (** what stopped the read, if anything *)
}

(** Salvage read: every intact record before the first damage. *)
val read_stream : string -> 'a salvage

val static_path : string -> string
val run_path : string -> int -> string
val save_static : string -> Static.t -> unit

(** Raises {!Error} when the static artifact is missing or damaged. *)
val load_static : string -> Static.t

(** Appends a record to the scale's profile; the newest intact record
    wins at load time. *)
val save_run : string -> Prof.run -> unit

(** Salvaging run loader: per scale, the newest intact record of its
    profile, plus one {!issue} per damaged file (a file with valid
    magic but no decodable record is reported, never dropped). *)
val load_runs_salvage : string -> (int * Prof.run) list * issue list

(** {!load_runs_salvage} with issues printed as warnings on stderr. *)
val load_runs : string -> (int * Prof.run) list

(** Raises {!Error} when the static artifact is unreadable; run damage
    is salvaged into [issues] instead. *)
val load_session : string -> session
