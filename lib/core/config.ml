(* End-user configuration of the ScalAna pipeline — the user-facing knobs
   of Section V (MaxLoopDepth, AbnormThd) plus sampling/instrumentation
   settings, with the paper's evaluation defaults. *)

type t = {
  max_loop_depth : int;  (* PSG contraction bound; paper: 10 *)
  abnorm_thd : float;  (* abnormal-vertex threshold; paper: 1.3 *)
  sampling_freq : float;  (* Hz; paper: 200, same as HPCToolkit *)
  record_prob : float;  (* random-sampling instrumentation threshold *)
  ns_top_k : int;  (* non-scalable vertices to keep *)
  ns_min_fraction : float;  (* time-share filter for candidates *)
  ns_strategy : Scalana_detect.Aggregate.strategy;
  prune_non_wait : bool;  (* backtracking comm-edge pruning *)
  follow_def_use : bool;
      (* backtrack along explicit def-use edges where available instead
         of sibling order; off = paper-faithful Algorithm 1 *)
  seed : int;
  analysis_domains : int;  (* parallelism of the analysis fan-outs *)
  max_run_retries : int;  (* extra profiling attempts for fault-killed runs *)
  timeline_max_events : int;  (* rank-timeline recorder cap *)
  static_crosscheck : bool;
      (* cross-check non-scalable slopes against the symbolic
         communication model; off = reports byte-identical *)
  elastic : bool;
      (* render elastic membership/recovery sections for sessions whose
         runs carried an elastic plan; off = reports byte-identical *)
}

let default =
  {
    max_loop_depth = 10;
    abnorm_thd = 1.3;
    sampling_freq = 200.0;
    record_prob = 0.5;
    ns_top_k = 5;
    ns_min_fraction = 0.01;
    ns_strategy = Scalana_detect.Aggregate.Mean;
    prune_non_wait = true;
    follow_def_use = false;
    seed = 42;
    analysis_domains = Pool.default_size ();
    max_run_retries = 2;
    timeline_max_events = Scalana_profile.Timeline.default_config.max_events;
    static_crosscheck = false;
    elastic = false;
  }

let profiler_config t =
  {
    Scalana_profile.Profiler.default_config with
    freq = t.sampling_freq;
    record_prob = t.record_prob;
    seed = t.seed;
  }

let timeline_config t =
  { Scalana_profile.Timeline.max_events = t.timeline_max_events }

let ns_config t =
  {
    Scalana_detect.Nonscalable.default_config with
    strategy = t.ns_strategy;
    top_k = t.ns_top_k;
    min_fraction = t.ns_min_fraction;
  }

let ab_config t =
  { Scalana_detect.Abnormal.default_config with abnorm_thd = t.abnorm_thd }

let bt_config t =
  {
    Scalana_detect.Backtrack.default_config with
    prune_non_wait = t.prune_non_wait;
    follow_def_use = t.follow_def_use;
  }
