(** End-user configuration of the pipeline: the paper's MaxLoopDepth and
    AbnormThd knobs plus sampling/instrumentation settings, with the
    evaluation defaults, and mappings onto the per-module configs. *)

type t = {
  max_loop_depth : int;  (** PSG contraction bound (paper: 10) *)
  abnorm_thd : float;  (** abnormal-vertex threshold (paper: 1.3) *)
  sampling_freq : float;  (** Hz (paper: 200) *)
  record_prob : float;  (** random-sampling instrumentation threshold *)
  ns_top_k : int;
  ns_min_fraction : float;
  ns_strategy : Scalana_detect.Aggregate.strategy;
  prune_non_wait : bool;
  follow_def_use : bool;
      (** backtrack along explicit def-use edges where available instead
          of sibling order (off = paper-faithful Algorithm 1) *)
  seed : int;
  analysis_domains : int;
      (** Parallelism of the analysis fan-outs (per-scale runs, PPG
          builds, log-log fits, local PSGs): total domains used,
          caller included.  Default {!Pool.default_size}; [1] forces the
          sequential path.  Results are identical either way. *)
  max_run_retries : int;
      (** Extra profiling attempts (fresh fault draws) granted to a run
          that lost ranks to injected faults.  Default 2. *)
  timeline_max_events : int;
      (** Event cap (intervals + messages) of the rank-timeline
          recorder; past it events are dropped with explicit truncation
          accounting.  Default {!Scalana_profile.Timeline.default_config}. *)
  static_crosscheck : bool;
      (** Cross-check the non-scalable vertices' fitted slopes against
          the symbolic communication model
          ({!Scalana_detect.Crosscheck}).  Default [false]: reports
          stay byte-identical. *)
  elastic : bool;
      (** Render elastic membership-timeline and recovery-cost sections
          for sessions whose runs carried an elastic plan.  Default
          [false]: reports stay byte-identical. *)
}

val default : t
val profiler_config : t -> Scalana_profile.Profiler.config
val timeline_config : t -> Scalana_profile.Timeline.config
val ns_config : t -> Scalana_detect.Nonscalable.config
val ab_config : t -> Scalana_detect.Abnormal.config
val bt_config : t -> Scalana_detect.Backtrack.config
