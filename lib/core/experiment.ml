(* Experiment harnesses for the paper's overhead / storage / speedup
   comparisons (Table I, Fig. 10, Fig. 11, Fig. 13, and the speedup rows
   of the case studies). *)

open Scalana_mlang
open Scalana_runtime
open Scalana_baselines

type tool_kind = No_tool | Scalana_tool | Tracing_tool | Callpath_tool

let tool_name = function
  | No_tool -> "none"
  | Scalana_tool -> "ScalAna"
  | Tracing_tool -> "Scalasca-like tracing"
  | Callpath_tool -> "HPCToolkit-like profiling"

type measurement = {
  tool : tool_kind;
  nprocs : int;
  elapsed : float;
  overhead_pct : float;  (* vs the uninstrumented run *)
  storage_bytes : int;
}

(* Run [program] once per tool at [nprocs] and compare elapsed time and
   measurement-data size.  A [faults] plan degrades the ScalAna run the
   same way the pipeline does (bounded retry with fresh draws); the
   baseline tools run clean so overhead stays an apples-to-apples
   comparison. *)
let tool_comparison ?(config = Config.default) ?(cost = Costmodel.default)
    ?(net = Network.default) ?(faults = Faults.empty) ?(params = [])
    (program : Ast.program) ~nprocs =
  let base_cfg tools = Exec.config ~nprocs ~params ~cost ~net ~tools () in
  let bare = Exec.run ~cfg:(base_cfg []) program in
  let base = bare.Exec.elapsed in
  let pct elapsed =
    if base > 0.0 then 100.0 *. (elapsed -. base) /. base else 0.0
  in
  let scalana =
    let static = Static.analyze ~max_loop_depth:config.Config.max_loop_depth program in
    let r =
      Prof.run_with_retry ~retries:config.Config.max_run_retries ~config
        ~cost ~net ~faults ~params static ~nprocs ()
    in
    {
      tool = Scalana_tool;
      nprocs;
      elapsed = r.Prof.result.Exec.elapsed;
      overhead_pct = pct r.Prof.result.Exec.elapsed;
      storage_bytes = Scalana_profile.Profdata.storage_bytes r.Prof.data;
    }
  in
  let tracing =
    let tr = Tracer.create () in
    let r = Exec.run ~cfg:(base_cfg [ Tracer.tool tr ]) program in
    {
      tool = Tracing_tool;
      nprocs;
      elapsed = r.Exec.elapsed;
      overhead_pct = pct r.Exec.elapsed;
      storage_bytes = Tracer.storage_bytes tr;
    }
  in
  let callpath =
    let cp = Callprof.create ~nprocs () in
    let r = Exec.run ~cfg:(base_cfg [ Callprof.tool cp ]) program in
    {
      tool = Callpath_tool;
      nprocs;
      elapsed = r.Exec.elapsed;
      overhead_pct = pct r.Exec.elapsed;
      storage_bytes = Callprof.storage_bytes cp;
    }
  in
  [ tracing; callpath; scalana ]

(* Mean overhead of each tool across several scales (Fig. 10's bars). *)
let mean_overhead ?config ?cost ?net ?faults ?params program ~scales =
  let by_tool = Hashtbl.create 4 in
  List.iter
    (fun nprocs ->
      List.iter
        (fun m ->
          let l = try Hashtbl.find by_tool m.tool with Not_found -> [] in
          Hashtbl.replace by_tool m.tool (m.overhead_pct :: l))
        (tool_comparison ?config ?cost ?net ?faults ?params program ~nprocs))
    scales;
  List.map
    (fun tool ->
      let l = try Hashtbl.find by_tool tool with Not_found -> [] in
      let mean =
        if l = [] then 0.0
        else List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
      in
      (tool, mean))
    [ Tracing_tool; Callpath_tool; Scalana_tool ]

(* Uninstrumented elapsed time of one run. *)
let bare_elapsed ?(cost = Costmodel.default) ?(net = Network.default)
    ?(params = []) (program : Ast.program) ~nprocs =
  (Exec.run ~cfg:(Exec.config ~nprocs ~params ~cost ~net ()) program)
    .Exec.elapsed

type speedup_row = {
  sp_nprocs : int;
  base_speedup : float;
  opt_speedup : float;
  improvement_pct : float;  (* elapsed-time improvement at this scale *)
}

(* Strong-scaling speedup of the base vs optimized variant.  As in the
   paper's case studies, each variant is normalized to its own elapsed
   time at [baseline_np]; the improvement column compares elapsed times
   at each scale directly. *)
let speedup ?(cost = Costmodel.default) ?(net = Network.default)
    ?(params = []) ~(make : ?optimized:bool -> unit -> Ast.program)
    ~baseline_np ~scales () =
  let base_prog = make () in
  let opt_prog = make ~optimized:true () in
  let tb1 = bare_elapsed ~cost ~net ~params base_prog ~nprocs:baseline_np in
  let to1 = bare_elapsed ~cost ~net ~params opt_prog ~nprocs:baseline_np in
  List.map
    (fun nprocs ->
      let tb = bare_elapsed ~cost ~net ~params base_prog ~nprocs in
      let to_ = bare_elapsed ~cost ~net ~params opt_prog ~nprocs in
      {
        sp_nprocs = nprocs;
        base_speedup = tb1 /. tb;
        opt_speedup = to1 /. to_;
        improvement_pct = (if tb > 0.0 then 100.0 *. (tb -. to_) /. tb else 0.0);
      })
    scales
