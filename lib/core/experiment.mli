(** Experiment harnesses for the paper's comparisons: per-tool overhead
    and storage (Table I, Fig. 10/11/13) and base-vs-optimized speedups
    (the case studies' rows). *)

open Scalana_mlang
open Scalana_runtime

type tool_kind = No_tool | Scalana_tool | Tracing_tool | Callpath_tool

val tool_name : tool_kind -> string

type measurement = {
  tool : tool_kind;
  nprocs : int;
  elapsed : float;
  overhead_pct : float;  (** vs the uninstrumented run *)
  storage_bytes : int;
}

(** One run per tool at [nprocs], plus the bare run they are compared
    against.  Returns tracing, call-path and ScalAna measurements.  A
    [faults] plan degrades the ScalAna run (with bounded retry); the
    baseline tools stay clean. *)
val tool_comparison :
  ?config:Config.t ->
  ?cost:Costmodel.t ->
  ?net:Network.t ->
  ?faults:Faults.plan ->
  ?params:(string * int) list ->
  Ast.program ->
  nprocs:int ->
  measurement list

(** Mean overhead of each tool across [scales] (Fig. 10's bars). *)
val mean_overhead :
  ?config:Config.t ->
  ?cost:Costmodel.t ->
  ?net:Network.t ->
  ?faults:Faults.plan ->
  ?params:(string * int) list ->
  Ast.program ->
  scales:int list ->
  (tool_kind * float) list

(** Elapsed time of one uninstrumented run. *)
val bare_elapsed :
  ?cost:Costmodel.t ->
  ?net:Network.t ->
  ?params:(string * int) list ->
  Ast.program ->
  nprocs:int ->
  float

type speedup_row = {
  sp_nprocs : int;
  base_speedup : float;  (** vs the base variant at [baseline_np] *)
  opt_speedup : float;  (** vs the optimized variant at [baseline_np] *)
  improvement_pct : float;  (** elapsed-time gain at this scale *)
}

val speedup :
  ?cost:Costmodel.t ->
  ?net:Network.t ->
  ?params:(string * int) list ->
  make:(?optimized:bool -> unit -> Ast.program) ->
  baseline_np:int ->
  scales:int list ->
  unit ->
  speedup_row list
