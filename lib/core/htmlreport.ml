(* Standalone HTML rendering of a finished pipeline — the ScalAna-viewer
   GUI of Fig. 9 as a self-contained file: the upper window (root-cause
   vertices with calling paths) and the lower window (source snippets),
   plus per-rank bar charts of the problematic vertices as inline SVG. *)

open Scalana_mlang
open Scalana_psg
open Scalana_detect

let esc s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let css =
  {|body{font-family:ui-monospace,Menlo,Consolas,monospace;margin:2em;
background:#fafafa;color:#222}
h1{font-size:1.3em}h2{font-size:1.1em;border-bottom:1px solid #ccc;
padding-bottom:.2em;margin-top:2em}
table{border-collapse:collapse;margin:.6em 0}
td,th{border:1px solid #ddd;padding:.25em .6em;text-align:left;
font-size:.85em}
th{background:#eee}
.cause{background:#fff;border:1px solid #ddd;border-left:4px solid #c33;
padding:.6em 1em;margin:.8em 0}
.path{color:#555;font-size:.8em;white-space:pre}
.snippet{background:#272822;color:#f8f8f2;padding:.5em .8em;font-size:.82em;
white-space:pre;overflow-x:auto;border-radius:4px}
.bar{fill:#4a7fb5}.bar.hot{fill:#c33}
.meta{color:#777;font-size:.85em}|}

(* Per-rank bar chart as inline SVG; deviating ranks highlighted. *)
let svg_bars ?(width = 640) ?(height = 80) ~hot values =
  (* quarantined values (NaN / negative) render as empty bars instead of
     breaking the SVG geometry *)
  let values =
    Array.map (fun v -> if Float.is_nan v || v < 0.0 then 0.0 else v) values
  in
  let n = Array.length values in
  if n = 0 then ""
  else begin
    let mx = Array.fold_left Float.max 1e-12 values in
    let bw = float_of_int width /. float_of_int n in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf
         "<svg width=\"%d\" height=\"%d\" role=\"img\" aria-label=\"per-rank times\">"
         width height);
    Array.iteri
      (fun i v ->
        let h = v /. mx *. float_of_int (height - 4) in
        let cls = if List.mem i hot then "bar hot" else "bar" in
        Buffer.add_string buf
          (Printf.sprintf
             "<rect class=\"%s\" x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" \
              height=\"%.1f\"><title>rank %d: %.4fs</title></rect>"
             cls
             (float_of_int i *. bw)
             (float_of_int height -. h)
             (Float.max 1.0 (bw -. 1.0))
             h i v))
      values;
    Buffer.add_string buf "</svg>";
    Buffer.contents buf
  end

let render (pipe : Pipeline.t) =
  let psg = Static.psg pipe.static in
  let program = pipe.static.Static.program in
  let _, largest_ppg = Scalana_ppg.Crossscale.largest pipe.crossscale in
  let buf = Buffer.create 16384 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "<!doctype html><html><head><meta charset=\"utf-8\"><title>ScalAna — \
     %s</title><style>%s</style></head><body>"
    (esc program.pname) css;
  out "<h1>ScalAna scaling-loss report — %s</h1>" (esc program.pname);
  out "<p class=\"meta\">scales: %s · detection cost %.3fs · %d paths</p>"
    (String.concat ", "
       (List.map string_of_int (Scalana_ppg.Crossscale.scales pipe.crossscale)))
    pipe.detect_seconds
    (List.length pipe.analysis.paths);

  (* degraded inputs announce themselves before any verdict; clean
     pipelines skip the section entirely *)
  let q = pipe.Pipeline.quality in
  if not (Quality.is_clean q) then begin
    out "<h2>Data quality</h2>";
    out "<p class=\"meta\">rank coverage %.1f%%</p>" (100.0 *. q.Quality.rank_coverage);
    if q.Quality.artifact_issues <> [] then begin
      out "<table><tr><th>artifact</th><th>damage</th>\
           <th>records salvaged</th></tr>";
      List.iter
        (fun (a : Quality.artifact_issue) ->
          out "<tr><td>%s</td><td>%s</td><td>%d</td></tr>"
            (esc (Filename.basename a.Quality.ai_path))
            (esc a.Quality.ai_detail) a.Quality.ai_kept)
        q.Quality.artifact_issues;
      out "</table>"
    end;
    if q.Quality.run_issues <> [] then begin
      out "<table><tr><th>scale</th><th>killed ranks</th>\
           <th>stranded ranks</th><th>left</th><th>joined</th>\
           <th>epochs</th><th>attempts</th><th>backoff</th></tr>";
      List.iter
        (fun (r : Quality.run_issue) ->
          let ranks = function
            | [] -> "—"
            | rs -> String.concat "," (List.map string_of_int rs)
          in
          out
            "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td>\
             <td>%s</td><td>%d</td><td>%s</td></tr>"
            r.Quality.ri_nprocs
            (esc (ranks r.Quality.ri_killed))
            (esc (ranks r.Quality.ri_stranded))
            (esc (ranks r.Quality.ri_left))
            (esc (ranks r.Quality.ri_joined))
            (if r.Quality.ri_epochs > 0 then string_of_int r.Quality.ri_epochs
             else "—")
            r.Quality.ri_attempts
            (if r.Quality.ri_backoff > 0.0 then
               Printf.sprintf "%.3fs" r.Quality.ri_backoff
             else "—"))
        q.Quality.run_issues;
      out "</table>"
    end;
    if q.Quality.dropped_scales <> [] then
      out "<p class=\"meta\">dropped scales: %s</p>"
        (esc
           (String.concat ", "
              (List.map string_of_int q.Quality.dropped_scales)));
    if q.Quality.quarantined_values > 0 then
      out "<p class=\"meta\">quarantined values: %d</p>"
        q.Quality.quarantined_values;
    if q.Quality.insufficient_vertices > 0 then
      out "<p class=\"meta\">vertices with insufficient data: %d</p>"
        q.Quality.insufficient_vertices
  end;

  (* pipeline self-cost, only when the observability layer collected it *)
  if pipe.Pipeline.phase_costs <> [] then begin
    out "<h2>Pipeline cost (self-observability)</h2>\
         <table><tr><th>phase</th><th>calls</th><th>total</th></tr>";
    List.iter
      (fun (name, calls, total) ->
        out "<tr><td>%s</td><td>%d</td><td>%.3fs</td></tr>" (esc name) calls
          total)
      pipe.Pipeline.phase_costs;
    out "</table>"
  end;

  let lint_locs = List.map (fun (f : Lint.finding) -> f.Lint.loc) pipe.lint in
  let crosscheck = pipe.analysis.Rootcause.crosscheck in
  out "<h2>Non-scalable vertices</h2><table><tr><th>vertex</th><th>location</th>\
       <th>slope</th><th>share</th><th>series</th>\
       <th>predicted statically</th>%s</tr>"
    (match crosscheck with
    | Some _ -> "<th>static model</th>"
    | None -> "");
  List.iter
    (fun (f : Nonscalable.finding) ->
      let v = Psg.vertex psg f.vertex in
      out
        "<tr><td>%s</td><td>%s</td><td>%+.2f</td><td>%.1f%%</td><td>%s</td>\
         <td>%s</td>%s</tr>"
        (esc (Vertex.label v))
        (esc (Loc.to_string v.Vertex.loc))
        f.slope (100.0 *. f.fraction)
        (esc
           (String.concat " → "
              (List.map (fun (n, t) -> Printf.sprintf "%d:%.3fs" n t) f.series)))
        (if Report.predicted ~psg ~locs:lint_locs f.vertex then "yes" else "—")
        (match crosscheck with
        | None -> ""
        | Some cx ->
            Printf.sprintf "<td>%s</td>"
              (match Crosscheck.verdict_for cx f.vertex with
              | Some verdict -> esc (String.trim (Crosscheck.annotation verdict))
              | None -> "—")))
    pipe.analysis.nonscalable;
  out "</table>";
  (match crosscheck with
  | None -> ()
  | Some cx ->
      out "<h2>Static model cross-check</h2>";
      out "<p class=\"meta\">scales %s · tolerance %.2f · %d confirmed · \
           %d mismatched%s</p>"
        (esc (String.concat ", " (List.map string_of_int cx.Crosscheck.cx_scales)))
        cx.Crosscheck.cx_tolerance
        (List.length (Crosscheck.confirmed cx))
        (List.length (Crosscheck.mismatches cx))
        (if cx.Crosscheck.cx_exact then ""
         else " · model approximate (walks hit unanalyzable constructs)");
      match Crosscheck.mismatches cx with
      | [] -> ()
      | mis ->
          out "<table><tr><th>vertex</th><th>location</th><th>predicted</th>\
               <th>model slope</th><th>measured slope</th></tr>";
          List.iter
            (fun (verdict : Crosscheck.verdict) ->
              let v = Psg.vertex psg verdict.Crosscheck.cv_vertex in
              out
                "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td>\
                 <td>%+.2f</td></tr>"
                (esc (Vertex.label v))
                (esc (Loc.to_string v.Vertex.loc))
                (esc verdict.Crosscheck.cv_pred.Scalana_cfg.Commcost.pred_label)
                (match verdict.Crosscheck.cv_model_slope with
                | Some m -> Printf.sprintf "%+.2f" m
                | None -> "?")
                verdict.Crosscheck.cv_measured_slope)
            mis;
          out "</table>");
  if pipe.lint <> [] then begin
    out "<h2>Static lint findings</h2><table><tr><th>rule</th>\
         <th>location</th><th>function</th><th>finding</th></tr>";
    List.iter
      (fun (f : Lint.finding) ->
        out "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>"
          (esc (Lint.rule_name f.Lint.rule))
          (esc (Loc.to_string f.Lint.loc))
          (esc f.Lint.func) (esc f.Lint.msg))
      pipe.lint;
    out "</table>"
  end;

  out "<h2>Abnormal vertices</h2>";
  List.iteri
    (fun i (f : Abnormal.finding) ->
      if i < 6 then begin
        let v = Psg.vertex psg f.vertex in
        let times = Scalana_ppg.Ppg.times_across_ranks largest_ppg ~vertex:f.vertex in
        out "<p><b>%s</b> @%s — %d deviating ranks, max %.4fs, median %.4fs</p>%s"
          (esc (Vertex.label v))
          (esc (Loc.to_string v.Vertex.loc))
          (List.length f.ranks) f.max_time f.median_time
          (svg_bars ~hot:f.ranks times)
      end)
    pipe.analysis.abnormal;

  out "<h2>Root causes</h2>";
  List.iteri
    (fun i (c : Rootcause.cause) ->
      out "<div class=\"cause\"><b>#%d %s</b> @%s<br>" (i + 1)
        (esc c.cause_label)
        (esc (Loc.to_string c.cause_loc));
      out "<span class=\"meta\">paths=%d · total %.4fs · imbalance %s · \
           culprit ranks %s</span>"
        c.n_paths c.total_time
        (if c.imbalance = infinity then "∞"
         else Printf.sprintf "%.2fx" c.imbalance)
        (esc (String.concat "," (List.map string_of_int c.culprit_ranks)));
      (match crosscheck with
      | Some cx when Crosscheck.confirms_path cx c.example_path ->
          out "<br><span class=\"meta\">confidence raised: static model \
               confirms the measured scaling on this path</span>"
      | _ -> ());
      if c.wait_evidence <> [] then
        out "<br><span class=\"meta\">wait-state evidence: %s</span>"
          (esc
             (String.concat ", "
                (List.map
                   (fun (cls, t) ->
                     Printf.sprintf "%s %.6fs" (Waitstate.class_name cls) t)
                   c.wait_evidence)));
      out "<div class=\"path\">%s</div>"
        (esc (Fmt.str "%a" (Backtrack.pp_path psg) c.example_path));
      out "<div class=\"snippet\">%s</div>"
        (esc
           (String.concat "\n" (Pretty.snippet ~context:2 program c.cause_loc)));
      out "</div>")
    pipe.analysis.causes;

  (* wait-state attribution, only when a timeline replay was attached *)
  (match pipe.analysis.Rootcause.waitstate with
  | None -> ()
  | Some ws ->
      out "<h2>Wait states (timeline replay, np=%d)</h2>"
        ws.Waitstate.ws_nprocs;
      let blocked = Array.fold_left ( +. ) 0.0 ws.Waitstate.rank_blocked in
      out "<p class=\"meta\">blocked %.6fs across ranks · attributed %.1f%%</p>"
        blocked
        (100.0 *. Waitstate.attributed_fraction ws);
      out "%s" (svg_bars ~hot:[] ws.Waitstate.rank_blocked);
      out "<table><tr><th>class</th><th>attributed</th></tr>";
      List.iter
        (fun (cls, total) ->
          out "<tr><td>%s</td><td>%.6fs</td></tr>"
            (esc (Waitstate.class_name cls))
            total)
        ws.Waitstate.class_totals;
      out "</table>";
      if ws.Waitstate.entries <> [] then begin
        out "<table><tr><th>vertex</th><th>location</th><th>class</th>\
             <th>time</th><th>ops</th><th>blamed ranks</th>\
             <th>flags</th></tr>";
        let ns_vids =
          List.map
            (fun (f : Nonscalable.finding) -> f.vertex)
            pipe.analysis.nonscalable
        in
        let ab_vids =
          List.map
            (fun (f : Abnormal.finding) -> f.vertex)
            pipe.analysis.abnormal
        in
        List.iteri
          (fun i (e : Waitstate.entry) ->
            if i < 12 then begin
              let label, loc =
                match e.ws_vertex with
                | Some vid ->
                    let v = Psg.vertex psg vid in
                    (Vertex.label v, Loc.to_string v.Vertex.loc)
                | None -> ("(unresolved)", "—")
              in
              let flags vid_opt =
                match vid_opt with
                | None -> "—"
                | Some vid ->
                    let f =
                      (if List.mem vid ns_vids then [ "non-scalable" ] else [])
                      @ if List.mem vid ab_vids then [ "abnormal" ] else []
                    in
                    if f = [] then "—" else String.concat ", " f
              in
              out
                "<tr><td>%s</td><td>%s</td><td>%s</td><td>%.6fs</td>\
                 <td>%d</td><td>%s</td><td>%s</td></tr>"
                (esc label) (esc loc)
                (esc (Waitstate.class_name e.ws_class))
                e.ws_time e.ws_ops
                (esc
                   (String.concat ","
                      (List.map
                         (fun (r, _) -> string_of_int r)
                         (List.filteri (fun i _ -> i < 8) e.ws_culprits))))
                (esc (flags e.ws_vertex))
            end)
          ws.Waitstate.entries;
        out "</table>"
      end;
      if ws.Waitstate.truncated > 0 then
        out "<p class=\"meta\">timeline truncated: %d events dropped · \
             %.6fs unattributed</p>"
          ws.Waitstate.truncated ws.Waitstate.unattributed);

  (* elastic membership timeline & recovery, only under --elastic *)
  List.iter
    (fun (np, (info : Scalana_runtime.Elastic.info)) ->
      let module E = Scalana_runtime.Elastic in
      let ranks = function
        | [] -> "—"
        | rs -> String.concat "," (List.map string_of_int rs)
      in
      out "<h2>Elastic membership timeline &amp; recovery (np=%d)</h2>" np;
      out
        "<p class=\"meta\">effective nprocs %.2f · %d epochs · %d ranks \
         ever member · recovery protocol %.6fs</p>"
        info.E.effective
        (List.length info.E.epoch_infos)
        info.E.n_ranks (E.recovery_seconds info);
      out "<table><tr><th>epoch</th><th>iters</th><th>np</th>\
           <th>members</th><th>span</th></tr>";
      List.iteri
        (fun i (e : E.epoch_info) ->
          out
            "<tr><td>%d</td><td>[%d,%d)</td><td>%d</td><td>%s</td>\
             <td>[%.6fs, %.6fs)</td></tr>"
            i e.E.ei_lo e.E.ei_hi e.E.ei_nprocs
            (esc (E.compress_ranks e.E.ei_members))
            e.E.ei_t0 e.E.ei_t1)
        info.E.epoch_infos;
      out "</table>";
      if info.E.recoveries <> [] then begin
        out "<table><tr><th>recovery at iter</th><th>left</th>\
             <th>joined</th><th>detect</th><th>agree</th>\
             <th>repartition</th><th>%s</th></tr>"
          (esc (Waitstate.class_name Waitstate.Recovery_stall));
        List.iter
          (fun (r : E.recovery) ->
            let stall =
              List.fold_left (fun acc (_, s) -> acc +. s) 0.0 r.E.r_stalls
            in
            out
              "<tr><td>%d</td><td>%s</td><td>%s</td><td>%.6fs</td>\
               <td>%.6fs</td><td>%.6fs</td><td>%.6fs</td></tr>"
              r.E.r_iter
              (esc (ranks r.E.r_left))
              (esc (ranks r.E.r_joined))
              r.E.r_detect r.E.r_agree r.E.r_repartition stall)
          info.E.recoveries;
        out "</table>"
      end)
    pipe.analysis.Rootcause.elastic;

  (* cross-session trend, only when a history ledger was loaded *)
  (match pipe.Pipeline.history with
  | [] -> ()
  | entries ->
      let module H = Scalana_obs.History in
      out "<h2>Trend (history ledger, %d entries)</h2>"
        (List.length entries);
      let first = List.hd entries in
      let latest = List.nth entries (List.length entries - 1) in
      out
        "<p class=\"meta\">commits %s .. %s · sparkline is the fitted \
         log-log slope per tracked vertex, oldest entry first</p>"
        (esc first.H.h_commit) (esc latest.H.h_commit);
      out "<table><tr><th>vertex</th><th>slope trend</th>\
           <th>latest slope</th></tr>";
      List.iter
        (fun key ->
          let series = H.slope_trend entries ~key in
          let latest_slope =
            List.fold_left
              (fun acc v -> match v with Some _ -> v | None -> acc)
              None series
          in
          out "<tr><td>%s</td><td><code>%s</code></td><td>%s</td></tr>"
            (esc key)
            (esc (H.sparkline series))
            (match latest_slope with
            | Some v -> Printf.sprintf "%+.2f" v
            | None -> "—"))
        (H.tracked_vertices entries);
      out "</table>");
  out "</body></html>";
  Buffer.contents buf

let write pipe ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render pipe))
