(** Standalone HTML rendering of a finished pipeline — the Fig. 9 viewer
    as a self-contained file with root causes, backtracking paths, source
    snippets and per-rank SVG bar charts.  A pipeline carrying prior
    history-ledger entries ([pipe.history]) additionally gets a trend
    section with a per-vertex slope sparkline. *)

val render : Pipeline.t -> string
val write : Pipeline.t -> path:string -> unit
