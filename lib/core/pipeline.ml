(* ScalAna-detect: the end-to-end pipeline.

   Static analysis once, profiled runs at several job scales, PPG
   construction, problematic-vertex detection and backtracking root-cause
   identification, and the final report.  The detection step is timed
   (Table IV's post-mortem detection cost).

   The pipeline degrades instead of dying: damaged artifacts are
   salvaged, fault-killed runs retried with fresh draws and analyzed
   over their surviving ranks, and everything lost is accounted in a
   {!Scalana_detect.Quality.t} that prepends a data-quality section to
   the report.  With clean inputs the quality record is
   {!Scalana_detect.Quality.clean} and the report is byte-identical to a
   pipeline without the resilience layer. *)

open Scalana_mlang
open Scalana_runtime
open Scalana_ppg
open Scalana_detect

type t = {
  static : Static.t;
  runs : (int * Prof.run) list;
  crossscale : Crossscale.t;
  analysis : Rootcause.analysis;
  lint : Lint.finding list;  (* static scaling-loss predictions *)
  quality : Quality.t;  (* what degraded inputs lost (clean = nothing) *)
  detect_seconds : float;
  phase_costs : (string * int * float) list;
      (* per-phase self-observability summary; [] unless tracing is on *)
  timeline : Scalana_profile.Timeline.t option;
      (* per-rank timeline at the largest scale; None unless requested *)
  history : Scalana_obs.History.entry list;
      (* prior ledger entries behind the report's trend section; []
         unless the caller loaded a ledger (--history) *)
  report : string;
}

(* Re-simulate one scale with the timeline recorder attached next to the
   regular profiler.  The profiler's hooks charge the same overhead onto
   the simulated clocks as they did during the stored profiled run, and
   the recorder charges none, so the captured timeline reproduces the
   session's clocks exactly (for indirect-call programs the re-run sees
   the fully refined graph, which the earliest stored run may not have).
   The shared static artifact is not mutated: no refinement splicing, no
   poison. *)
let rank_timeline ?(config = Config.default) ?(cost = Costmodel.default)
    ?(net = Network.default) ?(inject = Inject.empty) ?(params = [])
    (static : Static.t) ~nprocs =
  Scalana_obs.Obs.with_span
    ~args:[ ("nprocs", string_of_int nprocs) ]
    "pipeline.rank_timeline"
  @@ fun () ->
  let profiler =
    Scalana_profile.Profiler.create
      ~config:(Config.profiler_config config)
      ~index:static.Static.index ~nprocs ()
  in
  let recorder =
    Scalana_profile.Timeline.create
      ~config:(Config.timeline_config config)
      ~index:static.Static.index ~nprocs ()
  in
  let cfg =
    Exec.config ~nprocs ~params ~cost ~net ~inject
      ~tools:
        [
          Scalana_profile.Profiler.tool profiler;
          Scalana_profile.Timeline.tool recorder;
        ]
      ()
  in
  ignore (Exec.run ~cfg static.Static.program : Exec.result);
  Scalana_profile.Timeline.capture recorder

(* Everything the inputs lost, in one record: artifact damage handed in
   by the loader, runs that lost ranks or needed retries, scales that
   never ran, and the analysis' own quarantine counts. *)
let assemble_quality ~artifact_issues ~dropped_scales runs
    (analysis : Rootcause.analysis) =
  let run_issues =
    List.filter_map
      (fun (n, (r : Prof.run)) ->
        let killed = List.sort compare r.Prof.result.Exec.killed_ranks in
        let stranded = List.sort compare r.Prof.result.Exec.stranded_ranks in
        if killed <> [] || stranded <> [] || r.Prof.attempts > 1 then
          let left, joined, epochs =
            match r.Prof.elastic with
            | None -> ([], [], 0)
            | Some (i : Elastic.info) ->
                ( List.concat_map
                    (fun (rc : Elastic.recovery) -> rc.Elastic.r_left)
                    i.Elastic.recoveries,
                  List.concat_map
                    (fun (rc : Elastic.recovery) -> rc.Elastic.r_joined)
                    i.Elastic.recoveries,
                  List.length i.Elastic.epoch_infos )
          in
          Some
            {
              Quality.ri_nprocs = n;
              ri_killed = killed;
              ri_stranded = stranded;
              ri_attempts = r.Prof.attempts;
              ri_left = List.sort compare left;
              ri_joined = List.sort compare joined;
              ri_epochs = epochs;
              ri_backoff =
                List.fold_left ( +. ) 0.0 r.Prof.retry_backoff;
            }
        else None)
      runs
  in
  let rank_coverage =
    List.fold_left
      (fun acc (_, (r : Prof.run)) ->
        let total = r.Prof.nprocs in
        let lost =
          List.length r.Prof.result.Exec.killed_ranks
          + List.length r.Prof.result.Exec.stranded_ranks
        in
        if total > 0 then min acc (float_of_int (total - lost) /. float_of_int total)
        else acc)
      1.0 runs
  in
  {
    Quality.artifact_issues;
    run_issues;
    dropped_scales = List.sort compare dropped_scales;
    quarantined_values = analysis.Rootcause.quarantined_values;
    insufficient_vertices = List.length analysis.Rootcause.insufficient;
    rank_coverage;
  }

(* Run detection over already-collected profiles, fanning the PPG builds
   and per-vertex fits out over [pool]. *)
let detect_with ?(config = Config.default) ?pool
    ?(artifact_issues : Quality.artifact_issue list = [])
    ?(dropped_scales = []) ?timeline ?(history = []) (static : Static.t)
    (runs : (int * Prof.run) list) =
  let t0 = Unix.gettimeofday () in
  let crossscale, analysis =
    Scalana_obs.Obs.with_span "pipeline.detect" @@ fun () ->
    let crossscale =
      Crossscale.create ?pool ~psg:(Static.psg static)
        (List.map (fun (n, (r : Prof.run)) -> (n, r.Prof.data)) runs)
    in
    let waitstate =
      Option.map
        (fun tl ->
          Scalana_obs.Obs.with_span "waitstate.analyze" @@ fun () ->
          Waitstate.analyze tl)
        timeline
    in
    let analysis =
      Rootcause.analyze ~ns_config:(Config.ns_config config)
        ~ab_config:(Config.ab_config config)
        ~bt_config:(Config.bt_config config) ?pool ?waitstate crossscale
    in
    (* the static-model cross-check re-derives the symbolic
       communication model at exactly the scales that were profiled and
       fits it with the same log-log estimator; off by default so the
       analysis (and the report below) is unchanged *)
    let analysis =
      if config.Config.static_crosscheck then
        let scales = List.map fst runs in
        {
          analysis with
          Rootcause.crosscheck =
            Some
              (Crosscheck.run ~psg:(Static.psg static)
                 ~program:static.Static.program ~scales
                 analysis.Rootcause.nonscalable);
        }
      else analysis
    in
    (* elastic membership/recovery summaries travel on the runs; attach
       them only under --elastic, so default reports are unchanged even
       for sessions that were profiled elastically *)
    let analysis =
      if config.Config.elastic then
        {
          analysis with
          Rootcause.elastic =
            List.filter_map
              (fun (n, (r : Prof.run)) ->
                Option.map (fun i -> (n, i)) r.Prof.elastic)
              runs;
        }
      else analysis
    in
    (crossscale, analysis)
  in
  let detect_seconds = Unix.gettimeofday () -. t0 in
  let lint =
    Scalana_obs.Obs.with_span "lint.run" (fun () ->
        Lint.run static.Static.program)
  in
  let quality = assemble_quality ~artifact_issues ~dropped_scales runs analysis in
  (* summarized before rendering, so the report's own cost section covers
     every phase up to (but not including) the rendering itself *)
  let phase_costs =
    if Scalana_obs.Obs.enabled () then Scalana_obs.Obs.phase_summary () else []
  in
  let report =
    Scalana_obs.Obs.with_span "report.render" @@ fun () ->
    Report.render ~program:static.Static.program
      ~predicted_locs:(List.map (fun (f : Lint.finding) -> f.Lint.loc) lint)
      ~quality ~phase_costs ~history
      ~ppg:(snd (Crossscale.largest crossscale))
      ~psg:(Static.psg static) analysis
  in
  {
    static;
    runs;
    crossscale;
    analysis;
    lint;
    quality;
    detect_seconds;
    phase_costs;
    timeline;
    history;
    report;
  }

let detect ?(config = Config.default) ?artifact_issues ?dropped_scales
    ?timeline ?history (static : Static.t) (runs : (int * Prof.run) list) =
  Pool.with_pool ~size:config.Config.analysis_domains (fun pool ->
      detect_with ~config ?pool ?artifact_issues ?dropped_scales ?timeline
        ?history static runs)

(* Detection over a loaded session: salvage issues found by the artifact
   reader become data-quality entries. *)
let detect_session ?config ?timeline ?history (session : Artifact.session) =
  Scalana_obs.Obs.with_span "pipeline.detect_session" @@ fun () ->
  let artifact_issues =
    List.map
      (fun (i : Artifact.issue) ->
        {
          Quality.ai_path = i.Artifact.issue_path;
          ai_kept = i.Artifact.kept;
          ai_detail = Artifact.error_detail i.Artifact.error;
        })
      session.Artifact.issues
  in
  detect ?config ~artifact_issues ?timeline ?history session.Artifact.static
    session.Artifact.runs

(* The per-scale profiled runs are independent — and may therefore fan
   out — only when nothing couples them: indirect-call programs refine
   the shared PSG/index as they run (each scale profiles against the
   graph refined by its predecessors), and injection rules carry `every`
   counters across runs.  Both are detected here and keep the run stage
   sequential; everything downstream still parallelizes.  Fault plans do
   not couple runs: every draw is keyed on (seed, nprocs, attempt). *)
let runs_independent ~inject (program : Ast.program) =
  Inject.is_empty inject && not (Ast.has_icalls program)

let run ?(config = Config.default) ?(cost = Costmodel.default)
    ?(net = Network.default) ?(inject = Inject.empty)
    ?(faults = Faults.empty) ?(params = []) ?(scales = [ 4; 8; 16; 32 ])
    ?(timeline = false) ?elastic (program : Ast.program) =
  Scalana_obs.Obs.with_span
    ~args:[ ("program", program.Ast.pname) ]
    "pipeline.run"
  @@ fun () ->
  Pool.with_pool ~size:config.Config.analysis_domains (fun pool ->
      let static =
        Scalana_obs.Obs.with_span "static.analyze" @@ fun () ->
        Static.analyze ~max_loop_depth:config.Config.max_loop_depth ?pool
          program
      in
      let dropped_scales, kept_scales =
        List.partition (fun n -> Faults.drops_scale faults ~nprocs:n) scales
      in
      let one nprocs =
        ( nprocs,
          match elastic with
          | Some plan ->
              (* an elastic session replaces the single fixed run;
                 faults/injection act within each epoch's own draws *)
              Prof.run_elastic ~config ~cost ~net ~params ~plan static
                ~nprocs ()
          | None ->
              Prof.run_with_retry ~retries:config.Config.max_run_retries
                ~config ~cost ~net ~inject ~faults ~params static ~nprocs () )
      in
      let runs =
        Scalana_obs.Obs.with_span
          ~args:[ ("scales", string_of_int (List.length kept_scales)) ]
          "pipeline.profile_runs"
        @@ fun () ->
        if runs_independent ~inject program then
          Pool.parallel_map ?pool one kept_scales
        else List.map one kept_scales
      in
      let tl =
        if timeline && kept_scales <> [] then
          Some
            (rank_timeline ~config ~cost ~net ~inject ~params static
               ~nprocs:(List.fold_left max 0 kept_scales))
        else None
      in
      detect_with ~config ?pool ~dropped_scales ?timeline:tl static runs)

(* Did anything degrade this pipeline's inputs? *)
let degraded t = not (Quality.is_clean t.quality)

(* Bytes held by the columnar PPG stores across every profiled scale —
   the analysis working set the detectors scan (the raw per-rank
   profiles are only read once, at build time). *)
let ppg_storage_bytes t =
  List.fold_left
    (fun acc (_, ppg) -> acc + Ppg.storage_bytes ppg)
    0 t.crossscale.Crossscale.runs

(* The session summarised for cross-session diffing: per-vertex slopes,
   times, waits and coverage, self-contained (no session access needed
   to compare two of them).  [strategy] defaults to the detector's
   default aggregation. *)
let diff_summary ?label ?strategy t =
  Diff.summarize ?label ?strategy ~psg:(Static.psg t.static)
    ~crossscale:t.crossscale ~quality:t.quality
    ?waitstate:t.analysis.Rootcause.waitstate
    ~program:t.static.Static.program.Ast.pname ()

(* One commit-stamped ledger row for this detect run: the top-k
   non-scalable slopes keyed the way Diff aligns vertices, wait-class
   totals when a timeline replay ran (the summed sampled wait
   otherwise), and the quality flags.  [time]/[commit] default to now /
   the checked-out commit; tests pass both for determinism. *)
let history_entry ?time ?commit ?(label = "") t =
  let module H = Scalana_obs.History in
  let psg = Static.psg t.static in
  let slopes =
    List.map
      (fun (f : Nonscalable.finding) ->
        ( Diff.key_string (Diff.key_of_vertex psg f.Nonscalable.vertex),
          f.Nonscalable.slope ))
      t.analysis.Rootcause.nonscalable
  in
  let waits =
    match t.analysis.Rootcause.waitstate with
    | Some ws ->
        List.map
          (fun (c, total) -> (Waitstate.class_name c, total))
          ws.Waitstate.class_totals
    | None ->
        let _, largest = Crossscale.largest t.crossscale in
        let total =
          List.fold_left
            (fun acc v -> acc +. Ppg.total_wait largest ~vertex:v)
            0.0
            (Ppg.touched_vertices largest)
        in
        [ ("sampled", total) ]
  in
  {
    H.h_time = (match time with Some v -> v | None -> Unix.gettimeofday ());
    h_commit = (match commit with Some c -> c | None -> H.current_commit ());
    h_label = label;
    h_program = t.static.Static.program.Ast.pname;
    h_scales = Crossscale.scales t.crossscale;
    h_slopes = slopes;
    h_waits = waits;
    h_degraded = degraded t;
    h_coverage = t.quality.Quality.rank_coverage;
    h_detect_seconds = t.detect_seconds;
  }

(* Locations of the reported root causes, best first. *)
let root_cause_locs t =
  List.map (fun (c : Rootcause.cause) -> c.cause_loc) t.analysis.causes

let root_cause_labels t =
  List.map (fun (c : Rootcause.cause) -> c.cause_label) t.analysis.causes
