(* ScalAna-detect: the end-to-end pipeline.

   Static analysis once, profiled runs at several job scales, PPG
   construction, problematic-vertex detection and backtracking root-cause
   identification, and the final report.  The detection step is timed
   (Table IV's post-mortem detection cost). *)

open Scalana_mlang
open Scalana_runtime
open Scalana_ppg
open Scalana_detect

type t = {
  static : Static.t;
  runs : (int * Prof.run) list;
  crossscale : Crossscale.t;
  analysis : Rootcause.analysis;
  lint : Lint.finding list;  (* static scaling-loss predictions *)
  detect_seconds : float;
  report : string;
}

(* Run detection over already-collected profiles, fanning the PPG builds
   and per-vertex fits out over [pool]. *)
let detect_with ?(config = Config.default) ?pool (static : Static.t)
    (runs : (int * Prof.run) list) =
  let t0 = Unix.gettimeofday () in
  let crossscale =
    Crossscale.create ?pool ~psg:(Static.psg static)
      (List.map (fun (n, (r : Prof.run)) -> (n, r.Prof.data)) runs)
  in
  let analysis =
    Rootcause.analyze ~ns_config:(Config.ns_config config)
      ~ab_config:(Config.ab_config config)
      ~bt_config:(Config.bt_config config) ?pool crossscale
  in
  let detect_seconds = Unix.gettimeofday () -. t0 in
  let lint = Lint.run static.Static.program in
  let report =
    Report.render ~program:static.Static.program
      ~predicted_locs:(List.map (fun (f : Lint.finding) -> f.Lint.loc) lint)
      ~psg:(Static.psg static) analysis
  in
  { static; runs; crossscale; analysis; lint; detect_seconds; report }

let detect ?(config = Config.default) (static : Static.t)
    (runs : (int * Prof.run) list) =
  Pool.with_pool ~size:config.Config.analysis_domains (fun pool ->
      detect_with ~config ?pool static runs)

(* The per-scale profiled runs are independent — and may therefore fan
   out — only when nothing couples them: indirect-call programs refine
   the shared PSG/index as they run (each scale profiles against the
   graph refined by its predecessors), and injection rules carry `every`
   counters across runs.  Both are detected here and keep the run stage
   sequential; everything downstream still parallelizes. *)
let runs_independent ~inject (program : Ast.program) =
  Inject.is_empty inject && not (Ast.has_icalls program)

let run ?(config = Config.default) ?(cost = Costmodel.default)
    ?(net = Network.default) ?(inject = Inject.empty) ?(params = [])
    ?(scales = [ 4; 8; 16; 32 ]) (program : Ast.program) =
  Pool.with_pool ~size:config.Config.analysis_domains (fun pool ->
      let static =
        Static.analyze ~max_loop_depth:config.Config.max_loop_depth ?pool
          program
      in
      let one nprocs =
        (nprocs, Prof.run ~config ~cost ~net ~inject ~params static ~nprocs ())
      in
      let runs =
        if runs_independent ~inject program then
          Pool.parallel_map ?pool one scales
        else List.map one scales
      in
      detect_with ~config ?pool static runs)

(* Locations of the reported root causes, best first. *)
let root_cause_locs t =
  List.map (fun (c : Rootcause.cause) -> c.cause_loc) t.analysis.causes

let root_cause_labels t =
  List.map (fun (c : Rootcause.cause) -> c.cause_label) t.analysis.causes
