(** ScalAna-detect: the end-to-end pipeline — static analysis, profiled
    runs at several job scales, PPG construction, detection and the
    report; the detection step is timed (Table IV).

    The pipeline degrades instead of dying: salvaged artifacts,
    fault-killed runs and poisoned metrics are analyzed over what
    survives, with the loss quantified in [quality].  Clean inputs yield
    {!Scalana_detect.Quality.clean} and a report byte-identical to a
    pipeline without the resilience layer. *)

open Scalana_mlang
open Scalana_runtime
open Scalana_ppg
open Scalana_detect

type t = {
  static : Static.t;
  runs : (int * Prof.run) list;
  crossscale : Crossscale.t;
  analysis : Rootcause.analysis;
  lint : Lint.finding list;
      (** static scaling-loss predictions; non-scalable vertices they
          anticipate are marked in the report *)
  quality : Quality.t;
      (** what degraded inputs lost ({!Scalana_detect.Quality.clean}
          when nothing did) *)
  detect_seconds : float;
  phase_costs : (string * int * float) list;
      (** per-phase self-observability summary [(phase, calls, total
          seconds)], sorted by total descending — filled only while
          {!Scalana_obs.Obs} collection is enabled (e.g. under
          [scalana-detect --trace]); [[]] otherwise, and then the report
          is byte-identical to a build without the observability layer *)
  timeline : Scalana_profile.Timeline.t option;
      (** per-rank timeline captured at the largest analyzed scale;
          [None] unless requested (e.g. [run ~timeline:true] or
          [scalana-detect --wait-states]), and then the report carries a
          wait-state section *)
  history : Scalana_obs.History.entry list;
      (** prior ledger entries behind the report's trend section —
          loaded by the caller (e.g. [scalana-detect --history]); [[]]
          (the default) leaves the report byte-identical *)
  report : string;
}

(** Re-simulate one scale with the rank-timeline recorder attached next
    to the regular profiler.  The recorder charges zero overhead, so the
    captured clocks reproduce a stored profiled run of the same static
    artifact at the same scale.  The static artifact is not mutated. *)
val rank_timeline :
  ?config:Config.t ->
  ?cost:Costmodel.t ->
  ?net:Network.t ->
  ?inject:Inject.t ->
  ?params:(string * int) list ->
  Static.t ->
  nprocs:int ->
  Scalana_profile.Timeline.t

(** Detection over already-collected profiles.  The PPG builds and
    per-vertex fits fan out over [config.analysis_domains] worker
    domains; output is identical to a sequential run.  [artifact_issues]
    (damage found while loading) and [dropped_scales] (scales that never
    ran) flow into [quality].  [timeline] attaches a captured rank
    timeline: its wait-state replay feeds the analysis (per-cause
    evidence) and the report.  [history] (prior ledger entries) adds
    the trend section to the report. *)
val detect :
  ?config:Config.t ->
  ?artifact_issues:Quality.artifact_issue list ->
  ?dropped_scales:int list ->
  ?timeline:Scalana_profile.Timeline.t ->
  ?history:Scalana_obs.History.entry list ->
  Static.t ->
  (int * Prof.run) list ->
  t

(** Detection over a loaded session; salvage issues recorded by
    {!Artifact.load_session} become data-quality entries. *)
val detect_session :
  ?config:Config.t -> ?timeline:Scalana_profile.Timeline.t ->
  ?history:Scalana_obs.History.entry list ->
  Artifact.session -> t

(** End to end: static analysis, one profiled run per scale, detection.
    With [config.analysis_domains >= 2] the local-PSG builds, the
    per-scale profiled runs (when independent: no injection rules, no
    indirect calls), the PPG builds and the log-log fits all fan out
    across domains, and the result — report included — is byte-identical
    to the sequential pipeline.  A [faults] plan injects deterministic
    failures: dropped scales never run, fault-killed runs get up to
    [config.max_run_retries] fresh attempts, and whatever still degrades
    is analyzed over the surviving ranks.  [timeline] additionally
    captures a rank timeline at the largest kept scale and appends the
    wait-state section to the report (default [false]: the report stays
    byte-identical to a build without the timeline layer).  [elastic]
    replaces each scale's fixed run with an elastic session driven by
    the plan ({!Prof.run_elastic}); pair it with
    [config.elastic = true] to render the membership-timeline and
    recovery sections. *)
val run :
  ?config:Config.t ->
  ?cost:Costmodel.t ->
  ?net:Network.t ->
  ?inject:Inject.t ->
  ?faults:Faults.plan ->
  ?params:(string * int) list ->
  ?scales:int list ->
  ?timeline:bool ->
  ?elastic:Elastic.plan ->
  Ast.program ->
  t

(** [not (Quality.is_clean t.quality)]. *)
val degraded : t -> bool

(** Bytes held by the columnar PPG stores across every profiled scale —
    the analysis working set the detectors scan. *)
val ppg_storage_bytes : t -> int

(** The analysed session summarised for cross-session diffing
    ({!Scalana_detect.Diff}): per-vertex slopes recomputed for every
    touched vertex, plus times, waits and coverage — self-contained,
    so two summaries compare without re-opening the sessions.
    [strategy] defaults to the detector's default aggregation. *)
val diff_summary :
  ?label:string -> ?strategy:Aggregate.strategy -> t -> Diff.summary

(** One commit-stamped ledger row for this detect run: label, scales,
    the top-k non-scalable slopes (keyed as {!Scalana_detect.Diff}
    aligns vertices), wait-class totals (the summed sampled wait when
    no timeline replay ran) and quality flags.  [time] and [commit]
    default to now and the checked-out commit — pass both for
    deterministic output. *)
val history_entry :
  ?time:float ->
  ?commit:string ->
  ?label:string ->
  t ->
  Scalana_obs.History.entry

val root_cause_locs : t -> Loc.t list
val root_cause_labels : t -> string list
