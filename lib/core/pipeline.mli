(** ScalAna-detect: the end-to-end pipeline — static analysis, profiled
    runs at several job scales, PPG construction, detection and the
    report; the detection step is timed (Table IV). *)

open Scalana_mlang
open Scalana_runtime
open Scalana_ppg
open Scalana_detect

type t = {
  static : Static.t;
  runs : (int * Prof.run) list;
  crossscale : Crossscale.t;
  analysis : Rootcause.analysis;
  lint : Lint.finding list;
      (** static scaling-loss predictions; non-scalable vertices they
          anticipate are marked in the report *)
  detect_seconds : float;
  report : string;
}

(** Detection over already-collected profiles.  The PPG builds and
    per-vertex fits fan out over [config.analysis_domains] worker
    domains; output is identical to a sequential run. *)
val detect : ?config:Config.t -> Static.t -> (int * Prof.run) list -> t

(** End to end: static analysis, one profiled run per scale, detection.
    With [config.analysis_domains >= 2] the local-PSG builds, the
    per-scale profiled runs (when independent: no injection rules, no
    indirect calls), the PPG builds and the log-log fits all fan out
    across domains, and the result — report included — is byte-identical
    to the sequential pipeline. *)
val run :
  ?config:Config.t ->
  ?cost:Costmodel.t ->
  ?net:Network.t ->
  ?inject:Inject.t ->
  ?params:(string * int) list ->
  ?scales:int list ->
  Ast.program ->
  t

val root_cause_locs : t -> Loc.t list
val root_cause_labels : t -> string list
