(* The domain pool lives in its own bottom-of-the-stack library
   (Scalana_pool) so that psg/ppg/detect can use it too; this alias puts
   it at its natural user-facing place, [Scalana.Pool]. *)

include Scalana_pool.Pool
