(** Worker-domain pool for the parallel analysis stages — the facade's
    alias of {!Scalana_pool.Pool}, which lives at the bottom of the
    library stack so the psg/ppg/detect layers can share it. *)

include module type of struct
  include Scalana_pool.Pool
end
