(* ScalAna-prof: run an instrumented program at one job scale.

   Runs the simulator with the ScalAna tool attached, then applies the
   runtime refinements to the static artifact: indirect-call resolutions
   are spliced into the contracted PSG and indexed, so later runs and the
   detector see the refined graph (Section III-B3).

   Faults (a {!Scalana_runtime.Faults.plan}) are armed per attempt:
   rank kills and clock skew act inside the simulator, metric poisoning
   corrupts the recorded vectors afterwards.  [run_with_retry] re-draws
   probabilistic faults with a fresh attempt number, bounding how many
   times a killed run is re-profiled. *)

open Scalana_psg
open Scalana_runtime
open Scalana_profile

type run = {
  nprocs : int;
  data : Profdata.t;
  result : Exec.result;
  baseline_elapsed : float option;  (* same run, no tools *)
  attempts : int;  (* profiling attempts consumed (>= 1) *)
}

let overhead_percent r =
  match r.baseline_elapsed with
  | Some base when base > 0.0 ->
      Some (100.0 *. (r.result.Exec.elapsed -. base) /. base)
  | _ -> None

(* A run degraded when any rank died or was left blocked by a dead peer. *)
let degraded r =
  r.result.Exec.killed_ranks <> [] || r.result.Exec.stranded_ranks <> []

let apply_refinements (static : Static.t) (data : Profdata.t) =
  List.iter
    (fun (res : Profdata.icall_resolution) ->
      match
        (Psg.vertex_opt (Static.psg static) res.callsite_vertex
          : Vertex.t option)
      with
      | Some { Vertex.kind = Vertex.Callsite { callee = None; _ }; _ } -> (
          match
            Inter.refine_indirect (Static.psg static) ~locals:static.locals
              ~callsite:res.callsite_vertex ~target:res.target
          with
          | Some sub_root ->
              Index.index_contracted_subtree static.index sub_root
          | None -> ())
      | Some _ | None -> ())
    (Profdata.icall_resolutions data)

(* Corrupt recorded vectors per the armed poison faults: a NaN or a
   negative time where a sane value stood, exactly what a glitching
   counter hands a real profiler. *)
let apply_poison armed (data : Profdata.t) =
  if not (Faults.is_none armed) then
    Array.iteri
      (fun rank per_rank ->
        Hashtbl.iter
          (fun vertex (vec : Perfvec.t) ->
            match Faults.poison armed ~rank ~vertex with
            | Some `Nan -> vec.Perfvec.time <- Float.nan
            | Some `Negative ->
                vec.Perfvec.time <- -.Float.abs vec.Perfvec.time -. 1e-9
            | None -> ())
          per_rank)
      data.Profdata.vectors

let run ?(config = Config.default) ?(cost = Costmodel.default)
    ?(net = Network.default) ?(inject = Inject.empty)
    ?(faults = Faults.empty) ?(attempt = 1) ?(params = [])
    ?(measure_overhead = false) ?(extra_tools = []) (static : Static.t)
    ~nprocs () =
  Scalana_obs.Obs.with_span
    ~args:
      [ ("nprocs", string_of_int nprocs); ("attempt", string_of_int attempt) ]
    "prof.run"
  @@ fun () ->
  let armed = Faults.arm faults ~nprocs ~attempt in
  let profiler =
    Profiler.create
      ~config:(Config.profiler_config config)
      ~index:static.Static.index ~nprocs ()
  in
  let mk_cfg ~faults tools =
    Exec.config ~nprocs ~params ~cost ~net ~inject ~faults ~tools ()
  in
  let baseline_elapsed =
    if measure_overhead then begin
      (* the baseline measures tool overhead, not fault behavior *)
      let r =
        Exec.run ~cfg:(mk_cfg ~faults:Faults.none []) static.Static.program
      in
      Some r.Exec.elapsed
    end
    else None
  in
  let result =
    Exec.run
      ~cfg:(mk_cfg ~faults:armed (Profiler.tool profiler :: extra_tools))
      static.Static.program
  in
  let data = Profiler.data profiler in
  apply_poison armed data;
  apply_refinements static data;
  { nprocs; data; result; baseline_elapsed; attempts = attempt }

(* Profile a scale, re-drawing probabilistic faults on each retry: a run
   that lost ranks is attempted again with a fresh attempt number (same
   plan seed, so the whole sequence is reproducible) up to [retries]
   extra times.  The last attempt is returned even if still degraded —
   the detector then works with the surviving ranks. *)
let run_with_retry ?(retries = 0) ?config ?cost ?net ?inject
    ?(faults = Faults.empty) ?params ?measure_overhead ?extra_tools static
    ~nprocs () =
  let rec go attempt =
    let r =
      run ?config ?cost ?net ?inject ~faults ~attempt ?params
        ?measure_overhead ?extra_tools static ~nprocs ()
    in
    if degraded r && attempt <= retries then begin
      Scalana_obs.Obs.Metrics.incr "prof.retries";
      go (attempt + 1)
    end
    else r
  in
  go 1
