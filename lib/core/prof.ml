(* ScalAna-prof: run an instrumented program at one job scale.

   Runs the simulator with the ScalAna tool attached, then applies the
   runtime refinements to the static artifact: indirect-call resolutions
   are spliced into the contracted PSG and indexed, so later runs and the
   detector see the refined graph (Section III-B3).

   Faults (a {!Scalana_runtime.Faults.plan}) are armed per attempt:
   rank kills and clock skew act inside the simulator, metric poisoning
   corrupts the recorded vectors afterwards.  [run_with_retry] re-draws
   probabilistic faults with a fresh attempt number, bounding how many
   times a killed run is re-profiled. *)

open Scalana_psg
open Scalana_runtime
open Scalana_profile

type run = {
  nprocs : int;
  data : Profdata.t;
  result : Exec.result;
  baseline_elapsed : float option;  (* same run, no tools *)
  attempts : int;  (* profiling attempts consumed (>= 1) *)
  retry_backoff : float list;  (* backoff waited before each retry *)
  elastic : Elastic.info option;  (* set by run_elastic *)
}

let overhead_percent r =
  match r.baseline_elapsed with
  | Some base when base > 0.0 ->
      Some (100.0 *. (r.result.Exec.elapsed -. base) /. base)
  | _ -> None

(* A run degraded when any rank died or was left blocked by a dead peer. *)
let degraded r =
  r.result.Exec.killed_ranks <> [] || r.result.Exec.stranded_ranks <> []

let apply_refinements (static : Static.t) (data : Profdata.t) =
  List.iter
    (fun (res : Profdata.icall_resolution) ->
      match
        (Psg.vertex_opt (Static.psg static) res.callsite_vertex
          : Vertex.t option)
      with
      | Some { Vertex.kind = Vertex.Callsite { callee = None; _ }; _ } -> (
          match
            Inter.refine_indirect (Static.psg static) ~locals:static.locals
              ~callsite:res.callsite_vertex ~target:res.target
          with
          | Some sub_root ->
              Index.index_contracted_subtree static.index sub_root
          | None -> ())
      | Some _ | None -> ())
    (Profdata.icall_resolutions data)

(* Corrupt recorded vectors per the armed poison faults: a NaN or a
   negative time where a sane value stood, exactly what a glitching
   counter hands a real profiler. *)
let apply_poison armed (data : Profdata.t) =
  if not (Faults.is_none armed) then
    Array.iteri
      (fun rank per_rank ->
        Hashtbl.iter
          (fun vertex (vec : Perfvec.t) ->
            match Faults.poison armed ~rank ~vertex with
            | Some `Nan -> vec.Perfvec.time <- Float.nan
            | Some `Negative ->
                vec.Perfvec.time <- -.Float.abs vec.Perfvec.time -. 1e-9
            | None -> ())
          per_rank)
      data.Profdata.vectors

let run ?(config = Config.default) ?(cost = Costmodel.default)
    ?(net = Network.default) ?(inject = Inject.empty)
    ?(faults = Faults.empty) ?(attempt = 1) ?(params = [])
    ?(measure_overhead = false) ?(extra_tools = []) (static : Static.t)
    ~nprocs () =
  Scalana_obs.Obs.with_span
    ~args:
      [ ("nprocs", string_of_int nprocs); ("attempt", string_of_int attempt) ]
    "prof.run"
  @@ fun () ->
  let armed = Faults.arm faults ~nprocs ~attempt in
  let profiler =
    Profiler.create
      ~config:(Config.profiler_config config)
      ~index:static.Static.index ~nprocs ()
  in
  let mk_cfg ~faults tools =
    Exec.config ~nprocs ~params ~cost ~net ~inject ~faults ~tools ()
  in
  let baseline_elapsed =
    if measure_overhead then begin
      (* the baseline measures tool overhead, not fault behavior *)
      let r =
        Exec.run ~cfg:(mk_cfg ~faults:Faults.none []) static.Static.program
      in
      Some r.Exec.elapsed
    end
    else None
  in
  let result =
    Exec.run
      ~cfg:(mk_cfg ~faults:armed (Profiler.tool profiler :: extra_tools))
      static.Static.program
  in
  let data = Profiler.data profiler in
  apply_poison armed data;
  apply_refinements static data;
  {
    nprocs;
    data;
    result;
    baseline_elapsed;
    attempts = attempt;
    retry_backoff = [];
    elastic = None;
  }

(* Profile a scale, re-drawing probabilistic faults on each retry: a run
   that lost ranks is attempted again with a fresh attempt number (same
   plan seed, so the whole sequence is reproducible) up to [retries]
   extra times.  The last attempt is returned even if still degraded —
   the detector then works with the surviving ranks. *)
(* Deterministic exponential backoff before retry [attempt + 1]: the
   schedule a production launcher would sleep out between resubmissions
   (simulated — nothing actually sleeps).  Recorded per attempt on the
   run and exported so a retried session's wall-clock budget is
   explainable from its report alone. *)
let backoff_base = 0.05

let backoff_delay ~attempt = backoff_base *. (2.0 ** float_of_int (attempt - 1))

let run_with_retry ?(retries = 0) ?config ?cost ?net ?inject
    ?(faults = Faults.empty) ?params ?measure_overhead ?extra_tools static
    ~nprocs () =
  let rec go ~delays attempt =
    let r =
      run ?config ?cost ?net ?inject ~faults ~attempt ?params
        ?measure_overhead ?extra_tools static ~nprocs ()
    in
    if degraded r && attempt <= retries then begin
      Scalana_obs.Obs.Metrics.incr "prof.retries";
      let d = backoff_delay ~attempt in
      Scalana_obs.Obs.Metrics.observe "prof.retry_backoff_seconds" d;
      go ~delays:(d :: delays) (attempt + 1)
    end
    else { r with retry_backoff = List.rev delays }
  in
  go ~delays:[] 1

(* One elastic session: a sequence of membership epochs, each its own
   simulator run over the epoch's iteration slice, stitched by the
   recovery protocol at every boundary.  Ranks keep global identities
   (epoch-local rank [l] is global [members.(l)]), so each epoch's
   profile folds into one per-global-rank artifact; the merged run
   carries [effective_nprocs] (time-weighted membership) for the fits
   and the full membership/recovery summary for reporting.  Departed
   ranks surface as [killed_ranks], so the session is {!degraded} and
   the standard exit-code/data-quality paths apply unchanged. *)
let run_elastic ?(config = Config.default) ?(cost = Costmodel.default)
    ?(net = Network.default) ?(params = []) ~(plan : Elastic.plan)
    (static : Static.t) ~nprocs () =
  Scalana_obs.Obs.with_span
    ~args:[ ("nprocs", string_of_int nprocs) ]
    "prof.run_elastic"
  @@ fun () ->
  let epochs, n_ranks = Elastic.membership plan ~nprocs in
  let gdata = Profdata.create ~nprocs:n_ranks in
  let gfinish = Array.make n_ranks 0.0 in
  let gcomp = Array.make n_ranks 0.0 in
  let gmpi = Array.make n_ranks 0.0 in
  let gwait = Array.make n_ranks 0.0 in
  let gpmu = Array.make n_ranks Pmu.zero in
  let events = ref 0 and messages = ref 0 in
  let recoveries = ref [] and epoch_infos = ref [] in
  let all_left = ref [] in
  let prev_members = ref [||] in
  let clock = ref 0.0 in
  List.iter
    (fun (e : Elastic.epoch) ->
      if e.Elastic.e_left <> [] || e.Elastic.e_joined <> [] then begin
        let finish =
          Array.to_list !prev_members
          |> List.map (fun g -> (g, gfinish.(g)))
        in
        let r =
          Elastic.recover plan ~cost ~net ~nprocs ~iter:e.Elastic.e_lo
            ~left:e.Elastic.e_left ~joined:e.Elastic.e_joined
            ~members:e.Elastic.e_members ~finish
        in
        (* the stall is wait time charged to the surviving ranks *)
        List.iter
          (fun (g, s) ->
            gwait.(g) <- gwait.(g) +. s;
            gfinish.(g) <- r.Elastic.r_end)
          r.Elastic.r_stalls;
        all_left := !all_left @ e.Elastic.e_left;
        recoveries := r :: !recoveries;
        clock := r.Elastic.r_end
      end;
      let enp = Array.length e.Elastic.e_members in
      let profiler =
        Profiler.create
          ~config:(Config.profiler_config config)
          ~index:static.Static.index ~nprocs:enp ()
      in
      (* the epoch sees its global ranks' cores, not local slots 0..enp *)
      let ecost =
        {
          cost with
          Costmodel.core_speed =
            (fun lr -> cost.Costmodel.core_speed e.Elastic.e_members.(lr));
        }
      in
      let eparams =
        (plan.Elastic.lo_param, e.Elastic.e_lo)
        :: (plan.Elastic.hi_param, e.Elastic.e_hi)
        :: params
      in
      let cfg =
        Exec.config ~nprocs:enp ~params:eparams ~cost:ecost ~net
          ~tools:[ Profiler.tool profiler ] ~clock0:!clock ()
      in
      let result = Exec.run ~cfg static.Static.program in
      let edata = Profiler.data profiler in
      apply_refinements static edata;
      Profdata.merge_renumbered ~into:gdata
        ~map:(fun lr -> e.Elastic.e_members.(lr))
        edata;
      Array.iteri
        (fun lr g ->
          gfinish.(g) <- result.Exec.rank_finish.(lr);
          gcomp.(g) <- gcomp.(g) +. result.Exec.comp_seconds.(lr);
          gmpi.(g) <- gmpi.(g) +. result.Exec.mpi_seconds.(lr);
          gwait.(g) <- gwait.(g) +. result.Exec.wait_seconds.(lr);
          gpmu.(g) <- Pmu.add gpmu.(g) result.Exec.comp_pmu.(lr))
        e.Elastic.e_members;
      events := !events + result.Exec.events;
      messages := !messages + result.Exec.messages;
      epoch_infos :=
        {
          Elastic.ei_nprocs = enp;
          ei_lo = e.Elastic.e_lo;
          ei_hi = e.Elastic.e_hi;
          ei_members = e.Elastic.e_members;
          ei_t0 = !clock;
          ei_t1 = result.Exec.elapsed;
        }
        :: !epoch_infos;
      clock := result.Exec.elapsed;
      prev_members := e.Elastic.e_members)
    epochs;
  let epoch_infos = List.rev !epoch_infos in
  let effective = Elastic.effective_nprocs epoch_infos in
  gdata.Profdata.effective_nprocs <- effective;
  let elapsed = Array.fold_left Float.max 0.0 gfinish in
  gdata.Profdata.elapsed <- Float.max gdata.Profdata.elapsed elapsed;
  let info =
    {
      Elastic.nominal = nprocs;
      n_ranks;
      effective;
      elapsed;
      epoch_infos;
      recoveries = List.rev !recoveries;
    }
  in
  let result =
    {
      Exec.elapsed;
      rank_finish = gfinish;
      comp_seconds = gcomp;
      mpi_seconds = gmpi;
      wait_seconds = gwait;
      comp_pmu = gpmu;
      events = !events;
      messages = !messages;
      (* departed ranks flow through the standard degraded paths *)
      killed_ranks = List.sort_uniq compare !all_left;
      stranded_ranks = [];
    }
  in
  {
    nprocs;
    data = gdata;
    result;
    baseline_elapsed = None;
    attempts = 1;
    retry_backoff = [];
    elastic = Some info;
  }
