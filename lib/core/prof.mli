(** ScalAna-prof: run an instrumented program at one job scale and apply
    the runtime refinements (indirect-call splicing) to the static
    artifact.  Faults from a {!Scalana_runtime.Faults.plan} are armed per
    attempt; {!run_with_retry} re-profiles a degraded run with fresh
    fault draws, bounded by [retries]. *)

open Scalana_runtime
open Scalana_profile

type run = {
  nprocs : int;
  data : Profdata.t;
  result : Exec.result;
  baseline_elapsed : float option;  (** same run without tools *)
  attempts : int;  (** profiling attempts consumed (>= 1) *)
}

(** Available when the run was made with [~measure_overhead:true]. *)
val overhead_percent : run -> float option

(** Did any rank die or get stranded in this run? *)
val degraded : run -> bool

(** Splice observed indirect-call targets into the contracted PSG and
    refresh the index (done automatically by {!run}). *)
val apply_refinements : Static.t -> Profdata.t -> unit

val run :
  ?config:Config.t ->
  ?cost:Costmodel.t ->
  ?net:Network.t ->
  ?inject:Inject.t ->
  ?faults:Faults.plan ->
  ?attempt:int ->
  ?params:(string * int) list ->
  ?measure_overhead:bool ->
  ?extra_tools:Instrument.t list ->
  Static.t ->
  nprocs:int ->
  unit ->
  run

(** Like {!run}, retrying (with attempt numbers 2, 3, …) while the run is
    {!degraded}, up to [retries] extra attempts; the last attempt is
    returned even if still degraded. *)
val run_with_retry :
  ?retries:int ->
  ?config:Config.t ->
  ?cost:Costmodel.t ->
  ?net:Network.t ->
  ?inject:Inject.t ->
  ?faults:Faults.plan ->
  ?params:(string * int) list ->
  ?measure_overhead:bool ->
  ?extra_tools:Instrument.t list ->
  Static.t ->
  nprocs:int ->
  unit ->
  run
