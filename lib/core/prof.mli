(** ScalAna-prof: run an instrumented program at one job scale and apply
    the runtime refinements (indirect-call splicing) to the static
    artifact.  Faults from a {!Scalana_runtime.Faults.plan} are armed per
    attempt; {!run_with_retry} re-profiles a degraded run with fresh
    fault draws, bounded by [retries]. *)

open Scalana_runtime
open Scalana_profile

type run = {
  nprocs : int;
  data : Profdata.t;
  result : Exec.result;
  baseline_elapsed : float option;  (** same run without tools *)
  attempts : int;  (** profiling attempts consumed (>= 1) *)
  retry_backoff : float list;
      (** deterministic backoff waited out before each retry, in retry
          order; empty when the first attempt stood *)
  elastic : Elastic.info option;
      (** membership/recovery summary when profiled by {!run_elastic} *)
}

(** Available when the run was made with [~measure_overhead:true]. *)
val overhead_percent : run -> float option

(** Did any rank die or get stranded in this run? *)
val degraded : run -> bool

(** Splice observed indirect-call targets into the contracted PSG and
    refresh the index (done automatically by {!run}). *)
val apply_refinements : Static.t -> Profdata.t -> unit

val run :
  ?config:Config.t ->
  ?cost:Costmodel.t ->
  ?net:Network.t ->
  ?inject:Inject.t ->
  ?faults:Faults.plan ->
  ?attempt:int ->
  ?params:(string * int) list ->
  ?measure_overhead:bool ->
  ?extra_tools:Instrument.t list ->
  Static.t ->
  nprocs:int ->
  unit ->
  run

(** Deterministic exponential backoff before retry [attempt + 1]:
    [0.05 * 2^(attempt-1)] seconds.  Simulated, never slept; recorded on
    the run and observed as [prof.retry_backoff_seconds]. *)
val backoff_delay : attempt:int -> float

(** Like {!run}, retrying (with attempt numbers 2, 3, …) while the run is
    {!degraded}, up to [retries] extra attempts; the last attempt is
    returned even if still degraded. *)
val run_with_retry :
  ?retries:int ->
  ?config:Config.t ->
  ?cost:Costmodel.t ->
  ?net:Network.t ->
  ?inject:Inject.t ->
  ?faults:Faults.plan ->
  ?params:(string * int) list ->
  ?measure_overhead:bool ->
  ?extra_tools:Instrument.t list ->
  Static.t ->
  nprocs:int ->
  unit ->
  run

(** One elastic session at nominal scale [nprocs]: run the plan's
    membership epochs as separate simulator slices (the program's
    iteration range parameters select each slice), stitch them with the
    recovery protocol, and merge the per-epoch profiles into one
    per-global-rank artifact.  The result carries the time-weighted
    effective process count for the log-log fits and the full
    membership/recovery summary in [elastic]; ranks that left appear as
    [killed_ranks], so the run is {!degraded} and the usual exit-code
    and data-quality paths apply.  Deterministic: same (plan, nprocs) ⇒
    byte-identical artifact. *)
val run_elastic :
  ?config:Config.t ->
  ?cost:Costmodel.t ->
  ?net:Network.t ->
  ?params:(string * int) list ->
  plan:Elastic.plan ->
  Static.t ->
  nprocs:int ->
  unit ->
  run
