(* ScalAna-static: the compile-time step.

   Runs the front end (validation, CFG construction, dominance and
   natural-loop analyses — the stand-in for the base compiler work) and
   the ScalAna passes (intra- and inter-procedural PSG construction,
   contraction, attribution-index build), and measures the extra cost of
   the latter relative to the former (Table III). *)

open Scalana_mlang
open Scalana_cfg
open Scalana_psg

type t = {
  program : Ast.program;
  locals : (string, Psg.t) Hashtbl.t;
  full : Psg.t;
  contraction : Contract.result;
  mutable index : Index.t;
  datadep : Datadep.summary;
  commcost : Commcost.t;
  stats : Stats.t;
}

let psg t = t.contraction.Contract.psg

(* Attach the symbolic scaling predictions of the communication-cost
   analysis to the contracted PSG: MPI vertices get their per-statement
   fact (class, symbolic message count, bytes, destination, pattern),
   structural vertices their symbolic execution count's class. *)
let annotate_predictions (cc : Commcost.t) (psg : Psg.t) =
  Psg.iter
    (fun (v : Vertex.t) ->
      match v.Vertex.kind with
      | Vertex.Root _ -> ()
      | Vertex.Mpi _ -> (
          match Commcost.find_fact cc ~func:v.Vertex.func ~loc:v.Vertex.loc with
          | Some fact ->
              Psg.set_static_pred psg v.Vertex.id (Commcost.pred_of_fact cc fact)
          | None -> (
              match Commcost.count_at cc ~func:v.Vertex.func ~loc:v.Vertex.loc with
              | Some count ->
                  Psg.set_static_pred psg v.Vertex.id (Commcost.count_pred count)
              | None -> ()))
      | Vertex.Loop _ | Vertex.Branch | Vertex.Comp _ | Vertex.Callsite _ -> (
          match Commcost.count_at cc ~func:v.Vertex.func ~loc:v.Vertex.loc with
          | Some count ->
              Psg.set_static_pred psg v.Vertex.id (Commcost.count_pred count)
          | None -> ()))
    psg

let analyze ?(max_loop_depth = Contract.default_max_loop_depth) ?pool
    (program : Ast.program) =
  (match Validate.run program with
  | Ok () -> ()
  | Error errs ->
      invalid_arg
        ("Static.analyze: invalid program:\n"
        ^ String.concat "\n" (List.map Validate.error_to_string errs)));
  let locals = Intra.build_all ?pool program in
  let full = Inter.build ~locals program in
  let contraction = Contract.run ~max_loop_depth full in
  let index = Index.build ~full ~contraction in
  let datadep = Datadep.annotate ?pool ~full ~contraction program in
  let commcost = Commcost.analyze program in
  annotate_predictions commcost contraction.Contract.psg;
  let stats =
    Stats.of_psgs ~defs:datadep.Datadep.defs ~uses:datadep.Datadep.uses
      ~dd_edges:datadep.Datadep.edges
      ~preds:(Psg.n_static_preds contraction.Contract.psg)
      ~program:program.pname ~lines:(Ast.line_count program) ~full
      ~contracted:contraction.Contract.psg ()
  in
  { program; locals; full; contraction; index; datadep; commcost; stats }

(* The base "compilation": parse + validate + per-function middle-end
   analyses.  A production compiler runs a long pass pipeline over the
   IR; we model that by iterating the CFG/dominance/loop analyses
   [passes] times (an LLVM -O2 pipeline runs on the order of 10^2
   middle-end passes). *)
let base_compile ?(passes = 150) (program : Ast.program) =
  let source = Pretty.render program in
  let reparsed = Parser.parse ~file:program.file source in
  (match Validate.run reparsed with Ok () -> () | Error _ -> ());
  List.iter
    (fun (f : Ast.func) ->
      let cfg = Cfg.of_func f in
      for _ = 1 to passes do
        let dom = Dominance.compute cfg in
        let loops = Loops.compute cfg in
        ignore (Dominance.dominator_tree dom);
        ignore (Loops.max_depth loops)
      done)
    reparsed.funcs;
  ignore (Callgraph.build reparsed)

let time_of f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* Static overhead: PSG passes as a fraction of base compilation
   (Table III's Ovd%).  Repeats both to stabilize the measurement. *)
let static_overhead ?(repeat = 3) (program : Ast.program) =
  let base = time_of (fun () -> for _ = 1 to repeat do base_compile program done) in
  let extra =
    time_of (fun () ->
        for _ = 1 to repeat do
          ignore (analyze program)
        done)
  in
  if base <= 0.0 then 0.0 else 100.0 *. extra /. base
