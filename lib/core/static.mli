(** ScalAna-static: the compile-time step — validation, local and
    inter-procedural PSG construction, contraction and the attribution
    index — plus the Table III static-overhead measurement. *)

open Scalana_mlang
open Scalana_cfg
open Scalana_psg

type t = {
  program : Ast.program;
  locals : (string, Psg.t) Hashtbl.t;
  full : Psg.t;
  contraction : Contract.result;
  mutable index : Index.t;
  datadep : Datadep.summary;  (** def-use counts; edges live in the PSG *)
  commcost : Commcost.t;  (** symbolic communication-cost analysis *)
  stats : Stats.t;
}

(** The contracted PSG (refined in place by {!Prof.run}). *)
val psg : t -> Psg.t

(** Raises [Invalid_argument] when the program does not validate.  With
    [pool], the per-function local-PSG builds run in parallel. *)
val analyze : ?max_loop_depth:int -> ?pool:Pool.t -> Ast.program -> t

(** The base "compilation": parse + validate + [passes] iterations of the
    CFG/dominance/loop analyses per function (a stand-in for a compiler's
    middle-end pipeline; default 150). *)
val base_compile : ?passes:int -> Ast.program -> unit

(** PSG-construction cost as a percentage of the base compilation
    (Table III's Ovd%%), measured in wall time. *)
val static_overhead : ?repeat:int -> Ast.program -> float
