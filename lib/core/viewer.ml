(* ScalAna-viewer: terminal rendering of a finished pipeline — the GUI of
   Fig. 9 flattened to text.  The upper window (root-cause vertices and
   calling paths) comes from the detection report; the lower window shows
   the source snippet of a selected cause. *)

open Scalana_mlang

let show ?(snippet_context = 2) (pipeline : Pipeline.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf pipeline.Pipeline.report;
  Buffer.add_string buf "\n=== source view ===\n";
  List.iteri
    (fun i (c : Scalana_detect.Rootcause.cause) ->
      Buffer.add_string buf
        (Printf.sprintf "\n[%d] %s @%s\n" (i + 1) c.cause_label
           (Loc.to_string c.cause_loc));
      List.iter
        (fun line ->
          Buffer.add_string buf ("  " ^ line);
          Buffer.add_char buf '\n')
        (Pretty.snippet ~context:snippet_context
           pipeline.Pipeline.static.Static.program c.cause_loc))
    pipeline.Pipeline.analysis.causes;
  Buffer.contents buf

(* ASCII rank-timeline view: one row per rank over [0, elapsed], each
   column showing the dominant activity in its time bucket ('=' compute,
   'M' MPI, 'w' MPI wait), with the per-rank blocked totals.  A poor
   man's Perfetto for terminals; the full detail lives in the Chrome
   trace written by [scalana-detect --rank-trace]. *)
(* Membership annotation of one timeline row: ranks the run at this
   scale stranded, and ranks an elastic session lost or gained.  Empty
   for a clean fixed-membership run, keeping those rows byte-identical. *)
let rank_annotation (pipeline : Pipeline.t) ~nprocs =
  match List.assoc_opt nprocs pipeline.Pipeline.runs with
  | None -> fun _ -> ""
  | Some (r : Prof.run) ->
      let stranded = r.Prof.result.Scalana_runtime.Exec.stranded_ranks in
      let left, joined =
        match r.Prof.elastic with
        | None -> ([], [])
        | Some (i : Scalana_runtime.Elastic.info) ->
            let module E = Scalana_runtime.Elastic in
            ( List.concat_map (fun (rc : E.recovery) -> rc.E.r_left)
                i.E.recoveries,
              List.concat_map (fun (rc : E.recovery) -> rc.E.r_joined)
                i.E.recoveries )
      in
      fun rank ->
        (if List.mem rank stranded then " [stranded]" else "")
        ^ (if List.mem rank left then " [left]" else "")
        ^ if List.mem rank joined then " [joined]" else ""

let show_timeline ?(width = 64) (pipeline : Pipeline.t) =
  match pipeline.Pipeline.timeline with
  | None ->
      "no timeline captured (run with --wait-states or ~timeline:true)\n"
  | Some tl ->
      let module T = Scalana_profile.Timeline in
      let buf = Buffer.create 4096 in
      let span = if tl.T.elapsed > 0.0 then tl.T.elapsed else 1.0 in
      let col_dt = span /. float_of_int width in
      (* per (rank, column) occupancy of compute / MPI busy / MPI wait *)
      let occ = Array.init tl.T.nprocs (fun _ -> Array.make_matrix width 3 0.0) in
      Array.iter
        (fun (iv : T.interval) ->
          let ch, wait =
            match iv.T.iv_kind with
            | T.Compute _ -> (0, 0.0)
            | T.Mpi m -> (1, m.T.wait)
          in
          let c0 = max 0 (int_of_float (iv.T.iv_start /. col_dt)) in
          let c1 =
            min (width - 1) (int_of_float (iv.T.iv_stop /. col_dt))
          in
          for c = c0 to c1 do
            let lo = Float.max iv.T.iv_start (float_of_int c *. col_dt) in
            let hi =
              Float.min iv.T.iv_stop (float_of_int (c + 1) *. col_dt)
            in
            let d = Float.max 0.0 (hi -. lo) in
            let row = occ.(iv.T.iv_rank).(c) in
            (* an MPI interval's wait share is charged as waiting time,
               the rest as busy MPI *)
            let dur = iv.T.iv_stop -. iv.T.iv_start in
            let wfrac = if dur > 0.0 then wait /. dur else 0.0 in
            if ch = 0 then row.(0) <- row.(0) +. d
            else begin
              row.(1) <- row.(1) +. (d *. (1.0 -. wfrac));
              row.(2) <- row.(2) +. (d *. wfrac)
            end
          done)
        tl.T.intervals;
      Buffer.add_string buf
        (Printf.sprintf
           "=== rank timeline (np=%d, %.6fs; '=' compute, 'M' mpi, 'w' \
            wait) ===\n"
           tl.T.nprocs tl.T.elapsed);
      Array.iteri
        (fun rank rows ->
          Buffer.add_string buf (Printf.sprintf "rank %3d |" rank);
          Array.iter
            (fun (row : float array) ->
              let c =
                if row.(0) = 0.0 && row.(1) = 0.0 && row.(2) = 0.0 then ' '
                else if row.(2) >= row.(0) && row.(2) >= row.(1) then 'w'
                else if row.(1) >= row.(0) then 'M'
                else '='
              in
              Buffer.add_char buf c)
            rows;
          Buffer.add_string buf
            (Printf.sprintf "| blocked %.6fs%s%s\n" tl.T.blocked.(rank)
               (if tl.T.dropped.(rank) > 0 then
                  Printf.sprintf " (truncated: %d dropped)"
                    tl.T.dropped.(rank)
                else "")
               (rank_annotation pipeline ~nprocs:tl.T.nprocs rank)))
        occ;
      Buffer.add_string buf
        (Printf.sprintf
           "%d intervals (%d merged away), %d matched messages\n"
           (Array.length tl.T.intervals) tl.T.merged
           (Array.length tl.T.messages));
      Buffer.contents buf

(* One-line summary per cause, for quick assertions and logs. *)
let summary (pipeline : Pipeline.t) =
  List.map
    (fun (c : Scalana_detect.Rootcause.cause) ->
      Printf.sprintf "%s@%s" c.cause_label (Loc.to_string c.cause_loc))
    pipeline.Pipeline.analysis.causes
