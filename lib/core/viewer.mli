(** ScalAna-viewer: terminal rendering of a finished pipeline — the
    Fig. 9 GUI flattened to text (report + source windows). *)

val show : ?snippet_context:int -> Pipeline.t -> string

(** ASCII per-rank timeline ([width] columns over the run, default 64):
    '=' compute, 'M' MPI, 'w' MPI wait, with per-rank blocked totals.
    Explains itself when the pipeline carried no timeline. *)
val show_timeline : ?width:int -> Pipeline.t -> string

(** One line per cause, for logs and assertions. *)
val summary : Pipeline.t -> string list
