(* Abnormal vertex detection (Section IV-A).

   SPMD processes are expected to spend similar time at the same vertex;
   a vertex whose time on some rank deviates from the median by more than
   [abnorm_thd] (paper default 1.3) is abnormal.  A vertex executed by
   only a minority of ranks (median 0, some rank busy) is the classic
   load-imbalance shape and is abnormal too. *)

open Scalana_ppg

type finding = {
  vertex : int;
  ranks : int list;  (* the deviating ranks *)
  max_time : float;
  median_time : float;
  ratio : float;  (* max / median (infinity when median = 0) *)
}

type config = {
  abnorm_thd : float;
  min_seconds : float;  (* ignore vertices cheaper than this everywhere *)
}

let default_config = { abnorm_thd = 1.3; min_seconds = 1e-4 }

let detect_vertex ?(config = default_config) ppg ~vertex =
  let times = Ppg.times_across_ranks ppg ~vertex in
  (* poisoned values are quarantined from the statistics; the deviation
     scan below skips them naturally (NaN/negative never exceed a
     positive threshold), so a faulted rank can't be flagged on garbage *)
  let clean, _ = Aggregate.sanitize times in
  let max_time = Array.fold_left Float.max 0.0 clean in
  if max_time < config.min_seconds then None
  else begin
    let med = Aggregate.median times in
    let threshold = config.abnorm_thd *. med in
    let deviating =
      if med > 0.0 then
        Array.to_seq times
        |> Seq.mapi (fun rank t -> (rank, t))
        |> Seq.filter (fun (_, t) -> t > threshold)
        |> Seq.map fst |> List.of_seq
      else
        (* median zero: executed by a minority -> those ranks deviate *)
        Array.to_seq times
        |> Seq.mapi (fun rank t -> (rank, t))
        |> Seq.filter (fun (_, t) -> t > 0.0)
        |> Seq.map fst |> List.of_seq
    in
    if deviating = [] then None
    else
      Some
        {
          vertex;
          ranks = deviating;
          max_time;
          median_time = med;
          ratio = (if med > 0.0 then max_time /. med else infinity);
        }
  end

let detect ?(config = default_config) ppg =
  Scalana_obs.Obs.with_span "abnormal.detect" @@ fun () ->
  let findings =
    List.filter_map
      (fun vertex -> detect_vertex ~config ppg ~vertex)
      (Scalana_profile.Profdata.touched_vertices ppg.Ppg.data)
    |> List.sort (fun a b -> compare b.max_time a.max_time)
  in
  Scalana_obs.Obs.Metrics.incr ~by:(List.length findings) "abnormal.findings";
  findings

let pp_finding psg ppf f =
  let v = Scalana_psg.Psg.vertex psg f.vertex in
  Fmt.pf ppf "%-28s ranks=%d max=%.4fs med=%.4fs ratio=%s @%a"
    (Scalana_psg.Vertex.label v) (List.length f.ranks) f.max_time f.median_time
    (if f.ratio = infinity then "inf" else Printf.sprintf "%.2f" f.ratio)
    Scalana_mlang.Loc.pp v.Scalana_psg.Vertex.loc
