(* Abnormal vertex detection (Section IV-A).

   SPMD processes are expected to spend similar time at the same vertex;
   a vertex whose time on some rank deviates from the median by more than
   [abnorm_thd] (paper default 1.3) is abnormal.  A vertex executed by
   only a minority of ranks (median 0, some rank busy) is the classic
   load-imbalance shape and is abnormal too. *)

open Scalana_ppg

type finding = {
  vertex : int;
  ranks : int list;  (* the deviating ranks *)
  max_time : float;
  median_time : float;
  ratio : float;  (* max / median (infinity when median = 0) *)
}

type config = {
  abnorm_thd : float;
  min_seconds : float;  (* ignore vertices cheaper than this everywhere *)
}

let default_config = { abnorm_thd = 1.3; min_seconds = 1e-4 }

(* One vertex, scanned in place over its column slice: no per-vertex
   array materializes unless the vertex is actually reported on. *)
let detect_vertex ?(config = default_config) ppg ~vertex =
  match Ppg.row_offset ppg ~vertex with
  | None -> None  (* untouched everywhere: an all-zero row, never abnormal *)
  | Some off ->
      let col = Ppg.times_col ppg in
      let len = ppg.Ppg.nprocs in
      (* poisoned values are quarantined from the statistics; the
         deviation scan below skips them naturally (NaN/negative never
         exceed a positive threshold), so a faulted rank can't be
         flagged on garbage *)
      let max_time = Aggregate.max_clean_slice col ~off ~len in
      if max_time < config.min_seconds then None
      else begin
        let med = Aggregate.median_slice col ~off ~len in
        let threshold =
          if med > 0.0 then config.abnorm_thd *. med else 0.0
        in
        let deviating = ref [] in
        for rank = len - 1 downto 0 do
          if col.(off + rank) > threshold then deviating := rank :: !deviating
        done;
        let deviating = !deviating in
        if deviating = [] then None
        else
          Some
            {
              vertex;
              ranks = deviating;
              max_time;
              median_time = med;
              ratio = (if med > 0.0 then max_time /. med else infinity);
            }
      end

let detect ?(config = default_config) ppg =
  Scalana_obs.Obs.with_span "abnormal.detect" @@ fun () ->
  let findings =
    List.filter_map
      (fun vertex -> detect_vertex ~config ppg ~vertex)
      (Ppg.touched_vertices ppg)
    |> List.sort (fun a b -> compare b.max_time a.max_time)
  in
  Scalana_obs.Obs.Metrics.incr ~by:(List.length findings) "abnormal.findings";
  findings

let pp_finding psg ppf f =
  let v = Scalana_psg.Psg.vertex psg f.vertex in
  Fmt.pf ppf "%-28s ranks=%d max=%.4fs med=%.4fs ratio=%s @%a"
    (Scalana_psg.Vertex.label v) (List.length f.ranks) f.max_time f.median_time
    (if f.ratio = infinity then "inf" else Printf.sprintf "%.2f" f.ratio)
    Scalana_mlang.Loc.pp v.Scalana_psg.Vertex.loc
