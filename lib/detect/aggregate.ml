(* Strategies for merging a vertex's per-rank metric into one value
   (Section IV-A discusses single-process, mean/median + variance, and
   clustering-based merging; all are implemented and compared in the
   ablation bench). *)

type strategy =
  | Single of int  (* one representative rank *)
  | Mean
  | Median
  | Variance_weighted  (* mean + variance penalty, surfaces imbalance *)
  | Kmeans of int  (* centroid of the heaviest cluster *)

let strategy_name = function
  | Single r -> Printf.sprintf "single(%d)" r
  | Mean -> "mean"
  | Median -> "median"
  | Variance_weighted -> "variance"
  | Kmeans k -> Printf.sprintf "kmeans(%d)" k

(* Poisoned values (NaN from a broken counter, negative garbage) are
   quarantined before any merging: [sanitize] returns the surviving
   values and how many were dropped.  Clean input comes back physically
   unchanged, so the no-fault paths behave exactly as before. *)
let quarantined x = Float.is_nan x || x < 0.0

let sanitize a =
  if Array.exists quarantined a then begin
    let keep =
      Array.to_list a |> List.filter (fun x -> not (quarantined x))
    in
    (Array.of_list keep, Array.length a - List.length keep)
  end
  else (a, 0)

let mean a =
  let a, _ = sanitize a in
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let median a =
  let a, _ = sanitize a in
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let b = Array.copy a in
    Array.sort compare b;
    if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0
  end

let variance a =
  let a, _ = sanitize a in
  let m = mean a in
  if Array.length a = 0 then 0.0
  else
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
    /. float_of_int (Array.length a)

let stddev a = sqrt (variance a)

(* 1-D k-means (Lloyd's algorithm, deterministic seeding at quantiles). *)
let kmeans ~k a =
  let n = Array.length a in
  if n = 0 || k <= 0 then [||]
  else begin
    let k = min k n in
    let sorted = Array.copy a in
    Array.sort compare sorted;
    let centroids =
      Array.init k (fun i -> sorted.(min (n - 1) (i * n / k + (n / (2 * k)))))
    in
    let assign = Array.make n 0 in
    let changed = ref true in
    let iters = ref 0 in
    while !changed && !iters < 100 do
      changed := false;
      incr iters;
      for i = 0 to n - 1 do
        let best = ref 0 and bestd = ref infinity in
        for c = 0 to k - 1 do
          let d = abs_float (a.(i) -. centroids.(c)) in
          if d < !bestd then begin
            bestd := d;
            best := c
          end
        done;
        if assign.(i) <> !best then begin
          assign.(i) <- !best;
          changed := true
        end
      done;
      for c = 0 to k - 1 do
        let sum = ref 0.0 and cnt = ref 0 in
        for i = 0 to n - 1 do
          if assign.(i) = c then begin
            sum := !sum +. a.(i);
            incr cnt
          end
        done;
        if !cnt > 0 then centroids.(c) <- !sum /. float_of_int !cnt
      done
    done;
    let sizes = Array.make k 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) assign;
    Array.init k (fun c -> (centroids.(c), sizes.(c)))
  end

(* --- slice variants ---

   The same statistics computed directly over a columnar row slice
   [off, off + len) without materializing the per-vertex array first.
   Every scan visits cells in rank order, which is exactly the order the
   array versions see after [sanitize] (survivors keep their relative
   order), so each slice function is bit-identical to its array
   counterpart on the copied row — the property the differential suite
   and the golden reports pin. *)

let quarantined_in_slice col ~off ~len =
  let n = ref 0 in
  for i = off to off + len - 1 do
    if quarantined col.(i) then incr n
  done;
  !n

(* Survivors gathered in rank order: the slice analogue of [sanitize],
   always a fresh array. *)
let sanitize_slice col ~off ~len =
  let dropped = quarantined_in_slice col ~off ~len in
  if dropped = 0 then (Array.sub col off len, 0)
  else begin
    let keep = Array.make (len - dropped) 0.0 in
    let j = ref 0 in
    for i = off to off + len - 1 do
      if not (quarantined col.(i)) then begin
        keep.(!j) <- col.(i);
        incr j
      end
    done;
    (keep, dropped)
  end

(* Sum of the surviving cells — [Array.fold_left (+.) 0.0] over the
   sanitized row, without the row. *)
let sum_clean_slice col ~off ~len =
  let acc = ref 0.0 in
  for i = off to off + len - 1 do
    let x = col.(i) in
    if not (quarantined x) then acc := !acc +. x
  done;
  !acc

(* Largest surviving cell, 0.0 floor (the abnormal detector's scan). *)
let max_clean_slice col ~off ~len =
  let acc = ref 0.0 in
  for i = off to off + len - 1 do
    let x = col.(i) in
    if not (quarantined x) then acc := Float.max !acc x
  done;
  !acc

let mean_slice col ~off ~len =
  let sum = ref 0.0 and n = ref 0 in
  for i = off to off + len - 1 do
    let x = col.(i) in
    if not (quarantined x) then begin
      sum := !sum +. x;
      incr n
    end
  done;
  if !n = 0 then 0.0 else !sum /. float_of_int !n

let median_slice col ~off ~len =
  median (fst (sanitize_slice col ~off ~len))

let variance_slice col ~off ~len =
  let m = mean_slice col ~off ~len in
  let acc = ref 0.0 and n = ref 0 in
  for i = off to off + len - 1 do
    let x = col.(i) in
    if not (quarantined x) then begin
      acc := !acc +. ((x -. m) *. (x -. m));
      incr n
    end
  done;
  if !n = 0 then 0.0 else !acc /. float_of_int !n

let apply strategy values =
  match strategy with
  | Single r ->
      if r < Array.length values && not (quarantined values.(r)) then
        values.(r)
      else 0.0
  | Mean -> mean values
  | Median -> median values
  | Variance_weighted -> mean values +. stddev values
  | Kmeans k -> (
      let values, _ = sanitize values in
      let clusters = kmeans ~k values in
      (* centroid of the heaviest (largest-time) populated cluster: the
         "busy group" drives the scaling behaviour *)
      match
        Array.fold_left
          (fun acc (c, n) ->
            match acc with
            | None -> if n > 0 then Some (c, n) else None
            | Some (bc, _) -> if n > 0 && c > bc then Some (c, n) else acc)
          None clusters
      with
      | Some (c, _) -> c
      | None -> 0.0)

(* [apply] over a columnar row slice, without the row copy.  For the
   order-insensitive strategies the scan runs in place; Median and
   Kmeans gather the survivors first (they need a sortable array), which
   is still exactly what the array path hands them. *)
let apply_slice strategy col ~off ~len =
  match strategy with
  | Single r ->
      if r < len && not (quarantined col.(off + r)) then col.(off + r)
      else 0.0
  | Mean -> mean_slice col ~off ~len
  | Median -> median_slice col ~off ~len
  | Variance_weighted ->
      mean_slice col ~off ~len +. sqrt (variance_slice col ~off ~len)
  | Kmeans k -> apply (Kmeans k) (fst (sanitize_slice col ~off ~len))
