(** Strategies for merging a vertex's per-rank metric into one value
    (Section IV-A): single rank, mean, median, variance-aware, and
    clustering-based merging. *)

type strategy =
  | Single of int
  | Mean
  | Median
  | Variance_weighted  (** mean + stddev: surfaces imbalance *)
  | Kmeans of int  (** centroid of the heaviest populated cluster *)

val strategy_name : strategy -> string

(** Is this value quarantined (NaN or negative — a poisoned metric)? *)
val quarantined : float -> bool

(** Drop quarantined values; returns the survivors and the count dropped.
    Clean input comes back physically unchanged.  Every merging function
    below sanitizes its input first. *)
val sanitize : float array -> float array * int

val mean : float array -> float
val median : float array -> float
val variance : float array -> float
val stddev : float array -> float

(** 1-D Lloyd's k-means with deterministic quantile seeding; returns
    (centroid, size) pairs. *)
val kmeans : k:int -> float array -> (float * int) array

val apply : strategy -> float array -> float

(** {2 Slice variants}

    The same statistics over a columnar row slice [off, off + len)
    without materializing the per-vertex array first.  Cells are visited
    in rank order — the order the array versions see after [sanitize] —
    so each is bit-identical to its array counterpart on a copied row. *)

(** Quarantined cells in the slice (what [sanitize] would drop). *)
val quarantined_in_slice : float array -> off:int -> len:int -> int

(** Surviving cells gathered in rank order; always a fresh array. *)
val sanitize_slice : float array -> off:int -> len:int -> float array * int

(** Sum of the surviving cells. *)
val sum_clean_slice : float array -> off:int -> len:int -> float

(** Largest surviving cell, floored at 0. *)
val max_clean_slice : float array -> off:int -> len:int -> float

val mean_slice : float array -> off:int -> len:int -> float
val median_slice : float array -> off:int -> len:int -> float
val variance_slice : float array -> off:int -> len:int -> float
val apply_slice : strategy -> float array -> off:int -> len:int -> float
