(** Strategies for merging a vertex's per-rank metric into one value
    (Section IV-A): single rank, mean, median, variance-aware, and
    clustering-based merging. *)

type strategy =
  | Single of int
  | Mean
  | Median
  | Variance_weighted  (** mean + stddev: surfaces imbalance *)
  | Kmeans of int  (** centroid of the heaviest populated cluster *)

val strategy_name : strategy -> string

(** Is this value quarantined (NaN or negative — a poisoned metric)? *)
val quarantined : float -> bool

(** Drop quarantined values; returns the survivors and the count dropped.
    Clean input comes back physically unchanged.  Every merging function
    below sanitizes its input first. *)
val sanitize : float array -> float array * int

val mean : float array -> float
val median : float array -> float
val variance : float array -> float
val stddev : float array -> float

(** 1-D Lloyd's k-means with deterministic quantile seeding; returns
    (centroid, size) pairs. *)
val kmeans : k:int -> float array -> (float * int) array

val apply : strategy -> float array -> float
