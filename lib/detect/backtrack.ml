(* Backtracking root-cause detection (Section IV-B, Algorithm 1).

   Starting from a problematic vertex, walk the PPG backwards:
   - at a P2P MPI vertex that waited, jump along the inter-process
     communication-dependence edge to the sender's vertex (pruned to
     edges that carried an actual wait);
   - at a collective vertex, jump to the rank that habitually arrives
     last (the culprit), then continue within that process;
   - at an unscanned Loop/Branch vertex, follow the control-dependence
     edge into the structure (continue from its end vertex);
   - otherwise follow the data-dependence edge (previous component in
     execution order, or the enclosing structure).
   The walk stops at the root, at a collective already attributed, or
   when a cycle/step budget is hit. *)

open Scalana_psg
open Scalana_ppg

type via =
  | Start
  | Comm_dep of { from_rank : int }  (* inter-process edge *)
  | Coll_jump of { from_rank : int }  (* to the last-arrival rank *)
  | Control_dep  (* into a loop/branch body *)
  | Data_dep
  | Def_use  (* explicit def-use edge (Datadep annotation) *)

type step = { rank : int; vertex : int; via : via }
type path = step list

type config = {
  prune_non_wait : bool;  (* keep only comm edges with a wait (paper: on) *)
  max_steps : int;
  follow_def_use : bool;
      (* step along recorded def-use edges instead of sibling order when
         the vertex has one (off = paper-faithful Algorithm 1) *)
}

let default_config =
  { prune_non_wait = true; max_steps = 4096; follow_def_use = false }

let via_name = function
  | Start -> "start"
  | Comm_dep { from_rank } -> Printf.sprintf "comm<-r%d" from_rank
  | Coll_jump { from_rank } -> Printf.sprintf "coll<-r%d" from_rank
  | Control_dep -> "control"
  | Data_dep -> "data"
  | Def_use -> "defuse"

(* Previous component in execution order; falls back to the enclosing
   structure when the vertex heads its body.  With [follow_def_use], a
   vertex carrying an explicit data-dependence edge steps to its nearest
   preceding definition instead (vertex ids are assigned in execution
   order, so "nearest preceding" is the largest defining id below
   [vid]). *)
let data_dep ~config psg vid =
  let def_use =
    if config.follow_def_use then
      List.fold_left
        (fun acc d ->
          if d < vid && (match acc with Some m -> d > m | None -> true) then
            Some d
          else acc)
        None (Psg.data_deps psg vid)
    else None
  in
  match def_use with
  | Some d -> Some (d, Def_use)
  | None -> (
      match Psg.prev_sibling psg vid with
      | Some p -> Some (p, Data_dep)
      | None -> (
          match Psg.parent psg vid with
          | Some p -> Some (p, Data_dep)
          | None -> None))

let backtrack ?(config = default_config) (ppg : Ppg.t) ~visited ~start_rank
    ~start_vertex =
  let psg = ppg.Ppg.psg in
  let path = ref [] in
  let local_seen = Hashtbl.create 64 in
  let entered = Hashtbl.create 16 in
  let push rank vertex via =
    path := { rank; vertex; via } :: !path;
    Hashtbl.replace visited (rank, vertex) ();
    Hashtbl.replace local_seen (rank, vertex) ()
  in
  let rec go rank vid via steps =
    if steps >= config.max_steps then ()
    else if Hashtbl.mem local_seen (rank, vid) && via <> Start then
      (* cycle within this walk *)
      ()
    else begin
      let v = Psg.vertex psg vid in
      match v.Vertex.kind with
      | Vertex.Root _ -> push rank vid via
      | Vertex.Mpi call when Scalana_mlang.Ast.is_collective call -> (
          push rank vid via;
          let late = Ppg.coll_late_rank ppg ~vertex:vid in
          match late with
          | Some culprit when culprit <> rank ->
              (* jump to the habitual last arriver and continue there *)
              go culprit vid (Coll_jump { from_rank = rank }) (steps + 1)
          | Some _ ->
              (* we are on the culprit rank: the cause precedes the
                 collective in its own control flow *)
              continue_data rank vid steps
          | None -> if via = Start then continue_data rank vid steps)
      | Vertex.Mpi call ->
          push rank vid via;
          if Scalana_mlang.Ast.can_wait call then begin
            let edge =
              if config.prune_non_wait then
                Ppg.critical_edge ppg ~rank ~vertex:vid
              else begin
                match Ppg.incoming_edges ppg ~rank ~vertex:vid with
                | [] -> None
                | e :: _ -> Some e
              end
            in
            match edge with
            | Some e ->
                go e.Ppg.send_rank e.Ppg.send_vertex
                  (Comm_dep { from_rank = rank })
                  (steps + 1)
            | None -> continue_data rank vid steps
          end
          else continue_data rank vid steps
      | Vertex.Loop _ | Vertex.Branch ->
          push rank vid via;
          if not (Hashtbl.mem entered (rank, vid)) then begin
            Hashtbl.replace entered (rank, vid) ();
            match Psg.last_child psg vid with
            | Some c -> go rank c Control_dep (steps + 1)
            | None -> continue_data rank vid steps
          end
          else continue_data rank vid steps
      | Vertex.Comp _ | Vertex.Callsite _ ->
          push rank vid via;
          continue_data rank vid steps
    end
  and continue_data rank vid steps =
    match data_dep ~config psg vid with
    | Some (next, via) -> go rank next via (steps + 1)
    | None -> ()
  in
  go start_rank start_vertex Start 0;
  List.rev !path

(* Ranks touched by a path, in order of first appearance.  Accumulated
   reversed and flipped once at the end (appending inside the fold is
   quadratic on long paths). *)
let ranks_of path =
  List.fold_left
    (fun acc s -> if List.mem s.rank acc then acc else s.rank :: acc)
    [] path
  |> List.rev

let pp_step psg ppf s =
  let v = Psg.vertex psg s.vertex in
  Fmt.pf ppf "[r%d] %s @%a (%s)" s.rank (Vertex.label v) Scalana_mlang.Loc.pp
    v.Vertex.loc (via_name s.via)

let pp_path psg ppf path =
  List.iteri
    (fun i s ->
      if i > 0 then Fmt.pf ppf "@.  <- ";
      pp_step psg ppf s)
    path
