(** Backtracking root-cause detection (Section IV-B, Algorithm 1):
    walk the PPG backwards from a problematic vertex — data/control
    dependence within a process, waiting communication edges across
    processes, collective jumps to the habitual last arriver — until the
    root, an attributed collective, or a cycle. *)

type via =
  | Start
  | Comm_dep of { from_rank : int }
  | Coll_jump of { from_rank : int }
  | Control_dep
  | Data_dep
  | Def_use  (** explicit def-use edge recorded by the Datadep pass *)

type step = { rank : int; vertex : int; via : via }
type path = step list

type config = {
  prune_non_wait : bool;  (** keep only comm edges that waited (paper) *)
  max_steps : int;
  follow_def_use : bool;
      (** step along recorded def-use edges instead of sibling order
          when the vertex has one (off = paper-faithful Algorithm 1) *)
}

val default_config : config
val via_name : via -> string

(** [backtrack ppg ~visited ~start_rank ~start_vertex] — one walk;
    [visited] accumulates scanned (rank, vertex) pairs across walks
    (Algorithm 1's set V). *)
val backtrack :
  ?config:config ->
  Scalana_ppg.Ppg.t ->
  visited:(int * int, unit) Hashtbl.t ->
  start_rank:int ->
  start_vertex:int ->
  path

(** Ranks touched, in order of first appearance. *)
val ranks_of : path -> int list

val pp_step : Scalana_psg.Psg.t -> step Fmt.t
val pp_path : Scalana_psg.Psg.t -> path Fmt.t
