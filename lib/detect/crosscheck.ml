(* Static-vs-dynamic cross-check: for every non-scalable vertex carrying
   a symbolic prediction, re-evaluate the static communication model at
   the session's scales, fit the same log-log line the dynamic analysis
   fits to measured times, and compare slopes.  Agreement corroborates
   the dynamic verdict (the measured loss has the shape the code's
   communication structure predicts); divergence means the model and the
   measurement disagree about *why* the vertex scales badly and is
   surfaced as a model mismatch. *)

open Scalana_psg
open Scalana_cfg

type verdict = {
  cv_vertex : int;
  cv_pred : Commcost.pred;  (* the static prediction on the vertex *)
  cv_model_slope : float option;  (* None: no model series at this site *)
  cv_measured_slope : float;
  cv_agrees : bool option;  (* None when there is no model slope *)
}

type t = {
  cx_scales : int list;
  cx_exact : bool;  (* the model walks resolved all rank arithmetic *)
  cx_tolerance : float;
  cx_verdicts : verdict list;  (* finding order *)
}

(* Slopes are exponents of p; a quarter of a doubling step separates
   O(1) from O(sqrt p) comfortably while absorbing fit noise. *)
let default_tolerance = 0.25

let run ?(tolerance = default_tolerance) ~psg ~program ~scales
    (findings : Nonscalable.finding list) =
  let exact, series = Commcost.model_series program ~scales in
  let slope_at func loc =
    List.find_opt
      (fun ((f, l), _) ->
        String.equal f func && Scalana_mlang.Loc.equal l loc)
      series
    |> Option.map (fun (_, pts) -> (Loglog.fit pts).Loglog.slope)
  in
  let verdicts =
    List.filter_map
      (fun (f : Nonscalable.finding) ->
        match Psg.static_pred psg f.Nonscalable.vertex with
        | None -> None
        | Some pred ->
            let v = Psg.vertex psg f.Nonscalable.vertex in
            let model = slope_at v.Vertex.func v.Vertex.loc in
            let agrees =
              Option.map
                (fun m ->
                  Float.abs (m -. f.Nonscalable.slope) <= tolerance)
                model
            in
            Some
              {
                cv_vertex = f.Nonscalable.vertex;
                cv_pred = pred;
                cv_model_slope = model;
                cv_measured_slope = f.Nonscalable.slope;
                cv_agrees = agrees;
              })
      findings
  in
  { cx_scales = scales; cx_exact = exact; cx_tolerance = tolerance;
    cx_verdicts = verdicts }

let verdict_for t vid =
  List.find_opt (fun v -> v.cv_vertex = vid) t.cx_verdicts

let confirmed t = List.filter (fun v -> v.cv_agrees = Some true) t.cx_verdicts
let mismatches t = List.filter (fun v -> v.cv_agrees = Some false) t.cx_verdicts

(* Does the static model confirm any vertex on this backtracking path?
   Root-cause walks start at a detected vertex; a confirmed start means
   the loss the path explains has the statically predicted shape. *)
let confirms_path t (path : Backtrack.path) =
  List.exists
    (fun (s : Backtrack.step) ->
      match verdict_for t s.Backtrack.vertex with
      | Some v -> v.cv_agrees = Some true
      | None -> false)
    path

(* The inline annotation on a non-scalable report row. *)
let annotation v =
  match (v.cv_model_slope, v.cv_agrees) with
  | Some m, Some true ->
      Printf.sprintf "  [predicted %s, model slope %+.2f, measured %+.2f — confirmed]"
        v.cv_pred.Commcost.pred_label m v.cv_measured_slope
  | Some m, Some false ->
      Printf.sprintf "  [predicted %s, model slope %+.2f, measured %+.2f — MISMATCH]"
        v.cv_pred.Commcost.pred_label m v.cv_measured_slope
  | _ ->
      Printf.sprintf "  [predicted %s, no model series]"
        v.cv_pred.Commcost.pred_label

let pp psg ppf t =
  Fmt.pf ppf "@.-- static model cross-check (scales %s, tolerance %.2f) --@."
    (String.concat "," (List.map string_of_int t.cx_scales))
    t.cx_tolerance;
  if not t.cx_exact then
    Fmt.pf ppf "  (model approximate: walks hit unanalyzable constructs)@.";
  let conf = List.length (confirmed t) in
  let mis = mismatches t in
  let unmodeled =
    List.length (List.filter (fun v -> v.cv_agrees = None) t.cx_verdicts)
  in
  Fmt.pf ppf "  %d prediction%s checked: %d confirmed, %d mismatched, %d without model@."
    (List.length t.cx_verdicts)
    (if List.length t.cx_verdicts = 1 then "" else "s")
    conf (List.length mis) unmodeled;
  if mis <> [] then begin
    Fmt.pf ppf "  model mismatches:@.";
    List.iter
      (fun v ->
        let vx = Psg.vertex psg v.cv_vertex in
        Fmt.pf ppf "    %s @%a: predicted %s (model slope %s), measured %+.2f@."
          (Vertex.label vx) Scalana_mlang.Loc.pp vx.Vertex.loc
          v.cv_pred.Commcost.pred_label
          (match v.cv_model_slope with
          | Some m -> Printf.sprintf "%+.2f" m
          | None -> "?")
          v.cv_measured_slope)
      mis
  end
