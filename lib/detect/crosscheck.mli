(** Static-vs-dynamic cross-check: re-evaluate the symbolic
    communication model at the session's scales, fit the same log-log
    line the dynamic analysis fits to measured times, and compare the
    slopes.  Agreement corroborates a non-scalable verdict; divergence
    is surfaced as a model mismatch. *)

type verdict = {
  cv_vertex : int;
  cv_pred : Scalana_cfg.Commcost.pred;
      (** the static prediction attached to the vertex *)
  cv_model_slope : float option;
      (** slope of the model-time series; [None] when the model has no
          series at the vertex's site (e.g. a loop vertex) *)
  cv_measured_slope : float;  (** the dynamic log-log fit *)
  cv_agrees : bool option;  (** [None] when there is no model slope *)
}

type t = {
  cx_scales : int list;
  cx_exact : bool;
      (** the model walks resolved all rank arithmetic; approximate
          models still cross-check but say so *)
  cx_tolerance : float;
  cx_verdicts : verdict list;  (** in finding order *)
}

(** |model − measured| bound for agreement, in slope units. *)
val default_tolerance : float

(** One verdict per non-scalable finding whose vertex carries a static
    prediction ({!Scalana_psg.Psg.static_pred}). *)
val run :
  ?tolerance:float ->
  psg:Scalana_psg.Psg.t ->
  program:Scalana_mlang.Ast.program ->
  scales:int list ->
  Nonscalable.finding list ->
  t

val verdict_for : t -> int -> verdict option
val confirmed : t -> verdict list
val mismatches : t -> verdict list

(** Does any vertex on the path carry a confirmed verdict?  Used to
    raise root-cause confidence. *)
val confirms_path : t -> Backtrack.path -> bool

(** The inline row annotation, e.g.
    [  [predicted O(p), model slope -0.50, measured -0.50 — confirmed]]. *)
val annotation : verdict -> string

(** The report section: summary counts plus the model-mismatch rows. *)
val pp : Scalana_psg.Psg.t -> Format.formatter -> t -> unit
