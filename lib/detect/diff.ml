(* Cross-session regression diffing.

   Vertices are aligned structurally — label + source location + call
   path — because vertex ids are session-local (a recompile or a
   source edit reorders them).  Alignment is tolerant by construction:
   a key present on one side only becomes `new` / `gone` instead of an
   error, which is what makes diffing across code changes useful.

   The per-vertex slope is recomputed here for every touched vertex
   with exactly the detector's recipe (same aggregation strategy, same
   effective-scale axis), not just for the top-k findings: a regression
   is most interesting precisely when a vertex that used to be below
   the reporting threshold climbs over it. *)

open Scalana_ppg
module Obs = Scalana_obs.Obs

type key = { k_label : string; k_loc : string; k_callpath : string list }

let key_string k =
  let base = Printf.sprintf "%s @%s" k.k_label k.k_loc in
  match k.k_callpath with
  | [] -> base
  | cp -> Printf.sprintf "%s via %s" base (String.concat ">" cp)

let key_of_vertex psg vid =
  let v = Scalana_psg.Psg.vertex psg vid in
  {
    k_label = Scalana_psg.Vertex.label v;
    k_loc = Scalana_mlang.Loc.to_string v.Scalana_psg.Vertex.loc;
    k_callpath =
      List.map Scalana_mlang.Loc.to_string v.Scalana_psg.Vertex.callpath;
  }

type vstat = {
  vs_slope : float option;
  vs_points : int;
  vs_coverage : float;
  vs_time : float;
  vs_wait : float;
  vs_fraction : float;
  vs_wait_mix : (string * float) list;
}

type summary = {
  s_label : string;
  s_program : string;
  s_scales : int list;
  s_degraded : bool;
  s_rank_coverage : float;
  s_total_time : float;
  s_wait_mix : (string * float) list;
  s_vertices : (key * vstat) list;
}

let summarize ?(label = "") ?(strategy = Aggregate.Mean) ~psg ~crossscale
    ~quality ?waitstate ~program () =
  Obs.with_span "diff.summarize" ~args:[ ("program", program) ] @@ fun () ->
  let cs = crossscale in
  let _, largest_ppg = Crossscale.largest cs in
  let total = Ppg.total_time largest_ppg in
  let eval vertex =
    let series =
      List.map
        (fun (n, ppg) ->
          match Ppg.row_offset ppg ~vertex with
          | Some off ->
              ( n,
                Aggregate.apply_slice strategy (Ppg.times_col ppg) ~off
                  ~len:ppg.Ppg.nprocs )
          | None -> (n, 0.0))
        cs.Crossscale.runs
    in
    let fit =
      Loglog.fit_scaled
        (List.map
           (fun (n, t) -> (Crossscale.effective_scale cs ~nprocs:n, t))
           series)
    in
    let at_largest =
      match Ppg.row_offset largest_ppg ~vertex with
      | Some off ->
          Aggregate.sum_clean_slice (Ppg.times_col largest_ppg) ~off
            ~len:largest_ppg.Ppg.nprocs
      | None -> 0.0
    in
    let wait_mix =
      match waitstate with
      | None -> []
      | Some ws ->
          List.map
            (fun (c, t) -> (Waitstate.class_name c, t))
            (Waitstate.vertex_evidence ws ~vertex)
    in
    {
      vs_slope = (if fit.Loglog.n >= 2 then Some fit.Loglog.slope else None);
      vs_points = fit.Loglog.n;
      vs_coverage = Ppg.coverage largest_ppg ~vertex;
      vs_time = at_largest;
      vs_wait = Ppg.total_wait largest_ppg ~vertex;
      vs_fraction = (if total > 0.0 then at_largest /. total else 0.0);
      vs_wait_mix = wait_mix;
    }
  in
  let vertices =
    List.map
      (fun vid -> (key_of_vertex psg vid, eval vid))
      (Crossscale.touched_vertices cs)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Obs.Metrics.incr ~by:(List.length vertices) "diff.vertices_summarized";
  {
    s_label = label;
    s_program = program;
    s_scales = Crossscale.scales cs;
    s_degraded = not (Quality.is_clean quality);
    s_rank_coverage = quality.Quality.rank_coverage;
    s_total_time = total;
    s_wait_mix =
      (match waitstate with
      | None -> []
      | Some ws ->
          List.map
            (fun (c, t) -> (Waitstate.class_name c, t))
            ws.Waitstate.class_totals);
    s_vertices = vertices;
  }

type thresholds = {
  slope_tol : float;
  time_tol : float;
  wait_tol : float;
  min_fraction : float;
}

let default_thresholds =
  { slope_tol = 0.10; time_tol = 0.25; wait_tol = 0.25; min_fraction = 0.01 }

type verdict = Regressed | Improved | Unchanged | New | Gone

let verdict_name = function
  | Regressed -> "regressed"
  | Improved -> "improved"
  | Unchanged -> "unchanged"
  | New -> "new"
  | Gone -> "gone"

type delta = {
  d_key : key;
  d_verdict : verdict;
  d_base : vstat option;
  d_cand : vstat option;
  d_slope_delta : float option;
  d_time_ratio : float;
  d_wait_ratio : float;
  d_reasons : string list;
}

type t = {
  base : summary;
  cand : summary;
  deltas : delta list;
  n_regressed : int;
  n_improved : int;
  n_unchanged : int;
  n_new : int;
  n_gone : int;
  n_skipped : int;
  degraded : bool;
  thresholds : thresholds;
}

(* All comparisons strict: a delta exactly at a tolerance is benign.
   Regressions win over improvements when a vertex moves both ways
   (e.g. slope worsens while absolute time drops). *)
let classify th (b : vstat) (c : vstat) =
  let slope_delta =
    match (b.vs_slope, c.vs_slope) with
    | Some sb, Some sc -> Some (sc -. sb)
    | _ -> None
  in
  let time_ratio = if b.vs_time > 0.0 then c.vs_time /. b.vs_time else 0.0 in
  let wait_ratio =
    if b.vs_wait > 1e-12 then c.vs_wait /. b.vs_wait else 0.0
  in
  let regress = ref [] and improve = ref [] in
  let push r msg = r := msg :: !r in
  (match slope_delta with
  | Some d when d > th.slope_tol ->
      push regress (Printf.sprintf "slope delta %+.2f > %+.2f" d th.slope_tol)
  | Some d when -.d > th.slope_tol ->
      push improve (Printf.sprintf "slope delta %+.2f" d)
  | _ -> ());
  (if b.vs_time > 0.0 then
     let rel = (c.vs_time -. b.vs_time) /. b.vs_time in
     if rel > th.time_tol then
       push regress
         (Printf.sprintf "time grew %.0f%% > %.0f%%" (100. *. rel)
            (100. *. th.time_tol))
     else if -.rel > th.time_tol then
       push improve (Printf.sprintf "time shrank %.0f%%" (-100. *. rel)));
  (if b.vs_wait > 1e-12 && c.vs_wait -. b.vs_wait > 1e-9 then
     let rel = (c.vs_wait -. b.vs_wait) /. b.vs_wait in
     if rel > th.wait_tol then
       push regress
         (Printf.sprintf "wait grew %.0f%% > %.0f%%" (100. *. rel)
            (100. *. th.wait_tol)));
  let verdict =
    if !regress <> [] then Regressed
    else if !improve <> [] then Improved
    else Unchanged
  in
  (verdict, slope_delta, time_ratio, wait_ratio, List.rev (!regress @ !improve))

let verdict_rank = function
  | Regressed -> 0
  | Improved -> 1
  | New -> 2
  | Gone -> 3
  | Unchanged -> 4

let severity d =
  let s = match d.d_slope_delta with Some v -> Float.abs v | None -> 0.0 in
  s +. Float.abs (d.d_time_ratio -. 1.0)

let compare_summaries ?(thresholds = default_thresholds) ~base ~cand () =
  Obs.with_span "diff.compare" @@ fun () ->
  let th = thresholds in
  let cand_tbl = Hashtbl.create (List.length cand.s_vertices) in
  List.iter (fun (k, v) -> Hashtbl.replace cand_tbl k v) cand.s_vertices;
  let base_tbl = Hashtbl.create (List.length base.s_vertices) in
  List.iter (fun (k, v) -> Hashtbl.replace base_tbl k v) base.s_vertices;
  let skipped = ref 0 in
  let eligible fraction = fraction >= th.min_fraction in
  let paired =
    List.filter_map
      (fun (k, b) ->
        match Hashtbl.find_opt cand_tbl k with
        | None -> None
        | Some c ->
            if eligible b.vs_fraction || eligible c.vs_fraction then begin
              let verdict, slope_delta, time_ratio, wait_ratio, reasons =
                classify th b c
              in
              Some
                {
                  d_key = k;
                  d_verdict = verdict;
                  d_base = Some b;
                  d_cand = Some c;
                  d_slope_delta = slope_delta;
                  d_time_ratio = time_ratio;
                  d_wait_ratio = wait_ratio;
                  d_reasons = reasons;
                }
            end
            else begin
              incr skipped;
              None
            end)
      base.s_vertices
  in
  let one_sided verdict stat k (v : vstat) =
    if eligible v.vs_fraction then
      Some
        {
          d_key = k;
          d_verdict = verdict;
          d_base = (if stat = `Base then Some v else None);
          d_cand = (if stat = `Cand then Some v else None);
          d_slope_delta = None;
          d_time_ratio = 0.0;
          d_wait_ratio = 0.0;
          d_reasons = [];
        }
    else begin
      incr skipped;
      None
    end
  in
  let gone =
    List.filter_map
      (fun (k, b) ->
        if Hashtbl.mem cand_tbl k then None else one_sided Gone `Base k b)
      base.s_vertices
  in
  let fresh =
    List.filter_map
      (fun (k, c) ->
        if Hashtbl.mem base_tbl k then None else one_sided New `Cand k c)
      cand.s_vertices
  in
  let deltas =
    List.sort
      (fun a b ->
        compare
          (verdict_rank a.d_verdict, -.severity a, a.d_key)
          (verdict_rank b.d_verdict, -.severity b, b.d_key))
      (paired @ gone @ fresh)
  in
  let count v = List.length (List.filter (fun d -> d.d_verdict = v) deltas) in
  let t =
    {
      base;
      cand;
      deltas;
      n_regressed = count Regressed;
      n_improved = count Improved;
      n_unchanged = count Unchanged;
      n_new = count New;
      n_gone = count Gone;
      n_skipped = !skipped;
      degraded = base.s_degraded || cand.s_degraded;
      thresholds = th;
    }
  in
  Obs.Metrics.incr ~by:(List.length deltas) "diff.vertices_aligned";
  Obs.Metrics.incr ~by:t.n_regressed "diff.regressed";
  Obs.Metrics.incr ~by:t.n_improved "diff.improved";
  Obs.Metrics.incr ~by:t.n_new "diff.new";
  Obs.Metrics.incr ~by:t.n_gone "diff.gone";
  t

let has_regressions t = t.n_regressed > 0

(* --- rendering --- *)

let pp_slope ppf = function
  | Some s -> Fmt.pf ppf "%+.2f" s
  | None -> Fmt.pf ppf "n/a"

let pp_session ppf (role, s) =
  Fmt.pf ppf "  %s: %s%s (scales %s%s)@." role
    (if s.s_label = "" then s.s_program else s.s_label)
    (if s.s_label = "" then "" else Printf.sprintf " [%s]" s.s_program)
    (String.concat "," (List.map string_of_int s.s_scales))
    (if s.s_degraded then "; DEGRADED" else "")

let pp_pair ppf d =
  match (d.d_base, d.d_cand) with
  | Some b, Some c ->
      Fmt.pf ppf "      slope %a -> %a%s  time %.4gs -> %.4gs%s@." pp_slope
        b.vs_slope pp_slope c.vs_slope
        (match d.d_slope_delta with
        | Some sd -> Printf.sprintf " (delta %+.2f)" sd
        | None -> "")
        b.vs_time c.vs_time
        (if d.d_time_ratio > 0.0 then
           Printf.sprintf " (%.2fx)" d.d_time_ratio
         else "");
      Fmt.pf ppf "      wait %.4gs -> %.4gs  coverage %.0f%% -> %.0f%%@."
        b.vs_wait c.vs_wait (100. *. b.vs_coverage) (100. *. c.vs_coverage);
      if d.d_reasons <> [] then
        Fmt.pf ppf "      triggers: %s@." (String.concat "; " d.d_reasons)
  | _ ->
      let v = match (d.d_base, d.d_cand) with
        | Some v, _ | _, Some v -> v
        | None, None -> assert false
      in
      Fmt.pf ppf "      slope %a  time %.4gs (%.1f%% of total)@." pp_slope
        v.vs_slope v.vs_time (100. *. v.vs_fraction)

let pp_group ppf t verdict title =
  let group = List.filter (fun d -> d.d_verdict = verdict) t.deltas in
  if group <> [] then begin
    Fmt.pf ppf "@.-- %s (%d) --@." title (List.length group);
    List.iter
      (fun d ->
        Fmt.pf ppf "  %s@." (key_string d.d_key);
        pp_pair ppf d)
      group
  end

let pp ppf t =
  Fmt.pf ppf "=== ScalAna session diff ===@.";
  pp_session ppf ("base", t.base);
  pp_session ppf ("cand", t.cand);
  Fmt.pf ppf
    "  thresholds: slope delta > %+.2f, time growth > %.0f%%, wait growth > \
     %.0f%%, min fraction %.1f%%@."
    t.thresholds.slope_tol
    (100. *. t.thresholds.time_tol)
    (100. *. t.thresholds.wait_tol)
    (100. *. t.thresholds.min_fraction);
  Fmt.pf ppf
    "  aligned %d vertices: %d regressed, %d improved, %d unchanged; %d new, \
     %d gone (%d below min fraction)@."
    (t.n_regressed + t.n_improved + t.n_unchanged)
    t.n_regressed t.n_improved t.n_unchanged t.n_new t.n_gone t.n_skipped;
  Fmt.pf ppf "  verdict: %s@."
    (if t.degraded then "DEGRADED INPUT"
     else if has_regressions t then
       Printf.sprintf "REGRESSION (%d vertices)" t.n_regressed
     else "CLEAN");
  pp_group ppf t Regressed "regressed";
  pp_group ppf t Improved "improved";
  pp_group ppf t New "new vertices";
  pp_group ppf t Gone "gone vertices"
