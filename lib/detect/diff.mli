(** Cross-session regression diffing.

    [Diff] compares two detect runs of the same program — typically two
    commits, or clean vs. patched — by aligning PSG vertices
    structurally (label + source location + call path, so vertex ids
    may differ between sessions) and classifying each aligned pair's
    slope / time / wait deltas against configurable thresholds.

    A {!summary} is the self-contained per-session half: it recomputes
    the log-log slope for {e every} touched vertex (not just the top-k
    findings), so two summaries can be compared without access to the
    original sessions.  [scalana-diff] builds one per session and calls
    {!compare_summaries}; the exit-code convention mirrors the rest of
    the CLI: 0 clean, 1 regression, 2 degraded input. *)

(** Structural identity of a vertex across sessions. *)
type key = {
  k_label : string;  (** {!Scalana_psg.Vertex.label} *)
  k_loc : string;  (** "file:line" *)
  k_callpath : string list;  (** call-site locations, outermost first *)
}

val key_string : key -> string

(** Structural key of vertex [vid] in [psg]. *)
val key_of_vertex : Scalana_psg.Psg.t -> int -> key

(** Per-vertex statistics within one session. *)
type vstat = {
  vs_slope : float option;  (** log-log slope; [None] when < 2 fit points *)
  vs_points : int;  (** scale points the fit used *)
  vs_coverage : float;  (** surviving-rank coverage at the largest scale *)
  vs_time : float;  (** aggregate time at the largest scale, seconds *)
  vs_wait : float;  (** sampled wait time at the largest scale, seconds *)
  vs_fraction : float;  (** share of total time at the largest scale *)
  vs_wait_mix : (string * float) list;
      (** wait-class name → attributed seconds (only when wait-state
          analysis ran) *)
}

(** One session, summarised for diffing. *)
type summary = {
  s_label : string;
  s_program : string;
  s_scales : int list;
  s_degraded : bool;
  s_rank_coverage : float;
  s_total_time : float;  (** total time at the largest scale *)
  s_wait_mix : (string * float) list;  (** session-level wait-class totals *)
  s_vertices : (key * vstat) list;  (** sorted by key *)
}

(** Build a summary from an analysed session.  Slopes are recomputed
    with the same aggregation strategy and effective-scale axis the
    detector uses, for every touched vertex. *)
val summarize :
  ?label:string ->
  ?strategy:Aggregate.strategy ->
  psg:Scalana_psg.Psg.t ->
  crossscale:Scalana_ppg.Crossscale.t ->
  quality:Quality.t ->
  ?waitstate:Waitstate.t ->
  program:string ->
  unit ->
  summary

(** Classification thresholds.  All comparisons are strict ([>]), so a
    delta exactly at a threshold is {e not} a regression. *)
type thresholds = {
  slope_tol : float;  (** absolute slope-delta tolerance *)
  time_tol : float;  (** relative time-growth tolerance *)
  wait_tol : float;  (** relative wait-growth tolerance *)
  min_fraction : float;
      (** vertices below this share of total time on both sides are
          reported only in the skipped count *)
}

val default_thresholds : thresholds

type verdict = Regressed | Improved | Unchanged | New | Gone

val verdict_name : verdict -> string

(** One aligned (or one-sided) vertex comparison. *)
type delta = {
  d_key : key;
  d_verdict : verdict;
  d_base : vstat option;  (** [None] for [New] *)
  d_cand : vstat option;  (** [None] for [Gone] *)
  d_slope_delta : float option;  (** cand - base, when both fitted *)
  d_time_ratio : float;  (** cand/base time, 0 when base has none *)
  d_wait_ratio : float;
  d_reasons : string list;  (** human-readable trigger descriptions *)
}

type t = {
  base : summary;
  cand : summary;
  deltas : delta list;  (** regressed, improved, new, gone, unchanged *)
  n_regressed : int;
  n_improved : int;
  n_unchanged : int;
  n_new : int;
  n_gone : int;
  n_skipped : int;  (** below [min_fraction] on both sides *)
  degraded : bool;  (** either input session was degraded *)
  thresholds : thresholds;
}

val compare_summaries :
  ?thresholds:thresholds -> base:summary -> cand:summary -> unit -> t

val has_regressions : t -> bool

(** The scalana-diff text report. *)
val pp : Format.formatter -> t -> unit
