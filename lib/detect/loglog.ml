(* Log–log model fitting (Section IV-A cites Barnes et al.'s
   regression-based approach): fit  log T = a + b log P  by ordinary
   least squares; the slope b is the vertex's "changing rate" as the
   scale grows. *)

type fit = { intercept : float; slope : float; r2 : float; n : int }

(* Points with non-positive T or P are dropped (a vertex absent at a
   scale).  The scale axis is a float so elastic sessions can fit
   against their *effective* (time-weighted mean) process count; an
   integer nominal scale goes through [fit] below bit-identically. *)
let fit_scaled points =
  let pts =
    List.filter_map
      (fun (p, t) -> if t > 0.0 && p > 0.0 then Some (log p, log t) else None)
      points
  in
  let n = List.length pts in
  if n < 2 then { intercept = 0.0; slope = 0.0; r2 = 0.0; n }
  else begin
    let fn = float_of_int n in
    let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 pts in
    let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 pts in
    let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 pts in
    let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 pts in
    let denom = (fn *. sxx) -. (sx *. sx) in
    if abs_float denom < 1e-12 then { intercept = 0.0; slope = 0.0; r2 = 0.0; n }
    else begin
      let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
      let intercept = (sy -. (slope *. sx)) /. fn in
      let ybar = sy /. fn in
      let ss_tot =
        List.fold_left (fun acc (_, y) -> acc +. ((y -. ybar) ** 2.0)) 0.0 pts
      in
      let ss_res =
        List.fold_left
          (fun acc (x, y) ->
            let e = y -. (intercept +. (slope *. x)) in
            acc +. (e *. e))
          0.0 pts
      in
      let r2 = if ss_tot > 0.0 then 1.0 -. (ss_res /. ss_tot) else 1.0 in
      { intercept; slope; r2; n }
    end
  end

let fit points =
  fit_scaled (List.map (fun (p, t) -> (float_of_int p, t)) points)

(* Predicted value at scale [p]. *)
let predict f p = exp (f.intercept +. (f.slope *. log (float_of_int p)))

(* Ideal strong-scaling slope: time halves when processes double. *)
let ideal_strong_scaling_slope = -1.0
