(** Log–log model fitting: ordinary least squares on
    [log T = a + b log P]; the slope is a vertex's changing rate as the
    job scale grows. *)

type fit = { intercept : float; slope : float; r2 : float; n : int }

(** Points with non-positive values are dropped; fewer than two valid
    points yield a zero fit with [n < 2]. *)
val fit : (int * float) list -> fit

(** Same model with a real-valued scale axis — elastic sessions fit
    against their effective (time-weighted mean) process count.
    [fit] is [fit_scaled] over [float_of_int] scales, bit for bit. *)
val fit_scaled : (float * float) list -> fit

val predict : fit -> int -> float

(** -1: time halves when the process count doubles. *)
val ideal_strong_scaling_slope : float
