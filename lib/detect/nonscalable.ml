(* Non-scalable vertex detection (Section IV-A).

   For every vertex, merge its per-rank time at each job scale with the
   chosen strategy, fit the log–log model, and rank vertices by their
   slope (changing rate).  Vertices whose share of total time is
   negligible at the largest scale are filtered out first. *)

open Scalana_ppg

type finding = {
  vertex : int;
  slope : float;
  score : float;  (* slope - ideal slope; > 0 scales worse than ideal *)
  fraction : float;  (* share of total time at the largest scale *)
  fit : Loglog.fit;
  series : (int * float) list;  (* (nprocs, aggregated time) *)
}

type config = {
  strategy : Aggregate.strategy;
  min_fraction : float;  (* ignore vertices below this share of time *)
  top_k : int;
  min_score : float;  (* only report vertices at least this non-scalable *)
}

let default_config =
  { strategy = Aggregate.Mean; min_fraction = 0.01; top_k = 5; min_score = 0.25 }

let detect ?(config = default_config) ?pool (cs : Crossscale.t) =
  let _, largest_ppg = Crossscale.largest cs in
  let total = Ppg.total_time largest_ppg in
  (* per-vertex work is pure (the PPG caches are frozen at build time),
     so the aggregation + fit loop fans out across domains; parallel_map
     preserves input order, keeping the ranking stable *)
  let eval vertex =
    let series =
      List.map
        (fun (n, per_rank) -> (n, Aggregate.apply config.strategy per_rank))
        (Crossscale.series cs ~vertex)
    in
    let at_largest =
      Array.fold_left ( +. ) 0.0 (Ppg.times_across_ranks largest_ppg ~vertex)
    in
    let fraction = if total > 0.0 then at_largest /. total else 0.0 in
    if fraction < config.min_fraction then None
    else begin
      let fit = Loglog.fit series in
      if fit.Loglog.n < 2 then None
      else begin
        let score = fit.slope -. Loglog.ideal_strong_scaling_slope in
        Some { vertex; slope = fit.slope; score; fraction; fit; series }
      end
    end
  in
  let findings =
    Scalana_pool.Pool.parallel_map ?pool eval (Crossscale.touched_vertices cs)
    |> List.filter_map Fun.id
  in
  let ranked =
    List.sort (fun a b -> compare b.score a.score) findings
    |> List.filter (fun f -> f.score >= config.min_score)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take config.top_k ranked

let pp_finding psg ppf f =
  let v = Scalana_psg.Psg.vertex psg f.vertex in
  Fmt.pf ppf "%-28s slope=%+.2f score=%.2f frac=%4.1f%% @%a"
    (Scalana_psg.Vertex.label v) f.slope f.score (100.0 *. f.fraction)
    Scalana_mlang.Loc.pp v.Scalana_psg.Vertex.loc
