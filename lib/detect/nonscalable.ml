(* Non-scalable vertex detection (Section IV-A).

   For every vertex, merge its per-rank time at each job scale with the
   chosen strategy, fit the log–log model, and rank vertices by their
   slope (changing rate).  Vertices whose share of total time is
   negligible at the largest scale are filtered out first.

   Degraded mode: per-rank values poisoned by a fault (NaN/negative) are
   quarantined before merging, and a vertex that *lost* data only keeps a
   verdict when at least [min_points] clean scale points survive —
   otherwise it is reported as "insufficient data" instead of being
   silently ranked on a fit the faults could have bent.  Vertices with no
   quarantined data follow the original paper path untouched. *)

open Scalana_ppg

type finding = {
  vertex : int;
  slope : float;
  score : float;  (* slope - ideal slope; > 0 scales worse than ideal *)
  fraction : float;  (* share of total time at the largest scale *)
  fit : Loglog.fit;
  series : (int * float) list;  (* (nprocs, aggregated time) *)
}

(* A vertex whose data the faults damaged too much to rank honestly. *)
type insufficient = {
  ins_vertex : int;
  clean_points : int;  (* scale points that survived quarantine *)
  dropped_values : int;  (* per-rank values quarantined across scales *)
}

type result = {
  findings : finding list;  (* ranked, as before *)
  insufficient : insufficient list;
  quarantined_values : int;  (* total poisoned values dropped *)
}

type config = {
  strategy : Aggregate.strategy;
  min_fraction : float;  (* ignore vertices below this share of time *)
  top_k : int;
  min_score : float;  (* only report vertices at least this non-scalable *)
  min_points : int;  (* clean scale points required once data was lost *)
}

let default_config =
  {
    strategy = Aggregate.Mean;
    min_fraction = 0.01;
    top_k = 5;
    min_score = 0.25;
    min_points = 3;
  }

let detect_result ?(config = default_config) ?pool (cs : Crossscale.t) =
  Scalana_obs.Obs.with_span "nonscalable.detect" @@ fun () ->
  let _, largest_ppg = Crossscale.largest cs in
  let total = Ppg.total_time largest_ppg in
  (* per-vertex work is pure (the PPG columns are frozen at build time),
     so the aggregation + fit loop fans out across domains; parallel_map
     preserves input order, keeping the ranking stable.  Each scale's
     per-rank values are scanned in place over the vertex's column
     slice — no per-(vertex, scale) array materializes. *)
  let eval vertex =
    let dropped =
      List.fold_left
        (fun acc (_, ppg) ->
          match Ppg.row_offset ppg ~vertex with
          | Some off ->
              acc
              + Aggregate.quarantined_in_slice (Ppg.times_col ppg) ~off
                  ~len:ppg.Ppg.nprocs
          | None -> acc)
        0 cs.Crossscale.runs
    in
    let series =
      List.map
        (fun (n, ppg) ->
          match Ppg.row_offset ppg ~vertex with
          | Some off ->
              ( n,
                Aggregate.apply_slice config.strategy (Ppg.times_col ppg) ~off
                  ~len:ppg.Ppg.nprocs )
          | None -> (n, 0.0))
        cs.Crossscale.runs
    in
    let at_largest =
      match Ppg.row_offset largest_ppg ~vertex with
      | Some off ->
          Aggregate.sum_clean_slice (Ppg.times_col largest_ppg) ~off
            ~len:largest_ppg.Ppg.nprocs
      | None -> 0.0
    in
    let fraction = if total > 0.0 then at_largest /. total else 0.0 in
    if fraction < config.min_fraction then (None, None, dropped)
    else begin
      Scalana_obs.Obs.Metrics.incr "loglog.fits";
      (* fit against *effective* scales: an elastic run's time-weighted
         mean membership replaces the nominal count on the P axis (for a
         fixed-membership run the two coincide bit for bit) *)
      let fit =
        Loglog.fit_scaled
          (List.map
             (fun (n, t) -> (Crossscale.effective_scale cs ~nprocs:n, t))
             series)
      in
      if dropped > 0 && fit.Loglog.n < config.min_points then
        ( None,
          Some
            {
              ins_vertex = vertex;
              clean_points = fit.Loglog.n;
              dropped_values = dropped;
            },
          dropped )
      else if fit.Loglog.n < 2 then (None, None, dropped)
      else begin
        let score = fit.slope -. Loglog.ideal_strong_scaling_slope in
        (Some { vertex; slope = fit.slope; score; fraction; fit; series },
         None, dropped)
      end
    end
  in
  let touched = Crossscale.touched_vertices cs in
  (* the per-vertex aggregate+fit loop is the detection hot spot; its own
     span separates fitting cost from the surrounding ranking *)
  let evaluated =
    Scalana_obs.Obs.with_span
      ~args:[ ("vertices", string_of_int (List.length touched)) ]
      "loglog.fit_batch"
      (fun () -> Scalana_pool.Pool.parallel_map ?pool eval touched)
  in
  let findings = List.filter_map (fun (f, _, _) -> f) evaluated in
  let insufficient = List.filter_map (fun (_, i, _) -> i) evaluated in
  let quarantined_values =
    List.fold_left (fun acc (_, _, d) -> acc + d) 0 evaluated
  in
  let ranked =
    List.sort (fun a b -> compare b.score a.score) findings
    |> List.filter (fun f -> f.score >= config.min_score)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  { findings = take config.top_k ranked; insufficient; quarantined_values }

let detect ?config ?pool cs = (detect_result ?config ?pool cs).findings

let pp_finding psg ppf f =
  let v = Scalana_psg.Psg.vertex psg f.vertex in
  Fmt.pf ppf "%-28s slope=%+.2f score=%.2f frac=%4.1f%% @%a"
    (Scalana_psg.Vertex.label v) f.slope f.score (100.0 *. f.fraction)
    Scalana_mlang.Loc.pp v.Scalana_psg.Vertex.loc

let pp_insufficient psg ppf i =
  let v = Scalana_psg.Psg.vertex psg i.ins_vertex in
  Fmt.pf ppf "%-28s %d clean scale point%s (%d value%s quarantined) @%a"
    (Scalana_psg.Vertex.label v) i.clean_points
    (if i.clean_points = 1 then "" else "s")
    i.dropped_values
    (if i.dropped_values = 1 then "" else "s")
    Scalana_mlang.Loc.pp v.Scalana_psg.Vertex.loc
