(** Non-scalable vertex detection (Section IV-A): merge per-rank times at
    each scale, fit the log–log model, rank by slope; significance-filter
    by share of total time. *)

type finding = {
  vertex : int;
  slope : float;
  score : float;  (** slope - ideal slope; > 0 scales worse than ideal *)
  fraction : float;  (** share of total time at the largest scale *)
  fit : Loglog.fit;
  series : (int * float) list;
}

type config = {
  strategy : Aggregate.strategy;
  min_fraction : float;
  top_k : int;
  min_score : float;
}

val default_config : config

(** With [pool], the per-vertex aggregation + log-log fits run in
    parallel; the ranking is identical to the sequential one. *)
val detect :
  ?config:config ->
  ?pool:Scalana_pool.Pool.t ->
  Scalana_ppg.Crossscale.t ->
  finding list
val pp_finding : Scalana_psg.Psg.t -> finding Fmt.t
