(** Non-scalable vertex detection (Section IV-A): merge per-rank times at
    each scale, fit the log–log model, rank by slope; significance-filter
    by share of total time.  Poisoned per-rank values are quarantined,
    and vertices that lost too many scale points are reported as
    "insufficient data" instead of being ranked. *)

type finding = {
  vertex : int;
  slope : float;
  score : float;  (** slope - ideal slope; > 0 scales worse than ideal *)
  fraction : float;  (** share of total time at the largest scale *)
  fit : Loglog.fit;
  series : (int * float) list;
}

(** A vertex whose data the faults damaged too much to rank honestly. *)
type insufficient = {
  ins_vertex : int;
  clean_points : int;  (** scale points that survived quarantine *)
  dropped_values : int;  (** per-rank values quarantined across scales *)
}

type result = {
  findings : finding list;  (** ranked, as before *)
  insufficient : insufficient list;
  quarantined_values : int;  (** total poisoned values dropped *)
}

type config = {
  strategy : Aggregate.strategy;
  min_fraction : float;
  top_k : int;
  min_score : float;
  min_points : int;
      (** clean scale points required for a verdict once a vertex lost
          data to quarantine; vertices with no loss are exempt *)
}

val default_config : config

(** With [pool], the per-vertex aggregation + log-log fits run in
    parallel; the ranking is identical to the sequential one. *)
val detect_result :
  ?config:config ->
  ?pool:Scalana_pool.Pool.t ->
  Scalana_ppg.Crossscale.t ->
  result

(** Just the ranked findings of {!detect_result}. *)
val detect :
  ?config:config ->
  ?pool:Scalana_pool.Pool.t ->
  Scalana_ppg.Crossscale.t ->
  finding list

val pp_finding : Scalana_psg.Psg.t -> finding Fmt.t
val pp_insufficient : Scalana_psg.Psg.t -> insufficient Fmt.t
