(* Data-quality accounting for degraded-mode analysis.

   Production runs produce imperfect data — ranks die, artifact files get
   truncated, counters return garbage, scale points go missing.  The
   pipeline degrades instead of dying, and this record quantifies exactly
   what was lost so a degraded verdict is never mistaken for a clean one.
   A clean pipeline produces [clean] and the report stays byte-identical
   to a build without the resilience layer. *)

type artifact_issue = {
  ai_path : string;  (* file the damage was found in *)
  ai_kept : int;  (* intact records salvaged from it *)
  ai_detail : string;  (* what was wrong, human-readable *)
}

type run_issue = {
  ri_nprocs : int;
  ri_killed : int list;  (* ranks a fault terminated *)
  ri_stranded : int list;  (* ranks left blocked by a killed peer *)
  ri_attempts : int;  (* profiling attempts (retry-with-new-seed) *)
  ri_left : int list;  (* ranks that left an elastic session *)
  ri_joined : int list;  (* ranks that joined one *)
  ri_epochs : int;  (* membership epochs (0 = not elastic) *)
  ri_backoff : float;  (* total retry backoff the run waited out *)
}

type t = {
  artifact_issues : artifact_issue list;
  run_issues : run_issue list;  (* only degraded or retried runs *)
  dropped_scales : int list;  (* requested scales with no run at all *)
  quarantined_values : int;  (* poisoned per-rank values dropped *)
  insufficient_vertices : int;  (* vertices too damaged to rank *)
  rank_coverage : float;  (* min over runs of surviving/total ranks *)
}

let clean =
  {
    artifact_issues = [];
    run_issues = [];
    dropped_scales = [];
    quarantined_values = 0;
    insufficient_vertices = 0;
    rank_coverage = 1.0;
  }

let is_clean t =
  t.artifact_issues = [] && t.run_issues = [] && t.dropped_scales = []
  && t.quarantined_values = 0
  && t.insufficient_vertices = 0
  && t.rank_coverage >= 1.0

let pp_ranks ppf = function
  | [] -> Fmt.pf ppf "none"
  | rs -> Fmt.pf ppf "{%s}" (String.concat "," (List.map string_of_int rs))

(* The "-- data quality --" section of the text report; only rendered
   when the pipeline degraded (clean runs keep their exact old output). *)
let pp ppf t =
  Fmt.pf ppf "@.-- data quality (degraded inputs) --@.";
  Fmt.pf ppf "  rank coverage: %.1f%%@." (100.0 *. t.rank_coverage);
  List.iter
    (fun a ->
      Fmt.pf ppf "  artifact damage: %s: %s (%d record%s salvaged)@."
        (Filename.basename a.ai_path)
        a.ai_detail a.ai_kept
        (if a.ai_kept = 1 then "" else "s"))
    t.artifact_issues;
  List.iter
    (fun r ->
      let backoff ppf =
        if r.ri_backoff > 0.0 then Fmt.pf ppf ", %.3fs backoff" r.ri_backoff
      in
      if r.ri_left <> [] || r.ri_joined <> [] then
        Fmt.pf ppf
          "  elastic run: np=%d left=%a joined=%a stranded=%a (%d epoch%s, %d \
           attempt%s%t)@."
          r.ri_nprocs pp_ranks r.ri_left pp_ranks r.ri_joined pp_ranks
          r.ri_stranded r.ri_epochs
          (if r.ri_epochs = 1 then "" else "s")
          r.ri_attempts
          (if r.ri_attempts = 1 then "" else "s")
          backoff
      else
        Fmt.pf ppf
          "  degraded run: np=%d killed ranks=%a stranded=%a (%d attempt%s%t)@."
          r.ri_nprocs pp_ranks r.ri_killed pp_ranks r.ri_stranded r.ri_attempts
          (if r.ri_attempts = 1 then "" else "s")
          backoff)
    t.run_issues;
  if t.dropped_scales <> [] then
    Fmt.pf ppf "  dropped scales: %s@."
      (String.concat ", " (List.map string_of_int t.dropped_scales));
  if t.quarantined_values > 0 then
    Fmt.pf ppf "  quarantined values: %d@." t.quarantined_values;
  if t.insufficient_vertices > 0 then
    Fmt.pf ppf "  vertices with insufficient data: %d@."
      t.insufficient_vertices
