(** Data-quality accounting for degraded-mode analysis: what was lost to
    dead ranks, damaged artifacts, poisoned metrics and missing scales.
    A clean pipeline yields {!clean} and reports stay byte-identical to
    the pre-resilience output. *)

type artifact_issue = {
  ai_path : string;  (** file the damage was found in *)
  ai_kept : int;  (** intact records salvaged from it *)
  ai_detail : string;  (** what was wrong, human-readable *)
}

type run_issue = {
  ri_nprocs : int;
  ri_killed : int list;  (** ranks a fault terminated *)
  ri_stranded : int list;  (** ranks left blocked by a killed peer *)
  ri_attempts : int;  (** profiling attempts (retry-with-new-seed) *)
  ri_left : int list;  (** ranks that left an elastic session *)
  ri_joined : int list;  (** ranks that joined one *)
  ri_epochs : int;  (** membership epochs (0 = not elastic) *)
  ri_backoff : float;  (** total retry backoff the run waited out, seconds *)
}

type t = {
  artifact_issues : artifact_issue list;
  run_issues : run_issue list;  (** only degraded or retried runs *)
  dropped_scales : int list;  (** requested scales with no run at all *)
  quarantined_values : int;  (** poisoned per-rank values dropped *)
  insufficient_vertices : int;  (** vertices too damaged to rank *)
  rank_coverage : float;  (** min over runs of surviving/total ranks *)
}

val clean : t
val is_clean : t -> bool

(** The "-- data quality --" report section (degraded pipelines only). *)
val pp : Format.formatter -> t -> unit
