(* Textual root-cause report — the ScalAna-viewer of Section V rendered
   for a terminal: ranked root causes with calling paths (upper window)
   and source snippets (lower window). *)

open Scalana_psg

let pp_cause ~psg ?program ?crosscheck ppf (i, (c : Rootcause.cause)) =
  Fmt.pf ppf "#%d  %s @%a@." (i + 1) c.Rootcause.cause_label
    Scalana_mlang.Loc.pp c.cause_loc;
  Fmt.pf ppf "    paths=%d  total=%.4fs  imbalance=%s  culprit ranks=%s@."
    c.n_paths c.total_time
    (if c.imbalance = infinity then "inf"
     else Printf.sprintf "%.2fx" c.imbalance)
    (String.concat ","
       (List.map string_of_int
          (let rec take n = function
             | [] -> []
             | _ when n = 0 -> [ -1 ]
             | x :: r -> x :: take (n - 1) r
           in
           take 8 c.culprit_ranks)
          |> List.map (fun s -> if s = "-1" then "..." else s)));
  let v = Psg.vertex psg c.cause_vertex in
  let callpath = v.Vertex.callpath in
  if callpath <> [] then
    Fmt.pf ppf "    called via: %s@."
      (String.concat " > "
         (List.map Scalana_mlang.Loc.to_string callpath));
  (match program with
  | None -> ()
  | Some p ->
      List.iter
        (fun line -> Fmt.pf ppf "    %s@." line)
        (Scalana_mlang.Pretty.snippet ~context:1 p c.cause_loc));
  if c.wait_evidence <> [] then
    Fmt.pf ppf "    wait-state evidence: %s@."
      (String.concat ", "
         (List.map
            (fun (cls, t) ->
              Printf.sprintf "%s %.6fs" (Waitstate.class_name cls) t)
            c.wait_evidence));
  (match crosscheck with
  | Some cx when Crosscheck.confirms_path cx c.example_path ->
      Fmt.pf ppf
        "    confidence: raised (static model confirms the measured \
         scaling on this path)@."
  | _ -> ());
  Fmt.pf ppf "    backtracking path:@.      %a@."
    (Backtrack.pp_path psg) c.example_path

(* Was this vertex (or an enclosing structure) flagged by the static
   linter?  The lint anchors at source statements — often the loop
   around the communication the dynamic analysis blames — so the
   vertex's own location and its ancestors' locations both count. *)
let predicted ~psg ~locs vid =
  locs <> []
  &&
  let module Loc = Scalana_mlang.Loc in
  let matches id =
    let v = Psg.vertex psg id in
    List.exists (Loc.equal v.Vertex.loc) locs
  in
  matches vid || List.exists matches (Psg.ancestors psg vid)

(* Wait-state attribution from the timeline replay; rendered only when a
   timeline was recorded ([analysis.waitstate] set), so default reports
   are untouched.  Detected vertices are cross-referenced, and when the
   PPG is supplied each entry shows the profiler's sampled wait at the
   same vertex — the two were measured independently and should agree. *)
let pp_waitstate ~psg ?ppg (analysis : Rootcause.analysis) ppf
    (ws : Waitstate.t) =
  Fmt.pf ppf "@.-- wait states (timeline replay, np=%d) --@." ws.ws_nprocs;
  let blocked = Array.fold_left ( +. ) 0.0 ws.Waitstate.rank_blocked in
  Fmt.pf ppf "  blocked %.6fs across ranks, attributed %.1f%%@." blocked
    (100.0 *. Waitstate.attributed_fraction ws);
  List.iter
    (fun (cls, total) ->
      Fmt.pf ppf "    %-22s %10.6fs@." (Waitstate.class_name cls) total)
    ws.Waitstate.class_totals;
  let nonscalable_vids =
    List.map (fun (f : Nonscalable.finding) -> f.vertex) analysis.nonscalable
  in
  let abnormal_vids =
    List.map (fun (f : Abnormal.finding) -> f.vertex) analysis.abnormal
  in
  let tags vid =
    (if List.mem vid nonscalable_vids then "  [non-scalable]" else "")
    ^ if List.mem vid abnormal_vids then "  [abnormal]" else ""
  in
  let entries = ws.Waitstate.entries in
  if entries <> [] then begin
    Fmt.pf ppf "  top waiting vertices:@.";
    List.iteri
      (fun i (e : Waitstate.entry) ->
        if i < 8 then begin
          (match e.ws_vertex with
          | Some vid ->
              let v = Psg.vertex psg vid in
              Fmt.pf ppf "    %s @%a%s@." (Vertex.label v)
                Scalana_mlang.Loc.pp v.Vertex.loc (tags vid)
          | None -> Fmt.pf ppf "    (unresolved vertex)@.");
          Fmt.pf ppf "      %s  %.6fs  ops=%d  blames ranks %s@."
            (Waitstate.class_name e.ws_class)
            e.ws_time e.ws_ops
            (String.concat ","
               (List.map
                  (fun (r, _) -> string_of_int r)
                  (List.filteri (fun i _ -> i < 8) e.ws_culprits)));
          match (ppg, e.ws_vertex) with
          | Some ppg, Some vid ->
              Fmt.pf ppf "      sampled wait at vertex: %.6fs@."
                (Scalana_ppg.Ppg.total_wait ppg ~vertex:vid)
          | _ -> ()
        end)
      entries;
    if List.length entries > 8 then
      Fmt.pf ppf "    ... %d more entries@." (List.length entries - 8)
  end;
  if ws.Waitstate.truncated > 0 then
    Fmt.pf ppf
      "  note: timeline truncated (%d events dropped); %.6fs blocked time \
       left unattributed@."
      ws.Waitstate.truncated ws.Waitstate.unattributed

(* Membership timeline and recovery costs of an elastic session;
   rendered only when the pipeline attached elastic summaries (the
   --elastic flag), so default reports are untouched.  Recovery stalls
   are attributed in the wait-state taxonomy's vocabulary: the
   [recovery-stall] class, blamed on the ranks that left or joined. *)
let pp_elastic ppf (elastic : (int * Scalana_runtime.Elastic.info) list) =
  let module E = Scalana_runtime.Elastic in
  let ranks = function
    | [] -> "none"
    | rs -> "{" ^ String.concat "," (List.map string_of_int rs) ^ "}"
  in
  List.iter
    (fun (np, (info : E.info)) ->
      Fmt.pf ppf "@.-- elastic membership timeline & recovery (np=%d) --@." np;
      Fmt.pf ppf
        "  effective nprocs: %.2f over %d epoch%s (%d rank%s ever member)@."
        info.E.effective
        (List.length info.E.epoch_infos)
        (if List.length info.E.epoch_infos = 1 then "" else "s")
        info.E.n_ranks
        (if info.E.n_ranks = 1 then "" else "s");
      List.iteri
        (fun i (e : E.epoch_info) ->
          Fmt.pf ppf
            "    epoch %d  iters [%d,%d)  np=%-3d  ranks %s  [%.6fs, %.6fs)@."
            i e.E.ei_lo e.E.ei_hi e.E.ei_nprocs
            (E.compress_ranks e.E.ei_members)
            e.E.ei_t0 e.E.ei_t1)
        info.E.epoch_infos;
      List.iter
        (fun (r : E.recovery) ->
          Fmt.pf ppf "  recovery at iter %d: left=%s joined=%s@." r.E.r_iter
            (ranks r.E.r_left) (ranks r.E.r_joined);
          Fmt.pf ppf "    detect=%.6fs  agree=%.6fs  repartition=%.6fs@."
            r.E.r_detect r.E.r_agree r.E.r_repartition;
          let total =
            List.fold_left (fun acc (_, s) -> acc +. s) 0.0 r.E.r_stalls
          in
          Fmt.pf ppf "    %s  %.6fs across %d survivor%s  blames ranks %s@."
            (Waitstate.class_name Waitstate.Recovery_stall)
            total
            (List.length r.E.r_stalls)
            (if List.length r.E.r_stalls = 1 then "" else "s")
            (ranks (r.E.r_left @ r.E.r_joined)))
        info.E.recoveries;
      Fmt.pf ppf "  recovery protocol time: %.6fs total@."
        (E.recovery_seconds info))
    elastic

(* Cross-session trend from the history ledger; rendered only when the
   caller loaded prior entries (--history), so default reports are
   untouched.  One sparkline per tracked vertex, oldest entry first —
   a vertex a given entry does not track leaves a gap. *)
let pp_trend ppf = function
  | [] -> ()
  | entries ->
      let module H = Scalana_obs.History in
      let n = List.length entries in
      Fmt.pf ppf "@.-- trend (history ledger, %d entr%s) --@." n
        (if n = 1 then "y" else "ies");
      let first = List.hd entries in
      let latest_entry = List.nth entries (n - 1) in
      Fmt.pf ppf "  commits %s .. %s@." first.H.h_commit
        latest_entry.H.h_commit;
      List.iter
        (fun key ->
          let series = H.slope_trend entries ~key in
          let latest =
            List.fold_left
              (fun acc v -> match v with Some _ -> v | None -> acc)
              None series
          in
          Fmt.pf ppf "  %-40s %s%s@." key (H.sparkline series)
            (match latest with
            | Some v -> Printf.sprintf "  latest %+.2f" v
            | None -> ""))
        (H.tracked_vertices entries)

(* The pipeline's own per-phase cost, from the self-observability layer;
   rendered only when tracing was on, so default reports are untouched. *)
let pp_phase_costs ppf = function
  | [] -> ()
  | phases ->
      Fmt.pf ppf "@.-- pipeline cost (self-observability) --@.";
      Fmt.pf ppf "  %-28s %7s %12s@." "phase" "calls" "total";
      List.iter
        (fun (name, calls, total) ->
          Fmt.pf ppf "  %-28s %7d %11.3fs@." name calls total)
        phases

let render ?program ?(predicted_locs = []) ?(quality = Quality.clean)
    ?(phase_costs = []) ?ppg ?(history = []) (analysis : Rootcause.analysis)
    ~psg =
  let buf = Buffer.create 2048 in
  let ppf = Fmt.with_buffer buf in
  Fmt.pf ppf "=== ScalAna scaling-loss report ===@.";
  (* degraded inputs announce themselves before any verdict; clean
     pipelines render exactly the original report *)
  if not (Quality.is_clean quality) then Quality.pp ppf quality;
  Fmt.pf ppf "@.-- non-scalable vertices (log-log slope ranking) --@.";
  List.iter
    (fun (f : Nonscalable.finding) ->
      (* the symbolic-model verdict supersedes the plain lint marker on
         rows it covers; rows without a prediction keep the old marker *)
      let crosscheck_annot =
        match analysis.Rootcause.crosscheck with
        | None -> None
        | Some cx ->
            Option.map Crosscheck.annotation
              (Crosscheck.verdict_for cx f.Nonscalable.vertex)
      in
      Fmt.pf ppf "  %a%s@." (Nonscalable.pp_finding psg) f
        (match crosscheck_annot with
        | Some a -> a
        | None ->
            if predicted ~psg ~locs:predicted_locs f.Nonscalable.vertex then
              "  [predicted statically]"
            else ""))
    analysis.Rootcause.nonscalable;
  Option.iter
    (fun cx -> Crosscheck.pp psg ppf cx)
    analysis.Rootcause.crosscheck;
  if analysis.Rootcause.insufficient <> [] then begin
    Fmt.pf ppf "@.-- vertices with insufficient data (not ranked) --@.";
    List.iter
      (fun i -> Fmt.pf ppf "  %a@." (Nonscalable.pp_insufficient psg) i)
      analysis.Rootcause.insufficient
  end;
  Fmt.pf ppf "@.-- abnormal vertices (AbnormThd deviation) --@.";
  List.iter
    (fun f -> Fmt.pf ppf "  %a@." (Abnormal.pp_finding psg) f)
    analysis.abnormal;
  Fmt.pf ppf "@.-- root causes (%d paths) --@."
    (List.length analysis.paths);
  List.iteri
    (fun i c ->
      pp_cause ~psg ?program ?crosscheck:analysis.Rootcause.crosscheck ppf
        (i, c))
    analysis.causes;
  Option.iter
    (pp_waitstate ~psg ?ppg analysis ppf)
    analysis.Rootcause.waitstate;
  if analysis.Rootcause.elastic <> [] then
    pp_elastic ppf analysis.Rootcause.elastic;
  pp_trend ppf history;
  pp_phase_costs ppf phase_costs;
  Fmt.flush ppf ();
  Buffer.contents buf
