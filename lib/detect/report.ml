(* Textual root-cause report — the ScalAna-viewer of Section V rendered
   for a terminal: ranked root causes with calling paths (upper window)
   and source snippets (lower window). *)

open Scalana_psg

let pp_cause ~psg ?program ppf (i, (c : Rootcause.cause)) =
  Fmt.pf ppf "#%d  %s @%a@." (i + 1) c.Rootcause.cause_label
    Scalana_mlang.Loc.pp c.cause_loc;
  Fmt.pf ppf "    paths=%d  total=%.4fs  imbalance=%s  culprit ranks=%s@."
    c.n_paths c.total_time
    (if c.imbalance = infinity then "inf"
     else Printf.sprintf "%.2fx" c.imbalance)
    (String.concat ","
       (List.map string_of_int
          (let rec take n = function
             | [] -> []
             | _ when n = 0 -> [ -1 ]
             | x :: r -> x :: take (n - 1) r
           in
           take 8 c.culprit_ranks)
          |> List.map (fun s -> if s = "-1" then "..." else s)));
  let v = Psg.vertex psg c.cause_vertex in
  let callpath = v.Vertex.callpath in
  if callpath <> [] then
    Fmt.pf ppf "    called via: %s@."
      (String.concat " > "
         (List.map Scalana_mlang.Loc.to_string callpath));
  (match program with
  | None -> ()
  | Some p ->
      List.iter
        (fun line -> Fmt.pf ppf "    %s@." line)
        (Scalana_mlang.Pretty.snippet ~context:1 p c.cause_loc));
  Fmt.pf ppf "    backtracking path:@.      %a@."
    (Backtrack.pp_path psg) c.example_path

(* Was this vertex (or an enclosing structure) flagged by the static
   linter?  The lint anchors at source statements — often the loop
   around the communication the dynamic analysis blames — so the
   vertex's own location and its ancestors' locations both count. *)
let predicted ~psg ~locs vid =
  locs <> []
  &&
  let module Loc = Scalana_mlang.Loc in
  let matches id =
    let v = Psg.vertex psg id in
    List.exists (Loc.equal v.Vertex.loc) locs
  in
  matches vid || List.exists matches (Psg.ancestors psg vid)

(* The pipeline's own per-phase cost, from the self-observability layer;
   rendered only when tracing was on, so default reports are untouched. *)
let pp_phase_costs ppf = function
  | [] -> ()
  | phases ->
      Fmt.pf ppf "@.-- pipeline cost (self-observability) --@.";
      Fmt.pf ppf "  %-28s %7s %12s@." "phase" "calls" "total";
      List.iter
        (fun (name, calls, total) ->
          Fmt.pf ppf "  %-28s %7d %11.3fs@." name calls total)
        phases

let render ?program ?(predicted_locs = []) ?(quality = Quality.clean)
    ?(phase_costs = []) (analysis : Rootcause.analysis) ~psg =
  let buf = Buffer.create 2048 in
  let ppf = Fmt.with_buffer buf in
  Fmt.pf ppf "=== ScalAna scaling-loss report ===@.";
  (* degraded inputs announce themselves before any verdict; clean
     pipelines render exactly the original report *)
  if not (Quality.is_clean quality) then Quality.pp ppf quality;
  Fmt.pf ppf "@.-- non-scalable vertices (log-log slope ranking) --@.";
  List.iter
    (fun (f : Nonscalable.finding) ->
      Fmt.pf ppf "  %a%s@." (Nonscalable.pp_finding psg) f
        (if predicted ~psg ~locs:predicted_locs f.Nonscalable.vertex then
           "  [predicted statically]"
         else ""))
    analysis.Rootcause.nonscalable;
  if analysis.Rootcause.insufficient <> [] then begin
    Fmt.pf ppf "@.-- vertices with insufficient data (not ranked) --@.";
    List.iter
      (fun i -> Fmt.pf ppf "  %a@." (Nonscalable.pp_insufficient psg) i)
      analysis.Rootcause.insufficient
  end;
  Fmt.pf ppf "@.-- abnormal vertices (AbnormThd deviation) --@.";
  List.iter
    (fun f -> Fmt.pf ppf "  %a@." (Abnormal.pp_finding psg) f)
    analysis.abnormal;
  Fmt.pf ppf "@.-- root causes (%d paths) --@."
    (List.length analysis.paths);
  List.iteri
    (fun i c -> pp_cause ~psg ?program ppf (i, c))
    analysis.causes;
  pp_phase_costs ppf phase_costs;
  Fmt.flush ppf ();
  Buffer.contents buf
