(** Textual root-cause report: ranked causes with calling paths and
    source snippets (the viewer of Fig. 9 rendered for a terminal). *)

val pp_cause :
  psg:Scalana_psg.Psg.t ->
  ?program:Scalana_mlang.Ast.program ->
  ?crosscheck:Crosscheck.t ->
  Format.formatter ->
  int * Rootcause.cause ->
  unit

(** [predicted ~psg ~locs vid]: was vertex [vid] — or an enclosing
    structure — flagged at one of the static-lint locations [locs]? *)
val predicted :
  psg:Scalana_psg.Psg.t -> locs:Scalana_mlang.Loc.t list -> int -> bool

(** The "-- trend --" section: one ASCII sparkline of the fitted slope
    per vertex tracked in the given ledger entries (oldest first).
    Prints nothing on [[]]. *)
val pp_trend :
  Format.formatter -> Scalana_obs.History.entry list -> unit

(** The "-- pipeline cost --" section over [(phase, calls, total
    seconds)] rows; prints nothing on [[]].  Exposed so [scalana-diff]
    can render its own cost with the same layout. *)
val pp_phase_costs :
  Format.formatter -> (string * int * float) list -> unit

(** [render analysis ~psg] — with [predicted_locs] (static-lint hit
    locations), non-scalable vertices the linter anticipated are marked
    ["[predicted statically]"].  A non-clean [quality] prepends a data
    quality section quantifying what degraded inputs lost; with the
    default clean quality the output is byte-identical to the original
    report.  A non-empty [phase_costs] ([(phase, calls, total seconds)]
    from {!Scalana_obs.Obs.phase_summary}) appends a "pipeline cost"
    section; by default — observability off — nothing is added.  When
    [analysis.waitstate] is set, a wait-state section is appended with
    per-class totals and the top waiting vertices cross-referenced
    against the detected ones; [ppg] adds the profiler's independently
    sampled wait per vertex as a cross-check.  When
    [analysis.crosscheck] is set, each non-scalable row covered by a
    symbolic prediction carries a
    ["[predicted O(p), model slope -0.50, measured -0.50 — confirmed]"]
    annotation, a cross-check section (with model-mismatch rows)
    follows the ranking, and causes whose backtracking path the model
    confirms gain a raised-confidence line; [None] (the default) leaves
    the report byte-identical.  A non-empty [history] (prior ledger
    entries, oldest first) appends the trend section; the default [[]]
    leaves the report byte-identical. *)
val render :
  ?program:Scalana_mlang.Ast.program ->
  ?predicted_locs:Scalana_mlang.Loc.t list ->
  ?quality:Quality.t ->
  ?phase_costs:(string * int * float) list ->
  ?ppg:Scalana_ppg.Ppg.t ->
  ?history:Scalana_obs.History.entry list ->
  Rootcause.analysis ->
  psg:Scalana_psg.Psg.t ->
  string
