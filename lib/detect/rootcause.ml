(* Root-cause extraction: run Algorithm 1's main driver (backtrack from
   every non-scalable vertex, then from every not-yet-scanned abnormal
   vertex), and distill the resulting paths into ranked root-cause
   candidates with their source locations. *)

open Scalana_psg
open Scalana_ppg

type cause = {
  cause_vertex : int;
  cause_loc : Scalana_mlang.Loc.t;
  cause_label : string;
  n_paths : int;  (* how many root-cause paths terminate here *)
  total_time : float;  (* summed across ranks at the largest scale *)
  imbalance : float;  (* max/median across ranks *)
  culprit_ranks : int list;
  example_path : Backtrack.path;
  wait_evidence : (Waitstate.clazz * float) list;
}

type analysis = {
  nonscalable : Nonscalable.finding list;
  abnormal : Abnormal.finding list;
  insufficient : Nonscalable.insufficient list;
      (* vertices too damaged by faults to rank *)
  quarantined_values : int;  (* poisoned per-rank values dropped *)
  paths : Backtrack.path list;
  causes : cause list;
  waitstate : Waitstate.t option;
  crosscheck : Crosscheck.t option;
      (* static-model cross-check; attached by the pipeline when
         requested, None by default so reports are unchanged *)
  elastic : (int * Scalana_runtime.Elastic.info) list;
      (* per-nominal-scale elastic-session summaries; attached by the
         pipeline under --elastic, [] by default *)
}

(* The root cause of a path: among the Comp/Loop vertices the walk
   visited, the one whose execution time *on the rank the walk was on*
   deviates most from the other ranks (weighted by magnitude, so a busy
   2x-deviating solver beats a tiny 3x-deviating setup block).  Vertices
   with no time on the visited rank cannot be causes.  Ties prefer the
   deeper (later) step, i.e. the origin of the delay chain. *)
let cause_score ppg (s : Backtrack.step) =
  let times = Ppg.times_across_ranks ppg ~vertex:s.Backtrack.vertex in
  let own = if s.rank < Array.length times then times.(s.rank) else 0.0 in
  if own <= 1e-9 || Aggregate.quarantined own then 0.0
  else begin
    let med = Aggregate.median times in
    let deviation = if med > 1e-9 then own /. med else 1000.0 in
    own *. deviation
  end

let terminal_cause ppg (path : Backtrack.path) =
  let psg = ppg.Ppg.psg in
  let best = ref None in
  List.iter
    (fun (s : Backtrack.step) ->
      let v = Psg.vertex psg s.Backtrack.vertex in
      if Vertex.is_comp v || Vertex.is_loop v then begin
        let score = cause_score ppg s in
        match !best with
        | Some (_, best_score) when best_score > score -> ()
        | _ -> if score > 0.0 then best := Some (s, score)
      end)
    path;
  Option.map fst !best

(* Pick the start rank for a problematic vertex: the rank spending the
   most time there (for collectives the wait concentrates on early
   arrivers, and the walk jumps to the true culprit). *)
let start_rank ppg ~vertex =
  let times = Ppg.times_across_ranks ppg ~vertex in
  let best = ref 0 in
  Array.iteri (fun r t -> if t > times.(!best) then best := r) times;
  !best

let analyze ?(ns_config = Nonscalable.default_config)
    ?(ab_config = Abnormal.default_config)
    ?(bt_config = Backtrack.default_config) ?pool ?waitstate
    (cs : Crossscale.t) =
  Scalana_obs.Obs.with_span "rootcause.analyze" @@ fun () ->
  let _, ppg = Crossscale.largest cs in
  let psg = ppg.Ppg.psg in
  let ns_result = Nonscalable.detect_result ~config:ns_config ?pool cs in
  let nonscalable = ns_result.Nonscalable.findings in
  let abnormal = Abnormal.detect ~config:ab_config ppg in
  let visited = Hashtbl.create 256 in
  let paths = ref [] in
  (* Algorithm 1, lines 4-8: paths from non-scalable vertices *)
  List.iter
    (fun (f : Nonscalable.finding) ->
      let rank = start_rank ppg ~vertex:f.vertex in
      let p =
        Backtrack.backtrack ~config:bt_config ppg ~visited ~start_rank:rank
          ~start_vertex:f.vertex
      in
      if p <> [] then paths := p :: !paths)
    nonscalable;
  (* lines 9-12: abnormal vertices not yet scanned *)
  List.iter
    (fun (f : Abnormal.finding) ->
      let rank =
        match f.ranks with r :: _ -> r | [] -> start_rank ppg ~vertex:f.vertex
      in
      if not (Hashtbl.mem visited (rank, f.vertex)) then begin
        let p =
          Backtrack.backtrack ~config:bt_config ppg ~visited ~start_rank:rank
            ~start_vertex:f.vertex
        in
        if p <> [] then paths := p :: !paths
      end)
    abnormal;
  let paths = List.rev !paths in
  (* group path terminals into causes *)
  let tbl : (int, cause) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun path ->
      match terminal_cause ppg path with
      | None -> ()
      | Some s ->
          let vid = s.Backtrack.vertex in
          let v = Psg.vertex psg vid in
          let times = Ppg.times_across_ranks ppg ~vertex:vid in
          let med = Aggregate.median times in
          let mx = Array.fold_left Float.max 0.0 times in
          let cause =
            match Hashtbl.find_opt tbl vid with
            | Some c ->
                (* accumulated newest-first while grouping; flipped into
                   first-appearance order when the causes are extracted
                   (appending per path is quadratic) *)
                {
                  c with
                  n_paths = c.n_paths + 1;
                  culprit_ranks =
                    (if List.mem s.Backtrack.rank c.culprit_ranks then
                       c.culprit_ranks
                     else s.Backtrack.rank :: c.culprit_ranks);
                }
            | None ->
                {
                  cause_vertex = vid;
                  cause_loc = v.Vertex.loc;
                  cause_label = Vertex.label v;
                  n_paths = 1;
                  total_time = Array.fold_left ( +. ) 0.0 times;
                  imbalance = (if med > 0.0 then mx /. med else infinity);
                  culprit_ranks = [ s.Backtrack.rank ];
                  example_path = path;
                  wait_evidence =
                    (match waitstate with
                    | None -> []
                    | Some ws -> Waitstate.vertex_evidence ws ~vertex:vid);
                }
          in
          Hashtbl.replace tbl vid cause)
    paths;
  let causes =
    Hashtbl.fold
      (fun _ c acc -> { c with culprit_ranks = List.rev c.culprit_ranks } :: acc)
      tbl []
    |> List.sort (fun a b ->
           (* the paper sorts by execution time and imbalance *)
           compare
             (b.n_paths, b.total_time, b.imbalance)
             (a.n_paths, a.total_time, a.imbalance))
  in
  Scalana_obs.Obs.Metrics.incr ~by:(List.length paths) "backtrack.paths";
  Scalana_obs.Obs.Metrics.incr ~by:(List.length causes) "rootcause.causes";
  {
    nonscalable;
    abnormal;
    insufficient = ns_result.Nonscalable.insufficient;
    quarantined_values = ns_result.Nonscalable.quarantined_values;
    paths;
    causes;
    waitstate;
    crosscheck = None;
    elastic = [];
  }
