(** Root-cause extraction: Algorithm 1's main driver (backtrack from
    every non-scalable vertex, then from unscanned abnormal vertices) and
    the distillation of paths into ranked causes. *)

type cause = {
  cause_vertex : int;
  cause_loc : Scalana_mlang.Loc.t;
  cause_label : string;
  n_paths : int;  (** paths terminating at this cause *)
  total_time : float;
  imbalance : float;  (** max/median across ranks *)
  culprit_ranks : int list;
  example_path : Backtrack.path;
  wait_evidence : (Waitstate.clazz * float) list;
      (** corroborating wait-state attribution at this vertex, when a
          timeline replay was supplied to {!analyze} *)
}

type analysis = {
  nonscalable : Nonscalable.finding list;
  abnormal : Abnormal.finding list;
  insufficient : Nonscalable.insufficient list;
      (** vertices too damaged by faults to rank (degraded mode) *)
  quarantined_values : int;  (** poisoned per-rank values dropped *)
  paths : Backtrack.path list;
  causes : cause list;  (** ranked: paths, time, imbalance *)
  waitstate : Waitstate.t option;
      (** the wait-state replay the evidence was drawn from *)
  crosscheck : Crosscheck.t option;
      (** static-model cross-check of the non-scalable findings;
          attached by the pipeline when requested ([analyze] itself
          always leaves it [None], keeping default reports unchanged) *)
  elastic : (int * Scalana_runtime.Elastic.info) list;
      (** per-nominal-scale elastic-session summaries, sorted by scale;
          attached by the pipeline under [--elastic] ([analyze] leaves
          it empty, keeping default reports unchanged) *)
}

(** Deviation-weighted score of a path step as a root-cause candidate. *)
val cause_score : Scalana_ppg.Ppg.t -> Backtrack.step -> float

(** The step of a path most likely to be the cause, if any. *)
val terminal_cause :
  Scalana_ppg.Ppg.t -> Backtrack.path -> Backtrack.step option

(** The rank spending the most time at a vertex (walk start heuristic). *)
val start_rank : Scalana_ppg.Ppg.t -> vertex:int -> int

(** With [pool], the non-scalable detection stage fans out across
    domains (backtracking itself shares a visited set and stays
    sequential); the analysis is identical to the sequential one.
    [waitstate] attaches per-vertex wait-state evidence to each cause
    (it does not change which causes are found or their ranking). *)
val analyze :
  ?ns_config:Nonscalable.config ->
  ?ab_config:Abnormal.config ->
  ?bt_config:Backtrack.config ->
  ?pool:Scalana_pool.Pool.t ->
  ?waitstate:Waitstate.t ->
  Scalana_ppg.Crossscale.t ->
  analysis
