(* Wait-state attribution by timeline replay.

   Each blocked MPI interval is classified whole: a collective charges
   its wait to the last arriving rank (collective imbalance); a
   receive-like op whose latest matched send was posted after the op
   began charges the latest-posting peer (late sender); everything else
   — peers all posted before the op began, or a send-side block with no
   matched incoming message — is a late receiver (the blocked side
   itself arrived late, or its destinations were not draining).  The
   split is exhaustive, so attributed time can only fall short of the
   true blocked totals when the recorder's event cap dropped
   intervals — that remainder is reported as [unattributed], never
   silently reclassified. *)

open Scalana_profile

type clazz =
  | Late_sender
  | Late_receiver
  | Collective_imbalance
  | Recovery_stall

let class_name = function
  | Late_sender -> "late-sender"
  | Late_receiver -> "late-receiver"
  | Collective_imbalance -> "collective-imbalance"
  | Recovery_stall -> "recovery-stall"

let all_classes =
  [ Late_sender; Late_receiver; Collective_imbalance; Recovery_stall ]

type entry = {
  ws_vertex : int option;
  ws_class : clazz;
  ws_time : float;
  ws_ops : int;
  ws_culprits : (int * float) list;
}

type t = {
  ws_nprocs : int;
  entries : entry list;
  class_totals : (clazz * float) list;
  rank_blocked : float array;
  rank_attributed : float array;
  unattributed : float;
  truncated : int;
}

let default_epsilon = 20.0e-6

(* Classify one blocked MPI interval: (class, blamed ranks).  The wait
   is split evenly across the blamed ranks in the culprit table (the
   class total is unaffected). *)
let classify ~epsilon (iv : Timeline.interval) (m : Timeline.mpi_info) =
  match m.coll with
  | Some c -> (Collective_imbalance, [ c.coll_last_rank ])
  | None -> (
      match m.deps with
      | _ :: _ ->
          let late_peer, latest_send =
            List.fold_left
              (fun (bp, bt) (peer, send_time, _) ->
                if send_time > bt then (peer, send_time) else (bp, bt))
              (-1, Float.neg_infinity) m.deps
          in
          if latest_send > iv.iv_start +. epsilon then
            (Late_sender, [ late_peer ])
          else (Late_receiver, [ iv.iv_rank ])
      | [] ->
          (* send-side block: the destinations were not ready *)
          let blamed =
            match m.send_dests with [] -> [ iv.iv_rank ] | ds -> ds
          in
          (Late_receiver, blamed))

let analyze ?(epsilon = default_epsilon) (tl : Timeline.t) =
  let acc : (int option * clazz, float ref * int ref * (int, float) Hashtbl.t)
      Hashtbl.t =
    Hashtbl.create 32
  in
  let class_total = Hashtbl.create 4 in
  let rank_attributed = Array.make tl.Timeline.nprocs 0.0 in
  Array.iter
    (fun (iv : Timeline.interval) ->
      match iv.iv_kind with
      | Timeline.Compute _ -> ()
      | Timeline.Mpi m when m.wait <= 0.0 -> ()
      | Timeline.Mpi m ->
          let cls, blamed = classify ~epsilon iv m in
          let time, ops, culprits =
            match Hashtbl.find_opt acc (iv.iv_vertex, cls) with
            | Some cell -> cell
            | None ->
                let cell = (ref 0.0, ref 0, Hashtbl.create 4) in
                Hashtbl.replace acc (iv.iv_vertex, cls) cell;
                cell
          in
          time := !time +. m.wait;
          incr ops;
          let share = m.wait /. float_of_int (List.length blamed) in
          List.iter
            (fun rank ->
              let prev =
                Option.value ~default:0.0 (Hashtbl.find_opt culprits rank)
              in
              Hashtbl.replace culprits rank (prev +. share))
            blamed;
          Hashtbl.replace class_total cls
            (m.wait
            +. Option.value ~default:0.0 (Hashtbl.find_opt class_total cls));
          rank_attributed.(iv.iv_rank) <-
            rank_attributed.(iv.iv_rank) +. m.wait)
    tl.Timeline.intervals;
  let entries =
    Hashtbl.fold
      (fun (vertex, cls) (time, ops, culprits) out ->
        let ws_culprits =
          Hashtbl.fold (fun rank s l -> (rank, s) :: l) culprits []
          |> List.sort (fun (ra, sa) (rb, sb) -> compare (sb, ra) (sa, rb))
        in
        {
          ws_vertex = vertex;
          ws_class = cls;
          ws_time = !time;
          ws_ops = !ops;
          ws_culprits;
        }
        :: out)
      acc []
    |> List.sort (fun a b ->
           compare (b.ws_time, a.ws_vertex) (a.ws_time, b.ws_vertex))
  in
  let class_totals =
    List.map
      (fun cls ->
        (cls, Option.value ~default:0.0 (Hashtbl.find_opt class_total cls)))
      all_classes
    (* recovery stalls come from the elastic protocol, not from replayed
       MPI intervals; keep the line out of non-elastic breakdowns *)
    |> List.filter (fun (cls, total) -> cls <> Recovery_stall || total > 0.0)
  in
  let rank_blocked = Array.copy tl.Timeline.blocked in
  let blocked_sum = Array.fold_left ( +. ) 0.0 rank_blocked in
  let attributed_sum = Array.fold_left ( +. ) 0.0 rank_attributed in
  let t =
    {
      ws_nprocs = tl.Timeline.nprocs;
      entries;
      class_totals;
      rank_blocked;
      rank_attributed;
      unattributed = Float.max 0.0 (blocked_sum -. attributed_sum);
      truncated = Timeline.total_dropped tl;
    }
  in
  if Scalana_obs.Obs.enabled () then
    List.iter
      (fun (cls, total) ->
        let name = class_name cls in
        let ops =
          List.fold_left
            (fun n e -> if e.ws_class = cls then n + e.ws_ops else n)
            0 entries
        in
        Scalana_obs.Obs.Metrics.incr ~by:ops ("waitstate." ^ name);
        Scalana_obs.Obs.Metrics.set_gauge
          ("waitstate." ^ name ^ "_seconds")
          total)
      t.class_totals;
  t

let attributed_fraction t =
  let blocked = Array.fold_left ( +. ) 0.0 t.rank_blocked in
  if blocked <= 0.0 then 1.0
  else Array.fold_left ( +. ) 0.0 t.rank_attributed /. blocked

let vertex_evidence t ~vertex =
  List.filter_map
    (fun e ->
      if e.ws_vertex = Some vertex && e.ws_time > 0.0 then
        Some (e.ws_class, e.ws_time)
      else None)
    t.entries
