(** Wait-state attribution: replay a captured rank timeline
    ({!Scalana_profile.Timeline}) and classify every blocked MPI
    interval — {e who} caused each second a rank spent waiting.

    Classes follow the classic wait-state taxonomy:

    - {e late sender} — a receive-like op blocked because (at least one
      of) its matched sends was posted after the receiver entered the
      op; the blame goes to the latest-posting peer;
    - {e late receiver} — the op blocked although every matched send was
      already posted when it was entered (the receiver arrived late and
      paid residual transfer/drain time), or a send-side op blocked on
      its destinations not being ready; the blame stays with the
      blocked rank resp. the send destinations;
    - {e collective imbalance} — a collective blocked waiting for the
      last arriving rank, which takes the blame;
    - {e recovery stall} — a survivor of an elastic membership change
      stalled in the recovery protocol (failure detection, agreement,
      state repartitioning); the blame goes to the ranks that left or
      joined.  Produced by the elastic layer, never by timeline replay,
      so it is absent from non-elastic breakdowns.

    Attribution is exact with respect to the recorded intervals: each
    blocked interval's whole wait is assigned to exactly one class.
    Blocked time whose interval was lost to timeline truncation stays
    {e unattributed} and is reported as such — the attributed fraction
    is always stated against the true per-rank blocked totals, which the
    recorder accumulates past its event cap. *)

open Scalana_profile

type clazz =
  | Late_sender
  | Late_receiver
  | Collective_imbalance
  | Recovery_stall

val class_name : clazz -> string

(** Attributed wait aggregated per (PSG vertex, class). *)
type entry = {
  ws_vertex : int option;  (** None when the op's vertex was unresolvable *)
  ws_class : clazz;
  ws_time : float;  (** blocked seconds attributed here *)
  ws_ops : int;  (** blocked MPI intervals contributing *)
  ws_culprits : (int * float) list;
      (** blamed rank -> seconds caused, sorted by seconds descending *)
}

type t = {
  ws_nprocs : int;
  entries : entry list;  (** sorted by [ws_time] descending *)
  class_totals : (clazz * float) list;
      (** fixed order; [Recovery_stall] only when it has time *)
  rank_blocked : float array;  (** true blocked seconds (never truncated) *)
  rank_attributed : float array;
  unattributed : float;  (** blocked seconds with no surviving interval *)
  truncated : int;  (** timeline events lost to the recorder cap *)
}

(** [analyze timeline] replays the timeline's MPI intervals.
    [epsilon] (default [20e-6]) is the slack below which a peer's post
    time is not considered late.  When {!Scalana_obs.Obs} collection is
    enabled, emits [waitstate.<class>] op counters and
    [waitstate.<class>_seconds] gauges. *)
val analyze : ?epsilon:float -> Timeline.t -> t

(** Attributed / blocked, in [0, 1]; [1.0] when nothing was blocked. *)
val attributed_fraction : t -> float

(** Attributed wait per class at one vertex (classes with time only) —
    the corroborating evidence root-cause reporting attaches to a
    detected vertex. *)
val vertex_evidence : t -> vertex:int -> (clazz * float) list
