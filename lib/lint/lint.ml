(* Static scaling-loss linter.

   Purely syntactic/symbolic checks over the MiniMPI AST that recognize
   the communication patterns the paper's dynamic analysis keeps
   diagnosing at runtime: communication volume that grows with the
   process count, root-centralized patterns, point-to-point loops
   emulating collectives, communication that is invariant in its
   enclosing loop, and nonblocking-request misuse.  Each rule is a
   heuristic: a finding is a warning that the pattern *can* lose
   scalability, not a proof that it does — the report cross-references
   findings against the vertices the dynamic detector actually blames.

   The rules deliberately under-approximate.  Peer expressions that
   merely *renumber* with Nprocs (ring neighbours [(rank+1) % np], grid
   neighbours on an [isqrt np] side) are scalable and must not be
   flagged, so the volume rule probes message sizes numerically at
   increasing scales instead of pattern-matching on the syntax. *)

open Scalana_mlang

type rule =
  | Nprocs_volume  (* message volume grows with the process count *)
  | Root_centralized  (* reduce+bcast pairs, rank-0 fan-in/fan-out *)
  | P2p_collective  (* Nprocs-dependent loop of point-to-point calls *)
  | Loop_invariant_comm  (* identical message re-sent every iteration *)
  | Unwaited_request  (* nonblocking call whose request is never waited *)
  | Duplicate_waitall  (* the same request listed twice in one waitall *)
  | Send_recv_mismatch  (* sends to a rank outnumber its posted receives *)
  | Rank_tag_mismatch  (* channel exists but no receive matches its tag *)
  | Collective_divergence  (* ranks execute a collective unequally often *)

let rule_name = function
  | Nprocs_volume -> "nprocs-volume"
  | Root_centralized -> "root-centralized"
  | P2p_collective -> "p2p-collective"
  | Loop_invariant_comm -> "loop-invariant-comm"
  | Unwaited_request -> "unwaited-request"
  | Duplicate_waitall -> "duplicate-waitall"
  | Send_recv_mismatch -> "send-recv-mismatch"
  | Rank_tag_mismatch -> "rank-tag-mismatch"
  | Collective_divergence -> "collective-divergence"

let all_rules =
  [
    Nprocs_volume;
    Root_centralized;
    P2p_collective;
    Loop_invariant_comm;
    Unwaited_request;
    Duplicate_waitall;
    Send_recv_mismatch;
    Rank_tag_mismatch;
    Collective_divergence;
  ]

type finding = { rule : rule; loc : Loc.t; func : string; msg : string }

let pp_finding ppf f =
  Fmt.pf ppf "%s: [%s] %s: %s" (Loc.to_string f.loc) (rule_name f.rule) f.func
    f.msg

let finding_to_string = Fmt.to_to_string pp_finding

(* --- numeric probing --- *)

(* Evaluate [e] at increasing scales with everything else pinned: rank 1
   (rank 0 and rank np-1 sit on wrap-around boundaries of ring/grid
   arithmetic and would alias distinct behaviours), program parameters at
   their defaults, free variables at 1.  [None] when evaluation fails. *)
let probe (program : Ast.program) e =
  let vars = List.map (fun v -> (v, 1)) (Expr.free_vars e) in
  try
    Some
      (List.map
         (fun nprocs ->
           Expr.eval (Expr.env ~rank:1 ~nprocs ~params:program.params ~vars) e)
         [ 4; 16; 64 ])
  with Expr.Eval_error _ -> None

let strictly_increasing = function
  | [ a; b; c ] -> a < b && b < c
  | _ -> false

(* Message sizes of a call, labelled for the finding message. *)
let bytes_exprs = function
  | Ast.Send { bytes; _ }
  | Ast.Recv { bytes; _ }
  | Ast.Isend { bytes; _ }
  | Ast.Irecv { bytes; _ }
  | Ast.Bcast { bytes; _ }
  | Ast.Reduce { bytes; _ }
  | Ast.Allreduce { bytes }
  | Ast.Alltoall { bytes }
  | Ast.Allgather { bytes } ->
      [ bytes ]
  | Ast.Sendrecv { sbytes; rbytes; _ } -> [ sbytes; rbytes ]
  | Ast.Wait _ | Ast.Waitall _ | Ast.Barrier -> []

let exprs_of_mpi c =
  let peer = function Ast.Any_source -> [] | Ast.Peer e -> [ e ] in
  let tag = function Ast.Any_tag -> [] | Ast.Tag e -> [ e ] in
  match c with
  | Ast.Send { dest; tag = t; bytes } -> [ dest; t; bytes ]
  | Ast.Recv { src; tag = t; bytes } -> peer src @ tag t @ [ bytes ]
  | Ast.Isend { dest; tag = t; bytes; _ } -> [ dest; t; bytes ]
  | Ast.Irecv { src; tag = t; bytes; _ } -> peer src @ tag t @ [ bytes ]
  | Ast.Sendrecv { dest; stag; sbytes; src; rtag; rbytes } ->
      [ dest; stag; sbytes ] @ peer src @ tag rtag @ [ rbytes ]
  | Ast.Bcast { root; bytes } | Ast.Reduce { root; bytes } -> [ root; bytes ]
  | Ast.Allreduce { bytes } | Ast.Alltoall { bytes } | Ast.Allgather { bytes }
    ->
      [ bytes ]
  | Ast.Wait _ | Ast.Waitall _ | Ast.Barrier -> []

(* [Ast.is_p2p] counts [Wait]/[Waitall] as point-to-point; the lints
   care about calls that actually move data between a pair of ranks. *)
let is_any_p2p = function
  | Ast.Send _ | Ast.Recv _ | Ast.Isend _ | Ast.Irecv _ | Ast.Sendrecv _ ->
      true
  | Ast.Wait _ | Ast.Waitall _ | Ast.Barrier | Ast.Bcast _ | Ast.Reduce _
  | Ast.Allreduce _ | Ast.Alltoall _ | Ast.Allgather _ ->
      false

(* Peer expressions of a point-to-point call. *)
let peer_exprs = function
  | Ast.Send { dest; _ } | Ast.Isend { dest; _ } -> [ dest ]
  | Ast.Recv { src; _ } | Ast.Irecv { src; _ } -> (
      match src with Ast.Any_source -> [] | Ast.Peer e -> [ e ])
  | Ast.Sendrecv { dest; src; _ } -> (
      dest :: (match src with Ast.Any_source -> [] | Ast.Peer e -> [ e ]))
  | _ -> []

(* --- rule 1: Nprocs-dependent message volume --- *)

(* A message size that *grows* with the process count is a per-vertex
   communication volume of Omega(P): probed at 4/16/64 ranks rather than
   matched syntactically, so [na / np] (shrinking partitions) and peer
   renumbering stay clean. *)
let check_volume program func (s : Ast.stmt) c findings =
  List.iter
    (fun bytes ->
      if Expr.depends_on_nprocs bytes then
        match probe program bytes with
        | Some values when strictly_increasing values ->
            findings :=
              {
                rule = Nprocs_volume;
                loc = s.Ast.loc;
                func;
                msg =
                  Fmt.str
                    "%s message size %s grows with the process count (%d B \
                     at 4 ranks, %d B at 64)"
                    (Ast.mpi_name c) (Expr.to_string bytes) (List.nth values 0)
                    (List.nth values 2);
              }
              :: !findings
        | _ -> ())
    (bytes_exprs c)

(* --- rule 2: root-centralized patterns --- *)

let static_rank_eq cond =
  match cond with
  | Expr.Bin (Expr.Eq, Expr.Rank, e) when Expr.is_static e -> Some e
  | Expr.Bin (Expr.Eq, e, Expr.Rank) when Expr.is_static e -> Some e
  | _ -> None

(* Reduce immediately followed (no intervening MPI) by a Bcast from the
   same root: an Allreduce written by hand, with twice the latency and a
   serializing root. *)
let check_reduce_bcast func (body : Ast.stmt list) findings =
  let rec scan = function
    | [] -> []
    | ({ Ast.node = Ast.Mpi (Ast.Reduce { root = r1; _ }); _ } as red) :: rest
      ->
        let rec to_bcast = function
          | [] -> ()
          | { Ast.node = Ast.Mpi (Ast.Bcast { root = r2; _ }); _ } :: _
            when Expr.equal r1 r2 ->
              findings :=
                {
                  rule = Root_centralized;
                  loc = red.Ast.loc;
                  func;
                  msg =
                    Fmt.str
                      "Reduce followed by Bcast from the same root (%s) — \
                       replace the pair with a single Allreduce"
                      (Expr.to_string r1);
                }
                :: !findings
          | { Ast.node = Ast.Mpi _; _ } :: _ -> ()
          | _ :: rest -> to_bcast rest
        in
        to_bcast rest;
        scan rest
    | _ :: rest -> scan rest
  in
  ignore (scan body)

(* Loops inside a [rank == c] branch that point-to-point with a peer
   indexed by the loop variable: a root looping over every other rank,
   i.e. a hand-rolled Gather/Scatter that serializes on the root. *)
let rec centralizing_loops (stmts : Ast.stmt list) =
  List.concat_map
    (fun (s : Ast.stmt) ->
      match s.node with
      | Ast.Loop l ->
          let fans_out =
            Expr.depends_on_nprocs l.count
            && Ast.fold_stmts
                 (fun acc (t : Ast.stmt) ->
                   acc
                   ||
                   match t.node with
                   | Ast.Mpi c ->
                       is_any_p2p c
                       && List.exists
                            (fun e -> List.mem l.var (Expr.free_vars e))
                            (peer_exprs c)
                   | _ -> false)
                 false l.body
          in
          (if fans_out then [ s ] else []) @ centralizing_loops l.body
      | Ast.Branch b -> centralizing_loops b.then_ @ centralizing_loops b.else_
      | _ -> [])
    stmts

let check_root_branch func (s : Ast.stmt) cond then_ else_ claimed findings =
  match static_rank_eq cond with
  | None -> ()
  | Some root ->
      let loops = centralizing_loops (then_ @ else_) in
      if loops <> [] then begin
        List.iter
          (fun (l : Ast.stmt) -> Hashtbl.replace claimed l.Ast.loc ())
          loops;
        findings :=
          {
            rule = Root_centralized;
            loc = s.Ast.loc;
            func;
            msg =
              Fmt.str
                "rank %s serially exchanges with every peer inside this \
                 branch — a hand-rolled collective that serializes on the \
                 root"
                (Expr.to_string root);
          }
          :: !findings
      end

(* --- rule 3: point-to-point loop emulating a collective --- *)

(* A loop whose trip count depends on Nprocs and whose body performs
   point-to-point communication: the communication *structure* itself
   scales with the process count (the NPB-CG transpose exchange).
   Loops already claimed by the root-centralized rule are skipped. *)
let check_p2p_loop func (s : Ast.stmt) (l : Ast.loop) claimed findings =
  if (not (Hashtbl.mem claimed s.Ast.loc)) && Expr.depends_on_nprocs l.count
  then begin
    let p2p = ref None in
    Ast.iter_stmts
      (fun (t : Ast.stmt) ->
        match t.node with
        | Ast.Mpi c when is_any_p2p c && !p2p = None -> p2p := Some c
        | _ -> ())
      l.body;
    match !p2p with
    | Some c ->
        findings :=
          {
            rule = P2p_collective;
            loc = s.Ast.loc;
            func;
            msg =
              Fmt.str
                "loop of %s trips runs %s per iteration — point-to-point \
                 rounds scale with the process count; consider a single \
                 collective"
                (Expr.to_string l.count) (Ast.mpi_name c);
          }
          :: !findings
    | None -> ()
  end

(* --- rule 4: loop-invariant communication --- *)

(* Literal trip counts of 0/1 are structural wrappers, not repetition. *)
let repeats (l : Ast.loop) =
  match l.count with Expr.Int n -> n > 1 | _ -> true

(* Data-distribution calls whose every argument is fully static (no
   rank, no variable) repeat an identical transfer each iteration of the
   enclosing loop — hoistable.  Rank-dependent halo patterns stay clean:
   their peers mention [rank]. *)
let check_loop_invariant func (s : Ast.stmt) c ~loops findings =
  let hoistable =
    match c with
    | Ast.Send _ | Ast.Isend _ | Ast.Sendrecv _ | Ast.Bcast _ -> true
    | _ -> false
  in
  if hoistable && List.exists repeats loops
     && List.for_all Expr.is_static (exprs_of_mpi c)
  then
    findings :=
      {
        rule = Loop_invariant_comm;
        loc = s.Ast.loc;
        func;
        msg =
          Fmt.str
            "%s arguments are invariant across the enclosing loop — the \
             identical transfer repeats every iteration; hoist it out"
            (Ast.mpi_name c);
      }
      :: !findings

(* --- rule 5: never-waited nonblocking requests --- *)

(* Uses the def-use chains: a request definition ([Isend]/[Irecv]) that
   no [Wait]/[Waitall] use is ever reached by. *)
let check_unwaited (f : Ast.func) findings =
  let chains = Scalana_cfg.Defuse.Chains.of_func f in
  List.iter
    (fun (sym, loc) ->
      match sym with
      | Scalana_cfg.Defuse.Req r ->
          findings :=
            {
              rule = Unwaited_request;
              loc;
              func = f.fname;
              msg =
                Fmt.str
                  "request %S is posted here but never reaches a wait — the \
                   operation may never complete"
                  r;
            }
            :: !findings
      | Scalana_cfg.Defuse.Var _ -> ())
    (Scalana_cfg.Defuse.Chains.unused_defs chains)

(* --- rule 6: duplicate requests in one waitall --- *)

let check_waitall func (s : Ast.stmt) reqs findings =
  let rec dup seen = function
    | [] -> None
    | r :: rest -> if List.mem r seen then Some r else dup (r :: seen) rest
  in
  match dup [] reqs with
  | Some r ->
      findings :=
        {
          rule = Duplicate_waitall;
          loc = s.Ast.loc;
          func;
          msg = Fmt.str "Waitall lists request %S twice" r;
        }
        :: !findings
  | None -> ()

(* --- rules 7-9: interprocedural channel audit --- *)

(* The first six rules are intraprocedural heuristics.  These three
   instead walk every rank's control flow concretely (the communication
   -cost analysis' audit walker) at two scales and check the *global*
   channel structure: every send needs a posted receive, tags must
   route, and collectives must be executed in lockstep.  A rule only
   fires when the walk was exact — an approximate walk (recursion,
   unresolved calls, fuel) can miss postings and would lie. *)

let audit_scales = [ 4; 16 ]

let dedup seen rule loc f =
  if not (Hashtbl.mem seen (rule, loc)) then begin
    Hashtbl.add seen (rule, loc) ();
    f ()
  end

(* Per-destination parity: messages sent into a rank vs receives it
   posts.  An excess of sends never completes (or overflows buffers);
   an excess of receives hangs.  Programs that post no receive at all
   are half-modelled sketches (one side of an exchange), not broken
   matchings — the rule stays quiet on them. *)
let check_send_parity (au : Scalana_cfg.Commcost.audit) seen findings =
  let open Scalana_cfg.Commcost in
  if au.au_recvs = [] then ()
  else begin
  let sends_to = Hashtbl.create 16 in
  List.iter
    (fun ((_, dst, _), (n, loc, func)) ->
      let tot, site =
        Option.value
          (Hashtbl.find_opt sends_to dst)
          ~default:(0, (loc, func))
      in
      Hashtbl.replace sends_to dst (tot + n, site))
    au.au_sends;
  let recvs_at = Hashtbl.create 16 in
  List.iter
    (fun ((dst, _, _), (n, _, _)) ->
      Hashtbl.replace recvs_at dst
        (Option.value (Hashtbl.find_opt recvs_at dst) ~default:0 + n))
    au.au_recvs;
  Hashtbl.iter
    (fun dst (sent, (loc, func)) ->
      let recvd = Option.value (Hashtbl.find_opt recvs_at dst) ~default:0 in
      if sent <> recvd then
        dedup seen Send_recv_mismatch loc @@ fun () ->
        findings :=
          {
            rule = Send_recv_mismatch;
            loc;
            func;
            msg =
              Fmt.str
                "at %d ranks, %d message(s) sent to rank %d but %d \
                 receive(s) posted there — unmatched point-to-point traffic"
                au.au_nprocs sent dst recvd;
          }
          :: !findings)
    sends_to;
  (* receives into ranks nobody sends to hang symmetrically *)
  List.iter
    (fun ((dst, _, _), (_, loc, func)) ->
      if not (Hashtbl.mem sends_to dst) then
        dedup seen Send_recv_mismatch loc @@ fun () ->
        findings :=
          {
            rule = Send_recv_mismatch;
            loc;
            func;
            msg =
              Fmt.str
                "at %d ranks, rank %d posts receives but no message is \
                 ever sent to it"
                au.au_nprocs dst;
          }
          :: !findings)
    au.au_recvs
  end

(* Tag routing: the per-destination totals balance, yet a concrete send
   channel (src, dst, tag) has no receive at [dst] accepting that source
   and tag — typically rank-dependent tag arithmetic that diverged
   between the two sides. *)
let check_tag_routing (au : Scalana_cfg.Commcost.audit) seen findings =
  let open Scalana_cfg.Commcost in
  List.iter
    (fun ((src, dst, tag), (_, loc, func)) ->
      let matched =
        List.exists
          (fun ((d, s, t), _) ->
            d = dst
            && (s = None || s = Some src)
            && (t = None || t = Some tag))
          au.au_recvs
      in
      let dst_has_recvs =
        List.exists (fun ((d, _, _), _) -> d = dst) au.au_recvs
      in
      if (not matched) && dst_has_recvs then
        dedup seen Rank_tag_mismatch loc @@ fun () ->
        findings :=
          {
            rule = Rank_tag_mismatch;
            loc;
            func;
            msg =
              Fmt.str
                "at %d ranks, the send rank %d -> rank %d with tag %d \
                 matches none of the receives rank %d posts — the tag \
                 expressions diverge between sender and receiver"
                au.au_nprocs src dst tag dst;
          }
          :: !findings)
    au.au_sends

(* Collectives are synchronizing: every rank must execute a given
   collective site the same number of times, or the slow side blocks
   forever.  Unequal counts mean the call sits under a rank-divergent
   branch (or a rank-dependent trip count). *)
let check_collective_lockstep (au : Scalana_cfg.Commcost.audit) seen findings =
  let open Scalana_cfg.Commcost in
  List.iter
    (fun ((func, loc), (op, counts)) ->
      let mn = Array.fold_left min max_int counts in
      let mx = Array.fold_left max 0 counts in
      if mn <> mx then
        dedup seen Collective_divergence loc @@ fun () ->
        findings :=
          {
            rule = Collective_divergence;
            loc;
            func;
            msg =
              Fmt.str
                "at %d ranks, %s executes between %d and %d times \
                 depending on the rank — a collective under a \
                 rank-divergent branch deadlocks"
                au.au_nprocs op mn mx;
          }
          :: !findings)
    au.au_colls

let check_audit (program : Ast.program) findings =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun nprocs ->
      let au = Scalana_cfg.Commcost.audit program ~nprocs in
      if au.Scalana_cfg.Commcost.au_exact then begin
        check_send_parity au seen findings;
        check_tag_routing au seen findings;
        check_collective_lockstep au seen findings
      end)
    audit_scales

(* --- driver --- *)

let run (program : Ast.program) =
  let findings = ref [] in
  List.iter
    (fun (f : Ast.func) ->
      let claimed = Hashtbl.create 8 in
      check_unwaited f findings;
      let rec walk ~loops stmts =
        check_reduce_bcast f.fname stmts findings;
        List.iter
          (fun (s : Ast.stmt) ->
            match s.node with
            | Ast.Loop l ->
                check_p2p_loop f.fname s l claimed findings;
                walk ~loops:(l :: loops) l.body
            | Ast.Branch b ->
                check_root_branch f.fname s b.cond b.then_ b.else_ claimed
                  findings;
                walk ~loops b.then_;
                walk ~loops b.else_
            | Ast.Mpi c ->
                check_volume program f.fname s c findings;
                check_loop_invariant f.fname s c ~loops findings;
                (match c with
                | Ast.Waitall { reqs } ->
                    check_waitall f.fname s reqs findings
                | _ -> ())
            | Ast.Comp _ | Ast.Call _ | Ast.Icall _ | Ast.Let _ -> ())
          stmts
      in
      walk ~loops:[] f.fbody)
    program.funcs;
  check_audit program findings;
  List.sort
    (fun a b ->
      match Loc.compare a.loc b.loc with
      | 0 -> compare a.rule b.rule
      | c -> c)
    !findings

let by_rule findings r = List.filter (fun f -> f.rule = r) findings

let pp_report ppf findings =
  match findings with
  | [] -> Fmt.pf ppf "no findings@."
  | fs ->
      List.iter (fun f -> Fmt.pf ppf "%a@." pp_finding f) fs;
      Fmt.pf ppf "%d finding%s@." (List.length fs)
        (if List.length fs = 1 then "" else "s")
