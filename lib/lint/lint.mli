(** Static scaling-loss linter over MiniMPI programs.

    Syntactic/symbolic heuristics for the communication patterns that
    lose scalability as the process count grows: Nprocs-dependent
    message volume, root-centralized exchanges, point-to-point loops
    emulating collectives, loop-invariant communication, and
    nonblocking-request misuse.  Findings are warnings, not proofs — the
    detection report cross-references them against the vertices the
    dynamic analysis actually blames. *)

open Scalana_mlang

type rule =
  | Nprocs_volume
      (** message volume grows with the process count (probed at
          4/16/64 ranks — shrinking partitions like [na / np] and peer
          renumbering are not flagged) *)
  | Root_centralized
      (** Reduce+Bcast from the same root, or a [rank == c] branch
          looping point-to-point over peers — hand-rolled collectives
          that serialize on the root *)
  | P2p_collective
      (** loop with an Nprocs-dependent trip count performing
          point-to-point communication (e.g. the NPB-CG transpose
          exchange) *)
  | Loop_invariant_comm
      (** data-distribution call with fully static arguments inside a
          loop: the identical transfer repeats every iteration *)
  | Unwaited_request
      (** [Isend]/[Irecv] whose request never reaches a wait, per the
          def-use chains *)
  | Duplicate_waitall  (** the same request listed twice in one waitall *)
  | Send_recv_mismatch
      (** interprocedural channel audit (concrete walk at 4 and 16
          ranks): messages sent into a rank and receives it posts
          disagree — unmatched traffic or a hanging receive *)
  | Rank_tag_mismatch
      (** per-destination totals balance, but a concrete send channel
          matches no receive's source/tag at its destination —
          rank-dependent tag arithmetic diverged between the sides *)
  | Collective_divergence
      (** a collective site executes a different number of times on
          different ranks (rank-divergent branch): deadlock *)

val rule_name : rule -> string
(** Kebab-case identifier, e.g. ["p2p-collective"]. *)

val all_rules : rule list

type finding = { rule : rule; loc : Loc.t; func : string; msg : string }

val run : Ast.program -> finding list
(** All findings, sorted by source location. *)

val by_rule : finding list -> rule -> finding list
val pp_finding : finding Fmt.t
val finding_to_string : finding -> string

val pp_report : finding list Fmt.t
(** One line per finding plus a total, or ["no findings"]. *)
