(* Abstract syntax of MiniMPI programs.

   The language is deliberately shaped like the fragment of C/Fortran+MPI
   that ScalAna's static analysis consumes: structured control flow
   (counted loops, two-way branches), direct/indirect/recursive function
   calls, opaque computation blocks with a workload descriptor, and the
   MPI operations the paper's communication-dependence collection
   distinguishes (collective, blocking P2P, non-blocking P2P). *)

type peer = Peer of Expr.t | Any_source
type tag = Tag of Expr.t | Any_tag

type mpi_call =
  | Send of { dest : Expr.t; tag : Expr.t; bytes : Expr.t }
  | Recv of { src : peer; tag : tag; bytes : Expr.t }
  | Isend of { dest : Expr.t; tag : Expr.t; bytes : Expr.t; req : string }
  | Irecv of { src : peer; tag : tag; bytes : Expr.t; req : string }
  | Wait of { req : string }
  | Waitall of { reqs : string list }
  | Sendrecv of {
      dest : Expr.t;
      stag : Expr.t;
      sbytes : Expr.t;
      src : peer;
      rtag : tag;
      rbytes : Expr.t;
    }
  | Barrier
  | Bcast of { root : Expr.t; bytes : Expr.t }
  | Reduce of { root : Expr.t; bytes : Expr.t }
  | Allreduce of { bytes : Expr.t }
  | Alltoall of { bytes : Expr.t }
  | Allgather of { bytes : Expr.t }

(* Workload descriptor of a computation block: how many instructions of
   each class one execution retires, and what fraction of memory accesses
   hit in cache.  This is the PMU substrate: TOT_INS, TOT_LST_INS, cache
   misses and TOT_CYC all derive from it (see Scalana_runtime.Pmu). *)
type workload = {
  label : string option;
  flops : Expr.t;
  mem : Expr.t;
  ints : Expr.t;
  locality : float;
}

type stmt = { loc : Loc.t; node : node }

and node =
  | Comp of workload
  | Loop of loop
  | Branch of { cond : Expr.t; then_ : stmt list; else_ : stmt list }
  | Call of { callee : string; args : (string * Expr.t) list }
  | Icall of { selector : Expr.t; targets : string list }
  | Mpi of mpi_call
  | Let of { var : string; value : Expr.t }

and loop = { var : string; count : Expr.t; body : stmt list; label : string option }

type func = { fname : string; fparams : string list; fbody : stmt list; floc : Loc.t }

type program = {
  pname : string;
  file : string;
  params : (string * int) list;
  funcs : func list;
  main : string;
}

exception Unknown_function of string

let find_func program name =
  match List.find_opt (fun f -> String.equal f.fname name) program.funcs with
  | Some f -> f
  | None -> raise (Unknown_function name)

let find_func_opt program name =
  List.find_opt (fun f -> String.equal f.fname name) program.funcs

let main_func program = find_func program program.main

let mpi_name = function
  | Send _ -> "MPI_Send"
  | Recv _ -> "MPI_Recv"
  | Isend _ -> "MPI_Isend"
  | Irecv _ -> "MPI_Irecv"
  | Wait _ -> "MPI_Wait"
  | Waitall _ -> "MPI_Waitall"
  | Sendrecv _ -> "MPI_Sendrecv"
  | Barrier -> "MPI_Barrier"
  | Bcast _ -> "MPI_Bcast"
  | Reduce _ -> "MPI_Reduce"
  | Allreduce _ -> "MPI_Allreduce"
  | Alltoall _ -> "MPI_Alltoall"
  | Allgather _ -> "MPI_Allgather"

let is_collective = function
  | Barrier | Bcast _ | Reduce _ | Allreduce _ | Alltoall _ | Allgather _ ->
      true
  | Send _ | Recv _ | Isend _ | Irecv _ | Wait _ | Waitall _ | Sendrecv _ ->
      false

let is_p2p c = not (is_collective c)

(* Operations that can spend time waiting on another process: these are
   where ScalAna's wait-edge pruning keeps communication dependence. *)
let can_wait = function
  | Recv _ | Wait _ | Waitall _ | Sendrecv _ -> true
  | Barrier | Bcast _ | Reduce _ | Allreduce _ | Alltoall _ | Allgather _ ->
      true
  | Send _ | Isend _ | Irecv _ -> false

(* Deep statement iteration in source order, entering loop and branch
   bodies but not following calls. *)
let rec iter_stmts f stmts =
  List.iter
    (fun s ->
      f s;
      match s.node with
      | Loop l -> iter_stmts f l.body
      | Branch b ->
          iter_stmts f b.then_;
          iter_stmts f b.else_
      | Comp _ | Call _ | Icall _ | Mpi _ | Let _ -> ())
    stmts

let fold_stmts f acc stmts =
  let acc = ref acc in
  iter_stmts (fun s -> acc := f !acc s) stmts;
  !acc

let iter_program f program =
  List.iter (fun fn -> iter_stmts f fn.fbody) program.funcs

let fold_program f acc program =
  let acc = ref acc in
  iter_program (fun s -> acc := f !acc s) program;
  !acc

let stmt_count program = fold_program (fun n _ -> n + 1) 0 program

let mpi_calls program =
  fold_program
    (fun acc s -> match s.node with Mpi c -> (s.loc, c) :: acc | _ -> acc)
    [] program
  |> List.rev

(* Find the statement at a location, for source snippets in reports. *)
let stmt_at program loc =
  let found = ref None in
  iter_program
    (fun s -> if !found = None && Loc.equal s.loc loc then found := Some s)
    program;
  !found

(* Total "source" line span of a program, used as the KLoc column of the
   paper's Table II. *)
let line_count program =
  fold_program (fun acc s -> max acc (Loc.line s.loc)) 0 program

(* Programs with indirect calls refine the shared PSG/index at profile
   time, coupling runs at different scales; callers use this to decide
   whether per-scale runs are independent. *)
let has_icalls program =
  fold_program
    (fun acc s -> acc || match s.node with Icall _ -> true | _ -> false)
    false program

let workload ?label ?(ints = Expr.Int 0) ?(locality = 0.9) ~flops ~mem () =
  { label; flops; mem; ints; locality }
