(** Abstract syntax of MiniMPI programs. *)

type peer = Peer of Expr.t | Any_source
type tag = Tag of Expr.t | Any_tag

type mpi_call =
  | Send of { dest : Expr.t; tag : Expr.t; bytes : Expr.t }
  | Recv of { src : peer; tag : tag; bytes : Expr.t }
  | Isend of { dest : Expr.t; tag : Expr.t; bytes : Expr.t; req : string }
  | Irecv of { src : peer; tag : tag; bytes : Expr.t; req : string }
  | Wait of { req : string }
  | Waitall of { reqs : string list }
  | Sendrecv of {
      dest : Expr.t;
      stag : Expr.t;
      sbytes : Expr.t;
      src : peer;
      rtag : tag;
      rbytes : Expr.t;
    }
  | Barrier
  | Bcast of { root : Expr.t; bytes : Expr.t }
  | Reduce of { root : Expr.t; bytes : Expr.t }
  | Allreduce of { bytes : Expr.t }
  | Alltoall of { bytes : Expr.t }
  | Allgather of { bytes : Expr.t }

(** Workload descriptor of a computation block; the PMU model derives
    instruction, load/store, cache-miss and cycle counts from it. *)
type workload = {
  label : string option;
  flops : Expr.t;
  mem : Expr.t;
  ints : Expr.t;
  locality : float;  (** fraction of memory accesses hitting in cache *)
}

type stmt = { loc : Loc.t; node : node }

and node =
  | Comp of workload
  | Loop of loop
  | Branch of { cond : Expr.t; then_ : stmt list; else_ : stmt list }
  | Call of { callee : string; args : (string * Expr.t) list }
  | Icall of { selector : Expr.t; targets : string list }
      (** indirect call: resolved at runtime to [List.nth targets
          (selector mod length)] — the static analysis cannot see the
          callee, mirroring function pointers *)
  | Mpi of mpi_call
  | Let of { var : string; value : Expr.t }

and loop = { var : string; count : Expr.t; body : stmt list; label : string option }

type func = { fname : string; fparams : string list; fbody : stmt list; floc : Loc.t }

type program = {
  pname : string;
  file : string;
  params : (string * int) list;  (** default problem-size parameters *)
  funcs : func list;
  main : string;
}

exception Unknown_function of string

val find_func : program -> string -> func
val find_func_opt : program -> string -> func option
val main_func : program -> func
val mpi_name : mpi_call -> string
val is_collective : mpi_call -> bool
val is_p2p : mpi_call -> bool

(** Operations that can block waiting on a remote process. *)
val can_wait : mpi_call -> bool

(** Deep iteration over statements in source order (loop and branch bodies
    included; calls not followed). *)
val iter_stmts : (stmt -> unit) -> stmt list -> unit

val fold_stmts : ('a -> stmt -> 'a) -> 'a -> stmt list -> 'a
val iter_program : (stmt -> unit) -> program -> unit
val fold_program : ('a -> stmt -> 'a) -> 'a -> program -> 'a
val stmt_count : program -> int
val mpi_calls : program -> (Loc.t * mpi_call) list
val stmt_at : program -> Loc.t -> stmt option

(** Largest source line of the program (the KLoc column of Table II). *)
val line_count : program -> int

(** Does the program contain indirect call sites?  Profiled runs of such
    programs refine the shared PSG as they resolve targets, so runs at
    different scales are order-dependent and must stay sequential. *)
val has_icalls : program -> bool

val workload :
  ?label:string ->
  ?ints:Expr.t ->
  ?locality:float ->
  flops:Expr.t ->
  mem:Expr.t ->
  unit ->
  workload
