(* Integer expression language for MiniMPI.

   Expressions appear wherever a program needs a value that depends on the
   execution context: loop trip counts, message sizes, destination ranks,
   branch conditions, workload instruction counts.  Booleans are encoded
   as 0/1 integers, as in C. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Min
  | Max
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
  | Xor

type t =
  | Int of int
  | Rank
  | Nprocs
  | Param of string
  | Var of string
  | Bin of binop * t * t
  | Neg of t
  | Not of t
  | Log2 of t  (* floor(log2 e); 0 for e <= 1 *)
  | Isqrt of t  (* floor(sqrt e); 0 for e <= 0 *)

exception Eval_error of string

let eval_error fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

type env = {
  rank : int;
  nprocs : int;
  params : (string * int) list;
  vars : (string * int) list;
}

let env ~rank ~nprocs ~params ~vars = { rank; nprocs; params; vars }

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"
  | Xor -> "^"

let apply_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then eval_error "division by zero" else a / b
  | Mod -> if b = 0 then eval_error "modulo by zero" else a mod b
  | Min -> min a b
  | Max -> max a b
  | Shl -> a lsl b
  | Shr -> a asr b
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | And -> if a <> 0 && b <> 0 then 1 else 0
  | Or -> if a <> 0 || b <> 0 then 1 else 0
  | Xor -> a lxor b

let rec eval env = function
  | Int n -> n
  | Rank -> env.rank
  | Nprocs -> env.nprocs
  | Param p -> (
      match List.assoc_opt p env.params with
      | Some v -> v
      | None -> eval_error "unbound parameter %S" p)
  | Var v -> (
      match List.assoc_opt v env.vars with
      | Some n -> n
      | None -> eval_error "unbound variable %S" v)
  | Bin (op, a, b) -> apply_binop op (eval env a) (eval env b)
  | Neg e -> -eval env e
  | Not e -> if eval env e = 0 then 1 else 0
  | Log2 e ->
      let v = eval env e in
      let rec go acc x = if x <= 1 then acc else go (acc + 1) (x / 2) in
      go 0 v
  | Isqrt e ->
      let v = eval env e in
      if v <= 0 then 0
      else begin
        let r = int_of_float (sqrt (float_of_int v)) in
        let r = if (r + 1) * (r + 1) <= v then r + 1 else r in
        if r * r > v then r - 1 else r
      end

let eval_bool env e = eval env e <> 0

(* Free variables (not parameters), used by validation to check that loop
   variables are bound before use. *)
let free_vars e =
  let rec go acc = function
    | Int _ | Rank | Nprocs | Param _ -> acc
    | Var v -> if List.mem v acc then acc else v :: acc
    | Bin (_, a, b) -> go (go acc a) b
    | Neg a | Not a | Log2 a | Isqrt a -> go acc a
  in
  go [] e

let params e =
  let rec go acc = function
    | Int _ | Rank | Nprocs | Var _ -> acc
    | Param p -> if List.mem p acc then acc else p :: acc
    | Bin (_, a, b) -> go (go acc a) b
    | Neg a | Not a | Log2 a | Isqrt a -> go acc a
  in
  go [] e

(* [is_static e] holds when [e] evaluates to the same value on every rank
   given only program parameters: no Rank, no Var.  Nprocs is considered
   static for a fixed job scale. *)
let rec is_static = function
  | Int _ | Param _ | Nprocs -> true
  | Rank | Var _ -> false
  | Bin (_, a, b) -> is_static a && is_static b
  | Neg a | Not a | Log2 a | Isqrt a -> is_static a

let rec depends_on_rank = function
  | Int _ | Param _ | Nprocs | Var _ -> false
  | Rank -> true
  | Bin (_, a, b) -> depends_on_rank a || depends_on_rank b
  | Neg a | Not a | Log2 a | Isqrt a -> depends_on_rank a

let rec depends_on_nprocs = function
  | Int _ | Param _ | Rank | Var _ -> false
  | Nprocs -> true
  | Bin (_, a, b) -> depends_on_nprocs a || depends_on_nprocs b
  | Neg a | Not a | Log2 a | Isqrt a -> depends_on_nprocs a

let prec = function
  | Or -> 1
  | And -> 2
  | Lt | Le | Gt | Ge | Eq | Ne -> 3
  | Xor -> 4
  | Shl | Shr -> 5
  | Add | Sub -> 6
  | Mul | Div | Mod -> 7
  | Min | Max -> 8

let rec pp_prec level ppf e =
  match e with
  | Int n -> Fmt.int ppf n
  | Rank -> Fmt.string ppf "rank"
  | Nprocs -> Fmt.string ppf "np"
  | Param p -> Fmt.pf ppf "$%s" p
  | Var v -> Fmt.string ppf v
  | Neg a -> Fmt.pf ppf "-%a" (pp_prec 9) a
  | Not a -> Fmt.pf ppf "!%a" (pp_prec 9) a
  | Log2 a -> Fmt.pf ppf "log2(%a)" (pp_prec 0) a
  | Isqrt a -> Fmt.pf ppf "isqrt(%a)" (pp_prec 0) a
  | Bin ((Min | Max) as op, a, b) ->
      Fmt.pf ppf "%s(%a, %a)" (binop_name op) (pp_prec 0) a (pp_prec 0) b
  | Bin (op, a, b) ->
      let p = prec op in
      (* comparisons are non-associative in the grammar: parenthesize
         both operands one level up *)
      let left_level =
        match op with Lt | Le | Gt | Ge | Eq | Ne -> p + 1 | _ -> p
      in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_prec left_level) a (binop_name op)
          (pp_prec (p + 1)) b
      in
      if p < level then Fmt.pf ppf "(%a)" body () else body ppf ()

let pp = pp_prec 0
let to_string = Fmt.to_to_string pp

let rec equal a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Rank, Rank | Nprocs, Nprocs -> true
  | Param x, Param y | Var x, Var y -> String.equal x y
  | Bin (o1, a1, b1), Bin (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Neg x, Neg y | Not x, Not y | Log2 x, Log2 y | Isqrt x, Isqrt y ->
      equal x y
  | ( ( Int _ | Rank | Nprocs | Param _ | Var _ | Bin _ | Neg _ | Not _
      | Log2 _ | Isqrt _ ),
      _ ) ->
      false

(* Compiled form: names resolved to slots once, constants folded once.

   The interpreter evaluates expressions on every statement execution, so
   at np = 4096+ the [List.assoc_opt] lookups in [eval] dominate.  The
   compiled form resolves every [Var] to an integer slot in a flat frame
   array and every [Param]/[Nprocs] to its (per-run constant) value at
   program-load time, then folds constant subtrees.  Most size/count
   expressions collapse to a single [CInt]; only genuinely rank- or
   loop-dependent trees survive as nodes.

   Error behaviour is part of the contract: unbound names and division by
   zero must surface lazily, at evaluation time, with exactly the
   messages [eval] produces.  Unbound names therefore compile to
   dedicated error nodes, and divisions with a constant zero divisor are
   deliberately left unfolded. *)
module Compiled = struct
  type expr =
    | CInt of int
    | CRank
    | CVar of int * string  (* slot, name kept for unbound-at-eval errors *)
    | CVar_unbound of string
    | CParam_unbound of string
    | CBin of binop * expr * expr
    | CNeg of expr
    | CNot of expr
    | CLog2 of expr
    | CIsqrt of expr

  (* Per-frame evaluation context: [c_vars.(slot)] holds the value of a
     loop variable / let binding / function argument, [c_bound] tracks
     which slots have been assigned.  Rank is the only other dynamic
     input — [Nprocs] and [Param] values were folded at compile time. *)
  type env = { c_rank : int; c_vars : int array; c_bound : Bytes.t }

  let log2_floor v =
    let rec go acc x = if x <= 1 then acc else go (acc + 1) (x / 2) in
    go 0 v

  let isqrt_floor v =
    if v <= 0 then 0
    else begin
      let r = int_of_float (sqrt (float_of_int v)) in
      let r = if (r + 1) * (r + 1) <= v then r + 1 else r in
      if r * r > v then r - 1 else r
    end

  let rec compile ~nprocs ~param ~var_slot e =
    let k = compile ~nprocs ~param ~var_slot in
    match e with
    | Int n -> CInt n
    | Rank -> CRank
    | Nprocs -> CInt nprocs
    | Param p -> (
        match param p with Some v -> CInt v | None -> CParam_unbound p)
    | Var v ->
        let slot = var_slot v in
        if slot >= 0 then CVar (slot, v) else CVar_unbound v
    | Bin (op, a, b) -> (
        match (k a, k b) with
        | CInt x, CInt y
          when not ((op = Div || op = Mod) && y = 0) ->
            CInt (apply_binop op x y)
        | ca, cb -> CBin (op, ca, cb))
    | Neg a -> ( match k a with CInt n -> CInt (-n) | c -> CNeg c)
    | Not a -> (
        match k a with
        | CInt n -> CInt (if n = 0 then 1 else 0)
        | c -> CNot c)
    | Log2 a -> (
        match k a with CInt n -> CInt (log2_floor n) | c -> CLog2 c)
    | Isqrt a -> (
        match k a with CInt n -> CInt (isqrt_floor n) | c -> CIsqrt c)

  let rec eval env = function
    | CInt n -> n
    | CRank -> env.c_rank
    | CVar (slot, name) ->
        if Bytes.unsafe_get env.c_bound slot <> '\000' then
          Array.unsafe_get env.c_vars slot
        else eval_error "unbound variable %S" name
    | CVar_unbound v -> eval_error "unbound variable %S" v
    | CParam_unbound p -> eval_error "unbound parameter %S" p
    | CBin (op, a, b) -> apply_binop op (eval env a) (eval env b)
    | CNeg a -> -eval env a
    | CNot a -> if eval env a = 0 then 1 else 0
    | CLog2 a -> log2_floor (eval env a)
    | CIsqrt a -> isqrt_floor (eval env a)

  let const = function CInt n -> Some n | _ -> None
end

(* Infix constructors for the builder DSL. *)
module Infix = struct
  let i n = Int n
  let rank = Rank
  let np = Nprocs
  let p name = Param name
  let v name = Var name
  let ( + ) a b = Bin (Add, a, b)
  let ( - ) a b = Bin (Sub, a, b)
  let ( * ) a b = Bin (Mul, a, b)
  let ( / ) a b = Bin (Div, a, b)
  let ( % ) a b = Bin (Mod, a, b)
  let ( lsl ) a b = Bin (Shl, a, b)
  let ( asr ) a b = Bin (Shr, a, b)
  let ( < ) a b = Bin (Lt, a, b)
  let ( <= ) a b = Bin (Le, a, b)
  let ( > ) a b = Bin (Gt, a, b)
  let ( >= ) a b = Bin (Ge, a, b)
  let ( = ) a b = Bin (Eq, a, b)
  let ( <> ) a b = Bin (Ne, a, b)
  let ( && ) a b = Bin (And, a, b)
  let ( || ) a b = Bin (Or, a, b)
  let ( lxor ) a b = Bin (Xor, a, b)
  let min_ a b = Bin (Min, a, b)
  let max_ a b = Bin (Max, a, b)
  let not_ a = Not a
  let neg a = Neg a
  let log2 a = Log2 a
  let isqrt a = Isqrt a
end
