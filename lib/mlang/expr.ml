(* Integer expression language for MiniMPI.

   Expressions appear wherever a program needs a value that depends on the
   execution context: loop trip counts, message sizes, destination ranks,
   branch conditions, workload instruction counts.  Booleans are encoded
   as 0/1 integers, as in C. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Min
  | Max
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
  | Xor

type t =
  | Int of int
  | Rank
  | Nprocs
  | Param of string
  | Var of string
  | Bin of binop * t * t
  | Neg of t
  | Not of t
  | Log2 of t  (* floor(log2 e); 0 for e <= 1 *)
  | Isqrt of t  (* floor(sqrt e); 0 for e <= 0 *)

exception Eval_error of string

let eval_error fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

type env = {
  rank : int;
  nprocs : int;
  params : (string * int) list;
  vars : (string * int) list;
}

let env ~rank ~nprocs ~params ~vars = { rank; nprocs; params; vars }

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"
  | Xor -> "^"

let apply_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then eval_error "division by zero" else a / b
  | Mod -> if b = 0 then eval_error "modulo by zero" else a mod b
  | Min -> min a b
  | Max -> max a b
  | Shl -> a lsl b
  | Shr -> a asr b
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | And -> if a <> 0 && b <> 0 then 1 else 0
  | Or -> if a <> 0 || b <> 0 then 1 else 0
  | Xor -> a lxor b

let rec eval env = function
  | Int n -> n
  | Rank -> env.rank
  | Nprocs -> env.nprocs
  | Param p -> (
      match List.assoc_opt p env.params with
      | Some v -> v
      | None -> eval_error "unbound parameter %S" p)
  | Var v -> (
      match List.assoc_opt v env.vars with
      | Some n -> n
      | None -> eval_error "unbound variable %S" v)
  | Bin (op, a, b) -> apply_binop op (eval env a) (eval env b)
  | Neg e -> -eval env e
  | Not e -> if eval env e = 0 then 1 else 0
  | Log2 e ->
      let v = eval env e in
      let rec go acc x = if x <= 1 then acc else go (acc + 1) (x / 2) in
      go 0 v
  | Isqrt e ->
      let v = eval env e in
      if v <= 0 then 0
      else begin
        let r = int_of_float (sqrt (float_of_int v)) in
        let r = if (r + 1) * (r + 1) <= v then r + 1 else r in
        if r * r > v then r - 1 else r
      end

let eval_bool env e = eval env e <> 0

(* Free variables (not parameters), used by validation to check that loop
   variables are bound before use. *)
let free_vars e =
  let rec go acc = function
    | Int _ | Rank | Nprocs | Param _ -> acc
    | Var v -> if List.mem v acc then acc else v :: acc
    | Bin (_, a, b) -> go (go acc a) b
    | Neg a | Not a | Log2 a | Isqrt a -> go acc a
  in
  go [] e

let params e =
  let rec go acc = function
    | Int _ | Rank | Nprocs | Var _ -> acc
    | Param p -> if List.mem p acc then acc else p :: acc
    | Bin (_, a, b) -> go (go acc a) b
    | Neg a | Not a | Log2 a | Isqrt a -> go acc a
  in
  go [] e

(* [is_static e] holds when [e] evaluates to the same value on every rank
   given only program parameters: no Rank, no Var.  Nprocs is considered
   static for a fixed job scale. *)
let rec is_static = function
  | Int _ | Param _ | Nprocs -> true
  | Rank | Var _ -> false
  | Bin (_, a, b) -> is_static a && is_static b
  | Neg a | Not a | Log2 a | Isqrt a -> is_static a

let rec depends_on_rank = function
  | Int _ | Param _ | Nprocs | Var _ -> false
  | Rank -> true
  | Bin (_, a, b) -> depends_on_rank a || depends_on_rank b
  | Neg a | Not a | Log2 a | Isqrt a -> depends_on_rank a

let rec depends_on_nprocs = function
  | Int _ | Param _ | Rank | Var _ -> false
  | Nprocs -> true
  | Bin (_, a, b) -> depends_on_nprocs a || depends_on_nprocs b
  | Neg a | Not a | Log2 a | Isqrt a -> depends_on_nprocs a

let prec = function
  | Or -> 1
  | And -> 2
  | Lt | Le | Gt | Ge | Eq | Ne -> 3
  | Xor -> 4
  | Shl | Shr -> 5
  | Add | Sub -> 6
  | Mul | Div | Mod -> 7
  | Min | Max -> 8

let rec pp_prec level ppf e =
  match e with
  | Int n -> Fmt.int ppf n
  | Rank -> Fmt.string ppf "rank"
  | Nprocs -> Fmt.string ppf "np"
  | Param p -> Fmt.pf ppf "$%s" p
  | Var v -> Fmt.string ppf v
  | Neg a -> Fmt.pf ppf "-%a" (pp_prec 9) a
  | Not a -> Fmt.pf ppf "!%a" (pp_prec 9) a
  | Log2 a -> Fmt.pf ppf "log2(%a)" (pp_prec 0) a
  | Isqrt a -> Fmt.pf ppf "isqrt(%a)" (pp_prec 0) a
  | Bin ((Min | Max) as op, a, b) ->
      Fmt.pf ppf "%s(%a, %a)" (binop_name op) (pp_prec 0) a (pp_prec 0) b
  | Bin (op, a, b) ->
      let p = prec op in
      (* comparisons are non-associative in the grammar: parenthesize
         both operands one level up *)
      let left_level =
        match op with Lt | Le | Gt | Ge | Eq | Ne -> p + 1 | _ -> p
      in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_prec left_level) a (binop_name op)
          (pp_prec (p + 1)) b
      in
      if p < level then Fmt.pf ppf "(%a)" body () else body ppf ()

let pp = pp_prec 0
let to_string = Fmt.to_to_string pp

let rec equal a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Rank, Rank | Nprocs, Nprocs -> true
  | Param x, Param y | Var x, Var y -> String.equal x y
  | Bin (o1, a1, b1), Bin (o2, a2, b2) -> o1 = o2 && equal a1 a2 && equal b1 b2
  | Neg x, Neg y | Not x, Not y | Log2 x, Log2 y | Isqrt x, Isqrt y ->
      equal x y
  | ( ( Int _ | Rank | Nprocs | Param _ | Var _ | Bin _ | Neg _ | Not _
      | Log2 _ | Isqrt _ ),
      _ ) ->
      false

(* Infix constructors for the builder DSL. *)
module Infix = struct
  let i n = Int n
  let rank = Rank
  let np = Nprocs
  let p name = Param name
  let v name = Var name
  let ( + ) a b = Bin (Add, a, b)
  let ( - ) a b = Bin (Sub, a, b)
  let ( * ) a b = Bin (Mul, a, b)
  let ( / ) a b = Bin (Div, a, b)
  let ( % ) a b = Bin (Mod, a, b)
  let ( lsl ) a b = Bin (Shl, a, b)
  let ( asr ) a b = Bin (Shr, a, b)
  let ( < ) a b = Bin (Lt, a, b)
  let ( <= ) a b = Bin (Le, a, b)
  let ( > ) a b = Bin (Gt, a, b)
  let ( >= ) a b = Bin (Ge, a, b)
  let ( = ) a b = Bin (Eq, a, b)
  let ( <> ) a b = Bin (Ne, a, b)
  let ( && ) a b = Bin (And, a, b)
  let ( || ) a b = Bin (Or, a, b)
  let ( lxor ) a b = Bin (Xor, a, b)
  let min_ a b = Bin (Min, a, b)
  let max_ a b = Bin (Max, a, b)
  let not_ a = Not a
  let neg a = Neg a
  let log2 a = Log2 a
  let isqrt a = Isqrt a
end
