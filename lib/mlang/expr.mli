(** Integer expression language for MiniMPI.

    Expressions compute context-dependent values: loop trip counts,
    message sizes and peers, branch conditions, and per-statement workload
    descriptors. Booleans are 0/1 integers. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Min
  | Max
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
  | Xor

type t =
  | Int of int
  | Rank  (** the executing process rank *)
  | Nprocs  (** the job scale *)
  | Param of string  (** program-level problem-size parameter *)
  | Var of string  (** loop variable, [let] binding or function argument *)
  | Bin of binop * t * t
  | Neg of t
  | Not of t
  | Log2 of t  (** floor(log2 e); 0 for e <= 1 *)
  | Isqrt of t  (** floor(sqrt e); 0 for e <= 0 *)

exception Eval_error of string

type env

val env :
  rank:int ->
  nprocs:int ->
  params:(string * int) list ->
  vars:(string * int) list ->
  env

(** [eval env e] evaluates [e]; raises {!Eval_error} on unbound names or
    division by zero. *)
val eval : env -> t -> int

val eval_bool : env -> t -> bool

(** Free [Var] names of an expression (parameters excluded). *)
val free_vars : t -> string list

(** [Param] names referenced by an expression. *)
val params : t -> string list

(** True when the expression has the same value on every rank for a fixed
    job scale (no [Rank], no [Var]). *)
val is_static : t -> bool

val depends_on_rank : t -> bool

(** True when [Nprocs] appears anywhere in the expression — the syntactic
    trigger of the static scaling-loss lints. *)
val depends_on_nprocs : t -> bool

val binop_name : binop -> string
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string

(** Infix constructors for the builder DSL. *)
module Infix : sig
  val i : int -> t
  val rank : t
  val np : t
  val p : string -> t
  val v : string -> t
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( % ) : t -> t -> t
  val ( lsl ) : t -> t -> t
  val ( asr ) : t -> t -> t
  val ( < ) : t -> t -> t
  val ( <= ) : t -> t -> t
  val ( > ) : t -> t -> t
  val ( >= ) : t -> t -> t
  val ( = ) : t -> t -> t
  val ( <> ) : t -> t -> t
  val ( && ) : t -> t -> t
  val ( || ) : t -> t -> t
  val ( lxor ) : t -> t -> t
  val min_ : t -> t -> t
  val max_ : t -> t -> t
  val not_ : t -> t
  val neg : t -> t
  val log2 : t -> t
  val isqrt : t -> t
end
