(** Integer expression language for MiniMPI.

    Expressions compute context-dependent values: loop trip counts,
    message sizes and peers, branch conditions, and per-statement workload
    descriptors. Booleans are 0/1 integers. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Min
  | Max
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or
  | Xor

type t =
  | Int of int
  | Rank  (** the executing process rank *)
  | Nprocs  (** the job scale *)
  | Param of string  (** program-level problem-size parameter *)
  | Var of string  (** loop variable, [let] binding or function argument *)
  | Bin of binop * t * t
  | Neg of t
  | Not of t
  | Log2 of t  (** floor(log2 e); 0 for e <= 1 *)
  | Isqrt of t  (** floor(sqrt e); 0 for e <= 0 *)

exception Eval_error of string

type env

val env :
  rank:int ->
  nprocs:int ->
  params:(string * int) list ->
  vars:(string * int) list ->
  env

(** [eval env e] evaluates [e]; raises {!Eval_error} on unbound names or
    division by zero. *)
val eval : env -> t -> int

val eval_bool : env -> t -> bool

(** Free [Var] names of an expression (parameters excluded). *)
val free_vars : t -> string list

(** [Param] names referenced by an expression. *)
val params : t -> string list

(** True when the expression has the same value on every rank for a fixed
    job scale (no [Rank], no [Var]). *)
val is_static : t -> bool

val depends_on_rank : t -> bool

(** True when [Nprocs] appears anywhere in the expression — the syntactic
    trigger of the static scaling-loss lints. *)
val depends_on_nprocs : t -> bool

val binop_name : binop -> string
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string

(** Compiled expression form used by the runtime's hot loop: [Var]s are
    resolved to integer slots in a flat frame array, [Param]/[Nprocs] are
    folded to their per-run constant values, and constant subtrees are
    folded at compile time.  Error behaviour matches {!eval} exactly:
    unbound names and division by zero surface lazily at evaluation time
    with identical messages. *)
module Compiled : sig
  type expr

  (** Per-frame evaluation context. [c_vars.(slot)] is the current value
      of a variable slot; [c_bound] marks slots that have been assigned
      (['\000'] = unbound). *)
  type env = { c_rank : int; c_vars : int array; c_bound : Bytes.t }

  (** [compile ~nprocs ~param ~var_slot e] resolves and folds [e].
      [param name] returns the per-run value of a program parameter
      ([None] compiles to a lazy unbound-parameter error); [var_slot
      name] returns the frame slot of a variable, or a negative value to
      compile a lazy unbound-variable error. *)
  val compile :
    nprocs:int ->
    param:(string -> int option) ->
    var_slot:(string -> int) ->
    t ->
    expr

  (** Raises {!Eval_error} exactly where {!val-eval} on the source
      expression would. *)
  val eval : env -> expr -> int

  (** The folded constant value, when compilation reduced the whole
      expression to one. *)
  val const : expr -> int option
end

(** Infix constructors for the builder DSL. *)
module Infix : sig
  val i : int -> t
  val rank : t
  val np : t
  val p : string -> t
  val v : string -> t
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( % ) : t -> t -> t
  val ( lsl ) : t -> t -> t
  val ( asr ) : t -> t -> t
  val ( < ) : t -> t -> t
  val ( <= ) : t -> t -> t
  val ( > ) : t -> t -> t
  val ( >= ) : t -> t -> t
  val ( = ) : t -> t -> t
  val ( <> ) : t -> t -> t
  val ( && ) : t -> t -> t
  val ( || ) : t -> t -> t
  val ( lxor ) : t -> t -> t
  val min_ : t -> t -> t
  val max_ : t -> t -> t
  val not_ : t -> t
  val neg : t -> t
  val log2 : t -> t
  val isqrt : t -> t
end
