(* Well-formedness checks for MiniMPI programs.

   The validator plays the role of the front-end semantic checks a real
   compiler would run before ScalAna's static passes: unresolved calls,
   arity mismatches, unbound names and dangling request handles are
   reported with their source locations. *)

type error = { loc : Loc.t; msg : string }

let pp_error ppf { loc; msg } = Fmt.pf ppf "%a: %s" Loc.pp loc msg
let error_to_string = Fmt.to_to_string pp_error

type ctx = {
  program : Ast.program;
  mutable errors : error list;
}

let add ctx loc fmt = Fmt.kstr (fun msg -> ctx.errors <- { loc; msg } :: ctx.errors) fmt

let check_expr ctx loc ~bound e =
  List.iter
    (fun v ->
      if not (List.mem v bound) then add ctx loc "unbound variable %S" v)
    (Expr.free_vars e);
  List.iter
    (fun p ->
      if not (List.mem_assoc p ctx.program.params) then
        add ctx loc "undeclared parameter %S" p)
    (Expr.params e)

let check_peer ctx loc ~bound = function
  | Ast.Any_source -> ()
  | Ast.Peer e -> check_expr ctx loc ~bound e

let check_tag ctx loc ~bound = function
  | Ast.Any_tag -> ()
  | Ast.Tag e -> check_expr ctx loc ~bound e

(* Request-handle state threaded through a function body: [posted] is
   every handle an Isend/Irecv has named so far (monotone), [pending]
   the handles posted but not yet waited on.  Branch arms evolve
   [pending] from a copy and merge by union, so a handle still pending
   on any path counts as pending. *)
type reqstate = {
  mutable posted : string list;
  mutable pending : string list;
}

let check_mpi ctx loc ~bound ~reqs:rs call =
  let e = check_expr ctx loc ~bound in
  (match call with
  | Ast.Send { dest; tag; bytes } ->
      e dest;
      e tag;
      e bytes
  | Ast.Recv { src; tag; bytes } ->
      check_peer ctx loc ~bound src;
      check_tag ctx loc ~bound tag;
      e bytes
  | Ast.Isend { dest; tag; bytes; req = _ } ->
      e dest;
      e tag;
      e bytes
  | Ast.Irecv { src; tag; bytes; req = _ } ->
      check_peer ctx loc ~bound src;
      check_tag ctx loc ~bound tag;
      e bytes
  | Ast.Wait _ | Ast.Waitall _ | Ast.Barrier -> ()
  | Ast.Sendrecv { dest; stag; sbytes; src; rtag; rbytes } ->
      e dest;
      e stag;
      e sbytes;
      check_peer ctx loc ~bound src;
      check_tag ctx loc ~bound rtag;
      e rbytes
  | Ast.Bcast { root; bytes } | Ast.Reduce { root; bytes } ->
      e root;
      e bytes
  | Ast.Allreduce { bytes } | Ast.Alltoall { bytes } | Ast.Allgather { bytes }
    ->
      e bytes);
  (* Request discipline: a wait must name a request posted earlier in the
     same function body, a handle must not be re-posted while a previous
     operation on it is still in flight, and a waitall must not complete
     the same handle twice (syntactic approximation of MPI's rules). *)
  let complete r = rs.pending <- List.filter (fun p -> p <> r) rs.pending in
  match call with
  | Ast.Wait { req } ->
      if not (List.mem req rs.posted) then
        add ctx loc "MPI_Wait on request %S never posted in this function" req;
      complete req
  | Ast.Waitall { reqs } ->
      List.fold_left
        (fun seen r ->
          if not (List.mem r rs.posted) then
            add ctx loc "MPI_Waitall on request %S never posted in this function"
              r;
          if List.mem r seen then
            add ctx loc "MPI_Waitall lists request %S twice" r;
          complete r;
          r :: seen)
        [] reqs
      |> ignore
  | Ast.Isend { req; _ } | Ast.Irecv { req; _ } ->
      if List.mem req rs.pending then
        add ctx loc "%s re-uses request %S while it is still pending"
          (Ast.mpi_name call) req;
      if not (List.mem req rs.posted) then rs.posted <- req :: rs.posted;
      rs.pending <- req :: rs.pending
  | Ast.Send _ | Ast.Recv _ | Ast.Sendrecv _ | Ast.Barrier | Ast.Bcast _
  | Ast.Reduce _ | Ast.Allreduce _ | Ast.Alltoall _ | Ast.Allgather _ ->
      ()

let rec check_stmts ctx ~bound ~reqs stmts =
  List.fold_left
    (fun bound (s : Ast.stmt) ->
      match s.node with
      | Ast.Comp w ->
          check_expr ctx s.loc ~bound w.flops;
          check_expr ctx s.loc ~bound w.mem;
          check_expr ctx s.loc ~bound w.ints;
          if not (w.locality >= 0.0 && w.locality <= 1.0) then
            add ctx s.loc "locality %g out of [0,1]" w.locality;
          bound
      | Ast.Loop l ->
          check_expr ctx s.loc ~bound l.count;
          ignore (check_stmts ctx ~bound:(l.var :: bound) ~reqs l.body);
          bound
      | Ast.Branch b ->
          check_expr ctx s.loc ~bound b.cond;
          (* each arm evolves the pending set from the same starting
             point; afterwards a handle pending on either path counts *)
          let before = reqs.pending in
          ignore (check_stmts ctx ~bound ~reqs b.then_);
          let after_then = reqs.pending in
          reqs.pending <- before;
          ignore (check_stmts ctx ~bound ~reqs b.else_);
          reqs.pending <- List.sort_uniq compare (after_then @ reqs.pending);
          bound
      | Ast.Call { callee; args } ->
          (match Ast.find_func_opt ctx.program callee with
          | None -> add ctx s.loc "call to undefined function %S" callee
          | Some f ->
              let given = List.map fst args in
              List.iter
                (fun p ->
                  if not (List.mem p given) then
                    add ctx s.loc "call to %S misses argument %S" callee p)
                f.fparams;
              List.iter
                (fun g ->
                  if not (List.mem g f.fparams) then
                    add ctx s.loc "call to %S passes unknown argument %S" callee
                      g)
                given);
          List.iter (fun (_, e) -> check_expr ctx s.loc ~bound e) args;
          bound
      | Ast.Icall { selector; targets } ->
          check_expr ctx s.loc ~bound selector;
          if targets = [] then add ctx s.loc "indirect call with no targets";
          List.iter
            (fun t ->
              match Ast.find_func_opt ctx.program t with
              | Some f ->
                  if f.fparams <> [] then
                    add ctx s.loc
                      "indirect-call target %S takes parameters (unsupported)"
                      t
              | None -> add ctx s.loc "indirect-call target %S undefined" t)
            targets;
          bound
      | Ast.Mpi call ->
          check_mpi ctx s.loc ~bound ~reqs call;
          bound
      | Ast.Let { var; value } ->
          check_expr ctx s.loc ~bound value;
          var :: bound)
    bound stmts
  |> ignore

let check_func ctx (f : Ast.func) =
  let reqs = { posted = []; pending = [] } in
  check_stmts ctx ~bound:f.fparams ~reqs f.fbody

let duplicates names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then true
      else (
        Hashtbl.add seen n ();
        false))
    names

let run program =
  let ctx = { program; errors = [] } in
  (match Ast.find_func_opt program program.main with
  | Some _ -> ()
  | None -> add ctx Loc.none "main function %S is not defined" program.main);
  List.iter
    (fun n -> add ctx Loc.none "duplicate function name %S" n)
    (duplicates (List.map (fun (f : Ast.func) -> f.fname) program.funcs));
  List.iter
    (fun n -> add ctx Loc.none "duplicate parameter %S" n)
    (duplicates (List.map fst program.params));
  List.iter (check_func ctx) program.funcs;
  match List.rev ctx.errors with [] -> Ok () | errs -> Error errs

let run_exn program =
  match run program with
  | Ok () -> ()
  | Error errs ->
      let msg = String.concat "\n" (List.map error_to_string errs) in
      invalid_arg ("Validate.run_exn:\n" ^ msg)
