(* Commit-stamped history ledger: append-only JSONL with per-line CRCs.

   The format mirrors the artifact-v2 posture at text scale: every line
   is a self-contained JSON object whose last field is the CRC-32 of
   the object serialised without it, so a torn append (power loss mid
   write) or a flipped byte invalidates exactly one line and the rest
   of the ledger still loads.  Keys are emitted in sorted order so
   ledgers diff cleanly across machines. *)

type entry = {
  h_time : float;
  h_commit : string;
  h_label : string;
  h_program : string;
  h_scales : int list;
  h_slopes : (string * float) list;
  h_waits : (string * float) list;
  h_degraded : bool;
  h_coverage : float;
  h_detect_seconds : float;
}

let default_path = Filename.concat ".scalana" "history.jsonl"

(* Same polynomial/table as Scalana.Artifact; duplicated because this
   library sits below lib/core in the dependency order. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let current_commit () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
      let line = try input_line ic with End_of_file | Sys_error _ -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
      | exception _ -> "unknown")

(* --- wire format --- *)

let num_map l =
  Obs.Json.Obj
    (List.map
       (fun (k, v) -> (k, Obs.Json.Num v))
       (List.sort (fun (a, _) (b, _) -> compare a b) l))

let entry_json e =
  Obs.Json.Obj
    [
      ("commit", Obs.Json.Str e.h_commit);
      ("coverage", Obs.Json.Num e.h_coverage);
      ("degraded", Obs.Json.Bool e.h_degraded);
      ("detect_seconds", Obs.Json.Num e.h_detect_seconds);
      ("label", Obs.Json.Str e.h_label);
      ("program", Obs.Json.Str e.h_program);
      ( "scales",
        Obs.Json.Arr
          (List.map (fun n -> Obs.Json.Num (float_of_int n)) e.h_scales) );
      ("slopes", num_map e.h_slopes);
      ("time", Obs.Json.Num e.h_time);
      ("waits", num_map e.h_waits);
    ]

let entry_line e =
  let payload = Obs.Json.to_string (entry_json e) in
  let crc = crc32 payload in
  Obs.Json.to_string
    (match entry_json e with
    | Obs.Json.Obj fields ->
        Obs.Json.Obj (fields @ [ ("crc", Obs.Json.Str (Printf.sprintf "%08x" crc)) ])
    | other -> other)

let str_member k j =
  match Obs.Json.member k j with Some (Obs.Json.Str s) -> s | _ -> ""

let num_member k j =
  match Obs.Json.member k j with Some (Obs.Json.Num v) -> v | _ -> 0.0

let bool_member k j =
  match Obs.Json.member k j with Some (Obs.Json.Bool b) -> b | _ -> false

let num_map_member k j =
  match Obs.Json.member k j with
  | Some (Obs.Json.Obj l) ->
      List.filter_map
        (function k, Obs.Json.Num v -> Some (k, v) | _ -> None)
        l
  | _ -> []

let decode j =
  {
    h_time = num_member "time" j;
    h_commit = str_member "commit" j;
    h_label = str_member "label" j;
    h_program = str_member "program" j;
    h_scales =
      (match Obs.Json.member "scales" j with
      | Some (Obs.Json.Arr l) ->
          List.filter_map
            (function Obs.Json.Num v -> Some (int_of_float v) | _ -> None)
            l
      | _ -> []);
    h_slopes = num_map_member "slopes" j;
    h_waits = num_map_member "waits" j;
    h_degraded = bool_member "degraded" j;
    h_coverage = num_member "coverage" j;
    h_detect_seconds = num_member "detect_seconds" j;
  }

let entry_of_line line =
  match Obs.Json.of_string line with
  | Error e -> Error ("malformed JSON: " ^ e)
  | Ok (Obs.Json.Obj fields) -> (
      match List.assoc_opt "crc" fields with
      | Some (Obs.Json.Str hex) -> (
          let payload_fields = List.filter (fun (k, _) -> k <> "crc") fields in
          let payload = Obs.Json.to_string (Obs.Json.Obj payload_fields) in
          match int_of_string_opt ("0x" ^ hex) with
          | Some want when want = crc32 payload ->
              Ok (decode (Obs.Json.Obj payload_fields))
          | Some _ -> Error "crc mismatch"
          | None -> Error "unparsable crc")
      | Some _ | None -> Error "missing crc")
  | Ok _ -> Error "line is not an object"

(* --- file I/O --- *)

let append ~path e =
  Obs.with_span "history.append" ~args:[ ("path", path) ] @@ fun () ->
  let dir = Filename.dirname path in
  (if dir <> "." && dir <> "" && not (Sys.file_exists dir) then
     try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (* a crashed appender can leave a torn final line with no newline;
     start on a fresh line so the new row is not glued to the wreckage
     (the torn line stays damaged and is dropped on load, as it would
     have been anyway) *)
  let torn_tail =
    Sys.file_exists path
    &&
    match open_in_bin path with
    | exception Sys_error _ -> false
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let len = in_channel_length ic in
            len > 0
            &&
            (seek_in ic (len - 1);
             input_char ic <> '\n'))
  in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      if torn_tail then output_char oc '\n';
      output_string oc (entry_line e);
      output_char oc '\n');
  Obs.Metrics.incr "history.appends"

type load_result = { entries : entry list; dropped : int }

let load ~path =
  Obs.with_span "history.load" ~args:[ ("path", path) ] @@ fun () ->
  if not (Sys.file_exists path) then { entries = []; dropped = 0 }
  else begin
    let ic = open_in path in
    let entries = ref [] and dropped = ref 0 in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then
              match entry_of_line line with
              | Ok e -> entries := e :: !entries
              | Error _ -> incr dropped
          done
        with End_of_file -> ());
    Obs.Metrics.incr ~by:(List.length !entries) "history.entries_loaded";
    Obs.Metrics.incr ~by:!dropped "history.lines_dropped";
    { entries = List.rev !entries; dropped = !dropped }
  end

(* --- trend queries --- *)

let last ~n entries =
  let len = List.length entries in
  if len <= n then entries else List.filteri (fun i _ -> i >= len - n) entries

let tracked_vertices entries =
  List.concat_map (fun e -> List.map fst e.h_slopes) entries
  |> List.sort_uniq compare

let slope_trend entries ~key =
  List.map (fun e -> List.assoc_opt key e.h_slopes) entries

let ramp = ".:-=+*#%@"

let sparkline series =
  let present = List.filter_map Fun.id series in
  match present with
  | [] -> String.concat "" (List.map (fun _ -> " ") series)
  | _ ->
      let lo = List.fold_left min infinity present
      and hi = List.fold_left max neg_infinity present in
      let levels = String.length ramp in
      let char_of v =
        if hi -. lo < 1e-12 then ramp.[3] (* flat series *)
        else begin
          let idx =
            int_of_float ((v -. lo) /. (hi -. lo) *. float_of_int (levels - 1))
          in
          ramp.[max 0 (min (levels - 1) idx)]
        end
      in
      let buf = Buffer.create (List.length series) in
      List.iter
        (function
          | None -> Buffer.add_char buf ' '
          | Some v -> Buffer.add_char buf (char_of v))
        series;
      Buffer.contents buf
