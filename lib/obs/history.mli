(** Commit-stamped history ledger: one summary row per detect run.

    The ledger is an append-only JSONL file (one JSON object per line,
    conventionally [.scalana/history.jsonl]).  Each line carries a
    CRC-32 of its own payload, so a torn append or a flipped byte is
    detected on load and the damaged line is skipped — the same salvage
    posture as the artifact-v2 streams, scaled down to text.

    Rows are written by [scalana-detect --history] and read back both
    by the trend section of the reports and by CI dashboards; the
    format is deliberately small and stable: label, commit, scales,
    top-k vertex slopes, wait-class totals and quality flags. *)

(** One detect run, summarised. *)
type entry = {
  h_time : float;  (** unix seconds when the row was recorded *)
  h_commit : string;  (** VCS stamp ({!current_commit}), ["unknown"] if none *)
  h_label : string;  (** user-chosen label, [""] by default *)
  h_program : string;
  h_scales : int list;
  h_slopes : (string * float) list;
      (** top-k vertex keys (label [@]loc) → fitted log-log slope *)
  h_waits : (string * float) list;  (** wait-class name → total seconds *)
  h_degraded : bool;  (** session quality was not clean *)
  h_coverage : float;  (** worst-scale rank coverage, 0..1 *)
  h_detect_seconds : float;
}

(** [".scalana/history.jsonl"] — relative to the working directory, so
    one checkout accumulates one ledger across sessions. *)
val default_path : string

(** Best-effort [git rev-parse --short HEAD]; ["unknown"] outside a
    repository or when git is unavailable. *)
val current_commit : unit -> string

(** Append one row, creating the ledger (and its directory) on first
    use.  The write is a single [O_APPEND] syscall, so concurrent
    appenders interleave whole lines.  A torn final line (a crashed
    appender) is not repaired, but the new row starts on a fresh line
    after it, so the ledger loses only the torn row. *)
val append : path:string -> entry -> unit

type load_result = {
  entries : entry list;  (** oldest first, in file order *)
  dropped : int;  (** lines skipped: truncated, malformed or bad CRC *)
}

(** Load a ledger, salvaging around damaged lines.  A missing file is
    an empty ledger, not an error. *)
val load : path:string -> load_result

(** {1 Trend queries} *)

(** Last [n] entries, oldest first. *)
val last : n:int -> entry list -> entry list

(** Vertex keys tracked across [entries] (union of slope keys), sorted,
    most-recently-seen keys first on ties of name order — in practice:
    sorted by name. *)
val tracked_vertices : entry list -> string list

(** Per-entry slope of [key], [None] where the entry does not track
    it.  Oldest first, same order as the input. *)
val slope_trend : entry list -> key:string -> float option list

(** Render a series as a fixed-alphabet ASCII sparkline (one char per
    point, [' '] for missing points); values are scaled to the min/max
    of the present points. *)
val sparkline : float option list -> string

(** {1 Wire format} *)

(** The JSON object for one row, without the ["crc"] field — exposed
    for tests and external consumers. *)
val entry_json : entry -> Obs.Json.t

(** Parse one ledger line, checking the CRC.  [Error] describes why the
    line was rejected. *)
val entry_of_line : string -> (entry, string) result
