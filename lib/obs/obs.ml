(* Self-observability: spans + metrics for the pipeline's own phases.

   Everything here is stdlib-only and built around one rule: while the
   switch is off (the default), every entry point returns immediately,
   so instrumentation can stay compiled into the hot paths without
   changing their behaviour or their output.

   Domain safety comes from per-domain span buffers (Domain.DLS) that
   are registered in a global table on first use and only merged at
   flush time, after the pools have drained — recording never takes a
   lock shared with another domain.  The metrics registry is the one
   shared structure; it is small and mutex-protected, and only touched
   by coarse-grained events (per task, per phase — never per vertex). *)

(* --- minimal JSON --- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\b' -> Buffer.add_string buf "\\b"
        | '\012' -> Buffer.add_string buf "\\f"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let add_num buf v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" v)
    else Buffer.add_string buf (Printf.sprintf "%.12g" v)

  let to_string t =
    let buf = Buffer.create 1024 in
    let rec go = function
      | Null -> Buffer.add_string buf "null"
      | Bool b -> Buffer.add_string buf (if b then "true" else "false")
      | Num v -> add_num buf v
      | Str s ->
          Buffer.add_char buf '"';
          escape buf s;
          Buffer.add_char buf '"'
      | Arr l ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i x ->
              if i > 0 then Buffer.add_char buf ',';
              go x)
            l;
          Buffer.add_char buf ']'
      | Obj l ->
          Buffer.add_char buf '{';
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_char buf '"';
              escape buf k;
              Buffer.add_string buf "\":";
              go v)
            l;
          Buffer.add_char buf '}'
    in
    go t;
    Buffer.contents buf

  exception Bad of int * string

  (* Recursive-descent parser over the subset we emit; [pos] in the
     error is a byte offset into the input. *)
  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (!pos, msg)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word value =
      if !pos + String.length word <= n
         && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        value
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               if !pos + 4 > n then fail "short \\u escape";
               let hex = String.sub s !pos 4 in
               pos := !pos + 4;
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               (* we only emit \u00XX for control characters; decode the
                  basic-plane code point as UTF-8 *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
           | _ -> fail "unknown escape");
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && num_char s.[!pos] do
        advance ()
      done;
      if !pos = start then fail "expected a number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some v -> v
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            Arr []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elems []
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad (at, msg) ->
        Error (Printf.sprintf "at byte %d: %s" at msg)

  let member key = function
    | Obj l -> List.assoc_opt key l
    | _ -> None
end

(* --- collection switch and clock --- *)

let switch = Atomic.make false
let epoch = Atomic.make 0.0
let enabled () = Atomic.get switch

type completed = {
  sp_name : string;
  sp_args : (string * string) list;
  sp_start : float;
  sp_stop : float;
  sp_tid : int;
  sp_depth : int;
  sp_seq : int;
}

type flow_point = {
  fl_name : string;
  fl_id : int;
  fl_time : float;
  fl_tid : int;
  fl_end : bool;
}

(* Per-domain buffer: finished spans (newest first), the open-span depth
   and a local sequence counter, plus the monotonic clamp. *)
type dbuf = {
  did : int;
  mutable finished : completed list;
  mutable flow_points : flow_point list;
  mutable depth : int;
  mutable seq : int;
  mutable last_now : float;
}

let registry_lock = Mutex.create ()
let registry : dbuf list ref = ref []

let buf_key : dbuf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          did = (Domain.self () :> int);
          finished = [];
          flow_points = [];
          depth = 0;
          seq = 0;
          last_now = 0.0;
        }
      in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      b)

let raw_now () = Unix.gettimeofday () -. Atomic.get epoch

(* Clamped per domain: gettimeofday can step backwards (NTP); trace
   timestamps must not. *)
let now_in buf =
  let t = raw_now () in
  if t < buf.last_now then buf.last_now
  else begin
    buf.last_now <- t;
    t
  end

let now () =
  if not (enabled ()) then 0.0 else now_in (Domain.DLS.get buf_key)

(* --- metrics registry --- *)

module Metrics = struct
  type histo = {
    h_count : int;
    h_sum : float;
    h_min : float;
    h_max : float;
    h_buckets : int array;
  }

  let bucket_bounds =
    [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 |]

  type hstate = {
    mutable c : int;
    mutable sum : float;
    mutable mn : float;
    mutable mx : float;
    buckets : int array;  (* one extra slot for overflow *)
  }

  let lock = Mutex.create ()
  let counters : (string, int ref) Hashtbl.t = Hashtbl.create 32
  let gauges : (string, float ref) Hashtbl.t = Hashtbl.create 16
  let histos : (string, hstate) Hashtbl.t = Hashtbl.create 16

  let clear () =
    Mutex.lock lock;
    Hashtbl.reset counters;
    Hashtbl.reset gauges;
    Hashtbl.reset histos;
    Mutex.unlock lock

  let incr ?(by = 1) name =
    if enabled () then begin
      Mutex.lock lock;
      (match Hashtbl.find_opt counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add counters name (ref by));
      Mutex.unlock lock
    end

  let set_gauge name v =
    if enabled () then begin
      Mutex.lock lock;
      (match Hashtbl.find_opt gauges name with
      | Some r -> r := v
      | None -> Hashtbl.add gauges name (ref v));
      Mutex.unlock lock
    end

  let bucket_of v =
    let rec go i =
      if i >= Array.length bucket_bounds then i
      else if v <= bucket_bounds.(i) then i
      else go (i + 1)
    in
    go 0

  let observe name v =
    if enabled () then begin
      Mutex.lock lock;
      let h =
        match Hashtbl.find_opt histos name with
        | Some h -> h
        | None ->
            let h =
              {
                c = 0;
                sum = 0.0;
                mn = infinity;
                mx = neg_infinity;
                buckets = Array.make (Array.length bucket_bounds + 1) 0;
              }
            in
            Hashtbl.add histos name h;
            h
      in
      h.c <- h.c + 1;
      h.sum <- h.sum +. v;
      if v < h.mn then h.mn <- v;
      if v > h.mx then h.mx <- v;
      let b = bucket_of v in
      h.buckets.(b) <- h.buckets.(b) + 1;
      Mutex.unlock lock
    end

  type snapshot = {
    counters : (string * int) list;
    gauges : (string * float) list;
    histograms : (string * histo) list;
  }

  let sorted tbl f =
    Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let snapshot () =
    Mutex.lock lock;
    let snap =
      {
        counters = sorted counters (fun r -> !r);
        gauges = sorted gauges (fun r -> !r);
        histograms =
          sorted histos (fun h ->
              {
                h_count = h.c;
                h_sum = h.sum;
                h_min = (if h.c = 0 then 0.0 else h.mn);
                h_max = (if h.c = 0 then 0.0 else h.mx);
                h_buckets = Array.copy h.buckets;
              });
      }
    in
    Mutex.unlock lock;
    snap
end

(* --- spans --- *)

type span =
  | Inert  (* recorded while disabled *)
  | Open of {
      name : string;
      args : (string * string) list;
      t0 : float;
      buf : dbuf;
      depth : int;
      seq : int;
    }

let start ?(args = []) name =
  if not (enabled ()) then Inert
  else begin
    let buf = Domain.DLS.get buf_key in
    let t0 = now_in buf in
    let depth = buf.depth and seq = buf.seq in
    buf.depth <- depth + 1;
    buf.seq <- seq + 1;
    Open { name; args; t0; buf; depth; seq }
  end

let finish ?(args = []) = function
  | Inert -> ()
  | Open { name; args = args0; t0; buf; depth; seq } ->
      let t1 = now_in buf in
      buf.depth <- depth;
      buf.finished <-
        {
          sp_name = name;
          sp_args = args0 @ args;
          sp_start = t0;
          sp_stop = t1;
          sp_tid = buf.did;
          sp_depth = depth;
          sp_seq = seq;
        }
        :: buf.finished

(* --- flow arrows --- *)

(* The id counter is process-global and never reset: every exporter in
   the process (the pipeline trace here, the application rank-trace in
   Scalana_profile.Timeline) draws from the same sequence, so flow ids
   stay disjoint when both documents are loaded into one Perfetto
   session. *)
module Flow = struct
  let counter = Atomic.make 0
  let next_id () = Atomic.fetch_and_add counter 1 + 1
end

let flow_point ?(name = "flow") ~is_end id =
  if enabled () then begin
    let buf = Domain.DLS.get buf_key in
    buf.flow_points <-
      {
        fl_name = name;
        fl_id = id;
        fl_time = now_in buf;
        fl_tid = buf.did;
        fl_end = is_end;
      }
      :: buf.flow_points
  end

let flow_start ?name id = flow_point ?name ~is_end:false id
let flow_finish ?name id = flow_point ?name ~is_end:true id

let with_span ?args name f =
  let sp = start ?args name in
  match f () with
  | v ->
      finish sp;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish sp;
      Printexc.raise_with_backtrace e bt

(* Flush-time merge; callers guarantee quiescence (pools drained). *)
let spans () =
  Mutex.lock registry_lock;
  let bufs = !registry in
  Mutex.unlock registry_lock;
  List.concat_map (fun b -> b.finished) bufs
  |> List.sort (fun a b ->
         compare (a.sp_start, a.sp_tid, a.sp_seq)
           (b.sp_start, b.sp_tid, b.sp_seq))

let flows () =
  Mutex.lock registry_lock;
  let bufs = !registry in
  Mutex.unlock registry_lock;
  List.concat_map (fun b -> b.flow_points) bufs
  |> List.sort (fun a b ->
         compare (a.fl_time, a.fl_tid, a.fl_id) (b.fl_time, b.fl_tid, b.fl_id))

let reset () =
  Mutex.lock registry_lock;
  List.iter
    (fun b ->
      b.finished <- [];
      b.flow_points <- [];
      b.depth <- 0;
      b.seq <- 0;
      b.last_now <- 0.0)
    !registry;
  Mutex.unlock registry_lock;
  Metrics.clear ()

let enable () =
  reset ();
  Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set switch true

let disable () = Atomic.set switch false

(* --- exporters --- *)

let phase_summary () =
  let tbl : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      let calls, total =
        match Hashtbl.find_opt tbl sp.sp_name with
        | Some e -> e
        | None ->
            let e = (ref 0, ref 0.0) in
            Hashtbl.add tbl sp.sp_name e;
            e
      in
      incr calls;
      total := !total +. (sp.sp_stop -. sp.sp_start))
    (spans ());
  Hashtbl.fold (fun name (c, t) acc -> (name, !c, !t) :: acc) tbl []
  |> List.sort (fun (an, _, at) (bn, _, bt) -> compare (bt, an) (at, bn))

let us t = t *. 1e6

let trace_json () =
  let sps = spans () in
  let tids =
    List.sort_uniq compare (List.map (fun sp -> sp.sp_tid) sps)
  in
  let meta =
    List.map
      (fun tid ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Num 1.0);
            ("tid", Json.Num (float_of_int tid));
            ( "args",
              Json.Obj
                [
                  ( "name",
                    Json.Str
                      (if tid = 0 then "main" else Printf.sprintf "domain %d" tid)
                  );
                ] );
          ])
      tids
  in
  let events =
    List.map
      (fun sp ->
        Json.Obj
          ([
             ("name", Json.Str sp.sp_name);
             ("cat", Json.Str "scalana");
             ("ph", Json.Str "X");
             ("ts", Json.Num (us sp.sp_start));
             ("dur", Json.Num (us (sp.sp_stop -. sp.sp_start)));
             ("pid", Json.Num 1.0);
             ("tid", Json.Num (float_of_int sp.sp_tid));
           ]
          @
          if sp.sp_args = [] then []
          else
            [
              ( "args",
                Json.Obj
                  (List.map
                     (fun (k, v) -> (k, Json.Str v))
                     (List.sort (fun (a, _) (b, _) -> compare a b) sp.sp_args))
              );
            ]))
      sps
  in
  let flow_events =
    List.map
      (fun fl ->
        Json.Obj
          ([
             ("name", Json.Str fl.fl_name);
             ("cat", Json.Str "scalana.flow");
             ("ph", Json.Str (if fl.fl_end then "f" else "s"));
             ("id", Json.Num (float_of_int fl.fl_id));
             ("ts", Json.Num (us fl.fl_time));
             ("pid", Json.Num 1.0);
             ("tid", Json.Num (float_of_int fl.fl_tid));
           ]
          @ if fl.fl_end then [ ("bp", Json.Str "e") ] else []))
      (flows ())
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (meta @ events @ flow_events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let metrics_json () =
  let snap = Metrics.snapshot () in
  let histo (h : Metrics.histo) =
    Json.Obj
      [
        ("count", Json.Num (float_of_int h.h_count));
        ("sum", Json.Num h.h_sum);
        ("min", Json.Num h.h_min);
        ("max", Json.Num h.h_max);
        ( "bucket_le",
          Json.Arr
            (Array.to_list
               (Array.map (fun b -> Json.Num b) Metrics.bucket_bounds)) );
        ( "buckets",
          Json.Arr
            (Array.to_list
               (Array.map (fun c -> Json.Num (float_of_int c)) h.h_buckets))
        );
      ]
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Num (float_of_int v)))
             snap.Metrics.counters) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) snap.Metrics.gauges)
      );
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, histo h)) snap.Metrics.histograms)
      );
      ( "phases",
        (* The report sorts phases by cost; the exported file sorts them
           by name so two runs of the same pipeline diff cleanly. *)
        Json.Arr
          (List.map
             (fun (name, calls, total) ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ("calls", Json.Num (float_of_int calls));
                   ("total_seconds", Json.Num total);
                 ])
             (List.sort
                (fun (an, _, _) (bn, _, _) -> compare an bn)
                (phase_summary ()))) );
    ]

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc contents;
      output_char oc '\n')

let export_trace ~path = write_file path (Json.to_string (trace_json ()))
let export_metrics ~path = write_file path (Json.to_string (metrics_json ()))

(* --- OpenMetrics / Prometheus text exposition --- *)

(* Registry names use dots ("waitstate.late_sender_seconds"); Prometheus
   names may not.  Map every character outside [a-zA-Z0-9_:] to '_' and
   prefix the application namespace. *)
let om_name name =
  let buf = Buffer.create (String.length name + 8) in
  Buffer.add_string buf "scalana_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' ->
          Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let om_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

(* Label values: escape backslash, double quote and newline per the
   exposition-format grammar. *)
let om_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let openmetrics_string () =
  let snap = Metrics.snapshot () in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  List.iter
    (fun (name, v) ->
      let n = om_name name in
      line "# TYPE %s counter\n" n;
      line "%s_total %d\n" n v)
    snap.Metrics.counters;
  List.iter
    (fun (name, v) ->
      let n = om_name name in
      line "# TYPE %s gauge\n" n;
      line "%s %s\n" n (om_float v))
    snap.Metrics.gauges;
  List.iter
    (fun (name, (h : Metrics.histo)) ->
      let n = om_name name in
      line "# TYPE %s histogram\n" n;
      let cumulative = ref 0 in
      Array.iteri
        (fun i bound ->
          cumulative := !cumulative + h.h_buckets.(i);
          line "%s_bucket{le=\"%g\"} %d\n" n bound !cumulative)
        Metrics.bucket_bounds;
      line "%s_bucket{le=\"+Inf\"} %d\n" n h.h_count;
      line "%s_sum %s\n" n (om_float h.h_sum);
      line "%s_count %d\n" n h.h_count)
    snap.Metrics.histograms;
  let phases =
    List.sort (fun (an, _, _) (bn, _, _) -> compare an bn) (phase_summary ())
  in
  if phases <> [] then begin
    line "# TYPE scalana_phase_seconds counter\n";
    List.iter
      (fun (name, _, total) ->
        line "scalana_phase_seconds_total{phase=\"%s\"} %s\n"
          (om_label_value name) (om_float total))
      phases;
    line "# TYPE scalana_phase_calls counter\n";
    List.iter
      (fun (name, calls, _) ->
        line "scalana_phase_calls_total{phase=\"%s\"} %d\n"
          (om_label_value name) calls)
      phases
  end;
  (* every exposition line, the EOF marker included, ends in \n *)
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* not [write_file]: the exposition already ends in \n, and a blank line
   after # EOF is invalid OpenMetrics *)
let export_openmetrics ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (openmetrics_string ()))
