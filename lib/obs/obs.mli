(** Self-observability: tracing spans and a metrics registry for the
    ScalAna pipeline itself.

    ScalAna diagnoses *other* programs' scaling losses; this module
    makes its own cost measurable the same way — per-phase spans on a
    monotonic clock plus counters/gauges/histograms, exported as Chrome
    [trace_event] JSON (loadable in Perfetto or [about:tracing]) and a
    flat [metrics.json].

    Collection is {e off by default} and every entry point is a cheap
    no-op while disabled, so instrumented code paths behave — and
    allocate — essentially as if the instrumentation were not there.
    Reports stay byte-identical with observability off.

    Domain safety: spans and metrics may be recorded from any domain
    (the {!Scalana_pool.Pool} workers included).  Each domain appends
    to its own buffer, registered globally on first use; {!spans} and
    the exporters merge the per-domain buffers at flush time into one
    chronologically sorted stream, one trace track per domain.  A span
    must be finished on the domain that started it.  [enable], [reset]
    and the flush functions themselves expect quiescence (no concurrent
    recording), which the pipeline guarantees by flushing only after
    its pools have drained. *)

(** Minimal JSON values: enough to emit the two export formats and to
    parse them back in tests and CI assertions.  Stdlib-only. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string

  (** Parse a JSON document (the subset this module emits: no
      surrogate-pair [\u] escapes).  Returns [Error msg] with a byte
      offset on malformed input. *)
  val of_string : string -> (t, string) result

  (** [member key json] is the value bound to [key] when [json] is an
      object that has it. *)
  val member : string -> t -> t option
end

(** {1 Collection switch} *)

val enabled : unit -> bool

(** Start collecting: clears previous spans and metrics and re-anchors
    the trace clock at now. *)
val enable : unit -> unit

(** Stop collecting.  Already-recorded data stays readable. *)
val disable : unit -> unit

(** Drop all recorded spans and metrics (does not change the switch). *)
val reset : unit -> unit

(** {1 Clock} *)

(** Seconds since {!enable}, clamped per domain so it never runs
    backwards.  [0.] while disabled. *)
val now : unit -> float

(** {1 Spans} *)

type span

(** [start name] opens a span on the calling domain's buffer; spans
    opened while one is already open on the same domain nest under it.
    While disabled this returns an inert token. *)
val start : ?args:(string * string) list -> string -> span

(** Close a span, recording its duration; [args] are appended to the
    ones given at [start] (measured results, e.g. byte counts). *)
val finish : ?args:(string * string) list -> span -> unit

(** [with_span name f] = [start]; [f ()]; [finish] — the span is closed
    on exceptions too. *)
val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** A finished span, as returned by {!spans}. *)
type completed = {
  sp_name : string;
  sp_args : (string * string) list;
  sp_start : float;  (** seconds since {!enable} *)
  sp_stop : float;
  sp_tid : int;  (** domain the span ran on *)
  sp_depth : int;  (** nesting depth within that domain (0 = top) *)
  sp_seq : int;  (** open order within that domain *)
}

(** All finished spans, merged across domains and sorted by start time
    (ties: domain id, then open order). *)
val spans : unit -> completed list

(** {1 Flow events}

    Flow arrows connect a point on one track to a point on another
    (Chrome trace_event ["ph":"s"]/["ph":"f"]) — the pool uses them to
    draw task enqueue → execution, and the application-timeline exporter
    ({!Scalana_profile.Timeline}) uses them for matched messages. *)

module Flow : sig
  (** Allocate a process-globally unique flow id.  The counter is an
      atomic that is {e never} reset — every exporter in the process
      draws from it, so ids stay disjoint across documents and a merged
      Perfetto load of a pipeline trace and a rank trace never
      collides.  Usable while collection is disabled (exporters that
      write their own documents still need unique ids). *)
  val next_id : unit -> int
end

(** One end of a flow arrow, recorded on the calling domain. *)
type flow_point = {
  fl_name : string;
  fl_id : int;
  fl_time : float;
  fl_tid : int;
  fl_end : bool;  (** [false] = start ("s"), [true] = finish ("f") *)
}

(** Record the start / finish point of flow [id] at the current time on
    the calling domain's track.  No-ops while disabled. *)
val flow_start : ?name:string -> int -> unit

val flow_finish : ?name:string -> int -> unit

(** All recorded flow points, merged across domains and sorted by time
    (ties: domain id, then id). *)
val flows : unit -> flow_point list

(** {1 Metrics} *)

module Metrics : sig
  (** Monotonic counter ([by] defaults to 1). *)
  val incr : ?by:int -> string -> unit

  (** Last-write-wins gauge. *)
  val set_gauge : string -> float -> unit

  (** Record one duration (seconds) into the named histogram. *)
  val observe : string -> float -> unit

  type histo = {
    h_count : int;
    h_sum : float;
    h_min : float;  (** 0. when empty *)
    h_max : float;
    h_buckets : int array;
        (** counts per {!bucket_bounds} band, last = overflow *)
  }

  (** Upper bounds (seconds) of the histogram bands; the implicit last
      band collects everything larger. *)
  val bucket_bounds : float array

  type snapshot = {
    counters : (string * int) list;
    gauges : (string * float) list;
    histograms : (string * histo) list;
  }

  (** Current values, each list sorted by name. *)
  val snapshot : unit -> snapshot
end

(** {1 Exporters} *)

(** Per-phase cost: [(span name, calls, total seconds)], sorted by
    total descending (ties by name), from the spans recorded so far. *)
val phase_summary : unit -> (string * int * float) list

(** Chrome [trace_event] document: one complete ("ph":"X") event per
    finished span with microsecond timestamps, flow start/finish events
    ("ph":"s"/"f") for the recorded flow points, plus metadata events
    naming one track per domain.  Loads in Perfetto / about:tracing. *)
val trace_json : unit -> Json.t

(** Flat metrics document: counters, gauges and histograms by name.
    Object keys and the ["phases"] array are sorted by name, so two
    exports of the same pipeline diff cleanly. *)
val metrics_json : unit -> Json.t

(** The metrics registry in OpenMetrics / Prometheus text exposition
    format: counters as [<name>_total], gauges plain, histograms as
    cumulative [_bucket{le="..."}] series over {!Metrics.bucket_bounds}
    plus [_sum]/[_count], and the {!phase_summary} rows as
    [scalana_phase_seconds_total{phase="..."}] /
    [scalana_phase_calls_total{phase="..."}].  Registry names are
    prefixed with [scalana_] and characters outside the Prometheus
    grammar are mapped to ['_'].  Ends with the [# EOF] terminator. *)
val openmetrics_string : unit -> string

val export_trace : path:string -> unit
val export_metrics : path:string -> unit

(** Write {!openmetrics_string} to [path] (conventionally [*.prom]). *)
val export_openmetrics : path:string -> unit
