(* Fixed domain pool: a shared task queue drained by [size - 1] worker
   domains plus the calling domain.  Results are written into
   pre-allocated slots, so a map is order-preserving no matter which
   domain runs which chunk; with a fixed chunking function the whole
   scheme is deterministic, which is what lets the parallel analysis
   promise bit-identical output to the sequential one. *)

type task = unit -> unit

type t = {
  size : int;  (* total parallelism, caller included *)
  tasks : task Queue.t;
  lock : Mutex.t;
  work : Condition.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Set in every worker domain: a [parallel_map] issued from inside a
   worker must not enqueue (all workers could block on a batch nobody
   drains), so it runs sequentially instead. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let default_size () = min 8 (Domain.recommended_domain_count ())

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec next () =
    if t.stop then None
    else if Queue.is_empty t.tasks then begin
      Condition.wait t.work t.lock;
      next ()
    end
    else Some (Queue.pop t.tasks)
  in
  let task = next () in
  Mutex.unlock t.lock;
  match task with
  | None -> ()
  | Some task ->
      task ();
      worker_loop t

let create ?size () =
  let size = max 1 (match size with Some s -> s | None -> default_size ()) in
  let t =
    {
      size;
      tasks = Queue.create ();
      lock = Mutex.create ();
      work = Condition.create ();
      stop = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (size - 1) (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set in_worker true;
            worker_loop t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~size f =
  if size <= 1 then f None
  else begin
    let pool = create ~size () in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f (Some pool))
  end

(* Several chunks per unit of parallelism: cheap static load balancing
   when per-element cost is skewed (e.g. the largest-scale run dominates
   the per-scale fan-out). *)
let chunks_per_unit = 4

(* With observability on, each chunk is wrapped in a "pool.task" span on
   whatever domain drains it, its time-in-queue goes into the
   "pool.queue_wait" histogram, a per-domain task counter records who
   did the work, and a flow arrow links the enqueue point (submitting
   domain) to the execution (draining domain).  Off (the default),
   tasks run bare. *)
let observe_task ~lo ~hi task =
  if not (Scalana_obs.Obs.enabled ()) then task
  else begin
    let enqueued = Scalana_obs.Obs.now () in
    let flow_id = Scalana_obs.Obs.Flow.next_id () in
    Scalana_obs.Obs.flow_start ~name:"pool.task" flow_id;
    fun () ->
      Scalana_obs.Obs.Metrics.observe "pool.queue_wait"
        (Float.max 0.0 (Scalana_obs.Obs.now () -. enqueued));
      Scalana_obs.Obs.Metrics.incr
        (Printf.sprintf "pool.tasks.domain%d" (Domain.self () :> int));
      Scalana_obs.Obs.with_span
        ~args:[ ("range", Printf.sprintf "%d..%d" lo hi) ]
        "pool.task"
        (fun () ->
          Scalana_obs.Obs.flow_finish ~name:"pool.task" flow_id;
          task ())
  end

let parallel_map ?pool f xs =
  let sequential () = List.map f xs in
  match pool with
  | None -> sequential ()
  | Some t ->
      if t.size <= 1 || t.stop || Domain.DLS.get in_worker then sequential ()
      else begin
        let arr = Array.of_list xs in
        let n = Array.length arr in
        if n <= 1 then sequential ()
        else
          Scalana_obs.Obs.with_span
            ~args:[ ("items", string_of_int n) ]
            "pool.parallel_map"
          @@ fun () ->
          begin
          let results = Array.make n None in
          let batch_lock = Mutex.create () in
          let batch_done = Condition.create () in
          let remaining = ref 0 in
          let failure :
              (int * exn * Printexc.raw_backtrace) option ref =
            ref None
          in
          let record_failure i e bt =
            Mutex.lock batch_lock;
            (match !failure with
            | Some (j, _, _) when j <= i -> ()
            | _ -> failure := Some (i, e, bt));
            Mutex.unlock batch_lock
          in
          let run_range lo hi () =
            (try
               for i = lo to hi do
                 match
                   try Ok (f arr.(i))
                   with e -> Error (e, Printexc.get_raw_backtrace ())
                 with
                 | Ok y -> results.(i) <- Some y
                 | Error (e, bt) ->
                     record_failure i e bt;
                     raise Exit
               done
             with Exit -> ());
            Mutex.lock batch_lock;
            decr remaining;
            if !remaining = 0 then Condition.broadcast batch_done;
            Mutex.unlock batch_lock
          in
          let nchunks = min n (t.size * chunks_per_unit) in
          let chunk = (n + nchunks - 1) / nchunks in
          let batch = ref [] in
          let lo = ref 0 in
          while !lo < n do
            let hi = min (n - 1) (!lo + chunk - 1) in
            batch := observe_task ~lo:!lo ~hi (run_range !lo hi) :: !batch;
            lo := hi + 1
          done;
          remaining := List.length !batch;
          Mutex.lock t.lock;
          List.iter (fun task -> Queue.add task t.tasks) (List.rev !batch);
          Condition.broadcast t.work;
          Mutex.unlock t.lock;
          (* the caller drains the queue alongside the workers *)
          let rec help () =
            Mutex.lock t.lock;
            let task =
              if Queue.is_empty t.tasks then None else Some (Queue.pop t.tasks)
            in
            Mutex.unlock t.lock;
            match task with
            | Some task ->
                task ();
                help ()
            | None -> ()
          in
          help ();
          Mutex.lock batch_lock;
          while !remaining > 0 do
            Condition.wait batch_done batch_lock
          done;
          Mutex.unlock batch_lock;
          (match !failure with
          | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ());
          Array.to_list
            (Array.map
               (function Some y -> y | None -> assert false)
               results)
        end
      end
