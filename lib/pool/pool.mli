(** A fixed pool of worker domains for the embarrassingly parallel
    stages of the analysis (per-scale profiled runs, per-scale PPG
    builds, per-vertex log-log fits, per-function local PSGs).

    The pool is deliberately minimal: stdlib [Domain]/[Mutex]/[Condition]
    only, order-preserving [parallel_map], chunked scheduling, and a
    graceful sequential fallback so callers never have to special-case
    single-core machines or nested use. *)

type t
(** A pool of worker domains plus the calling domain.  A pool of size
    [n] spawns [n - 1] workers; the caller participates in draining the
    task queue, so [size] is the total parallelism. *)

val default_size : unit -> int
(** [min 8 (Domain.recommended_domain_count ())] — the analysis fan-outs
    are small (a handful of scales, hundreds of vertices), so more
    domains than that only add spawn cost. *)

val create : ?size:int -> unit -> t
(** Spawn a pool of [size] (default {!default_size}) units of
    parallelism.  [size <= 1] spawns no domains at all. *)

val size : t -> int

val shutdown : t -> unit
(** Stop and join the worker domains.  Must not be called while a
    {!parallel_map} on this pool is in flight.  Idempotent. *)

val with_pool : size:int -> (t option -> 'a) -> 'a
(** [with_pool ~size f] runs [f (Some pool)] with a freshly created pool
    and shuts it down afterwards (also on exception); when [size <= 1]
    it runs [f None] without spawning anything. *)

val parallel_map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving map.  Falls back to [List.map] when [pool] is
    absent, has size [<= 1], the input has fewer than two elements, or
    the call happens inside a pool worker (nested use).  The input is
    split into contiguous chunks (several per unit of parallelism, for
    load balance) and the chunks are drained by the workers and the
    caller.

    Exceptions raised by [f] are caught in the workers and re-raised in
    the caller; when several elements fail, the exception of the
    smallest input index is propagated, so failure behaviour is
    deterministic regardless of scheduling. *)
