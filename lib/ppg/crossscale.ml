(* Cross-scale container: PPGs of the same program at several job scales.

   Non-scalable vertex detection compares the performance of the vertex
   (the PSG is scale-invariant, Section IV-A) across these runs. *)

type t = {
  psg : Scalana_psg.Psg.t;
  runs : (int * Ppg.t) list;  (* sorted by nprocs ascending *)
}

(* Each scale's PPG is built from its own private profile against the
   shared read-only PSG, so the builds fan out across domains. *)
let create ?pool ~psg runs =
  Scalana_obs.Obs.with_span
    ~args:[ ("scales", string_of_int (List.length runs)) ]
    "crossscale.create"
  @@ fun () ->
  let runs =
    List.sort (fun (a, _) (b, _) -> compare a b) runs
    |> Scalana_pool.Pool.parallel_map ?pool (fun (n, data) ->
           (n, Ppg.build ~psg data))
  in
  { psg; runs }

let of_ppgs ~psg ppgs =
  { psg; runs = List.sort (fun (a, _) (b, _) -> compare a b) ppgs }

let scales t = List.map fst t.runs
let largest t = List.nth t.runs (List.length t.runs - 1)
let ppg_at t ~nprocs = List.assoc_opt nprocs t.runs

(* The effective process count of the run keyed by nominal scale
   [nprocs] — what an elastic session actually averaged over its
   membership epochs; the nominal value itself for a fixed run (or when
   the scale is unknown, so fits never see a hole).  A session whose
   ranks were all lost can leave a NaN or zero behind; degrade to the
   nominal scale rather than poison Loglog.fit_scaled's x-axis. *)
let effective_scale t ~nprocs =
  match ppg_at t ~nprocs with
  | Some ppg ->
      let e = Ppg.effective_nprocs ppg in
      if Float.is_finite e && e > 0.0 then e else float_of_int nprocs
  | None -> float_of_int nprocs

(* Per-rank times of [vertex] at every scale. *)
let series t ~vertex =
  List.map (fun (n, ppg) -> (n, Ppg.times_across_ranks ppg ~vertex)) t.runs

(* Vertices observed in any run. *)
let touched_vertices t =
  let seen = Hashtbl.create 128 in
  List.iter
    (fun (_, ppg) ->
      List.iter
        (fun vid -> Hashtbl.replace seen vid ())
        (Ppg.touched_vertices ppg))
    t.runs;
  Hashtbl.fold (fun vid () acc -> vid :: acc) seen [] |> List.sort compare
