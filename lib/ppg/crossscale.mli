(** Cross-scale container: PPGs of the same program at several job
    scales, the input of non-scalable vertex detection (the PSG is
    scale-invariant, so vertices align across runs). *)

open Scalana_profile

type t = {
  psg : Scalana_psg.Psg.t;
  runs : (int * Ppg.t) list;  (** sorted by nprocs ascending *)
}

(** Build PPGs from raw profiles and sort by scale.  With [pool], the
    per-scale builds run in parallel (one independent PPG per scale);
    the result is identical to the sequential build. *)
val create :
  ?pool:Scalana_pool.Pool.t ->
  psg:Scalana_psg.Psg.t ->
  (int * Profdata.t) list ->
  t

val of_ppgs : psg:Scalana_psg.Psg.t -> (int * Ppg.t) list -> t
val scales : t -> int list
val largest : t -> int * Ppg.t
val ppg_at : t -> nprocs:int -> Ppg.t option

(** The effective process count behind the run at nominal scale
    [nprocs]: an elastic session's time-weighted mean membership, the
    nominal value itself otherwise.  Log-log fits use this axis. *)
val effective_scale : t -> nprocs:int -> float

(** Per-rank times of [vertex] at every scale. *)
val series : t -> vertex:int -> (int * float array) list

(** Vertices observed in any run, sorted. *)
val touched_vertices : t -> int list
