(* Program Performance Graph (Section III-C).

   The per-process PSG is duplicated logically (every rank shares the
   contracted PSG structure, since SPMD processes share the code); the
   PPG adds per-(rank, vertex) performance vectors and the inter-process
   communication-dependence edges recorded at runtime.  Backtracking
   (Scalana_detect.Backtrack) walks this structure. *)

open Scalana_psg
open Scalana_profile

type comm_edge = {
  send_rank : int;
  send_vertex : int;
  has_wait : bool;
  max_wait : float;
  hits : int;
}

type t = {
  psg : Psg.t;  (* contracted PSG, shared by all ranks *)
  nprocs : int;
  data : Profdata.t;
  (* incoming communication dependence per (recv rank, recv vertex) *)
  incoming : (int * int, comm_edge list) Hashtbl.t;
  (* collective vertex -> dominant last-arrival rank *)
  coll_late : (int, int) Hashtbl.t;
  (* per-vertex across-rank arrays, precomputed at build time: the
     detectors query them in tight loops, and once frozen here they can
     be read from several domains without synchronization *)
  times_cache : (int, float array) Hashtbl.t;
  waits_cache : (int, float array) Hashtbl.t;
}

let perf t ~rank ~vertex = Profdata.vector_opt t.data ~rank ~vertex

let time_of t ~rank ~vertex =
  match perf t ~rank ~vertex with Some v -> v.Perfvec.time | None -> 0.0

let wait_of t ~rank ~vertex =
  match perf t ~rank ~vertex with Some v -> v.Perfvec.wait | None -> 0.0

let build ~(psg : Psg.t) (data : Profdata.t) =
  Scalana_obs.Obs.with_span
    ~args:[ ("nprocs", string_of_int data.Profdata.nprocs) ]
    "ppg.build"
  @@ fun () ->
  let p2p = Commrec.p2p_edges data.Profdata.comm in
  let incoming = Hashtbl.create (max 16 (List.length p2p)) in
  List.iter
    (fun (e : Commrec.p2p_edge) ->
      let k = (e.key.recv_rank, e.key.recv_vertex) in
      let edge =
        {
          send_rank = e.key.send_rank;
          send_vertex = e.key.send_vertex;
          has_wait = e.has_wait;
          max_wait = e.max_wait;
          hits = e.hits;
        }
      in
      let existing =
        match Hashtbl.find_opt incoming k with Some l -> l | None -> []
      in
      Hashtbl.replace incoming k (edge :: existing))
    p2p;
  let coll_late = Hashtbl.create 32 in
  List.iter
    (fun (r : Commrec.coll_rec) ->
      let late = Commrec.dominant_late_rank r in
      if late >= 0 then Hashtbl.replace coll_late r.coll_vertex late)
    (Commrec.coll_records data.Profdata.comm);
  let touched = Profdata.touched_vertices data in
  let nprocs = data.Profdata.nprocs in
  let times_cache = Hashtbl.create (max 16 (List.length touched)) in
  let waits_cache = Hashtbl.create (max 16 (List.length touched)) in
  let t = { psg; nprocs; data; incoming; coll_late; times_cache; waits_cache } in
  List.iter
    (fun vertex ->
      Hashtbl.replace times_cache vertex
        (Array.init nprocs (fun rank -> time_of t ~rank ~vertex));
      Hashtbl.replace waits_cache vertex
        (Array.init nprocs (fun rank -> wait_of t ~rank ~vertex)))
    touched;
  Scalana_obs.Obs.Metrics.incr "ppg.builds";
  Scalana_obs.Obs.Metrics.incr ~by:(List.length touched) "ppg.vertices";
  Scalana_obs.Obs.Metrics.incr ~by:(Hashtbl.length incoming) "ppg.comm_edges";
  t

let incoming_edges t ~rank ~vertex =
  match Hashtbl.find_opt t.incoming (rank, vertex) with
  | Some l -> l
  | None -> []

(* Edges that carried an actual wait — the ones backtracking keeps after
   pruning (Section IV-B). *)
let waiting_edges t ~rank ~vertex =
  List.filter (fun e -> e.has_wait) (incoming_edges t ~rank ~vertex)

(* The most critical incoming edge: largest observed wait. *)
let critical_edge t ~rank ~vertex =
  match waiting_edges t ~rank ~vertex with
  | [] -> None
  | l ->
      Some
        (List.fold_left
           (fun best e -> if e.max_wait > best.max_wait then e else best)
           (List.hd l) l)

let coll_late_rank t ~vertex = Hashtbl.find_opt t.coll_late vertex

(* Per-rank values of one vertex (0 when the rank never touched it).
   Touched vertices hit the build-time cache; the returned array is
   shared, so callers must not mutate it (the aggregators all copy
   before sorting). *)
let times_across_ranks t ~vertex =
  match Hashtbl.find_opt t.times_cache vertex with
  | Some a -> a
  | None -> Array.init t.nprocs (fun rank -> time_of t ~rank ~vertex)

let waits_across_ranks t ~vertex =
  match Hashtbl.find_opt t.waits_cache vertex with
  | Some a -> a
  | None -> Array.init t.nprocs (fun rank -> wait_of t ~rank ~vertex)

let total_wait t ~vertex =
  Array.fold_left ( +. ) 0.0 (waits_across_ranks t ~vertex)

(* Fraction of ranks reporting at [vertex] (degraded-mode coverage). *)
let coverage t ~vertex = Profdata.coverage t.data ~vertex

let total_time t =
  Array.init t.nprocs (fun rank ->
      Hashtbl.fold
        (fun _ (v : Perfvec.t) acc ->
          (* poisoned (NaN/negative) values are quarantined, not summed *)
          if Float.is_nan v.time || v.time < 0.0 then acc else acc +. v.time)
        t.data.Profdata.vectors.(rank) 0.0)
  |> Array.fold_left ( +. ) 0.0

let n_comm_edges t = Hashtbl.length t.incoming
