(* Program Performance Graph (Section III-C).

   The per-process PSG is duplicated logically (every rank shares the
   contracted PSG structure, since SPMD processes share the code); the
   PPG adds per-(rank, vertex) performance vectors and the inter-process
   communication-dependence edges recorded at runtime.  Backtracking
   (Scalana_detect.Backtrack) walks this structure.

   The store is columnar: every perf-vector component lives in a flat
   row-major column indexed by (row, rank) where a row is one touched
   vertex, so a vertex's across-rank values are one contiguous slice and
   the whole-graph scans the detectors run (aggregation, deviation
   thresholds, log-log fit batches) touch dense float arrays instead of
   chasing per-rank hash tables.  [build] fills the columns in a single
   pass over the profile and drops every reference to the boxed
   [Profdata] vectors afterwards; the accessor API reads the columns, so
   callers see exactly the values the boxed store served.  Cells no rank
   reported stay 0.0 (the historical absent-cell value) and poisoned
   cells keep their NaN/negative payloads bit-for-bit; [present] tells
   the two apart where it matters (coverage, [perf]). *)

open Scalana_psg
open Scalana_profile

type comm_edge = {
  send_rank : int;
  send_vertex : int;
  has_wait : bool;
  max_wait : float;
  hits : int;
}

type t = {
  psg : Psg.t;  (* contracted PSG, shared by all ranks *)
  nprocs : int;
  effective_nprocs : float;  (* copied from the profile at build time *)
  (* columnar store: rows are touched vertices in ascending id order,
     cell (row, rank) lives at [row * nprocs + rank] in every column *)
  vids : int array;  (* row -> vertex id, sorted *)
  rows : (int, int) Hashtbl.t;  (* vertex id -> row *)
  times : float array;
  waits : float array;
  samples : int array;
  calls : int array;
  (* PMU components, one column per counter *)
  tot_ins : float array;
  tot_lst_ins : float array;
  tot_cyc : float array;
  cache_miss : float array;
  fp_ins : float array;
  present : Bytes.t;  (* 1 where the rank reported a vector *)
  row_present : int array;  (* row -> number of reporting ranks *)
  total_time : float;  (* precomputed quarantine-aware whole-run total *)
  (* incoming communication dependence per (recv rank, recv vertex) *)
  incoming : (int * int, comm_edge list) Hashtbl.t;
  (* collective vertex -> dominant last-arrival rank *)
  coll_late : (int, int) Hashtbl.t;
}

let row t ~vertex = Hashtbl.find_opt t.rows vertex

(* Element offset of [vertex]'s row in every column ([nprocs] wide). *)
let row_offset t ~vertex =
  match row t ~vertex with Some r -> Some (r * t.nprocs) | None -> None

let times_col t = t.times
let waits_col t = t.waits

let time_of t ~rank ~vertex =
  match row t ~vertex with
  | Some r when rank >= 0 && rank < t.nprocs -> t.times.((r * t.nprocs) + rank)
  | _ -> 0.0

let wait_of t ~rank ~vertex =
  match row t ~vertex with
  | Some r when rank >= 0 && rank < t.nprocs -> t.waits.((r * t.nprocs) + rank)
  | _ -> 0.0

(* Reconstructed boxed vector for one present cell — a convenience view
   for callers outside the scan paths; the columns stay authoritative. *)
let perf t ~rank ~vertex =
  match row t ~vertex with
  | Some r when rank >= 0 && rank < t.nprocs ->
      let i = (r * t.nprocs) + rank in
      if Bytes.get t.present i = '\000' then None
      else
        Some
          {
            Perfvec.time = t.times.(i);
            samples = t.samples.(i);
            pmu =
              {
                Scalana_runtime.Pmu.tot_ins = t.tot_ins.(i);
                tot_lst_ins = t.tot_lst_ins.(i);
                tot_cyc = t.tot_cyc.(i);
                cache_miss = t.cache_miss.(i);
                fp_ins = t.fp_ins.(i);
              };
            wait = t.waits.(i);
            calls = t.calls.(i);
          }
  | _ -> None

let build ~(psg : Psg.t) (data : Profdata.t) =
  Scalana_obs.Obs.with_span
    ~args:[ ("nprocs", string_of_int data.Profdata.nprocs) ]
    "ppg.build"
  @@ fun () ->
  let p2p = Commrec.p2p_edges data.Profdata.comm in
  let incoming = Hashtbl.create (max 16 (List.length p2p)) in
  List.iter
    (fun (e : Commrec.p2p_edge) ->
      let k = (e.key.recv_rank, e.key.recv_vertex) in
      let edge =
        {
          send_rank = e.key.send_rank;
          send_vertex = e.key.send_vertex;
          has_wait = e.has_wait;
          max_wait = e.max_wait;
          hits = e.hits;
        }
      in
      let existing =
        match Hashtbl.find_opt incoming k with Some l -> l | None -> []
      in
      Hashtbl.replace incoming k (edge :: existing))
    p2p;
  let coll_late = Hashtbl.create 32 in
  List.iter
    (fun (r : Commrec.coll_rec) ->
      let late = Commrec.dominant_late_rank r in
      if late >= 0 then Hashtbl.replace coll_late r.coll_vertex late)
    (Commrec.coll_records data.Profdata.comm);
  let touched = Profdata.touched_vertices data in
  let nprocs = data.Profdata.nprocs in
  let vids = Array.of_list touched in
  let nrows = Array.length vids in
  let rows = Hashtbl.create (max 16 nrows) in
  Array.iteri (fun r vid -> Hashtbl.replace rows vid r) vids;
  let cells = nrows * nprocs in
  let times = Array.make cells 0.0 in
  let waits = Array.make cells 0.0 in
  let samples = Array.make cells 0 in
  let calls = Array.make cells 0 in
  let tot_ins = Array.make cells 0.0 in
  let tot_lst_ins = Array.make cells 0.0 in
  let tot_cyc = Array.make cells 0.0 in
  let cache_miss = Array.make cells 0.0 in
  let fp_ins = Array.make cells 0.0 in
  let present = Bytes.make cells '\000' in
  let row_present = Array.make nrows 0 in
  (* the single ingest pass: every (rank, vertex) vector lands in its
     cell once, so table iteration order cannot matter *)
  Profdata.iter_cells data (fun ~rank ~vertex (v : Perfvec.t) ->
      match Hashtbl.find_opt rows vertex with
      | None -> ()
      | Some r ->
          let i = (r * nprocs) + rank in
          times.(i) <- v.Perfvec.time;
          waits.(i) <- v.Perfvec.wait;
          samples.(i) <- v.Perfvec.samples;
          calls.(i) <- v.Perfvec.calls;
          let p = v.Perfvec.pmu in
          tot_ins.(i) <- p.Scalana_runtime.Pmu.tot_ins;
          tot_lst_ins.(i) <- p.Scalana_runtime.Pmu.tot_lst_ins;
          tot_cyc.(i) <- p.Scalana_runtime.Pmu.tot_cyc;
          cache_miss.(i) <- p.Scalana_runtime.Pmu.cache_miss;
          fp_ins.(i) <- p.Scalana_runtime.Pmu.fp_ins;
          Bytes.set present i '\001';
          row_present.(r) <- row_present.(r) + 1);
  (* the whole-run total keeps the boxed store's exact summation order
     (per-rank table fold, then across ranks), so reports that print it
     stay byte-identical *)
  let total_time =
    Array.init nprocs (fun rank ->
        Hashtbl.fold
          (fun _ (v : Perfvec.t) acc ->
            (* poisoned (NaN/negative) values are quarantined, not summed *)
            if Float.is_nan v.time || v.time < 0.0 then acc else acc +. v.time)
          data.Profdata.vectors.(rank) 0.0)
    |> Array.fold_left ( +. ) 0.0
  in
  let t =
    {
      psg;
      nprocs;
      effective_nprocs = data.Profdata.effective_nprocs;
      vids;
      rows;
      times;
      waits;
      samples;
      calls;
      tot_ins;
      tot_lst_ins;
      tot_cyc;
      cache_miss;
      fp_ins;
      present;
      row_present;
      total_time;
      incoming;
      coll_late;
    }
  in
  Scalana_obs.Obs.Metrics.incr "ppg.builds";
  Scalana_obs.Obs.Metrics.incr ~by:nrows "ppg.vertices";
  Scalana_obs.Obs.Metrics.incr ~by:(Hashtbl.length incoming) "ppg.comm_edges";
  t

let incoming_edges t ~rank ~vertex =
  match Hashtbl.find_opt t.incoming (rank, vertex) with
  | Some l -> l
  | None -> []

(* Edges that carried an actual wait — the ones backtracking keeps after
   pruning (Section IV-B). *)
let waiting_edges t ~rank ~vertex =
  List.filter (fun e -> e.has_wait) (incoming_edges t ~rank ~vertex)

(* The most critical incoming edge: largest observed wait. *)
let critical_edge t ~rank ~vertex =
  match waiting_edges t ~rank ~vertex with
  | [] -> None
  | l ->
      Some
        (List.fold_left
           (fun best e -> if e.max_wait > best.max_wait then e else best)
           (List.hd l) l)

let coll_late_rank t ~vertex = Hashtbl.find_opt t.coll_late vertex

(* Per-rank values of one vertex (0 where untouched): a fresh copy of
   the row slice, so callers may sort or scale it freely. *)
let times_across_ranks t ~vertex =
  match row t ~vertex with
  | Some r ->
      let off = r * t.nprocs in
      Array.sub t.times off t.nprocs
  | None -> Array.make t.nprocs 0.0

let waits_across_ranks t ~vertex =
  match row t ~vertex with
  | Some r ->
      let off = r * t.nprocs in
      Array.sub t.waits off t.nprocs
  | None -> Array.make t.nprocs 0.0

let total_wait t ~vertex =
  match row t ~vertex with
  | Some r ->
      let off = r * t.nprocs in
      let acc = ref 0.0 in
      for rank = 0 to t.nprocs - 1 do
        acc := !acc +. t.waits.(off + rank)
      done;
      !acc
  | None -> 0.0

(* Fraction of ranks reporting at [vertex] (degraded-mode coverage).
   Always finite: an all-killed vertex degrades to 0.0, never NaN. *)
let coverage t ~vertex =
  if t.nprocs = 0 then 0.0
  else
    match row t ~vertex with
    | Some r -> float_of_int t.row_present.(r) /. float_of_int t.nprocs
    | None -> 0.0

(* Total sampled time across all ranks and vertices, quarantine-aware;
   precomputed during the ingest pass. *)
let total_time t = t.total_time

let n_comm_edges t = Hashtbl.length t.incoming

(* Bytes retained by the store itself, beyond the profile it was built
   from: the columns plus the dependence tables.  Exact for the columns;
   the memory bench cross-checks the total against a GC live-words
   delta. *)
let storage_bytes t =
  let cells = Array.length t.times in
  let float_cols = 7 and int_cols = 2 in
  (cells * 8 * (float_cols + int_cols))
  + Bytes.length t.present
  + (8 * Array.length t.row_present)
  + (8 * Array.length t.vids)
  + Hashtbl.fold (fun _ l acc -> acc + (56 * List.length l)) t.incoming 0
  + (24 * Hashtbl.length t.coll_late)

(* Vertices any rank reported on, sorted — the detectors' iteration
   domain. *)
let touched_vertices t = Array.to_list t.vids

(* Time-weighted mean membership of the producing session (differs from
   [nprocs] only for elastic runs). *)
let effective_nprocs t = t.effective_nprocs
