(** Program Performance Graph (Section III-C): the contracted PSG shared
    by all ranks, per-(rank, vertex) performance vectors, and the
    inter-process communication-dependence edges recorded at runtime. *)

open Scalana_psg
open Scalana_profile

type comm_edge = {
  send_rank : int;
  send_vertex : int;
  has_wait : bool;
  max_wait : float;
  hits : int;
}

type t = {
  psg : Psg.t;
  nprocs : int;
  data : Profdata.t;
  incoming : (int * int, comm_edge list) Hashtbl.t;
  coll_late : (int, int) Hashtbl.t;
  times_cache : (int, float array) Hashtbl.t;
      (** per-vertex across-rank times, frozen at build time *)
  waits_cache : (int, float array) Hashtbl.t;
}

val build : psg:Psg.t -> Profdata.t -> t

(** Incoming communication dependence of (rank, vertex). *)
val incoming_edges : t -> rank:int -> vertex:int -> comm_edge list

(** Only edges that carried an actual wait (the pruned set). *)
val waiting_edges : t -> rank:int -> vertex:int -> comm_edge list

(** The waiting edge with the largest observed wait, if any. *)
val critical_edge : t -> rank:int -> vertex:int -> comm_edge option

(** Dominant last-arriving rank at a collective vertex. *)
val coll_late_rank : t -> vertex:int -> int option

val perf : t -> rank:int -> vertex:int -> Perfvec.t option
val time_of : t -> rank:int -> vertex:int -> float
val wait_of : t -> rank:int -> vertex:int -> float

(** Per-rank times of one vertex (0 where untouched).  Served from the
    build-time cache for touched vertices: the returned array is shared
    and must not be mutated. *)
val times_across_ranks : t -> vertex:int -> float array

val waits_across_ranks : t -> vertex:int -> float array

(** Sampled wait summed across ranks at [vertex] — the profiler-side
    number the timeline-replay wait-state attribution is checked
    against. *)
val total_wait : t -> vertex:int -> float

(** Fraction of ranks reporting at [vertex] (degraded-mode coverage). *)
val coverage : t -> vertex:int -> float

(** Total sampled time across all ranks and vertices; poisoned
    (NaN/negative) values are quarantined, not summed. *)
val total_time : t -> float

val n_comm_edges : t -> int
