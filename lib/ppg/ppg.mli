(** Program Performance Graph (Section III-C): the contracted PSG shared
    by all ranks, per-(rank, vertex) performance vectors, and the
    inter-process communication-dependence edges recorded at runtime.

    The store is columnar: each perf-vector component is a flat
    row-major column over (touched vertex, rank) cells, so across-rank
    reads are contiguous slices and detector batches scan dense float
    arrays.  Accessors serve exactly the values the pre-columnar boxed
    store served (the differential suite in [test/test_ppg.ml] pins
    this), including 0.0 for cells no rank reported and verbatim
    NaN/negative payloads for poisoned cells. *)

open Scalana_psg
open Scalana_profile

type comm_edge = {
  send_rank : int;
  send_vertex : int;
  has_wait : bool;
  max_wait : float;
  hits : int;
}

type t = {
  psg : Psg.t;
  nprocs : int;
  effective_nprocs : float;
  vids : int array;  (** row -> vertex id, ascending *)
  rows : (int, int) Hashtbl.t;  (** vertex id -> row *)
  times : float array;  (** cell (row, rank) at [row * nprocs + rank] *)
  waits : float array;
  samples : int array;
  calls : int array;
  tot_ins : float array;
  tot_lst_ins : float array;
  tot_cyc : float array;
  cache_miss : float array;
  fp_ins : float array;
  present : Bytes.t;  (** ['\001'] where the rank reported a vector *)
  row_present : int array;
  total_time : float;
  incoming : (int * int, comm_edge list) Hashtbl.t;
  coll_late : (int, int) Hashtbl.t;
}

val build : psg:Psg.t -> Profdata.t -> t

(** Incoming communication dependence of (rank, vertex). *)
val incoming_edges : t -> rank:int -> vertex:int -> comm_edge list

(** Only edges that carried an actual wait (the pruned set). *)
val waiting_edges : t -> rank:int -> vertex:int -> comm_edge list

(** The waiting edge with the largest observed wait, if any. *)
val critical_edge : t -> rank:int -> vertex:int -> comm_edge option

(** Dominant last-arriving rank at a collective vertex. *)
val coll_late_rank : t -> vertex:int -> int option

val perf : t -> rank:int -> vertex:int -> Perfvec.t option
val time_of : t -> rank:int -> vertex:int -> float
val wait_of : t -> rank:int -> vertex:int -> float

(** Element offset of [vertex]'s row in every column ([nprocs] cells
    wide), for allocation-free slice scans; [None] when no rank reported
    at [vertex]. *)
val row_offset : t -> vertex:int -> int option

(** The raw columns behind [row_offset] slices.  Read-only by
    convention: mutating them corrupts the store. *)
val times_col : t -> float array

val waits_col : t -> float array

(** Per-rank times of one vertex (0 where untouched) — a fresh copy of
    the row slice, free for the caller to reorder. *)
val times_across_ranks : t -> vertex:int -> float array

val waits_across_ranks : t -> vertex:int -> float array

(** Sampled wait summed across ranks at [vertex] — the profiler-side
    number the timeline-replay wait-state attribution is checked
    against. *)
val total_wait : t -> vertex:int -> float

(** Fraction of ranks reporting at [vertex] (degraded-mode coverage).
    Always finite: 0.0 when every rank was lost, never NaN. *)
val coverage : t -> vertex:int -> float

(** Total sampled time across all ranks and vertices; poisoned
    (NaN/negative) values are quarantined, not summed. *)
val total_time : t -> float

val n_comm_edges : t -> int

(** Bytes retained by the store itself (the columns plus dependence
    tables), beyond the profile it was built from. *)
val storage_bytes : t -> int

(** Vertices any rank reported on, sorted — the detectors' iteration
    domain. *)
val touched_vertices : t -> int list

(** Time-weighted mean membership of the producing session (differs
    from [nprocs] only for elastic runs). *)
val effective_nprocs : t -> float
