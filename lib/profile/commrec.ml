(* Communication-dependence records with graph-guided compression
   (Section III-B2).

   A point-to-point dependence is stored once per distinct
   (receiver rank/vertex, sender rank/vertex, tag, bytes) tuple; repeats
   only bump a hit counter.  Collective participation is folded per vertex
   with a histogram of which rank arrived last — the detector's
   backtracking uses the dominant late rank.  This is what keeps
   ScalAna's storage in the kilobyte range where tracing needs
   gigabytes. *)

type p2p_key = {
  recv_rank : int;
  recv_vertex : int;
  send_rank : int;
  send_vertex : int;
  tag : int;
  bytes : int;
}

type p2p_edge = {
  key : p2p_key;
  mutable has_wait : bool;  (* sticky: some instance waited *)
  mutable hits : int;
  mutable max_wait : float;
}

type coll_rec = {
  coll_vertex : int;
  mutable instances : int;
  last_arrivals : (int, int) Hashtbl.t;  (* rank -> #times it arrived last *)
}

type t = {
  p2p : (p2p_key, p2p_edge) Hashtbl.t;
  colls : (int, coll_rec) Hashtbl.t;
  mutable raw_records : int;  (* before compression, for the ablation *)
}

let create () =
  { p2p = Hashtbl.create 256; colls = Hashtbl.create 32; raw_records = 0 }

let record_p2p t ~key ~waited ~wait_seconds =
  t.raw_records <- t.raw_records + 1;
  match Hashtbl.find_opt t.p2p key with
  | Some e ->
      e.hits <- e.hits + 1;
      e.has_wait <- e.has_wait || waited;
      e.max_wait <- Float.max e.max_wait wait_seconds
  | None ->
      Hashtbl.add t.p2p key
        { key; has_wait = waited; hits = 1; max_wait = wait_seconds }

let record_coll t ~vertex ~last_arrival_rank =
  t.raw_records <- t.raw_records + 1;
  let r =
    match Hashtbl.find_opt t.colls vertex with
    | Some r -> r
    | None ->
        let r =
          { coll_vertex = vertex; instances = 0; last_arrivals = Hashtbl.create 8 }
        in
        Hashtbl.add t.colls vertex r;
        r
  in
  r.instances <- r.instances + 1;
  let n =
    try Hashtbl.find r.last_arrivals last_arrival_rank with Not_found -> 0
  in
  Hashtbl.replace r.last_arrivals last_arrival_rank (n + 1)

let p2p_edges t = Hashtbl.fold (fun _ e acc -> e :: acc) t.p2p []
let coll_records t = Hashtbl.fold (fun _ r acc -> r :: acc) t.colls []

(* The rank that most often arrived last at this collective vertex. *)
let dominant_late_rank (r : coll_rec) =
  Hashtbl.fold
    (fun rank n (best_rank, best_n) ->
      if n > best_n then (rank, n) else (best_rank, best_n))
    r.last_arrivals (-1, 0)
  |> fst

let n_p2p t = Hashtbl.length t.p2p
let n_coll t = Hashtbl.length t.colls

(* Merge [src] into [into] with ranks renumbered through [map] — an
   elastic epoch's records, local ranks mapped to global ids.  Sources
   are drained in sorted order so the destination's insertion order (and
   hence every later fold over it) is a function of content alone. *)
let merge_renumbered ~into ~map src =
  Hashtbl.fold (fun _ e acc -> e :: acc) src.p2p []
  |> List.sort (fun a b -> compare a.key b.key)
  |> List.iter (fun e ->
         let key =
           {
             e.key with
             recv_rank = map e.key.recv_rank;
             send_rank = map e.key.send_rank;
           }
         in
         match Hashtbl.find_opt into.p2p key with
         | Some d ->
             d.hits <- d.hits + e.hits;
             d.has_wait <- d.has_wait || e.has_wait;
             d.max_wait <- Float.max d.max_wait e.max_wait
         | None ->
             Hashtbl.add into.p2p key
               { key; has_wait = e.has_wait; hits = e.hits; max_wait = e.max_wait });
  Hashtbl.fold (fun _ r acc -> r :: acc) src.colls []
  |> List.sort (fun a b -> compare a.coll_vertex b.coll_vertex)
  |> List.iter (fun r ->
         let dst =
           match Hashtbl.find_opt into.colls r.coll_vertex with
           | Some d -> d
           | None ->
               let d =
                 {
                   coll_vertex = r.coll_vertex;
                   instances = 0;
                   last_arrivals = Hashtbl.create 8;
                 }
               in
               Hashtbl.add into.colls r.coll_vertex d;
               d
         in
         dst.instances <- dst.instances + r.instances;
         Hashtbl.fold (fun rank n acc -> (rank, n) :: acc) r.last_arrivals []
         |> List.sort compare
         |> List.iter (fun (rank, n) ->
                let g = map rank in
                let cur =
                  try Hashtbl.find dst.last_arrivals g with Not_found -> 0
                in
                Hashtbl.replace dst.last_arrivals g (cur + n)));
  into.raw_records <- into.raw_records + src.raw_records

(* Size model: a packed p2p record is 6 ints + flags = 28 B; a collective
   record is vertex + count + histogram entries of 8 B. *)
let storage_bytes t =
  (28 * n_p2p t)
  + Hashtbl.fold
      (fun _ r acc -> acc + 12 + (8 * Hashtbl.length r.last_arrivals))
      t.colls 0

let uncompressed_bytes t = 28 * t.raw_records
