(** Communication-dependence records with graph-guided compression
    (Section III-B2): one entry per distinct (receiver, sender, tag,
    size) tuple; collective participation folds into a per-vertex
    histogram of the last-arriving rank. *)

type p2p_key = {
  recv_rank : int;
  recv_vertex : int;
  send_rank : int;
  send_vertex : int;
  tag : int;
  bytes : int;
}

type p2p_edge = {
  key : p2p_key;
  mutable has_wait : bool;  (** sticky: some instance waited *)
  mutable hits : int;
  mutable max_wait : float;
}

type coll_rec = {
  coll_vertex : int;
  mutable instances : int;
  last_arrivals : (int, int) Hashtbl.t;  (** rank -> #times last *)
}

type t = {
  p2p : (p2p_key, p2p_edge) Hashtbl.t;
  colls : (int, coll_rec) Hashtbl.t;
  mutable raw_records : int;  (** before compression (ablation) *)
}

val create : unit -> t
val record_p2p : t -> key:p2p_key -> waited:bool -> wait_seconds:float -> unit
val record_coll : t -> vertex:int -> last_arrival_rank:int -> unit
val p2p_edges : t -> p2p_edge list
val coll_records : t -> coll_rec list

(** The rank that most often arrived last (-1 if none recorded). *)
val dominant_late_rank : coll_rec -> int

val n_p2p : t -> int
val n_coll : t -> int

(** Merge [src] into [into] with every rank renumbered through [map] —
    used to fold an elastic epoch's records (local ranks) into the
    session-wide table (global rank ids).  Sources are drained in sorted
    order, so the destination's layout depends on content alone. *)
val merge_renumbered : into:t -> map:(int -> int) -> t -> unit
val storage_bytes : t -> int
val uncompressed_bytes : t -> int
