(* The artifact of one profiled run: per-rank per-vertex performance
   vectors, compressed communication-dependence records, indirect-call
   resolutions, and byte/overhead accounting. *)

type icall_resolution = { callsite_vertex : int; target : string }

type t = {
  nprocs : int;
  vectors : Perfvec.per_rank array;  (* indexed by rank *)
  comm : Commrec.t;
  icalls : (icall_resolution, unit) Hashtbl.t;
  mutable total_samples : int;
  mutable unattributed_samples : int;
  mutable elapsed : float;
  mutable mpi_calls_seen : int;
  mutable records_taken : int;
  mutable effective_nprocs : float;
      (* time-weighted mean membership; = float nprocs unless elastic *)
}

let create ~nprocs =
  {
    nprocs;
    vectors = Array.init nprocs (fun _ -> Perfvec.rank_table ());
    comm = Commrec.create ();
    icalls = Hashtbl.create 8;
    total_samples = 0;
    unattributed_samples = 0;
    elapsed = 0.0;
    mpi_calls_seen = 0;
    records_taken = 0;
    effective_nprocs = float_of_int nprocs;
  }

let vector t ~rank ~vertex = Perfvec.find_or_add t.vectors.(rank) vertex
let vector_opt t ~rank ~vertex = Hashtbl.find_opt t.vectors.(rank) vertex

let record_icall t ~callsite_vertex ~target =
  Hashtbl.replace t.icalls { callsite_vertex; target } ()

let icall_resolutions t =
  Hashtbl.fold (fun r () acc -> r :: acc) t.icalls []

(* All vertices that received any data on any rank. *)
let touched_vertices t =
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun tbl -> Hashtbl.iter (fun vid _ -> Hashtbl.replace seen vid ()) tbl)
    t.vectors;
  Hashtbl.fold (fun vid () acc -> vid :: acc) seen [] |> List.sort compare

(* Visit every recorded (rank, vertex, vector) cell.  Ranks ascend;
   within a rank the table's iteration order is unspecified, so callers
   must not depend on vertex order (the columnar PPG ingest writes each
   cell exactly once, which is order-insensitive). *)
let iter_cells t f =
  Array.iteri
    (fun rank tbl -> Hashtbl.iter (fun vid v -> f ~rank ~vertex:vid v) tbl)
    t.vectors

(* Values of one vertex across ranks (missing ranks yield None). *)
let across_ranks t ~vertex =
  Array.map (fun tbl -> Hashtbl.find_opt tbl vertex) t.vectors

(* Fraction of ranks that reported a vector at [vertex] — the per-vertex
   coverage used by degraded-mode detection (1.0 = every rank reported). *)
let coverage t ~vertex =
  let n =
    Array.fold_left
      (fun acc tbl -> if Hashtbl.mem tbl vertex then acc + 1 else acc)
      0 t.vectors
  in
  if t.nprocs = 0 then 0.0 else float_of_int n /. float_of_int t.nprocs

(* Fold one elastic epoch's profile (local ranks [0, src.nprocs)) into
   the session-wide artifact, renumbering ranks through [map] — local
   rank [l] of the epoch is global rank [map l].  Per-rank tables and
   icalls are drained in sorted order so the destination layout depends
   on content alone. *)
let merge_renumbered ~into ~map (src : t) =
  Array.iteri
    (fun lrank tbl ->
      let dst_tbl = into.vectors.(map lrank) in
      Hashtbl.fold (fun vid v acc -> (vid, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.iter (fun (vid, v) ->
             Perfvec.merge_into ~dst:(Perfvec.find_or_add dst_tbl vid) v))
    src.vectors;
  Commrec.merge_renumbered ~into:into.comm ~map src.comm;
  Hashtbl.fold (fun r () acc -> r :: acc) src.icalls []
  |> List.sort compare
  |> List.iter (fun r -> Hashtbl.replace into.icalls r ());
  into.total_samples <- into.total_samples + src.total_samples;
  into.unattributed_samples <- into.unattributed_samples + src.unattributed_samples;
  into.elapsed <- Float.max into.elapsed src.elapsed;
  into.mpi_calls_seen <- into.mpi_calls_seen + src.mpi_calls_seen;
  into.records_taken <- into.records_taken + src.records_taken

let storage_bytes t =
  let vec_bytes =
    Array.fold_left
      (fun acc tbl -> acc + (Perfvec.bytes_per_vector * Hashtbl.length tbl))
      0 t.vectors
  in
  vec_bytes + Commrec.storage_bytes t.comm + (8 * Hashtbl.length t.icalls)
