(* The artifact of one profiled run: per-rank per-vertex performance
   vectors, compressed communication-dependence records, indirect-call
   resolutions, and byte/overhead accounting. *)

type icall_resolution = { callsite_vertex : int; target : string }

type t = {
  nprocs : int;
  vectors : Perfvec.per_rank array;  (* indexed by rank *)
  comm : Commrec.t;
  icalls : (icall_resolution, unit) Hashtbl.t;
  mutable total_samples : int;
  mutable unattributed_samples : int;
  mutable elapsed : float;
  mutable mpi_calls_seen : int;
  mutable records_taken : int;
}

let create ~nprocs =
  {
    nprocs;
    vectors = Array.init nprocs (fun _ -> Perfvec.rank_table ());
    comm = Commrec.create ();
    icalls = Hashtbl.create 8;
    total_samples = 0;
    unattributed_samples = 0;
    elapsed = 0.0;
    mpi_calls_seen = 0;
    records_taken = 0;
  }

let vector t ~rank ~vertex = Perfvec.find_or_add t.vectors.(rank) vertex
let vector_opt t ~rank ~vertex = Hashtbl.find_opt t.vectors.(rank) vertex

let record_icall t ~callsite_vertex ~target =
  Hashtbl.replace t.icalls { callsite_vertex; target } ()

let icall_resolutions t =
  Hashtbl.fold (fun r () acc -> r :: acc) t.icalls []

(* All vertices that received any data on any rank. *)
let touched_vertices t =
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun tbl -> Hashtbl.iter (fun vid _ -> Hashtbl.replace seen vid ()) tbl)
    t.vectors;
  Hashtbl.fold (fun vid () acc -> vid :: acc) seen [] |> List.sort compare

(* Values of one vertex across ranks (missing ranks yield None). *)
let across_ranks t ~vertex =
  Array.map (fun tbl -> Hashtbl.find_opt tbl vertex) t.vectors

(* Fraction of ranks that reported a vector at [vertex] — the per-vertex
   coverage used by degraded-mode detection (1.0 = every rank reported). *)
let coverage t ~vertex =
  let n =
    Array.fold_left
      (fun acc tbl -> if Hashtbl.mem tbl vertex then acc + 1 else acc)
      0 t.vectors
  in
  if t.nprocs = 0 then 0.0 else float_of_int n /. float_of_int t.nprocs

let storage_bytes t =
  let vec_bytes =
    Array.fold_left
      (fun acc tbl -> acc + (Perfvec.bytes_per_vector * Hashtbl.length tbl))
      0 t.vectors
  in
  vec_bytes + Commrec.storage_bytes t.comm + (8 * Hashtbl.length t.icalls)
