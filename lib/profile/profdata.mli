(** The artifact of one profiled run: per-rank per-vertex performance
    vectors, compressed communication records, indirect-call resolutions
    and accounting. *)

type icall_resolution = { callsite_vertex : int; target : string }

type t = {
  nprocs : int;
  vectors : Perfvec.per_rank array;  (** indexed by rank *)
  comm : Commrec.t;
  icalls : (icall_resolution, unit) Hashtbl.t;
  mutable total_samples : int;
  mutable unattributed_samples : int;
  mutable elapsed : float;
  mutable mpi_calls_seen : int;
  mutable records_taken : int;
  mutable effective_nprocs : float;
      (** time-weighted mean membership of an elastic session; equals
          [float_of_int nprocs] for a fixed-membership run, so fitting
          against it is always sound *)
}

val create : nprocs:int -> t
val vector : t -> rank:int -> vertex:int -> Perfvec.t
val vector_opt : t -> rank:int -> vertex:int -> Perfvec.t option
val record_icall : t -> callsite_vertex:int -> target:string -> unit
val icall_resolutions : t -> icall_resolution list

(** Vertices with data on any rank, sorted. *)
val touched_vertices : t -> int list

(** Visit every recorded (rank, vertex, vector) cell.  Ranks ascend;
    within a rank the vertex order is unspecified, so per-cell work must
    be order-insensitive. *)
val iter_cells : t -> (rank:int -> vertex:int -> Perfvec.t -> unit) -> unit

(** One vertex's vectors across ranks ([None] where untouched). *)
val across_ranks : t -> vertex:int -> Perfvec.t option array

(** Fraction of ranks reporting a vector at [vertex] (1.0 = all). *)
val coverage : t -> vertex:int -> float

(** Fold one elastic epoch's profile into the session-wide artifact:
    epoch-local rank [l] lands on global rank [map l].  Counters add,
    [elapsed] takes the max (epoch clocks are absolute). *)
val merge_renumbered : into:t -> map:(int -> int) -> t -> unit

val storage_bytes : t -> int
