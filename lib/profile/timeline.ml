(* Application-level rank timeline: per-rank compute intervals, MPI
   enter/exit events and matched messages, recorded by an Instrument
   tool during a simulated run.

   Two design rules keep it honest and bounded:

   - zero recorded overhead: every hook returns 0.0, so attaching the
     recorder (next to the regular profiler) reproduces the exact
     clocks of the stored profiled run — the timeline is evidence about
     the session, not about a perturbed re-run;

   - graph-guided compression + a hard cap: consecutive compute
     intervals resolving to the same contracted-PSG vertex are merged
     (loop iterations collapse into one slice per streak), and once
     [max_events] intervals+messages are recorded, further events are
     dropped and counted per rank.  Blocked-time totals keep
     accumulating past the cap, so wait-state attribution can always be
     stated as a fraction of the true blocked time. *)

open Scalana_psg
open Scalana_runtime
module Obs = Scalana_obs.Obs

type config = { max_events : int }

let default_config = { max_events = 200_000 }

type mpi_info = {
  op : string;
  wait : float;
  deps : (int * float * float) list;
  send_dests : int list;
  coll : coll_info option;
}

and coll_info = {
  coll_arrive : float;
  coll_start : float;
  coll_last_rank : int;
}

type kind = Compute of { label : string option } | Mpi of mpi_info

type interval = {
  iv_rank : int;
  iv_vertex : int option;
  mutable iv_start : float;
  mutable iv_stop : float;
  iv_kind : kind;
  mutable iv_merged : int;
}

type message = {
  msg_src : int;
  msg_dst : int;
  msg_send_time : float;
  msg_recv_enter : float;
  msg_arrival : float;
  msg_tag : int;
  msg_bytes : int;
  msg_vertex : int option;
}

type t = {
  nprocs : int;
  elapsed : float;
  intervals : interval array;
  messages : message array;
  blocked : float array;
  dropped : int array;
  merged : int;
}

type recorder = {
  r_cfg : config;
  r_index : Index.t;
  r_nprocs : int;
  mutable r_count : int;  (* recorded intervals + messages *)
  r_last : interval option array;  (* per-rank tail, the merge target *)
  mutable r_intervals : interval list;  (* newest first *)
  mutable r_messages : message list;
  r_blocked : float array;
  r_dropped : int array;
  mutable r_merged : int;
  mutable r_elapsed : float;
}

let create ?(config = default_config) ~index ~nprocs () =
  {
    r_cfg = config;
    r_index = index;
    r_nprocs = nprocs;
    r_count = 0;
    r_last = Array.make nprocs None;
    r_intervals = [];
    r_messages = [];
    r_blocked = Array.make nprocs 0.0;
    r_dropped = Array.make nprocs 0;
    r_merged = 0;
    r_elapsed = 0.0;
  }

let resolve r (ctx : Instrument.ctx) =
  Index.find r.r_index ~callpath:ctx.callpath ~loc:ctx.loc

let has_budget r = r.r_count < r.r_cfg.max_events

let drop r ~rank = r.r_dropped.(rank) <- r.r_dropped.(rank) + 1

let push_interval r iv =
  r.r_count <- r.r_count + 1;
  r.r_intervals <- iv :: r.r_intervals;
  r.r_last.(iv.iv_rank) <- Some iv

(* Graph-guided compression: a compute interval that resolves to the
   vertex of the rank's previous (compute) interval extends it instead
   of recording a new one — the streak of a contracted loop's
   iterations becomes one slice.  Merging costs no budget. *)
let record_compute r ~rank ~vertex ~start ~stop ~label =
  match (r.r_last.(rank), vertex) with
  | Some ({ iv_kind = Compute _; iv_vertex = Some prev; _ } as last), Some v
    when prev = v ->
      last.iv_stop <- stop;
      last.iv_merged <- last.iv_merged + 1;
      r.r_merged <- r.r_merged + 1
  | _ ->
      if has_budget r then
        push_interval r
          {
            iv_rank = rank;
            iv_vertex = vertex;
            iv_start = start;
            iv_stop = stop;
            iv_kind = Compute { label };
            iv_merged = 1;
          }
      else drop r ~rank

let on_interval r (ctx : Instrument.ctx) ~stop activity =
  (match activity with
  | Instrument.Compute { label; _ } ->
      record_compute r ~rank:ctx.rank ~vertex:(resolve r ctx) ~start:ctx.time
        ~stop ~label
  | Instrument.Mpi_span _ -> ()  (* MPI intervals come from on_mpi_exit *));
  0.0

let on_mpi_exit r (ctx : Instrument.ctx) (info : Instrument.mpi_exit) =
  let rank = ctx.rank in
  r.r_blocked.(rank) <- r.r_blocked.(rank) +. info.wait_seconds;
  if r.r_elapsed < info.exit_time then r.r_elapsed <- info.exit_time;
  let vertex = resolve r ctx in
  if has_budget r then
    push_interval r
      {
        iv_rank = rank;
        iv_vertex = vertex;
        iv_start = info.enter_time;
        iv_stop = info.exit_time;
        iv_kind =
          Mpi
            {
              op = Scalana_mlang.Ast.mpi_name info.call;
              wait = info.wait_seconds;
              deps =
                List.map
                  (fun (d : Instrument.peer_dep) ->
                    (d.peer_rank, d.send_time, d.arrival_time))
                  info.deps;
              send_dests = List.map (fun (dst, _, _) -> dst) info.sends;
              coll =
                Option.map
                  (fun (c : Instrument.collective_info) ->
                    {
                      coll_arrive = c.arrive_time;
                      coll_start = c.start_time;
                      coll_last_rank = c.last_arrival_rank;
                    })
                  info.collective;
            };
        iv_merged = 1;
      }
  else drop r ~rank;
  List.iter
    (fun (d : Instrument.peer_dep) ->
      if has_budget r then begin
        r.r_count <- r.r_count + 1;
        r.r_messages <-
          {
            msg_src = d.peer_rank;
            msg_dst = rank;
            msg_send_time = d.send_time;
            msg_recv_enter = info.enter_time;
            msg_arrival = d.arrival_time;
            msg_tag = d.dep_tag;
            msg_bytes = d.dep_bytes;
            msg_vertex = vertex;
          }
          :: r.r_messages
      end
      else drop r ~rank)
    info.deps;
  0.0

let tool r =
  {
    (Instrument.nil "timeline") with
    Instrument.on_interval = (fun ctx ~stop a -> on_interval r ctx ~stop a);
    on_mpi_exit = (fun ctx info -> on_mpi_exit r ctx info);
    on_run_end =
      (fun ~nprocs:_ ~elapsed ->
        if r.r_elapsed < elapsed then r.r_elapsed <- elapsed);
  }

let capture r =
  let intervals = Array.of_list r.r_intervals in
  Array.sort
    (fun a b ->
      compare (a.iv_rank, a.iv_start, a.iv_stop) (b.iv_rank, b.iv_start, b.iv_stop))
    intervals;
  let messages = Array.of_list r.r_messages in
  Array.sort
    (fun a b ->
      compare
        (a.msg_send_time, a.msg_src, a.msg_dst, a.msg_tag)
        (b.msg_send_time, b.msg_src, b.msg_dst, b.msg_tag))
    messages;
  {
    nprocs = r.r_nprocs;
    elapsed = r.r_elapsed;
    intervals;
    messages;
    blocked = Array.copy r.r_blocked;
    dropped = Array.copy r.r_dropped;
    merged = r.r_merged;
  }

let total_blocked t = Array.fold_left ( +. ) 0.0 t.blocked
let total_dropped t = Array.fold_left ( + ) 0 t.dropped

(* --- Chrome trace_event export --- *)

(* The rank tracks live in their own process group (pid 2; the pipeline
   trace of Scalana_obs uses pid 1), so a merged Perfetto load shows
   "analysis domains" and "application ranks" side by side. *)
let pid = 2.0

let us t = t *. 1e6

let vertex_label psg vid =
  match psg with
  | None -> None
  | Some psg -> (
      match Psg.vertex_opt psg vid with
      | Some v -> Some (Vertex.label v)
      | None -> None)

let to_trace_json ?psg t =
  let module J = Obs.Json in
  let meta =
    J.Obj
      [
        ("name", J.Str "process_name");
        ("ph", J.Str "M");
        ("pid", J.Num pid);
        ("args", J.Obj [ ("name", J.Str "application ranks") ]);
      ]
    :: List.init t.nprocs (fun rank ->
           J.Obj
             [
               ("name", J.Str "thread_name");
               ("ph", J.Str "M");
               ("pid", J.Num pid);
               ("tid", J.Num (float_of_int rank));
               ( "args",
                 J.Obj [ ("name", J.Str (Printf.sprintf "rank %d" rank)) ] );
             ])
  in
  let slice iv =
    let name, extra =
      match iv.iv_kind with
      | Compute { label } ->
          (Option.value label ~default:"comp", [])
      | Mpi m ->
          (m.op, [ ("wait", J.Str (Printf.sprintf "%.9f" m.wait)) ])
    in
    let vertex_args =
      match iv.iv_vertex with
      | None -> []
      | Some vid -> (
          ("vertex", J.Str (string_of_int vid))
          ::
          (match vertex_label psg vid with
          | Some l -> [ ("vertex_label", J.Str l) ]
          | None -> []))
    in
    let merged_args =
      if iv.iv_merged > 1 then
        [ ("merged", J.Str (string_of_int iv.iv_merged)) ]
      else []
    in
    J.Obj
      [
        ("name", J.Str name);
        ("cat", J.Str "scalana.app");
        ("ph", J.Str "X");
        ("ts", J.Num (us iv.iv_start));
        ("dur", J.Num (us (iv.iv_stop -. iv.iv_start)));
        ("pid", J.Num pid);
        ("tid", J.Num (float_of_int iv.iv_rank));
        ("args", J.Obj (vertex_args @ merged_args @ extra));
      ]
  in
  let flow m =
    (* one arrow per matched message; ids come from the process-global
       allocator shared with the pipeline-trace exporter *)
    let id = float_of_int (Obs.Flow.next_id ()) in
    let point ~ph ~tid ~ts extra =
      J.Obj
        ([
           ("name", J.Str "msg");
           ("cat", J.Str "scalana.flow");
           ("ph", J.Str ph);
           ("id", J.Num id);
           ("ts", J.Num (us ts));
           ("pid", J.Num pid);
           ("tid", J.Num (float_of_int tid));
         ]
        @ extra)
    in
    [
      point ~ph:"s" ~tid:m.msg_src ~ts:m.msg_send_time
        [
          ("args",
           J.Obj
             [
               ("tag", J.Str (string_of_int m.msg_tag));
               ("bytes", J.Str (string_of_int m.msg_bytes));
             ]);
        ];
      point ~ph:"f" ~tid:m.msg_dst ~ts:m.msg_arrival [ ("bp", J.Str "e") ];
    ]
  in
  let truncation =
    List.concat
      (List.init t.nprocs (fun rank ->
           if t.dropped.(rank) = 0 then []
           else
             [
               J.Obj
                 [
                   ("name", J.Str "truncated");
                   ("cat", J.Str "scalana.app");
                   ("ph", J.Str "i");
                   ("s", J.Str "t");
                   ("ts", J.Num (us t.elapsed));
                   ("pid", J.Num pid);
                   ("tid", J.Num (float_of_int rank));
                   ( "args",
                     J.Obj
                       [
                         ( "dropped_events",
                           J.Str (string_of_int t.dropped.(rank)) );
                       ] );
                 ];
             ]))
  in
  let slices = Array.to_list (Array.map slice t.intervals) in
  let flows = List.concat_map flow (Array.to_list t.messages) in
  J.Obj
    [
      ("traceEvents", J.Arr (meta @ slices @ flows @ truncation));
      ("displayTimeUnit", J.Str "ms");
    ]

let export_trace ?psg ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_string (to_trace_json ?psg t));
      output_char oc '\n')
