(** Application-level rank timeline: an {!Scalana_runtime.Instrument}
    tool recording per-rank compute intervals, MPI enter/exit events and
    matched messages during a simulated run.

    The recorder charges {e zero} tool overhead onto the simulated
    clocks — it is an idealized observer, so a run instrumented with it
    (alongside the regular profiler) reproduces exactly the clocks of
    the stored profiled run, and the captured timeline lines up with the
    session's per-vertex numbers.

    Memory is bounded two ways: graph-guided compression merges
    consecutive compute intervals that resolve to the same PSG vertex
    (loop iterations collapse into one slice per visit streak), and a
    hard [max_events] cap drops further events with explicit per-rank
    truncation accounting.  Per-rank blocked-time totals keep
    accumulating past the cap, so wait-state attribution can always be
    reported as a fraction of the {e true} blocked time. *)

open Scalana_psg
open Scalana_runtime

type config = { max_events : int  (** intervals + messages recorded *) }

val default_config : config

(** What one MPI interval saw, the raw material of wait-state replay. *)
type mpi_info = {
  op : string;  (** [Ast.mpi_name] of the call *)
  wait : float;  (** blocked seconds inside the call *)
  deps : (int * float * float) list;
      (** matched sends: (peer rank, peer post time, arrival time) *)
  send_dests : int list;  (** destinations of sends posted by this op *)
  coll : coll_info option;
}

and coll_info = {
  coll_arrive : float;
  coll_start : float;  (** when the last rank arrived *)
  coll_last_rank : int;
}

type kind = Compute of { label : string option } | Mpi of mpi_info

type interval = {
  iv_rank : int;
  iv_vertex : int option;  (** contracted-PSG vertex, when resolvable *)
  mutable iv_start : float;
  mutable iv_stop : float;
  iv_kind : kind;
  mutable iv_merged : int;  (** raw intervals folded into this one *)
}

(** A matched point-to-point message, for flow arrows and replay. *)
type message = {
  msg_src : int;
  msg_dst : int;
  msg_send_time : float;  (** sender-local post time *)
  msg_recv_enter : float;  (** receiver entered the completing MPI op *)
  msg_arrival : float;  (** transfer completed on the receiver *)
  msg_tag : int;
  msg_bytes : int;
  msg_vertex : int option;  (** receive-side vertex *)
}

(** A captured timeline.  Arrays are sorted: intervals by (rank, start),
    messages by (send time, src, dst, tag). *)
type t = {
  nprocs : int;
  elapsed : float;
  intervals : interval array;
  messages : message array;
  blocked : float array;  (** per-rank blocked seconds, never truncated *)
  dropped : int array;  (** per-rank events lost to the [max_events] cap *)
  merged : int;  (** raw intervals removed by vertex-keyed compression *)
}

type recorder

val create : ?config:config -> index:Index.t -> nprocs:int -> unit -> recorder

(** The instrument hooks; attach via [Exec.config ~tools] or
    [Prof.run ~extra_tools].  All hooks return 0.0 overhead. *)
val tool : recorder -> Instrument.t

(** Freeze the recorder into a sorted, immutable timeline. *)
val capture : recorder -> t

val total_blocked : t -> float
val total_dropped : t -> int

(** Chrome [trace_event] document: one track per rank (its own process
    group, so a merged load with the pipeline trace of
    {!Scalana_obs.Obs} stays readable), one complete event per interval,
    and one flow arrow per matched message.  Flow ids come from
    {!Scalana_obs.Obs.Flow}, the process-global allocator, so they never
    collide with the pipeline trace's.  [psg] adds vertex labels to the
    slice args. *)
val to_trace_json : ?psg:Psg.t -> t -> Scalana_obs.Obs.Json.t

val export_trace : ?psg:Psg.t -> path:string -> t -> unit
