(* Data-dependence annotation of the contracted PSG.

   The paper's PSG approximates data dependence by sibling order; this
   pass makes it explicit.  Per-function def-use chains (from the
   reaching-definitions analysis in {!Scalana_cfg.Defuse}) are mapped
   onto PSG vertices: a chain [def site -> use site] becomes an edge
   between the vertices owning those statements in the same inlining
   instance (vertices of one expansion share a callpath).  [Let]
   statements and function parameters produce no PSG vertex, so chains
   ending at one are followed transitively through the binding's own
   uses — [let t = k; send(dest = t)] still yields an edge from the send
   to the definition of [k].

   Both endpoints are projected through the contraction map before the
   edge is recorded, so the annotation lives on the graph the detector
   traverses ({!Scalana_detect.Backtrack} with [follow_def_use]). *)

open Scalana_mlang
open Scalana_cfg

type summary = { defs : int; uses : int; edges : int }

(* Same (callpath, loc) encoding as the attribution index. *)
let encode_callpath callpath =
  let buf = Buffer.create 64 in
  List.iter
    (fun l ->
      Buffer.add_string buf (Loc.to_string l);
      Buffer.add_char buf '>')
    callpath;
  Buffer.contents buf

(* Resolve a definition site to PSG vertices within one inlining
   instance.  A site with no vertex of its own (a [Let], a parameter
   binding at the function location) is chained through its own uses'
   reaching definitions; [visited] guards against loop-carried cycles
   through the same binding. *)
let rec def_vertices lookup chains visited def_loc =
  if List.exists (Loc.equal def_loc) visited then []
  else
    match lookup def_loc with
    | Some did -> [ did ]
    | None ->
        Defuse.Chains.uses_at chains def_loc
        |> List.concat_map (fun (_, sites) ->
               List.concat_map
                 (def_vertices lookup chains (def_loc :: visited))
                 sites)

let annotate ?pool ~(full : Psg.t) ~(contraction : Contract.result)
    (program : Ast.program) =
  let chains_list =
    Scalana_pool.Pool.parallel_map ?pool
      (fun (f : Ast.func) -> (f.fname, Defuse.Chains.of_func f))
      program.funcs
  in
  let chains_tbl = Hashtbl.create (max 16 (List.length chains_list)) in
  List.iter (fun (n, c) -> Hashtbl.replace chains_tbl n c) chains_list;
  (* (callpath, loc) -> full-PSG vertex; first expansion wins, matching
     the attribution index's recursion folding. *)
  let vert_at = Hashtbl.create (max 64 (Psg.n_vertices full)) in
  Psg.iter
    (fun v ->
      let k = encode_callpath v.Vertex.callpath ^ Loc.to_string v.Vertex.loc in
      if not (Hashtbl.mem vert_at k) then Hashtbl.add vert_at k v.Vertex.id)
    full;
  let contracted = contraction.Contract.psg in
  Psg.iter
    (fun v ->
      match Hashtbl.find_opt chains_tbl v.Vertex.func with
      | None -> ()
      | Some chains ->
          let prefix = encode_callpath v.Vertex.callpath in
          let lookup loc =
            Hashtbl.find_opt vert_at (prefix ^ Loc.to_string loc)
          in
          Defuse.Chains.uses_at chains v.Vertex.loc
          |> List.iter (fun (_, sites) ->
                 List.iter
                   (fun site ->
                     List.iter
                       (fun did ->
                         match
                           ( Contract.new_id contraction v.Vertex.id,
                             Contract.new_id contraction did )
                         with
                         | Some u, Some d ->
                             Psg.add_data_dep contracted ~use:u ~def:d
                         | _ -> ())
                       (def_vertices lookup chains [] site))
                   sites))
    full;
  let defs, uses =
    List.fold_left
      (fun (d, u) (_, c) ->
        (d + Defuse.Chains.n_defs c, u + Defuse.Chains.n_uses c))
      (0, 0) chains_list
  in
  { defs; uses; edges = Psg.n_data_dep_edges contracted }
