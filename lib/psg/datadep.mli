(** Data-dependence annotation of the contracted PSG: maps the
    per-function def-use chains of {!Scalana_cfg.Defuse} onto PSG
    vertices and records them with {!Psg.add_data_dep}.  Chains through
    vertex-less statements ([let] bindings, function parameters) are
    followed transitively, and both endpoints are projected through the
    contraction before the edge is stored. *)

open Scalana_mlang

type summary = {
  defs : int;  (** definition sites across all functions *)
  uses : int;  (** use occurrences across all functions *)
  edges : int;  (** distinct data-dependence edges in the contracted PSG *)
}

(** [annotate ~full ~contraction program] computes def-use chains for
    every function (in parallel under [pool]) and adds the induced
    data-dependence edges to [contraction]'s PSG, in place. *)
val annotate :
  ?pool:Scalana_pool.Pool.t ->
  full:Psg.t ->
  contraction:Contract.result ->
  Ast.program ->
  summary
