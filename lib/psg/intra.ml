(* Intra-procedural analysis: build a local PSG for one function.

   The traversal identifies loops, branches, calls, MPI invocations and
   computation blocks and connects them in execution order, as the paper's
   IR-level pass does.  [crosscheck] validates the result against the
   CFG-based dominance/natural-loop analyses: every Loop vertex must
   correspond to exactly one natural loop of the lowered CFG. *)

open Scalana_mlang
open Scalana_cfg

let rec add_stmts t ~parent ~func ~loop_depth stmts =
  List.iter (add_stmt t ~parent ~func ~loop_depth) stmts

and add_stmt t ~parent ~func ~loop_depth (s : Ast.stmt) =
  let add kind =
    Psg.add_vertex t ~parent ~kind ~loc:s.loc ~func ~callpath:[]
  in
  match s.node with
  | Ast.Comp w -> ignore (add (Vertex.Comp { label = w.label; merged = 1 }))
  | Ast.Loop l ->
      let id =
        add (Vertex.Loop { var = l.var; label = l.label; depth = loop_depth + 1 })
      in
      add_stmts t ~parent:id ~func ~loop_depth:(loop_depth + 1) l.body
  | Ast.Branch b ->
      let id = add Vertex.Branch in
      add_stmts t ~parent:id ~func ~loop_depth b.then_;
      add_stmts t ~parent:id ~func ~loop_depth b.else_
  | Ast.Call { callee; _ } ->
      ignore
        (add (Vertex.Callsite { callee = Some callee; targets = [ callee ]; recursive = false }))
  | Ast.Icall { targets; _ } ->
      ignore (add (Vertex.Callsite { callee = None; targets; recursive = false }))
  | Ast.Mpi call -> ignore (add (Vertex.Mpi call))
  | Ast.Let _ -> ()

let build (f : Ast.func) =
  let t = Psg.create () in
  let root = Psg.add_root t ~func:f.fname ~loc:f.floc in
  add_stmts t ~parent:root ~func:f.fname ~loop_depth:0 f.fbody;
  t

(* Each function's local PSG is an independent tree with its own id
   space, so the builds fan out across domains; the table is filled
   sequentially afterwards in declaration order. *)
let build_all ?pool (program : Ast.program) =
  let built =
    Scalana_pool.Pool.parallel_map ?pool
      (fun (f : Ast.func) -> (f.fname, build f))
      program.funcs
  in
  let tbl = Hashtbl.create (max 16 (List.length built)) in
  List.iter (fun (name, psg) -> Hashtbl.replace tbl name psg) built;
  tbl

(* Cross-validation against the CFG analyses. *)
let crosscheck (f : Ast.func) =
  let psg = build f in
  let cfg = Cfg.of_func f in
  let natural = Loops.compute cfg in
  let psg_loops =
    List.length (Psg.find_all Vertex.is_loop psg)
  in
  let psg_branches = List.length (Psg.find_all Vertex.is_branch psg) in
  let cfg_branches =
    Array.fold_left
      (fun acc (b : Cfg.block) ->
        match b.origin with Cfg.Branch_cond _ -> acc + 1 | _ -> acc)
      0 cfg.Cfg.blocks
  in
  if Loops.count natural <> psg_loops then
    Error
      (Printf.sprintf "%s: %d natural loops vs %d PSG Loop vertices" f.fname
         (Loops.count natural) psg_loops)
  else if cfg_branches <> psg_branches then
    Error
      (Printf.sprintf "%s: %d CFG branches vs %d PSG Branch vertices" f.fname
         cfg_branches psg_branches)
  else Ok ()
