(** Intra-procedural analysis: local PSG per function. *)

open Scalana_mlang

val build : Ast.func -> Psg.t

(** Local PSGs for every function, keyed by name.  With [pool], the
    per-function builds run in parallel (each local PSG has its own id
    space); the result is identical to the sequential build. *)
val build_all :
  ?pool:Scalana_pool.Pool.t -> Ast.program -> (string, Psg.t) Hashtbl.t

(** Validate the local PSG against CFG dominance/natural-loop analyses:
    Loop vertices must match natural loops, Branch vertices must match
    conditional blocks. *)
val crosscheck : Ast.func -> (unit, string) result
