(* Program Structure Graph.

   The PSG is an ordered tree plus derived edges: the parent link is the
   control-dependence edge of a vertex, and the left-to-right order of a
   body encodes execution order (the paper's data-dependence edges between
   consecutive components).  Recursive calls add back edges, making the
   structure a general graph as in Section III-A. *)



type t = {
  verts : (int, Vertex.t) Hashtbl.t;
  children : (int, int list) Hashtbl.t;  (* stored reversed during build *)
  parent : (int, int) Hashtbl.t;
  cycle : (int, int) Hashtbl.t;  (* recursive callsite -> entry vertex *)
  datadep : (int, int list) Hashtbl.t;
      (* use vertex -> defining vertices, stored reversed *)
  static_pred : (int, Scalana_cfg.Commcost.pred) Hashtbl.t;
      (* vertex -> symbolic scaling prediction (plain data: the PSG is
         marshalled into session artifacts) *)
  mutable n_datadep : int;
  mutable next_id : int;
  mutable root : int;
}

let create () =
  {
    verts = Hashtbl.create 64;
    children = Hashtbl.create 64;
    parent = Hashtbl.create 64;
    cycle = Hashtbl.create 4;
    datadep = Hashtbl.create 16;
    static_pred = Hashtbl.create 16;
    n_datadep = 0;
    next_id = 0;
    root = -1;
  }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let add_root t ~func ~loc =
  let id = fresh_id t in
  let v =
    { Vertex.id; kind = Vertex.Root func; loc; func; callpath = [] }
  in
  Hashtbl.replace t.verts id v;
  Hashtbl.replace t.children id [];
  if t.root < 0 then t.root <- id;
  id

let add_vertex t ~parent ~kind ~loc ~func ~callpath =
  let id = fresh_id t in
  let v = { Vertex.id; kind; loc; func; callpath } in
  Hashtbl.replace t.verts id v;
  Hashtbl.replace t.children id [];
  Hashtbl.replace t.parent id parent;
  let siblings = try Hashtbl.find t.children parent with Not_found -> [] in
  Hashtbl.replace t.children parent (id :: siblings);
  id

let set_kind t id kind =
  let v = Hashtbl.find t.verts id in
  Hashtbl.replace t.verts id { v with Vertex.kind }

let add_cycle_edge t ~callsite ~entry = Hashtbl.replace t.cycle callsite entry
let cycle_target t callsite = Hashtbl.find_opt t.cycle callsite

(* Explicit data-dependence edges from the def-use analysis (Datadep):
   vertex [use] reads a value defined at vertex [def]. *)
let add_data_dep t ~use ~def =
  if use <> def then begin
    let cur = Option.value ~default:[] (Hashtbl.find_opt t.datadep use) in
    if not (List.mem def cur) then begin
      Hashtbl.replace t.datadep use (def :: cur);
      t.n_datadep <- t.n_datadep + 1
    end
  end

let data_deps t use =
  match Hashtbl.find_opt t.datadep use with
  | Some l -> List.rev l
  | None -> []

(* Symbolic scaling predictions of the static communication-complexity
   analysis (Commcost), attached per contracted vertex. *)
let set_static_pred t id pred = Hashtbl.replace t.static_pred id pred
let static_pred t id = Hashtbl.find_opt t.static_pred id
let n_static_preds t = Hashtbl.length t.static_pred

let n_data_dep_edges t = t.n_datadep
let root t = t.root
let vertex t id = Hashtbl.find t.verts id
let vertex_opt t id = Hashtbl.find_opt t.verts id
let n_vertices t = Hashtbl.length t.verts
let children t id =
  match Hashtbl.find_opt t.children id with
  | Some l -> List.rev l
  | None -> []

let parent t id = Hashtbl.find_opt t.parent id

(* Previous sibling in execution order: the paper's backward
   data-dependence step. *)
let prev_sibling t id =
  match parent t id with
  | None -> None
  | Some p ->
      let rec find_prev prev = function
        | [] -> None
        | x :: rest -> if x = id then prev else find_prev (Some x) rest
      in
      find_prev None (children t p)

let next_sibling t id =
  match parent t id with
  | None -> None
  | Some p ->
      let rec find = function
        | x :: ((y :: _) as rest) ->
            if x = id then Some y else find rest
        | _ -> None
      in
      find (children t p)

let last_child t id =
  match Hashtbl.find_opt t.children id with
  | Some (last :: _) -> Some last
  | Some [] | None -> None

(* DFS pre-order = program execution order of one iteration. *)
let exec_order t =
  let acc = ref [] in
  let rec go id =
    acc := id :: !acc;
    List.iter go (children t id)
  in
  if t.root >= 0 then go t.root;
  List.rev !acc

let iter f t = List.iter (fun id -> f (vertex t id)) (exec_order t)

let fold f acc t =
  List.fold_left (fun acc id -> f acc (vertex t id)) acc (exec_order t)

let find_all p t =
  fold (fun acc v -> if p v then v :: acc else acc) [] t |> List.rev

(* Does any MPI vertex live in the subtree rooted at [id]?  Unresolved
   callsites count: they may execute MPI at runtime. *)
let rec subtree_has_mpi t id =
  let v = vertex t id in
  Vertex.is_mpi v || Vertex.is_callsite v
  || List.exists (subtree_has_mpi t) (children t id)

let subtree_vertices t id =
  let acc = ref [] in
  let rec go id =
    acc := id :: !acc;
    List.iter go (children t id)
  in
  go id;
  List.rev !acc

(* Depth of nested Loop vertices enclosing (and including) [id]. *)
let loop_depth t id =
  let rec climb acc id =
    let acc = if Vertex.is_loop (vertex t id) then acc + 1 else acc in
    match parent t id with None -> acc | Some p -> climb acc p
  in
  climb 0 id

let ancestors t id =
  let rec climb acc id =
    match parent t id with None -> List.rev acc | Some p -> climb (p :: acc) p
  in
  climb [] id

let pp ppf t =
  let rec go indent id =
    let v = vertex t id in
    Fmt.pf ppf "%s%a@." (String.make (2 * indent) ' ') Vertex.pp v;
    List.iter (go (indent + 1)) (children t id)
  in
  if t.root >= 0 then go 0 t.root

(* Memory footprint model: the paper reports 32 bytes per PSG vertex. *)
let bytes_per_vertex = 32
let memory_bytes t = n_vertices t * bytes_per_vertex
