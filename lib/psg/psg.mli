(** Program Structure Graph: an ordered tree (parent = control dependence,
    sibling order = execution order / data dependence) plus back edges for
    recursive calls. *)

open Scalana_mlang

type t

val create : unit -> t

(** Add a root vertex for function [func]; the first root added becomes
    the graph root. *)
val add_root : t -> func:string -> loc:Loc.t -> int

val add_vertex :
  t ->
  parent:int ->
  kind:Vertex.kind ->
  loc:Loc.t ->
  func:string ->
  callpath:Loc.t list ->
  int

(** Replace the kind of an existing vertex (used by contraction merging
    and indirect-call refinement). *)
val set_kind : t -> int -> Vertex.kind -> unit

val add_cycle_edge : t -> callsite:int -> entry:int -> unit
val cycle_target : t -> int -> int option

(** Record an explicit data-dependence edge from the def-use analysis:
    vertex [use] reads a value defined at vertex [def].  Self edges and
    duplicates are ignored. *)
val add_data_dep : t -> use:int -> def:int -> unit

(** Defining vertices of [use]'s recorded data dependences, in insertion
    order; empty when the def-use pass has not annotated the graph. *)
val data_deps : t -> int -> int list

val n_data_dep_edges : t -> int

(** Attach the symbolic scaling prediction of the static
    communication-complexity analysis to a vertex (plain data — the PSG
    is marshalled into session artifacts). *)
val set_static_pred : t -> int -> Scalana_cfg.Commcost.pred -> unit

val static_pred : t -> int -> Scalana_cfg.Commcost.pred option
val n_static_preds : t -> int
val root : t -> int
val vertex : t -> int -> Vertex.t
val vertex_opt : t -> int -> Vertex.t option
val n_vertices : t -> int

(** Children in execution order. *)
val children : t -> int -> int list

val parent : t -> int -> int option

(** Previous sibling in execution order — the backward data-dependence
    step of Algorithm 1. *)
val prev_sibling : t -> int -> int option

val next_sibling : t -> int -> int option

(** Last vertex of a body: where backtracking enters a Loop/Branch. *)
val last_child : t -> int -> int option

(** DFS pre-order (execution order of one pass). *)
val exec_order : t -> int list

val iter : (Vertex.t -> unit) -> t -> unit
val fold : ('a -> Vertex.t -> 'a) -> 'a -> t -> 'a
val find_all : (Vertex.t -> bool) -> t -> Vertex.t list

(** True when the subtree contains an MPI vertex or an unresolved
    callsite (which may perform MPI at runtime). *)
val subtree_has_mpi : t -> int -> bool

val subtree_vertices : t -> int -> int list

(** Number of Loop vertices on the path from the root to [id], inclusive. *)
val loop_depth : t -> int -> int

val ancestors : t -> int -> int list
val pp : t Fmt.t

(** Memory model: the paper reports 32 B per PSG vertex. *)
val bytes_per_vertex : int

val memory_bytes : t -> int
