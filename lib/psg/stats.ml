(* PSG statistics — the columns of the paper's Table II, extended with
   the dataflow counts of the def-use pass. *)

type t = {
  program : string;
  kloc : float;
  vbc : int;  (* vertices before contraction *)
  vac : int;  (* vertices after contraction *)
  loops : int;
  branches : int;
  comps : int;
  mpis : int;
  calls : int;  (* kept (indirect/recursive) callsites *)
  defs : int;  (* definition sites (Defuse) *)
  uses : int;  (* use occurrences (Defuse) *)
  dd_edges : int;  (* data-dependence edges in the contracted PSG *)
  preds : int;  (* vertices carrying a symbolic scaling prediction *)
}

let count_kind psg pred =
  Psg.fold (fun acc v -> if pred v then acc + 1 else acc) 0 psg

let of_psgs ?(defs = 0) ?(uses = 0) ?(dd_edges = 0) ?(preds = 0) ~program
    ~lines ~(full : Psg.t) ~(contracted : Psg.t) () =
  {
    program;
    kloc = float_of_int lines /. 1000.0;
    vbc = Psg.n_vertices full;
    vac = Psg.n_vertices contracted;
    loops = count_kind contracted Vertex.is_loop;
    branches = count_kind contracted Vertex.is_branch;
    comps = count_kind contracted Vertex.is_comp;
    mpis = count_kind contracted Vertex.is_mpi;
    calls = count_kind contracted Vertex.is_callsite;
    defs;
    uses;
    dd_edges;
    preds;
  }

let contraction_ratio t =
  if t.vbc = 0 then 0.0 else 1.0 -. (float_of_int t.vac /. float_of_int t.vbc)

let header =
  Printf.sprintf "%-14s %8s %6s %6s %6s %7s %6s %5s %5s %5s %5s %5s" "Program"
    "KLoc" "#VBC" "#VAC" "#Loop" "#Branch" "#Comp" "#MPI" "#Def" "#Use" "#DD"
    "#Pred"

let row t =
  Printf.sprintf "%-14s %8.1f %6d %6d %6d %7d %6d %5d %5d %5d %5d %5d"
    t.program t.kloc t.vbc t.vac t.loops t.branches t.comps t.mpis t.defs
    t.uses t.dd_edges t.preds

let pp ppf t = Fmt.string ppf (row t)
