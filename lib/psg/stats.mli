(** PSG statistics: the columns of the paper's Table II, extended with
    the def-use dataflow counts. *)

type t = {
  program : string;
  kloc : float;
  vbc : int;  (** vertices before contraction *)
  vac : int;  (** vertices after contraction *)
  loops : int;
  branches : int;
  comps : int;
  mpis : int;
  calls : int;
  defs : int;  (** definition sites across all functions *)
  uses : int;  (** use occurrences across all functions *)
  dd_edges : int;  (** data-dependence edges in the contracted PSG *)
  preds : int;  (** vertices carrying a symbolic scaling prediction *)
}

val of_psgs :
  ?defs:int ->
  ?uses:int ->
  ?dd_edges:int ->
  ?preds:int ->
  program:string ->
  lines:int ->
  full:Psg.t ->
  contracted:Psg.t ->
  unit ->
  t

(** Fraction of vertices removed by contraction (paper: 68% on average). *)
val contraction_ratio : t -> float

val header : string
val row : t -> string
val pp : t Fmt.t
