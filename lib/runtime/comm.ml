(* Message matching and collective synchronization.

   Implements the standard MPI two-queue model per receiver (posted
   receives vs unexpected messages) with tag/source wildcards and
   non-overtaking order, an eager/rendezvous protocol switch, and
   sequence-numbered collective instances with full-synchronization cost
   semantics.  The [on_complete] callback lets the scheduler wake blocked
   processes the moment a request completes.

   This is the simulator's hottest data structure, so the representation
   is allocation-free on the matching path: queues are flat arrays with
   tombstoned removal (matching marks an entry dead in place; slots are
   reclaimed in bulk when a queue next needs room), wildcards are
   sentinel integers rather than options, absent messages/requests are
   cyclic [nil_message]/[nil_request] sentinels compared physically, and
   exact-match receives carry a packed (src, tag) key so the common
   non-wildcard probe is a single integer comparison.  Collective
   instances accumulate a count and a running latest-arrival instead of
   an arrival list, which turns the per-collective cost from O(nprocs^2)
   to O(nprocs) — the seed engine's dominant term at np >= 4096. *)

open Scalana_mlang

type message = {
  msg_src : int;
  msg_dst : int;
  msg_tag : int;
  msg_bytes : int;
  msg_key : int;  (* packed (src, tag), -1 when the tag doesn't pack *)
  send_seq : int;
  send_time : float;
  mutable arrival : float;  (* infinity until scheduled (rendezvous) *)
  send_loc : Loc.t;
  send_callpath : Loc.t list;
  eager : bool;
  mutable sender_req : request;  (* [nil_request] = none *)
  mutable consumed : bool;  (* tombstone in the unexpected queue *)
}

and request = {
  req_id : int;
  req_rank : int;
  req_kind : [ `Send | `Recv ];
  post_time : float;
  want_src : int;  (* [any_src] = MPI_ANY_SOURCE *)
  want_tag : int;  (* [any_tag] = MPI_ANY_TAG *)
  req_key : int;  (* packed exact (src, tag), -1 when wildcarded *)
  req_bytes : int;
  req_loc : Loc.t;
  req_callpath : Loc.t list;
  mutable completed : bool;  (* tombstone in the posted queue *)
  mutable completion : float;
  mutable matched : message;  (* [nil_message] = none *)
  mutable waiter : int;  (* blocked rank to wake on completion, -1 = none *)
}

(* Wildcard sentinels.  [min_int] cannot be produced by a program's
   source/tag expression in practice, and explicit sources are validated
   into [0, nprocs) anyway. *)
let any_src = min_int
let any_tag = min_int

let rec nil_message =
  {
    msg_src = -1;
    msg_dst = -1;
    msg_tag = 0;
    msg_bytes = 0;
    msg_key = -1;
    send_seq = 0;
    send_time = 0.0;
    arrival = 0.0;
    send_loc = Loc.none;
    send_callpath = [];
    eager = true;
    sender_req = nil_request;
    consumed = true;
  }

and nil_request =
  {
    req_id = 0;
    req_rank = -1;
    req_kind = `Send;
    post_time = 0.0;
    want_src = any_src;
    want_tag = any_tag;
    req_key = -1;
    req_bytes = 0;
    req_loc = Loc.none;
    req_callpath = [];
    completed = true;
    completion = 0.0;
    matched = nil_message;
    waiter = -1;
  }

let has_matched (r : request) = r.matched != nil_message

(* Packed (src, tag) fast path: when both fit in 30 bits the pair packs
   into one non-negative int, and two packed keys are equal iff the
   pairs are.  Out-of-range tags fall back to field comparison — the
   pack condition is identical on both sides, so a packed request key
   can never equal an unpackable message key. *)
let key_bits = 30
let key_max = (1 lsl key_bits) - 1

let pack_key src tag =
  if src >= 0 && src <= key_max && tag >= 0 && tag <= key_max then
    (src lsl key_bits) lor tag
  else -1

(* --- flat queues with tombstoned removal --- *)

type 'a dq = {
  mutable buf : 'a array;
  mutable head : int;  (* first possibly-live slot *)
  mutable tail : int;  (* one past the last slot in use *)
  dummy : 'a;
}

let dq_create dummy = { buf = Array.make 4 dummy; head = 0; tail = 0; dummy }

(* Drop dead entries in order; grow only when mostly live.  In-place
   compaction is safe because the write index never passes the read
   index. *)
let dq_compact dead q =
  let live = ref 0 in
  for i = q.head to q.tail - 1 do
    if not (dead q.buf.(i)) then incr live
  done;
  let cap = Array.length q.buf in
  let buf = if 2 * !live >= cap then Array.make (2 * cap) q.dummy else q.buf in
  let j = ref 0 in
  for i = q.head to q.tail - 1 do
    let x = q.buf.(i) in
    if not (dead x) then begin
      buf.(!j) <- x;
      incr j
    end
  done;
  if buf == q.buf then
    for i = !j to q.tail - 1 do
      q.buf.(i) <- q.dummy
    done;
  q.buf <- buf;
  q.head <- 0;
  q.tail <- !j

let dq_push dead q x =
  if q.tail = Array.length q.buf then dq_compact dead q;
  q.buf.(q.tail) <- x;
  q.tail <- q.tail + 1

let msg_dead (m : message) = m.consumed
let req_dead (r : request) = r.completed

type t = {
  net : Network.t;
  nprocs : int;
  unexpected : message dq array;  (* per destination, send order *)
  posted : request dq array;  (* per receiver, post order *)
  colls : (int, coll) Hashtbl.t;  (* in-flight instances by sequence *)
  mutable msg_seq : int;
  mutable req_seq : int;
  mutable on_complete : request -> unit;
  mutable messages_sent : int;
  mutable bytes_sent : float;
}

and coll = {
  coll_seq : int;
  coll_kind : Ast.mpi_call;
  coll_bytes : int;
  mutable n_arrived : int;
  mutable max_arrival : float;  (* chronologically-latest max so far *)
  mutable finished : bool;
  mutable start_time : float;
  mutable finish_time : float;
  mutable last_arrival_rank : int;
  mutable waiters : int list;  (* blocked ranks, newest first *)
}

let create ~net ~nprocs =
  {
    net;
    nprocs;
    unexpected = Array.init nprocs (fun _ -> dq_create nil_message);
    posted = Array.init nprocs (fun _ -> dq_create nil_request);
    colls = Hashtbl.create 64;
    msg_seq = 0;
    req_seq = 0;
    on_complete = (fun _ -> ());
    messages_sent = 0;
    bytes_sent = 0.0;
  }

let set_on_complete t f = t.on_complete <- f

let complete t req ~at =
  req.completed <- true;
  req.completion <- at;
  t.on_complete req

let matches (req : request) (msg : message) =
  if req.req_key >= 0 then req.req_key = msg.msg_key
  else
    (req.want_src = any_src || req.want_src = msg.msg_src)
    && (req.want_tag = any_tag || req.want_tag = msg.msg_tag)

(* Join a message with a posted receive and complete both sides.  The
   message becomes a tombstone in whichever queue holds it. *)
let consume t (req : request) (msg : message) =
  msg.consumed <- true;
  req.matched <- msg;
  if msg.eager then
    (* transfer was already in flight; the receive sees it at arrival *)
    complete t req ~at:(Float.max req.post_time msg.arrival)
  else begin
    (* rendezvous: transfer starts when both sides are ready *)
    let start = Float.max req.post_time msg.send_time in
    let arrival = start +. Network.transfer_time t.net msg.msg_bytes in
    msg.arrival <- arrival;
    let sreq = msg.sender_req in
    if sreq != nil_request && not sreq.completed then
      complete t sreq ~at:arrival;
    complete t req ~at:arrival
  end

let fresh_req t =
  t.req_seq <- t.req_seq + 1;
  t.req_seq

(* Post a send at [time]; returns the sender-side request (already
   completed for eager messages). *)
let send t ~src ~dst ~tag ~bytes ~time ~loc ~callpath =
  if dst < 0 || dst >= t.nprocs then
    Fmt.invalid_arg "send to rank %d outside 0..%d (%s)" dst (t.nprocs - 1)
      (Loc.to_string loc);
  t.msg_seq <- t.msg_seq + 1;
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent +. float_of_int bytes;
  let eager = Network.is_eager t.net bytes in
  let msg =
    {
      msg_src = src;
      msg_dst = dst;
      msg_tag = tag;
      msg_bytes = bytes;
      msg_key = pack_key src tag;
      send_seq = t.msg_seq;
      send_time = time;
      arrival =
        (if eager then time +. Network.transfer_time t.net bytes else infinity);
      send_loc = loc;
      send_callpath = callpath;
      eager;
      sender_req = nil_request;
      consumed = false;
    }
  in
  let sreq =
    {
      req_id = fresh_req t;
      req_rank = src;
      req_kind = `Send;
      post_time = time;
      want_src = any_src;
      want_tag = any_tag;
      req_key = -1;
      req_bytes = bytes;
      req_loc = loc;
      req_callpath = callpath;
      completed = eager;
      completion = (if eager then time else infinity);
      matched = msg;
      waiter = -1;
    }
  in
  msg.sender_req <- sreq;
  (* match against posted receives of the destination, FIFO *)
  let q = t.posted.(dst) in
  while q.head < q.tail && (q.buf.(q.head)).completed do
    q.buf.(q.head) <- nil_request;
    q.head <- q.head + 1
  done;
  let i = ref q.head in
  let matched = ref false in
  while (not !matched) && !i < q.tail do
    let r = q.buf.(!i) in
    if (not r.completed) && matches r msg then begin
      consume t r msg;
      matched := true
    end
    else incr i
  done;
  if not !matched then dq_push msg_dead t.unexpected.(dst) msg;
  sreq

(* Post a receive at [time]; returns the request (already completed when
   a matching unexpected message was waiting). *)
let post_recv t ~rank ~src ~tag ~bytes ~time ~loc ~callpath =
  if src <> any_src && (src < 0 || src >= t.nprocs) then
    Fmt.invalid_arg "recv from rank %d outside 0..%d (%s)" src (t.nprocs - 1)
      (Loc.to_string loc);
  let req =
    {
      req_id = fresh_req t;
      req_rank = rank;
      req_kind = `Recv;
      post_time = time;
      want_src = src;
      want_tag = tag;
      req_key =
        (if src <> any_src && tag <> any_tag then pack_key src tag else -1);
      req_bytes = bytes;
      req_loc = loc;
      req_callpath = callpath;
      completed = false;
      completion = infinity;
      matched = nil_message;
      waiter = -1;
    }
  in
  let q = t.unexpected.(rank) in
  while q.head < q.tail && (q.buf.(q.head)).consumed do
    q.buf.(q.head) <- nil_message;
    q.head <- q.head + 1
  done;
  let i = ref q.head in
  let matched = ref false in
  while (not !matched) && !i < q.tail do
    let m = q.buf.(!i) in
    if (not m.consumed) && matches req m then begin
      consume t req m;
      matched := true
    end
    else incr i
  done;
  if not !matched then dq_push req_dead t.posted.(rank) req;
  req

(* Constructor identity of an MPI call, for the cheap collective
   mismatch check (codes are distinct per constructor, so equal codes
   iff equal [Ast.mpi_name]s). *)
let kind_code : Ast.mpi_call -> int = function
  | Ast.Send _ -> 0
  | Ast.Recv _ -> 1
  | Ast.Isend _ -> 2
  | Ast.Irecv _ -> 3
  | Ast.Wait _ -> 4
  | Ast.Waitall _ -> 5
  | Ast.Sendrecv _ -> 6
  | Ast.Barrier -> 7
  | Ast.Bcast _ -> 8
  | Ast.Reduce _ -> 9
  | Ast.Allreduce _ -> 10
  | Ast.Alltoall _ -> 11
  | Ast.Allgather _ -> 12

(* Register arrival of [rank] at the [seq]-th collective call.  Returns
   the instance; when this arrival is the last one the instance is
   finalized (start/finish times set, [finished] = true) and dropped
   from the in-flight table.  The latest arrival is tracked as a
   running (count, max, argmax) triple; [>=] keeps the chronologically
   last rank among ties, matching the historical fold over a
   newest-first arrival list. *)
let coll_arrive t ~seq ~rank ~time ~kind ~bytes =
  let c =
    match Hashtbl.find_opt t.colls seq with
    | Some c ->
        if kind_code c.coll_kind <> kind_code kind then
          Fmt.invalid_arg
            "collective mismatch at sequence %d: rank %d calls %s, others %s"
            seq rank (Ast.mpi_name kind)
            (Ast.mpi_name c.coll_kind);
        c
    | None ->
        let c =
          {
            coll_seq = seq;
            coll_kind = kind;
            coll_bytes = bytes;
            n_arrived = 0;
            max_arrival = neg_infinity;
            finished = false;
            start_time = 0.0;
            finish_time = 0.0;
            last_arrival_rank = -1;
            waiters = [];
          }
        in
        Hashtbl.replace t.colls seq c;
        c
  in
  c.n_arrived <- c.n_arrived + 1;
  if time >= c.max_arrival then begin
    c.max_arrival <- time;
    c.last_arrival_rank <- rank
  end;
  if c.n_arrived = t.nprocs then begin
    c.start_time <- c.max_arrival;
    c.finish_time <-
      c.max_arrival +. Network.collective_time t.net ~nprocs:t.nprocs ~bytes kind;
    c.finished <- true;
    Hashtbl.remove t.colls seq
  end;
  c

let pending_summary t =
  let buf = Buffer.create 128 in
  Array.iteri
    (fun rank (q : request dq) ->
      for i = q.head to q.tail - 1 do
        let r = q.buf.(i) in
        if not r.completed then
          Buffer.add_string buf
            (Printf.sprintf "  rank %d: recv posted at %s (src=%s tag=%s)\n"
               rank (Loc.to_string r.req_loc)
               (if r.want_src = any_src then "any" else string_of_int r.want_src)
               (if r.want_tag = any_tag then "any" else string_of_int r.want_tag))
      done)
    t.posted;
  Array.iteri
    (fun rank (q : message dq) ->
      for i = q.head to q.tail - 1 do
        let m = q.buf.(i) in
        if not m.consumed then
          Buffer.add_string buf
            (Printf.sprintf "  rank %d: unconsumed msg from %d tag %d (%s)\n"
               rank m.msg_src m.msg_tag (Loc.to_string m.send_loc))
      done)
    t.unexpected;
  Buffer.contents buf
