(** Message matching and collective synchronization: the standard MPI
    two-queue model per receiver (posted receives vs unexpected messages)
    with tag/source wildcards and non-overtaking order, eager/rendezvous
    protocols, and sequence-numbered fully-synchronizing collectives.

    The representation is allocation-free on the matching path: flat
    per-rank queues with tombstoned removal, integer wildcard sentinels
    ({!any_src}/{!any_tag}) instead of options, cyclic
    {!nil_message}/{!nil_request} sentinels (compare physically, or use
    {!has_matched}) instead of option boxing, and a packed (src, tag)
    key as the exact-match fast path.  Collective instances keep a
    running (count, latest-arrival) pair rather than an arrival list. *)

open Scalana_mlang

type message = {
  msg_src : int;
  msg_dst : int;
  msg_tag : int;
  msg_bytes : int;
  msg_key : int;  (** packed (src, tag), [-1] when the tag doesn't pack *)
  send_seq : int;
  send_time : float;
  mutable arrival : float;  (** infinity until scheduled (rendezvous) *)
  send_loc : Loc.t;
  send_callpath : Loc.t list;
  eager : bool;
  mutable sender_req : request;  (** [nil_request] = none *)
  mutable consumed : bool;  (** tombstone in the unexpected queue *)
}

and request = {
  req_id : int;
  req_rank : int;
  req_kind : [ `Send | `Recv ];
  post_time : float;
  want_src : int;  (** [any_src] = MPI_ANY_SOURCE *)
  want_tag : int;  (** [any_tag] = MPI_ANY_TAG *)
  req_key : int;  (** packed exact (src, tag), [-1] when wildcarded *)
  req_bytes : int;
  req_loc : Loc.t;
  req_callpath : Loc.t list;
  mutable completed : bool;  (** tombstone in the posted queue *)
  mutable completion : float;
  mutable matched : message;  (** [nil_message] = none *)
  mutable waiter : int;
      (** rank blocked on this request, [-1] = none; owned by the
          scheduler *)
}

(** Wildcard sentinels for [want_src]/[want_tag]. *)
val any_src : int

val any_tag : int

(** Sentinels standing in for "no message" / "no request"; compare with
    [==]. *)
val nil_message : message

val nil_request : request

(** [matched] is a real message (receive side of a completed match). *)
val has_matched : request -> bool

(** Flat queue with tombstoned removal; exposed for [pending_summary]
    consumers and the benchmarks. *)
type 'a dq = {
  mutable buf : 'a array;
  mutable head : int;
  mutable tail : int;
  dummy : 'a;
}

type t = {
  net : Network.t;
  nprocs : int;
  unexpected : message dq array;
  posted : request dq array;
  colls : (int, coll) Hashtbl.t;  (** in-flight instances only *)
  mutable msg_seq : int;
  mutable req_seq : int;
  mutable on_complete : request -> unit;
  mutable messages_sent : int;
  mutable bytes_sent : float;
}

and coll = {
  coll_seq : int;
  coll_kind : Ast.mpi_call;
  coll_bytes : int;
  mutable n_arrived : int;
  mutable max_arrival : float;
      (** latest arrival seen so far (running accumulator) *)
  mutable finished : bool;
  mutable start_time : float;
  mutable finish_time : float;
  mutable last_arrival_rank : int;
  mutable waiters : int list;
      (** blocked ranks, newest first; owned by the scheduler *)
}

val create : net:Network.t -> nprocs:int -> t

(** Install the scheduler callback fired whenever a request completes. *)
val set_on_complete : t -> (request -> unit) -> unit

(** Post a send; the returned request is already completed for eager
    messages. Raises [Invalid_argument] on an out-of-range destination. *)
val send :
  t ->
  src:int ->
  dst:int ->
  tag:int ->
  bytes:int ->
  time:float ->
  loc:Loc.t ->
  callpath:Loc.t list ->
  request

(** Post a receive ([src]/[tag] may be {!any_src}/{!any_tag}); already
    completed when a matching unexpected message was waiting. *)
val post_recv :
  t ->
  rank:int ->
  src:int ->
  tag:int ->
  bytes:int ->
  time:float ->
  loc:Loc.t ->
  callpath:Loc.t list ->
  request

(** Register [rank]'s arrival at its [seq]-th collective; the last
    arrival finalizes the instance (start/finish set, [finished] true)
    and drops it from the in-flight table.  Raises [Invalid_argument]
    on mismatched collective kinds. *)
val coll_arrive :
  t -> seq:int -> rank:int -> time:float -> kind:Ast.mpi_call -> bytes:int -> coll

(** Human-readable dump of pending receives/messages, for deadlock
    reports. *)
val pending_summary : t -> string
