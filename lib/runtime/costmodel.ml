(* Computation cost model.

   Maps a workload descriptor (flops, load/store count, other
   instructions, locality) to retired-counter values and execution time on
   a given core.  Per-core speed heterogeneity — the Nekbone case's
   "memory access speed of each processor core differs" — is modeled as a
   deterministic per-rank multiplier on memory service time. *)

open Scalana_mlang

type t = {
  ghz : float;  (* core clock, cycles per nanosecond *)
  ipc : float;  (* retired instructions per cycle when hitting cache *)
  cache_miss_penalty : float;  (* extra cycles per missing access *)
  core_speed : int -> float;
      (* per-rank multiplier on memory service time; 1.0 = nominal *)
}

let default =
  {
    ghz = 2.5;
    ipc = 2.0;
    cache_miss_penalty = 120.0;
    core_speed = (fun _ -> 1.0);
  }

(* Deterministic heterogeneity with a heavy tail: most cores carry a
   small jitter, one core in sixteen serves memory [spread] slower (a
   slow DIMM / far NUMA node).  Small jobs are likely to land on fast
   cores only, so the scaling loss grows with the process count — the
   Nekbone case's shape. *)
let heterogeneous ?(spread = 1.0) () =
  let speed rank =
    let h = ((rank * 2654435761) + 98765) asr 4 land 0xffff in
    if h mod 16 = 13 then 1.0 +. spread
    else 1.0 +. (0.06 *. float_of_int (h mod 8) /. 8.0)
  in
  { default with core_speed = speed }

(* Evaluate already-computed workload counts on [rank]: returns wall
   seconds and writes the five PMU counters into [counters]
   (tot_ins, tot_lst_ins, tot_cyc, cache_miss, fp_ins — the field order
   of [Pmu.t]).  The allocation-free core shared by the interpreter's
   hot path (which accumulates counters into per-rank arrays) and the
   record-returning [comp_cost] below; the arithmetic sequence is the
   model's contract and must not be reassociated. *)
let comp_cost_into t ~rank ~flops ~mem ~ints ~locality ~counters =
  let flops = float_of_int (max 0 flops) in
  let mem = float_of_int (max 0 mem) in
  let ints = float_of_int (max 0 ints) in
  let misses = mem *. (1.0 -. locality) in
  let tot_ins = flops +. mem +. ints in
  let base_cycles = tot_ins /. t.ipc in
  let miss_cycles = misses *. t.cache_miss_penalty *. t.core_speed rank in
  let tot_cyc = base_cycles +. miss_cycles in
  let seconds = tot_cyc /. (t.ghz *. 1e9) in
  counters.(0) <- tot_ins;
  counters.(1) <- mem;
  counters.(2) <- tot_cyc;
  counters.(3) <- misses;
  counters.(4) <- flops;
  seconds

(* Cost of re-touching [bytes] of repartitioned state on [rank] after an
   elastic membership change: a memory-bound pass at cache-line
   granularity, served at the rank's own memory speed — so a slow core
   stretches the whole recovery, exactly like it stretches a compute
   block.  Used by the elastic recovery protocol (Elastic.recover). *)
let repartition_cost t ~rank ~bytes =
  let lines = float_of_int (max 0 bytes) /. 64.0 in
  lines *. t.cache_miss_penalty *. t.core_speed rank /. (t.ghz *. 1e9)

(* Evaluate a workload on [rank]: returns wall seconds and counters. *)
let comp_cost t ~rank ~(env : Expr.env) (w : Ast.workload) =
  let flops = Expr.eval env w.flops in
  let mem = Expr.eval env w.mem in
  let ints = Expr.eval env w.ints in
  let counters = Array.make 5 0.0 in
  let seconds =
    comp_cost_into t ~rank ~flops ~mem ~ints ~locality:w.locality ~counters
  in
  let pmu =
    {
      Pmu.tot_ins = counters.(0);
      tot_lst_ins = counters.(1);
      tot_cyc = counters.(2);
      cache_miss = counters.(3);
      fp_ins = counters.(4);
    }
  in
  (seconds, pmu)
