(** Computation cost model: maps a workload descriptor to wall time and
    PMU counters on a given core. *)

open Scalana_mlang

type t = {
  ghz : float;  (** core clock in GHz *)
  ipc : float;  (** retired instructions per cycle on cache hits *)
  cache_miss_penalty : float;  (** extra cycles per missing access *)
  core_speed : int -> float;
      (** per-rank multiplier on memory service time (1.0 = nominal) *)
}

val default : t

(** Heavy-tailed heterogeneity: most cores carry a small jitter, one in
    sixteen serves memory [spread] slower — small jobs land on fast cores
    only, so the loss grows with scale (the Nekbone case's shape). *)
val heterogeneous : ?spread:float -> unit -> t

(** Seconds [rank] spends re-touching [bytes] of repartitioned state
    after an elastic membership change: a memory-bound pass at
    cache-line granularity at the rank's own memory speed.  The
    repartitioning-cost event of the elastic recovery protocol. *)
val repartition_cost : t -> rank:int -> bytes:int -> float

(** Allocation-free core of {!comp_cost} for callers that already
    evaluated the workload counts: returns wall seconds and writes the
    five PMU counters into [counters] (length >= 5, in [Pmu.t] field
    order: tot_ins, tot_lst_ins, tot_cyc, cache_miss, fp_ins). *)
val comp_cost_into :
  t ->
  rank:int ->
  flops:int ->
  mem:int ->
  ints:int ->
  locality:float ->
  counters:float array ->
  float

(** [comp_cost t ~rank ~env w] — wall seconds and counters for one
    execution of workload [w] on [rank]. *)
val comp_cost : t -> rank:int -> env:Expr.env -> Ast.workload -> float * Pmu.t
