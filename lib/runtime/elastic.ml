(* Elastic execution: ULFM-style shrink and grow of the simulated job.

   A fixed-nprocs simulator run compiles the job scale into the program
   IR, so the process count cannot change *inside* one [Exec.run].
   Elasticity is therefore modeled the way checkpoint-based MPI codes
   actually do it: the program declares its iteration range as
   parameters, and an elastic session is a sequence of *membership
   epochs* — one simulator run per epoch, each at its own communicator
   size, stitched together by a seeded recovery protocol at every
   membership boundary:

   - shrink: a rank fails at an iteration boundary; its surviving peers
     each detect the failure after a seeded timeout (the failure
     detector's jitter, drawn from the same splitmix64 family as every
     other fault), agree on the shrunk communicator in O(log p) rounds,
     and repartition the departed rank's state — an explicit
     repartitioning-cost event priced by {!Costmodel.repartition_cost}
     plus the network transfer of the migrated bytes;

   - grow: fresh ranks join at a program-declared rebalance point,
     receive their migrated share of the state, and the next epoch runs
     on the enlarged communicator.

   Everything is deterministic: same (plan, nprocs) ⇒ same membership
   timeline ⇒ the same epochs, recovery costs and stalls, byte for
   byte.  Ranks keep *global* identities across the whole session (an
   epoch's local rank [l] is global rank [members.(l)]), so profiles of
   different epochs merge into one per-global-rank artifact. *)

type change = Leave of { rank : int } | Join of { count : int }

type event = { at_iter : int; change : change }

type plan = {
  seed : int;
  total_iters : int;
  lo_param : string;  (* program parameter naming the first iteration *)
  hi_param : string;  (* one past the last iteration *)
  state_bytes : int;  (* per-rank partition migrated on a change *)
  detect_timeout : float;  (* failure-detector base timeout, seconds *)
  events : event list;
}

let plan ?(seed = 42) ?(lo_param = "iter_lo") ?(hi_param = "iter_hi")
    ?(state_bytes = 1 lsl 20) ?(detect_timeout = 1e-3) ~total_iters events =
  if total_iters < 1 then invalid_arg "Elastic.plan: total_iters must be >= 1";
  { seed; total_iters; lo_param; hi_param; state_bytes; detect_timeout; events }

let shrink_at ~iter ~rank = { at_iter = iter; change = Leave { rank } }
let grow_at ~iter ~ranks = { at_iter = iter; change = Join { count = ranks } }

(* --- membership timeline --- *)

type epoch = {
  e_index : int;
  e_lo : int;  (* iteration range [e_lo, e_hi) this epoch covers *)
  e_hi : int;
  e_members : int array;  (* local rank -> global rank id, ascending *)
  e_left : int list;  (* global ids that left at the boundary entering *)
  e_joined : int list;  (* global ids that joined at that boundary *)
}

(* Derive the epochs of one session.  Events are applied at their
   (clamped) iteration boundary; several events at the same boundary
   fold into one membership change.  A leave of a rank not currently
   present is ignored — the plan stays valid at every scale. *)
let membership t ~nprocs =
  if nprocs < 1 then invalid_arg "Elastic.membership: nprocs must be >= 1";
  let boundaries =
    List.filter_map
      (fun e ->
        let it = e.at_iter in
        if it <= 0 || it >= t.total_iters then None else Some it)
      t.events
    |> List.sort_uniq compare
  in
  let members = ref (List.init nprocs Fun.id) in
  let next_id = ref nprocs in
  let epochs = ref [] in
  let idx = ref 0 in
  let lo = ref 0 in
  let pending_left = ref [] and pending_joined = ref [] in
  let emit hi =
    (* keep an epoch only when at least one rank remains to run it *)
    if !members <> [] && hi > !lo then begin
      epochs :=
        {
          e_index = !idx;
          e_lo = !lo;
          e_hi = hi;
          e_members = Array.of_list !members;
          e_left = List.rev !pending_left;
          e_joined = List.rev !pending_joined;
        }
        :: !epochs;
      incr idx;
      pending_left := [];
      pending_joined := []
    end;
    lo := hi
  in
  List.iter
    (fun boundary ->
      let left = ref [] and joined = ref [] in
      let mem = ref !members in
      List.iter
        (fun e ->
          if e.at_iter = boundary then
            match e.change with
            | Leave { rank } ->
                if List.mem rank !mem then begin
                  mem := List.filter (fun g -> g <> rank) !mem;
                  left := rank :: !left
                end
            | Join { count } ->
                for _ = 1 to max 0 count do
                  mem := !mem @ [ !next_id ];
                  joined := !next_id :: !joined;
                  incr next_id
                done)
        t.events;
      (* a boundary where membership does not actually change (e.g. a
         leave of a rank this scale never had) splits no epoch *)
      if !left <> [] || !joined <> [] then begin
        emit boundary;
        members := !mem;
        pending_left := !left;
        pending_joined := !joined
      end)
    boundaries;
  emit t.total_iters;
  (List.rev !epochs, !next_id)

let total_ranks t ~nprocs = snd (membership t ~nprocs)

let is_static t ~nprocs =
  match fst (membership t ~nprocs) with [ _ ] | [] -> true | _ -> false

(* --- the recovery protocol at one membership boundary --- *)

type recovery = {
  r_iter : int;  (* the boundary iteration *)
  r_left : int list;
  r_joined : int list;
  r_detect : float;  (* window until the last survivor detected *)
  r_agree : float;  (* shrink/join agreement on the new communicator *)
  r_repartition : float;  (* slowest rank's state migration + re-touch *)
  r_stalls : (int * float) list;
      (* surviving global rank -> seconds stalled in recovery *)
  r_end : float;  (* absolute simulated time the next epoch starts at *)
}

(* Seeded per-rank failure-detection delay: the base timeout plus up to
   one extra timeout of deterministic jitter, keyed like every other
   fault draw. *)
let detection_delay t ~nprocs ~iter ~rank =
  t.detect_timeout
  *. (1.0 +. Faults.draw [ t.seed; iter; nprocs; rank; 0x31ec ])

(* Run the recovery protocol entering the epoch whose members are
   [members]: [finish] gives the previous epoch's per-global-rank finish
   times, [left]/[joined] the membership change at this boundary. *)
let recover t ~(cost : Costmodel.t) ~(net : Network.t) ~nprocs ~iter ~left
    ~joined ~(members : int array) ~finish =
  let survivors =
    List.filter (fun (g, _) -> not (List.mem g left)) finish
  in
  let new_np = Array.length members in
  (* a shrink is *detected*; a grow is a planned rebalance with no
     failure-detection window *)
  let ready =
    List.map
      (fun (g, fin) ->
        if left <> [] then
          (g, fin +. detection_delay t ~nprocs ~iter ~rank:g)
        else (g, fin))
      survivors
  in
  let t_sync = List.fold_left (fun acc (_, r) -> Float.max acc r) 0.0 ready in
  let detect =
    List.fold_left
      (fun acc ((_, r), (_, fin)) -> Float.max acc (r -. fin))
      0.0
      (List.combine ready survivors)
  in
  (* agreement: a reduce + broadcast tree over the new communicator *)
  let agree =
    2.0 *. net.Network.latency *. float_of_int (Network.log2_ceil new_np)
  in
  (* repartition: the departed partitions (resp. the joiners' shares)
     move over the network and every member re-touches its share *)
  let moved = t.state_bytes * (List.length left + List.length joined) in
  let share = moved / max 1 new_np in
  let xfer = Network.transfer_time net share in
  let repartition =
    Array.fold_left
      (fun acc g ->
        Float.max acc (xfer +. Costmodel.repartition_cost cost ~rank:g ~bytes:share))
      0.0 members
  in
  let r_end = t_sync +. agree +. repartition in
  let r_stalls =
    List.map (fun (g, fin) -> (g, Float.max 0.0 (r_end -. fin))) survivors
  in
  {
    r_iter = iter;
    r_left = left;
    r_joined = joined;
    r_detect = detect;
    r_agree = agree;
    r_repartition = repartition;
    r_stalls;
    r_end;
  }

(* --- the session summary carried to detection and reporting --- *)

type epoch_info = {
  ei_nprocs : int;
  ei_lo : int;
  ei_hi : int;
  ei_members : int array;
  ei_t0 : float;  (* absolute simulated span of the epoch *)
  ei_t1 : float;
}

type info = {
  nominal : int;  (* the requested job scale *)
  n_ranks : int;  (* distinct global ranks over the whole session *)
  effective : float;  (* time-weighted mean membership *)
  elapsed : float;
  epoch_infos : epoch_info list;
  recoveries : recovery list;
}

(* Time-weighted mean membership over the epochs — the *effective*
   process count the log-log fits should see instead of the nominal
   scale. *)
let effective_nprocs epoch_infos =
  let num, den =
    List.fold_left
      (fun (num, den) e ->
        let d = Float.max 0.0 (e.ei_t1 -. e.ei_t0) in
        (num +. (float_of_int e.ei_nprocs *. d), den +. d))
      (0.0, 0.0) epoch_infos
  in
  if den > 0.0 then num /. den
  else
    match epoch_infos with
    | e :: _ -> float_of_int e.ei_nprocs
    | [] -> 0.0

let recovery_seconds i =
  List.fold_left
    (fun acc r -> acc +. r.r_detect +. r.r_agree +. r.r_repartition)
    0.0 i.recoveries

(* "0-3,5,7-8": members lists compressed into ranges for reports. *)
let compress_ranks (ranks : int array) =
  let n = Array.length ranks in
  let buf = Buffer.create 16 in
  let emit lo hi =
    if Buffer.length buf > 0 then Buffer.add_char buf ',';
    if lo = hi then Buffer.add_string buf (string_of_int lo)
    else Buffer.add_string buf (Printf.sprintf "%d-%d" lo hi)
  in
  let rec go i lo =
    if i >= n then emit lo ranks.(n - 1)
    else if ranks.(i) = ranks.(i - 1) + 1 then go (i + 1) lo
    else begin
      emit lo ranks.(i - 1);
      go (i + 1) ranks.(i)
    end
  in
  if n = 0 then "none"
  else begin
    go 1 ranks.(0);
    Buffer.contents buf
  end
