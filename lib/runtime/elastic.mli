(** Elastic execution: ULFM-style shrink and grow of the simulated job.

    An elastic session is a sequence of membership {i epochs} — one
    simulator run per epoch at its own communicator size — stitched
    together by a seeded recovery protocol at every membership boundary
    (failure detection + agreement + state repartitioning).  Same
    (plan, nprocs) ⇒ same membership timeline ⇒ byte-identical reports.
    Ranks keep global identities: an epoch's local rank [l] is global
    rank [members.(l)]. *)

type change = Leave of { rank : int } | Join of { count : int }

type event = { at_iter : int; change : change }

type plan = {
  seed : int;
  total_iters : int;
  lo_param : string;  (** program parameter naming the first iteration *)
  hi_param : string;  (** one past the last iteration *)
  state_bytes : int;  (** per-rank partition migrated on a change *)
  detect_timeout : float;  (** failure-detector base timeout, seconds *)
  events : event list;
}

val plan :
  ?seed:int ->
  ?lo_param:string ->
  ?hi_param:string ->
  ?state_bytes:int ->
  ?detect_timeout:float ->
  total_iters:int ->
  event list ->
  plan

(** Global rank [rank] fails at the boundary entering iteration [iter]. *)
val shrink_at : iter:int -> rank:int -> event

(** [ranks] fresh ranks join at the boundary entering iteration [iter]. *)
val grow_at : iter:int -> ranks:int -> event

type epoch = {
  e_index : int;
  e_lo : int;  (** iteration range [[e_lo, e_hi)] this epoch covers *)
  e_hi : int;
  e_members : int array;  (** local rank -> global rank id, ascending *)
  e_left : int list;  (** global ids that left at the boundary entering *)
  e_joined : int list;  (** global ids that joined at that boundary *)
}

(** The session's epochs at job scale [nprocs], and the total number of
    distinct global ranks (joiners get ids [nprocs], [nprocs+1], …).
    Events at iteration 0 or past the end are ignored; a leave of an
    absent rank is ignored, so one plan is valid at every scale. *)
val membership : plan -> nprocs:int -> epoch list * int

val total_ranks : plan -> nprocs:int -> int

(** No membership change actually fires at this scale. *)
val is_static : plan -> nprocs:int -> bool

type recovery = {
  r_iter : int;  (** the boundary iteration *)
  r_left : int list;
  r_joined : int list;
  r_detect : float;  (** window until the last survivor detected *)
  r_agree : float;  (** agreement on the new communicator *)
  r_repartition : float;  (** slowest rank's migration + re-touch *)
  r_stalls : (int * float) list;
      (** surviving global rank -> seconds stalled in recovery *)
  r_end : float;  (** absolute time the next epoch starts at *)
}

(** Seeded failure-detection delay of survivor [rank] at boundary
    [iter]: base timeout plus up to one timeout of deterministic jitter
    drawn from the fault generator family. *)
val detection_delay : plan -> nprocs:int -> iter:int -> rank:int -> float

(** Run the recovery protocol entering the epoch whose members are
    [members]: [finish] gives the previous epoch's per-global-rank
    absolute finish times, [left]/[joined] the membership change.  For a
    shrink every survivor first waits out its detection delay; a grow is
    a planned rebalance with no detection window.  Then agreement
    (a reduce + broadcast tree over the new communicator) and
    repartitioning (network transfer of the moved share plus
    {!Costmodel.repartition_cost} on the slowest member). *)
val recover :
  plan ->
  cost:Costmodel.t ->
  net:Network.t ->
  nprocs:int ->
  iter:int ->
  left:int list ->
  joined:int list ->
  members:int array ->
  finish:(int * float) list ->
  recovery

type epoch_info = {
  ei_nprocs : int;
  ei_lo : int;
  ei_hi : int;
  ei_members : int array;
  ei_t0 : float;  (** absolute simulated span of the epoch *)
  ei_t1 : float;
}

(** Summary of one elastic session, carried on the profiling run record
    into detection and reporting.  Marshal-safe (no closures). *)
type info = {
  nominal : int;  (** the requested job scale *)
  n_ranks : int;  (** distinct global ranks over the whole session *)
  effective : float;  (** time-weighted mean membership *)
  elapsed : float;
  epoch_infos : epoch_info list;
  recoveries : recovery list;
}

(** Time-weighted mean membership — the effective process count the
    log-log fits should see instead of the nominal scale. *)
val effective_nprocs : epoch_info list -> float

(** Total protocol time (detection + agreement + repartitioning) summed
    over the session's recoveries. *)
val recovery_seconds : info -> float

(** ["0-3,5,7-8"] — a sorted rank array compressed into ranges;
    ["none"] when empty. *)
val compress_ranks : int array -> string
