(* Discrete-event MPI runtime: interprets a MiniMPI program on [nprocs]
   simulated processes.

   Each simulated process runs as an effect-based fiber with its own local
   clock; blocking operations perform a [Block] effect and the scheduler
   resumes the process when the awaited requests or collective complete.
   Processes are scheduled lowest-clock-first, which makes wildcard
   message matching deterministic and causally plausible.  Instrumentation
   tools observe compute intervals and MPI enter/exit events and charge
   their own overhead onto the process clocks — the same interposition
   structure as PAPI sampling plus PMPI.

   The engine is built for np = 4096+ runs: programs are compiled once
   per run into an IR whose variables, parameters and request names are
   integer slots (see [Expr.Compiled]); per-process state lives in flat
   struct-of-arrays so a 16k-rank run costs 16k floats per metric, not
   16k records; and the steady-state interpreter loop allocates nothing
   on statement execution.  Every float operation is sequenced exactly as
   the original interpreter sequenced it — simulated times are preserved
   to the last ulp, and the scheduler-heap tie order is untouched, so
   results (and the golden reports derived from them) are byte-identical
   to the reference engine.  Instrumentation hooks and callpath
   maintenance are skipped entirely when no tool is attached: a bare run
   pays nothing for the observability layer. *)

open Scalana_mlang
module C = Expr.Compiled

exception Deadlock of string
exception Runtime_error of { loc : Loc.t; msg : string }

let runtime_error ~loc fmt =
  Fmt.kstr (fun msg -> raise (Runtime_error { loc; msg })) fmt

type config = {
  nprocs : int;
  params : (string * int) list;  (* overrides of the program defaults *)
  cost : Costmodel.t;
  net : Network.t;
  inject : Inject.t;
  faults : Faults.armed;
  tools : Instrument.t list;
  max_events : int;
  clock0 : float;  (* absolute time the ranks start at (elastic epochs) *)
}

let config ?(params = []) ?(cost = Costmodel.default) ?(net = Network.default)
    ?(inject = Inject.empty) ?(faults = Faults.none) ?(tools = [])
    ?(max_events = 500_000_000) ?(clock0 = 0.0) ~nprocs () =
  if nprocs < 1 then invalid_arg "Exec.config: nprocs must be >= 1";
  if not (Float.is_finite clock0) || clock0 < 0.0 then
    invalid_arg "Exec.config: clock0 must be finite and >= 0";
  { nprocs; params; cost; net; inject; faults; tools; max_events; clock0 }

type result = {
  elapsed : float;  (* latest rank finish time, tool overhead included *)
  rank_finish : float array;
  comp_seconds : float array;
  mpi_seconds : float array;
  wait_seconds : float array;
  comp_pmu : Pmu.t array;
  events : int;
  messages : int;
  killed_ranks : int list;  (* ranks an injected fault terminated *)
  stranded_ranks : int list;  (* ranks left blocked by a killed peer *)
}

(* --- compiled program IR ---

   Built once per run (the job scale and parameter values are per-run
   constants, so [Expr.Compiled] folds them away).  Variables and
   request names are slots into per-frame arrays; direct and indirect
   call targets are resolved to compiled functions at load time, with
   unresolved names kept as lazy error nodes so "call to undefined
   function" still surfaces only if the call executes, as before. *)

type cfunc = {
  cf_name : string;
  cf_nvars : int;
  cf_nreqs : int;
  mutable cf_body : cstmt array;  (* filled after creation: recursion *)
}

and cstmt = { sloc : Loc.t; snode : cnode }

and cnode =
  | KLet of { slot : int; value : C.expr }
  | KComp of {
      flops : C.expr;
      mem : C.expr;
      ints : C.expr;
      locality : float;
      label : string option;
    }
  | KLoop of { slot : int; count : C.expr; body : cstmt array }
  | KBranch of { cond : C.expr; then_ : cstmt array; else_ : cstmt array }
  | KCall of { callee : cfunc; args : (int * C.expr) array }
      (* args: (callee var slot, caller-frame expression) *)
  | KCall_undef of string
  | KIcall of { selector : C.expr; targets : (string * cfunc option) array }
  | KMpi of { ast : Ast.mpi_call; op : cmpi }

and cmpi =
  | KSend of { dest : C.expr; tag : C.expr; bytes : C.expr }
  | KRecv of { src : cpeer; tag : ctag; bytes : C.expr }
  | KIsend of { dest : C.expr; tag : C.expr; bytes : C.expr; slot : int }
  | KIrecv of { src : cpeer; tag : ctag; bytes : C.expr; slot : int }
  | KWait of { slot : int; name : string }
  | KWaitall of { slots : (int * string) array }
  | KSendrecv of {
      dest : C.expr;
      stag : C.expr;
      sbytes : C.expr;
      src : cpeer;
      rtag : ctag;
      rbytes : C.expr;
    }
  | KColl of { bytes : C.expr }

and cpeer = KPAny | KPeer of C.expr
and ctag = KTAny | KTag of C.expr

(* Per-function-activation frame: variable slots (inside the compiled
   env) and request slots. *)
type frame = { fenv : C.env; freqs : Comm.request array }

(* --- program compilation --- *)

type fslots = {
  vtbl : (string, int) Hashtbl.t;
  mutable vnext : int;
  rtbl : (string, int) Hashtbl.t;
  mutable rnext : int;
}

let vslot fs name =
  match Hashtbl.find_opt fs.vtbl name with
  | Some i -> i
  | None ->
      let i = fs.vnext in
      fs.vnext <- i + 1;
      Hashtbl.replace fs.vtbl name i;
      i

let rslot fs name =
  match Hashtbl.find_opt fs.rtbl name with
  | Some i -> i
  | None ->
      let i = fs.rnext in
      fs.rnext <- i + 1;
      Hashtbl.replace fs.rtbl name i;
      i

let merge_params (program : Ast.program) overrides =
  List.map
    (fun (name, default) ->
      match List.assoc_opt name overrides with
      | Some v -> (name, v)
      | None -> (name, default))
    program.params
  @ List.filter
      (fun (name, _) -> not (List.mem_assoc name program.params))
      overrides

(* Compile [program] at one (nprocs, params) point; returns the main
   function.  Duplicate function names keep first-definition-wins
   resolution. *)
let compile_program ~nprocs ~params (program : Ast.program) =
  let funcs =
    List.fold_left
      (fun acc (f : Ast.func) ->
        if List.exists (fun (g : Ast.func) -> g.fname = f.fname) acc then acc
        else f :: acc)
      [] program.funcs
    |> List.rev
  in
  let slots : (string, fslots) Hashtbl.t = Hashtbl.create 16 in
  (* pass 1: per-function slots for params, loop/let vars, requests *)
  List.iter
    (fun (f : Ast.func) ->
      let fs =
        {
          vtbl = Hashtbl.create 8;
          vnext = 0;
          rtbl = Hashtbl.create 4;
          rnext = 0;
        }
      in
      Hashtbl.replace slots f.fname fs;
      List.iter (fun p -> ignore (vslot fs p)) f.fparams;
      Ast.iter_stmts
        (fun st ->
          match st.Ast.node with
          | Ast.Let { var; _ } -> ignore (vslot fs var)
          | Ast.Loop l -> ignore (vslot fs l.var)
          | Ast.Mpi
              ( Ast.Isend { req; _ }
              | Ast.Irecv { req; _ }
              | Ast.Wait { req } ) ->
              ignore (rslot fs req)
          | Ast.Mpi (Ast.Waitall { reqs }) ->
              List.iter (fun r -> ignore (rslot fs r)) reqs
          | _ -> ())
        f.fbody)
    funcs;
  (* pass 2: call-site argument names become slots of the callee (the
     interpreter binds whatever names a call site passes) *)
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_stmts
        (fun st ->
          match st.Ast.node with
          | Ast.Call { callee; args } -> (
              match Hashtbl.find_opt slots callee with
              | Some cfs -> List.iter (fun (n, _) -> ignore (vslot cfs n)) args
              | None -> ())
          | _ -> ())
        f.fbody)
    funcs;
  (* pass 3: create the (cyclic) function records, then compile bodies *)
  let cmap : (string, cfunc) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      let fs = Hashtbl.find slots f.fname in
      Hashtbl.replace cmap f.fname
        {
          cf_name = f.fname;
          cf_nvars = fs.vnext;
          cf_nreqs = fs.rnext;
          cf_body = [||];
        })
    funcs;
  let param name = List.assoc_opt name params in
  let compile_func (f : Ast.func) =
    let fs = Hashtbl.find slots f.fname in
    let var_slot name =
      match Hashtbl.find_opt fs.vtbl name with Some i -> i | None -> -1
    in
    let ce e = C.compile ~nprocs ~param ~var_slot e in
    let cpeer = function
      | Ast.Any_source -> KPAny
      | Ast.Peer e -> KPeer (ce e)
    in
    let ctag = function Ast.Any_tag -> KTAny | Ast.Tag e -> KTag (ce e) in
    let cmpi (c : Ast.mpi_call) =
      match c with
      | Ast.Send { dest; tag; bytes } ->
          KSend { dest = ce dest; tag = ce tag; bytes = ce bytes }
      | Ast.Recv { src; tag; bytes } ->
          KRecv { src = cpeer src; tag = ctag tag; bytes = ce bytes }
      | Ast.Isend { dest; tag; bytes; req } ->
          KIsend
            { dest = ce dest; tag = ce tag; bytes = ce bytes;
              slot = rslot fs req }
      | Ast.Irecv { src; tag; bytes; req } ->
          KIrecv
            { src = cpeer src; tag = ctag tag; bytes = ce bytes;
              slot = rslot fs req }
      | Ast.Wait { req } -> KWait { slot = rslot fs req; name = req }
      | Ast.Waitall { reqs } ->
          KWaitall
            { slots =
                Array.of_list (List.map (fun r -> (rslot fs r, r)) reqs) }
      | Ast.Sendrecv { dest; stag; sbytes; src; rtag; rbytes } ->
          KSendrecv
            { dest = ce dest; stag = ce stag; sbytes = ce sbytes;
              src = cpeer src; rtag = ctag rtag; rbytes = ce rbytes }
      | Ast.Barrier -> KColl { bytes = ce (Expr.Int 0) }
      | Ast.Bcast { bytes; _ }
      | Ast.Reduce { bytes; _ }
      | Ast.Allreduce { bytes }
      | Ast.Alltoall { bytes }
      | Ast.Allgather { bytes } ->
          KColl { bytes = ce bytes }
    in
    let rec cstmts stmts = Array.of_list (List.map cstmt stmts)
    and cstmt (st : Ast.stmt) =
      let node =
        match st.node with
        | Ast.Let { var; value } ->
            KLet { slot = Hashtbl.find fs.vtbl var; value = ce value }
        | Ast.Comp w ->
            KComp
              { flops = ce w.flops; mem = ce w.mem; ints = ce w.ints;
                locality = w.locality; label = w.label }
        | Ast.Loop l ->
            KLoop
              { slot = Hashtbl.find fs.vtbl l.var; count = ce l.count;
                body = cstmts l.body }
        | Ast.Branch b ->
            KBranch
              { cond = ce b.cond; then_ = cstmts b.then_;
                else_ = cstmts b.else_ }
        | Ast.Call { callee; args } -> (
            match Hashtbl.find_opt cmap callee with
            | None -> KCall_undef callee
            | Some cf ->
                let cfs = Hashtbl.find slots callee in
                KCall
                  { callee = cf;
                    args =
                      Array.of_list
                        (List.map
                           (fun (n, e) -> (Hashtbl.find cfs.vtbl n, ce e))
                           args) })
        | Ast.Icall { selector; targets } ->
            KIcall
              { selector = ce selector;
                targets =
                  Array.of_list
                    (List.map (fun n -> (n, Hashtbl.find_opt cmap n)) targets) }
        | Ast.Mpi c -> KMpi { ast = c; op = cmpi c }
      in
      { sloc = st.loc; snode = node }
    in
    (Hashtbl.find cmap f.fname).cf_body <- cstmts f.fbody
  in
  List.iter compile_func funcs;
  match Hashtbl.find_opt cmap program.main with
  | Some f -> f
  | None -> raise (Ast.Unknown_function program.main)

(* --- scheduler plumbing --- *)

(* What a blocked process is waiting for; [Wake_two] covers sendrecv
   without an array allocation. *)
type wake =
  | Wake_none
  | Wake_one of Comm.request
  | Wake_two of Comm.request * Comm.request
  | Wake_many of Comm.request array
  | Wake_coll of Comm.coll

type _ Effect.t += Block : float Effect.t

(* status codes *)
let st_not_started = 0
let st_ready = 1
let st_running = 2
let st_blocked = 3
let st_finished = 4

(* Per-process state in struct-of-arrays layout, indexed by rank. *)
type sched = {
  cfg : config;
  cmain : cfunc;
  has_tools : bool;
  inject_on : bool;
  comm : Comm.t;
  nprocs : int;
  net : Network.t;
  clock : float array;
  blocked_since : float array;
  comp_sec : float array;
  mpi_sec : float array;
  wait_sec : float array;
  pmu_tot_ins : float array;
  pmu_tot_lst : float array;
  pmu_tot_cyc : float array;
  pmu_miss : float array;
  pmu_fp : float array;
  coll_seqs : int array;
  status : int array;
  conts : (float, unit) Effect.Deep.continuation option array;
  resume_at : float array;
  wakes : wake array;
  callpaths : Loc.t list array;  (* maintained only when has_tools *)
  kill_at : float array;  (* infinity = no kill fault armed *)
  comp_scale : float array;
  scratch : float array;  (* 5 slots for Costmodel.comp_cost_into *)
  ready : Heap.t;
  mutable events : int;
  mutable killed : int list;  (* ranks terminated by an injected fault *)
}

(* Internal: unwinds a fiber whose rank an armed fault has terminated. *)
exception Rank_killed

let make_ready s rank resume =
  s.status.(rank) <- st_ready;
  s.resume_at.(rank) <- resume;
  Heap.push s.ready resume rank

(* Called from Comm whenever a request completes: if the owning process
   is blocked and all of its awaited requests are now complete, wake it
   at the latest completion (but no earlier than when it blocked). *)
let on_request_complete s (req : Comm.request) =
  let rank = req.Comm.waiter in
  if rank >= 0 then begin
    req.Comm.waiter <- -1;
    if s.status.(rank) = st_blocked then
      match s.wakes.(rank) with
      | Wake_one r ->
          if r.Comm.completed then
            make_ready s rank (Float.max s.blocked_since.(rank) r.completion)
      | Wake_two (r1, r2) ->
          if r1.Comm.completed && r2.Comm.completed then
            make_ready s rank
              (Float.max
                 (Float.max s.blocked_since.(rank) r1.Comm.completion)
                 r2.Comm.completion)
      | Wake_many rs ->
          if Array.for_all (fun (r : Comm.request) -> r.completed) rs then
            make_ready s rank
              (Array.fold_left
                 (fun acc (r : Comm.request) -> Float.max acc r.completion)
                 s.blocked_since.(rank) rs)
      | Wake_coll _ | Wake_none -> ()
  end

let wake_collective s (c : Comm.coll) =
  List.iter
    (fun rank ->
      if s.status.(rank) = st_blocked then
        match s.wakes.(rank) with
        | Wake_coll c' when c'.Comm.coll_seq = c.Comm.coll_seq ->
            make_ready s rank c.Comm.finish_time
        | _ -> ())
    c.Comm.waiters;
  c.Comm.waiters <- []

(* --- interpretation --- *)

let ceval (env : C.env) ~loc e =
  try C.eval env e with Expr.Eval_error msg -> runtime_error ~loc "%s" msg

let eval_peer (env : C.env) ~loc = function
  | KPAny -> Comm.any_src
  | KPeer e -> ceval env ~loc e

let eval_tag (env : C.env) ~loc = function
  | KTAny -> Comm.any_tag
  | KTag e -> ceval env ~loc e

let ctx_of s rank ~loc =
  {
    Instrument.rank;
    time = s.clock.(rank);
    loc;
    callpath = s.callpaths.(rank);
  }

let tool_sum cfg f = List.fold_left (fun acc tool -> acc +. f tool) 0.0 cfg.tools

(* Wait until [r] has completed, advancing the clock to the completion
   (each await computes the same fold the reference engine did). *)
let await_one s rank (r : Comm.request) =
  let resume =
    if r.Comm.completed then Float.max s.clock.(rank) r.Comm.completion
    else begin
      s.blocked_since.(rank) <- s.clock.(rank);
      s.wakes.(rank) <- Wake_one r;
      Effect.perform Block
    end
  in
  s.clock.(rank) <- Float.max s.clock.(rank) resume

let await_two s rank (r1 : Comm.request) (r2 : Comm.request) =
  let resume =
    if r1.Comm.completed && r2.Comm.completed then
      Float.max
        (Float.max s.clock.(rank) r1.Comm.completion)
        r2.Comm.completion
    else begin
      s.blocked_since.(rank) <- s.clock.(rank);
      s.wakes.(rank) <- Wake_two (r1, r2);
      Effect.perform Block
    end
  in
  s.clock.(rank) <- Float.max s.clock.(rank) resume

let await_many s rank (rs : Comm.request array) =
  let resume =
    if Array.for_all (fun (r : Comm.request) -> r.completed) rs then
      Array.fold_left
        (fun acc (r : Comm.request) -> Float.max acc r.completion)
        s.clock.(rank) rs
    else begin
      s.blocked_since.(rank) <- s.clock.(rank);
      s.wakes.(rank) <- Wake_many rs;
      Effect.perform Block
    end
  in
  s.clock.(rank) <- Float.max s.clock.(rank) resume

let dep_of_req (r : Comm.request) =
  if Comm.has_matched r && r.Comm.req_kind = `Recv then
    let m = r.Comm.matched in
    [
      {
        Instrument.peer_rank = m.Comm.msg_src;
        peer_loc = m.Comm.send_loc;
        peer_callpath = m.Comm.send_callpath;
        dep_tag = m.Comm.msg_tag;
        dep_bytes = m.Comm.msg_bytes;
        send_time = m.Comm.send_time;
        arrival_time = r.Comm.completion;
      };
    ]
  else []

let get_req (frame : frame) ~loc slot name =
  let r = frame.freqs.(slot) in
  if r == Comm.nil_request then
    runtime_error ~loc "wait on unposted request %S" name
  else r

let no_vars : int array = [||]
let no_reqs : Comm.request array = [||]

let new_frame rank (f : cfunc) =
  {
    fenv =
      {
        C.c_rank = rank;
        c_vars = (if f.cf_nvars = 0 then no_vars else Array.make f.cf_nvars 0);
        c_bound =
          (if f.cf_nvars = 0 then Bytes.empty else Bytes.make f.cf_nvars '\000');
      };
    freqs =
      (if f.cf_nreqs = 0 then no_reqs
       else Array.make f.cf_nreqs Comm.nil_request);
  }

(* Accumulate one computation interval into the per-rank SoA state.
   Field-by-field addition in [Pmu.t] order — identical float sums to
   the reference engine's [Pmu.add]. *)
let accum_comp s rank seconds =
  s.clock.(rank) <- s.clock.(rank) +. seconds;
  s.comp_sec.(rank) <- s.comp_sec.(rank) +. seconds;
  s.pmu_tot_ins.(rank) <- s.pmu_tot_ins.(rank) +. s.scratch.(0);
  s.pmu_tot_lst.(rank) <- s.pmu_tot_lst.(rank) +. s.scratch.(1);
  s.pmu_tot_cyc.(rank) <- s.pmu_tot_cyc.(rank) +. s.scratch.(2);
  s.pmu_miss.(rank) <- s.pmu_miss.(rank) +. s.scratch.(3);
  s.pmu_fp.(rank) <- s.pmu_fp.(rank) +. s.scratch.(4)

let rec exec_block s rank frame (body : cstmt array) =
  for i = 0 to Array.length body - 1 do
    exec_stmt s rank frame (Array.unsafe_get body i)
  done

and exec_stmt s rank frame (st : cstmt) =
  let loc = st.sloc in
  s.events <- s.events + 1;
  if s.events > s.cfg.max_events then
    runtime_error ~loc "event budget exceeded (%d)" s.cfg.max_events;
  if s.clock.(rank) >= s.kill_at.(rank) then raise Rank_killed;
  match st.snode with
  | KLet { slot; value } ->
      let v = ceval frame.fenv ~loc value in
      frame.fenv.C.c_vars.(slot) <- v;
      Bytes.unsafe_set frame.fenv.C.c_bound slot '\001'
  | KComp { flops; mem; ints; locality; label } ->
      (* workload counts evaluate inside the cost model in the reference
         engine, so an Eval_error escapes unwrapped here too *)
      let fl = C.eval frame.fenv flops in
      let me = C.eval frame.fenv mem in
      let it = C.eval frame.fenv ints in
      let seconds =
        Costmodel.comp_cost_into s.cfg.cost ~rank ~flops:fl ~mem:me ~ints:it
          ~locality ~counters:s.scratch
      in
      let seconds = seconds *. s.comp_scale.(rank) in
      let seconds =
        if s.inject_on then
          seconds +. Inject.extra s.cfg.inject ~rank ~loc
        else seconds
      in
      if s.has_tools then begin
        let ctx = ctx_of s rank ~loc in
        accum_comp s rank seconds;
        let pmu =
          {
            Pmu.tot_ins = s.scratch.(0);
            tot_lst_ins = s.scratch.(1);
            tot_cyc = s.scratch.(2);
            cache_miss = s.scratch.(3);
            fp_ins = s.scratch.(4);
          }
        in
        let overhead =
          tool_sum s.cfg (fun tool ->
              tool.Instrument.on_interval ctx ~stop:s.clock.(rank)
                (Instrument.Compute { pmu; label }))
        in
        s.clock.(rank) <- s.clock.(rank) +. overhead
      end
      else accum_comp s rank seconds
  | KLoop { slot; count; body } ->
      let n = ceval frame.fenv ~loc count in
      if n > 0 then begin
        let vars = frame.fenv.C.c_vars in
        Bytes.unsafe_set frame.fenv.C.c_bound slot '\001';
        for i = 0 to n - 1 do
          Array.unsafe_set vars slot i;
          exec_block s rank frame body
        done
      end
  | KBranch { cond; then_; else_ } ->
      if ceval frame.fenv ~loc cond <> 0 then exec_block s rank frame then_
      else exec_block s rank frame else_
  | KCall { callee; args } -> call_function s rank ~site:loc callee args frame
  | KCall_undef name ->
      runtime_error ~loc "call to undefined function %S" name
  | KIcall { selector; targets } ->
      let n = Array.length targets in
      if n = 0 then runtime_error ~loc "indirect call with no targets";
      let sel = ceval frame.fenv ~loc selector in
      let idx = ((sel mod n) + n) mod n in
      let target, tf = targets.(idx) in
      if s.has_tools then begin
        let ctx = ctx_of s rank ~loc in
        let overhead =
          tool_sum s.cfg (fun tool -> tool.Instrument.on_icall ctx ~target)
        in
        s.clock.(rank) <- s.clock.(rank) +. overhead
      end;
      (match tf with
      | None ->
          runtime_error ~loc "indirect call to undefined function %S" target
      | Some f -> call_function s rank ~site:loc f [||] frame)
  | KMpi { ast; op } ->
      if s.has_tools then exec_mpi_tools s rank frame ~loc ast op
      else exec_mpi_fast s rank frame ~loc ast op

and call_function s rank ~site (f : cfunc) (args : (int * C.expr) array)
    (caller : frame) =
  let callee_frame = new_frame rank f in
  let nargs = Array.length args in
  for i = 0 to nargs - 1 do
    let slot, e = Array.unsafe_get args i in
    let v = ceval caller.fenv ~loc:site e in
    callee_frame.fenv.C.c_vars.(slot) <- v;
    Bytes.unsafe_set callee_frame.fenv.C.c_bound slot '\001'
  done;
  if s.has_tools then begin
    let saved = s.callpaths.(rank) in
    s.callpaths.(rank) <- saved @ [ site ];
    exec_block s rank callee_frame f.cf_body;
    s.callpaths.(rank) <- saved
  end
  else exec_block s rank callee_frame f.cf_body

(* MPI execution, bare path: no tool hooks are installed, so context
   records, dependence edges and callpaths are never materialized.  The
   clock/wait arithmetic is sequenced exactly as in the instrumented
   path (whose zero overheads this path elides). *)
and exec_mpi_fast s rank frame ~loc (ast : Ast.mpi_call) (op : cmpi) =
  let enter_time = s.clock.(rank) in
  let env = frame.fenv in
  let wait = ref 0.0 in
  (match op with
  | KSend { dest; tag; bytes } ->
      let dst = ceval env ~loc dest in
      let tag = ceval env ~loc tag in
      let bytes = ceval env ~loc bytes in
      let sreq =
        Comm.send s.comm ~src:rank ~dst ~tag ~bytes ~time:s.clock.(rank) ~loc
          ~callpath:[]
      in
      s.clock.(rank) <- s.clock.(rank) +. s.net.Network.send_overhead;
      let t0 = s.clock.(rank) in
      await_one s rank sreq;
      wait := s.clock.(rank) -. t0
  | KRecv { src; tag; bytes } ->
      let src = eval_peer env ~loc src in
      let tag = eval_tag env ~loc tag in
      let bytes = ceval env ~loc bytes in
      let req =
        Comm.post_recv s.comm ~rank ~src ~tag ~bytes ~time:s.clock.(rank) ~loc
          ~callpath:[]
      in
      s.clock.(rank) <- s.clock.(rank) +. s.net.Network.recv_overhead;
      let t0 = s.clock.(rank) in
      await_one s rank req;
      wait := s.clock.(rank) -. t0
  | KIsend { dest; tag; bytes; slot } ->
      let dst = ceval env ~loc dest in
      let tag = ceval env ~loc tag in
      let bytes = ceval env ~loc bytes in
      let sreq =
        Comm.send s.comm ~src:rank ~dst ~tag ~bytes ~time:s.clock.(rank) ~loc
          ~callpath:[]
      in
      s.clock.(rank) <- s.clock.(rank) +. s.net.Network.send_overhead;
      frame.freqs.(slot) <- sreq
  | KIrecv { src; tag; bytes; slot } ->
      let src = eval_peer env ~loc src in
      let tag = eval_tag env ~loc tag in
      let bytes = ceval env ~loc bytes in
      let rreq =
        Comm.post_recv s.comm ~rank ~src ~tag ~bytes ~time:s.clock.(rank) ~loc
          ~callpath:[]
      in
      s.clock.(rank) <- s.clock.(rank) +. s.net.Network.recv_overhead;
      frame.freqs.(slot) <- rreq
  | KWait { slot; name } ->
      let r = get_req frame ~loc slot name in
      let t0 = s.clock.(rank) in
      await_one s rank r;
      wait := s.clock.(rank) -. t0
  | KWaitall { slots } ->
      let rs =
        Array.map (fun (slot, name) -> get_req frame ~loc slot name) slots
      in
      let t0 = s.clock.(rank) in
      await_many s rank rs;
      wait := s.clock.(rank) -. t0
  | KSendrecv { dest; stag; sbytes; src; rtag; rbytes } ->
      let dst = ceval env ~loc dest in
      let stag = ceval env ~loc stag in
      let sbytes = ceval env ~loc sbytes in
      let src = eval_peer env ~loc src in
      let rtag = eval_tag env ~loc rtag in
      let rbytes = ceval env ~loc rbytes in
      let sreq =
        Comm.send s.comm ~src:rank ~dst ~tag:stag ~bytes:sbytes
          ~time:s.clock.(rank) ~loc ~callpath:[]
      in
      let rreq =
        Comm.post_recv s.comm ~rank ~src ~tag:rtag ~bytes:rbytes
          ~time:s.clock.(rank) ~loc ~callpath:[]
      in
      s.clock.(rank) <-
        s.clock.(rank) +. s.net.Network.send_overhead
        +. s.net.Network.recv_overhead;
      let t0 = s.clock.(rank) in
      await_two s rank sreq rreq;
      wait := s.clock.(rank) -. t0
  | KColl { bytes } ->
      let bytes = ceval env ~loc bytes in
      s.coll_seqs.(rank) <- s.coll_seqs.(rank) + 1;
      let arrive_time = s.clock.(rank) in
      let c =
        Comm.coll_arrive s.comm ~seq:s.coll_seqs.(rank) ~rank ~time:arrive_time
          ~kind:ast ~bytes
      in
      if c.Comm.finished then wake_collective s c;
      let resume =
        if c.Comm.finished then c.Comm.finish_time
        else begin
          s.blocked_since.(rank) <- arrive_time;
          s.wakes.(rank) <- Wake_coll c;
          Effect.perform Block
        end
      in
      s.clock.(rank) <- Float.max s.clock.(rank) resume;
      wait := Float.max 0.0 (c.Comm.start_time -. arrive_time));
  s.mpi_sec.(rank) <- s.mpi_sec.(rank) +. (s.clock.(rank) -. enter_time);
  s.wait_sec.(rank) <- s.wait_sec.(rank) +. !wait

(* MPI execution, instrumented path: the reference engine's sequence of
   hook calls, context records and overhead charges, with compiled
   expression evaluation. *)
and exec_mpi_tools s rank frame ~loc (ast : Ast.mpi_call) (op : cmpi) =
  let enter_time = s.clock.(rank) in
  let ctx_enter = ctx_of s rank ~loc in
  let overhead_in =
    tool_sum s.cfg (fun tool -> tool.Instrument.on_mpi_enter ctx_enter ast)
  in
  s.clock.(rank) <- s.clock.(rank) +. overhead_in;
  let env = frame.fenv in
  let deps = ref [] and sends = ref [] and collective = ref None in
  let wait = ref 0.0 in
  (match op with
  | KSend { dest; tag; bytes } ->
      let dst = ceval env ~loc dest in
      let tag = ceval env ~loc tag in
      let bytes = ceval env ~loc bytes in
      let sreq =
        Comm.send s.comm ~src:rank ~dst ~tag ~bytes ~time:s.clock.(rank) ~loc
          ~callpath:s.callpaths.(rank)
      in
      s.clock.(rank) <- s.clock.(rank) +. s.net.Network.send_overhead;
      let t0 = s.clock.(rank) in
      await_one s rank sreq;
      wait := s.clock.(rank) -. t0;
      sends := [ (dst, tag, bytes) ]
  | KRecv { src; tag; bytes } ->
      let src = eval_peer env ~loc src in
      let tag = eval_tag env ~loc tag in
      let bytes = ceval env ~loc bytes in
      let req =
        Comm.post_recv s.comm ~rank ~src ~tag ~bytes ~time:s.clock.(rank) ~loc
          ~callpath:s.callpaths.(rank)
      in
      s.clock.(rank) <- s.clock.(rank) +. s.net.Network.recv_overhead;
      let t0 = s.clock.(rank) in
      await_one s rank req;
      wait := s.clock.(rank) -. t0;
      deps := dep_of_req req
  | KIsend { dest; tag; bytes; slot } ->
      let dst = ceval env ~loc dest in
      let tag = ceval env ~loc tag in
      let bytes = ceval env ~loc bytes in
      let sreq =
        Comm.send s.comm ~src:rank ~dst ~tag ~bytes ~time:s.clock.(rank) ~loc
          ~callpath:s.callpaths.(rank)
      in
      s.clock.(rank) <- s.clock.(rank) +. s.net.Network.send_overhead;
      frame.freqs.(slot) <- sreq;
      sends := [ (dst, tag, bytes) ]
  | KIrecv { src; tag; bytes; slot } ->
      let src = eval_peer env ~loc src in
      let tag = eval_tag env ~loc tag in
      let bytes = ceval env ~loc bytes in
      let rreq =
        Comm.post_recv s.comm ~rank ~src ~tag ~bytes ~time:s.clock.(rank) ~loc
          ~callpath:s.callpaths.(rank)
      in
      s.clock.(rank) <- s.clock.(rank) +. s.net.Network.recv_overhead;
      frame.freqs.(slot) <- rreq
  | KWait { slot; name } ->
      let r = get_req frame ~loc slot name in
      let t0 = s.clock.(rank) in
      await_one s rank r;
      wait := s.clock.(rank) -. t0;
      deps := dep_of_req r
  | KWaitall { slots } ->
      let rs =
        Array.map (fun (slot, name) -> get_req frame ~loc slot name) slots
      in
      let t0 = s.clock.(rank) in
      await_many s rank rs;
      wait := s.clock.(rank) -. t0;
      deps := List.concat_map dep_of_req (Array.to_list rs)
  | KSendrecv { dest; stag; sbytes; src; rtag; rbytes } ->
      let dst = ceval env ~loc dest in
      let stag = ceval env ~loc stag in
      let sbytes = ceval env ~loc sbytes in
      let src = eval_peer env ~loc src in
      let rtag = eval_tag env ~loc rtag in
      let rbytes = ceval env ~loc rbytes in
      let sreq =
        Comm.send s.comm ~src:rank ~dst ~tag:stag ~bytes:sbytes
          ~time:s.clock.(rank) ~loc ~callpath:s.callpaths.(rank)
      in
      let rreq =
        Comm.post_recv s.comm ~rank ~src ~tag:rtag ~bytes:rbytes
          ~time:s.clock.(rank) ~loc ~callpath:s.callpaths.(rank)
      in
      s.clock.(rank) <-
        s.clock.(rank) +. s.net.Network.send_overhead
        +. s.net.Network.recv_overhead;
      let t0 = s.clock.(rank) in
      await_two s rank sreq rreq;
      wait := s.clock.(rank) -. t0;
      sends := [ (dst, stag, sbytes) ];
      deps := dep_of_req rreq
  | KColl { bytes } ->
      let bytes = ceval env ~loc bytes in
      s.coll_seqs.(rank) <- s.coll_seqs.(rank) + 1;
      let arrive_time = s.clock.(rank) in
      let c =
        Comm.coll_arrive s.comm ~seq:s.coll_seqs.(rank) ~rank ~time:arrive_time
          ~kind:ast ~bytes
      in
      if c.Comm.finished then wake_collective s c;
      let resume =
        if c.Comm.finished then c.Comm.finish_time
        else begin
          s.blocked_since.(rank) <- arrive_time;
          s.wakes.(rank) <- Wake_coll c;
          Effect.perform Block
        end
      in
      s.clock.(rank) <- Float.max s.clock.(rank) resume;
      wait := Float.max 0.0 (c.Comm.start_time -. arrive_time);
      collective :=
        Some
          {
            Instrument.coll_seq = c.Comm.coll_seq;
            arrive_time;
            start_time = c.Comm.start_time;
            last_arrival_rank = c.Comm.last_arrival_rank;
          });
  let exit_time = s.clock.(rank) in
  s.mpi_sec.(rank) <- s.mpi_sec.(rank) +. (exit_time -. enter_time);
  s.wait_sec.(rank) <- s.wait_sec.(rank) +. !wait;
  let ctx_span = { ctx_enter with Instrument.time = enter_time } in
  let span_overhead =
    tool_sum s.cfg (fun tool ->
        tool.Instrument.on_interval ctx_span ~stop:exit_time
          (Instrument.Mpi_span { call = ast; wait_seconds = !wait }))
  in
  let exit_info =
    {
      Instrument.call = ast;
      enter_time;
      exit_time;
      wait_seconds = !wait;
      deps = !deps;
      sends = !sends;
      collective = !collective;
    }
  in
  let ctx_exit = ctx_of s rank ~loc in
  let overhead_out =
    tool_sum s.cfg (fun tool -> tool.Instrument.on_mpi_exit ctx_exit exit_info)
  in
  s.clock.(rank) <- s.clock.(rank) +. span_overhead +. overhead_out

(* --- fibers and the scheduler loop --- *)

let handler s rank =
  {
    Effect.Deep.retc = (fun () -> s.status.(rank) <- st_finished);
    exnc =
      (function
      (* a killed rank stops cleanly: whatever it measured so far stays,
         peers waiting on it are stranded and handled at end of run *)
      | Rank_killed ->
          s.status.(rank) <- st_finished;
          s.killed <- rank :: s.killed
      | e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Block ->
            Some
              (fun (k : (a, _) Effect.Deep.continuation) ->
                s.status.(rank) <- st_blocked;
                s.conts.(rank) <- Some k;
                (* registration only: the awaited condition cannot have
                   completed between the check in await_* and here —
                   execution is single-threaded and nothing ran in
                   between *)
                match s.wakes.(rank) with
                | Wake_one r ->
                    if not r.Comm.completed then r.Comm.waiter <- rank
                | Wake_two (r1, r2) ->
                    if not r1.Comm.completed then r1.Comm.waiter <- rank;
                    if not r2.Comm.completed then r2.Comm.waiter <- rank
                | Wake_many rs ->
                    Array.iter
                      (fun (r : Comm.request) ->
                        if not r.completed then r.waiter <- rank)
                      rs
                | Wake_coll c -> c.Comm.waiters <- rank :: c.Comm.waiters
                | Wake_none -> assert false)
        | _ -> None);
  }

let start_fiber s rank =
  s.status.(rank) <- st_running;
  Effect.Deep.match_with
    (fun () ->
      let f = s.cmain in
      exec_block s rank (new_frame rank f) f.cf_body)
    () (handler s rank)

let rec drive s =
  let rank = Heap.pop_val s.ready in
  if rank >= 0 then begin
    let st = s.status.(rank) in
    if st = st_not_started then start_fiber s rank
    else if st = st_ready then begin
      s.status.(rank) <- st_running;
      match s.conts.(rank) with
      | Some k ->
          s.conts.(rank) <- None;
          Effect.Deep.continue k s.resume_at.(rank)
      | None -> assert false
    end;
    drive s
  end

(* --- top-level run --- *)

let run_body ~cfg (program : Ast.program) =
  let merged_params = merge_params program cfg.params in
  let cmain = compile_program ~nprocs:cfg.nprocs ~params:merged_params program in
  let n = cfg.nprocs in
  let comm = Comm.create ~net:cfg.net ~nprocs:n in
  let s =
    {
      cfg;
      cmain;
      has_tools = cfg.tools <> [];
      inject_on = not (Inject.is_empty cfg.inject);
      comm;
      nprocs = n;
      net = cfg.net;
      clock = Array.make n cfg.clock0;
      blocked_since = Array.make n cfg.clock0;
      comp_sec = Array.make n 0.0;
      mpi_sec = Array.make n 0.0;
      wait_sec = Array.make n 0.0;
      pmu_tot_ins = Array.make n 0.0;
      pmu_tot_lst = Array.make n 0.0;
      pmu_tot_cyc = Array.make n 0.0;
      pmu_miss = Array.make n 0.0;
      pmu_fp = Array.make n 0.0;
      coll_seqs = Array.make n 0;
      status = Array.make n st_not_started;
      conts = Array.make n None;
      resume_at = Array.make n 0.0;
      wakes = Array.make n Wake_none;
      callpaths = Array.make n [];
      kill_at =
        Array.init n (fun rank ->
            match Faults.kill_time cfg.faults ~rank with
            | Some t -> t
            | None -> infinity);
      comp_scale = Array.init n (fun rank -> Faults.comp_scale cfg.faults ~rank);
      scratch = Array.make 5 0.0;
      ready = Heap.create ~capacity:(max 16 n) ();
      events = 0;
      killed = [];
    }
  in
  Comm.set_on_complete comm (on_request_complete s);
  for rank = 0 to n - 1 do
    Heap.push s.ready cfg.clock0 rank
  done;
  drive s;
  let stuck = ref [] in
  for rank = n - 1 downto 0 do
    if s.status.(rank) <> st_finished then stuck := rank :: !stuck
  done;
  let stuck = List.sort_uniq compare !stuck in
  let killed_ranks = List.sort_uniq compare s.killed in
  (* a genuine deadlock is still fatal; ranks blocked on a killed peer are
     the expected degraded outcome and are reported, not raised *)
  if stuck <> [] && killed_ranks = [] then
    raise
      (Deadlock
         (Printf.sprintf "ranks {%s} blocked at end of run\n%s"
            (String.concat "," (List.map string_of_int stuck))
            (Comm.pending_summary comm)));
  let elapsed = Array.fold_left Float.max 0.0 s.clock in
  List.iter
    (fun tool -> tool.Instrument.on_run_end ~nprocs:cfg.nprocs ~elapsed)
    cfg.tools;
  {
    elapsed;
    rank_finish = s.clock;
    comp_seconds = s.comp_sec;
    mpi_seconds = s.mpi_sec;
    wait_seconds = s.wait_sec;
    comp_pmu =
      Array.init n (fun rank ->
          {
            Pmu.tot_ins = s.pmu_tot_ins.(rank);
            tot_lst_ins = s.pmu_tot_lst.(rank);
            tot_cyc = s.pmu_tot_cyc.(rank);
            cache_miss = s.pmu_miss.(rank);
            fp_ins = s.pmu_fp.(rank);
          });
    events = s.events;
    messages = comm.Comm.messages_sent;
    killed_ranks;
    stranded_ranks = stuck;
  }

(* The observable boundary of one simulated run: the span's duration is
   the wall-clock cost of simulating, while [sim_elapsed] is the
   simulated time the program itself took — the two axes Table IV's
   overhead argument compares. *)
let run ?(cfg = config ~nprocs:4 ()) (program : Ast.program) =
  let module Obs = Scalana_obs.Obs in
  if not (Obs.enabled ()) then run_body ~cfg program
  else begin
    let sp =
      Obs.start ~args:[ ("nprocs", string_of_int cfg.nprocs) ] "exec.run"
    in
    let t0 = Obs.now () in
    match run_body ~cfg program with
    | r ->
        Obs.Metrics.observe "exec.wall_seconds" (Obs.now () -. t0);
        Obs.Metrics.observe "exec.sim_elapsed" r.elapsed;
        Obs.Metrics.incr ~by:r.events "exec.events";
        Obs.Metrics.incr ~by:r.messages "exec.messages";
        Obs.finish
          ~args:
            [
              ("sim_elapsed", Printf.sprintf "%.6f" r.elapsed);
              ("events", string_of_int r.events);
              ("messages", string_of_int r.messages);
            ]
          sp;
        r
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Obs.finish sp;
        Printexc.raise_with_backtrace e bt
  end
