(* Discrete-event MPI runtime: interprets a MiniMPI program on [nprocs]
   simulated processes.

   Each simulated process runs as an effect-based fiber with its own local
   clock; blocking operations perform a [Block] effect and the scheduler
   resumes the process when the awaited requests or collective complete.
   Processes are scheduled lowest-clock-first, which makes wildcard
   message matching deterministic and causally plausible.  Instrumentation
   tools observe compute intervals and MPI enter/exit events and charge
   their own overhead onto the process clocks — the same interposition
   structure as PAPI sampling plus PMPI. *)

open Scalana_mlang

exception Deadlock of string
exception Runtime_error of { loc : Loc.t; msg : string }

let runtime_error ~loc fmt =
  Fmt.kstr (fun msg -> raise (Runtime_error { loc; msg })) fmt

type config = {
  nprocs : int;
  params : (string * int) list;  (* overrides of the program defaults *)
  cost : Costmodel.t;
  net : Network.t;
  inject : Inject.t;
  faults : Faults.armed;
  tools : Instrument.t list;
  max_events : int;
}

let config ?(params = []) ?(cost = Costmodel.default) ?(net = Network.default)
    ?(inject = Inject.empty) ?(faults = Faults.none) ?(tools = [])
    ?(max_events = 500_000_000) ~nprocs () =
  if nprocs < 1 then invalid_arg "Exec.config: nprocs must be >= 1";
  { nprocs; params; cost; net; inject; faults; tools; max_events }

type result = {
  elapsed : float;  (* latest rank finish time, tool overhead included *)
  rank_finish : float array;
  comp_seconds : float array;
  mpi_seconds : float array;
  wait_seconds : float array;
  comp_pmu : Pmu.t array;
  events : int;
  messages : int;
  killed_ranks : int list;  (* ranks an injected fault terminated *)
  stranded_ranks : int list;  (* ranks left blocked by a killed peer *)
}

(* --- scheduler plumbing --- *)

type wake = Wake_reqs of Comm.request list | Wake_coll of Comm.coll

type _ Effect.t += Block : wake -> float Effect.t

type status =
  | Not_started
  | Ready of float * (float, unit) Effect.Deep.continuation
  | Running
  | Blocked of wake * (float, unit) Effect.Deep.continuation
  | Finished

type proc = {
  rank : int;
  mutable clock : float;
  mutable status : status;
  mutable callpath : Loc.t list;
  mutable coll_seq : int;
  mutable blocked_since : float;
  mutable comp_pmu : Pmu.t;
  mutable comp_seconds : float;
  mutable mpi_seconds : float;
  mutable wait_seconds : float;
}

type frame = {
  vars : (string * int) list ref;
  freqs : (string, Comm.request) Hashtbl.t;
}

type sched = {
  cfg : config;
  program : Ast.program;
  merged_params : (string * int) list;
  comm : Comm.t;
  procs : proc array;
  ready : Heap.t;
  req_waiter : (int, int) Hashtbl.t;  (* request id -> blocked rank *)
  coll_waiters : (int, int list ref) Hashtbl.t;  (* coll seq -> ranks *)
  mutable events : int;
  mutable killed : int list;  (* ranks terminated by an injected fault *)
}

(* Internal: unwinds a fiber whose rank an armed fault has terminated. *)
exception Rank_killed

let make_ready sched p ~resume k =
  p.status <- Ready (resume, k);
  Heap.push sched.ready resume p.rank

(* Called from Comm whenever a request completes: if the owning process
   is blocked and all of its awaited requests are now complete, wake it. *)
let on_request_complete sched (req : Comm.request) =
  match Hashtbl.find_opt sched.req_waiter req.req_id with
  | None -> ()
  | Some rank -> (
      Hashtbl.remove sched.req_waiter req.req_id;
      let p = sched.procs.(rank) in
      match p.status with
      | Blocked (Wake_reqs reqs, k)
        when List.for_all (fun (r : Comm.request) -> r.completed) reqs ->
          let resume =
            List.fold_left
              (fun acc (r : Comm.request) -> Float.max acc r.completion)
              p.blocked_since reqs
          in
          make_ready sched p ~resume k
      | _ -> ())

let wake_collective sched (c : Comm.coll) =
  match Hashtbl.find_opt sched.coll_waiters c.coll_seq with
  | None -> ()
  | Some ranks ->
      List.iter
        (fun rank ->
          let p = sched.procs.(rank) in
          match p.status with
          | Blocked (Wake_coll c', k) when c'.Comm.coll_seq = c.coll_seq ->
              make_ready sched p ~resume:c.finish_time k
          | _ -> ())
        !ranks;
      Hashtbl.remove sched.coll_waiters c.coll_seq

(* --- interpretation --- *)

let env_of sched p frame =
  Expr.env ~rank:p.rank ~nprocs:sched.cfg.nprocs ~params:sched.merged_params
    ~vars:!(frame.vars)

let eval sched p frame ~loc e =
  try Expr.eval (env_of sched p frame) e
  with Expr.Eval_error msg -> runtime_error ~loc "%s" msg

let eval_peer sched p frame ~loc = function
  | Ast.Any_source -> None
  | Ast.Peer e -> Some (eval sched p frame ~loc e)

let eval_tag sched p frame ~loc = function
  | Ast.Any_tag -> None
  | Ast.Tag e -> Some (eval sched p frame ~loc e)

let set_var frame name value =
  frame.vars := (name, value) :: List.remove_assoc name !(frame.vars)

let ctx_of p ~loc =
  { Instrument.rank = p.rank; time = p.clock; loc; callpath = p.callpath }

let tool_sum cfg f = List.fold_left (fun acc tool -> acc +. f tool) 0.0 cfg.tools

let tick sched ~loc =
  sched.events <- sched.events + 1;
  if sched.events > sched.cfg.max_events then
    runtime_error ~loc "event budget exceeded (%d)" sched.cfg.max_events

(* Wait until every request in [reqs] has completed, advancing the clock
   to the latest completion. *)
let await p reqs =
  let resume =
    if List.for_all (fun (r : Comm.request) -> r.Comm.completed) reqs then
      List.fold_left
        (fun acc (r : Comm.request) -> Float.max acc r.Comm.completion)
        p.clock reqs
    else begin
      p.blocked_since <- p.clock;
      Effect.perform (Block (Wake_reqs reqs))
    end
  in
  p.clock <- Float.max p.clock resume

let dep_of_req (r : Comm.request) =
  match r.Comm.matched with
  | Some m when r.req_kind = `Recv ->
      [
        {
          Instrument.peer_rank = m.Comm.msg_src;
          peer_loc = m.send_loc;
          peer_callpath = m.send_callpath;
          dep_tag = m.msg_tag;
          dep_bytes = m.msg_bytes;
          send_time = m.send_time;
          arrival_time = r.completion;
        };
      ]
  | _ -> []

let lookup_req frame ~loc name =
  match Hashtbl.find_opt frame.freqs name with
  | Some r -> r
  | None -> runtime_error ~loc "wait on unposted request %S" name

let rec exec_stmts sched p frame stmts =
  List.iter (exec_stmt sched p frame) stmts

and exec_stmt sched p frame (s : Ast.stmt) =
  tick sched ~loc:s.loc;
  (match Faults.kill_time sched.cfg.faults ~rank:p.rank with
  | Some t when p.clock >= t -> raise Rank_killed
  | _ -> ());
  match s.node with
  | Ast.Let { var; value } ->
      set_var frame var (eval sched p frame ~loc:s.loc value)
  | Ast.Comp w ->
      let seconds, pmu =
        Costmodel.comp_cost sched.cfg.cost ~rank:p.rank
          ~env:(env_of sched p frame) w
      in
      let seconds =
        (seconds *. Faults.comp_scale sched.cfg.faults ~rank:p.rank)
        +. Inject.extra sched.cfg.inject ~rank:p.rank ~loc:s.loc
      in
      let ctx = ctx_of p ~loc:s.loc in
      p.clock <- p.clock +. seconds;
      p.comp_seconds <- p.comp_seconds +. seconds;
      p.comp_pmu <- Pmu.add p.comp_pmu pmu;
      let overhead =
        tool_sum sched.cfg (fun tool ->
            tool.Instrument.on_interval ctx ~stop:p.clock
              (Instrument.Compute { pmu; label = w.label }))
      in
      p.clock <- p.clock +. overhead
  | Ast.Loop l ->
      let n = eval sched p frame ~loc:s.loc l.count in
      for i = 0 to n - 1 do
        set_var frame l.var i;
        exec_stmts sched p frame l.body
      done
  | Ast.Branch b ->
      if eval sched p frame ~loc:s.loc b.cond <> 0 then
        exec_stmts sched p frame b.then_
      else exec_stmts sched p frame b.else_
  | Ast.Call { callee; args } ->
      let f =
        try Ast.find_func sched.program callee
        with Ast.Unknown_function _ ->
          runtime_error ~loc:s.loc "call to undefined function %S" callee
      in
      let argvals =
        List.map (fun (n, e) -> (n, eval sched p frame ~loc:s.loc e)) args
      in
      call_function sched p ~site:s.loc f argvals
  | Ast.Icall { selector; targets } ->
      let n = List.length targets in
      if n = 0 then runtime_error ~loc:s.loc "indirect call with no targets";
      let sel = eval sched p frame ~loc:s.loc selector in
      let idx = ((sel mod n) + n) mod n in
      let target = List.nth targets idx in
      let ctx = ctx_of p ~loc:s.loc in
      let overhead =
        tool_sum sched.cfg (fun tool -> tool.Instrument.on_icall ctx ~target)
      in
      p.clock <- p.clock +. overhead;
      let f =
        try Ast.find_func sched.program target
        with Ast.Unknown_function _ ->
          runtime_error ~loc:s.loc "indirect call to undefined function %S"
            target
      in
      call_function sched p ~site:s.loc f []
  | Ast.Mpi call -> exec_mpi sched p frame ~loc:s.loc call

and call_function sched p ~site f argvals =
  let callee_frame = { vars = ref argvals; freqs = Hashtbl.create 4 } in
  let saved = p.callpath in
  p.callpath <- saved @ [ site ];
  exec_stmts sched p callee_frame f.Ast.fbody;
  p.callpath <- saved

and exec_mpi sched p frame ~loc call =
  let enter_time = p.clock in
  let ctx_enter = ctx_of p ~loc in
  let overhead_in =
    tool_sum sched.cfg (fun tool -> tool.Instrument.on_mpi_enter ctx_enter call)
  in
  p.clock <- p.clock +. overhead_in;
  let ev sub = eval sched p frame ~loc sub in
  let net = sched.cfg.net in
  let deps = ref [] and sends = ref [] and collective = ref None in
  let wait = ref 0.0 in
  (match call with
  | Ast.Send { dest; tag; bytes } ->
      let dst = ev dest and tag = ev tag and bytes = ev bytes in
      let sreq =
        Comm.send sched.comm ~src:p.rank ~dst ~tag ~bytes ~time:p.clock ~loc
          ~callpath:p.callpath
      in
      p.clock <- p.clock +. net.Network.send_overhead;
      let t0 = p.clock in
      await p [ sreq ];
      wait := p.clock -. t0;
      sends := [ (dst, tag, bytes) ]
  | Ast.Recv { src; tag; bytes } ->
      let src = eval_peer sched p frame ~loc src in
      let tag = eval_tag sched p frame ~loc tag in
      let bytes = ev bytes in
      let req =
        Comm.post_recv sched.comm ~rank:p.rank ~src ~tag ~bytes ~time:p.clock
          ~loc ~callpath:p.callpath
      in
      p.clock <- p.clock +. net.Network.recv_overhead;
      let t0 = p.clock in
      await p [ req ];
      wait := p.clock -. t0;
      deps := dep_of_req req
  | Ast.Isend { dest; tag; bytes; req } ->
      let dst = ev dest and tag = ev tag and bytes = ev bytes in
      let sreq =
        Comm.send sched.comm ~src:p.rank ~dst ~tag ~bytes ~time:p.clock ~loc
          ~callpath:p.callpath
      in
      p.clock <- p.clock +. net.Network.send_overhead;
      Hashtbl.replace frame.freqs req sreq;
      sends := [ (dst, tag, bytes) ]
  | Ast.Irecv { src; tag; bytes; req } ->
      let src = eval_peer sched p frame ~loc src in
      let tag = eval_tag sched p frame ~loc tag in
      let bytes = ev bytes in
      let rreq =
        Comm.post_recv sched.comm ~rank:p.rank ~src ~tag ~bytes ~time:p.clock
          ~loc ~callpath:p.callpath
      in
      p.clock <- p.clock +. net.Network.recv_overhead;
      Hashtbl.replace frame.freqs req rreq
  | Ast.Wait { req } ->
      let r = lookup_req frame ~loc req in
      let t0 = p.clock in
      await p [ r ];
      wait := p.clock -. t0;
      deps := dep_of_req r
  | Ast.Waitall { reqs } ->
      let rs = List.map (lookup_req frame ~loc) reqs in
      let t0 = p.clock in
      await p rs;
      wait := p.clock -. t0;
      deps := List.concat_map dep_of_req rs
  | Ast.Sendrecv { dest; stag; sbytes; src; rtag; rbytes } ->
      let dst = ev dest and stag = ev stag and sbytes = ev sbytes in
      let src = eval_peer sched p frame ~loc src in
      let rtag = eval_tag sched p frame ~loc rtag in
      let rbytes = ev rbytes in
      let sreq =
        Comm.send sched.comm ~src:p.rank ~dst ~tag:stag ~bytes:sbytes
          ~time:p.clock ~loc ~callpath:p.callpath
      in
      let rreq =
        Comm.post_recv sched.comm ~rank:p.rank ~src ~tag:rtag ~bytes:rbytes
          ~time:p.clock ~loc ~callpath:p.callpath
      in
      p.clock <-
        p.clock +. net.Network.send_overhead +. net.Network.recv_overhead;
      let t0 = p.clock in
      await p [ sreq; rreq ];
      wait := p.clock -. t0;
      sends := [ (dst, stag, sbytes) ];
      deps := dep_of_req rreq
  | Ast.Barrier | Ast.Bcast _ | Ast.Reduce _ | Ast.Allreduce _ | Ast.Alltoall _
  | Ast.Allgather _ ->
      let bytes =
        match call with
        | Ast.Bcast { bytes; _ }
        | Ast.Reduce { bytes; _ }
        | Ast.Allreduce { bytes }
        | Ast.Alltoall { bytes }
        | Ast.Allgather { bytes } ->
            ev bytes
        | _ -> 0
      in
      p.coll_seq <- p.coll_seq + 1;
      let arrive_time = p.clock in
      let c =
        Comm.coll_arrive sched.comm ~seq:p.coll_seq ~rank:p.rank
          ~time:arrive_time ~kind:call ~bytes
      in
      if c.Comm.finished then wake_collective sched c;
      let resume =
        if c.Comm.finished then c.finish_time
        else begin
          p.blocked_since <- p.clock;
          Effect.perform (Block (Wake_coll c))
        end
      in
      p.clock <- Float.max p.clock resume;
      wait := Float.max 0.0 (c.start_time -. arrive_time);
      collective :=
        Some
          {
            Instrument.coll_seq = c.coll_seq;
            arrive_time;
            start_time = c.start_time;
            last_arrival_rank = c.last_arrival_rank;
          });
  let exit_time = p.clock in
  p.mpi_seconds <- p.mpi_seconds +. (exit_time -. enter_time);
  p.wait_seconds <- p.wait_seconds +. !wait;
  let ctx_span = { ctx_enter with Instrument.time = enter_time } in
  let span_overhead =
    tool_sum sched.cfg (fun tool ->
        tool.Instrument.on_interval ctx_span ~stop:exit_time
          (Instrument.Mpi_span { call; wait_seconds = !wait }))
  in
  let exit_info =
    {
      Instrument.call;
      enter_time;
      exit_time;
      wait_seconds = !wait;
      deps = !deps;
      sends = !sends;
      collective = !collective;
    }
  in
  let ctx_exit = ctx_of p ~loc in
  let overhead_out =
    tool_sum sched.cfg (fun tool -> tool.Instrument.on_mpi_exit ctx_exit exit_info)
  in
  p.clock <- p.clock +. span_overhead +. overhead_out

(* --- top-level run --- *)

let merge_params (program : Ast.program) overrides =
  List.map
    (fun (name, default) ->
      match List.assoc_opt name overrides with
      | Some v -> (name, v)
      | None -> (name, default))
    program.params
  @ List.filter
      (fun (name, _) -> not (List.mem_assoc name program.params))
      overrides

let handler sched p =
  {
    Effect.Deep.retc = (fun () -> p.status <- Finished);
    exnc =
      (function
      (* a killed rank stops cleanly: whatever it measured so far stays,
         peers waiting on it are stranded and handled at end of run *)
      | Rank_killed ->
          p.status <- Finished;
          sched.killed <- p.rank :: sched.killed
      | e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Block wake ->
            Some
              (fun (k : (a, _) Effect.Deep.continuation) ->
                match wake with
                | Wake_reqs reqs ->
                    p.status <- Blocked (wake, k);
                    List.iter
                      (fun (r : Comm.request) ->
                        if not r.completed then
                          Hashtbl.replace sched.req_waiter r.req_id p.rank)
                      reqs;
                    (* all may have completed between the check in [await]
                       and here only if await raced — single-threaded, so
                       no race; but guard anyway *)
                    if List.for_all (fun (r : Comm.request) -> r.completed) reqs
                    then on_request_complete sched (List.hd reqs)
                | Wake_coll c ->
                    p.status <- Blocked (wake, k);
                    let waiters =
                      match Hashtbl.find_opt sched.coll_waiters c.coll_seq with
                      | Some l -> l
                      | None ->
                          let l = ref [] in
                          Hashtbl.replace sched.coll_waiters c.coll_seq l;
                          l
                    in
                    waiters := p.rank :: !waiters;
                    if c.finished then wake_collective sched c)
        | _ -> None);
  }

let start_fiber sched p =
  p.status <- Running;
  Effect.Deep.match_with
    (fun () ->
      let main = Ast.main_func sched.program in
      let frame = { vars = ref []; freqs = Hashtbl.create 4 } in
      exec_stmts sched p frame main.fbody)
    () (handler sched p)

let run_body ~cfg (program : Ast.program) =
  let comm = Comm.create ~net:cfg.net ~nprocs:cfg.nprocs in
  let procs =
    Array.init cfg.nprocs (fun rank ->
        {
          rank;
          clock = 0.0;
          status = Not_started;
          callpath = [];
          coll_seq = 0;
          blocked_since = 0.0;
          comp_pmu = Pmu.zero;
          comp_seconds = 0.0;
          mpi_seconds = 0.0;
          wait_seconds = 0.0;
        })
  in
  let sched =
    {
      cfg;
      program;
      merged_params = merge_params program cfg.params;
      comm;
      procs;
      ready = Heap.create ();
      req_waiter = Hashtbl.create 64;
      coll_waiters = Hashtbl.create 16;
      events = 0;
      killed = [];
    }
  in
  Comm.set_on_complete comm (on_request_complete sched);
  Array.iter (fun p -> Heap.push sched.ready 0.0 p.rank) procs;
  let rec loop () =
    match Heap.pop sched.ready with
    | None -> ()
    | Some (_, rank) ->
        let p = procs.(rank) in
        (match p.status with
        | Not_started -> start_fiber sched p
        | Ready (resume, k) ->
            p.status <- Running;
            Effect.Deep.continue k resume
        | Running | Blocked _ | Finished -> ());
        loop ()
  in
  loop ();
  let stuck =
    Array.to_list procs
    |> List.filter (fun p -> p.status <> Finished)
    |> List.map (fun p -> p.rank)
  in
  let killed_ranks = List.sort compare sched.killed in
  (* a genuine deadlock is still fatal; ranks blocked on a killed peer are
     the expected degraded outcome and are reported, not raised *)
  if stuck <> [] && killed_ranks = [] then
    raise
      (Deadlock
         (Printf.sprintf "ranks {%s} blocked at end of run\n%s"
            (String.concat "," (List.map string_of_int stuck))
            (Comm.pending_summary comm)));
  let elapsed = Array.fold_left (fun acc p -> Float.max acc p.clock) 0.0 procs in
  List.iter
    (fun tool -> tool.Instrument.on_run_end ~nprocs:cfg.nprocs ~elapsed)
    cfg.tools;
  {
    elapsed;
    rank_finish = Array.map (fun p -> p.clock) procs;
    comp_seconds = Array.map (fun p -> p.comp_seconds) procs;
    mpi_seconds = Array.map (fun p -> p.mpi_seconds) procs;
    wait_seconds = Array.map (fun p -> p.wait_seconds) procs;
    comp_pmu = Array.map (fun p -> p.comp_pmu) procs;
    events = sched.events;
    messages = comm.Comm.messages_sent;
    killed_ranks;
    stranded_ranks = stuck;
  }

(* The observable boundary of one simulated run: the span's duration is
   the wall-clock cost of simulating, while [sim_elapsed] is the
   simulated time the program itself took — the two axes Table IV's
   overhead argument compares. *)
let run ?(cfg = config ~nprocs:4 ()) (program : Ast.program) =
  let module Obs = Scalana_obs.Obs in
  if not (Obs.enabled ()) then run_body ~cfg program
  else begin
    let sp =
      Obs.start ~args:[ ("nprocs", string_of_int cfg.nprocs) ] "exec.run"
    in
    let t0 = Obs.now () in
    match run_body ~cfg program with
    | r ->
        Obs.Metrics.observe "exec.wall_seconds" (Obs.now () -. t0);
        Obs.Metrics.observe "exec.sim_elapsed" r.elapsed;
        Obs.Metrics.incr ~by:r.events "exec.events";
        Obs.Metrics.incr ~by:r.messages "exec.messages";
        Obs.finish
          ~args:
            [
              ("sim_elapsed", Printf.sprintf "%.6f" r.elapsed);
              ("events", string_of_int r.events);
              ("messages", string_of_int r.messages);
            ]
          sp;
        r
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Obs.finish sp;
        Printexc.raise_with_backtrace e bt
  end
