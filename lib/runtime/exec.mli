(** Discrete-event MPI runtime: interprets a MiniMPI program on [nprocs]
    simulated processes, each an effect-based fiber with its own clock,
    scheduled lowest-clock-first. Instrumentation tools observe compute
    intervals and MPI events and charge their overhead onto the clocks. *)

open Scalana_mlang

(** Raised when every unfinished process is blocked; carries a summary of
    pending receives/messages. *)
exception Deadlock of string

(** Raised on dynamic errors: evaluation failures, waits on unposted
    requests, undefined callees, exceeded event budgets. *)
exception Runtime_error of { loc : Loc.t; msg : string }

type config = {
  nprocs : int;
  params : (string * int) list;  (** overrides of the program defaults *)
  cost : Costmodel.t;
  net : Network.t;
  inject : Inject.t;
  faults : Faults.armed;
  tools : Instrument.t list;
  max_events : int;
  clock0 : float;
      (** absolute simulated time the ranks start at; an elastic epoch
          resumes where the recovery protocol left the previous one *)
}

val config :
  ?params:(string * int) list ->
  ?cost:Costmodel.t ->
  ?net:Network.t ->
  ?inject:Inject.t ->
  ?faults:Faults.armed ->
  ?tools:Instrument.t list ->
  ?max_events:int ->
  ?clock0:float ->
  nprocs:int ->
  unit ->
  config

type result = {
  elapsed : float;  (** latest rank finish time, tool overhead included *)
  rank_finish : float array;
  comp_seconds : float array;
  mpi_seconds : float array;
  wait_seconds : float array;
  comp_pmu : Pmu.t array;
  events : int;
  messages : int;
  killed_ranks : int list;  (** ranks an injected fault terminated; sorted, unique *)
  stranded_ranks : int list;
      (** ranks left blocked forever by a killed peer, sorted and
          deduplicated; their partial measurements survive.  [Deadlock] is
          only raised when ranks are stuck with no fault involved. *)
}

val run : ?cfg:config -> Ast.program -> result
