(* Fault injection (robustness harness).

   Where Inject adds *delays* (the paper's Fig. 2 experiment), this module
   reproduces the operational failures of production runs: ranks dying
   mid-run, metrics coming back as NaN/garbage, skewed clocks, whole scale
   points missing, and artifact files truncated or bit-flipped on disk.
   Faults are described by a declarative plan and armed deterministically
   from (seed, nprocs, attempt), so any failure is reproducible byte for
   byte and a retry with a new attempt number re-draws the probabilistic
   ones. *)

type poison_kind = [ `Nan | `Negative ]

type fault =
  | Kill_rank of { rank : int; after : float; prob : float }
      (* rank dies once its simulated clock passes [after] seconds *)
  | Clock_skew of { rank : int; factor : float }
      (* rank's computation runs [factor] times slower *)
  | Poison_metric of { ranks : int list option; kind : poison_kind; prob : float }
      (* per-(rank, vertex) chance of a NaN / negative time value *)
  | Drop_scale of { nprocs : int }
      (* the whole run at this scale never happens *)

type plan = { seed : int; faults : fault list }

let empty = { seed = 0; faults = [] }
let plan ?(seed = 42) faults = { seed; faults }
let is_empty t = t.faults = []

let kill_rank ?(prob = 1.0) ~rank ~after () = Kill_rank { rank; after; prob }
let clock_skew ~rank ~factor = Clock_skew { rank; factor }

let poison_metric ?ranks ?(prob = 1.0) kind =
  Poison_metric { ranks; kind; prob }

let drop_scale nprocs = Drop_scale { nprocs }

let drops_scale t ~nprocs =
  List.exists (function Drop_scale d -> d.nprocs = nprocs | _ -> false) t.faults

(* --- deterministic draws (splitmix64) --- *)

let mix64 x =
  let open Int64 in
  let x = add x 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

(* A uniform draw in [0, 1) keyed by the integer tuple [key]; the same key
   always yields the same draw, on any platform. *)
let draw key =
  let h =
    List.fold_left
      (fun acc k -> mix64 (Int64.logxor acc (Int64.of_int k)))
      0x5CA1A9AL key
  in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

(* --- armed faults: one concrete run at one scale --- *)

type armed = {
  kills : (int * float) list;  (* rank, kill time *)
  skews : (int * float) list;  (* rank, factor *)
  poisons : (int list option * poison_kind * float) list;
  a_seed : int;
  a_nprocs : int;
  a_attempt : int;
}

let none =
  { kills = []; skews = []; poisons = []; a_seed = 0; a_nprocs = 0; a_attempt = 1 }

let is_none t = t.kills = [] && t.skews = [] && t.poisons = []

let arm t ~nprocs ~attempt =
  let kills = ref [] and skews = ref [] and poisons = ref [] in
  List.iteri
    (fun idx fault ->
      match fault with
      | Kill_rank { rank; after; prob } ->
          if
            rank < nprocs
            && draw [ t.seed; attempt; nprocs; rank; idx; 1 ] < prob
          then kills := (rank, after) :: !kills
      | Clock_skew { rank; factor } ->
          if rank < nprocs then skews := (rank, factor) :: !skews
      | Poison_metric { ranks; kind; prob } ->
          poisons := (ranks, kind, prob) :: !poisons
      | Drop_scale _ -> ())
    t.faults;
  {
    kills = List.rev !kills;
    skews = List.rev !skews;
    poisons = List.rev !poisons;
    a_seed = t.seed;
    a_nprocs = nprocs;
    a_attempt = attempt;
  }

let kill_time t ~rank =
  List.fold_left
    (fun acc (r, after) ->
      if r <> rank then acc
      else
        match acc with
        | None -> Some after
        | Some a -> Some (Float.min a after))
    None t.kills

let comp_scale t ~rank =
  List.fold_left
    (fun acc (r, factor) -> if r = rank then acc *. factor else acc)
    1.0 t.skews

let poison t ~rank ~vertex =
  List.fold_left
    (fun acc (idx, (ranks, kind, prob)) ->
      match acc with
      | Some _ -> acc
      | None ->
          let rank_matches =
            match ranks with None -> true | Some rs -> List.mem rank rs
          in
          if
            rank_matches
            && draw [ t.a_seed; t.a_attempt; t.a_nprocs; rank; vertex; idx; 2 ]
               < prob
          then Some kind
          else None)
    None
    (List.mapi (fun i p -> (i, p)) t.poisons)

(* --- artifact-layer damage (disk faults, deterministic by design) --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* Cut the file to its first [at_byte] bytes — a filled disk / dead writer. *)
let truncate_file path ~at_byte =
  let contents = read_file path in
  let keep = min (max 0 at_byte) (String.length contents) in
  write_file path (String.sub contents 0 keep)

(* XOR one byte — a bit flip in storage. *)
let corrupt_byte path ~at_byte ?(xor = 0x40) () =
  let contents = read_file path in
  if at_byte < 0 || at_byte >= String.length contents then
    invalid_arg "Faults.corrupt_byte: offset outside the file";
  let b = Bytes.of_string contents in
  Bytes.set b at_byte (Char.chr (Char.code (Bytes.get b at_byte) lxor (xor land 0xff)));
  write_file path (Bytes.to_string b)
