(** Fault injection: declarative, deterministic failure plans — rank
    deaths, clock skew, poisoned metrics, dropped scales — applied at
    simulation time (via {!Exec}), plus artifact-layer damage helpers
    (truncation, bit flips).  Same (seed, nprocs, attempt) ⇒ same
    faults; a retry with a new attempt number re-draws the probabilistic
    ones. *)

type poison_kind = [ `Nan | `Negative ]

type fault =
  | Kill_rank of { rank : int; after : float; prob : float }
  | Clock_skew of { rank : int; factor : float }
  | Poison_metric of { ranks : int list option; kind : poison_kind; prob : float }
  | Drop_scale of { nprocs : int }

type plan = { seed : int; faults : fault list }

val empty : plan
val plan : ?seed:int -> fault list -> plan
val is_empty : plan -> bool

(** [kill_rank ~rank ~after ()] — the rank dies once its simulated clock
    passes [after] seconds; with [prob] < 1 the death is drawn per
    attempt, so a retry may survive. *)
val kill_rank : ?prob:float -> rank:int -> after:float -> unit -> fault

(** The rank's computation runs [factor] times slower. *)
val clock_skew : rank:int -> factor:float -> fault

(** Per-(rank, vertex) chance of the recorded time being NaN/negative
    ([ranks] defaults to all). *)
val poison_metric : ?ranks:int list -> ?prob:float -> poison_kind -> fault

(** The whole run at this scale never happens. *)
val drop_scale : int -> fault

val drops_scale : plan -> nprocs:int -> bool

(** A uniform draw in [0, 1) keyed by an integer tuple; the same key
    yields the same draw on any platform.  Shared with the elastic
    recovery layer ({!Elastic}), whose seeded detection jitter must come
    from the same generator family as every other fault draw. *)
val draw : int list -> float

(** A plan armed for one concrete run: probabilistic faults drawn from
    (seed, nprocs, attempt). *)
type armed

val none : armed
val is_none : armed -> bool
val arm : plan -> nprocs:int -> attempt:int -> armed

(** Simulated time at which [rank] dies, if armed. *)
val kill_time : armed -> rank:int -> float option

(** Multiplier on [rank]'s computation cost (1.0 when unskewed). *)
val comp_scale : armed -> rank:int -> float

(** Whether the value recorded at (rank, vertex) is poisoned. *)
val poison : armed -> rank:int -> vertex:int -> poison_kind option

(** Cut a file to its first [at_byte] bytes (filled disk / dead writer). *)
val truncate_file : string -> at_byte:int -> unit

(** XOR one byte of the file (a bit flip in storage). *)
val corrupt_byte : string -> at_byte:int -> ?xor:int -> unit -> unit
