(* Minimal binary min-heap on (float priority, int payload), used by the
   scheduler to pick the runnable process with the smallest local clock.

   The tie order among equal keys is emergent from the array layout that
   this exact push/pop algorithm produces, and the simulator's
   deterministic semantics (wildcard matching order, last-arrival ranks)
   are defined in terms of it — treat the sift procedures as a frozen
   contract, not an implementation detail.  [Indexed] below shares the
   same sift code and therefore the same layout evolution under
   push/pop, while additionally tracking payload positions so keys can
   be re-keyed in place instead of popped and re-pushed. *)

type t = {
  mutable keys : float array;
  mutable vals : int array;
  mutable size : int;
}

let create ?(capacity = 16) () =
  let capacity = max 1 capacity in
  { keys = Array.make capacity 0.0; vals = Array.make capacity 0; size = 0 }

let is_empty t = t.size = 0
let length t = t.size

let clear t = t.size <- 0

let grow t =
  if t.size = Array.length t.keys then begin
    let n = 2 * t.size in
    let keys = Array.make n 0.0 and vals = Array.make n 0 in
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.vals 0 vals 0 t.size;
    t.keys <- keys;
    t.vals <- vals
  end

let swap t i j =
  let k = t.keys.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.vals.(j) <- v

let push t key value =
  grow t;
  let i = ref t.size in
  t.keys.(!i) <- key;
  t.vals.(!i) <- value;
  t.size <- t.size + 1;
  while !i > 0 && t.keys.((!i - 1) / 2) > t.keys.(!i) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let sift_down t =
  let i = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && t.keys.(l) < t.keys.(!smallest) then smallest := l;
    if r < t.size && t.keys.(r) < t.keys.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      swap t !i !smallest;
      i := !smallest
    end
    else continue_ := false
  done

(* Non-allocating pop for the scheduler hot loop: the payload of the
   minimum entry, or -1 when empty. *)
let pop_val t =
  if t.size = 0 then -1
  else begin
    let value = t.vals.(0) in
    t.size <- t.size - 1;
    t.keys.(0) <- t.keys.(t.size);
    t.vals.(0) <- t.vals.(t.size);
    sift_down t;
    value
  end

let min_key t =
  if t.size = 0 then invalid_arg "Heap.min_key: empty heap";
  t.keys.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) in
    Some (key, pop_val t)
  end

(* Fixed-capacity min-heap whose payloads are 0..n-1, each present at
   most once, with a position index enabling in-place re-keying.  Push
   and pop use the same sift procedures as [t] above, so a pure
   push/pop workload evolves the same array layout (same tie order). *)
module Indexed = struct
  type h = {
    ikeys : float array;
    ivals : int array;
    ipos : int array;  (* payload -> heap index, -1 when absent *)
    mutable isize : int;
  }

  let create n =
    let n = max 1 n in
    {
      ikeys = Array.make n 0.0;
      ivals = Array.make n 0;
      ipos = Array.make n (-1);
      isize = 0;
    }

  let is_empty h = h.isize = 0
  let length h = h.isize
  let mem h v = h.ipos.(v) >= 0
  let key h v = h.ikeys.(h.ipos.(v))

  let iswap h i j =
    let k = h.ikeys.(i) and v = h.ivals.(i) in
    h.ikeys.(i) <- h.ikeys.(j);
    h.ivals.(i) <- h.ivals.(j);
    h.ikeys.(j) <- k;
    h.ivals.(j) <- v;
    h.ipos.(h.ivals.(i)) <- i;
    h.ipos.(h.ivals.(j)) <- j

  let sift_up h start =
    let i = ref start in
    while !i > 0 && h.ikeys.((!i - 1) / 2) > h.ikeys.(!i) do
      iswap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let sift_down h start =
    let i = ref start in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.isize && h.ikeys.(l) < h.ikeys.(!smallest) then smallest := l;
      if r < h.isize && h.ikeys.(r) < h.ikeys.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        iswap h !i !smallest;
        i := !smallest
      end
      else continue_ := false
    done

  let push h k v =
    if h.ipos.(v) >= 0 then invalid_arg "Heap.Indexed.push: payload present";
    if h.isize = Array.length h.ikeys then
      invalid_arg "Heap.Indexed.push: full";
    let i = h.isize in
    h.ikeys.(i) <- k;
    h.ivals.(i) <- v;
    h.ipos.(v) <- i;
    h.isize <- h.isize + 1;
    sift_up h i

  let pop_val h =
    if h.isize = 0 then -1
    else begin
      let value = h.ivals.(0) in
      h.ipos.(value) <- -1;
      h.isize <- h.isize - 1;
      if h.isize > 0 then begin
        h.ikeys.(0) <- h.ikeys.(h.isize);
        h.ivals.(0) <- h.ivals.(h.isize);
        h.ipos.(h.ivals.(0)) <- 0;
        sift_down h 0
      end;
      value
    end

  let min_key h =
    if h.isize = 0 then invalid_arg "Heap.Indexed.min_key: empty heap";
    h.ikeys.(0)

  let min_val h =
    if h.isize = 0 then invalid_arg "Heap.Indexed.min_val: empty heap";
    h.ivals.(0)

  (* Lower the key of a present payload in place: one sift-up from its
     current position instead of a remove + push. *)
  let decrease_key h k v =
    let i = h.ipos.(v) in
    if i < 0 then invalid_arg "Heap.Indexed.decrease_key: payload absent";
    if k > h.ikeys.(i) then
      invalid_arg "Heap.Indexed.decrease_key: key increases";
    h.ikeys.(i) <- k;
    sift_up h i

  (* Replace the minimum entry with (k, v) in one sift-down — the
     pop-then-push cycle without the intermediate restructuring. *)
  let replace_min h k v =
    if h.isize = 0 then invalid_arg "Heap.Indexed.replace_min: empty heap";
    let old = h.ivals.(0) in
    if v <> old && h.ipos.(v) >= 0 then
      invalid_arg "Heap.Indexed.replace_min: payload present";
    h.ipos.(old) <- -1;
    h.ikeys.(0) <- k;
    h.ivals.(0) <- v;
    h.ipos.(v) <- 0;
    sift_down h 0
end
