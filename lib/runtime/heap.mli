(** Binary min-heap on (float key, int payload); the scheduler's ready
    queue.

    The tie order among equal keys is emergent from the exact push/pop
    sift procedures and is part of the simulator's deterministic
    semantics (it decides which of two equal-clock processes runs first,
    hence wildcard matching order and last-arrival ranks).  The sift
    code is therefore a frozen contract shared by {!t} and {!Indexed}. *)

type t

val create : ?capacity:int -> unit -> t
val is_empty : t -> bool
val length : t -> int
val clear : t -> unit
val push : t -> float -> int -> unit
val pop : t -> (float * int) option

(** Non-allocating [pop]: the payload of the minimum entry, or [-1] when
    the heap is empty (the key is discarded). *)
val pop_val : t -> int

(** Key of the minimum entry; raises [Invalid_argument] when empty. *)
val min_key : t -> float

(** Fixed-capacity variant whose payloads are [0..n-1], each present at
    most once.  A position index adds in-place {!Indexed.decrease_key}
    and {!Indexed.replace_min}, avoiding pop/push cycles when an entry
    is merely re-keyed.  Push/pop evolve the same array layout as {!t}
    under the same operation sequence. *)
module Indexed : sig
  type h

  (** [create n] — empty heap accepting payloads [0..n-1]. *)
  val create : int -> h

  val is_empty : h -> bool
  val length : h -> int

  (** [mem h v] — is payload [v] currently in the heap? *)
  val mem : h -> int -> bool

  (** Current key of a present payload. *)
  val key : h -> int -> float

  (** Raises [Invalid_argument] when the payload is already present or
      the heap is full. *)
  val push : h -> float -> int -> unit

  (** Payload of the minimum entry, or [-1] when empty. *)
  val pop_val : h -> int

  val min_key : h -> float
  val min_val : h -> int

  (** [decrease_key h k v] lowers present payload [v]'s key to [k] with
      one in-place sift-up.  Raises [Invalid_argument] if [v] is absent
      or [k] is larger than the current key. *)
  val decrease_key : h -> float -> int -> unit

  (** [replace_min h k v] replaces the minimum entry with [(k, v)] in
      one sift-down — a fused pop+push.  Raises [Invalid_argument] when
      empty or when [v] is a different, already-present payload. *)
  val replace_min : h -> float -> int -> unit
end
