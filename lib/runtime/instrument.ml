(* Tool instrumentation interface — the simulator's PMPI.

   Performance tools (the ScalAna profiler, the tracing baseline, the
   call-path profiling baseline) plug into the runtime through this hook
   record, exactly as real tools interpose on MPI and timer interrupts.
   Every hook returns the tool's own CPU cost in seconds; the runtime adds
   it to the process clock, which is how measurement overhead becomes
   visible in the experiments. *)

open Scalana_mlang

type ctx = {
  rank : int;
  time : float;  (* local clock at the start of the event *)
  loc : Loc.t;
  callpath : Loc.t list;  (* call-site locations, outermost first *)
}

type activity =
  | Compute of { pmu : Pmu.t; label : string option }
  | Mpi_span of { call : Ast.mpi_call; wait_seconds : float }

(* A matched remote send observed when a receive-like operation
   completes: the raw material of communication-dependence edges. *)
type peer_dep = {
  peer_rank : int;
  peer_loc : Loc.t;
  peer_callpath : Loc.t list;
  dep_tag : int;
  dep_bytes : int;
  send_time : float;  (* peer-local post time *)
  arrival_time : float;  (* when the message finished transferring *)
}

type collective_info = {
  coll_seq : int;
  arrive_time : float;
  start_time : float;  (* when the last rank arrived *)
  last_arrival_rank : int;
}

type mpi_exit = {
  call : Ast.mpi_call;
  enter_time : float;
  exit_time : float;
  wait_seconds : float;
  deps : peer_dep list;
  sends : (int * int * int) list;  (* (dest, tag, bytes) posted by this op *)
  collective : collective_info option;
}

type t = {
  name : string;
  on_interval : ctx -> stop:float -> activity -> float;
      (* a span of process activity [ctx.time, stop) *)
  on_mpi_enter : ctx -> Ast.mpi_call -> float;
  on_mpi_exit : ctx -> mpi_exit -> float;
  on_icall : ctx -> target:string -> float;
  on_run_end : nprocs:int -> elapsed:float -> unit;
}

let nil name =
  {
    name;
    on_interval = (fun _ ~stop:_ _ -> 0.0);
    on_mpi_enter = (fun _ _ -> 0.0);
    on_mpi_exit = (fun _ _ -> 0.0);
    on_icall = (fun _ ~target:_ -> 0.0);
    on_run_end = (fun ~nprocs:_ ~elapsed:_ -> ());
  }
