(** Tool instrumentation interface — the simulator's PMPI.

    Performance tools plug into the runtime through this hook record;
    every hook returns the tool's own CPU cost in seconds, which the
    runtime adds to the process clock (measurement overhead becomes
    observable). *)

open Scalana_mlang

type ctx = {
  rank : int;
  time : float;  (** local clock at the start of the event *)
  loc : Loc.t;
  callpath : Loc.t list;  (** call-site locations, outermost first *)
}

type activity =
  | Compute of { pmu : Pmu.t; label : string option }
  | Mpi_span of { call : Ast.mpi_call; wait_seconds : float }

(** A matched remote send observed when a receive-like operation
    completes — the raw material of communication-dependence edges. *)
type peer_dep = {
  peer_rank : int;
  peer_loc : Loc.t;
  peer_callpath : Loc.t list;
  dep_tag : int;
  dep_bytes : int;
  send_time : float;  (** peer-local post time *)
  arrival_time : float;
      (** when the message finished transferring (request completion) —
          distinct from [exit_time], which also covers sibling requests
          of the same wait and any tool overhead *)
}

type collective_info = {
  coll_seq : int;
  arrive_time : float;
  start_time : float;  (** when the last rank arrived *)
  last_arrival_rank : int;
}

type mpi_exit = {
  call : Ast.mpi_call;
  enter_time : float;
  exit_time : float;
  wait_seconds : float;
  deps : peer_dep list;
  sends : (int * int * int) list;  (** (dest, tag, bytes) posted *)
  collective : collective_info option;
}

type t = {
  name : string;
  on_interval : ctx -> stop:float -> activity -> float;
      (** a span of process activity [ctx.time, stop) *)
  on_mpi_enter : ctx -> Ast.mpi_call -> float;
  on_mpi_exit : ctx -> mpi_exit -> float;
  on_icall : ctx -> target:string -> float;
  on_run_end : nprocs:int -> elapsed:float -> unit;
}

(** A tool with no-op hooks, for [{ (nil name) with ... }] updates. *)
val nil : string -> t
