(* Golden-report regression harness.

   [test_golden.exe NAME] runs the full pipeline for registry program
   NAME at fixed seeds and scales and prints the text report; the dune
   rules in this directory diff that output against the checked-in
   snapshot [NAME.expected].  A legitimate report change is promoted
   with

     dune runtest --auto-promote

   which rewrites the snapshots in place.  Everything the report depends
   on is deterministic — simulated clocks, the default config seed, and
   fixed job scales — so any diff is a real behaviour change, not noise.
   In particular these snapshots pin down that the observability layer
   (lib/obs) leaves every report byte-identical while tracing is
   disabled, which is the default. *)

let max_np = 16

let pipeline ?(timeline = false) ?(crosscheck = false) ?(elastic = false) name
    =
  let entry = Scalana_apps.Registry.find name in
  let scales = Scalana_apps.Registry.scales entry ~min_np:4 ~max_np in
  let config =
    { Scalana.Config.default with static_crosscheck = crosscheck; elastic }
  in
  let plan = if elastic then entry.elastic_plan else None in
  Scalana.Pipeline.run ~config ~cost:entry.cost ~scales ~timeline ?elastic:plan
    (entry.make ())

let report ?timeline ?crosscheck ?elastic name =
  (pipeline ?timeline ?crosscheck ?elastic name).Scalana.Pipeline.report

(* The HTML meta line embeds the wall-clock detection cost — the one
   nondeterministic byte sequence in an otherwise simulated-clock
   rendering.  Pin it so the HTML snapshot diffs like the text ones. *)
let normalize_detect_cost html =
  let marker = "detection cost " in
  let n = String.length html and m = String.length marker in
  let rec find i =
    if i + m > n then None
    else if String.sub html i m = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> html
  | Some i ->
      let j = ref (i + m) in
      while !j < n && html.[!j] <> 's' do incr j done;
      String.sub html 0 (i + m) ^ "0.000" ^ String.sub html !j (n - !j)

let () =
  match Sys.argv with
  | [| _; name |] -> print_string (report name)
  | [| _; name; "--wait-states" |] ->
      print_string (report ~timeline:true name)
  | [| _; name; "--static-crosscheck" |] ->
      print_string (report ~crosscheck:true name)
  | [| _; name; "--elastic" |] -> print_string (report ~elastic:true name)
  | [| _; name; "--elastic-html" |] ->
      print_string
        (normalize_detect_cost
           (Scalana.Htmlreport.render (pipeline ~elastic:true name)))
  | _ ->
      prerr_endline
        "usage: test_golden.exe PROGRAM [--wait-states | --static-crosscheck \
         | --elastic | --elastic-html]";
      exit 2
