(* Golden-report regression harness.

   [test_golden.exe NAME] runs the full pipeline for registry program
   NAME at fixed seeds and scales and prints the text report; the dune
   rules in this directory diff that output against the checked-in
   snapshot [NAME.expected].  A legitimate report change is promoted
   with

     dune runtest --auto-promote

   which rewrites the snapshots in place.  Everything the report depends
   on is deterministic — simulated clocks, the default config seed, and
   fixed job scales — so any diff is a real behaviour change, not noise.
   In particular these snapshots pin down that the observability layer
   (lib/obs) leaves every report byte-identical while tracing is
   disabled, which is the default. *)

let max_np = 16

let report ?(timeline = false) ?(crosscheck = false) name =
  let entry = Scalana_apps.Registry.find name in
  let scales = Scalana_apps.Registry.scales entry ~min_np:4 ~max_np in
  let config =
    { Scalana.Config.default with static_crosscheck = crosscheck }
  in
  let pipeline =
    Scalana.Pipeline.run ~config ~cost:entry.cost ~scales ~timeline
      (entry.make ())
  in
  pipeline.Scalana.Pipeline.report

let () =
  match Sys.argv with
  | [| _; name |] -> print_string (report name)
  | [| _; name; "--wait-states" |] ->
      print_string (report ~timeline:true name)
  | [| _; name; "--static-crosscheck" |] ->
      print_string (report ~crosscheck:true name)
  | _ ->
      prerr_endline
        "usage: test_golden.exe PROGRAM [--wait-states | --static-crosscheck]";
      exit 2
