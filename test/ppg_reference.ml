(* Frozen pre-columnar PPG builder, kept as the differential-test oracle.

   This is the boxed, Hashtbl-backed implementation that lib/ppg carried
   before the columnar-store rework: per-(rank, vertex) Perfvec lookups
   against the profile's own tables, with per-vertex across-rank arrays
   frozen into caches at build time.  The equivalence suite in
   test_ppg.ml builds both this and the production store from the same
   profile and asserts every accessor digest matches, over the full
   registry at several scales, clean and faulted.  Do not "improve" this
   module: its value is that it does not change. *)

open Scalana_psg
open Scalana_profile

type comm_edge = {
  send_rank : int;
  send_vertex : int;
  has_wait : bool;
  max_wait : float;
  hits : int;
}

type t = {
  psg : Psg.t;
  nprocs : int;
  data : Profdata.t;
  incoming : (int * int, comm_edge list) Hashtbl.t;
  coll_late : (int, int) Hashtbl.t;
  times_cache : (int, float array) Hashtbl.t;
  waits_cache : (int, float array) Hashtbl.t;
}

let perf t ~rank ~vertex = Profdata.vector_opt t.data ~rank ~vertex

let time_of t ~rank ~vertex =
  match perf t ~rank ~vertex with Some v -> v.Perfvec.time | None -> 0.0

let wait_of t ~rank ~vertex =
  match perf t ~rank ~vertex with Some v -> v.Perfvec.wait | None -> 0.0

let build ~(psg : Psg.t) (data : Profdata.t) =
  let p2p = Commrec.p2p_edges data.Profdata.comm in
  let incoming = Hashtbl.create (max 16 (List.length p2p)) in
  List.iter
    (fun (e : Commrec.p2p_edge) ->
      let k = (e.key.recv_rank, e.key.recv_vertex) in
      let edge =
        {
          send_rank = e.key.send_rank;
          send_vertex = e.key.send_vertex;
          has_wait = e.has_wait;
          max_wait = e.max_wait;
          hits = e.hits;
        }
      in
      let existing =
        match Hashtbl.find_opt incoming k with Some l -> l | None -> []
      in
      Hashtbl.replace incoming k (edge :: existing))
    p2p;
  let coll_late = Hashtbl.create 32 in
  List.iter
    (fun (r : Commrec.coll_rec) ->
      let late = Commrec.dominant_late_rank r in
      if late >= 0 then Hashtbl.replace coll_late r.coll_vertex late)
    (Commrec.coll_records data.Profdata.comm);
  let touched = Profdata.touched_vertices data in
  let nprocs = data.Profdata.nprocs in
  let times_cache = Hashtbl.create (max 16 (List.length touched)) in
  let waits_cache = Hashtbl.create (max 16 (List.length touched)) in
  let t = { psg; nprocs; data; incoming; coll_late; times_cache; waits_cache } in
  List.iter
    (fun vertex ->
      Hashtbl.replace times_cache vertex
        (Array.init nprocs (fun rank -> time_of t ~rank ~vertex));
      Hashtbl.replace waits_cache vertex
        (Array.init nprocs (fun rank -> wait_of t ~rank ~vertex)))
    touched;
  t

let incoming_edges t ~rank ~vertex =
  match Hashtbl.find_opt t.incoming (rank, vertex) with
  | Some l -> l
  | None -> []

let waiting_edges t ~rank ~vertex =
  List.filter (fun e -> e.has_wait) (incoming_edges t ~rank ~vertex)

let critical_edge t ~rank ~vertex =
  match waiting_edges t ~rank ~vertex with
  | [] -> None
  | l ->
      Some
        (List.fold_left
           (fun best e -> if e.max_wait > best.max_wait then e else best)
           (List.hd l) l)

let coll_late_rank t ~vertex = Hashtbl.find_opt t.coll_late vertex

let times_across_ranks t ~vertex =
  match Hashtbl.find_opt t.times_cache vertex with
  | Some a -> a
  | None -> Array.init t.nprocs (fun rank -> time_of t ~rank ~vertex)

let waits_across_ranks t ~vertex =
  match Hashtbl.find_opt t.waits_cache vertex with
  | Some a -> a
  | None -> Array.init t.nprocs (fun rank -> wait_of t ~rank ~vertex)

let total_wait t ~vertex =
  Array.fold_left ( +. ) 0.0 (waits_across_ranks t ~vertex)

let coverage t ~vertex = Profdata.coverage t.data ~vertex

let total_time t =
  Array.init t.nprocs (fun rank ->
      Hashtbl.fold
        (fun _ (v : Perfvec.t) acc ->
          if Float.is_nan v.time || v.time < 0.0 then acc else acc +. v.time)
        t.data.Profdata.vectors.(rank) 0.0)
  |> Array.fold_left ( +. ) 0.0

let n_comm_edges t = Hashtbl.length t.incoming

let touched_vertices t = Profdata.touched_vertices t.data
let effective_nprocs t = t.data.Profdata.effective_nprocs
